package spine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/spine-index/spine/internal/mmap"
	"github.com/spine-index/spine/internal/seqgen"
)

// saveMappedFixture builds a compact index over a moderately repetitive
// synthetic sequence and saves it to a file, returning the path and the
// heap-resident reference.
func saveMappedFixture(t *testing.T) (string, *Compact) {
	t.Helper()
	data, err := seqgen.SuiteSequence("eco", 500)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(data).Compact(DNA)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fixture.spine")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, c
}

// queryProbe compares mc against the heap reference on a spread of
// patterns across every query kind.
func queryProbe(t *testing.T, mc *MappedCompact, ref *Compact) {
	t.Helper()
	ctx := context.Background()
	pats := [][]byte{
		[]byte("a"), []byte("acg"), []byte("gattaca"), []byte("tttttttt"),
		[]byte(strings.Repeat("acgt", 4)), []byte("zzz"), {},
	}
	for _, p := range pats {
		for _, kind := range []QueryKind{KindContains, KindFind, KindFindAll, KindCount} {
			got, err1 := mc.Query(ctx, p, QueryOptions{Kind: kind, Limit: 50})
			want, err2 := ref.Query(ctx, p, QueryOptions{Kind: kind, Limit: 50})
			if err1 != nil || err2 != nil {
				t.Fatalf("%s(%q): errs %v / %v", kind, p, err1, err2)
			}
			if got.Found != want.Found || got.Position != want.Position ||
				got.Count != want.Count || got.Truncated != want.Truncated ||
				got.NodesChecked != want.NodesChecked ||
				len(got.Positions) != len(want.Positions) {
				t.Fatalf("%s(%q): mapped %+v != heap %+v", kind, p, got, want)
			}
			for i := range got.Positions {
				if got.Positions[i] != want.Positions[i] {
					t.Fatalf("%s(%q): position %d differs", kind, p, i)
				}
			}
		}
	}
}

func TestOpenMappedMmapMode(t *testing.T) {
	if !mmap.Supported() {
		t.Skip("mmap unsupported in this build")
	}
	path, ref := saveMappedFixture(t)
	mc, err := OpenMapped(path, MappedOptions{Warmup: true})
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer mc.Close()
	if mc.Mode() != "mmap" || !mc.Mapped() {
		t.Fatalf("mode = %q, Mapped = %v", mc.Mode(), mc.Mapped())
	}
	queryProbe(t, mc, ref)
	ds := mc.DiskStats()
	if ds.Mode != "mmap" || ds.FileBytes <= 0 || ds.MappedBytes != ds.FileBytes {
		t.Fatalf("DiskStats = %+v", ds)
	}
	if ds.WarmedBytes <= 0 {
		t.Fatalf("warmup touched nothing: %+v", ds)
	}
	if ds.ReadaheadIssued == 0 {
		t.Fatalf("scans issued no readahead: %+v", ds)
	}
	if ds.OpenNanos <= 0 {
		t.Fatalf("open time not recorded: %+v", ds)
	}
}

func TestOpenMappedReaderAtFallback(t *testing.T) {
	path, ref := saveMappedFixture(t)
	mc, err := OpenMapped(path, MappedOptions{NoMmap: true})
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	defer mc.Close()
	wantMode := "readerat"
	if mc.Mode() != wantMode || mc.Mapped() {
		t.Fatalf("mode = %q, Mapped = %v", mc.Mode(), mc.Mapped())
	}
	queryProbe(t, mc, ref)
	ds := mc.DiskStats()
	if ds.Mode != wantMode || ds.ResidentBytes != ds.FileBytes {
		t.Fatalf("DiskStats = %+v", ds)
	}
}

func TestOpenMappedVerifyCatchesCorruption(t *testing.T) {
	path, _ := saveMappedFixture(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-9] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(path, MappedOptions{Verify: true}); err == nil {
		t.Fatal("verified open accepted a corrupt payload")
	}
	// The fallback path always verifies, mmap or not.
	if _, err := OpenMapped(path, MappedOptions{NoMmap: true}); err == nil {
		t.Fatal("fallback open accepted a corrupt payload")
	}
}

func TestOpenMappedReadaheadDisabled(t *testing.T) {
	path, ref := saveMappedFixture(t)
	mc, err := OpenMapped(path, MappedOptions{ReadaheadNodes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	queryProbe(t, mc, ref)
	if ds := mc.DiskStats(); ds.ReadaheadIssued != 0 || ds.ReadaheadHits != 0 {
		t.Fatalf("disabled readahead still counted: %+v", ds)
	}
}

func TestOpenMappedSmallRangeCacheEvicts(t *testing.T) {
	path, ref := saveMappedFixture(t)
	// A tiny range-cache budget forces honest re-prefetching: sweeps
	// larger than the budget must cycle (evict) rather than assume
	// residency.
	mc, err := OpenMapped(path, MappedOptions{RangeCacheBytes: 4096, ReadaheadNodes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	res, err := mc.Query(context.Background(), []byte("a"), QueryOptions{Kind: KindFindAll})
	if err != nil {
		t.Fatal(err)
	}
	if want := ref.FindAll([]byte("a")); len(res.Positions) != len(want) {
		t.Fatalf("got %d positions, want %d", len(res.Positions), len(want))
	}
	if ds := mc.DiskStats(); ds.ReadaheadIssued == 0 {
		t.Fatalf("no readahead under a full sweep: %+v", ds)
	}
}

func TestOpenMappedCachedDecorator(t *testing.T) {
	path, ref := saveMappedFixture(t)
	mc, err := OpenMapped(path, MappedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	cq, err := Cached(mc, CacheConfig{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p := []byte("gattaca")
	first, err := cq.Query(ctx, p, QueryOptions{Kind: KindFindAll})
	if err != nil {
		t.Fatal(err)
	}
	again, err := cq.Query(ctx, p, QueryOptions{Kind: KindFindAll})
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != SourceCache || again.Count != first.Count {
		t.Fatalf("cache over mapped index broken: first %+v, again %+v", first, again)
	}
	if want := ref.FindAll(p); first.Count != len(want) {
		t.Fatalf("cached mapped count %d, want %d", first.Count, len(want))
	}
}

func TestOpenMappedBatch(t *testing.T) {
	path, ref := saveMappedFixture(t)
	mc, err := OpenMapped(path, MappedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	pats := [][]byte{[]byte("acg"), []byte("gattaca"), []byte("acg"), {}, []byte("tt")}
	got, err := mc.QueryBatch(context.Background(), pats, BatchOptions{Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.QueryBatch(context.Background(), pats, BatchOptions{Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Count != want[i].Count || got[i].Truncated != want[i].Truncated {
			t.Fatalf("batch item %d: mapped %+v != heap %+v", i, got[i], want[i])
		}
	}
}

func TestOpenMappedCloseIdempotent(t *testing.T) {
	path, _ := saveMappedFixture(t)
	mc, err := OpenMapped(path, MappedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestOpenMappedMissingFile(t *testing.T) {
	if _, err := OpenMapped(filepath.Join(t.TempDir(), "nope.spine"), MappedOptions{}); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := OpenMapped(filepath.Join(t.TempDir(), "nope.spine"), MappedOptions{NoMmap: true}); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("fallback error does not wrap ErrNotExist: %v", err)
	}
}

func TestOpenMappedLegacyHeapMode(t *testing.T) {
	// A pre-v3 stream has no section directory: OpenMapped must fall
	// back to the full heap deserialization and still serve queries.
	path := filepath.Join(t.TempDir(), "legacy.spine")
	if err := os.WriteFile(path, []byte("not a spine image"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(path, MappedOptions{}); err == nil {
		t.Fatal("garbage accepted")
	}
}
