package spine

import (
	"context"
	"math/rand"
	"testing"

	"github.com/spine-index/spine/internal/trace"
)

func randomDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		if i > 10 && rng.Float64() < 0.4 {
			l := 1 + rng.Intn(8)
			start := rng.Intn(i - l + 1)
			copy(s[i:], s[start:start+l])
		}
		s[i] = "acgt"[rng.Intn(4)]
	}
	return s
}

func TestShardedMatchesSingleIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	text := randomDNA(rng, 5000)
	single := Build(text)
	for _, workers := range []int{0, 1, 4} {
		sh, err := BuildSharded(text, 700, 32, workers)
		if err != nil {
			t.Fatal(err)
		}
		if sh.Len() != len(text) || sh.Shards() != 8 {
			t.Fatalf("workers=%d: Len=%d Shards=%d", workers, sh.Len(), sh.Shards())
		}
		for q := 0; q < 300; q++ {
			m := 1 + rng.Intn(20)
			var p []byte
			if q%2 == 0 {
				off := rng.Intn(len(text) - m)
				p = text[off : off+m]
			} else {
				p = randomDNA(rng, m)
			}
			got, err := sh.FindAll(p)
			if err != nil {
				t.Fatal(err)
			}
			want := single.FindAll(p)
			if len(got) != len(want) {
				t.Fatalf("workers=%d FindAll(%q): %v vs %v", workers, p, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d FindAll(%q): %v vs %v", workers, p, got, want)
				}
			}
			gf, err := sh.Find(p)
			if err != nil {
				t.Fatal(err)
			}
			if wf := single.Find(p); gf != wf {
				t.Fatalf("workers=%d Find(%q) = %d, want %d", workers, p, gf, wf)
			}
		}
	}
}

func TestShardedBoundaryStraddlers(t *testing.T) {
	// A pattern placed exactly across a shard boundary must be found once.
	text := make([]byte, 2000)
	for i := range text {
		text[i] = "ac"[i%2]
	}
	copy(text[697:], "gggttttggg") // straddles the 700 boundary
	sh, err := BuildSharded(text, 700, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sh.FindAll([]byte("gggttttggg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 697 {
		t.Fatalf("straddler FindAll = %v, want [697]", got)
	}
}

func TestShardedRejectsOversizePattern(t *testing.T) {
	sh, err := BuildSharded([]byte("acgtacgtacgt"), 8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.FindAll([]byte("acgta")); err == nil {
		t.Fatal("pattern longer than maxPattern accepted")
	}
	if _, err := sh.Contains([]byte("acgta")); err == nil {
		t.Fatal("Contains oversize accepted")
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := BuildSharded([]byte("acgt"), 2, 4, 0); err == nil {
		t.Fatal("shard smaller than maxPattern accepted")
	}
	if _, err := BuildSharded([]byte("acgt"), 8, 0, 0); err == nil {
		t.Fatal("maxPattern 0 accepted")
	}
}

func TestShardedEmptyText(t *testing.T) {
	sh, err := BuildSharded(nil, 8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sh.Contains([]byte("a"))
	if err != nil || ok {
		t.Fatalf("Contains on empty = (%v, %v)", ok, err)
	}
	occ, err := sh.FindAll(nil)
	if err != nil || len(occ) != 1 {
		t.Fatalf("FindAll(empty) = %v, %v", occ, err)
	}
}

func TestShardedCount(t *testing.T) {
	sh, err := BuildSharded([]byte("aaccacaacaaaccacaaca"), 10, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sh.Count([]byte("ca"))
	if err != nil {
		t.Fatal(err)
	}
	if want := Build([]byte("aaccacaacaaaccacaaca")).Count([]byte("ca")); n != want {
		t.Fatalf("Count = %d, want %d", n, want)
	}
}

func TestShardedTraceAttributesShards(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	text := randomDNA(rng, 4000)
	sh, err := BuildSharded(text, 1000, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := text[100:108]
	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	res, err := sh.FindAllLimitContext(ctx, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := tr.Records()
	shardSpans := map[int]bool{}
	var merges int
	var nodeSum int64
	for _, r := range recs {
		nodeSum += r.Nodes
		switch r.Stage {
		case trace.StageShard:
			shardSpans[r.Shard] = true
		case trace.StageMerge:
			merges++
			if r.Shard != -1 {
				t.Fatalf("merge span should not be shard-attributed: %+v", r)
			}
		case trace.StageDescend, trace.StageOccurrences, trace.StageRibs, trace.StageExtribs:
			if r.Shard < 0 || r.Shard >= sh.Shards() {
				t.Fatalf("shard work span unattributed: %+v", r)
			}
		}
	}
	if len(shardSpans) != sh.Shards() {
		t.Fatalf("shard spans for %d shards, want %d", len(shardSpans), sh.Shards())
	}
	if merges != 1 {
		t.Fatalf("merge spans = %d, want 1", merges)
	}
	if nodeSum != res.NodesChecked {
		t.Fatalf("span node sum = %d, want NodesChecked %d", nodeSum, res.NodesChecked)
	}
	// The untraced query must agree on results and work.
	plain, err := sh.FindAllLimitContext(context.Background(), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.NodesChecked != res.NodesChecked || len(plain.Positions) != len(res.Positions) {
		t.Fatalf("traced query diverges: %d/%d vs %d/%d nodes/positions",
			res.NodesChecked, len(res.Positions), plain.NodesChecked, len(plain.Positions))
	}
}
