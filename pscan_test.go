package spine

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/seqgen"
)

// TestQueryScanWorkersEquivalent is the intra-query analogue of
// TestQueryBatchWorkersEquivalent: the partitioned backbone scan must
// produce the identical QueryResult — positions, truncation, count and
// NodesChecked — at every parallelism across the reference, compact and
// mapped layouts. NodesChecked equality holds even on truncated queries
// because the parallel path replays the sequential admission decisions
// over the stitched member set.
func TestQueryScanWorkersEquivalent(t *testing.T) {
	data, err := seqgen.SuiteSequence("eco", 100)
	if err != nil {
		t.Fatal(err)
	}
	idx := Build(data)
	comp, err := idx.Compact(DNA)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pscan.spine")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := comp.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMapped(path, MappedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	queriers := map[string]Querier{"index": idx, "compact": comp, "mapped": mapped}
	pats := [][]byte{
		[]byte("a"), []byte("ac"), []byte("acgt"), []byte("gattaca"),
		data[100:108], data[len(data)/2 : len(data)/2+12], []byte("acgtacgtacgtacgt"),
	}
	limits := []int{0, 1, 3, 50}
	kinds := []QueryKind{KindFindAll, KindCount}

	prevT := core.SetScanParallelThreshold(1)
	defer core.SetScanParallelThreshold(prevT)
	ladder := []int{1, 2, 4, runtime.GOMAXPROCS(0)}

	ctx := context.Background()
	type caseKey struct {
		q    string
		pi   int
		lim  int
		kind QueryKind
	}
	want := map[caseKey]QueryResult{}
	for _, w := range ladder {
		prevP := core.SetScanParallelism(w)
		for name, q := range queriers {
			for pi, p := range pats {
				for _, lim := range limits {
					for _, kind := range kinds {
						got, err := q.Query(ctx, p, QueryOptions{Kind: kind, Limit: lim})
						if err != nil {
							t.Fatalf("%s workers %d %s(%q): %v", name, w, kind, p, err)
						}
						k := caseKey{name, pi, lim, kind}
						ref, seen := want[k]
						if !seen {
							// Workers=1 (first rung) pins the sequential oracle.
							want[k] = got
							continue
						}
						if got.Found != ref.Found || got.Position != ref.Position ||
							got.Count != ref.Count || got.Truncated != ref.Truncated ||
							got.NodesChecked != ref.NodesChecked ||
							len(got.Positions) != len(ref.Positions) {
							t.Fatalf("%s workers %d %s(%q, limit %d):\n got %+v\nwant %+v",
								name, w, kind, p, lim, got, ref)
						}
						for i := range ref.Positions {
							if got.Positions[i] != ref.Positions[i] {
								t.Fatalf("%s workers %d %s(%q): position %d differs", name, w, kind, p, i)
							}
						}
					}
				}
			}
		}
		core.SetScanParallelism(prevP)
	}
}
