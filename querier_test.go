package spine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// legacyQuerier is the pre-Query per-method surface. The Querier
// interface no longer carries it, but every concrete flavor keeps the
// methods as shims over Query; tests pin them through this local
// interface to prove the shims stay equivalent.
type legacyQuerier interface {
	Querier
	ContainsContext(ctx context.Context, p []byte) (bool, error)
	FindContext(ctx context.Context, p []byte) (int, error)
	FindAllContext(ctx context.Context, p []byte) ([]int, error)
	FindAllLimitContext(ctx context.Context, p []byte, limit int) (QueryResult, error)
	CountContext(ctx context.Context, p []byte) (int, error)
}

// queriers builds all three index flavors over the same text.
func queriers(t *testing.T, text []byte) map[string]legacyQuerier {
	t.Helper()
	idx := Build(text)
	c, err := idx.Compact(DNA)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildSharded(text, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]legacyQuerier{"index": idx, "compact": c, "sharded": sh}
}

func TestQuerierParity(t *testing.T) {
	text := []byte("aaccacaacaggtaccaaccacaacagg")
	ref := Build(text)
	ctx := context.Background()
	for name, q := range queriers(t, text) {
		if q.Len() != len(text) {
			t.Fatalf("%s: Len = %d, want %d", name, q.Len(), len(text))
		}
		for _, p := range []string{"a", "cc", "acaa", "gtac"} {
			wantAll := ref.FindAll([]byte(p))
			ok, err := q.ContainsContext(ctx, []byte(p))
			if err != nil || ok != (len(wantAll) > 0) {
				t.Fatalf("%s: Contains(%q) = %v, %v", name, p, ok, err)
			}
			pos, err := q.FindContext(ctx, []byte(p))
			if err != nil {
				t.Fatal(err)
			}
			wantPos := -1
			if len(wantAll) > 0 {
				wantPos = wantAll[0]
			}
			if pos != wantPos {
				t.Fatalf("%s: Find(%q) = %d, want %d", name, p, pos, wantPos)
			}
			all, err := q.FindAllContext(ctx, []byte(p))
			if err != nil {
				t.Fatal(err)
			}
			if len(all) != len(wantAll) {
				t.Fatalf("%s: FindAll(%q) = %v, want %v", name, p, all, wantAll)
			}
			for i := range wantAll {
				if all[i] != wantAll[i] {
					t.Fatalf("%s: FindAll(%q) = %v, want %v", name, p, all, wantAll)
				}
			}
			n, err := q.CountContext(ctx, []byte(p))
			if err != nil || n != len(wantAll) {
				t.Fatalf("%s: Count(%q) = %d, %v; want %d", name, p, n, err, len(wantAll))
			}
		}
	}
}

func TestQuerierFindAllLimit(t *testing.T) {
	text := []byte(strings.Repeat("ac", 50))
	ref := Build(text)
	full := ref.FindAll([]byte("ac"))
	ctx := context.Background()
	for name, q := range queriers(t, text) {
		res, err := q.FindAllLimitContext(ctx, []byte("ac"), 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Positions) != 5 || !res.Truncated {
			t.Fatalf("%s: limit 5 gave %d positions, truncated=%v", name, len(res.Positions), res.Truncated)
		}
		for i := 0; i < 5; i++ {
			if res.Positions[i] != full[i] {
				t.Fatalf("%s: limited prefix %v diverges from %v", name, res.Positions, full[:5])
			}
		}
		if res.NodesChecked <= 0 {
			t.Fatalf("%s: NodesChecked = %d", name, res.NodesChecked)
		}
		// Unlimited agrees with FindAll.
		res, err = q.FindAllLimitContext(ctx, []byte("ac"), 0)
		if err != nil || len(res.Positions) != len(full) || res.Truncated {
			t.Fatalf("%s: unlimited gave %d/%d truncated=%v err=%v",
				name, len(res.Positions), len(full), res.Truncated, err)
		}
	}
	// Non-context convenience forms.
	if got := ref.FindAllLimit([]byte("ac"), 3); len(got) != 3 {
		t.Fatalf("Index.FindAllLimit = %v", got)
	}
	c, _ := ref.Compact(DNA)
	if got := c.FindAllLimit([]byte("ac"), 3); len(got) != 3 {
		t.Fatalf("Compact.FindAllLimit = %v", got)
	}
	sh, _ := BuildSharded(text, 8, 4, 0)
	if got, err := sh.FindAllLimit([]byte("ac"), 3); err != nil || len(got) != 3 {
		t.Fatalf("Sharded.FindAllLimit = %v, %v", got, err)
	}
}

func TestQuerierCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, q := range queriers(t, []byte("aaccacaacagg")) {
		if _, err := q.FindAllContext(ctx, []byte("a")); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: FindAllContext err = %v, want Canceled", name, err)
		}
		if _, err := q.ContainsContext(ctx, []byte("a")); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: ContainsContext err = %v, want Canceled", name, err)
		}
	}
}

// TestFindAllContextCancelMidScan is the acceptance check: a context
// cancelled while the O(n) occurrence scan is running must abort it
// promptly rather than completing the scan.
func TestFindAllContextCancelMidScan(t *testing.T) {
	idx := Build([]byte(strings.Repeat("a", 4_000_000)))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := idx.FindAllContext(ctx, []byte("aaa"))
		done <- err
	}()
	time.Sleep(2 * time.Millisecond) // let the scan start
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) && err != nil {
			t.Fatalf("err = %v, want Canceled or completed-before-cancel nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("FindAllContext did not return promptly after cancel")
	}
}

func TestSentinelErrors(t *testing.T) {
	if _, err := BuildSharded([]byte("acgt"), 2, 0, 0); !errors.Is(err, ErrBadShardConfig) {
		t.Fatalf("maxPattern 0: %v", err)
	}
	if _, err := BuildSharded([]byte("acgt"), 2, 4, 0); !errors.Is(err, ErrBadShardConfig) {
		t.Fatalf("shardSize < maxPattern: %v", err)
	}
	sh, err := BuildSharded([]byte("acgtacgt"), 4, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Contains([]byte("acgta")); !errors.Is(err, ErrPatternTooLong) {
		t.Fatalf("oversized pattern: %v", err)
	}
	if _, err := sh.FindAllLimitContext(context.Background(), []byte("acgta"), 1); !errors.Is(err, ErrPatternTooLong) {
		t.Fatalf("oversized pattern via limit: %v", err)
	}
	if _, err := Build([]byte("ac")).Compact(nil); !errors.Is(err, ErrEmptyAlphabet) {
		t.Fatalf("nil alphabet: %v", err)
	}
	if _, err := NewCompactBuilder(nil); !errors.Is(err, ErrEmptyAlphabet) {
		t.Fatalf("nil alphabet builder: %v", err)
	}
	if _, err := BuildGeneralized([][]byte{[]byte("a#b")}, '#'); !errors.Is(err, ErrSeparatorInText) {
		t.Fatalf("separator in text: %v", err)
	}
}

func TestShardedStatsAggregation(t *testing.T) {
	text := []byte(strings.Repeat("aaccacaacagg", 10))
	sh, err := BuildSharded(text, 32, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := sh.Stats()
	if st.Length != len(text) {
		t.Fatalf("Length = %d, want %d", st.Length, len(text))
	}
	if st.RibCount == 0 || st.MemoryBytes == 0 || st.MaxLEL == 0 {
		t.Fatalf("degenerate aggregate stats: %+v", st)
	}
}

func TestCompactMaximalMatchesContext(t *testing.T) {
	data := []byte("acaccgacgatacgagattacgagacgagaatacaacag")
	idx := Build(data)
	c, err := idx.Compact(DNA)
	if err != nil {
		t.Fatal(err)
	}
	query := []byte("catagagagacgattacgagaaaacgggaaagacgatcc")
	want, _, err := idx.MaximalMatches(query, 6)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.MaximalMatchesContext(context.Background(), query, 6)
	if err != nil || len(got) != len(want) {
		t.Fatalf("compact ctx variant: %d matches, err %v; want %d", len(got), err, len(want))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.MaximalMatchesContext(ctx, query, 6); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled MaximalMatchesContext err = %v", err)
	}
	if _, _, err := idx.MaximalMatchesContext(ctx, query, 6); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Index.MaximalMatchesContext err = %v", err)
	}
}
