package spine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/spine-index/spine/internal/suffixtree"
)

// Differential oracle for the batch pipeline: for seeded random texts
// over a table of alphabet sizes, QueryBatch results must be
// byte-identical to per-pattern FindAllLimitContext on every index
// flavor, and (at limit 0) to the classical suffix-tree baseline. The
// pattern mix deliberately includes present substrings, mutated
// near-misses, the empty pattern, duplicates, and patterns exceeding
// the sharded maxPattern.
func TestQueryBatchDifferentialOracle(t *testing.T) {
	cases := []struct {
		letters string
		textLen int
		shardSz int
		maxPat  int
	}{
		{"a", 64, 16, 8},
		{"ac", 128, 16, 8},
		{"acgt", 200, 32, 12},
		{"acgt", 1, 16, 8},
		{"abcdefgh", 256, 64, 13},
		{"abcdefghijklmnopqrstuvwxyz", 300, 48, 10},
	}
	const rounds = 4
	for ci, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("alpha%d_len%d", len(tc.letters), tc.textLen), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			letters := []byte(tc.letters)
			for round := 0; round < rounds; round++ {
				text := make([]byte, tc.textLen)
				for i := range text {
					text[i] = letters[rng.Intn(len(letters))]
				}
				idx := Build(text)
				comp, err := idx.Compact(NewAlphabet(letters))
				if err != nil {
					t.Fatal(err)
				}
				sh, err := BuildSharded(text, tc.shardSz, tc.maxPat, 2)
				if err != nil {
					t.Fatal(err)
				}
				st, err := suffixtree.Build(text, 0xFF)
				if err != nil {
					t.Fatal(err)
				}
				patterns := samplePatternMix(rng, text, letters, tc.maxPat)
				flavors := map[string]legacyQuerier{"index": idx, "compact": comp, "sharded": sh}
				for _, limit := range []int{0, 1, 2, 5} {
					for name, q := range flavors {
						checkBatchAgainstSequential(t, name, q, patterns, limit)
					}
					if limit == 0 {
						checkBatchAgainstSuffixTree(t, idx, st, patterns)
					}
				}
			}
		})
	}
}

// samplePatternMix draws ~12 patterns: real substrings (various
// lengths up to just past maxPat), mutated patterns, the empty pattern,
// and duplicates of earlier draws.
func samplePatternMix(rng *rand.Rand, text, letters []byte, maxPat int) [][]byte {
	var out [][]byte
	draw := func(maxLen int) []byte {
		if len(text) == 0 || maxLen == 0 {
			return nil
		}
		l := 1 + rng.Intn(maxLen)
		if l > len(text) {
			l = len(text)
		}
		off := rng.Intn(len(text) - l + 1)
		return append([]byte(nil), text[off:off+l]...)
	}
	for i := 0; i < 4; i++ {
		out = append(out, draw(maxPat))
	}
	// Overlong for the sharded flavor (still valid on index/compact).
	out = append(out, draw(maxPat+4))
	// Mutated: random letters, likely absent for larger alphabets.
	for i := 0; i < 3; i++ {
		l := 1 + rng.Intn(maxPat)
		p := make([]byte, l)
		for j := range p {
			p[j] = letters[rng.Intn(len(letters))]
		}
		out = append(out, p)
	}
	// A letter outside every alphabet in the table.
	out = append(out, []byte{'Z'})
	// Empty pattern and duplicates of earlier draws.
	out = append(out, []byte{})
	out = append(out, append([]byte(nil), out[0]...))
	out = append(out, append([]byte(nil), out[rng.Intn(len(out))]...))
	return out
}

func checkBatchAgainstSequential(t *testing.T, name string, q legacyQuerier, patterns [][]byte, limit int) {
	t.Helper()
	ctx := context.Background()
	results, err := q.QueryBatch(ctx, patterns, BatchOptions{Limit: limit})
	if err != nil {
		t.Fatalf("%s limit %d: QueryBatch: %v", name, limit, err)
	}
	for i, p := range patterns {
		want, wantErr := q.FindAllLimitContext(ctx, p, limit)
		got := results[i]
		if (got.Err == nil) != (wantErr == nil) {
			t.Fatalf("%s limit %d pattern %q: batch Err %v vs sequential %v", name, limit, p, got.Err, wantErr)
		}
		if wantErr != nil {
			if !errors.Is(got.Err, ErrPatternTooLong) {
				t.Fatalf("%s limit %d pattern %q: Err = %v, want ErrPatternTooLong", name, limit, p, got.Err)
			}
			continue
		}
		if got.Truncated != want.Truncated {
			t.Fatalf("%s limit %d pattern %q: Truncated %v, want %v", name, limit, p, got.Truncated, want.Truncated)
		}
		if len(got.Positions) != len(want.Positions) {
			t.Fatalf("%s limit %d pattern %q: %v, want %v", name, limit, p, got.Positions, want.Positions)
		}
		for j := range want.Positions {
			if got.Positions[j] != want.Positions[j] {
				t.Fatalf("%s limit %d pattern %q: %v, want %v", name, limit, p, got.Positions, want.Positions)
			}
		}
	}
}

// checkBatchAgainstSuffixTree pins the unlimited batch answers to an
// independent implementation: the internal/suffixtree baseline.
func checkBatchAgainstSuffixTree(t *testing.T, idx *Index, st *suffixtree.Tree, patterns [][]byte) {
	t.Helper()
	results, err := idx.QueryBatch(context.Background(), patterns, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range patterns {
		if len(p) == 0 {
			continue // the baseline's empty-pattern semantics differ
		}
		want := st.FindAll(p)
		got := results[i].Positions
		if len(got) != len(want) {
			t.Fatalf("suffixtree oracle pattern %q: %v, want %v", p, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("suffixtree oracle pattern %q: %v, want %v", p, got, want)
			}
		}
	}
}

// TestQueryBatchShardBoundary stresses the overlap-region interplay:
// every occurrence of a pattern straddling a shard boundary must appear
// exactly once after the merge, under small limits, with Truncated
// agreeing with the single-query path.
func TestQueryBatchShardBoundary(t *testing.T) {
	// shardSize 8, maxPattern 4: overlap regions are [8k, 8k+3). Build a
	// text where "abca" straddles every boundary and also repeats inside
	// shards.
	text := []byte("xxabcaxxabcaxxabcaxxabcaxxabcaxx")
	const shardSize, maxPat = 8, 4
	sh, err := BuildSharded(text, shardSize, maxPat, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref := Build(text)
	patterns := [][]byte{[]byte("abca"), []byte("caxx"), []byte("xxab"), []byte("xx"), []byte("a")}
	ctx := context.Background()
	for _, limit := range []int{0, 1, 2, 3, 4, 7} {
		results, err := sh.QueryBatch(ctx, patterns, BatchOptions{Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range patterns {
			full := ref.FindAll(p)
			got := results[i]
			// No duplicates, no drops: the result is exactly the global
			// prefix of the reference occurrence list.
			wantLen := len(full)
			if limit > 0 && wantLen > limit {
				wantLen = limit
			}
			if len(got.Positions) != wantLen {
				t.Fatalf("limit %d pattern %q: %v, want prefix of %v (len %d)", limit, p, got.Positions, full, wantLen)
			}
			for j := 0; j < wantLen; j++ {
				if got.Positions[j] != full[j] {
					t.Fatalf("limit %d pattern %q: %v, want prefix of %v", limit, p, got.Positions, full)
				}
			}
			for j := 1; j < len(got.Positions); j++ {
				if got.Positions[j] <= got.Positions[j-1] {
					t.Fatalf("limit %d pattern %q: positions not strictly increasing: %v", limit, p, got.Positions)
				}
			}
			// Truncated parity with the sequential sharded path.
			want, err := sh.FindAllLimitContext(ctx, p, limit)
			if err != nil {
				t.Fatal(err)
			}
			if got.Truncated != want.Truncated {
				t.Fatalf("limit %d pattern %q: Truncated %v, sequential %v", limit, p, got.Truncated, want.Truncated)
			}
		}
	}
}
