package spine

import (
	"context"

	"github.com/spine-index/spine/internal/core"
)

// Querier is the read-side query surface shared by every index flavor:
// the reference Index, the frozen Compact layout, the parallel Sharded
// index and the Cached decorator all satisfy it, so servers and
// benchmark harnesses can run against any of them interchangeably.
//
// The surface is deliberately one entrypoint wide: Query answers any
// single-pattern read, selected by QueryOptions.Kind, and QueryBatch is
// its many-pattern twin. The per-method variants of the old API
// (ContainsContext, FindContext, FindAllContext, FindAllLimitContext,
// CountContext) remain on the concrete types as thin shims over Query,
// but are no longer part of the interface — a decorator that wraps
// Query (the result cache, the negative filter) intercepts every read.
//
// The context governs cancellation: occurrence enumeration is an O(n)
// backbone scan regardless of how many occurrences exist, and
// implementations abort it promptly (returning ctx.Err()) once the
// context ends. KindContains/KindFind descend the pattern only and
// check the context at entry.
type Querier interface {
	// Query answers one pattern: the kind in opts selects membership,
	// first occurrence, occurrence enumeration (limit-bounded) or count.
	Query(ctx context.Context, p []byte, opts QueryOptions) (QueryResult, error)
	// QueryBatch answers many patterns at once: identical patterns are
	// deduplicated, valid-path descents run through a bounded worker
	// pool, and all occurrence sets are resolved by a single backbone
	// scan per index (per shard on a Sharded index) — the paper's §4
	// set-basis deferral applied across queries. Results align with
	// patterns by position; per-item failures (e.g. an overlong pattern
	// on a sharded index) are reported in QueryResult.Err, while the
	// returned error is reserved for batch-wide failures such as
	// cancellation.
	QueryBatch(ctx context.Context, patterns [][]byte, opts BatchOptions) ([]QueryResult, error)
	// Len returns the number of indexed characters.
	Len() int
}

// QueryResult is the outcome of one Query call or one item of a batch
// query. Which fields are meaningful depends on the QueryKind:
// KindContains and KindFind set Found and Position; KindFindAll sets
// Positions, Count, Truncated, Found and Position; KindCount sets Count
// and Found. NodesChecked and Source are always set.
type QueryResult struct {
	// Found reports that the pattern occurs (never true for a result
	// computed with zero occurrences).
	Found bool
	// Position is the first occurrence's start offset, or -1. KindCount
	// results leave it -1 (the streaming count keeps no positions).
	Position int
	// Count is the number of occurrences: exact for KindCount, the
	// (possibly limit-truncated) enumerated count for KindFindAll, and 0
	// for the kinds that do not count.
	Count int
	// Positions lists occurrence start offsets in increasing order
	// (KindFindAll only).
	Positions []int
	// Truncated reports that the scan stopped at the limit; more
	// occurrences may exist.
	Truncated bool
	// NodesChecked counts index nodes examined by the query — the
	// paper's §4.1 work metric, aggregated by serving telemetry. For a
	// batch item it is the pattern's descent cost plus its amortized
	// share of the batch's single backbone scan, so summing over a batch
	// reproduces the batch's true total work. A cached or
	// negative-filtered answer reports the work actually done now: zero.
	NodesChecked int64
	// Source tells how a Cached querier produced this result (scan,
	// cache hit, or negative-filter rejection); always SourceScan from
	// an uncached querier. Excluded from JSON: it is serving-side
	// attribution, not part of the answer.
	Source ResultSource `json:"-"`
	// Err reports a per-item failure of a batch query (it wraps a
	// sentinel such as ErrPatternTooLong); always nil outside batches
	// and for successful items.
	Err error `json:"-"`
}

// normalize fills the derived fields (Count, Found, Position) of an
// enumeration result from its Positions.
func (r *QueryResult) normalize() {
	r.Count = len(r.Positions)
	r.Found = len(r.Positions) > 0
	if r.Found {
		r.Position = r.Positions[0]
	} else {
		r.Position = -1
	}
}

// Compile-time checks: every index flavor (and the cache decorator) is
// a Querier.
var (
	_ Querier = (*Index)(nil)
	_ Querier = (*Compact)(nil)
	_ Querier = (*Sharded)(nil)
	_ Querier = (*CachedQuerier)(nil)
)

// queryResultOf lifts a core scan result into the public shape.
func queryResultOf(res core.ScanResult) QueryResult {
	return QueryResult{Positions: res.Positions, Truncated: res.Truncated, NodesChecked: res.NodesChecked}
}

// ContainsContext reports whether p is a substring of the indexed text;
// equivalent to Query with KindContains. When ctx carries an
// internal/trace trace, the descent records per-stage spans.
func (x *Index) ContainsContext(ctx context.Context, p []byte) (bool, error) {
	res, err := x.Query(ctx, p, QueryOptions{Kind: KindContains})
	return res.Found, err
}

// FindContext returns the start offset of p's first occurrence, or -1;
// equivalent to Query with KindFind.
func (x *Index) FindContext(ctx context.Context, p []byte) (int, error) {
	res, err := x.Query(ctx, p, QueryOptions{Kind: KindFind})
	return res.Position, err
}

// FindAllContext returns every occurrence start offset in increasing
// order; equivalent to Query with KindFindAll and no limit.
func (x *Index) FindAllContext(ctx context.Context, p []byte) ([]int, error) {
	res, err := x.Query(ctx, p, QueryOptions{Kind: KindFindAll})
	return res.Positions, err
}

// FindAllLimitContext returns at most limit occurrences (limit <= 0
// means unlimited); equivalent to Query with KindFindAll.
func (x *Index) FindAllLimitContext(ctx context.Context, p []byte, limit int) (QueryResult, error) {
	return x.Query(ctx, p, QueryOptions{Kind: KindFindAll, Limit: limit})
}

// FindAllLimit returns at most max occurrence start offsets of p in
// increasing order, stopping the backbone scan as soon as the cap is
// reached. max <= 0 means unlimited.
//
// Deprecated: use Query with KindFindAll and a Limit, which also
// reports truncation and scan work.
func (x *Index) FindAllLimit(p []byte, max int) []int {
	res, _ := x.Query(context.Background(), p, QueryOptions{Kind: KindFindAll, Limit: max})
	return res.Positions
}

// CountContext returns the number of occurrences of p; equivalent to
// Query with KindCount.
func (x *Index) CountContext(ctx context.Context, p []byte) (int, error) {
	res, err := x.Query(ctx, p, QueryOptions{Kind: KindCount})
	return res.Count, err
}

// ContainsContext reports whether p is a substring of the indexed text;
// see Index.ContainsContext.
func (x *Compact) ContainsContext(ctx context.Context, p []byte) (bool, error) {
	res, err := x.Query(ctx, p, QueryOptions{Kind: KindContains})
	return res.Found, err
}

// FindContext returns the start offset of p's first occurrence, or -1;
// see Index.FindContext.
func (x *Compact) FindContext(ctx context.Context, p []byte) (int, error) {
	res, err := x.Query(ctx, p, QueryOptions{Kind: KindFind})
	return res.Position, err
}

// FindAllContext returns every occurrence start offset in increasing
// order; see Index.FindAllContext.
func (x *Compact) FindAllContext(ctx context.Context, p []byte) ([]int, error) {
	res, err := x.Query(ctx, p, QueryOptions{Kind: KindFindAll})
	return res.Positions, err
}

// FindAllLimitContext returns at most limit occurrences; see
// Index.FindAllLimitContext.
func (x *Compact) FindAllLimitContext(ctx context.Context, p []byte, limit int) (QueryResult, error) {
	return x.Query(ctx, p, QueryOptions{Kind: KindFindAll, Limit: limit})
}

// FindAllLimit returns at most max occurrences.
//
// Deprecated: use Query with KindFindAll and a Limit; see
// Index.FindAllLimit.
func (x *Compact) FindAllLimit(p []byte, max int) []int {
	res, _ := x.Query(context.Background(), p, QueryOptions{Kind: KindFindAll, Limit: max})
	return res.Positions
}

// CountContext returns the number of occurrences of p; see
// Index.CountContext.
func (x *Compact) CountContext(ctx context.Context, p []byte) (int, error) {
	res, err := x.Query(ctx, p, QueryOptions{Kind: KindCount})
	return res.Count, err
}
