package spine

import (
	"context"

	"github.com/spine-index/spine/internal/core"
)

// Querier is the read-side query surface shared by every index flavor:
// the reference Index, the frozen Compact layout, and the parallel
// Sharded index all satisfy it, so servers and benchmark harnesses can
// run against any of them interchangeably.
//
// The context governs cancellation: occurrence enumeration is an O(n)
// backbone scan regardless of how many occurrences exist, and
// implementations abort it promptly (returning ctx.Err()) once the
// context ends. Contains/Find descend the pattern only and check the
// context at entry.
type Querier interface {
	// ContainsContext reports whether p is a substring of the indexed text.
	ContainsContext(ctx context.Context, p []byte) (bool, error)
	// FindContext returns the start offset of p's first occurrence, or -1.
	FindContext(ctx context.Context, p []byte) (int, error)
	// FindAllContext returns every occurrence start offset in increasing
	// order; nil if p does not occur.
	FindAllContext(ctx context.Context, p []byte) ([]int, error)
	// FindAllLimitContext returns at most limit occurrences (limit <= 0
	// means unlimited), stopping the scan early once the cap is reached.
	FindAllLimitContext(ctx context.Context, p []byte, limit int) (QueryResult, error)
	// CountContext returns the number of occurrences of p.
	CountContext(ctx context.Context, p []byte) (int, error)
	// QueryBatch answers many patterns at once: identical patterns are
	// deduplicated, valid-path descents run through a bounded worker
	// pool, and all occurrence sets are resolved by a single backbone
	// scan per index (per shard on a Sharded index) — the paper's §4
	// set-basis deferral applied across queries. Results align with
	// patterns by position; per-item failures (e.g. an overlong pattern
	// on a sharded index) are reported in QueryResult.Err, while the
	// returned error is reserved for batch-wide failures such as
	// cancellation.
	QueryBatch(ctx context.Context, patterns [][]byte, opts BatchOptions) ([]QueryResult, error)
	// Len returns the number of indexed characters.
	Len() int
}

// QueryResult is the outcome of a limited occurrence query, or of one
// item of a batch query.
type QueryResult struct {
	// Positions lists occurrence start offsets in increasing order.
	Positions []int
	// Truncated reports that the scan stopped at the limit; more
	// occurrences may exist.
	Truncated bool
	// NodesChecked counts index nodes examined by the query — the
	// paper's §4.1 work metric, aggregated by serving telemetry. For a
	// batch item it is the pattern's descent cost plus its amortized
	// share of the batch's single backbone scan, so summing over a batch
	// reproduces the batch's true total work.
	NodesChecked int64
	// Err reports a per-item failure of a batch query (it wraps a
	// sentinel such as ErrPatternTooLong); always nil outside batches
	// and for successful items.
	Err error `json:"-"`
}

// Compile-time checks: every index flavor is a Querier.
var (
	_ Querier = (*Index)(nil)
	_ Querier = (*Compact)(nil)
	_ Querier = (*Sharded)(nil)
)

// ContainsContext implements Querier; see Index.Contains. When ctx
// carries an internal/trace trace, the descent records per-stage spans.
func (x *Index) ContainsContext(ctx context.Context, p []byte) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	_, ok := x.c.EndNodeCtx(ctx, p)
	return ok, nil
}

// FindContext implements Querier; see Index.Find.
func (x *Index) FindContext(ctx context.Context, p []byte) (int, error) {
	if err := ctx.Err(); err != nil {
		return -1, err
	}
	end, ok := x.c.EndNodeCtx(ctx, p)
	if !ok {
		return -1, nil
	}
	return int(end) - len(p), nil
}

// FindAllContext implements Querier; see Index.FindAll.
func (x *Index) FindAllContext(ctx context.Context, p []byte) ([]int, error) {
	res, err := x.c.FindAllCtx(ctx, p, 0)
	return res.Positions, err
}

// FindAllLimitContext implements Querier.
func (x *Index) FindAllLimitContext(ctx context.Context, p []byte, limit int) (QueryResult, error) {
	res, err := x.c.FindAllCtx(ctx, p, limit)
	return queryResultOf(res), err
}

// queryResultOf lifts a core scan result into the public shape.
func queryResultOf(res core.ScanResult) QueryResult {
	return QueryResult{Positions: res.Positions, Truncated: res.Truncated, NodesChecked: res.NodesChecked}
}

// FindAllLimit returns at most max occurrence start offsets of p in
// increasing order, stopping the backbone scan as soon as the cap is
// reached — FindAll that cannot materialize millions of offsets for a
// low-complexity pattern. max <= 0 means unlimited.
func (x *Index) FindAllLimit(p []byte, max int) []int {
	res, _ := x.c.FindAllCtx(context.Background(), p, max)
	return res.Positions
}

// CountContext implements Querier; see Index.Count.
func (x *Index) CountContext(ctx context.Context, p []byte) (int, error) {
	return x.c.CountCtx(ctx, p)
}

// ContainsContext implements Querier; see Compact.Contains. Traced like
// Index.ContainsContext.
func (x *Compact) ContainsContext(ctx context.Context, p []byte) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	_, ok := x.c.EndNodeCtx(ctx, p)
	return ok, nil
}

// FindContext implements Querier; see Compact.Find.
func (x *Compact) FindContext(ctx context.Context, p []byte) (int, error) {
	if err := ctx.Err(); err != nil {
		return -1, err
	}
	end, ok := x.c.EndNodeCtx(ctx, p)
	if !ok {
		return -1, nil
	}
	return int(end) - len(p), nil
}

// FindAllContext implements Querier; see Compact.FindAll.
func (x *Compact) FindAllContext(ctx context.Context, p []byte) ([]int, error) {
	res, err := x.c.FindAllCtx(ctx, p, 0)
	return res.Positions, err
}

// FindAllLimitContext implements Querier.
func (x *Compact) FindAllLimitContext(ctx context.Context, p []byte, limit int) (QueryResult, error) {
	res, err := x.c.FindAllCtx(ctx, p, limit)
	return queryResultOf(res), err
}

// FindAllLimit returns at most max occurrences; see Index.FindAllLimit.
func (x *Compact) FindAllLimit(p []byte, max int) []int {
	res, _ := x.c.FindAllCtx(context.Background(), p, max)
	return res.Positions
}

// CountContext implements Querier; see Compact.Count.
func (x *Compact) CountContext(ctx context.Context, p []byte) (int, error) {
	return x.c.CountCtx(ctx, p)
}
