package spine

import "github.com/spine-index/spine/internal/core"

// Distance selects the error model for approximate search.
type Distance = core.Distance

const (
	// Hamming counts substitutions only.
	Hamming = core.Hamming
	// Edit counts substitutions, insertions and deletions (Levenshtein).
	Edit = core.Edit
)

// FindAllWithin returns the start offsets of every substring of the
// indexed text within distance k of p under the given model, in increasing
// order without duplicates. k = 0 degenerates to FindAll. Cost grows with
// alphabet^k; intended for small budgets (k <= 3), the seed-and-extend
// regime.
func (x *Index) FindAllWithin(p []byte, k int, model Distance) []int {
	return x.c.FindAllWithin(p, k, model)
}

// CountWithin returns the number of start offsets within distance k of p.
func (x *Index) CountWithin(p []byte, k int, model Distance) int {
	return x.c.CountWithin(p, k, model)
}

// LongestRepeatedSubstring returns the longest substring of the indexed
// text occurring at least twice (possibly overlapping) and its first two
// occurrence offsets. SPINE answers this with a single scan of its LEL
// labels.
func (x *Index) LongestRepeatedSubstring() (s []byte, first, second int) {
	return x.c.LongestRepeatedSubstring()
}

// LongestCommonSubstring returns the longest string occurring in both the
// indexed text and other, with one occurrence offset in each (nil, -1, -1
// when disjoint). One streaming pass over other.
func (x *Index) LongestCommonSubstring(other []byte) (s []byte, textPos, otherPos int) {
	return x.c.LongestCommonSubstring(other)
}

// RepeatProfile returns, per text position, the length of the longest
// suffix ending there that also occurs earlier (the LEL array) — a repeat
// density profile of the text.
func (x *Index) RepeatProfile() []int32 { return x.c.RepeatProfile() }

// Verify exhaustively checks the index's structural invariants against its
// own text, returning the first violation. Intended for tools and tests.
func (x *Index) Verify() error { return x.c.Verify() }
