package spine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/spine-index/spine/internal/obs"
	"github.com/spine-index/spine/internal/trace"
)

// Sharded is a SPINE index split into fixed-size shards that build and
// query in parallel. SPINE construction is inherently sequential (each
// node's link depends on the previous), so a single multi-gigabyte genome
// builds on one core; sharding trades a bounded pattern length for
// near-linear build speedup and parallel query fan-out.
//
// Each shard indexes its slice of the text plus an overlap of
// maxPattern-1 characters from the next shard, so every occurrence of a
// pattern up to maxPattern long lies entirely inside at least one shard.
// Queries longer than maxPattern are rejected with ErrPatternTooLong.
type Sharded struct {
	shards    []*Index
	starts    []int // global start offset of each shard's slice
	textLen   int
	maxPat    int
	shardSize int
}

// BuildSharded indexes text in parallel shards of shardSize characters,
// supporting patterns up to maxPattern long. shardSize must be at least
// maxPattern; invalid configurations return ErrBadShardConfig.
// workers <= 0 means one goroutine per shard.
func BuildSharded(text []byte, shardSize, maxPattern, workers int) (*Sharded, error) {
	if maxPattern < 1 {
		return nil, fmt.Errorf("%w: maxPattern %d < 1", ErrBadShardConfig, maxPattern)
	}
	if shardSize < maxPattern {
		return nil, fmt.Errorf("%w: shard size %d smaller than maxPattern %d", ErrBadShardConfig, shardSize, maxPattern)
	}
	s := &Sharded{textLen: len(text), maxPat: maxPattern, shardSize: shardSize}
	for off := 0; off < len(text); off += shardSize {
		s.starts = append(s.starts, off)
		s.shards = append(s.shards, nil)
	}
	if len(s.shards) == 0 {
		s.starts = []int{0}
		s.shards = []*Index{Build(nil)}
		return s, nil
	}
	if workers <= 0 || workers > len(s.shards) {
		workers = len(s.shards)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				off := s.starts[i]
				end := off + shardSize + maxPattern - 1
				if end > len(text) {
					end = len(text)
				}
				s.shards[i] = Build(text[off:end])
			}
		}()
	}
	for i := range s.shards {
		work <- i
	}
	close(work)
	wg.Wait()
	return s, nil
}

// Len returns the total indexed length.
func (s *Sharded) Len() int { return s.textLen }

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// MaxPattern returns the longest supported query pattern.
func (s *Sharded) MaxPattern() int { return s.maxPat }

func (s *Sharded) checkPattern(p []byte) error {
	if len(p) > s.maxPat {
		return fmt.Errorf("%w: length %d exceeds the sharded index's maxPattern %d", ErrPatternTooLong, len(p), s.maxPat)
	}
	return nil
}

// Text reconstructs the indexed string from the shards' own slices
// (overlap regions belong to the next shard and are skipped). The
// Cached decorator uses it to build the q-gram negative filter.
func (s *Sharded) Text() []byte {
	out := make([]byte, 0, s.textLen)
	for i, sh := range s.shards {
		t := sh.Text()
		if i < len(s.shards)-1 && len(t) > s.shardSize {
			t = t[:s.shardSize]
		}
		out = append(out, t...)
	}
	return out
}

// Contains reports whether p occurs anywhere in the sharded text.
func (s *Sharded) Contains(p []byte) (bool, error) {
	return s.ContainsContext(context.Background(), p)
}

// ContainsContext reports whether p occurs; equivalent to Query with
// KindContains.
func (s *Sharded) ContainsContext(ctx context.Context, p []byte) (bool, error) {
	res, err := s.Query(ctx, p, QueryOptions{Kind: KindContains})
	return res.Found, err
}

// Find returns the first (global) occurrence offset of p, or -1.
func (s *Sharded) Find(p []byte) (int, error) {
	return s.FindContext(context.Background(), p)
}

// FindContext returns the first occurrence offset; equivalent to Query
// with KindFind.
func (s *Sharded) FindContext(ctx context.Context, p []byte) (int, error) {
	res, err := s.Query(ctx, p, QueryOptions{Kind: KindFind})
	return res.Position, err
}

// findFirst scans shards in order for the pattern's first (hence
// globally smallest) occurrence: an earlier shard's own slice precedes
// every later shard's, so the first hit wins and later shards are never
// descended.
func (s *Sharded) findFirst(ctx context.Context, p []byte) (QueryResult, error) {
	res := QueryResult{Position: -1}
	for i, sh := range s.shards {
		sub, err := sh.Query(ctx, p, QueryOptions{Kind: KindFind})
		res.NodesChecked += sub.NodesChecked
		if err != nil {
			return QueryResult{Position: -1}, err
		}
		if sub.Found {
			res.Found = true
			res.Position = s.starts[i] + sub.Position
			return res, nil
		}
	}
	return res, nil
}

// FindAll returns every global occurrence offset of p in increasing
// order, querying shards in parallel and deduplicating overlap-region
// hits.
func (s *Sharded) FindAll(p []byte) ([]int, error) {
	return s.FindAllContext(context.Background(), p)
}

// FindAllContext implements Querier; see FindAll.
func (s *Sharded) FindAllContext(ctx context.Context, p []byte) ([]int, error) {
	res, err := s.FindAllLimitContext(ctx, p, 0)
	return res.Positions, err
}

// FindAllLimit returns at most max occurrences.
//
// Deprecated: use Query with KindFindAll and a Limit, which also
// reports truncation and scan work.
func (s *Sharded) FindAllLimit(p []byte, max int) ([]int, error) {
	res, err := s.FindAllLimitContext(context.Background(), p, max)
	return res.Positions, err
}

// FindAllLimitContext returns at most limit occurrences; equivalent to
// Query with KindFindAll.
func (s *Sharded) FindAllLimitContext(ctx context.Context, p []byte, limit int) (QueryResult, error) {
	return s.Query(ctx, p, QueryOptions{Kind: KindFindAll, Limit: limit})
}

// findAllLimit is the KindFindAll engine. Shards are scanned in
// parallel; each fetches enough hits that the merged global prefix is
// exact even though overlap-region starts are discarded. The caller
// (Query) has already validated the pattern length.
func (s *Sharded) findAllLimit(ctx context.Context, p []byte, limit int) (QueryResult, error) {
	var res QueryResult
	if len(p) == 0 {
		n := s.textLen + 1
		if limit > 0 && n > limit {
			n = limit
			res.Truncated = true
		}
		res.Positions = make([]int, n)
		for i := range res.Positions {
			res.Positions[i] = i
		}
		return res, nil
	}
	// A shard's own slice is [0, shardSize); starts in the overlap belong
	// to the next shard. The overlap holds at most maxPat-1 starts, so
	// fetching limit+maxPat-1 raw hits guarantees at least limit own-slice
	// hits whenever that many exist.
	shardLimit := 0
	if limit > 0 {
		shardLimit = limit + s.maxPat - 1
	}
	// When tracing, each shard goroutine records into its own child trace
	// (no cross-goroutine lock traffic during the fan-out); the children
	// are adopted after the barrier with their shard number stamped, so
	// the slow-query log can tell a hot shard from a slow merge.
	tr := trace.FromContext(ctx)
	qc := obs.FromContext(ctx)
	var kids []*trace.Trace
	if tr != nil {
		kids = make([]*trace.Trace, len(s.shards))
	}
	perShard := make([]QueryResult, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx := ctx
			var sp trace.Span
			if tr != nil {
				kids[i] = trace.New()
				sctx = trace.NewContext(ctx, kids[i])
				sp = kids[i].Start(trace.StageShard)
			}
			leg := qc.StartLeg(i)
			raw, err := s.shards[i].FindAllLimitContext(sctx, p, shardLimit)
			sp.End()
			leg.End(raw.NodesChecked, len(raw.Positions), err, legStages(kids, i))
			if err != nil {
				errs[i] = err
				return
			}
			kept := QueryResult{Truncated: raw.Truncated, NodesChecked: raw.NodesChecked}
			for _, pos := range raw.Positions {
				if pos < s.shardSize || i == len(s.shards)-1 {
					kept.Positions = append(kept.Positions, s.starts[i]+pos)
				}
			}
			perShard[i] = kept
		}(i)
	}
	wg.Wait()
	for i, kid := range kids {
		tr.Adopt(kid, i)
	}
	for _, err := range errs {
		if err != nil {
			return QueryResult{}, err
		}
	}
	msp := tr.Start(trace.StageMerge)
	var out []int
	for _, sh := range perShard {
		out = append(out, sh.Positions...)
		res.NodesChecked += sh.NodesChecked
		res.Truncated = res.Truncated || sh.Truncated
	}
	sort.Ints(out)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
		res.Truncated = true
	}
	res.Positions = out
	msp.End()
	return res, nil
}

// QueryBatch implements Querier: the whole (deduplicated) batch fans
// out to every shard, each shard resolves its occurrences with a single
// backbone scan (see Index.QueryBatch), and the per-shard answers merge
// into globally ordered positions with the single-query overlap
// filtering and truncation semantics. Patterns longer than maxPattern
// fail individually via QueryResult.Err rather than failing the batch.
func (s *Sharded) QueryBatch(ctx context.Context, patterns [][]byte, opts BatchOptions) ([]QueryResult, error) {
	limits, err := opts.itemLimits(len(patterns))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]QueryResult, len(patterns))
	dupOf, uniq := batchDedupe(patterns, limits)
	// Classify the unique items: empty patterns are answered inline,
	// overlong ones fail per-item, the rest fan out.
	work := uniq[:0:0]
	for _, i := range uniq {
		p := patterns[i]
		if len(p) == 0 {
			results[i] = emptyPatternResult(s.textLen, limits[i])
			continue
		}
		if err := s.checkPattern(p); err != nil {
			results[i].Err = err
			continue
		}
		work = append(work, i)
	}
	if len(work) > 0 {
		// Every shard answers the same sub-batch; per-item shard limits
		// over-fetch by maxPat-1 so discarding overlap-region starts still
		// leaves an exact global prefix (see FindAllLimitContext).
		subPats := make([][]byte, len(work))
		subLimits := make([]int, len(work))
		for k, i := range work {
			subPats[k] = patterns[i]
			if limits[i] > 0 {
				subLimits[k] = limits[i] + s.maxPat - 1
			}
		}
		shardWorkers := opts.Workers
		if shardWorkers <= 0 {
			shardWorkers = 1 // the fan-out below is the parallelism
		}
		shardOpts := BatchOptions{Limits: subLimits, Workers: shardWorkers}
		tr := trace.FromContext(ctx)
		qc := obs.FromContext(ctx)
		var kids []*trace.Trace
		if tr != nil {
			kids = make([]*trace.Trace, len(s.shards))
		}
		perShard := make([][]QueryResult, len(s.shards))
		errs := make([]error, len(s.shards))
		var wg sync.WaitGroup
		for si := range s.shards {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				sctx := ctx
				var sp trace.Span
				if tr != nil {
					kids[si] = trace.New()
					sctx = trace.NewContext(ctx, kids[si])
					sp = kids[si].Start(trace.StageShard)
				}
				leg := qc.StartLeg(si)
				rs, err := s.shards[si].QueryBatch(sctx, subPats, shardOpts)
				sp.End()
				var nodes int64
				var hits int
				for _, r := range rs {
					nodes += r.NodesChecked
					hits += len(r.Positions)
				}
				leg.End(nodes, hits, err, legStages(kids, si))
				if err != nil {
					errs[si] = err
					return
				}
				perShard[si] = rs
			}(si)
		}
		wg.Wait()
		for si, kid := range kids {
			tr.Adopt(kid, si)
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		msp := tr.Start(trace.StageMerge)
		last := len(s.shards) - 1
		for k, i := range work {
			var item QueryResult
			var out []int
			for si := range s.shards {
				r := perShard[si][k]
				item.NodesChecked += r.NodesChecked
				item.Truncated = item.Truncated || r.Truncated
				for _, pos := range r.Positions {
					if pos < s.shardSize || si == last {
						out = append(out, s.starts[si]+pos)
					}
				}
			}
			sort.Ints(out)
			if limits[i] > 0 && len(out) > limits[i] {
				out = out[:limits[i]]
				item.Truncated = true
			}
			item.Positions = out
			results[i] = item
		}
		msp.End()
	}
	for _, i := range uniq {
		if results[i].Err == nil {
			results[i].normalize()
		} else {
			results[i].Position = -1
		}
	}
	for i := range patterns {
		if dupOf[i] != i {
			results[i] = results[dupOf[i]]
		}
	}
	return results, nil
}

// Count returns the number of occurrences of p.
func (s *Sharded) Count(p []byte) (int, error) {
	return s.CountContext(context.Background(), p)
}

// CountContext returns the number of occurrences of p; equivalent to
// Query with KindCount.
func (s *Sharded) CountContext(ctx context.Context, p []byte) (int, error) {
	res, err := s.Query(ctx, p, QueryOptions{Kind: KindCount})
	return res.Count, err
}

// count is the KindCount engine. Each shard counts the occurrences
// that start in its own slice — overlap-region starts belong to the next
// shard, so the per-shard counts sum to the exact global count with no
// dedup merge. The scans stream: nothing per-occurrence is materialized.
// The caller (Query) has already validated the pattern length.
func (s *Sharded) count(ctx context.Context, p []byte) (int, error) {
	if len(p) == 0 {
		return s.textLen + 1, nil
	}
	tr := trace.FromContext(ctx)
	qc := obs.FromContext(ctx)
	var kids []*trace.Trace
	if tr != nil {
		kids = make([]*trace.Trace, len(s.shards))
	}
	counts := make([]int, len(s.shards))
	errs := make([]error, len(s.shards))
	last := len(s.shards) - 1
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx := ctx
			var sp trace.Span
			if tr != nil {
				kids[i] = trace.New()
				sctx = trace.NewContext(ctx, kids[i])
				sp = kids[i].Start(trace.StageShard)
			}
			maxStart := s.shardSize
			if i == last {
				maxStart = -1 // no overlap region after the final shard
			}
			leg := qc.StartLeg(i)
			counts[i], errs[i] = s.shards[i].countPrefixContext(sctx, p, maxStart)
			sp.End()
			var nodes int64
			if tr != nil {
				nodes = kids[i].TotalNodes()
			}
			leg.End(nodes, counts[i], errs[i], legStages(kids, i))
		}(i)
	}
	wg.Wait()
	for i, kid := range kids {
		tr.Adopt(kid, i)
	}
	total := 0
	for i := range counts {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += counts[i]
	}
	return total, nil
}

// legStages summarizes one shard goroutine's child trace for its
// shard-leg wide event. It runs before the post-barrier Adopt (Records
// copies under the child's lock), so the leg event carries the stage
// breakdown even though the records move to the parent afterwards.
func legStages(kids []*trace.Trace, i int) []trace.StageSummary {
	if kids == nil || kids[i] == nil {
		return nil
	}
	return trace.Summarize(kids[i].Records())
}

// Stats aggregates the structural measurements of every shard: counts
// are summed, label maxima taken, and fan-out buckets merged. Length is
// the logical text length (shard overlaps excluded), so the sum of the
// shard Lengths exceeds it.
func (s *Sharded) Stats() Stats {
	agg := Stats{Length: s.textLen}
	for _, sh := range s.shards {
		st := sh.Stats()
		agg.RibCount += st.RibCount
		agg.ExtribCount += st.ExtribCount
		agg.MemoryBytes += st.MemoryBytes
		agg.MaxLEL = max(agg.MaxLEL, st.MaxLEL)
		agg.MaxPT = max(agg.MaxPT, st.MaxPT)
		agg.MaxPRT = max(agg.MaxPRT, st.MaxPRT)
		for len(agg.FanoutNodes) < len(st.FanoutNodes) {
			agg.FanoutNodes = append(agg.FanoutNodes, 0)
		}
		for i, n := range st.FanoutNodes {
			agg.FanoutNodes[i] += n
		}
	}
	return agg
}
