package spine

import (
	"fmt"
	"sort"
	"sync"
)

// Sharded is a SPINE index split into fixed-size shards that build and
// query in parallel. SPINE construction is inherently sequential (each
// node's link depends on the previous), so a single multi-gigabyte genome
// builds on one core; sharding trades a bounded pattern length for
// near-linear build speedup and parallel query fan-out.
//
// Each shard indexes its slice of the text plus an overlap of
// maxPattern-1 characters from the next shard, so every occurrence of a
// pattern up to maxPattern long lies entirely inside at least one shard.
// Queries longer than maxPattern are rejected.
type Sharded struct {
	shards    []*Index
	starts    []int // global start offset of each shard's slice
	textLen   int
	maxPat    int
	shardSize int
}

// BuildSharded indexes text in parallel shards of shardSize characters,
// supporting patterns up to maxPattern long. shardSize must be at least
// maxPattern. workers <= 0 means one goroutine per shard.
func BuildSharded(text []byte, shardSize, maxPattern, workers int) (*Sharded, error) {
	if maxPattern < 1 {
		return nil, fmt.Errorf("spine: maxPattern %d < 1", maxPattern)
	}
	if shardSize < maxPattern {
		return nil, fmt.Errorf("spine: shard size %d smaller than maxPattern %d", shardSize, maxPattern)
	}
	s := &Sharded{textLen: len(text), maxPat: maxPattern, shardSize: shardSize}
	for off := 0; off < len(text); off += shardSize {
		end := off + shardSize + maxPattern - 1
		if end > len(text) {
			end = len(text)
		}
		s.starts = append(s.starts, off)
		s.shards = append(s.shards, nil)
		_ = end
	}
	if len(s.shards) == 0 {
		s.starts = []int{0}
		s.shards = []*Index{Build(nil)}
		return s, nil
	}
	if workers <= 0 || workers > len(s.shards) {
		workers = len(s.shards)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				off := s.starts[i]
				end := off + shardSize + maxPattern - 1
				if end > len(text) {
					end = len(text)
				}
				s.shards[i] = Build(text[off:end])
			}
		}()
	}
	for i := range s.shards {
		work <- i
	}
	close(work)
	wg.Wait()
	return s, nil
}

// Len returns the total indexed length.
func (s *Sharded) Len() int { return s.textLen }

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

func (s *Sharded) checkPattern(p []byte) error {
	if len(p) > s.maxPat {
		return fmt.Errorf("spine: pattern length %d exceeds the sharded index's maxPattern %d", len(p), s.maxPat)
	}
	return nil
}

// Contains reports whether p occurs anywhere in the sharded text.
func (s *Sharded) Contains(p []byte) (bool, error) {
	if err := s.checkPattern(p); err != nil {
		return false, err
	}
	for _, sh := range s.shards {
		if sh.Contains(p) {
			return true, nil
		}
	}
	return false, nil
}

// Find returns the first (global) occurrence offset of p, or -1.
func (s *Sharded) Find(p []byte) (int, error) {
	if err := s.checkPattern(p); err != nil {
		return -1, err
	}
	for i, sh := range s.shards {
		if pos := sh.Find(p); pos >= 0 {
			return s.starts[i] + pos, nil
		}
	}
	return -1, nil
}

// FindAll returns every global occurrence offset of p in increasing
// order, querying shards in parallel and deduplicating overlap-region
// hits.
func (s *Sharded) FindAll(p []byte) ([]int, error) {
	if err := s.checkPattern(p); err != nil {
		return nil, err
	}
	if len(p) == 0 {
		out := make([]int, s.textLen+1)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	perShard := make([][]int, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Only keep occurrences starting inside this shard's own
			// slice; starts in the overlap belong to the next shard.
			for _, pos := range s.shards[i].FindAll(p) {
				if pos < s.shardSize || i == len(s.shards)-1 {
					perShard[i] = append(perShard[i], s.starts[i]+pos)
				}
			}
		}(i)
	}
	wg.Wait()
	var out []int
	for _, hits := range perShard {
		out = append(out, hits...)
	}
	sort.Ints(out)
	return out, nil
}

// Count returns the number of occurrences of p.
func (s *Sharded) Count(p []byte) (int, error) {
	occ, err := s.FindAll(p)
	return len(occ), err
}
