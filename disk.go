package spine

import (
	"github.com/spine-index/spine/internal/diskindex"
	"github.com/spine-index/spine/internal/pager"
)

// DiskPolicy selects the disk buffer replacement policy.
type DiskPolicy int

const (
	// PolicyLRU evicts the least recently used page.
	PolicyLRU DiskPolicy = iota
	// PolicyTopRetention keeps the top (lowest-numbered) pages resident —
	// the paper's policy, which exploits SPINE's top-heavy link locality.
	PolicyTopRetention
)

// DiskOptions configures a disk-resident index.
type DiskOptions struct {
	// PageSize in bytes (0 = 4096).
	PageSize int
	// BufferPages is the buffer pool capacity in pages (0 = 1024).
	BufferPages int
	// Sync makes page writes synchronous, the paper's §6.2 methodology.
	Sync bool
	// Policy selects the replacement policy.
	Policy DiskPolicy
}

// DiskIOStats counts physical page transfers.
type DiskIOStats struct {
	Reads, Writes int64
}

// DiskIndex is a disk-resident SPINE index: the same structure and
// algorithms as Index, with every node access routed through a buffer
// pool over page files.
type DiskIndex struct {
	s *diskindex.Spine
}

// CreateDisk creates an empty disk index in dir.
func CreateDisk(dir string, opts DiskOptions) (*DiskIndex, error) {
	pol := pager.LRU
	if opts.Policy == PolicyTopRetention {
		pol = pager.TopRetention
	}
	s, err := diskindex.CreateSpine(dir, diskindex.Options{
		PageSize:    opts.PageSize,
		BufferPages: opts.BufferPages,
		Sync:        opts.Sync,
		Policy:      pol,
	})
	if err != nil {
		return nil, err
	}
	return &DiskIndex{s: s}, nil
}

// OpenDisk opens a disk index previously built in dir and flushed or
// closed. The page size comes from the stored metadata; buffering options
// come from opts.
func OpenDisk(dir string, opts DiskOptions) (*DiskIndex, error) {
	pol := pager.LRU
	if opts.Policy == PolicyTopRetention {
		pol = pager.TopRetention
	}
	s, err := diskindex.OpenSpine(dir, diskindex.Options{
		BufferPages: opts.BufferPages,
		Sync:        opts.Sync,
		Policy:      pol,
	})
	if err != nil {
		return nil, err
	}
	return &DiskIndex{s: s}, nil
}

// Append extends the index by one character.
func (d *DiskIndex) Append(c byte) error { return d.s.Append(c) }

// AppendString extends the index by every byte of s.
func (d *DiskIndex) AppendString(s []byte) error { return d.s.AppendAll(s) }

// Len returns the number of indexed characters.
func (d *DiskIndex) Len() int { return d.s.Len() }

// Contains reports whether p occurs in the indexed text.
func (d *DiskIndex) Contains(p []byte) (bool, error) { return d.s.Contains(p) }

// Find returns the first-occurrence start offset of p, or -1.
func (d *DiskIndex) Find(p []byte) (int, error) { return d.s.Find(p) }

// FindAll returns every occurrence start offset of p, increasing.
func (d *DiskIndex) FindAll(p []byte) ([]int, error) { return d.s.FindAll(p) }

// IOStats returns the physical I/O counters.
func (d *DiskIndex) IOStats() DiskIOStats {
	st := d.s.IOStats()
	return DiskIOStats{Reads: st.Reads, Writes: st.Writes}
}

// HitRate returns the buffer pool hit rate in [0, 1].
func (d *DiskIndex) HitRate() float64 { return d.s.HitRate() }

// Flush writes all dirty pages to disk.
func (d *DiskIndex) Flush() error { return d.s.Flush() }

// Close flushes and closes the index files.
func (d *DiskIndex) Close() error { return d.s.Close() }
