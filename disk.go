package spine

import (
	"context"
	"errors"
	"fmt"

	"github.com/spine-index/spine/internal/diskindex"
	"github.com/spine-index/spine/internal/pager"
)

// DiskPolicy selects the disk buffer replacement policy.
type DiskPolicy int

const (
	// PolicyLRU evicts the least recently used page.
	PolicyLRU DiskPolicy = iota
	// PolicyTopRetention keeps the top (lowest-numbered) pages resident —
	// the paper's policy, which exploits SPINE's top-heavy link locality.
	PolicyTopRetention
)

// DiskOptions configures a disk-resident index.
type DiskOptions struct {
	// PageSize in bytes (0 = 4096).
	PageSize int
	// BufferPages is the buffer pool capacity in pages (0 = 1024).
	BufferPages int
	// Sync makes page writes synchronous, the paper's §6.2 methodology.
	Sync bool
	// Policy selects the replacement policy.
	Policy DiskPolicy
}

// DiskIOStats counts physical page transfers.
type DiskIOStats struct {
	Reads, Writes int64
}

// DiskIndex is a disk-resident SPINE index: the same structure and
// algorithms as Index, with every node access routed through a buffer
// pool over page files.
type DiskIndex struct {
	s *diskindex.Spine
}

// CreateDisk creates an empty disk index in dir.
func CreateDisk(dir string, opts DiskOptions) (*DiskIndex, error) {
	pol := pager.LRU
	if opts.Policy == PolicyTopRetention {
		pol = pager.TopRetention
	}
	s, err := diskindex.CreateSpine(dir, diskindex.Options{
		PageSize:    opts.PageSize,
		BufferPages: opts.BufferPages,
		Sync:        opts.Sync,
		Policy:      pol,
	})
	if err != nil {
		return nil, err
	}
	return &DiskIndex{s: s}, nil
}

// OpenDisk opens a disk index previously built in dir and flushed or
// closed. The page size comes from the stored metadata; a non-zero
// opts.PageSize must agree with it, failing with ErrPageSizeMismatch
// otherwise (it is the size the page files were written with, so a
// different request cannot be honored). Buffering options come from
// opts.
func OpenDisk(dir string, opts DiskOptions) (*DiskIndex, error) {
	pol := pager.LRU
	if opts.Policy == PolicyTopRetention {
		pol = pager.TopRetention
	}
	s, err := diskindex.OpenSpine(dir, diskindex.Options{
		PageSize:    opts.PageSize,
		BufferPages: opts.BufferPages,
		Sync:        opts.Sync,
		Policy:      pol,
	})
	if err != nil {
		if errors.Is(err, diskindex.ErrPageSizeMismatch) {
			return nil, fmt.Errorf("%w: %w", ErrPageSizeMismatch, err)
		}
		return nil, err
	}
	return &DiskIndex{s: s}, nil
}

// Append extends the index by one character.
func (d *DiskIndex) Append(c byte) error { return d.s.Append(c) }

// AppendString extends the index by every byte of s.
func (d *DiskIndex) AppendString(s []byte) error { return d.s.AppendAll(s) }

// Len returns the number of indexed characters.
func (d *DiskIndex) Len() int { return d.s.Len() }

// Contains reports whether p occurs in the indexed text.
func (d *DiskIndex) Contains(p []byte) (bool, error) { return d.s.Contains(p) }

// Find returns the first-occurrence start offset of p, or -1.
func (d *DiskIndex) Find(p []byte) (int, error) { return d.s.Find(p) }

// FindAll returns every occurrence start offset of p, increasing.
func (d *DiskIndex) FindAll(p []byte) ([]int, error) { return d.s.FindAll(p) }

// Compile-time check: the disk index serves the same unified query
// surface as the in-memory flavors, so it plugs into servers, caches
// and benchmark harnesses interchangeably.
var _ Querier = (*DiskIndex)(nil)

// Query implements Querier; see Index.Query. Unlike the legacy
// per-method variants (Contains, Find, FindAll), Query honors the
// context — a cancelled ctx aborts the buffer-pool walk within a few
// thousand probes — and disk failures surface as the returned error.
func (d *DiskIndex) Query(ctx context.Context, p []byte, opts QueryOptions) (QueryResult, error) {
	switch opts.Kind {
	case KindContains, KindFind:
		if err := ctx.Err(); err != nil {
			return QueryResult{Position: -1}, err
		}
		res := QueryResult{Position: -1, NodesChecked: int64(len(p))}
		end, ok, err := d.s.EndNodeCtx(ctx, p)
		if err != nil {
			return QueryResult{Position: -1}, err
		}
		if ok {
			res.Found = true
			res.Position = int(end) - len(p)
		}
		return res, nil
	case KindFindAll:
		if err := ctx.Err(); err != nil {
			return QueryResult{Position: -1}, err
		}
		if len(p) == 0 {
			res := emptyPatternResult(d.Len(), opts.Limit)
			res.normalize()
			return res, nil
		}
		scan, err := d.s.FindAllLimitCtx(ctx, p, opts.Limit)
		if err != nil {
			return QueryResult{Position: -1}, err
		}
		res := QueryResult{
			Truncated:    scan.Truncated,
			NodesChecked: int64(len(p)) + scan.Scanned,
			Positions:    make([]int, len(scan.Ends)),
		}
		for i, e := range scan.Ends {
			res.Positions[i] = int(e) - len(p)
		}
		res.normalize()
		return res, nil
	case KindCount:
		n, _, err := d.s.CountCtx(ctx, p)
		if err != nil {
			return QueryResult{Position: -1}, err
		}
		return QueryResult{Count: n, Found: n > 0, Position: -1}, nil
	default:
		return QueryResult{Position: -1}, fmt.Errorf("%w: %d", ErrBadQueryKind, opts.Kind)
	}
}

// QueryBatch implements Querier; see Index.QueryBatch. Descents run
// sequentially — every node access shares one buffer pool, which is
// single-threaded by design — but all occurrence sets still resolve in
// a single backbone pass, which is where batching pays on disk: each
// node page is read once for the whole batch instead of once per
// pattern.
func (d *DiskIndex) QueryBatch(ctx context.Context, patterns [][]byte, opts BatchOptions) ([]QueryResult, error) {
	limits, err := opts.itemLimits(len(patterns))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]QueryResult, len(patterns))
	dupOf, uniq := batchDedupe(patterns, limits)
	work := uniq[:0:0]
	for _, i := range uniq {
		if len(patterns[i]) == 0 {
			results[i] = emptyPatternResult(d.Len(), limits[i])
			continue
		}
		work = append(work, i)
	}
	firsts := make([]int32, len(work))
	found := make([]bool, len(work))
	for k, i := range work {
		firsts[k], found[k], err = d.s.EndNodeCtx(ctx, patterns[i])
		if err != nil {
			return nil, err
		}
	}
	var (
		scanFirsts []int32
		scanLens   []int32
		scanLimits []int
		parts      []int
	)
	for k, i := range work {
		results[i].NodesChecked = int64(len(patterns[i]))
		if !found[k] {
			continue
		}
		parts = append(parts, i)
		scanFirsts = append(scanFirsts, firsts[k])
		scanLens = append(scanLens, int32(len(patterns[i])))
		scanLimits = append(scanLimits, limits[i])
	}
	if len(parts) > 0 {
		scan, err := d.s.ScanManyLimitCtx(ctx, scanFirsts, scanLens, scanLimits)
		if err != nil {
			return nil, err
		}
		share := scan.Scanned / int64(len(parts))
		rem := scan.Scanned % int64(len(parts))
		for k, i := range parts {
			plen := len(patterns[i])
			pos := make([]int, len(scan.Ends[k]))
			for e, end := range scan.Ends[k] {
				pos[e] = int(end) - plen
			}
			results[i].Positions = pos
			results[i].Truncated = scan.Truncated[k]
			results[i].NodesChecked += share
			if int64(k) < rem {
				results[i].NodesChecked++
			}
		}
	}
	for _, i := range uniq {
		results[i].normalize()
	}
	for i := range patterns {
		if dupOf[i] != i {
			results[i] = results[dupOf[i]]
		}
	}
	return results, nil
}

// IOStats returns the physical I/O counters.
func (d *DiskIndex) IOStats() DiskIOStats {
	st := d.s.IOStats()
	return DiskIOStats{Reads: st.Reads, Writes: st.Writes}
}

// HitRate returns the buffer pool hit rate in [0, 1].
func (d *DiskIndex) HitRate() float64 { return d.s.HitRate() }

// Flush writes all dirty pages to disk.
func (d *DiskIndex) Flush() error { return d.s.Flush() }

// Close flushes and closes the index files.
func (d *DiskIndex) Close() error { return d.s.Close() }
