package spine

import (
	"context"
	"errors"
	"testing"
)

// buildDiskFixture builds matching disk and in-memory indexes over the
// same text.
func buildDiskFixture(t *testing.T, text []byte) (*DiskIndex, *Index) {
	t.Helper()
	d, err := CreateDisk(t.TempDir(), DiskOptions{PageSize: 512, BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if err := d.AppendString(text); err != nil {
		t.Fatal(err)
	}
	return d, Build(text)
}

func TestOpenDiskPageSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	d, err := CreateDisk(dir, DiskOptions{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AppendString([]byte("acgtacgt")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// A conflicting page size must fail loudly with the sentinel, not be
	// silently ignored (the page files were written at 512).
	if _, err := OpenDisk(dir, DiskOptions{PageSize: 4096}); !errors.Is(err, ErrPageSizeMismatch) {
		t.Fatalf("mismatched page size: err = %v, want ErrPageSizeMismatch", err)
	}
	// Zero (use stored) and the matching value both open.
	for _, ps := range []int{0, 512} {
		re, err := OpenDisk(dir, DiskOptions{PageSize: ps})
		if err != nil {
			t.Fatalf("PageSize %d: %v", ps, err)
		}
		if ok, err := re.Contains([]byte("gtac")); err != nil || !ok {
			t.Fatalf("PageSize %d: Contains = %v, %v", ps, ok, err)
		}
		re.Close()
	}
}

func TestDiskQuerierMatchesIndex(t *testing.T) {
	text := []byte("aaccacaacaggtaccaaccacaacaggtaccagattacagattaca")
	d, ref := buildDiskFixture(t, text)
	ctx := context.Background()
	pats := [][]byte{
		[]byte("a"), []byte("acca"), []byte("gattaca"), []byte("zzz"),
		[]byte("aaccacaaca"), {},
	}
	for _, p := range pats {
		for _, kind := range []QueryKind{KindContains, KindFind, KindFindAll, KindCount} {
			got, err := d.Query(ctx, p, QueryOptions{Kind: kind, Limit: 3})
			if err != nil {
				t.Fatalf("disk %s(%q): %v", kind, p, err)
			}
			want, err := ref.Query(ctx, p, QueryOptions{Kind: kind, Limit: 3})
			if err != nil {
				t.Fatalf("ref %s(%q): %v", kind, p, err)
			}
			if got.Found != want.Found || got.Position != want.Position ||
				got.Count != want.Count || got.Truncated != want.Truncated ||
				len(got.Positions) != len(want.Positions) {
				t.Fatalf("%s(%q): disk %+v != index %+v", kind, p, got, want)
			}
			for i := range got.Positions {
				if got.Positions[i] != want.Positions[i] {
					t.Fatalf("%s(%q): position %d differs", kind, p, i)
				}
			}
		}
	}
	if _, err := d.Query(ctx, []byte("a"), QueryOptions{Kind: QueryKind(99)}); !errors.Is(err, ErrBadQueryKind) {
		t.Fatalf("bad kind: err = %v", err)
	}
}

func TestDiskQueryBatchMatchesIndex(t *testing.T) {
	text := []byte("aaccacaacaggtaccaaccacaacaggtaccagattacagattaca")
	d, ref := buildDiskFixture(t, text)
	ctx := context.Background()
	pats := [][]byte{[]byte("acca"), []byte("gattaca"), []byte("acca"), {}, []byte("zzz"), []byte("a")}
	got, err := d.QueryBatch(ctx, pats, BatchOptions{Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.QueryBatch(ctx, pats, BatchOptions{Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Found != want[i].Found || got[i].Count != want[i].Count ||
			got[i].Truncated != want[i].Truncated || got[i].Position != want[i].Position {
			t.Fatalf("item %d (%q): disk %+v != index %+v", i, pats[i], got[i], want[i])
		}
	}
	// Malformed batch: Limits length disagreeing with the pattern count.
	if _, err := d.QueryBatch(ctx, pats, BatchOptions{Limits: []int{1}}); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("bad limits: err = %v", err)
	}
}

func TestDiskQueryCancellation(t *testing.T) {
	text := make([]byte, 40000)
	for i := range text {
		text[i] = "acgt"[i%4]
	}
	d, _ := buildDiskFixture(t, text)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Every kind must notice the dead context instead of walking the
	// whole buffer pool.
	for _, kind := range []QueryKind{KindContains, KindFind, KindFindAll, KindCount} {
		if _, err := d.Query(ctx, []byte("acgt"), QueryOptions{Kind: kind}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", kind, err)
		}
	}
	if _, err := d.QueryBatch(ctx, [][]byte{[]byte("acgt")}, BatchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch: err = %v, want context.Canceled", err)
	}
}
