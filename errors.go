package spine

import "errors"

// Sentinel errors returned by the public API. Callers — in particular
// query servers mapping failures to HTTP status classes — should test
// with errors.Is: every error carrying details (lengths, indexes,
// offending bytes) wraps one of these.
var (
	// ErrPatternTooLong reports a query pattern longer than the index
	// supports (a Sharded index bounds patterns by its maxPattern; a
	// server may impose a request cap). A client error: 4xx.
	ErrPatternTooLong = errors.New("spine: pattern too long")

	// ErrEmptyAlphabet reports a nil or empty alphabet where a compact
	// layout needs one to bit-pack its character labels.
	ErrEmptyAlphabet = errors.New("spine: alphabet is nil or empty")

	// ErrBadShardConfig reports an invalid BuildSharded configuration
	// (non-positive maxPattern, or a shard size smaller than maxPattern).
	ErrBadShardConfig = errors.New("spine: bad shard configuration")

	// ErrSeparatorInText reports that a string passed to BuildGeneralized
	// contains the separator byte and so cannot be joined unambiguously.
	ErrSeparatorInText = errors.New("spine: text contains the separator byte")

	// ErrBadBatch reports a malformed QueryBatch request (for example a
	// Limits slice whose length does not match the pattern count). A
	// client error: 4xx.
	ErrBadBatch = errors.New("spine: bad batch request")

	// ErrBadQueryKind reports a QueryOptions.Kind outside the defined
	// QueryKind values. A client error: 4xx.
	ErrBadQueryKind = errors.New("spine: unknown query kind")

	// ErrPageSizeMismatch reports an OpenDisk whose DiskOptions.PageSize
	// disagrees with the page size recorded when the index was built.
	// The stored size is authoritative; reopen with PageSize zero (use
	// the stored size) or the matching value.
	ErrPageSizeMismatch = errors.New("spine: disk index page size mismatch")
)
