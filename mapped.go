package spine

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/mmap"
	"github.com/spine-index/spine/internal/pager"
)

// MappedOptions tune OpenMapped. The zero value is the serving
// default: memory-map when the platform supports it, structural
// verification only (milliseconds regardless of index size), no
// warmup, and readahead with a 64 MiB range-cache budget.
type MappedOptions struct {
	// NoMmap forces the portable io.ReaderAt open (one aligned read of
	// the whole image into the heap) even where mmap is available.
	NoMmap bool
	// Verify makes a memory-mapped open check every section checksum
	// and the inter-section padding, touching the whole file — the
	// integrity of ReadCompact at the cost of the lazy cold-open. The
	// structural header/directory checks always run. The fallback open
	// paths read the whole file anyway and always verify fully.
	Verify bool
	// Warmup synchronously touches the hot top of the Link Table (the
	// first WarmupBytes of the LEL and link rows, §5's top-heavy
	// region) plus the block-skip metadata, so the first queries hit
	// warm pages. Only meaningful for memory-mapped opens.
	Warmup bool
	// WarmupBytes caps the warmup touch per table; 0 means 16 MiB.
	WarmupBytes int64
	// ReadaheadNodes is how many backbone nodes ahead of the scan
	// cursor the readahead keeps resident; 0 means 1<<18 nodes. < 0
	// disables scan readahead.
	ReadaheadNodes int
	// RangeCacheBytes budgets the readahead range cache; 0 means
	// 64 MiB. A budget smaller than the scanned region makes
	// larger-than-RAM sweeps re-prefetch honestly instead of assuming
	// everything stays resident.
	RangeCacheBytes int64
}

// DiskStats is a point-in-time snapshot of a MappedCompact's disk
// path, the source for the spine_disk_* metric families.
type DiskStats struct {
	// Mode is "mmap" (zero-copy mapping), "readerat" (aligned heap
	// image via the portable fallback), or "heap" (legacy-format full
	// deserialization).
	Mode string
	// FileBytes is the on-disk image size.
	FileBytes int64
	// MappedBytes is the mapped extent (0 unless Mode == "mmap").
	MappedBytes int64
	// ResidentBytes estimates how much of the image is in memory:
	// mincore for mappings, the whole image for heap modes.
	ResidentBytes int64
	// WarmedBytes is how much the open-time warmup touched.
	WarmedBytes int64
	// ReadaheadIssued / ReadaheadHits / ReadaheadBytes count scan
	// readahead windows issued, range-cache hits (prefetches avoided —
	// with Mode "mmap" each issued window is pages the scan will not
	// fault on synchronously), and bytes covered by issued windows.
	ReadaheadIssued int64
	ReadaheadHits   int64
	ReadaheadBytes  int64
	// RangeCacheEvicted counts readahead ranges dropped to budget.
	RangeCacheEvicted int64
	// OpenNanos is the wall time of OpenMapped.
	OpenNanos int64
}

// MappedCompact is a Compact served from a disk image rather than a
// deserialized heap copy. It embeds Compact, so the whole unified
// surface — Query/QueryBatch, Cached, Sharded membership, trace and
// telemetry — works unchanged; queries additionally stream readahead
// under occurrence scans and account disk work to StageDisk.
//
// Close unmaps the image; it must not be called while queries are in
// flight, and the index is unusable afterwards.
type MappedCompact struct {
	*Compact
	m      *mmap.Mapping // nil unless mode == "mmap"
	ra     *diskReadahead
	mode   string
	file   int64
	warmed int64
	openNs int64
	closed atomic.Bool
}

// warmSink defeats dead-code elimination of warmup touch loops.
var warmSink atomic.Uint64

// OpenMapped opens a saved compact index straight from its file,
// zero-copy where possible: an mmap with access-pattern hints on
// Linux, an aligned one-read heap image elsewhere (or with NoMmap),
// and a full legacy deserialization for pre-v3 files. Cold-open of a
// current-format file does no per-element decoding at all, so it is
// bounded by directory validation, not index size.
func OpenMapped(path string, opts MappedOptions) (*MappedCompact, error) {
	start := time.Now()
	mc := &MappedCompact{}
	var layout *core.CompactLayout

	if !opts.NoMmap && mmap.Supported() {
		m, err := mmap.Map(path)
		if err != nil {
			return nil, fmt.Errorf("spine: open mapped: %w", err)
		}
		if core.CanOpenZeroCopy(m.Data()) {
			c, lay, err := core.OpenCompactBytes(m.Data(), opts.Verify)
			if err != nil {
				m.Close()
				return nil, fmt.Errorf("spine: open mapped %s: %w", path, err)
			}
			mc.Compact = &Compact{c: c}
			mc.m, mc.mode, mc.file = m, "mmap", m.Len()
			layout = lay
			// Access-pattern hints: the rib/extrib tables and packed
			// chars are hit at unpredictable offsets during descent;
			// the LEL/link rows are streamed by the occurrence scan;
			// the skip metadata is small and always hot.
			m.Advise(lay.Tables.Off, lay.Tables.Len, mmap.Random)
			m.Advise(lay.Overflow.Off, lay.Overflow.Len, mmap.Random)
			m.Advise(lay.Chars.Off, lay.Chars.Len, mmap.Random)
			m.Advise(lay.LEL.Off, lay.LEL.Len, mmap.Sequential)
			m.Advise(lay.Ref.Off, lay.Ref.Len, mmap.Sequential)
			m.Advise(lay.Blocks.Off, lay.Blocks.Len, mmap.WillNeed)
			if opts.Warmup {
				mc.warmed = warmup(m, lay, opts.WarmupBytes)
			}
		} else {
			// Legacy stream format: nothing to alias; fall through to
			// the heap open below.
			m.Close()
		}
	}
	if mc.Compact == nil {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("spine: open mapped: %w", err)
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return nil, fmt.Errorf("spine: open mapped: %w", err)
		}
		mc.file = st.Size()
		var hdr [6]byte
		if _, err := f.ReadAt(hdr[:], 0); err == nil && core.CanOpenZeroCopy(hdr[:]) {
			c, lay, err := core.OpenCompactAt(f)
			if err != nil {
				return nil, fmt.Errorf("spine: open mapped %s: %w", path, err)
			}
			mc.Compact = &Compact{c: c}
			mc.mode = "readerat"
			layout = lay
		} else {
			x, err := LoadCompact(f)
			if err != nil {
				return nil, fmt.Errorf("spine: open mapped %s: %w", path, err)
			}
			mc.Compact = x
			mc.mode = "heap"
		}
	}

	if layout != nil && opts.ReadaheadNodes >= 0 {
		window := int64(opts.ReadaheadNodes)
		if window == 0 {
			window = 1 << 18
		}
		ra := &diskReadahead{
			rc:     pager.NewRangeCache(opts.RangeCacheBytes),
			lel:    layout.LEL,
			ref:    layout.Ref,
			window: window,
		}
		if mc.m != nil {
			m := mc.m
			ra.prefetch = func(off, length int64) { m.Prefetch(off, length) }
		}
		mc.ra = ra
		mc.c.SetScanReadahead(ra)
	}
	mc.openNs = time.Since(start).Nanoseconds()
	return mc, nil
}

// warmup touches the first warmBytes of the LEL and link rows (the
// paper's top-heavy Link Table head) and all skip metadata, forcing
// them resident before the first query. Returns bytes touched.
func warmup(m *mmap.Mapping, lay *core.CompactLayout, warmBytes int64) int64 {
	if warmBytes <= 0 {
		warmBytes = 16 << 20
	}
	const page = 4096
	var sink uint64
	var touched int64
	touch := func(ext core.Extent, limit int64) {
		if ext.Len < limit {
			limit = ext.Len
		}
		if limit <= 0 {
			return
		}
		m.Prefetch(ext.Off, limit) // async first, then fault in order
		d := m.Data()
		for off := ext.Off; off < ext.Off+limit; off += page {
			sink += uint64(d[off])
		}
		touched += limit
	}
	touch(lay.LEL, warmBytes)
	touch(lay.Ref, warmBytes)
	touch(lay.Blocks, lay.Blocks.Len)
	warmSink.Add(sink)
	return touched
}

// Mapped reports whether the index serves zero-copy from an mmap (as
// opposed to a heap-resident image or legacy deserialization).
func (mc *MappedCompact) Mapped() bool { return mc.mode == "mmap" }

// Mode returns the open mode: "mmap", "readerat", or "heap".
func (mc *MappedCompact) Mode() string { return mc.mode }

// DiskStats snapshots the disk path counters.
func (mc *MappedCompact) DiskStats() DiskStats {
	ds := DiskStats{
		Mode:        mc.mode,
		FileBytes:   mc.file,
		WarmedBytes: mc.warmed,
		OpenNanos:   mc.openNs,
	}
	if mc.m != nil && !mc.closed.Load() {
		ds.MappedBytes = mc.m.Len()
		if res, err := mc.m.Resident(); err == nil {
			ds.ResidentBytes = res
		}
	} else if mc.mode != "mmap" {
		ds.ResidentBytes = mc.file
	}
	if mc.ra != nil {
		ds.ReadaheadIssued = mc.ra.issued.Load()
		ds.ReadaheadHits = mc.ra.hits.Load()
		ds.ReadaheadBytes = mc.ra.bytes.Load()
		ds.RangeCacheEvicted = mc.ra.rc.Stats().Evicted
	}
	return ds
}

// Close releases the mapping. Queries must have drained: a query
// racing Close would read unmapped memory.
func (mc *MappedCompact) Close() error {
	if mc.closed.Swap(true) {
		return nil
	}
	mc.c.SetScanReadahead(nil)
	if mc.m != nil {
		return mc.m.Close()
	}
	return nil
}

// diskReadahead implements core.ScanReadahead over the LEL and link
// row extents: each Advance prefetches the next window of backbone
// rows in 1 MiB chunks, deduplicated through the range cache so a
// sequential scan issues one syscall per chunk, not one per stride.
type diskReadahead struct {
	prefetch func(off, length int64) // nil: count-only (image already resident)
	rc       *pager.RangeCache
	lel, ref core.Extent
	window   int64 // nodes ahead of the cursor
	issued   atomic.Int64
	hits     atomic.Int64
	bytes    atomic.Int64
}

// raChunk is the prefetch quantum. Window edges snap to it so
// overlapping windows from consecutive strides coalesce into range-
// cache hits.
const raChunk = int64(1) << 20

func (ra *diskReadahead) Advance(j int32) (issued, hits int64) {
	for _, t := range [2]struct {
		ext  core.Extent
		elem int64
	}{{ra.lel, 2}, {ra.ref, 4}} {
		off := t.ext.Off + int64(j)*t.elem
		end := off + ra.window*t.elem
		if max := t.ext.Off + t.ext.Len; end > max {
			end = max
		}
		if off >= end {
			continue
		}
		first := (off - t.ext.Off) / raChunk
		last := (end - t.ext.Off - 1) / raChunk
		for ci := first; ci <= last; ci++ {
			coff := t.ext.Off + ci*raChunk
			clen := raChunk
			if rem := t.ext.Off + t.ext.Len - coff; rem < clen {
				clen = rem
			}
			if ra.rc.Probe(coff, clen) {
				hits++
				continue
			}
			issued++
			ra.bytes.Add(clen)
			if ra.prefetch != nil {
				ra.prefetch(coff, clen)
			}
		}
	}
	ra.issued.Add(issued)
	ra.hits.Add(hits)
	return issued, hits
}
