#!/bin/sh
# lint_query_surface.sh — guard the unified Query entry point.
#
# The read API is Query/QueryBatch (see DESIGN.md §API); the per-verb
# methods below are frozen legacy shims kept for compatibility. This
# check fails when a NEW exported Contains*/Find*/Count* method appears
# on a root-package index type, so additions route through QueryKind
# (or consciously extend the allowlist here, in the same commit that
# argues why).
#
# Usage: scripts/lint_query_surface.sh [repo-root]
set -eu
cd "${1:-.}"

allow='
Index.Contains
Index.ContainsContext
Index.Count
Index.CountContext
Index.CountWithin
Index.Find
Index.FindAll
Index.FindAllAppend
Index.FindAllContext
Index.FindAllLimit
Index.FindAllLimitContext
Index.FindAllWithin
Index.FindContext
Compact.Contains
Compact.ContainsContext
Compact.Count
Compact.CountContext
Compact.Find
Compact.FindAll
Compact.FindAllAppend
Compact.FindAllContext
Compact.FindAllLimit
Compact.FindAllLimitContext
Compact.FindContext
Sharded.Contains
Sharded.ContainsContext
Sharded.Count
Sharded.CountContext
Sharded.Find
Sharded.FindAll
Sharded.FindAllContext
Sharded.FindAllLimit
Sharded.FindAllLimitContext
Sharded.FindContext
'

found=$(grep -hoE --exclude='*_test.go' \
	'^func \([A-Za-z_]+ \*?(Index|Compact|Sharded|CachedQuerier)\) (Contains|Find|Count)[A-Za-z0-9]*' \
	./*.go 2>/dev/null \
	| sed -E 's/^func \([A-Za-z_]+ \*?([A-Za-z]+)\) /\1./' \
	| sort -u)

status=0
for m in $found; do
	case "$allow" in
	*"
$m
"*) ;;
	*)
		echo "lint: new exported query method $m bypasses the unified Query API" >&2
		echo "      route it through QueryKind/QueryOptions, or allowlist it in scripts/lint_query_surface.sh with a rationale" >&2
		status=1
		;;
	esac
done
exit $status
