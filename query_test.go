package spine

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestQueryLegacyEquivalence is the API-redesign contract: for every
// index flavor and every QueryKind, Query agrees with the legacy
// per-method entry point it replaced.
func TestQueryLegacyEquivalence(t *testing.T) {
	text := []byte(strings.Repeat("aaccacaacaggtacca", 8))
	ctx := context.Background()
	patterns := []string{"a", "ac", "acaa", "gtac", "caacagg", "tttt", "zz"}
	for name, q := range queriers(t, text) {
		for _, ps := range patterns {
			p := []byte(ps)
			t.Run(name+"/"+ps, func(t *testing.T) {
				// Errors must agree too: an overlong pattern on the sharded
				// flavor fails identically through Query and the legacy shim.
				sameErr := func(what string, err, lerr error) bool {
					t.Helper()
					if (err == nil) != (lerr == nil) {
						t.Fatalf("%s: Query err %v vs legacy err %v", what, err, lerr)
					}
					if err == nil {
						return false
					}
					if !errors.Is(err, ErrPatternTooLong) || !errors.Is(lerr, ErrPatternTooLong) {
						t.Fatalf("%s: unexpected errors %v / %v", what, err, lerr)
					}
					return true
				}
				// KindContains vs ContainsContext.
				res, err := q.Query(ctx, p, QueryOptions{Kind: KindContains})
				found, lerr := q.ContainsContext(ctx, p)
				if !sameErr("contains", err, lerr) && res.Found != found {
					t.Fatalf("contains: Query=%v legacy=%v", res.Found, found)
				}
				// KindFind vs FindContext.
				res, err = q.Query(ctx, p, QueryOptions{Kind: KindFind})
				pos, lerr := q.FindContext(ctx, p)
				if !sameErr("find", err, lerr) {
					if res.Position != pos {
						t.Fatalf("find: Query=%d legacy=%d", res.Position, pos)
					}
					if res.Found != (pos >= 0) {
						t.Fatalf("find: Found=%v but Position=%d", res.Found, pos)
					}
				}
				// KindFindAll (unlimited and limited) vs FindAllLimitContext.
				for _, limit := range []int{0, 1, 3} {
					res, err = q.Query(ctx, p, QueryOptions{Kind: KindFindAll, Limit: limit})
					want, lerr := q.FindAllLimitContext(ctx, p, limit)
					if sameErr("findall", err, lerr) {
						continue
					}
					if len(res.Positions) != len(want.Positions) || res.Truncated != want.Truncated {
						t.Fatalf("findall limit %d: %v/%v vs %v/%v",
							limit, res.Positions, res.Truncated, want.Positions, want.Truncated)
					}
					for i := range want.Positions {
						if res.Positions[i] != want.Positions[i] {
							t.Fatalf("findall limit %d: %v vs %v", limit, res.Positions, want.Positions)
						}
					}
					// Derived fields are normalized.
					if res.Count != len(res.Positions) || res.Found != (len(res.Positions) > 0) {
						t.Fatalf("findall limit %d: unnormalized %+v", limit, res)
					}
					wantPos := -1
					if len(res.Positions) > 0 {
						wantPos = res.Positions[0]
					}
					if res.Position != wantPos {
						t.Fatalf("findall limit %d: Position=%d want %d", limit, res.Position, wantPos)
					}
				}
				// KindCount vs CountContext.
				res, err = q.Query(ctx, p, QueryOptions{Kind: KindCount})
				n, lerr := q.CountContext(ctx, p)
				if !sameErr("count", err, lerr) {
					if res.Count != n {
						t.Fatalf("count: Query=%d legacy=%d", res.Count, n)
					}
					if res.Found != (n > 0) || res.Position != -1 {
						t.Fatalf("count: %+v for n=%d", res, n)
					}
				}
			})
		}
	}
}

// TestQueryBadKind: an out-of-range kind fails with the sentinel on
// every flavor.
func TestQueryBadKind(t *testing.T) {
	for name, q := range queriers(t, []byte("aaccacaacagg")) {
		_, err := q.Query(context.Background(), []byte("a"), QueryOptions{Kind: QueryKind(99)})
		if !errors.Is(err, ErrBadQueryKind) {
			t.Fatalf("%s: err = %v, want ErrBadQueryKind", name, err)
		}
	}
}

// TestQueryShardedPatternTooLong: the sharded flavor rejects overlong
// patterns on every kind, before any fan-out.
func TestQueryShardedPatternTooLong(t *testing.T) {
	sh, err := BuildSharded([]byte("acgtacgt"), 4, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []QueryKind{KindContains, KindFind, KindFindAll, KindCount} {
		res, err := sh.Query(context.Background(), []byte("acgta"), QueryOptions{Kind: kind})
		if !errors.Is(err, ErrPatternTooLong) {
			t.Fatalf("kind %v: err = %v, want ErrPatternTooLong", kind, err)
		}
		if res.Found || res.Position != -1 {
			t.Fatalf("kind %v: non-empty result %+v on error", kind, res)
		}
	}
}

// TestQueryCancellation: every kind honors an already-cancelled
// context on every flavor.
func TestQueryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, q := range queriers(t, []byte("aaccacaacagg")) {
		for _, kind := range []QueryKind{KindContains, KindFind, KindFindAll, KindCount} {
			if _, err := q.Query(ctx, []byte("a"), QueryOptions{Kind: kind}); !errors.Is(err, context.Canceled) {
				t.Fatalf("%s kind %v: err = %v, want Canceled", name, kind, err)
			}
		}
	}
}

// TestQueryKindString pins the telemetry/cache-key labels.
func TestQueryKindString(t *testing.T) {
	for kind, want := range map[QueryKind]string{
		KindContains: "contains", KindFind: "find", KindFindAll: "findall",
		KindCount: "count", QueryKind(7): "kind(7)",
	} {
		if got := kind.String(); got != want {
			t.Fatalf("QueryKind(%d).String() = %q, want %q", kind, got, want)
		}
	}
}
