package spine

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestEndToEndPipeline drives the full production workflow across modules:
// synthesize a genome, build online, verify, freeze, serialize, reload,
// cross-check against a disk-resident index that is closed and reopened,
// then run matching and alignment against a mutated sample.
func TestEndToEndPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	genome := randomDNA(rng, 20000)

	// 1. Online build + integrity check.
	idx := New()
	idx.AppendString(genome)
	if err := idx.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}

	// 2. Freeze, serialize, reload.
	compact, err := idx.Compact(DNA)
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if err := compact.Save(&blob); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCompact(&blob)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Disk-resident build, close, reopen.
	dir := t.TempDir()
	disk, err := CreateDisk(dir, DiskOptions{BufferPages: 64, Policy: PolicyTopRetention})
	if err != nil {
		t.Fatal(err)
	}
	if err := disk.AppendString(genome); err != nil {
		t.Fatal(err)
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenDisk(dir, DiskOptions{BufferPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()

	// 4. All four representations answer identically.
	for q := 0; q < 200; q++ {
		m := 4 + rng.Intn(16)
		var p []byte
		if q%2 == 0 {
			off := rng.Intn(len(genome) - m)
			p = genome[off : off+m]
		} else {
			p = randomDNA(rng, m)
		}
		want := idx.FindAll(p)
		if got := loaded.FindAll(p); !sameInts(got, want) {
			t.Fatalf("loaded compact FindAll(%q) = %v, want %v", p, got, want)
		}
		got, err := reopened.FindAll(p)
		if err != nil {
			t.Fatal(err)
		}
		if !sameInts(got, want) {
			t.Fatalf("reopened disk FindAll(%q) = %v, want %v", p, got, want)
		}
	}

	// 5. Matching + alignment against a mutated sample find the structure.
	sample := append([]byte{}, genome[5000:15000]...)
	for i := range sample {
		if rng.Float64() < 0.01 {
			sample[i] = "acgt"[rng.Intn(4)]
		}
	}
	al, err := idx.Align(sample, 20)
	if err != nil {
		t.Fatal(err)
	}
	if al.QueryCoverage < 0.6 {
		t.Fatalf("alignment coverage %.2f", al.QueryCoverage)
	}
	// The chain must map the sample back to its source region.
	for _, a := range al.Chain {
		if a.RStart < 4500 || a.RStart > 15500 {
			t.Fatalf("anchor outside source region: %+v", a)
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
