package spine

import (
	"math/rand"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	if !idx.Contains([]byte("cacaa")) {
		t.Error(`Contains("cacaa") = false`)
	}
	if idx.Contains([]byte("accaa")) {
		t.Error(`Contains("accaa") = true (paper's false-positive example)`)
	}
	if got := idx.Find([]byte("ac")); got != 1 {
		t.Errorf("Find(ac) = %d, want 1", got)
	}
	if got := idx.FindAll([]byte("ac")); len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 7 {
		t.Errorf("FindAll(ac) = %v, want [1 4 7]", got)
	}
	if got := idx.Count([]byte("ca")); got != 3 {
		t.Errorf("Count(ca) = %d, want 3", got)
	}
}

func TestOnlineAppendAPI(t *testing.T) {
	idx := New()
	for _, c := range []byte("aaccacaaca") {
		idx.Append(c)
	}
	if idx.Len() != 10 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if got := idx.FindAll([]byte("ca")); len(got) != 3 {
		t.Fatalf("FindAll(ca) = %v", got)
	}
	idx2 := New()
	idx2.AppendString([]byte("aaccacaaca"))
	if string(idx.Text()) != string(idx2.Text()) {
		t.Fatal("Append and AppendString disagree")
	}
}

func TestStatsAPI(t *testing.T) {
	st := Build([]byte("aaccacaaca")).Stats()
	if st.Length != 10 || st.RibCount != 4 || st.ExtribCount != 2 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.MaxLEL != 3 || st.MaxPT != 3 || st.MaxPRT != 1 {
		t.Fatalf("label maxima = %d/%d/%d", st.MaxLEL, st.MaxPT, st.MaxPRT)
	}
	if st.MemoryBytes <= 0 {
		t.Fatal("MemoryBytes not positive")
	}
}

func TestCompactAPI(t *testing.T) {
	idx := Build([]byte("acgtacgtacca"))
	c, err := idx.Compact(DNA)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if c.Len() != idx.Len() {
		t.Fatal("lengths differ")
	}
	for _, p := range []string{"acgt", "gta", "cca", "zz", "acca"} {
		if c.Contains([]byte(p)) != idx.Contains([]byte(p)) {
			t.Fatalf("Contains(%q) disagrees", p)
		}
	}
	if c.SizeBytes() <= 0 || c.BytesPerChar() <= 0 {
		t.Fatal("size accounting non-positive")
	}
	if _, err := Build([]byte("hello")).Compact(DNA); err == nil {
		t.Fatal("Compact accepted text outside the alphabet")
	}
}

func TestLinkHistogramAPI(t *testing.T) {
	h := Build([]byte("aaccacaacaaaccacaaca")).LinkHistogram(4)
	if len(h) != 4 {
		t.Fatalf("histogram = %v", h)
	}
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("histogram sums to %v", sum)
	}
}

func TestMaximalMatchesAPI(t *testing.T) {
	data := []byte("acaccgacgatacgagattacgagacgagaatacaacag")
	query := []byte("catagagagacgattacgagaaaacgggaaagacgatcc")
	idx := Build(data)
	matches, info, err := idx.MaximalMatches(query, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || info.Pairs == 0 || info.NodesChecked == 0 {
		t.Fatalf("degenerate result: %d matches, info %+v", len(matches), info)
	}
	for _, m := range matches {
		if m.Len < 6 {
			t.Fatalf("match below threshold: %+v", m)
		}
		for _, ds := range m.DataStarts {
			if string(data[ds:ds+m.Len]) != string(query[m.QueryStart:m.QueryStart+m.Len]) {
				t.Fatalf("reported match does not actually match: %+v", m)
			}
		}
	}
	// Compact variant must agree.
	c, err := idx.Compact(DNA)
	if err != nil {
		t.Fatal(err)
	}
	cm, _, err := c.MaximalMatches(query, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm) != len(matches) {
		t.Fatalf("compact found %d matches, reference %d", len(cm), len(matches))
	}
	// The deprecated explicit-data entry point must agree too.
	cw, _, err := c.MaximalMatchesWithData(data, query, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != len(matches) {
		t.Fatalf("MaximalMatchesWithData found %d matches, reference %d", len(cw), len(matches))
	}
}

func TestAlignAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := make([]byte, 3000)
	for i := range ref {
		ref[i] = "acgt"[rng.Intn(4)]
	}
	query := append([]byte{}, ref...)
	for i := range query {
		if rng.Float64() < 0.01 {
			query[i] = "acgt"[rng.Intn(4)]
		}
	}
	al, err := Build(ref).Align(query, 15)
	if err != nil {
		t.Fatal(err)
	}
	if al.QueryCoverage < 0.6 {
		t.Fatalf("coverage %.2f too low for a 1%%-mutated copy", al.QueryCoverage)
	}
}

func TestGeneralizedAPI(t *testing.T) {
	g, err := BuildGeneralized([][]byte{
		[]byte("acgtacgt"),
		[]byte("ttacgg"),
		[]byte("acgt"),
	}, '#')
	if err != nil {
		t.Fatal(err)
	}
	if g.Strings() != 3 {
		t.Fatalf("Strings = %d", g.Strings())
	}
	if !g.Contains([]byte("tacg")) {
		t.Error("Contains(tacg) = false")
	}
	locs := g.FindAll([]byte("acg"))
	want := []Location{{0, 0}, {0, 4}, {1, 2}, {2, 0}}
	if len(locs) != len(want) {
		t.Fatalf("FindAll(acg) = %v, want %v", locs, want)
	}
	for i := range locs {
		if locs[i] != want[i] {
			t.Fatalf("FindAll(acg) = %v, want %v", locs, want)
		}
	}
	// Matches must never span the separator: the joined text is
	// acgtacgt#ttacgg#acgt, so "gtt" straddles strings 0 and 1 and occurs
	// in no single string.
	if g.Contains([]byte("gtt")) {
		t.Error("match spanned the separator")
	}
	if g.Contains([]byte("t#t")) {
		t.Error("pattern containing separator reported found")
	}
}

func TestGeneralizedRejectsSeparatorInText(t *testing.T) {
	if _, err := BuildGeneralized([][]byte{[]byte("a#b")}, '#'); err == nil {
		t.Fatal("separator inside text accepted")
	}
}

func TestGeneralizedSingleString(t *testing.T) {
	g, err := BuildGeneralized([][]byte{[]byte("acgt")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	locs := g.FindAll([]byte("cg"))
	if len(locs) != 1 || locs[0] != (Location{0, 1}) {
		t.Fatalf("FindAll(cg) = %v", locs)
	}
}

func TestDiskIndexAPI(t *testing.T) {
	d, err := CreateDisk(t.TempDir(), DiskOptions{PageSize: 512, BufferPages: 8, Policy: PolicyTopRetention})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.AppendString([]byte("aaccacaaca")); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 10 {
		t.Fatalf("Len = %d", d.Len())
	}
	all, err := d.FindAll([]byte("ac"))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0] != 1 {
		t.Fatalf("FindAll(ac) = %v", all)
	}
	ok, err := d.Contains([]byte("accaa"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("disk index admitted false positive")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if d.IOStats().Writes == 0 {
		t.Fatal("no writes recorded after flush")
	}
}

// TestPublicPrefixPartitioning demonstrates §2.7 through the public API.
func TestPublicPrefixPartitioning(t *testing.T) {
	s := []byte("ccacaacgtgttaaccacaacag")
	full := Build(s)
	for k := 1; k < len(s); k++ {
		pre := Build(s[:k])
		// Any query answer on the prefix index must equal brute force on
		// the prefix — spot-check with substrings of the full text.
		for q := 0; q+3 <= k; q += 3 {
			p := s[q : q+3]
			if pre.Contains(p) != (indexOf(s[:k], p) >= 0) {
				t.Fatalf("k=%d: prefix index wrong for %q", k, p)
			}
		}
		_ = full
	}
}

func indexOf(s, p []byte) int {
	for i := 0; i+len(p) <= len(s); i++ {
		if string(s[i:i+len(p)]) == string(p) {
			return i
		}
	}
	return -1
}

func TestDiskPersistenceAPI(t *testing.T) {
	dir := t.TempDir()
	d, err := CreateDisk(dir, DiskOptions{PageSize: 512, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AppendString([]byte("aaccacaaca")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDisk(dir, DiskOptions{BufferPages: 4, Policy: PolicyTopRetention})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer re.Close()
	all, err := re.FindAll([]byte("ac"))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0] != 1 || all[1] != 4 || all[2] != 7 {
		t.Fatalf("reopened FindAll(ac) = %v", all)
	}
}

func TestAlignBothStrandsAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ref := make([]byte, 4000)
	for i := range ref {
		ref[i] = "acgt"[rng.Intn(4)]
	}
	query := append([]byte{}, ref...)
	rc, err := ReverseComplement(query[1000:2000])
	if err != nil {
		t.Fatal(err)
	}
	copy(query[1000:2000], rc)
	fwd, rev, err := Build(ref).AlignBothStrands(query, 20)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.QueryCoverage < 0.5 {
		t.Fatalf("forward coverage %.2f", fwd.QueryCoverage)
	}
	if rev.QueryCoverage < 0.1 {
		t.Fatalf("reverse coverage %.2f; inversion missed", rev.QueryCoverage)
	}
	if _, _, err := Build(ref).AlignBothStrands([]byte("acgn"), 5); err == nil {
		t.Fatal("non-DNA query accepted")
	}
}

func TestCompactBuilderAPI(t *testing.T) {
	cb, err := NewCompactBuilder(DNA)
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.AppendString([]byte("aaccacaaca")); err != nil {
		t.Fatal(err)
	}
	if cb.Len() != 10 {
		t.Fatalf("Len = %d", cb.Len())
	}
	c := cb.Finish()
	if got := c.FindAll([]byte("ac")); len(got) != 3 || got[0] != 1 {
		t.Fatalf("FindAll(ac) = %v", got)
	}
	if c.Contains([]byte("accaa")) {
		t.Fatal("direct-built compact admitted the false positive")
	}
}

func TestForEachOccurrenceAPIs(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	var got []int
	idx.ForEachOccurrence([]byte("ca"), func(start int) bool {
		got = append(got, start)
		return len(got) < 2
	})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("streamed = %v", got)
	}
	g, err := BuildGeneralized([][]byte{[]byte("acgt"), []byte("ttacg")}, '#')
	if err != nil {
		t.Fatal(err)
	}
	var locs []Location
	g.ForEachOccurrence([]byte("acg"), func(l Location) bool {
		locs = append(locs, l)
		return true
	})
	if len(locs) != 2 || locs[0] != (Location{0, 0}) || locs[1] != (Location{1, 2}) {
		t.Fatalf("generalized streamed = %v", locs)
	}
}

func TestCompactTextAndStatsAPI(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	c, err := idx.Compact(DNA)
	if err != nil {
		t.Fatal(err)
	}
	if string(c.Text()) != "aaccacaaca" {
		t.Fatalf("Text = %q", c.Text())
	}
	st := c.Stats()
	if st.Length != 10 || st.RibCount != 4 || st.ExtribCount != 2 || st.MaxLEL != 3 {
		t.Fatalf("Stats = %+v", st)
	}
}
