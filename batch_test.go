package spine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/spine-index/spine/internal/trace"
)

// TestQueryBatchSingleScan is the acceptance check for the batch
// engine: N distinct patterns against one Index perform exactly ONE
// occurrence-resolution backbone scan. Asserted two ways — the trace
// records exactly one batchscan span, and the summed per-item
// NodesChecked equals descents + one scan, strictly less than the N
// sequential scans FindAllLimitContext pays.
func TestQueryBatchSingleScan(t *testing.T) {
	text := []byte(strings.Repeat("aaccacaacaggtacc", 64))
	idx := Build(text)
	patterns := [][]byte{
		[]byte("a"), []byte("ac"), []byte("ca"), []byte("acaa"),
		[]byte("gg"), []byte("gta"), []byte("ccac"), []byte("aacc"),
	}
	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	results, err := idx.QueryBatch(ctx, patterns, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var scans int
	var scanNodes int64
	for _, rec := range tr.Records() {
		if rec.Stage == trace.StageBatchScan {
			scans++
			scanNodes = rec.Nodes
		}
	}
	if scans != 1 {
		t.Fatalf("backbone scans = %d, want exactly 1 for a batch of %d patterns", scans, len(patterns))
	}

	var batchTotal, descents int64
	for i, r := range results {
		batchTotal += r.NodesChecked
		descents += int64(len(patterns[i]))
	}
	if batchTotal != descents+scanNodes {
		t.Fatalf("sum of per-item NodesChecked = %d, want descents %d + one scan %d",
			batchTotal, descents, scanNodes)
	}

	var seqTotal int64
	for _, p := range patterns {
		res, err := idx.FindAllLimitContext(context.Background(), p, 0)
		if err != nil {
			t.Fatal(err)
		}
		seqTotal += res.NodesChecked
	}
	if batchTotal >= seqTotal {
		t.Fatalf("batch NodesChecked %d not below sequential %d", batchTotal, seqTotal)
	}
}

// TestQueryBatchMatchesSequential: the batch's per-item results are
// byte-identical to per-pattern FindAllLimitContext on every flavor.
func TestQueryBatchMatchesSequential(t *testing.T) {
	text := []byte(strings.Repeat("aaccacaacaggtaccaacc", 8))
	patterns := [][]byte{
		[]byte("ac"), []byte("acaa"), []byte("zz"), []byte(""), []byte("ac"), // dup + empty + absent
		[]byte("gg"), []byte("t"),
	}
	ctx := context.Background()
	for name, q := range queriers(t, text) {
		for _, limit := range []int{0, 1, 4, 500} {
			results, err := q.QueryBatch(ctx, patterns, BatchOptions{Limit: limit})
			if err != nil {
				t.Fatalf("%s limit %d: %v", name, limit, err)
			}
			if len(results) != len(patterns) {
				t.Fatalf("%s: %d results for %d patterns", name, len(results), len(patterns))
			}
			for i, p := range patterns {
				want, wantErr := q.FindAllLimitContext(ctx, p, limit)
				got := results[i]
				if (got.Err == nil) != (wantErr == nil) {
					t.Fatalf("%s limit %d pattern %q: Err = %v, sequential err = %v", name, limit, p, got.Err, wantErr)
				}
				if wantErr != nil {
					if !errors.Is(got.Err, ErrPatternTooLong) || !errors.Is(wantErr, ErrPatternTooLong) {
						t.Fatalf("%s limit %d pattern %q: Err = %v, sequential err = %v", name, limit, p, got.Err, wantErr)
					}
					continue
				}
				if got.Truncated != want.Truncated {
					t.Fatalf("%s limit %d pattern %q: Truncated = %v, want %v", name, limit, p, got.Truncated, want.Truncated)
				}
				if len(got.Positions) != len(want.Positions) {
					t.Fatalf("%s limit %d pattern %q: %v, want %v", name, limit, p, got.Positions, want.Positions)
				}
				for j := range want.Positions {
					if got.Positions[j] != want.Positions[j] {
						t.Fatalf("%s limit %d pattern %q: %v, want %v", name, limit, p, got.Positions, want.Positions)
					}
				}
			}
		}
	}
}

// TestQueryBatchDedupe: identical (pattern, limit) items share one
// descent and one result.
func TestQueryBatchDedupe(t *testing.T) {
	text := []byte(strings.Repeat("acgt", 32))
	idx := Build(text)
	patterns := [][]byte{[]byte("acg"), []byte("acg"), []byte("acg"), []byte("t")}
	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	results, err := idx.QueryBatch(ctx, patterns, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var descends int
	for _, rec := range tr.Records() {
		if rec.Stage == trace.StageDescend {
			descends++
		}
	}
	if descends != 2 {
		t.Fatalf("descents = %d, want 2 (3x %q deduped + %q)", descends, "acg", "t")
	}
	for i := 1; i < 3; i++ {
		if &results[0].Positions[0] != &results[i].Positions[0] {
			t.Fatalf("duplicate %d does not share the canonical result", i)
		}
	}
}

// TestQueryBatchPerItemLimits: Limits overrides Limit item by item, and
// a mismatched length is rejected with ErrBadBatch.
func TestQueryBatchPerItemLimits(t *testing.T) {
	text := []byte(strings.Repeat("ac", 50))
	idx := Build(text)
	ctx := context.Background()
	patterns := [][]byte{[]byte("ac"), []byte("ac"), []byte("a")}
	results, err := idx.QueryBatch(ctx, patterns, BatchOptions{Limits: []int{2, 5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Positions) != 2 || !results[0].Truncated {
		t.Fatalf("item 0: %d positions truncated=%v, want 2/true", len(results[0].Positions), results[0].Truncated)
	}
	if len(results[1].Positions) != 5 || !results[1].Truncated {
		t.Fatalf("item 1: %d positions truncated=%v, want 5/true", len(results[1].Positions), results[1].Truncated)
	}
	if len(results[2].Positions) != 50 || results[2].Truncated {
		t.Fatalf("item 2: %d positions truncated=%v, want 50/false", len(results[2].Positions), results[2].Truncated)
	}
	// Same pattern under different limits must NOT be deduped together.
	if results[0].Truncated == results[1].Truncated && len(results[0].Positions) == len(results[1].Positions) {
		t.Fatal("items with different limits collapsed into one")
	}
	if _, err := idx.QueryBatch(ctx, patterns, BatchOptions{Limits: []int{1}}); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("mismatched Limits err = %v, want ErrBadBatch", err)
	}
}

// TestQueryBatchCancellation: a dead context fails the whole batch.
func TestQueryBatchCancellation(t *testing.T) {
	text := []byte(strings.Repeat("acgt", 64))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, q := range queriers(t, text) {
		if _, err := q.QueryBatch(ctx, [][]byte{[]byte("ac")}, BatchOptions{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestQueryBatchShardedPerItemErrors: on a Sharded index an overlong
// pattern fails alone — its QueryResult carries ErrPatternTooLong while
// the other items answer normally.
func TestQueryBatchShardedPerItemErrors(t *testing.T) {
	text := []byte(strings.Repeat("aaccacaacagg", 8))
	sh, err := BuildSharded(text, 16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	long := []byte("aaccacaaca") // longer than maxPattern 4
	results, err := sh.QueryBatch(context.Background(), [][]byte{[]byte("acca"), long, []byte("gg")}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[1].Err, ErrPatternTooLong) {
		t.Fatalf("overlong item Err = %v, want ErrPatternTooLong", results[1].Err)
	}
	if results[1].Positions != nil {
		t.Fatalf("overlong item has positions: %v", results[1].Positions)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Fatalf("item %d: unexpected Err %v", i, results[i].Err)
		}
		want := Build(text).FindAll([]byte(map[int]string{0: "acca", 2: "gg"}[i]))
		if len(results[i].Positions) != len(want) {
			t.Fatalf("item %d: %v, want %v", i, results[i].Positions, want)
		}
	}
}

// TestQueryBatchWorkersEquivalent: the descent pool size never changes
// results.
func TestQueryBatchWorkersEquivalent(t *testing.T) {
	text := []byte(strings.Repeat("aaccacaacaggtacc", 16))
	idx := Build(text)
	ctx := context.Background()
	patterns := [][]byte{[]byte("a"), []byte("ac"), []byte("ca"), []byte("gg"), []byte("tacc"), []byte("zz")}
	ref, err := idx.QueryBatch(ctx, patterns, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		got, err := idx.QueryBatch(ctx, patterns, BatchOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if len(got[i].Positions) != len(ref[i].Positions) || got[i].Truncated != ref[i].Truncated {
				t.Fatalf("workers %d item %d: %v, want %v", w, i, got[i], ref[i])
			}
			for j := range ref[i].Positions {
				if got[i].Positions[j] != ref[i].Positions[j] {
					t.Fatalf("workers %d item %d: %v, want %v", w, i, got[i].Positions, ref[i].Positions)
				}
			}
		}
	}
}

// TestQueryBatchEmptyBatch: zero patterns is a valid no-op.
func TestQueryBatchEmptyBatch(t *testing.T) {
	for name, q := range queriers(t, []byte("aaccacaaca")) {
		results, err := q.QueryBatch(context.Background(), nil, BatchOptions{})
		if err != nil || len(results) != 0 {
			t.Fatalf("%s: results %v err %v, want empty/nil", name, results, err)
		}
	}
}
