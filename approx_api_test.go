package spine

import "testing"

func TestApproxAPI(t *testing.T) {
	idx := Build([]byte("gggggggacgaacgtggggggg"))
	p := []byte("acgtacgt")
	if got := idx.FindAllWithin(p, 0, Hamming); len(got) != 0 {
		t.Fatalf("k=0: %v", got)
	}
	got := idx.FindAllWithin(p, 1, Hamming)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("k=1: %v, want [7]", got)
	}
	if n := idx.CountWithin(p, 1, Edit); n < 1 {
		t.Fatalf("CountWithin Edit = %d", n)
	}
}

func TestUtilitiesAPI(t *testing.T) {
	idx := Build([]byte("banana"))
	lrs, first, second := idx.LongestRepeatedSubstring()
	if string(lrs) != "ana" || first != 1 || second != 3 {
		t.Fatalf("LRS = %q (%d, %d)", lrs, first, second)
	}
	lcs, tp, op := idx.LongestCommonSubstring([]byte("panama"))
	if string(lcs) != "ana" || tp < 0 || op < 0 {
		t.Fatalf("LCS = %q (%d, %d)", lcs, tp, op)
	}
	if prof := idx.RepeatProfile(); len(prof) != 6 || prof[5] != 3 {
		t.Fatalf("RepeatProfile = %v", prof)
	}
	if err := idx.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}
