package spine

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// cachedPair builds an index flavor and a Cached wrapper over it.
func cachedPair(t *testing.T, text []byte, cfg CacheConfig) (Querier, *CachedQuerier) {
	t.Helper()
	sh, err := BuildSharded(text, 64, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Cached(sh, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sh, c
}

// sameAnswer compares the semantic fields of two results — the cached
// layer must be byte-identical on everything a client can see.
// NodesChecked and Source legitimately differ (a hit does no work).
func sameAnswer(t *testing.T, what string, got, want QueryResult) {
	t.Helper()
	if got.Found != want.Found || got.Position != want.Position ||
		got.Count != want.Count || got.Truncated != want.Truncated ||
		len(got.Positions) != len(want.Positions) {
		t.Fatalf("%s: got %+v, want %+v", what, got, want)
	}
	for i := range want.Positions {
		if got.Positions[i] != want.Positions[i] {
			t.Fatalf("%s: positions %v, want %v", what, got.Positions, want.Positions)
		}
	}
}

// TestCachedDifferential is the acceptance check: for a mixed workload
// of present, absent and repeated patterns across every kind, the
// cached querier answers byte-identically to the raw index — on the
// miss, on the hit, and through the negative filter.
func TestCachedDifferential(t *testing.T) {
	text := []byte(strings.Repeat("aaccacaacaggtacca", 32))
	raw, c := cachedPair(t, text, CacheConfig{})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(42))
	var patterns [][]byte
	for i := 0; i < 12; i++ { // present substrings
		l := 1 + rng.Intn(15)
		off := rng.Intn(len(text) - l)
		patterns = append(patterns, text[off:off+l])
	}
	for i := 0; i < 12; i++ { // random, mostly absent
		p := make([]byte, 1+rng.Intn(15))
		for j := range p {
			p[j] = "acgtz"[rng.Intn(5)]
		}
		patterns = append(patterns, p)
	}
	patterns = append(patterns, patterns[0], patterns[12]) // repeats → hits
	for round := 0; round < 3; round++ {                   // round 2+ hits the cache
		for _, p := range patterns {
			for _, kind := range []QueryKind{KindContains, KindFind, KindFindAll, KindCount} {
				for _, limit := range []int{0, 2} {
					opts := QueryOptions{Kind: kind, Limit: limit}
					want, werr := raw.Query(ctx, p, opts)
					got, gerr := c.Query(ctx, p, opts)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("kind %v %q: err %v vs %v", kind, p, gerr, werr)
					}
					if werr != nil {
						continue
					}
					sameAnswer(t, kind.String(), got, want)
				}
			}
		}
	}
	st := c.CacheStats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("degenerate cache stats after mixed rounds: %+v", st)
	}
}

// TestCachedSourceAttribution: the Source field reports which layer
// answered — scan on the first read, cache on the second, negative
// filter for an absent pattern long enough to carry a gram.
func TestCachedSourceAttribution(t *testing.T) {
	text := bytes.Repeat([]byte("aaccacaacaggtacca"), 64)
	_, c := cachedPair(t, text, CacheConfig{NegFilterQ: 6})
	ctx := context.Background()
	p := []byte("accacaacag")

	res, err := c.Query(ctx, p, QueryOptions{Kind: KindFindAll})
	if err != nil || res.Source != SourceScan || !res.Found {
		t.Fatalf("first read: %+v, %v; want SourceScan found", res, err)
	}
	res, err = c.Query(ctx, p, QueryOptions{Kind: KindFindAll})
	if err != nil || res.Source != SourceCache || !res.Found {
		t.Fatalf("second read: %+v, %v; want SourceCache found", res, err)
	}
	if res.NodesChecked != 0 {
		t.Fatalf("cached answer NodesChecked = %d, want 0", res.NodesChecked)
	}
	// The z-run contains q-grams absent from the DNA text: definitive reject.
	res, err = c.Query(ctx, []byte("zzzzzzzz"), QueryOptions{Kind: KindContains})
	if err != nil || res.Source != SourceNegFilter || res.Found || res.Position != -1 {
		t.Fatalf("absent read: %+v, %v; want SourceNegFilter absent", res, err)
	}
	st := c.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.NegRejects != 1 {
		t.Fatalf("stats = %+v, want hits/misses/negRejects 1/1/1", st)
	}
	if st.NegFilterQ != 6 || st.NegFilterBytes == 0 {
		t.Fatalf("filter stats = %+v", st)
	}
}

// TestCachedNoCacheBypass: NoCache skips both layers and never
// populates the cache.
func TestCachedNoCacheBypass(t *testing.T) {
	text := bytes.Repeat([]byte("aaccacaacaggtacca"), 8)
	_, c := cachedPair(t, text, CacheConfig{})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		res, err := c.Query(ctx, []byte("acca"), QueryOptions{Kind: KindFindAll, NoCache: true})
		if err != nil || res.Source != SourceScan {
			t.Fatalf("NoCache read %d: %+v, %v", i, res, err)
		}
	}
	if st := c.CacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("NoCache touched the cache: %+v", st)
	}
}

// TestCachedInvalidate: bumping the epoch makes every entry stale; the
// next read scans again and re-primes.
func TestCachedInvalidate(t *testing.T) {
	text := bytes.Repeat([]byte("aaccacaacaggtacca"), 8)
	_, c := cachedPair(t, text, CacheConfig{})
	ctx := context.Background()
	p := []byte("acca")
	opts := QueryOptions{Kind: KindFindAll}
	if res, _ := c.Query(ctx, p, opts); res.Source != SourceScan {
		t.Fatal("expected initial scan")
	}
	if res, _ := c.Query(ctx, p, opts); res.Source != SourceCache {
		t.Fatal("expected hit before invalidation")
	}
	c.Invalidate()
	res, err := c.Query(ctx, p, opts)
	if err != nil || res.Source != SourceScan {
		t.Fatalf("post-invalidate read: %+v, %v; want fresh scan", res, err)
	}
	if res, _ := c.Query(ctx, p, opts); res.Source != SourceCache {
		t.Fatal("expected re-primed hit after invalidation")
	}
	if st := c.CacheStats(); st.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", st.Epoch)
	}
}

// TestCachedInvalidateAfterAppend is the live-ingest regression: a
// pattern present only in text appended after the filter was built
// must not be rejected as absent. Invalidate drops the stale filter
// (its grams predate the append), and RebuildNegFilter restores the
// fast-negative path over the grown text.
func TestCachedInvalidateAfterAppend(t *testing.T) {
	idx := New()
	idx.AppendString(bytes.Repeat([]byte("aaccacaaca"), 32))
	c, err := Cached(idx, CacheConfig{NegFilterQ: 6})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p := []byte("ggttggtt") // absent now; present after the append below
	opts := QueryOptions{Kind: KindFindAll}
	if res, _ := c.Query(ctx, p, opts); res.Source != SourceNegFilter || res.Found {
		t.Fatalf("pre-append read: %+v; want filter reject", res)
	}
	idx.AppendString([]byte("ccggttggttcc"))
	c.Invalidate()
	res, err := c.Query(ctx, p, opts)
	if err != nil || !res.Found {
		t.Fatalf("post-append read: %+v, %v; want found (stale filter must not answer)", res, err)
	}
	if st := c.CacheStats(); st.NegFilterQ != 0 {
		t.Fatalf("filter survived Invalidate: %+v", st)
	}
	if err := c.RebuildNegFilter(); err != nil {
		t.Fatal(err)
	}
	if st := c.CacheStats(); st.NegFilterQ != 6 || st.NegFilterBytes == 0 {
		t.Fatalf("rebuild did not restore the filter: %+v", st)
	}
	if res, _ := c.Query(ctx, p, QueryOptions{Kind: KindCount}); !res.Found || res.Count != 1 {
		t.Fatalf("rebuilt-filter read of appended pattern: %+v", res)
	}
	if res, _ := c.Query(ctx, []byte("zzzzzzzz"), opts); res.Source != SourceNegFilter {
		t.Fatalf("rebuilt filter does not reject absent patterns: %+v", res)
	}
}

// TestCachedPositionsNotAliased: cache entries must not share their
// Positions backing array with any caller — mutating a miss result or
// a hit result must leave future hits intact.
func TestCachedPositionsNotAliased(t *testing.T) {
	text := []byte(strings.Repeat("aaccacaacaggtacca", 16))
	raw, c := cachedPair(t, text, CacheConfig{})
	ctx := context.Background()
	p := []byte("acca")
	opts := QueryOptions{Kind: KindFindAll}
	want, err := raw.Query(ctx, p, opts)
	if err != nil || len(want.Positions) == 0 {
		t.Fatalf("raw read: %+v, %v", want, err)
	}
	miss, err := c.Query(ctx, p, opts)
	if err != nil || miss.Source != SourceScan {
		t.Fatalf("seed read: %+v, %v", miss, err)
	}
	for i := range miss.Positions { // corrupt the scanning caller's copy
		miss.Positions[i] = -999
	}
	hit, err := c.Query(ctx, p, opts)
	if err != nil || hit.Source != SourceCache {
		t.Fatalf("hit read: %+v, %v", hit, err)
	}
	sameAnswer(t, "hit after miss mutation", hit, want)
	for i := range hit.Positions { // corrupt a hit's copy
		hit.Positions[i] = -1
	}
	again, err := c.Query(ctx, p, opts)
	if err != nil || again.Source != SourceCache {
		t.Fatalf("re-hit read: %+v, %v", again, err)
	}
	sameAnswer(t, "hit after hit mutation", again, want)
}

// TestCachedErrorPropagation: per-call errors pass through uncached —
// overlong patterns keep their sentinel, cancelled contexts abort.
func TestCachedErrorPropagation(t *testing.T) {
	text := bytes.Repeat([]byte("aaccacaacagg"), 8)
	_, c := cachedPair(t, text, CacheConfig{}) // sharded maxPattern 16
	ctx := context.Background()
	long := bytes.Repeat([]byte("a"), 17)
	for _, kind := range []QueryKind{KindContains, KindFindAll, KindCount} {
		if _, err := c.Query(ctx, long, QueryOptions{Kind: kind}); !errors.Is(err, ErrPatternTooLong) {
			t.Fatalf("kind %v: err = %v, want ErrPatternTooLong", kind, err)
		}
	}
	if _, err := c.Query(ctx, []byte("a"), QueryOptions{Kind: QueryKind(42)}); !errors.Is(err, ErrBadQueryKind) {
		t.Fatalf("bad kind: %v", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.Query(cctx, []byte("ac"), QueryOptions{Kind: KindFindAll}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled: %v", err)
	}
	if st := c.CacheStats(); st.Entries != 0 {
		t.Fatalf("errors were cached: %+v", st)
	}
}

// TestCachedBatchEquivalence: a cache-aware batch answers identically
// to the raw engine's batch — including per-item overlong errors and
// empty patterns — whether entries are cold, warm, or negative.
func TestCachedBatchEquivalence(t *testing.T) {
	text := []byte(strings.Repeat("aaccacaacaggtacca", 16))
	raw, c := cachedPair(t, text, CacheConfig{})
	ctx := context.Background()
	patterns := [][]byte{
		[]byte("ac"), []byte("acca"), []byte("zzzz"), {}, bytes.Repeat([]byte("a"), 17),
		[]byte("ac"), // in-batch duplicate
	}
	for round := 0; round < 3; round++ {
		want, werr := raw.QueryBatch(ctx, patterns, BatchOptions{Limit: 5})
		got, gerr := c.QueryBatch(ctx, patterns, BatchOptions{Limit: 5})
		if werr != nil || gerr != nil {
			t.Fatalf("round %d: errs %v / %v", round, gerr, werr)
		}
		for i := range patterns {
			if (got[i].Err == nil) != (want[i].Err == nil) {
				t.Fatalf("round %d item %d: Err %v vs %v", round, i, got[i].Err, want[i].Err)
			}
			if want[i].Err != nil {
				if !errors.Is(got[i].Err, ErrPatternTooLong) {
					t.Fatalf("round %d item %d: Err = %v", round, i, got[i].Err)
				}
				continue
			}
			sameAnswer(t, "batch", got[i], want[i])
		}
	}
	if st := c.CacheStats(); st.Hits == 0 {
		t.Fatalf("warm batch rounds produced no hits: %+v", st)
	}
}

// TestCachedConcurrent hammers one CachedQuerier from many goroutines
// (run under -race) and differentially checks every answer against an
// uncached twin.
func TestCachedConcurrent(t *testing.T) {
	text := []byte(strings.Repeat("aaccacaacaggtacca", 64))
	raw, c := cachedPair(t, text, CacheConfig{MaxBytes: 1 << 16, Shards: 4})
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				var p []byte
				if rng.Intn(2) == 0 {
					l := 1 + rng.Intn(12)
					off := rng.Intn(len(text) - l)
					p = text[off : off+l]
				} else {
					p = make([]byte, 8+rng.Intn(8))
					for j := range p {
						p[j] = "acgt"[rng.Intn(4)]
					}
				}
				kind := QueryKind(rng.Intn(4))
				opts := QueryOptions{Kind: kind, Limit: rng.Intn(4)}
				got, gerr := c.Query(ctx, p, opts)
				want, werr := raw.Query(ctx, p, opts)
				if gerr != nil || werr != nil {
					errc <- gerr
					return
				}
				if got.Found != want.Found || got.Position != want.Position ||
					got.Count != want.Count || got.Truncated != want.Truncated {
					errc <- errors.New("cached answer diverged under concurrency")
					return
				}
				if rng.Intn(50) == 0 {
					c.Invalidate()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestCachedCapabilities: the decorator exposes the wrapped index via
// Unwrap and delegates Len; the negative filter build fails loudly on
// a querier with no Text.
func TestCachedCapabilities(t *testing.T) {
	text := bytes.Repeat([]byte("aaccacaacagg"), 8)
	sh, c := cachedPair(t, text, CacheConfig{})
	if c.Unwrap() != sh {
		t.Fatal("Unwrap did not return the wrapped querier")
	}
	if c.Len() != sh.Len() {
		t.Fatalf("Len = %d, want %d", c.Len(), sh.Len())
	}
	// An opaque querier (no Text) cannot host the filter...
	if _, err := Cached(opaqueQuerier{c}, CacheConfig{}); err == nil {
		t.Fatal("expected error building a filter without Text")
	}
	// ...unless the filter is disabled.
	if _, err := Cached(opaqueQuerier{c}, CacheConfig{DisableNegFilter: true}); err != nil {
		t.Fatalf("DisableNegFilter wrap: %v", err)
	}
	// And a texter behind an Unwrap chain is discovered through it.
	if nested, err := Cached(c, CacheConfig{}); err != nil || nested == nil {
		t.Fatalf("nested wrap: %v", err)
	}
}

// opaqueQuerier hides every optional capability.
type opaqueQuerier struct{ inner Querier }

func (o opaqueQuerier) Query(ctx context.Context, p []byte, opts QueryOptions) (QueryResult, error) {
	return o.inner.Query(ctx, p, opts)
}

func (o opaqueQuerier) QueryBatch(ctx context.Context, patterns [][]byte, opts BatchOptions) ([]QueryResult, error) {
	return o.inner.QueryBatch(ctx, patterns, opts)
}

func (o opaqueQuerier) Len() int { return o.inner.Len() }
