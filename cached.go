package spine

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/spine-index/spine/internal/qgram"
	"github.com/spine-index/spine/internal/rescache"
	"github.com/spine-index/spine/internal/trace"
)

// CacheConfig tunes the Cached decorator.
type CacheConfig struct {
	// MaxBytes is the result cache's byte budget; <= 0 picks
	// rescache.DefaultMaxBytes (64 MiB). The budget covers an estimate of
	// each entry's footprint (pattern bytes + 8 bytes per position +
	// fixed overhead), not exact heap usage.
	MaxBytes int64
	// Shards is the cache's lock-shard count, rounded up to a power of
	// two; <= 0 picks rescache.DefaultShards.
	Shards int
	// DisableNegFilter turns the q-gram negative filter off; by default
	// Cached builds one over the wrapped index's text, so that absent
	// patterns answer in O(|P|) with zero backbone work.
	DisableNegFilter bool
	// NegFilterQ is the filter's gram length; <= 0 picks one from the
	// text: the shortest q whose random-text q-gram diversity exceeds the
	// text's gram population (so most absent patterns contain an unseen
	// gram), clamped to [4, 16]. Patterns shorter than Q bypass the
	// filter.
	NegFilterQ int
	// NegFilterBits is the filter's bits-per-gram budget; <= 0 picks
	// qgram.DefaultNegFilterBits.
	NegFilterBits int
}

// CacheStats is a point-in-time view of a CachedQuerier's counters.
type CacheStats struct {
	// Hits and Misses count result-cache lookups (negative-filter
	// rejections consult no cache and count in neither).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// NegRejects counts queries the negative filter answered (pattern
	// definitely absent, no index work); NegFalsePos counts patterns the
	// filter passed that the index then proved absent — the filter's
	// false positives, each costing one ordinary scan.
	NegRejects  int64 `json:"negRejects"`
	NegFalsePos int64 `json:"negFalsePos"`
	// Entries, Bytes and Evictions describe cache occupancy; Epoch is the
	// invalidation epoch (see Invalidate).
	Entries   int64  `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Evictions int64  `json:"evictions"`
	Epoch     uint64 `json:"epoch"`
	// NegFilterQ is the filter's gram length (0 when the filter is off);
	// NegFilterBytes its bit-array footprint.
	NegFilterQ     int   `json:"negFilterQ"`
	NegFilterBytes int64 `json:"negFilterBytes"`
}

// texter is the optional capability Cached uses to reach the indexed
// text for the negative filter; all three index flavors provide it.
type texter interface{ Text() []byte }

// maxPatterner is the optional capability bounding cacheable pattern
// length (Sharded indexes reject longer patterns with ErrPatternTooLong
// and the cache must not mask that).
type maxPatterner interface{ MaxPattern() int }

// unwrapper is the decorator-chain walk: capability discovery descends
// through wrappers to the concrete index.
type unwrapper interface{ Unwrap() Querier }

// capability resolves an optional interface on q, descending through
// Unwrap chains.
func capability[T any](q Querier) (T, bool) {
	for {
		if t, ok := q.(T); ok {
			return t, true
		}
		u, ok := q.(unwrapper)
		if !ok {
			var zero T
			return zero, false
		}
		q = u.Unwrap()
	}
}

// CachedQuerier decorates a Querier with a sharded LRU result cache and
// a q-gram negative filter, serving repeated (Zipf-skewed) workloads
// from memory and absent patterns in O(|P|). It intercepts exactly the
// Query/QueryBatch choke points, so every legacy shim on the underlying
// index is covered when callers route reads through the decorator.
//
// Cache entries never alias caller-visible slices: Positions is cloned
// on insert and again on every hit, so callers may mutate the results
// they receive without corrupting future cached answers.
//
// CachedQuerier is safe for concurrent use.
type CachedQuerier struct {
	inner   Querier
	cache   *rescache.Cache
	neg     atomic.Pointer[qgram.NegFilter]
	negSrc  texter // text source for filter (re)builds; nil = filter disabled
	negQ    int    // configured gram length; <= 0 re-picks per rebuild
	negBits int
	maxPat  int // longest cacheable pattern; 0 = unbounded

	hits        atomic.Int64
	misses      atomic.Int64
	negRejects  atomic.Int64
	negFalsePos atomic.Int64
}

// Cached wraps q with a result cache and (unless disabled) a negative
// filter built over q's text. Building the filter needs the text: q (or
// something in its Unwrap chain) must provide Text() []byte, which
// Index, Compact and Sharded all do; wrap an opaque Querier with
// DisableNegFilter set.
func Cached(q Querier, cfg CacheConfig) (*CachedQuerier, error) {
	c := &CachedQuerier{
		inner: q,
		cache: rescache.New(rescache.Config{MaxBytes: cfg.MaxBytes, Shards: cfg.Shards}),
	}
	if mp, ok := capability[maxPatterner](q); ok {
		c.maxPat = mp.MaxPattern()
	}
	if !cfg.DisableNegFilter {
		tx, ok := capability[texter](q)
		if !ok {
			return nil, fmt.Errorf("spine: Cached negative filter needs Text() on the wrapped querier; set DisableNegFilter to wrap it without one")
		}
		c.negSrc = tx
		c.negQ = cfg.NegFilterQ
		c.negBits = cfg.NegFilterBits
		if err := c.RebuildNegFilter(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// RebuildNegFilter rebuilds the q-gram negative filter over the wrapped
// index's current text and swaps it in atomically, restoring the
// O(|P|) absent-pattern path after an Invalidate dropped it. It is a
// no-op on a decorator built with DisableNegFilter. The build scans
// the whole text: run it once per ingest batch, not per append.
func (c *CachedQuerier) RebuildNegFilter() error {
	if c.negSrc == nil {
		return nil
	}
	text := c.negSrc.Text()
	gramLen := c.negQ
	if gramLen <= 0 {
		gramLen = autoNegFilterQ(text)
	}
	neg, err := qgram.BuildNegFilter(text, gramLen, c.negBits)
	if err != nil {
		return err
	}
	c.neg.Store(neg)
	return nil
}

// autoNegFilterQ picks a gram length for a text: the shortest q with
// sigma^q >= 64n (sigma = distinct bytes observed), so a random absent
// pattern's grams are unlikely to all occur in the text, clamped to
// [4, 16]. Short-alphabet texts (DNA) land around 12 for megabase
// inputs; byte-diverse texts stay near the lower clamp.
func autoNegFilterQ(text []byte) int {
	var seen [256]bool
	sigma := 0
	for _, b := range text {
		if !seen[b] {
			seen[b] = true
			sigma++
		}
	}
	if sigma < 2 {
		return 4
	}
	target := uint64(len(text))*64 + 1
	q := 1
	pow := uint64(sigma)
	for pow < target && q < 16 {
		// Watch for overflow: sigma^q already covers any text length.
		if pow > target/uint64(sigma) {
			q++
			break
		}
		pow *= uint64(sigma)
		q++
	}
	if q < 4 {
		q = 4
	}
	return q
}

// cacheable reports whether this call goes through the cache/filter
// path at all; non-cacheable calls pass straight to the inner querier,
// preserving its semantics (empty-pattern expansion, ErrPatternTooLong,
// ErrBadQueryKind).
func (c *CachedQuerier) cacheable(p []byte, kind QueryKind) bool {
	if len(p) == 0 || kind > KindCount {
		return false
	}
	if c.maxPat > 0 && len(p) > c.maxPat {
		return false
	}
	return true
}

// cacheKey builds the rescache identity for a call. KindContains and
// KindFind produce identical results, so they share entries under
// KindFind.
func cacheKey(p []byte, kind QueryKind, limit int) rescache.Key {
	if kind == KindContains {
		kind = KindFind
	}
	return rescache.Key{Pattern: string(p), Kind: uint8(kind), Limit: limit}
}

// cacheCost estimates an entry's footprint for the byte budget.
func cacheCost(k rescache.Key, res QueryResult) int64 {
	return int64(len(k.Pattern)) + int64(len(res.Positions))*8 + 96
}

// detach clones res.Positions so the cache entry and the caller never
// share one slice: inserts detach from the scanning caller's result,
// hits detach from the stored entry. Without this, a caller mutating
// its Positions would silently corrupt every future cached answer.
func detach(res QueryResult) QueryResult {
	if len(res.Positions) > 0 {
		res.Positions = append([]int(nil), res.Positions...)
	}
	return res
}

// Query implements Querier. Order of consultation: negative filter
// (definitive absence in O(|P|)), then the result cache, then the
// wrapped index; scan answers are inserted on the way out. The
// result's Source field records which layer answered.
func (c *CachedQuerier) Query(ctx context.Context, p []byte, opts QueryOptions) (QueryResult, error) {
	if opts.NoCache || !c.cacheable(p, opts.Kind) {
		return c.inner.Query(ctx, p, opts)
	}
	if err := ctx.Err(); err != nil {
		return QueryResult{Position: -1}, err
	}
	tr := trace.FromContext(ctx)
	neg := c.neg.Load()
	if neg != nil && len(p) >= neg.Q() {
		sp := tr.Start(trace.StageNegFilter)
		may := neg.MayContain(p)
		sp.End()
		if !may {
			c.negRejects.Add(1)
			return QueryResult{Position: -1, Source: SourceNegFilter}, nil
		}
	}
	key := cacheKey(p, opts.Kind, opts.effectiveLimit())
	sp := tr.Start(trace.StageCache)
	v, ok := c.cache.Get(key)
	sp.End()
	if ok {
		c.hits.Add(1)
		res := detach(v.(QueryResult))
		res.Source = SourceCache
		res.NodesChecked = 0
		return res, nil
	}
	c.misses.Add(1)
	res, err := c.inner.Query(ctx, p, opts)
	if err != nil {
		return res, err
	}
	if neg != nil && !res.Found && len(p) >= neg.Q() {
		c.negFalsePos.Add(1)
	}
	c.cache.Put(key, detach(res), cacheCost(key, res))
	res.Source = SourceScan
	return res, nil
}

// QueryBatch implements Querier, cache-aware: negative-filter
// rejections and cache hits are answered inline, and only the misses
// are forwarded to the wrapped index's batch engine — its single
// backbone scan then covers exactly the patterns that need index work.
// Per-item limits follow BatchOptions semantics; scan answers are
// inserted into the cache on the way out.
func (c *CachedQuerier) QueryBatch(ctx context.Context, patterns [][]byte, opts BatchOptions) ([]QueryResult, error) {
	limits, err := opts.itemLimits(len(patterns))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]QueryResult, len(patterns))
	neg := c.neg.Load()
	var (
		missPats   [][]byte
		missLimits []int
		missIdx    []int
	)
	for i, p := range patterns {
		if !c.cacheable(p, KindFindAll) {
			// Empty or overlong: forward so the engine's own semantics
			// (empty-pattern expansion, per-item ErrPatternTooLong) apply.
			missPats = append(missPats, p)
			missLimits = append(missLimits, limits[i])
			missIdx = append(missIdx, i)
			continue
		}
		if neg != nil && len(p) >= neg.Q() && !neg.MayContain(p) {
			c.negRejects.Add(1)
			results[i] = QueryResult{Position: -1, Source: SourceNegFilter}
			continue
		}
		limit := limits[i]
		if limit < 0 {
			limit = 0
		}
		key := cacheKey(p, KindFindAll, limit)
		if v, ok := c.cache.Get(key); ok {
			c.hits.Add(1)
			res := detach(v.(QueryResult))
			res.Source = SourceCache
			res.NodesChecked = 0
			results[i] = res
			continue
		}
		c.misses.Add(1)
		missPats = append(missPats, p)
		missLimits = append(missLimits, limits[i])
		missIdx = append(missIdx, i)
	}
	if len(missIdx) > 0 {
		sub, err := c.inner.QueryBatch(ctx, missPats, BatchOptions{Limits: missLimits, Workers: opts.Workers})
		if err != nil {
			return nil, err
		}
		for k, i := range missIdx {
			res := sub[k]
			results[i] = res
			if res.Err != nil || !c.cacheable(patterns[i], KindFindAll) {
				continue
			}
			if neg != nil && !res.Found && len(patterns[i]) >= neg.Q() {
				c.negFalsePos.Add(1)
			}
			limit := missLimits[k]
			if limit < 0 {
				limit = 0
			}
			key := cacheKey(patterns[i], KindFindAll, limit)
			c.cache.Put(key, detach(res), cacheCost(key, res))
		}
	}
	return results, nil
}

// Len implements Querier by delegation.
func (c *CachedQuerier) Len() int { return c.inner.Len() }

// Unwrap returns the wrapped querier, exposing its capabilities
// (Stats, MaximalMatchesContext, approximate search) to servers that
// discover them by type assertion through the Unwrap chain.
func (c *CachedQuerier) Unwrap() Querier { return c.inner }

// Invalidate makes every cached result stale in O(1) by bumping the
// cache epoch; stale entries are collected lazily on lookup. Call it
// whenever the underlying text changes (the live-ingest path). The
// negative filter is dropped at the same time: it was built over the
// old text, and a pattern occurring only in newly appended bytes
// carries grams the filter has never seen — keeping it would turn
// those into definitive (false) "absent" answers. Queries fall back
// to plain scans until RebuildNegFilter restores the fast-negative
// path.
func (c *CachedQuerier) Invalidate() {
	c.cache.BumpEpoch()
	c.neg.Store(nil)
}

// CacheStats returns the decorator's counters; serving telemetry polls
// this for the /stats and /metrics cache families.
func (c *CachedQuerier) CacheStats() CacheStats {
	cs := c.cache.Stats()
	s := CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		NegRejects:  c.negRejects.Load(),
		NegFalsePos: c.negFalsePos.Load(),
		Entries:     cs.Entries,
		Bytes:       cs.Bytes,
		Evictions:   cs.Evictions,
		Epoch:       cs.Epoch,
	}
	if neg := c.neg.Load(); neg != nil {
		s.NegFilterQ = neg.Q()
		s.NegFilterBytes = neg.SizeBytes()
	}
	return s
}
