package spine_test

import (
	"fmt"

	"github.com/spine-index/spine"
)

// The paper's running example string (Figures 1-3).
func Example() {
	idx := spine.Build([]byte("aaccacaaca"))
	fmt.Println(idx.Contains([]byte("cacaa")))
	fmt.Println(idx.Contains([]byte("accaa"))) // the paper's false-positive example
	fmt.Println(idx.FindAll([]byte("ac")))
	// Output:
	// true
	// false
	// [1 4 7]
}

func ExampleIndex_Append() {
	idx := spine.New()
	for _, c := range []byte("aaccac") {
		idx.Append(c)
	}
	fmt.Println(idx.Find([]byte("cca")))
	idx.AppendString([]byte("aaca"))
	fmt.Println(idx.FindAll([]byte("ca")))
	// Output:
	// 2
	// [3 5 8]
}

func ExampleIndex_MaximalMatches() {
	data := []byte("acaccgacgatacgagattacgagacgagaatacaacag")
	query := []byte("catagagagacgattacgagaaaacgggaaagacgatcc")
	idx := spine.Build(data)
	matches, _, _ := idx.MaximalMatches(query, 8)
	for _, m := range matches {
		fmt.Printf("%s at query %d, data %v\n",
			query[m.QueryStart:m.QueryStart+m.Len], m.QueryStart, m.DataStarts)
	}
	// Output:
	// gattacgaga at query 11, data [15]
}

func ExampleIndex_LongestRepeatedSubstring() {
	idx := spine.Build([]byte("banana"))
	s, first, second := idx.LongestRepeatedSubstring()
	fmt.Printf("%s at %d and %d\n", s, first, second)
	// Output:
	// ana at 1 and 3
}

func ExampleIndex_FindAllWithin() {
	idx := spine.Build([]byte("gggggggacgaacgtggggggg"))
	fmt.Println(idx.FindAllWithin([]byte("acgtacgt"), 0, spine.Hamming))
	fmt.Println(idx.FindAllWithin([]byte("acgtacgt"), 1, spine.Hamming))
	// Output:
	// []
	// [7]
}

func ExampleBuildGeneralized() {
	g, _ := spine.BuildGeneralized([][]byte{
		[]byte("atgaccgattacgaga"),
		[]byte("ccgattacgagattt"),
	}, '#')
	for _, loc := range g.FindAll([]byte("gattacgaga")) {
		fmt.Printf("string %d offset %d\n", loc.StringID, loc.Offset)
	}
	// Output:
	// string 0 offset 6
	// string 1 offset 2
}
