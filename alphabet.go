package spine

import "github.com/spine-index/spine/internal/seq"

// Alphabet maps sequence letters to dense codes; it drives the bit-packed
// character storage of the compact layout (2 bits per DNA base, 5 per
// protein residue).
type Alphabet = seq.Alphabet

// DNA is the four-letter nucleotide alphabet {a, c, g, t}, case-folded.
var DNA = seq.DNA

// Protein is the twenty-letter amino-acid alphabet, case-folded.
var Protein = seq.Protein

// NewAlphabet builds an alphabet over the given distinct letters; see
// Alphabet. It panics on empty or duplicate letter sets.
func NewAlphabet(letters []byte) *Alphabet { return seq.NewAlphabet(letters) }
