package seqgen

import (
	"testing"

	"github.com/spine-index/spine/internal/seq"
)

func TestGenerateDeterministic(t *testing.T) {
	sp := Spec{Name: "t", Alphabet: seq.DNA, Length: 5000, RepeatFraction: 0.3, MeanRepeatLen: 50, MutationRate: 0.02, Seed: 42}
	a := MustGenerate(sp)
	b := MustGenerate(sp)
	if string(a) != string(b) {
		t.Fatal("same spec produced different sequences")
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	sp := Spec{Name: "t", Alphabet: seq.DNA, Length: 5000, RepeatFraction: 0.3, MeanRepeatLen: 50, MutationRate: 0.02, Seed: 1}
	a := MustGenerate(sp)
	sp.Seed = 2
	b := MustGenerate(sp)
	if string(a) == string(b) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestGenerateLengthAndAlphabet(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 1000, 20000} {
		sp := Spec{Name: "t", Alphabet: seq.DNA, Length: n, RepeatFraction: 0.4, MeanRepeatLen: 30, MutationRate: 0.05, Seed: 9}
		s := MustGenerate(sp)
		if len(s) != n {
			t.Fatalf("length %d: got %d", n, len(s))
		}
		if !seq.DNA.Contains(s) {
			t.Fatalf("length %d: output leaves DNA alphabet", n)
		}
	}
}

func TestGenerateProteinAlphabet(t *testing.T) {
	sp := Spec{Name: "p", Alphabet: seq.Protein, Length: 8000, RepeatFraction: 0.2, MeanRepeatLen: 60, MutationRate: 0.03, Seed: 5}
	s := MustGenerate(sp)
	if !seq.Protein.Contains(s) {
		t.Fatal("output leaves protein alphabet")
	}
	// All 20 residues should appear in 8k characters.
	seen := map[byte]bool{}
	for _, b := range s {
		seen[b] = true
	}
	if len(seen) < 15 {
		t.Fatalf("only %d distinct residues in 8k chars; composition too degenerate", len(seen))
	}
}

func TestGenerateRepeatsIncreaseSelfSimilarity(t *testing.T) {
	// A repeat-heavy sequence must have many fewer distinct k-mers than a
	// repeat-free one of the same length.
	base := Spec{Name: "t", Alphabet: seq.DNA, Length: 60000, MeanRepeatLen: 200, MutationRate: 0.01, Seed: 77}
	noRep := base
	noRep.RepeatFraction = 0
	rep := base
	rep.RepeatFraction = 0.6

	distinct := func(s []byte, k int) int {
		m := map[string]bool{}
		for i := 0; i+k <= len(s); i++ {
			m[string(s[i:i+k])] = true
		}
		return len(m)
	}
	dn, dr := distinct(MustGenerate(noRep), 16), distinct(MustGenerate(rep), 16)
	if dr >= dn {
		t.Fatalf("repeat-heavy distinct 16-mers (%d) >= repeat-free (%d)", dr, dn)
	}
	if float64(dr) > 0.8*float64(dn) {
		t.Fatalf("repeat structure too weak: %d vs %d distinct 16-mers", dr, dn)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Alphabet: nil, Length: 10}); err == nil {
		t.Error("nil alphabet accepted")
	}
	if _, err := Generate(Spec{Alphabet: seq.DNA, Length: -1}); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := Generate(Spec{Alphabet: seq.DNA, Length: 10, RepeatFraction: 1.0}); err == nil {
		t.Error("repeat fraction 1.0 accepted")
	}
}

func TestSuiteSpecScaling(t *testing.T) {
	full, err := SuiteSpec("eco", 1)
	if err != nil {
		t.Fatalf("SuiteSpec: %v", err)
	}
	if full.Length != 3_500_000 {
		t.Fatalf("eco full length = %d", full.Length)
	}
	small, err := SuiteSpec("eco", 100)
	if err != nil {
		t.Fatalf("SuiteSpec: %v", err)
	}
	if small.Length != 35_000 {
		t.Fatalf("eco /100 length = %d", small.Length)
	}
	if small.Seed != full.Seed || small.RepeatFraction != full.RepeatFraction {
		t.Fatal("scaling changed non-length parameters")
	}
}

func TestSuiteSpecErrors(t *testing.T) {
	if _, err := SuiteSpec("nope", 1); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := SuiteSpec("eco", 0); err == nil {
		t.Error("divide 0 accepted")
	}
}

func TestSuiteNamesResolve(t *testing.T) {
	for _, n := range append(append([]string{}, SuiteNames...), ProteinSuiteNames...) {
		s, err := SuiteSequence(n, 1000)
		if err != nil {
			t.Fatalf("SuiteSequence(%s): %v", n, err)
		}
		if len(s) == 0 {
			t.Fatalf("SuiteSequence(%s) empty", n)
		}
	}
}

func TestIndelRateChangesCopiesButNotDeterminism(t *testing.T) {
	base := Spec{Name: "t", Alphabet: seq.DNA, Length: 20000, RepeatFraction: 0.5,
		MeanRepeatLen: 200, MutationRate: 0.01, Seed: 55}
	noIndel := MustGenerate(base)
	base.IndelRate = 0.02
	withIndel1 := MustGenerate(base)
	withIndel2 := MustGenerate(base)
	if string(withIndel1) != string(withIndel2) {
		t.Fatal("indel generation not deterministic")
	}
	if string(noIndel) == string(withIndel1) {
		t.Fatal("indel rate had no effect")
	}
	if len(withIndel1) != base.Length {
		t.Fatalf("length %d, want %d", len(withIndel1), base.Length)
	}
	// Zero indel rate must reproduce the historical stream exactly (no
	// extra rng draws).
	base.IndelRate = 0
	if string(MustGenerate(base)) != string(noIndel) {
		t.Fatal("IndelRate=0 changed the deterministic stream")
	}
}
