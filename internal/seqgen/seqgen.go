// Package seqgen generates synthetic genomic and proteomic sequences with
// controlled repeat structure. It is the stand-in for the real genomes the
// paper measures (E.coli, C.elegans, human chromosomes 21 and 19, and three
// proteomes), which are not available in this environment.
//
// The properties that drive SPINE's and the suffix tree's behaviour are
// string length, alphabet size, and repetition statistics: repeats control
// how sparse the rib distribution is (Table 4), how large the numeric edge
// labels grow (Table 3), and how top-heavy the link-destination distribution
// is (Figure 8). The generator therefore layers three mechanisms:
//
//  1. an order-1 Markov background with mildly skewed base composition,
//  2. a library of repeat families sampled from already-emitted sequence and
//     re-inserted at random positions, and
//  3. point mutations applied to each re-inserted repeat copy,
//
// which together yield genome-like self-similarity: long strings become
// progressively more repetitive, exactly the behaviour §5 reports ("after
// some length ... the remaining part mostly contains repetitions").
//
// Generation is deterministic for a given Spec (including its Seed).
package seqgen

import (
	"fmt"
	"math/rand"

	"github.com/spine-index/spine/internal/seq"
)

// Spec describes a synthetic sequence.
type Spec struct {
	// Name identifies the workload (e.g. "eco"); informational.
	Name string
	// Alphabet over which sequence letters are drawn.
	Alphabet *seq.Alphabet
	// Length is the number of characters to generate.
	Length int
	// RepeatFraction in [0,1) is the approximate fraction of the output
	// produced by re-inserting repeat-family copies rather than fresh
	// background. Genomic DNA is commonly modelled at 0.3–0.5.
	RepeatFraction float64
	// MeanRepeatLen is the mean length of one repeat copy (geometric).
	MeanRepeatLen int
	// MutationRate is the per-character probability that a repeat copy
	// letter is substituted, keeping copies near-identical but not exact.
	MutationRate float64
	// IndelRate is the per-character probability that a repeat copy
	// position is deleted or gains an inserted letter (split evenly);
	// real repeat families diverge by indels as well as substitutions.
	IndelRate float64
	// Seed makes generation deterministic.
	Seed int64
}

// Generate produces the sequence described by sp as raw alphabet letters.
func Generate(sp Spec) ([]byte, error) {
	if sp.Alphabet == nil {
		return nil, fmt.Errorf("seqgen: %s: nil alphabet", sp.Name)
	}
	if sp.Length < 0 {
		return nil, fmt.Errorf("seqgen: %s: negative length %d", sp.Name, sp.Length)
	}
	if sp.RepeatFraction < 0 || sp.RepeatFraction >= 1 {
		return nil, fmt.Errorf("seqgen: %s: repeat fraction %v out of [0,1)", sp.Name, sp.RepeatFraction)
	}
	if sp.MeanRepeatLen <= 0 {
		sp.MeanRepeatLen = 300
	}
	rng := rand.New(rand.NewSource(sp.Seed))
	k := sp.Alphabet.Size()

	// Skewed stationary base composition plus a mild order-1 bias: each
	// letter prefers to be followed by itself, which lengthens homopolymer
	// runs the way real genomes do.
	baseW := make([]float64, k)
	total := 0.0
	for i := range baseW {
		baseW[i] = 1 + 0.5*rng.Float64()
		total += baseW[i]
	}
	for i := range baseW {
		baseW[i] /= total
	}
	const selfBias = 0.12

	out := make([]byte, 0, sp.Length)
	prev := -1
	emitBackground := func(n int) {
		for i := 0; i < n && len(out) < sp.Length; i++ {
			r := rng.Float64()
			if prev >= 0 && r < selfBias {
				out = append(out, sp.Alphabet.Letter(prev))
				continue
			}
			r = rng.Float64()
			c := k - 1
			for j, w := range baseW {
				if r < w {
					c = j
					break
				}
				r -= w
			}
			out = append(out, sp.Alphabet.Letter(c))
			prev = c
		}
	}

	// Warm-up background so repeats have material to sample from.
	warm := sp.Length / 20
	if warm < 64 {
		warm = 64
	}
	emitBackground(warm)

	for len(out) < sp.Length {
		if rng.Float64() < sp.RepeatFraction && len(out) > sp.MeanRepeatLen {
			// Re-insert a (mutated) copy of an earlier segment.
			rl := 1 + int(rng.ExpFloat64()*float64(sp.MeanRepeatLen))
			if rl > len(out) {
				rl = len(out)
			}
			if rem := sp.Length - len(out); rl > rem {
				rl = rem
			}
			start := rng.Intn(len(out) - rl + 1)
			copySeg := out[start : start+rl]
			for _, b := range copySeg {
				if sp.IndelRate > 0 && rng.Float64() < sp.IndelRate {
					if rng.Intn(2) == 0 {
						continue // deletion
					}
					out = append(out, sp.Alphabet.Letter(rng.Intn(k))) // insertion
				}
				if rng.Float64() < sp.MutationRate {
					b = sp.Alphabet.Letter(rng.Intn(k))
				}
				out = append(out, b)
			}
			prev = -1
		} else {
			burst := 1 + rng.Intn(256)
			emitBackground(burst)
		}
	}
	return out[:sp.Length], nil
}

// MustGenerate is Generate for specs known valid at compile time; it panics
// on error. Intended for tests and benchmarks.
func MustGenerate(sp Spec) []byte {
	s, err := Generate(sp)
	if err != nil {
		panic(err)
	}
	return s
}
