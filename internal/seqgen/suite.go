package seqgen

import (
	"fmt"

	"github.com/spine-index/spine/internal/seq"
)

// The paper's evaluation corpus. Lengths follow §5/§6; repeat parameters
// are tuned so the structural measurements (Tables 3-4, Figure 8) land in
// the paper's reported ranges. The human chromosomes are modelled as more
// repetitive than the microbial genomes, matching their known repeat
// content and the paper's larger label values for HC21/HC19.
var suite = map[string]Spec{
	"eco":  {Name: "eco", Alphabet: seq.DNA, Length: 3_500_000, RepeatFraction: 0.30, MeanRepeatLen: 220, MutationRate: 0.02, Seed: 101},
	"cel":  {Name: "cel", Alphabet: seq.DNA, Length: 15_500_000, RepeatFraction: 0.33, MeanRepeatLen: 300, MutationRate: 0.02, Seed: 102},
	"hc21": {Name: "hc21", Alphabet: seq.DNA, Length: 28_500_000, RepeatFraction: 0.40, MeanRepeatLen: 420, MutationRate: 0.015, Seed: 103},
	"hc19": {Name: "hc19", Alphabet: seq.DNA, Length: 57_500_000, RepeatFraction: 0.42, MeanRepeatLen: 420, MutationRate: 0.015, Seed: 104},

	"ecoli-res": {Name: "ecoli-res", Alphabet: seq.Protein, Length: 1_500_000, RepeatFraction: 0.18, MeanRepeatLen: 120, MutationRate: 0.03, Seed: 201},
	"yeast-res": {Name: "yeast-res", Alphabet: seq.Protein, Length: 3_100_000, RepeatFraction: 0.20, MeanRepeatLen: 140, MutationRate: 0.03, Seed: 202},
	"dros-res":  {Name: "dros-res", Alphabet: seq.Protein, Length: 7_500_000, RepeatFraction: 0.22, MeanRepeatLen: 160, MutationRate: 0.03, Seed: 203},
}

// SuiteNames lists the corpus in the paper's presentation order.
var SuiteNames = []string{"eco", "cel", "hc21", "hc19"}

// ProteinSuiteNames lists the proteome corpus (§5.2).
var ProteinSuiteNames = []string{"ecoli-res", "yeast-res", "dros-res"}

// SuiteSpec returns the Spec for a named corpus member, scaled down by
// divide (>= 1): lengths shrink while the repeat structure is preserved, so
// scaled runs keep the paper's shape. divide 1 is paper scale.
func SuiteSpec(name string, divide int) (Spec, error) {
	sp, ok := suite[name]
	if !ok {
		return Spec{}, fmt.Errorf("seqgen: unknown suite sequence %q", name)
	}
	if divide < 1 {
		return Spec{}, fmt.Errorf("seqgen: divide %d < 1", divide)
	}
	sp.Length /= divide
	return sp, nil
}

// SuiteSequence generates a named corpus member at the given scale divisor.
func SuiteSequence(name string, divide int) ([]byte, error) {
	sp, err := SuiteSpec(name, divide)
	if err != nil {
		return nil, err
	}
	return Generate(sp)
}
