package suffixtree

import "sort"

// Cursor implements streaming matching statistics over the suffix tree,
// the classical Chang–Lawler walk: on a mismatch it repeatedly drops one
// character from the front of the match — one suffix-link hop plus a
// skip/count re-descent per dropped character — until the next character
// extends. This per-suffix processing is exactly what §4.1 of the paper
// contrasts with SPINE's set-basis link chain; the Checked counter makes
// the difference measurable (Table 6).
type Cursor struct {
	t *Tree
	// Position: at `parent` exactly when child == 0; otherwise off
	// characters down the edge parent -> child (0 < off < edgeLen(child)).
	parent, child, off int32
	buf                []byte // current matched string
	// Checked counts nodes examined (edge probes, suffix-link hops,
	// skip/count descents).
	Checked int64
}

// NewCursor returns a cursor at the root with an empty match.
func NewCursor(t *Tree) *Cursor { return &Cursor{t: t, parent: root} }

// Len returns the current matched length.
func (c *Cursor) Len() int { return len(c.buf) }

// Match returns the current matched string (aliased; do not modify).
func (c *Cursor) Match() []byte { return c.buf }

// Reset returns to the root with an empty match, preserving Checked.
func (c *Cursor) Reset() {
	c.parent, c.child, c.off = root, 0, 0
	c.buf = c.buf[:0]
}

// Advance consumes one query character, updating the matched length to the
// matching statistic for the consumed position.
func (c *Cursor) Advance(ch byte) {
	if ch == c.t.term {
		// The terminal never occurs in the data string.
		c.Checked++
		c.Reset()
		return
	}
	for {
		c.Checked++
		if c.tryExtend(ch) {
			c.buf = append(c.buf, ch)
			return
		}
		if len(c.buf) == 0 {
			return // ch does not occur at all; skip it
		}
		c.shortenByOne()
	}
}

func (c *Cursor) tryExtend(ch byte) bool {
	t := c.t
	if c.child == 0 {
		next, ok := t.child(c.parent, ch)
		if !ok {
			return false
		}
		c.child, c.off = next, 1
		c.normalize()
		return true
	}
	if t.text[t.start[c.child]+c.off] != ch {
		return false
	}
	c.off++
	c.normalize()
	return true
}

func (c *Cursor) normalize() {
	if c.child != 0 && c.off == c.t.edgeLen(c.child) {
		c.parent, c.child, c.off = c.child, 0, 0
	}
}

// shortenByOne drops the first character of the match: suffix link from
// the governing internal node, then skip/count back down.
func (c *Cursor) shortenByOne() {
	t := c.t
	c.buf = c.buf[1:]
	if c.child == 0 {
		// Exactly at an internal node: its suffix link lands exactly one
		// character shallower.
		c.Checked++
		c.parent = t.slinkOf(c.parent)
		return
	}
	// Mid-edge: remember the edge fragment, hop from the parent, and
	// skip/count the fragment back down.
	fragStart, fragLen := t.start[c.child], c.off
	if c.parent == root {
		// Dropping the first character shortens the fragment itself.
		fragStart++
		fragLen--
	} else {
		c.Checked++
	}
	n := t.slinkOf(c.parent)
	c.parent, c.child, c.off = n, 0, 0
	for fragLen > 0 {
		c.Checked++
		next, ok := t.child(n, t.text[fragStart])
		if !ok {
			// Cannot happen on a well-formed tree; fail loudly in tests.
			panic("suffixtree: skip/count descent lost its path")
		}
		el := t.edgeLen(next)
		if fragLen >= el {
			n = next
			fragStart += el
			fragLen -= el
			c.parent = n
			continue
		}
		c.child, c.off = next, fragLen
		return
	}
}

func (t *Tree) slinkOf(node int32) int32 {
	if node == root || t.slink[node] == 0 {
		return root
	}
	return t.slink[node]
}

// Position snapshots the cursor's tree position for a later EndsAt call.
func (c *Cursor) Position() (parent, child, off int32) { return c.parent, c.child, c.off }

// MatchEnds returns every end position of the current match in the data
// string, in increasing order; nil for an empty match.
func (c *Cursor) MatchEnds() []int32 {
	return c.t.EndsAt(c.parent, c.child, c.off, len(c.buf))
}

// EndsAt returns every end position of the length-matchLen match whose
// tree position is (parent, child, off) — as snapshotted by
// Cursor.Position — in increasing order.
func (t *Tree) EndsAt(parent, child, off int32, matchLen int) []int32 {
	if matchLen == 0 {
		return nil
	}
	var occ []int
	if child != 0 {
		t.collectLeaves(child, int32(matchLen)+(t.edgeLen(child)-off), &occ)
	} else {
		t.collectLeaves(parent, int32(matchLen), &occ)
	}
	out := make([]int32, len(occ))
	for i, start := range occ {
		out[i] = int32(start + matchLen)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
