package suffixtree

import (
	"math/rand"
	"testing"
)

func bruteMatchingStatistics(text, query []byte) []int {
	ms := make([]int, len(query))
	for j := 1; j <= len(query); j++ {
		for l := j; l >= 1; l-- {
			if bruteContains(text, query[j-l:j]) {
				ms[j-1] = l
				break
			}
		}
	}
	return ms
}

func bruteContains(text, p []byte) bool {
	for i := 0; i+len(p) <= len(text); i++ {
		if string(text[i:i+len(p)]) == string(p) {
			return true
		}
	}
	return false
}

func TestCursorMatchingStatisticsExact(t *testing.T) {
	text := []byte("aaccacaaca")
	query := []byte("ccacaacaacca")
	tr := build(t, string(text))
	cur := NewCursor(tr)
	want := bruteMatchingStatistics(text, query)
	for j, c := range query {
		cur.Advance(c)
		if cur.Len() != want[j] {
			t.Fatalf("pos %d (%q): len %d, want %d", j, query[:j+1], cur.Len(), want[j])
		}
	}
}

func TestCursorMatchingStatisticsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		text := randomRepetitive(rng, 150)
		var query []byte
		if trial%2 == 0 {
			query = randomRepetitive(rng, 80)
		} else {
			query = append([]byte{}, text[rng.Intn(len(text)/2):]...)
			for i := range query {
				if rng.Float64() < 0.1 {
					query[i] = "acgt"[rng.Intn(4)]
				}
			}
		}
		tr, err := Build(text, 0)
		if err != nil {
			t.Fatal(err)
		}
		cur := NewCursor(tr)
		want := bruteMatchingStatistics(text, query)
		for j, c := range query {
			cur.Advance(c)
			if cur.Len() != want[j] {
				t.Fatalf("text=%q query=%q pos %d: len %d, want %d",
					text, query, j, cur.Len(), want[j])
			}
		}
	}
}

func TestCursorMatchEnds(t *testing.T) {
	tr := build(t, "aaccacaaca")
	cur := NewCursor(tr)
	cur.Advance('a')
	cur.Advance('c')
	ends := cur.MatchEnds()
	want := []int32{3, 6, 9}
	if len(ends) != len(want) {
		t.Fatalf("MatchEnds = %v, want %v", ends, want)
	}
	for i := range ends {
		if ends[i] != want[i] {
			t.Fatalf("MatchEnds = %v, want %v", ends, want)
		}
	}
}

func TestCursorForeignCharacter(t *testing.T) {
	tr := build(t, "acgtacgt")
	cur := NewCursor(tr)
	cur.Advance('a')
	cur.Advance('c')
	cur.Advance('x')
	if cur.Len() != 0 {
		t.Fatalf("after foreign char: Len = %d, want 0", cur.Len())
	}
	cur.Advance('g')
	if cur.Len() != 1 {
		t.Fatalf("recovery: Len = %d, want 1", cur.Len())
	}
}

func TestCursorTerminalCharacterResets(t *testing.T) {
	tr := build(t, "acgt")
	cur := NewCursor(tr)
	cur.Advance('a')
	cur.Advance(0) // the terminal
	if cur.Len() != 0 {
		t.Fatalf("after terminal: Len = %d, want 0", cur.Len())
	}
}

func TestCursorCheckedCountsWork(t *testing.T) {
	tr := build(t, "acgtacgtacgt")
	cur := NewCursor(tr)
	for _, c := range []byte("acgtacgt") {
		cur.Advance(c)
	}
	if cur.Checked == 0 {
		t.Fatal("Checked stayed zero")
	}
	before := cur.Checked
	cur.Reset()
	if cur.Len() != 0 || cur.Checked != before {
		t.Fatal("Reset must clear the match but keep Checked")
	}
}

func randomRepetitive(rng *rand.Rand, n int) []byte {
	s := make([]byte, 0, n)
	for len(s) < n {
		if len(s) > 10 && rng.Float64() < 0.5 {
			l := 1 + rng.Intn(10)
			if l > len(s) {
				l = len(s)
			}
			start := rng.Intn(len(s) - l + 1)
			s = append(s, s[start:start+l]...)
		} else {
			s = append(s, "acgt"[rng.Intn(4)])
		}
	}
	return s[:n]
}
