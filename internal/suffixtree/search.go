package suffixtree

import "sort"

// locus is a position in the tree: the node reached (or the node below the
// current edge when mid-edge) plus how many characters of that node's
// inbound edge are consumed.
type locus struct {
	node int32 // node at or below the position
	off  int32 // characters matched on the edge into node (0 = at parent)
	// depth is the total string depth of the position.
	depth int32
}

// walk follows p from the root, returning the final locus and whether all
// of p matched.
func (t *Tree) walk(p []byte) (locus, bool) {
	pos := locus{node: root}
	for i := 0; i < len(p); {
		if pos.off == 0 || pos.off == t.edgeLen(pos.node) {
			next, ok := t.child(pos.node, p[i])
			if !ok {
				return pos, false
			}
			pos.node, pos.off = next, 0
		}
		edge := t.text[t.start[pos.node]+pos.off : t.edgeEnd(pos.node)]
		for len(edge) > 0 && i < len(p) {
			if edge[0] != p[i] {
				return pos, false
			}
			edge = edge[1:]
			i++
			pos.off++
			pos.depth++
		}
	}
	return pos, true
}

// Contains reports whether p is a substring of the data string. The
// terminal character never matches.
func (t *Tree) Contains(p []byte) bool {
	for _, c := range p {
		if c == t.term {
			return false
		}
	}
	_, ok := t.walk(p)
	return ok
}

// Find returns the start offset of the leftmost occurrence of p, or -1.
// (Unlike SPINE, a suffix-tree locus does not identify the first occurrence
// directly; the minimum leaf below it does.)
func (t *Tree) Find(p []byte) int {
	occ := t.FindAll(p)
	if len(occ) == 0 {
		if len(p) == 0 {
			return 0
		}
		return -1
	}
	return occ[0]
}

// FindAll returns every start offset of p in increasing order, or nil if p
// does not occur: the leaves below p's locus, each contributing the suffix
// it represents.
func (t *Tree) FindAll(p []byte) []int {
	for _, c := range p {
		if c == t.term {
			return nil
		}
	}
	if len(p) == 0 {
		out := make([]int, t.Len()+1)
		for i := range out {
			out[i] = i
		}
		return out
	}
	pos, ok := t.walk(p)
	if !ok {
		return nil
	}
	var occ []int
	t.collectLeaves(pos.node, pos.depth+(t.edgeLen(pos.node)-pos.off), &occ)
	sort.Ints(occ)
	return occ
}

// collectLeaves appends the suffix start offsets of all leaves in the
// subtree of node, where depth is the string depth at node.
func (t *Tree) collectLeaves(node, depth int32, occ *[]int) {
	if t.end[node] == leafEnd {
		// Suffix length = depth; text length includes the terminal.
		*occ = append(*occ, len(t.text)-int(depth))
		return
	}
	for _, c := range t.distinct {
		if ch, ok := t.child(node, c); ok {
			t.collectLeaves(ch, depth+t.edgeLen(ch), occ)
		}
	}
}

// Count returns the number of occurrences of p.
func (t *Tree) Count(p []byte) int { return len(t.FindAll(p)) }
