package suffixtree

import (
	"math/rand"
	"testing"

	"github.com/spine-index/spine/internal/trie"
)

func build(t *testing.T, s string) *Tree {
	t.Helper()
	tr, err := Build([]byte(s), 0)
	if err != nil {
		t.Fatalf("Build(%q): %v", s, err)
	}
	return tr
}

func TestContainsPaperExample(t *testing.T) {
	tr := build(t, "aaccacaaca")
	for _, p := range []string{"", "a", "aacc", "cacaaca", "aaccacaaca", "acca"} {
		if !tr.Contains([]byte(p)) {
			t.Errorf("Contains(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"b", "accaa", "aaccacaacaa"} {
		if tr.Contains([]byte(p)) {
			t.Errorf("Contains(%q) = true, want false", p)
		}
	}
}

func TestLeafCountEqualsSuffixCount(t *testing.T) {
	for _, s := range []string{"a", "ab", "aaaa", "mississippi", "aaccacaaca", "abcabcabc"} {
		tr := build(t, s)
		if got := tr.LeafCount(); got != len(s)+1 {
			t.Errorf("s=%q: LeafCount = %d, want %d (every suffix incl. empty)", s, got, len(s)+1)
		}
		if got := tr.NodeCount(); got > 2*(len(s)+1) {
			t.Errorf("s=%q: NodeCount = %d exceeds 2(n+1)", s, got)
		}
	}
}

func TestFindAllMatchesOracleExhaustive(t *testing.T) {
	maxLen := 11
	if testing.Short() {
		maxLen = 8
	}
	for n := 1; n <= maxLen; n++ {
		s := make([]byte, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				checkTreeAgainstOracle(t, s)
				return
			}
			for _, c := range []byte("ac") {
				s[i] = c
				rec(i + 1)
			}
		}
		rec(0)
		if t.Failed() {
			return
		}
	}
}

func checkTreeAgainstOracle(t *testing.T, s []byte) {
	t.Helper()
	tr, err := Build(s, 0)
	if err != nil {
		t.Fatalf("Build(%q): %v", s, err)
	}
	o := trie.NewOracle(s)
	for str := range o.SubstringSet(0) {
		p := []byte(str)
		if !tr.Contains(p) {
			t.Fatalf("s=%q: Contains(%q) = false", s, p)
		}
		if got, want := tr.FindAll(p), o.Occurrences(p); !equalInts(got, want) {
			t.Fatalf("s=%q: FindAll(%q) = %v, want %v", s, p, got, want)
		}
		for _, x := range []byte("ac") {
			probe := append(append([]byte{}, p...), x)
			if tr.Contains(probe) != o.Contains(probe) {
				t.Fatalf("s=%q: Contains(%q) = %v, oracle disagrees", s, probe, tr.Contains(probe))
			}
		}
	}
}

func TestFindAllRandomDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		n := 30 + rng.Intn(150)
		s := make([]byte, n)
		for i := range s {
			s[i] = "acgt"[rng.Intn(4)]
		}
		tr, err := Build(s, 0)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		o := trie.NewOracle(s)
		for q := 0; q < 100; q++ {
			m := 1 + rng.Intn(8)
			p := make([]byte, m)
			for i := range p {
				p[i] = "acgt"[rng.Intn(4)]
			}
			if got, want := tr.FindAll(p), o.Occurrences(p); !equalInts(got, want) {
				t.Fatalf("s=%q: FindAll(%q) = %v, want %v", s, p, got, want)
			}
			if got, want := tr.Find(p), o.First(p); got != want {
				t.Fatalf("s=%q: Find(%q) = %d, want %d", s, p, got, want)
			}
		}
	}
}

func TestOnlineAppendMatchesBuild(t *testing.T) {
	s := []byte("ccacaacgtgttaaccacaacag")
	one, err := Build(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	inc := New(0)
	for _, c := range s {
		if err := inc.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	inc.Finish()
	o := trie.NewOracle(s)
	for str := range o.SubstringSet(0) {
		if one.Contains([]byte(str)) != inc.Contains([]byte(str)) {
			t.Fatalf("online/offline disagree on %q", str)
		}
	}
	if one.NodeCount() != inc.NodeCount() {
		t.Fatalf("node counts differ: %d vs %d", one.NodeCount(), inc.NodeCount())
	}
}

func TestRejectsTerminalInInput(t *testing.T) {
	if _, err := Build([]byte{'a', 0, 'c'}, 0); err == nil {
		t.Fatal("accepted terminal byte inside input")
	}
}

func TestTerminalNeverMatches(t *testing.T) {
	tr := build(t, "acgt")
	if tr.Contains([]byte{0}) {
		t.Fatal("terminal byte reported as substring")
	}
	if got := tr.FindAll([]byte{'t', 0}); got != nil {
		t.Fatalf("FindAll with terminal = %v, want nil", got)
	}
}

func TestEmptyString(t *testing.T) {
	tr := build(t, "")
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Contains(nil) {
		t.Fatal("empty pattern not contained")
	}
	if tr.Contains([]byte("a")) {
		t.Fatal("letter contained in empty tree")
	}
	if got := tr.Find(nil); got != 0 {
		t.Fatalf("Find(empty) = %d, want 0", got)
	}
}

func TestSpaceAccountingPositive(t *testing.T) {
	tr := build(t, "acgtacgtacgtacgt")
	if tr.SizeBytes() <= 0 || tr.BytesPerChar() <= 0 {
		t.Fatalf("space accounting non-positive: %d bytes", tr.SizeBytes())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
