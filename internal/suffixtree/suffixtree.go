// Package suffixtree implements an online suffix tree with suffix links
// (Ukkonen's algorithm). It is the baseline the paper evaluates SPINE
// against ("ST"), standing in for the MUMmer code base: linear-time online
// construction, substring search, all-occurrence enumeration, and suffix-
// link-driven matching statistics with per-suffix node-check accounting
// (the §4.1/Table 6 comparison).
//
// Layout notes: nodes live in flat parallel arrays and children in a single
// open-addressed-style Go map keyed by (node, first character), keeping the
// structure light on pointers — GC cost is the known hazard of pointer-rich
// suffix trees at genome scale.
package suffixtree

import "fmt"

// leafEnd marks a leaf's open end ("grows with the text" during online
// construction).
const leafEnd = int32(-1)

// Tree is a suffix tree over text+terminal. Build is the constructor.
type Tree struct {
	text []byte // data string with terminal appended
	term byte

	// Per-node arrays; node 0 is unused, node 1 is the root.
	start []int32 // edge label start offset (into text) of the edge into the node
	end   []int32 // edge label end offset (exclusive); leafEnd for leaves
	slink []int32 // suffix link, internal nodes only

	children map[uint64]int32 // (node<<8 | firstChar) -> child node

	distinct []byte // distinct characters occurring in text+terminal

	// Ukkonen active point.
	activeNode int32
	activeEdge int32
	activeLen  int32
	remainder  int32

	leafCount int
}

// Build constructs the suffix tree for s with the given terminal character,
// which must not occur in s (it guarantees every suffix ends at a leaf).
// Pass 0 for a conventional NUL terminator.
func Build(s []byte, terminal byte) (*Tree, error) {
	t := New(terminal)
	if err := t.AppendAll(s); err != nil {
		return nil, err
	}
	t.Finish()
	return t, nil
}

// New returns an empty tree ready for online extension with Append,
// mirroring SPINE's online construction. Call Finish before querying.
func New(terminal byte) *Tree {
	t := &Tree{
		term:     terminal,
		children: make(map[uint64]int32),
	}
	// Node 0 unused; node 1 = root with an empty inbound edge.
	t.start = append(t.start, 0, 0)
	t.end = append(t.end, 0, 0)
	t.slink = append(t.slink, 0, 0)
	t.activeNode = 1
	return t
}

const root = int32(1)

func (t *Tree) newNode(start, end int32) int32 {
	t.start = append(t.start, start)
	t.end = append(t.end, end)
	t.slink = append(t.slink, 0)
	return int32(len(t.start) - 1)
}

func childKey(node int32, c byte) uint64 { return uint64(uint32(node))<<8 | uint64(c) }

func (t *Tree) child(node int32, c byte) (int32, bool) {
	v, ok := t.children[childKey(node, c)]
	return v, ok
}

func (t *Tree) setChild(node int32, c byte, child int32) {
	t.children[childKey(node, c)] = child
}

// edgeEnd returns the exclusive end of the edge into node, resolving open
// leaf ends to the current text length.
func (t *Tree) edgeEnd(node int32) int32 {
	if t.end[node] == leafEnd {
		return int32(len(t.text))
	}
	return t.end[node]
}

func (t *Tree) edgeLen(node int32) int32 { return t.edgeEnd(node) - t.start[node] }

// Append extends the tree by one character (Ukkonen's single-phase
// extension). The terminal character may not be appended directly.
func (t *Tree) Append(c byte) error {
	if c == t.term {
		return fmt.Errorf("suffixtree: input contains the terminal character %q", c)
	}
	t.extend(c)
	return nil
}

// AppendAll extends the tree by every byte of s.
func (t *Tree) AppendAll(s []byte) error {
	for _, c := range s {
		if err := t.Append(c); err != nil {
			return err
		}
	}
	return nil
}

// Finish appends the terminal character, completing the implicit tree into
// the true suffix tree. The tree is queryable afterwards; Append must not
// be called again.
func (t *Tree) Finish() {
	t.extend(t.term)
	seen := [256]bool{}
	for _, c := range t.text {
		if !seen[c] {
			seen[c] = true
			t.distinct = append(t.distinct, c)
		}
	}
}

func (t *Tree) extend(c byte) {
	t.text = append(t.text, c)
	i := int32(len(t.text) - 1) // position of c
	t.remainder++
	lastCreated := int32(0)
	for t.remainder > 0 {
		if t.activeLen == 0 {
			t.activeEdge = i
		}
		next, ok := t.child(t.activeNode, t.text[t.activeEdge])
		if !ok {
			// Rule 2: no edge — new leaf off activeNode.
			leaf := t.newNode(i, leafEnd)
			t.leafCount++
			t.setChild(t.activeNode, t.text[t.activeEdge], leaf)
			if lastCreated != 0 {
				t.slink[lastCreated] = t.activeNode
				lastCreated = 0
			}
		} else {
			if el := t.edgeLen(next); t.activeLen >= el {
				// Skip/count down the edge.
				t.activeNode = next
				t.activeEdge += el
				t.activeLen -= el
				continue
			}
			if t.text[t.start[next]+t.activeLen] == c {
				// Rule 3: already present; showstopper for this phase.
				if lastCreated != 0 && t.activeNode != root {
					t.slink[lastCreated] = t.activeNode
				}
				t.activeLen++
				break
			}
			// Rule 2 with split.
			split := t.newNode(t.start[next], t.start[next]+t.activeLen)
			t.setChild(t.activeNode, t.text[t.activeEdge], split)
			leaf := t.newNode(i, leafEnd)
			t.leafCount++
			t.setChild(split, c, leaf)
			t.start[next] += t.activeLen
			t.setChild(split, t.text[t.start[next]], next)
			if lastCreated != 0 {
				t.slink[lastCreated] = split
			}
			lastCreated = split
		}
		t.remainder--
		if t.activeNode == root && t.activeLen > 0 {
			t.activeLen--
			t.activeEdge = i - t.remainder + 1
		} else if t.activeNode != root {
			if t.slink[t.activeNode] != 0 {
				t.activeNode = t.slink[t.activeNode]
			} else {
				t.activeNode = root
			}
		}
	}
}

// Len returns the number of data characters (terminal excluded).
func (t *Tree) Len() int { return len(t.text) - 1 }

// NodeCount returns the number of tree nodes including the root and
// leaves — between n+1 and ~2n, the contrast with SPINE's exactly n+1
// (§1.1 of the paper).
func (t *Tree) NodeCount() int { return len(t.start) - 1 }

// LeafCount returns the number of leaves (== Len()+1 after Finish).
func (t *Tree) LeafCount() int { return t.leafCount }
