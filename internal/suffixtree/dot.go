package suffixtree

import (
	"fmt"
	"io"
)

// WriteDot renders the suffix tree as a Graphviz digraph — the paper's
// Figure 2 for its example string: edge labels are the (possibly
// multi-character) path labels of vertical compaction, and suffix links
// are dashed.
func (t *Tree) WriteDot(w io.Writer) error {
	var err error
	printf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	printf("digraph suffixtree {\n")
	printf("  node [shape=circle, fontsize=9, width=0.25];\n")
	printf("  edge [fontsize=10];\n")
	var walk func(node int32)
	walk = func(node int32) {
		if t.end[node] == leafEnd {
			printf("  n%d [shape=point];\n", node)
			return
		}
		printf("  n%d [label=\"\"];\n", node)
		for _, c := range t.distinct {
			child, ok := t.child(node, c)
			if !ok {
				continue
			}
			label := string(t.text[t.start[child]:t.edgeEnd(child)])
			label = sanitizeLabel(label, t.term)
			printf("  n%d -> n%d [label=\"%s\"];\n", node, child, label)
			walk(child)
		}
	}
	walk(root)
	// Suffix links, dashed.
	for node := root + 1; node < int32(len(t.start)); node++ {
		if t.end[node] != leafEnd && t.slink[node] != 0 {
			printf("  n%d -> n%d [style=dashed, color=gray40, constraint=false];\n", node, t.slink[node])
		}
	}
	printf("}\n")
	return err
}

// sanitizeLabel replaces the terminal byte with '$' for display.
func sanitizeLabel(s string, term byte) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == term {
			out = append(out, '$')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}
