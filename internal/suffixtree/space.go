package suffixtree

// SizeBytes returns the approximate heap footprint of the tree: the flat
// node arrays, the children map (estimated at 16 bytes per entry for key,
// value and bucket overhead), and the retained text. Suffix trees — unlike
// SPINE — must keep the text, since edge labels are (start, end) references
// into it.
func (t *Tree) SizeBytes() int64 {
	nodes := int64(len(t.start))
	b := nodes * (4 + 4 + 4)         // start, end, slink
	b += int64(len(t.children)) * 16 // child map entries
	b += int64(len(t.text))          // retained text
	return b
}

// BytesPerChar returns SizeBytes divided by the data length.
func (t *Tree) BytesPerChar() float64 {
	if t.Len() == 0 {
		return 0
	}
	return float64(t.SizeBytes()) / float64(t.Len())
}

// ModelBytesPerChar is the per-character budget of an engineered 2004-era
// suffix tree implementation, the figure the paper uses for its memory
// comparisons (§8): about 17 bytes per indexed character. The Figure 6
// memory-budget experiment uses this model, not the Go heap, so the
// "ST runs out of memory on HC19" result reflects the paper's setting
// rather than Go map overheads.
const ModelBytesPerChar = 17.0
