package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 7, 8, 1000, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d, want 0/1000", s.Min, s.Max)
	}
	if s.Sum != 0+1+2+3+7+8+1000+0 {
		t.Fatalf("sum = %d", s.Sum)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
	// 0 lands in the le=0 bucket; 1000 in le=1023.
	if s.Buckets[0].LE != 0 || s.Buckets[0].Count != 2 {
		t.Fatalf("zero bucket = %+v", s.Buckets[0])
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.LE != 1023 || last.Count != 1 {
		t.Fatalf("top bucket = %+v", last)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket le=15
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000) // bucket le=131071
	}
	s := h.Snapshot()
	if s.P50 != 15 || s.P90 != 15 {
		t.Fatalf("p50/p90 = %d/%d, want 15/15", s.P50, s.P90)
	}
	if s.P99 != 131071 {
		t.Fatalf("p99 = %d, want 131071", s.P99)
	}
}

func TestHistogramDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Min != 3000 || s.Max != 3000 {
		t.Fatalf("3ms observed as %d..%d µs", s.Min, s.Max)
	}
}

func TestEndpointStatusClasses(t *testing.T) {
	var e Endpoint
	e.ObserveRequest(200, time.Millisecond)
	e.ObserveRequest(404, time.Millisecond)
	e.ObserveRequest(429, time.Millisecond)
	e.ObserveRequest(500, time.Millisecond)
	if e.Requests.Value() != 4 || e.Errors4xx.Value() != 2 ||
		e.Errors5xx.Value() != 1 || e.Rejected.Value() != 1 {
		t.Fatalf("counts: req=%d 4xx=%d 5xx=%d rej=%d",
			e.Requests.Value(), e.Errors4xx.Value(), e.Errors5xx.Value(), e.Rejected.Value())
	}
	if e.Latency.Count() != 4 {
		t.Fatalf("latency count = %d", e.Latency.Count())
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Endpoint("findall").ObserveRequest(200, 2*time.Millisecond)
	r.Query.NodesChecked.Add(1234)
	r.Query.Occurrences.Add(7)
	r.Query.PatternLen.Observe(16)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Endpoints map[string]struct {
			Requests  int64 `json:"requests"`
			LatencyUs struct {
				Count int64 `json:"count"`
			} `json:"latencyUs"`
		} `json:"endpoints"`
		Query struct {
			NodesChecked int64 `json:"nodesChecked"`
			Occurrences  int64 `json:"occurrences"`
		} `json:"query"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Endpoints["findall"].Requests != 1 || out.Endpoints["findall"].LatencyUs.Count != 1 {
		t.Fatalf("endpoint snapshot wrong: %s", b)
	}
	if out.Query.NodesChecked != 1234 || out.Query.Occurrences != 7 {
		t.Fatalf("query snapshot wrong: %s", b)
	}
}

// TestConcurrentObserveAndSnapshot exercises concurrent recording and
// reading; run with -race to verify lock-freedom is actually safe.
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := r.Endpoint("q")
			for i := 0; i < 1000; i++ {
				e.InFlight.Inc()
				e.ObserveRequest(200, time.Duration(i)*time.Microsecond)
				r.Query.NodesChecked.Add(3)
				e.InFlight.Dec()
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Endpoints["q"].Requests != 8000 {
		t.Fatalf("requests = %d, want 8000", s.Endpoints["q"].Requests)
	}
	if s.Query.NodesChecked != 24000 {
		t.Fatalf("nodesChecked = %d, want 24000", s.Query.NodesChecked)
	}
	if s.Endpoints["q"].InFlight != 0 {
		t.Fatalf("inFlight = %d, want 0", s.Endpoints["q"].InFlight)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.PublishExpvar("spine_test_metrics")
	r.PublishExpvar("spine_test_metrics") // must not panic
}
