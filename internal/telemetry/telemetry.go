// Package telemetry instruments the SPINE query path: lock-cheap
// per-endpoint request counters, log-scaled latency histograms,
// in-flight gauges, and aggregation of SPINE-specific query statistics
// (nodes checked, occurrences reported, pattern-length distribution —
// the §4.1 metrics of the paper). A Registry snapshots to a
// JSON-friendly struct served at /metrics and published via expvar.
//
// Everything is built on sync/atomic: recording on the hot path is a
// handful of uncontended atomic adds, no locks, no allocation.
package telemetry

import (
	"expvar"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic up/down gauge (e.g. in-flight requests).
type Gauge struct{ v atomic.Int64 }

// Inc increments the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Endpoint aggregates one HTTP endpoint's traffic.
type Endpoint struct {
	Requests  Counter   // completed requests, any status
	Errors4xx Counter   // completed with a 4xx status
	Errors5xx Counter   // completed with a 5xx status
	Rejected  Counter   // shed with 429 by the concurrency limiter
	InFlight  Gauge     // currently executing requests
	Latency   Histogram // request latency, microseconds
	// CacheHits and CacheMisses attribute result-cache outcomes to the
	// endpoint (a hit covers both cache hits and negative-filter
	// rejections: the request did no index work). Zero on servers
	// running without a cache.
	CacheHits   Counter
	CacheMisses Counter
}

// ObserveRequest records one completed request.
func (e *Endpoint) ObserveRequest(status int, d time.Duration) {
	e.Requests.Inc()
	switch {
	case status == 429:
		e.Rejected.Inc()
		e.Errors4xx.Inc()
	case status >= 500:
		e.Errors5xx.Inc()
	case status >= 400:
		e.Errors4xx.Inc()
	}
	e.Latency.ObserveDuration(d)
}

// QueryStats aggregates SPINE-specific query-path measurements across
// all endpoints.
type QueryStats struct {
	// NodesChecked is the cumulative number of index nodes examined —
	// the paper's §4.1 set-basis suffix processing metric.
	NodesChecked Counter
	// Occurrences is the cumulative number of occurrence positions
	// reported to clients.
	Occurrences Counter
	// Truncated counts responses cut short by a result limit.
	Truncated Counter
	// PatternLen is the distribution of query pattern lengths.
	PatternLen Histogram
}

// BatchStats aggregates the batched query pipeline: how many batches
// arrive, how many patterns they carry, and how much of that work the
// in-batch dedupe and per-item validation absorbed before the single
// backbone scan ran.
type BatchStats struct {
	// Batches counts batch requests that reached the engine.
	Batches Counter
	// Patterns counts items across all batches.
	Patterns Counter
	// Deduped counts items answered by an identical in-batch twin
	// (no extra descent, no extra scan work).
	Deduped Counter
	// RejectedItems counts items that failed individually (overlong
	// patterns) while the rest of their batch succeeded.
	RejectedItems Counter
	// Size is the distribution of patterns per batch.
	Size Histogram
}

// StageStats aggregates the query-path work attributed to one trace
// stage (descend, ribs, extribs, occurrences, shard, merge) across all
// traced queries — the population view of internal/trace's per-query
// spans.
type StageStats struct {
	// Spans counts spans recorded for this stage.
	Spans Counter
	// Nanos is the cumulative span wall time in nanoseconds.
	Nanos Counter
	// Nodes is the cumulative §4.1 nodes-checked count.
	Nodes Counter
	// RibHops and ExtribHops count cross-edge work during descents.
	RibHops    Counter
	ExtribHops Counter
	// BlocksSkipped and BlocksScanned count skip-index decisions during
	// block-accelerated occurrence scans (occurrences/batchscan stages).
	BlocksSkipped Counter
	BlocksScanned Counter
	// WordsCompared counts 64-bit SWAR kernel comparisons (packed descent
	// words, lane-parallel LEL tests, block-admission probes); zero when
	// queries run the scalar kernel.
	WordsCompared Counter
	// ReadaheadIssued and ReadaheadHits count disk readahead windows
	// issued under scans versus range-cache hits; zero unless the index
	// serves from a mapped file (the "disk" stage).
	ReadaheadIssued Counter
	ReadaheadHits   Counter
	// WorkersUsed counts backbone partitions spawned by the intra-query
	// parallel scan; ChainsStitched counts cross-partition chain roots
	// resolved by its ordered stitch pass. Both zero on sequential scans.
	WorkersUsed    Counter
	ChainsStitched Counter
}

// ShardStats aggregates one shard's share of fan-out queries, making
// hot shards visible (Sharded sums NodesChecked across shards in its
// results; attribution lives here).
type ShardStats struct {
	// Queries counts fan-out legs executed against the shard.
	Queries Counter
	// Nanos is the cumulative shard-leg wall time in nanoseconds.
	Nanos Counter
	// NodesChecked is the shard's cumulative §4.1 work.
	NodesChecked Counter
}

// CacheSnapshot is a point-in-time copy of the serving layer's result
// cache and negative filter, polled at snapshot time from the cache
// owner (see SetCacheSource). Enabled distinguishes "no cache
// configured" from "cache configured, all counters still zero".
type CacheSnapshot struct {
	Enabled bool  `json:"enabled"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	// NegRejects counts queries answered by the q-gram negative filter
	// (pattern definitely absent, zero index work); NegFalsePos counts
	// filter passes the index then proved absent.
	NegRejects  int64 `json:"negRejects"`
	NegFalsePos int64 `json:"negFalsePos"`
	Entries     int64 `json:"entries"`
	Bytes       int64 `json:"bytes"`
	Evictions   int64 `json:"evictions"`
	// Epoch is the cache's invalidation epoch; it increments when the
	// indexed text changes.
	Epoch uint64 `json:"epoch"`
	// NegFilterQ is the filter's gram length (0 = filter off);
	// NegFilterBytes its bit-array footprint.
	NegFilterQ     int   `json:"negFilterQ"`
	NegFilterBytes int64 `json:"negFilterBytes"`
}

// BuildInfo identifies the running binary, read once from the module
// metadata the Go linker embeds (runtime/debug.ReadBuildInfo). It
// becomes the spine_build_info Prometheus gauge, so a fleet dashboard
// can tell which version each replica runs without shelling in.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	Commit    string `json:"commit"`
}

// readBuildInfo extracts the binary's identity; fields the build didn't
// stamp come back as "unknown" so the gauge's label set stays stable.
func readBuildInfo() BuildInfo {
	b := BuildInfo{Version: "unknown", GoVersion: runtime.Version(), Commit: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		b.Version = v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			b.Commit = s.Value
		}
	}
	return b
}

// DiskSnapshot is the disk-serving state a mapped index reports at
// snapshot time: how the index was opened and how the readahead /
// range-cache path is doing. It becomes the spine_disk_* metric
// families. The serving layer registers a source (SetDiskSource) so
// telemetry does not import the index packages.
type DiskSnapshot struct {
	// Enabled marks that a disk source is registered.
	Enabled bool `json:"enabled,omitempty"`
	// Mode is the open mode: "mmap", "readerat", or "heap".
	Mode string `json:"mode,omitempty"`
	// FileBytes / MappedBytes / ResidentBytes / WarmedBytes describe the
	// image: on-disk size, mapped extent, bytes currently resident (the
	// page-cache footprint for mmap mode), and bytes touched by warmup.
	FileBytes     int64 `json:"fileBytes,omitempty"`
	MappedBytes   int64 `json:"mappedBytes,omitempty"`
	ResidentBytes int64 `json:"residentBytes,omitempty"`
	WarmedBytes   int64 `json:"warmedBytes,omitempty"`
	// ReadaheadIssued / ReadaheadHits / ReadaheadBytes count scan
	// readahead windows issued, range-cache hits, and bytes prefetched;
	// issued windows approximate page faults avoided by streaming.
	ReadaheadIssued int64 `json:"readaheadIssued,omitempty"`
	ReadaheadHits   int64 `json:"readaheadHits,omitempty"`
	ReadaheadBytes  int64 `json:"readaheadBytes,omitempty"`
	// RangeCacheEvicted counts readahead ranges dropped to budget.
	RangeCacheEvicted int64 `json:"rangeCacheEvicted,omitempty"`
	// OpenSeconds is the cold-open wall time.
	OpenSeconds float64 `json:"openSeconds,omitempty"`
}

// ScanKernelInfo identifies the scan kernel configuration a server
// runs: the selected kernel ("swar" or "scalar") and the compiled-in
// word-load ISA ("amd64" or "generic"). It becomes the
// spine_scan_kernel info gauge, following the spine_build_info model.
// The serving layer reports it (SetScanKernelInfo) so telemetry does
// not import the engine.
type ScanKernelInfo struct {
	Kernel string `json:"kernel,omitempty"`
	ISA    string `json:"isa,omitempty"`
}

// Registry is the process-wide metric store for a query service.
type Registry struct {
	start time.Time
	build BuildInfo
	Query QueryStats
	Batch BatchStats

	// cacheSource, when set, is polled at snapshot time for the result
	// cache's counters; the cache owns its own atomics, the registry
	// only reads them.
	cacheSource atomic.Pointer[func() CacheSnapshot]

	// scanInfo, when set, labels snapshots with the active scan kernel.
	scanInfo atomic.Pointer[ScanKernelInfo]

	// diskSource, when set, is polled at snapshot time for the mapped
	// index's disk-path counters (readahead, residency).
	diskSource atomic.Pointer[func() DiskSnapshot]

	mu        sync.RWMutex
	endpoints map[string]*Endpoint
	stages    map[string]*StageStats
	shards    map[int]*ShardStats
}

// SetCacheSource registers the function Snapshot polls for cache
// counters. Pass the closure once at server construction; a nil source
// reports a disabled cache.
func (r *Registry) SetCacheSource(src func() CacheSnapshot) {
	if src == nil {
		r.cacheSource.Store(nil)
		return
	}
	r.cacheSource.Store(&src)
}

// SetDiskSource registers the function Snapshot polls for disk-serving
// counters. Pass the closure once at server construction; a nil source
// reports no disk path.
func (r *Registry) SetDiskSource(src func() DiskSnapshot) {
	if src == nil {
		r.diskSource.Store(nil)
		return
	}
	r.diskSource.Store(&src)
}

// SetScanKernelInfo records the scan kernel configuration reported in
// snapshots and the spine_scan_kernel gauge. Call it at server
// construction and again if the kernel is flipped at runtime.
func (r *Registry) SetScanKernelInfo(info ScanKernelInfo) {
	r.scanInfo.Store(&info)
}

// NewRegistry returns an empty registry; the uptime clock starts now.
func NewRegistry() *Registry {
	return &Registry{
		start:     time.Now(),
		build:     readBuildInfo(),
		endpoints: make(map[string]*Endpoint),
		stages:    make(map[string]*StageStats),
		shards:    make(map[int]*ShardStats),
	}
}

// Endpoint returns the named endpoint's metrics, creating them on first
// use. Lookups after creation take only an RLock.
func (r *Registry) Endpoint(name string) *Endpoint {
	r.mu.RLock()
	e := r.endpoints[name]
	r.mu.RUnlock()
	if e != nil {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e = r.endpoints[name]; e == nil {
		e = &Endpoint{}
		r.endpoints[name] = e
	}
	return e
}

// Stage returns the named stage's metrics, creating them on first use.
func (r *Registry) Stage(name string) *StageStats {
	r.mu.RLock()
	s := r.stages[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.stages[name]; s == nil {
		s = &StageStats{}
		r.stages[name] = s
	}
	return s
}

// Shard returns shard i's metrics, creating them on first use.
func (r *Registry) Shard(i int) *ShardStats {
	r.mu.RLock()
	s := r.shards[i]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.shards[i]; s == nil {
		s = &ShardStats{}
		r.shards[i] = s
	}
	return s
}

// EndpointSnapshot is a point-in-time copy of one endpoint's metrics.
type EndpointSnapshot struct {
	Requests    int64             `json:"requests"`
	Errors4xx   int64             `json:"errors4xx"`
	Errors5xx   int64             `json:"errors5xx"`
	Rejected    int64             `json:"rejected"`
	InFlight    int64             `json:"inFlight"`
	CacheHits   int64             `json:"cacheHits"`
	CacheMisses int64             `json:"cacheMisses"`
	LatencyUs   HistogramSnapshot `json:"latencyUs"`
}

// RuntimeSnapshot captures the Go runtime's health alongside the query
// metrics, so /metrics answers "is it us or the GC" without a pprof
// round-trip. It is read at snapshot time from runtime.ReadMemStats.
type RuntimeSnapshot struct {
	Goroutines          int     `json:"goroutines"`
	HeapAllocBytes      uint64  `json:"heapAllocBytes"`
	HeapSysBytes        uint64  `json:"heapSysBytes"`
	HeapObjects         uint64  `json:"heapObjects"`
	NextGCBytes         uint64  `json:"nextGcBytes"`
	GCCycles            uint32  `json:"gcCycles"`
	GCPauseTotalSeconds float64 `json:"gcPauseTotalSeconds"`
	LastGCPauseSeconds  float64 `json:"lastGcPauseSeconds"`
	GCCPUFraction       float64 `json:"gcCpuFraction"`
}

// StageSnapshot is a point-in-time copy of one stage's metrics.
type StageSnapshot struct {
	Spans           int64   `json:"spans"`
	Seconds         float64 `json:"seconds"`
	Nodes           int64   `json:"nodes"`
	RibHops         int64   `json:"ribHops"`
	ExtribHops      int64   `json:"extribHops"`
	BlocksSkipped   int64   `json:"blocksSkipped"`
	BlocksScanned   int64   `json:"blocksScanned"`
	WordsCompared   int64   `json:"wordsCompared"`
	ReadaheadIssued int64   `json:"readaheadIssued,omitempty"`
	ReadaheadHits   int64   `json:"readaheadHits,omitempty"`
	WorkersUsed     int64   `json:"workersUsed,omitempty"`
	ChainsStitched  int64   `json:"chainsStitched,omitempty"`
}

// ShardSnapshot is a point-in-time copy of one shard's metrics.
type ShardSnapshot struct {
	Queries      int64   `json:"queries"`
	Seconds      float64 `json:"seconds"`
	NodesChecked int64   `json:"nodesChecked"`
}

// Snapshot is a point-in-time copy of the whole registry, shaped for
// JSON encoding at /metrics.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// StartTimeUnix is the process start (registry creation) as unix
	// seconds — the spine_process_start_time_seconds gauge.
	StartTimeUnix float64                     `json:"startTimeUnix"`
	Build         BuildInfo                   `json:"build"`
	ScanKernel    ScanKernelInfo              `json:"scanKernel"`
	Runtime       RuntimeSnapshot             `json:"runtime"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Query         QuerySnapshot               `json:"query"`
	Batch         BatchSnapshot               `json:"batch"`
	Cache         CacheSnapshot               `json:"cache"`
	Disk          DiskSnapshot                `json:"disk,omitempty"`
	Stages        map[string]StageSnapshot    `json:"stages,omitempty"`
	Shards        map[int]ShardSnapshot       `json:"shards,omitempty"`
}

// QuerySnapshot is the snapshot of QueryStats.
type QuerySnapshot struct {
	NodesChecked int64             `json:"nodesChecked"`
	Occurrences  int64             `json:"occurrences"`
	Truncated    int64             `json:"truncated"`
	PatternLen   HistogramSnapshot `json:"patternLen"`
}

// BatchSnapshot is the snapshot of BatchStats.
type BatchSnapshot struct {
	Batches       int64             `json:"batches"`
	Patterns      int64             `json:"patterns"`
	Deduped       int64             `json:"deduped"`
	RejectedItems int64             `json:"rejectedItems"`
	Size          HistogramSnapshot `json:"size"`
}

// Snapshot copies the registry's current state. The uptime and runtime
// stats are read in the same instant as the counters (uptime from the
// monotonic clock), so one scrape is internally consistent: GC pause
// totals, goroutine counts and query work all describe the same moment.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	eps := make(map[string]*Endpoint, len(r.endpoints))
	for name, e := range r.endpoints {
		eps[name] = e
	}
	stages := make(map[string]*StageStats, len(r.stages))
	for name, st := range r.stages {
		stages[name] = st
	}
	shards := make(map[int]*ShardStats, len(r.shards))
	for i, sh := range r.shards {
		shards[i] = sh
	}
	r.mu.RUnlock()
	s := Snapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		StartTimeUnix: float64(r.start.UnixNano()) / 1e9,
		Build:         r.build,
		Runtime:       readRuntime(),
		Endpoints:     make(map[string]EndpointSnapshot, len(eps)),
		Query: QuerySnapshot{
			NodesChecked: r.Query.NodesChecked.Value(),
			Occurrences:  r.Query.Occurrences.Value(),
			Truncated:    r.Query.Truncated.Value(),
			PatternLen:   r.Query.PatternLen.Snapshot(),
		},
		Batch: BatchSnapshot{
			Batches:       r.Batch.Batches.Value(),
			Patterns:      r.Batch.Patterns.Value(),
			Deduped:       r.Batch.Deduped.Value(),
			RejectedItems: r.Batch.RejectedItems.Value(),
			Size:          r.Batch.Size.Snapshot(),
		},
	}
	if src := r.cacheSource.Load(); src != nil {
		s.Cache = (*src)()
		s.Cache.Enabled = true
	}
	if info := r.scanInfo.Load(); info != nil {
		s.ScanKernel = *info
	}
	if src := r.diskSource.Load(); src != nil {
		s.Disk = (*src)()
		s.Disk.Enabled = true
	}
	for name, e := range eps {
		s.Endpoints[name] = EndpointSnapshot{
			Requests:    e.Requests.Value(),
			Errors4xx:   e.Errors4xx.Value(),
			Errors5xx:   e.Errors5xx.Value(),
			Rejected:    e.Rejected.Value(),
			InFlight:    e.InFlight.Value(),
			CacheHits:   e.CacheHits.Value(),
			CacheMisses: e.CacheMisses.Value(),
			LatencyUs:   e.Latency.Snapshot(),
		}
	}
	if len(stages) > 0 {
		s.Stages = make(map[string]StageSnapshot, len(stages))
		for name, st := range stages {
			s.Stages[name] = StageSnapshot{
				Spans:           st.Spans.Value(),
				Seconds:         float64(st.Nanos.Value()) / 1e9,
				Nodes:           st.Nodes.Value(),
				RibHops:         st.RibHops.Value(),
				ExtribHops:      st.ExtribHops.Value(),
				BlocksSkipped:   st.BlocksSkipped.Value(),
				BlocksScanned:   st.BlocksScanned.Value(),
				WordsCompared:   st.WordsCompared.Value(),
				ReadaheadIssued: st.ReadaheadIssued.Value(),
				ReadaheadHits:   st.ReadaheadHits.Value(),
				WorkersUsed:     st.WorkersUsed.Value(),
				ChainsStitched:  st.ChainsStitched.Value(),
			}
		}
	}
	if len(shards) > 0 {
		s.Shards = make(map[int]ShardSnapshot, len(shards))
		for i, sh := range shards {
			s.Shards[i] = ShardSnapshot{
				Queries:      sh.Queries.Value(),
				Seconds:      float64(sh.Nanos.Value()) / 1e9,
				NodesChecked: sh.NodesChecked.Value(),
			}
		}
	}
	return s
}

// readRuntime samples the Go runtime. ReadMemStats briefly
// stops-the-world; scrape-rate calls (seconds apart) make that cost
// irrelevant, but it should not be called per-request.
func readRuntime() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rs := RuntimeSnapshot{
		Goroutines:          runtime.NumGoroutine(),
		HeapAllocBytes:      ms.HeapAlloc,
		HeapSysBytes:        ms.HeapSys,
		HeapObjects:         ms.HeapObjects,
		NextGCBytes:         ms.NextGC,
		GCCycles:            ms.NumGC,
		GCPauseTotalSeconds: float64(ms.PauseTotalNs) / 1e9,
		GCCPUFraction:       ms.GCCPUFraction,
	}
	if ms.NumGC > 0 {
		rs.LastGCPauseSeconds = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
	}
	return rs
}

// PublishExpvar exposes the registry under the given expvar name
// (visible at /debug/vars). Publishing the same name twice panics in
// expvar, so reuse is guarded: a second call with a taken name is a
// no-op.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
