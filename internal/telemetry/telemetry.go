// Package telemetry instruments the SPINE query path: lock-cheap
// per-endpoint request counters, log-scaled latency histograms,
// in-flight gauges, and aggregation of SPINE-specific query statistics
// (nodes checked, occurrences reported, pattern-length distribution —
// the §4.1 metrics of the paper). A Registry snapshots to a
// JSON-friendly struct served at /metrics and published via expvar.
//
// Everything is built on sync/atomic: recording on the hot path is a
// handful of uncontended atomic adds, no locks, no allocation.
package telemetry

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic up/down gauge (e.g. in-flight requests).
type Gauge struct{ v atomic.Int64 }

// Inc increments the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Endpoint aggregates one HTTP endpoint's traffic.
type Endpoint struct {
	Requests  Counter   // completed requests, any status
	Errors4xx Counter   // completed with a 4xx status
	Errors5xx Counter   // completed with a 5xx status
	Rejected  Counter   // shed with 429 by the concurrency limiter
	InFlight  Gauge     // currently executing requests
	Latency   Histogram // request latency, microseconds
}

// ObserveRequest records one completed request.
func (e *Endpoint) ObserveRequest(status int, d time.Duration) {
	e.Requests.Inc()
	switch {
	case status == 429:
		e.Rejected.Inc()
		e.Errors4xx.Inc()
	case status >= 500:
		e.Errors5xx.Inc()
	case status >= 400:
		e.Errors4xx.Inc()
	}
	e.Latency.ObserveDuration(d)
}

// QueryStats aggregates SPINE-specific query-path measurements across
// all endpoints.
type QueryStats struct {
	// NodesChecked is the cumulative number of index nodes examined —
	// the paper's §4.1 set-basis suffix processing metric.
	NodesChecked Counter
	// Occurrences is the cumulative number of occurrence positions
	// reported to clients.
	Occurrences Counter
	// Truncated counts responses cut short by a result limit.
	Truncated Counter
	// PatternLen is the distribution of query pattern lengths.
	PatternLen Histogram
}

// Registry is the process-wide metric store for a query service.
type Registry struct {
	start time.Time
	Query QueryStats

	mu        sync.RWMutex
	endpoints map[string]*Endpoint
}

// NewRegistry returns an empty registry; the uptime clock starts now.
func NewRegistry() *Registry {
	return &Registry{start: time.Now(), endpoints: make(map[string]*Endpoint)}
}

// Endpoint returns the named endpoint's metrics, creating them on first
// use. Lookups after creation take only an RLock.
func (r *Registry) Endpoint(name string) *Endpoint {
	r.mu.RLock()
	e := r.endpoints[name]
	r.mu.RUnlock()
	if e != nil {
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e = r.endpoints[name]; e == nil {
		e = &Endpoint{}
		r.endpoints[name] = e
	}
	return e
}

// EndpointSnapshot is a point-in-time copy of one endpoint's metrics.
type EndpointSnapshot struct {
	Requests  int64             `json:"requests"`
	Errors4xx int64             `json:"errors4xx"`
	Errors5xx int64             `json:"errors5xx"`
	Rejected  int64             `json:"rejected"`
	InFlight  int64             `json:"inFlight"`
	LatencyUs HistogramSnapshot `json:"latencyUs"`
}

// Snapshot is a point-in-time copy of the whole registry, shaped for
// JSON encoding at /metrics.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptimeSeconds"`
	Endpoints     map[string]EndpointSnapshot `json:"endpoints"`
	Query         QuerySnapshot               `json:"query"`
}

// QuerySnapshot is the snapshot of QueryStats.
type QuerySnapshot struct {
	NodesChecked int64             `json:"nodesChecked"`
	Occurrences  int64             `json:"occurrences"`
	Truncated    int64             `json:"truncated"`
	PatternLen   HistogramSnapshot `json:"patternLen"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	eps := make(map[string]*Endpoint, len(r.endpoints))
	for name, e := range r.endpoints {
		eps[name] = e
	}
	r.mu.RUnlock()
	s := Snapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Endpoints:     make(map[string]EndpointSnapshot, len(eps)),
		Query: QuerySnapshot{
			NodesChecked: r.Query.NodesChecked.Value(),
			Occurrences:  r.Query.Occurrences.Value(),
			Truncated:    r.Query.Truncated.Value(),
			PatternLen:   r.Query.PatternLen.Snapshot(),
		},
	}
	for name, e := range eps {
		s.Endpoints[name] = EndpointSnapshot{
			Requests:  e.Requests.Value(),
			Errors4xx: e.Errors4xx.Value(),
			Errors5xx: e.Errors5xx.Value(),
			Rejected:  e.Rejected.Value(),
			InFlight:  e.InFlight.Value(),
			LatencyUs: e.Latency.Snapshot(),
		}
	}
	return s
}

// PublishExpvar exposes the registry under the given expvar name
// (visible at /debug/vars). Publishing the same name twice panics in
// expvar, so reuse is guarded: a second call with a taken name is a
// no-op.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
