package telemetry

import (
	"bytes"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Exposition-format rules (text format v0.0.4), checked line by line:
// one TYPE per family appearing before its samples, valid metric/label
// names, parseable values, cumulative le buckets ending in +Inf whose
// value equals _count, and no duplicate series.
var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
)

// validatePromText parses a text exposition and fails the test on any
// format violation. It returns the parsed samples by series key.
func validatePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	typed := map[string]string{}    // family -> type
	sampleSeen := map[string]bool{} // family with samples emitted
	series := map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE") {
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			if typed[m[1]] != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, m[1])
			}
			if sampleSeen[m[1]] {
				t.Fatalf("line %d: TYPE for %s after its samples", ln+1, m[1])
			}
			typed[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(line, "# HELP") {
			if helpRe.FindStringSubmatch(line) == nil {
				t.Fatalf("line %d: malformed HELP line %q", ln+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample line %q", ln+1, line)
		}
		name, labels, value := m[1], m[3], m[4]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suffix); ok && typed[f] == "histogram" {
				family = f
			}
		}
		if typed[family] == "" {
			t.Fatalf("line %d: sample %s has no TYPE declaration", ln+1, name)
		}
		sampleSeen[family] = true
		if labels != "" {
			for _, l := range splitLabels(labels) {
				if labelRe.FindStringSubmatch(l) == nil {
					t.Fatalf("line %d: malformed label %q", ln+1, l)
				}
			}
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			t.Fatalf("line %d: unparseable value %q", ln+1, value)
		}
		key := name + "{" + labels + "}"
		if _, dup := series[key]; dup {
			t.Fatalf("line %d: duplicate series %s", ln+1, key)
		}
		series[key] = v
	}
	// Histogram invariants per family+labelset.
	for fam, typ := range typed {
		if typ != "histogram" {
			continue
		}
		validateHistogramSeries(t, fam, series)
	}
	return series
}

// splitLabels splits a rendered label body on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
		case r == '\\':
			escaped = true
		case r == '"':
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteRune(r)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// validateHistogramSeries checks bucket monotonicity, +Inf presence and
// count agreement for one histogram family.
func validateHistogramSeries(t *testing.T, fam string, series map[string]float64) {
	t.Helper()
	type bucket struct {
		le  float64
		val float64
	}
	groups := map[string][]bucket{} // base labels (sans le) -> buckets
	infs := map[string]float64{}
	for key, v := range series {
		if !strings.HasPrefix(key, fam+"_bucket{") {
			continue
		}
		body := strings.TrimSuffix(strings.TrimPrefix(key, fam+"_bucket{"), "}")
		var le string
		var rest []string
		for _, l := range splitLabels(body) {
			if name, val, _ := strings.Cut(l, "="); name == "le" {
				le = strings.Trim(val, `"`)
			} else {
				rest = append(rest, l)
			}
		}
		base := strings.Join(rest, ",")
		if le == "+Inf" {
			infs[base] = v
			continue
		}
		f, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("%s: bad le %q", fam, le)
		}
		groups[base] = append(groups[base], bucket{f, v})
	}
	for base, bs := range groups {
		inf, ok := infs[base]
		if !ok {
			t.Fatalf("%s{%s}: missing +Inf bucket", fam, base)
		}
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := math.Inf(-1)
		var prev float64
		for _, b := range bs {
			if b.le <= last {
				t.Fatalf("%s{%s}: duplicate le=%g", fam, base, b.le)
			}
			if b.val < prev {
				t.Fatalf("%s{%s}: bucket counts not cumulative at le=%g", fam, base, b.le)
			}
			last, prev = b.le, b.val
		}
		if len(bs) > 0 && inf < bs[len(bs)-1].val {
			t.Fatalf("%s{%s}: +Inf %g below last bucket %g", fam, base, inf, bs[len(bs)-1].val)
		}
		count, ok := series[fam+"_count{"+base+"}"]
		if !ok {
			t.Fatalf("%s{%s}: missing _count", fam, base)
		}
		if count != inf {
			t.Fatalf("%s{%s}: _count %g != +Inf bucket %g", fam, base, count, inf)
		}
		if _, ok := series[fam+"_sum{"+base+"}"]; !ok {
			t.Fatalf("%s{%s}: missing _sum", fam, base)
		}
	}
}

func TestWritePrometheusValidFormat(t *testing.T) {
	r := NewRegistry()
	ep := r.Endpoint("findall")
	ep.ObserveRequest(200, 1500*time.Microsecond)
	ep.ObserveRequest(200, 90*time.Microsecond)
	ep.ObserveRequest(429, 10*time.Microsecond)
	ep.ObserveRequest(500, 5*time.Millisecond)
	r.Endpoint("contains").ObserveRequest(200, 40*time.Microsecond)
	r.Query.NodesChecked.Add(12345)
	r.Query.Occurrences.Add(678)
	r.Query.Truncated.Inc()
	r.Query.PatternLen.Observe(0) // boundary bucket
	r.Query.PatternLen.Observe(12)
	st := r.Stage("descend")
	st.Spans.Add(3)
	st.Nanos.Add(1_500_000)
	st.Nodes.Add(36)
	st.RibHops.Add(4)
	sh := r.Shard(2)
	sh.Queries.Add(5)
	sh.NodesChecked.Add(999)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series := validatePromText(t, buf.String())

	checks := map[string]float64{
		`spine_http_requests_total{endpoint="findall"}`:           4,
		`spine_http_errors_total{endpoint="findall",class="4xx"}`: 1,
		`spine_http_errors_total{endpoint="findall",class="5xx"}`: 1,
		`spine_http_rejected_total{endpoint="findall"}`:           1,
		`spine_query_nodes_checked_total{}`:                       12345,
		`spine_stage_nodes_checked_total{stage="descend"}`:        36,
		`spine_shard_queries_total{shard="2"}`:                    5,
		`spine_query_pattern_length_count{}`:                      2,
	}
	for key, want := range checks {
		got, ok := series[key]
		if !ok || got != want {
			t.Fatalf("series %s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
	if !strings.Contains(buf.String(), `le="+Inf"`) {
		t.Fatal("no +Inf bucket emitted")
	}
}

func TestPromLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("x_total", "counter", "help with \\ backslash\nand newline")
	p.Sample("x_total", []Label{{"ep", "a\"b\\c\nd"}}, 1)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `ep="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped: %q", out)
	}
	if !strings.Contains(out, `help with \\ backslash\nand newline`) {
		t.Fatalf("help not escaped: %q", out)
	}
	validatePromText(t, out)
}

func TestPromHistogramCumulative(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 2, 3, 7, 8, 1000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("h", "histogram", "")
	p.Histogram("h", nil, h.Snapshot(), 1)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	series := validatePromText(t, buf.String())
	if series[`h_bucket{le="+Inf"}`] != 8 || series["h_count{}"] != 8 {
		t.Fatalf("count mismatch: %+v", series)
	}
	if series["h_sum{}"] != 1022 {
		t.Fatalf("sum = %v, want 1022", series["h_sum{}"])
	}
	// le=0 holds the single zero observation; le=1 adds the two ones.
	if series[`h_bucket{le="0"}`] != 1 || series[`h_bucket{le="1"}`] != 3 {
		t.Fatalf("boundary buckets wrong: %+v", series)
	}
}

func TestPromWriterStickyError(t *testing.T) {
	p := NewPromWriter(failWriter{})
	p.Family("x", "counter", "h")
	p.Sample("x", nil, 1)
	if p.Err() == nil {
		t.Fatal("expected sticky write error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "write failed" }

func TestSnapshotRuntimeStats(t *testing.T) {
	r := NewRegistry()
	s := r.Snapshot()
	if s.Runtime.Goroutines < 1 {
		t.Fatalf("goroutines = %d, want >= 1", s.Runtime.Goroutines)
	}
	if s.Runtime.HeapAllocBytes == 0 || s.Runtime.HeapSysBytes == 0 {
		t.Fatalf("heap stats empty: %+v", s.Runtime)
	}
	if s.UptimeSeconds < 0 {
		t.Fatalf("uptime negative: %v", s.UptimeSeconds)
	}
}
