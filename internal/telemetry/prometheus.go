package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) rendered from a
// Snapshot. The log2 histograms become cumulative `le` bucket series;
// microsecond latencies are exported in seconds per Prometheus
// convention. spinebench -load reuses PromWriter so a bench run's
// output diffs cleanly against a live scrape.

// PromContentType is the Content-Type for the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromWriter incrementally renders metric families in the text
// exposition format. Errors are sticky: rendering continues no-op after
// the first write failure and Err reports it.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter returns a writer rendering to w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family emits the HELP/TYPE header for a metric family. Call it once
// per name, before the family's samples. typ is counter, gauge,
// histogram or untyped.
func (p *PromWriter) Family(name, typ, help string) {
	if help != "" {
		p.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

// Label is one name/value pair; sample label sets are ordered slices so
// output is deterministic.
type Label struct{ Name, Value string }

// Sample emits one sample line.
func (p *PromWriter) Sample(name string, labels []Label, value float64) {
	p.printf("%s%s %s\n", name, renderLabels(labels), formatValue(value))
}

// Histogram emits a HistogramSnapshot as cumulative le-bucket series
// plus _sum and _count, under the family name (declare the family with
// type "histogram" first). scale converts observed units to the
// exported unit — 1e-6 for microsecond observations exported as
// seconds, 1 for unitless values. Bucket upper bounds are the
// histogram's inclusive log2 bounds (2^i - 1), scaled.
func (p *PromWriter) Histogram(name string, labels []Label, h HistogramSnapshot, scale float64) {
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		le := formatValue(float64(b.LE) * scale)
		p.Sample(name+"_bucket", append(append([]Label(nil), labels...), Label{"le", le}), float64(cum))
	}
	// A snapshot taken while writers are mid-Observe can have bucket
	// totals a hair ahead of Count; clamp so the series stays cumulative.
	total := h.Count
	if cum > total {
		total = cum
	}
	p.Sample(name+"_bucket", append(append([]Label(nil), labels...), Label{"le", "+Inf"}), float64(total))
	p.Sample(name+"_sum", labels, float64(h.Sum)*scale)
	p.Sample(name+"_count", labels, float64(total))
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: \, " and
// newline.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string: \ and newline.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a float sample value compactly: integral values
// without an exponent or trailing zeros, others in shortest form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the full registry snapshot.
func WritePrometheus(w io.Writer, s Snapshot) error {
	p := NewPromWriter(w)

	p.Family("spine_build_info", "gauge", "Build identity of the running binary; always 1, the labels carry the information.")
	p.Sample("spine_build_info", []Label{
		{"version", s.Build.Version},
		{"go_version", s.Build.GoVersion},
		{"commit", s.Build.Commit},
	}, 1)
	if s.ScanKernel.Kernel != "" {
		p.Family("spine_scan_kernel", "gauge", "Active scan kernel and compiled word-load ISA; always 1, the labels carry the information.")
		p.Sample("spine_scan_kernel", []Label{
			{"kernel", s.ScanKernel.Kernel},
			{"isa", s.ScanKernel.ISA},
		}, 1)
	}
	if s.Disk.Enabled {
		p.Family("spine_disk_open_mode", "gauge", "How the serving index was opened (mmap, readerat, or heap); always 1, the label carries the information.")
		p.Sample("spine_disk_open_mode", []Label{{"mode", s.Disk.Mode}}, 1)
		p.Family("spine_disk_open_seconds", "gauge", "Cold-open wall time of the serving index file.")
		p.Sample("spine_disk_open_seconds", nil, s.Disk.OpenSeconds)
		p.Family("spine_disk_file_bytes", "gauge", "On-disk size of the serving index image.")
		p.Sample("spine_disk_file_bytes", nil, float64(s.Disk.FileBytes))
		p.Family("spine_disk_mapped_bytes", "gauge", "Bytes of the index image currently memory-mapped.")
		p.Sample("spine_disk_mapped_bytes", nil, float64(s.Disk.MappedBytes))
		p.Family("spine_disk_resident_bytes", "gauge", "Bytes of the index image resident in memory (mincore for mappings).")
		p.Sample("spine_disk_resident_bytes", nil, float64(s.Disk.ResidentBytes))
		p.Family("spine_disk_warmed_bytes", "gauge", "Bytes touched by the open-time Link Table warmup.")
		p.Sample("spine_disk_warmed_bytes", nil, float64(s.Disk.WarmedBytes))
		p.Family("spine_disk_readahead_issued_total", "counter", "Scan readahead windows issued to the storage layer; each is synchronous page faults avoided by streaming ahead of the scan.")
		p.Sample("spine_disk_readahead_issued_total", nil, float64(s.Disk.ReadaheadIssued))
		p.Family("spine_disk_readahead_hits_total", "counter", "Scan readahead windows already covered by the range cache (no prefetch needed).")
		p.Sample("spine_disk_readahead_hits_total", nil, float64(s.Disk.ReadaheadHits))
		p.Family("spine_disk_readahead_bytes_total", "counter", "Bytes covered by issued readahead windows.")
		p.Sample("spine_disk_readahead_bytes_total", nil, float64(s.Disk.ReadaheadBytes))
		p.Family("spine_disk_rangecache_evicted_total", "counter", "Readahead ranges evicted from the range cache to stay in budget.")
		p.Sample("spine_disk_rangecache_evicted_total", nil, float64(s.Disk.RangeCacheEvicted))
	}
	p.Family("spine_process_start_time_seconds", "gauge", "Process start time as seconds since the unix epoch.")
	p.Sample("spine_process_start_time_seconds", nil, s.StartTimeUnix)

	p.Family("spine_uptime_seconds", "gauge", "Seconds since the registry was created.")
	p.Sample("spine_uptime_seconds", nil, s.UptimeSeconds)

	p.Family("spine_goroutines", "gauge", "Current goroutine count.")
	p.Sample("spine_goroutines", nil, float64(s.Runtime.Goroutines))
	p.Family("spine_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
	p.Sample("spine_heap_alloc_bytes", nil, float64(s.Runtime.HeapAllocBytes))
	p.Family("spine_heap_sys_bytes", "gauge", "Heap memory obtained from the OS.")
	p.Sample("spine_heap_sys_bytes", nil, float64(s.Runtime.HeapSysBytes))
	p.Family("spine_heap_objects", "gauge", "Number of allocated heap objects.")
	p.Sample("spine_heap_objects", nil, float64(s.Runtime.HeapObjects))
	p.Family("spine_gc_cycles_total", "counter", "Completed GC cycles.")
	p.Sample("spine_gc_cycles_total", nil, float64(s.Runtime.GCCycles))
	p.Family("spine_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.")
	p.Sample("spine_gc_pause_seconds_total", nil, s.Runtime.GCPauseTotalSeconds)
	p.Family("spine_gc_last_pause_seconds", "gauge", "Duration of the most recent GC pause.")
	p.Sample("spine_gc_last_pause_seconds", nil, s.Runtime.LastGCPauseSeconds)
	p.Family("spine_gc_cpu_fraction", "gauge", "Fraction of CPU time used by the GC since process start.")
	p.Sample("spine_gc_cpu_fraction", nil, s.Runtime.GCCPUFraction)

	endpoints := sortedKeys(s.Endpoints)
	p.Family("spine_http_requests_total", "counter", "Completed HTTP requests by endpoint.")
	for _, name := range endpoints {
		p.Sample("spine_http_requests_total", []Label{{"endpoint", name}}, float64(s.Endpoints[name].Requests))
	}
	p.Family("spine_http_errors_total", "counter", "Completed HTTP requests with error status, by endpoint and class.")
	for _, name := range endpoints {
		e := s.Endpoints[name]
		p.Sample("spine_http_errors_total", []Label{{"endpoint", name}, {"class", "4xx"}}, float64(e.Errors4xx))
		p.Sample("spine_http_errors_total", []Label{{"endpoint", name}, {"class", "5xx"}}, float64(e.Errors5xx))
	}
	p.Family("spine_http_rejected_total", "counter", "Requests shed with 429 by the concurrency limiter.")
	for _, name := range endpoints {
		p.Sample("spine_http_rejected_total", []Label{{"endpoint", name}}, float64(s.Endpoints[name].Rejected))
	}
	p.Family("spine_http_in_flight", "gauge", "Currently executing requests by endpoint.")
	for _, name := range endpoints {
		p.Sample("spine_http_in_flight", []Label{{"endpoint", name}}, float64(s.Endpoints[name].InFlight))
	}
	p.Family("spine_http_request_duration_seconds", "histogram", "Request latency by endpoint (log2 buckets).")
	for _, name := range endpoints {
		p.Histogram("spine_http_request_duration_seconds", []Label{{"endpoint", name}}, s.Endpoints[name].LatencyUs, 1e-6)
	}

	p.Family("spine_query_nodes_checked_total", "counter", "Cumulative index nodes examined (the paper's section 4.1 work metric).")
	p.Sample("spine_query_nodes_checked_total", nil, float64(s.Query.NodesChecked))
	p.Family("spine_query_occurrences_total", "counter", "Cumulative occurrence positions reported to clients.")
	p.Sample("spine_query_occurrences_total", nil, float64(s.Query.Occurrences))
	p.Family("spine_query_truncated_total", "counter", "Responses cut short by a result limit.")
	p.Sample("spine_query_truncated_total", nil, float64(s.Query.Truncated))
	p.Family("spine_query_pattern_length", "histogram", "Distribution of query pattern lengths in characters.")
	p.Histogram("spine_query_pattern_length", nil, s.Query.PatternLen, 1)

	// Cache families are emitted unconditionally — zeros when no cache is
	// configured — so dashboards and alerts never see a missing series.
	p.Family("spine_cache_hits_total", "counter", "Result-cache hits (query answered with zero index work).")
	p.Sample("spine_cache_hits_total", nil, float64(s.Cache.Hits))
	p.Family("spine_cache_misses_total", "counter", "Result-cache misses (query fell through to the index).")
	p.Sample("spine_cache_misses_total", nil, float64(s.Cache.Misses))
	p.Family("spine_cache_entries", "gauge", "Live result-cache entries (may include stale entries pending lazy collection).")
	p.Sample("spine_cache_entries", nil, float64(s.Cache.Entries))
	p.Family("spine_cache_bytes", "gauge", "Estimated bytes charged against the result-cache budget.")
	p.Sample("spine_cache_bytes", nil, float64(s.Cache.Bytes))
	p.Family("spine_cache_evictions_total", "counter", "Result-cache entries evicted by the byte budget.")
	p.Sample("spine_cache_evictions_total", nil, float64(s.Cache.Evictions))
	p.Family("spine_cache_epoch", "gauge", "Result-cache invalidation epoch (bumps when the indexed text changes).")
	p.Sample("spine_cache_epoch", nil, float64(s.Cache.Epoch))
	p.Family("spine_negfilter_rejects_total", "counter", "Queries answered absent by the q-gram negative filter, with zero backbone work.")
	p.Sample("spine_negfilter_rejects_total", nil, float64(s.Cache.NegRejects))
	p.Family("spine_negfilter_falsepos_total", "counter", "Negative-filter passes the index then proved absent (each cost one ordinary scan).")
	p.Sample("spine_negfilter_falsepos_total", nil, float64(s.Cache.NegFalsePos))

	if hasCacheTraffic(s) {
		p.Family("spine_http_cache_hits_total", "counter", "Requests answered from the result cache or negative filter, by endpoint.")
		for _, name := range endpoints {
			p.Sample("spine_http_cache_hits_total", []Label{{"endpoint", name}}, float64(s.Endpoints[name].CacheHits))
		}
		p.Family("spine_http_cache_misses_total", "counter", "Requests that fell through to the index, by endpoint.")
		for _, name := range endpoints {
			p.Sample("spine_http_cache_misses_total", []Label{{"endpoint", name}}, float64(s.Endpoints[name].CacheMisses))
		}
	}

	p.Family("spine_batch_requests_total", "counter", "Batch query requests that reached the engine.")
	p.Sample("spine_batch_requests_total", nil, float64(s.Batch.Batches))
	p.Family("spine_batch_patterns_total", "counter", "Patterns submitted across all batch requests.")
	p.Sample("spine_batch_patterns_total", nil, float64(s.Batch.Patterns))
	p.Family("spine_batch_deduped_patterns_total", "counter", "Batch items answered by an identical in-batch twin.")
	p.Sample("spine_batch_deduped_patterns_total", nil, float64(s.Batch.Deduped))
	p.Family("spine_batch_rejected_items_total", "counter", "Batch items rejected individually (e.g. overlong patterns).")
	p.Sample("spine_batch_rejected_items_total", nil, float64(s.Batch.RejectedItems))
	p.Family("spine_batch_size", "histogram", "Distribution of patterns per batch request.")
	p.Histogram("spine_batch_size", nil, s.Batch.Size, 1)

	if len(s.Stages) > 0 {
		stages := sortedKeys(s.Stages)
		p.Family("spine_stage_spans_total", "counter", "Trace spans recorded per query stage.")
		for _, st := range stages {
			p.Sample("spine_stage_spans_total", []Label{{"stage", st}}, float64(s.Stages[st].Spans))
		}
		p.Family("spine_stage_duration_seconds_total", "counter", "Cumulative wall time per query stage.")
		for _, st := range stages {
			p.Sample("spine_stage_duration_seconds_total", []Label{{"stage", st}}, s.Stages[st].Seconds)
		}
		p.Family("spine_stage_nodes_checked_total", "counter", "Cumulative nodes checked per query stage.")
		for _, st := range stages {
			p.Sample("spine_stage_nodes_checked_total", []Label{{"stage", st}}, float64(s.Stages[st].Nodes))
		}
		p.Family("spine_stage_rib_hops_total", "counter", "Cumulative rib lookups per query stage.")
		for _, st := range stages {
			p.Sample("spine_stage_rib_hops_total", []Label{{"stage", st}}, float64(s.Stages[st].RibHops))
		}
		p.Family("spine_stage_extrib_hops_total", "counter", "Cumulative extrib-chain hops per query stage.")
		for _, st := range stages {
			p.Sample("spine_stage_extrib_hops_total", []Label{{"stage", st}}, float64(s.Stages[st].ExtribHops))
		}
		p.Family("spine_scan_blocks_skipped_total", "counter", "Backbone blocks rejected by the block-max skip index, per query stage.")
		for _, st := range stages {
			p.Sample("spine_scan_blocks_skipped_total", []Label{{"stage", st}}, float64(s.Stages[st].BlocksSkipped))
		}
		p.Family("spine_scan_blocks_scanned_total", "counter", "Backbone blocks scanned node by node during occurrence scans, per query stage.")
		for _, st := range stages {
			p.Sample("spine_scan_blocks_scanned_total", []Label{{"stage", st}}, float64(s.Stages[st].BlocksScanned))
		}
		p.Family("spine_scan_words_compared_total", "counter", "64-bit SWAR kernel comparisons (packed descent words, lane LEL tests, block-admission probes), per query stage.")
		for _, st := range stages {
			p.Sample("spine_scan_words_compared_total", []Label{{"stage", st}}, float64(s.Stages[st].WordsCompared))
		}
		p.Family("spine_stage_readahead_issued_total", "counter", "Disk readahead windows issued under scans, per query stage.")
		for _, st := range stages {
			p.Sample("spine_stage_readahead_issued_total", []Label{{"stage", st}}, float64(s.Stages[st].ReadaheadIssued))
		}
		p.Family("spine_stage_readahead_hits_total", "counter", "Disk readahead range-cache hits under scans, per query stage.")
		for _, st := range stages {
			p.Sample("spine_stage_readahead_hits_total", []Label{{"stage", st}}, float64(s.Stages[st].ReadaheadHits))
		}
		p.Family("spine_scan_workers_used_total", "counter", "Backbone partitions spawned by the intra-query parallel scan, per query stage.")
		for _, st := range stages {
			p.Sample("spine_scan_workers_used_total", []Label{{"stage", st}}, float64(s.Stages[st].WorkersUsed))
		}
		p.Family("spine_scan_chains_stitched_total", "counter", "Cross-partition chain roots resolved by the parallel scan's ordered stitch, per query stage.")
		for _, st := range stages {
			p.Sample("spine_scan_chains_stitched_total", []Label{{"stage", st}}, float64(s.Stages[st].ChainsStitched))
		}
	}

	if len(s.Shards) > 0 {
		shards := make([]int, 0, len(s.Shards))
		for i := range s.Shards {
			shards = append(shards, i)
		}
		sort.Ints(shards)
		p.Family("spine_shard_queries_total", "counter", "Fan-out query legs executed per shard.")
		for _, i := range shards {
			p.Sample("spine_shard_queries_total", []Label{{"shard", strconv.Itoa(i)}}, float64(s.Shards[i].Queries))
		}
		p.Family("spine_shard_duration_seconds_total", "counter", "Cumulative shard-leg wall time per shard.")
		for _, i := range shards {
			p.Sample("spine_shard_duration_seconds_total", []Label{{"shard", strconv.Itoa(i)}}, s.Shards[i].Seconds)
		}
		p.Family("spine_shard_nodes_checked_total", "counter", "Cumulative nodes checked per shard.")
		for _, i := range shards {
			p.Sample("spine_shard_nodes_checked_total", []Label{{"shard", strconv.Itoa(i)}}, float64(s.Shards[i].NodesChecked))
		}
	}

	return p.Err()
}

// WritePrometheus renders the registry's current state in Prometheus
// text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, r.Snapshot())
}

// hasCacheTraffic gates the per-endpoint cache families on a cache
// actually being wired (enabled, or counters somehow non-zero).
func hasCacheTraffic(s Snapshot) bool {
	return s.Cache.Enabled || s.Cache.Hits != 0 || s.Cache.Misses != 0
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
