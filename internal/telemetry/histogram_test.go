package telemetry

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the log2 bucketing at the edges:
// 0, 1, powers of two and 2^i - 1.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{(1 << 20) - 1, 20},
		{1 << 20, 21},
		{math.MaxInt64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Fatalf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
		if c.bucket < histBuckets-1 {
			if ub := upperBound(c.bucket); c.v > ub {
				t.Fatalf("value %d above its bucket's upper bound %d", c.v, ub)
			}
		}
	}
	// Each boundary value lands in a bucket whose snapshot LE covers it.
	var h Histogram
	for _, c := range cases[:len(cases)-1] {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	if s.Min != 0 || s.Max != (1<<20) {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min, s.Max, 1<<20)
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

// TestHistogramNegativeClamped verifies negatives clamp to the zero
// bucket rather than corrupting state.
func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Fatalf("negative observation mishandled: %+v", s)
	}
}

// TestHistogramMinMaxRace hammers the min/max CAS loops from many
// goroutines; run with -race. Interleaved ascending and descending
// writers force both loops to retry.
func TestHistogramMinMaxRace(t *testing.T) {
	var h Histogram
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if w%2 == 0 {
					h.Observe(int64(i))
				} else {
					h.Observe(int64(perWriter - 1 - i))
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := h.Snapshot()
			if s.Count > 0 && (s.Min < 0 || s.Max >= perWriter) {
				t.Errorf("mid-write snapshot out of range: min=%d max=%d", s.Min, s.Max)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	if s.Min != 0 || s.Max != perWriter-1 {
		t.Fatalf("min/max = %d/%d, want 0/%d", s.Min, s.Max, perWriter-1)
	}
}

// TestHistogramMerge verifies Merge folds counts, sums, buckets and
// min/max, including merging into a fresh histogram and from an empty
// one.
func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for _, v := range []int64{1, 5, 9} {
		a.Observe(v)
	}
	for _, v := range []int64{0, 100} {
		b.Observe(v)
	}
	a.Merge(&b)
	s := a.Snapshot()
	if s.Count != 5 || s.Sum != 115 {
		t.Fatalf("merged count/sum = %d/%d, want 5/115", s.Count, s.Sum)
	}
	if s.Min != 0 || s.Max != 100 {
		t.Fatalf("merged min/max = %d/%d, want 0/100", s.Min, s.Max)
	}

	var empty, into Histogram
	into.Merge(&empty) // no-op
	if into.Snapshot().Count != 0 {
		t.Fatal("merging empty changed state")
	}
	into.Merge(nil) // nil-safe
	into.Merge(&a)
	if got := into.Snapshot(); got.Count != 5 || got.Min != 0 || got.Max != 100 {
		t.Fatalf("merge into fresh = %+v", got)
	}
}

// TestHistogramMergeDuringWrites merges while the source is being
// written; totals must stay internally consistent (no lost updates in
// the destination, -race clean).
func TestHistogramMergeDuringWrites(t *testing.T) {
	var src Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				src.Observe(int64(i % 64))
			}
		}
	}()
	for i := 0; i < 100; i++ {
		var dst Histogram
		dst.Merge(&src)
		s := dst.Snapshot()
		var bucketTotal int64
		for _, b := range s.Buckets {
			bucketTotal += b.Count
		}
		// Writers interleave count and bucket updates; the merge may
		// straddle them by at most the number of in-flight Observes.
		if diff := bucketTotal - s.Count; diff < -2 || diff > 2 {
			t.Fatalf("merge drifted: buckets %d vs count %d", bucketTotal, s.Count)
		}
	}
	close(stop)
	wg.Wait()
}

// TestHistogramSnapshotDuringWrites takes snapshots under concurrent
// writes and checks internal consistency bounds.
func TestHistogramSnapshotDuringWrites(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const writers = 4
	const perWriter = 5000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	for i := 0; i < 500; i++ {
		s := h.Snapshot()
		if s.Count < 0 || s.Sum < 0 {
			t.Fatalf("negative totals mid-write: %+v", s)
		}
		if s.Count > 0 && s.Mean < 0 {
			t.Fatalf("negative mean mid-write: %+v", s)
		}
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("final count = %d, want %d", s.Count, writers*perWriter)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Fatalf("quantiles out of order: %+v", s)
	}
}
