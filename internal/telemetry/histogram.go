package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log-scaled histogram buckets. Bucket i
// holds values v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), so
// the bucket upper bounds are 1, 2, 4, 8, ... — 2^47 µs is ~4.5 years,
// far beyond any observable latency.
const histBuckets = 48

// Histogram is a lock-free log2-bucketed histogram of non-negative
// int64 observations. The unit is caller-defined: request latencies are
// recorded in microseconds (ObserveDuration), pattern lengths in
// characters (Observe). The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // stored as value+1 so 0 means "unset"
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= v+1 {
			break
		}
		if h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= v+1 {
			break
		}
		if h.max.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// ObserveDuration records a latency in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Merge folds other's observations into h (other is read atomically but
// not locked: concurrent writers to other may straddle the merge, the
// usual eventually-consistent monitoring contract). Useful for
// combining per-worker or per-shard histograms into one series.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if n := other.count.Load(); n != 0 {
		h.count.Add(n)
	}
	if s := other.sum.Load(); s != 0 {
		h.sum.Add(s)
	}
	for i := range other.buckets {
		if c := other.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
	if mn := other.min.Load(); mn != 0 {
		for {
			cur := h.min.Load()
			if cur != 0 && cur <= mn {
				break
			}
			if h.min.CompareAndSwap(cur, mn) {
				break
			}
		}
	}
	if mx := other.max.Load(); mx != 0 {
		for {
			cur := h.max.Load()
			if cur >= mx {
				break
			}
			if h.max.CompareAndSwap(cur, mx) {
				break
			}
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

func bucketOf(v int64) int {
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// HistogramBucket is one non-empty histogram bucket in a snapshot.
type HistogramBucket struct {
	// LE is the bucket's inclusive upper bound (2^i - 1); values in the
	// bucket lie in (LE+1)/2 .. LE.
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Mean    float64           `json:"mean"`
	P50     int64             `json:"p50"`
	P90     int64             `json:"p90"`
	P99     int64             `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. Concurrent Observe
// calls may straddle the copy; totals are eventually consistent, which
// is fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if mn := h.min.Load(); mn > 0 {
		s.Min = mn - 1
	}
	if mx := h.max.Load(); mx > 0 {
		s.Max = mx - 1
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	counts := make([]int64, histBuckets)
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s.P50 = quantile(counts, total, 0.50)
	s.P90 = quantile(counts, total, 0.90)
	s.P99 = quantile(counts, total, 0.99)
	for i, c := range counts {
		if c > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{LE: upperBound(i), Count: c})
		}
	}
	return s
}

// upperBound returns the largest value stored in bucket i.
func upperBound(i int) int64 {
	if i == 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// quantile returns the upper bound of the bucket containing the q-th
// quantile observation — a log-scaled estimate, exact to within 2x.
func quantile(counts []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= rank {
			return upperBound(i)
		}
	}
	return upperBound(len(counts) - 1)
}
