package qgram

// The negative filter is the admission half of the serving layer's
// caching stack: a bloom filter over the text's q-grams that answers
// "definitely absent" in O(|P|) with zero backbone work. It rests on
// the exact-match q-gram lemma with k=0 errors: every occurrence of P
// contains all len(P)-q+1 of P's q-grams, so if even one of P's q-grams
// never occurs in the text, P cannot occur. The bloom can err only
// toward "maybe present" (a false positive costs one ordinary descent);
// a "definitely absent" verdict is exact.
//
// Unlike the block-filter Index above, the negative filter hashes raw
// bytes — it needs no alphabet and works over arbitrary texts — and
// stores no postings, just m = n*bitsPerGram bits.

import "fmt"

// NegFilter is a bloom filter over a text's q-grams.
type NegFilter struct {
	q    int
	bits []uint64
	m    uint64 // bit count
	k    int    // hash probes per gram
}

// DefaultNegFilterBits is the default bits-per-gram budget. At 10
// bits/gram with k = 7 probes the per-gram false-positive rate is under
// 1%, and a pattern only passes when every one of its grams passes.
const DefaultNegFilterBits = 10

// BuildNegFilter indexes every q-gram of text into a bloom filter of
// about bitsPerGram*len(text) bits. q must be at least 1; bitsPerGram
// <= 0 picks DefaultNegFilterBits.
func BuildNegFilter(text []byte, q, bitsPerGram int) (*NegFilter, error) {
	if q < 1 {
		return nil, fmt.Errorf("qgram: negative filter q=%d out of range", q)
	}
	if bitsPerGram <= 0 {
		bitsPerGram = DefaultNegFilterBits
	}
	grams := len(text) - q + 1
	if grams < 1 {
		grams = 1
	}
	m := uint64(grams) * uint64(bitsPerGram)
	if m < 64 {
		m = 64
	}
	// k = bitsPerGram * ln 2 minimizes the false-positive rate for the
	// budget; clamp to a sane probe count.
	k := int(float64(bitsPerGram)*0.6931 + 0.5)
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	f := &NegFilter{q: q, bits: make([]uint64, (m+63)/64), m: m, k: k}
	for i := 0; i+q <= len(text); i++ {
		f.add(text[i : i+q])
	}
	return f, nil
}

// Q returns the filter's gram length. Patterns shorter than Q carry no
// complete gram and always pass the filter.
func (f *NegFilter) Q() int { return f.q }

// SizeBytes returns the bit array's footprint.
func (f *NegFilter) SizeBytes() int64 { return int64(len(f.bits)) * 8 }

// hash2 returns two independent 64-bit hashes of gram (FNV-1a with two
// bases); the k probe positions derive from them by double hashing
// (Kirsch–Mitzenmacher).
func hash2(gram []byte) (uint64, uint64) {
	const prime64 = 1099511628211
	h1 := uint64(14695981039346656037)
	h2 := uint64(1469598103934665603)
	for _, b := range gram {
		h1 = (h1 ^ uint64(b)) * prime64
		h2 = (h2 ^ uint64(b)) * prime64
	}
	// Finalize h2 so the two streams decorrelate.
	h2 ^= h2 >> 33
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	if h2 == 0 {
		h2 = prime64
	}
	return h1, h2
}

func (f *NegFilter) add(gram []byte) {
	h1, h2 := hash2(gram)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
}

func (f *NegFilter) has(gram []byte) bool {
	h1, h2 := hash2(gram)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// MayContain reports whether p could occur in the indexed text. A false
// return is definitive: some q-gram of p never occurs, so p cannot.
// Patterns shorter than q (including empty ones) always pass — they
// carry no complete gram to test.
func (f *NegFilter) MayContain(p []byte) bool {
	if len(p) < f.q {
		return true
	}
	for i := 0; i+f.q <= len(p); i++ {
		if !f.has(p[i : i+f.q]) {
			return false
		}
	}
	return true
}
