// Package qgram implements a two-level filter index in the spirit of the
// MRS-index the paper discusses in related work (§7, Kahveci & Singh,
// VLDB 2001): a small first-level structure filters the data string down
// to candidate regions, and a verification pass over just those regions
// produces exact answers. Level one here is an inverted index from q-grams
// to fixed-size text blocks, with q-gram-lemma thresholds.
//
// The trade-off this package exists to measure (experiment E13): the
// filter index is several times smaller than any complete index, but
// every query pays a verification scan whose cost grows with the
// candidate-region volume — exactly the "performance improvement through
// complete indexes is typically substantially more, albeit at the cost of
// increased resource consumption" contrast drawn in §7.
package qgram

import (
	"fmt"
	"sort"

	"github.com/spine-index/spine/internal/seq"
)

// Index is a q-gram block filter over a text.
type Index struct {
	text      []byte
	alpha     *seq.Alphabet
	q         int
	blockSize int
	// postings maps a q-gram code to the sorted list of blocks in which it
	// occurs (deduplicated).
	postings map[uint64][]int32
	blocks   int32

	// Stats
	candidatesChecked int64 // block-windows verified across all queries
}

// Build indexes text with the given q-gram length and block size. All text
// bytes must be in the alphabet; q must satisfy alpha.Bits()*q <= 64.
func Build(text []byte, alpha *seq.Alphabet, q, blockSize int) (*Index, error) {
	if q < 1 || int(alpha.Bits())*q > 64 {
		return nil, fmt.Errorf("qgram: q=%d out of range for alphabet with %d-bit codes", q, alpha.Bits())
	}
	if blockSize < q {
		return nil, fmt.Errorf("qgram: block size %d smaller than q=%d", blockSize, q)
	}
	if !alpha.Contains(text) {
		return nil, fmt.Errorf("qgram: text contains bytes outside the alphabet")
	}
	idx := &Index{
		text:      append([]byte(nil), text...),
		alpha:     alpha,
		q:         q,
		blockSize: blockSize,
		postings:  make(map[uint64][]int32),
		blocks:    int32((len(text) + blockSize - 1) / blockSize),
	}
	for i := 0; i+q <= len(text); i++ {
		code, ok := idx.code(text[i : i+q])
		if !ok {
			return nil, fmt.Errorf("qgram: unreachable: unindexable gram at %d", i)
		}
		b := int32(i / blockSize)
		lst := idx.postings[code]
		if len(lst) == 0 || lst[len(lst)-1] != b {
			idx.postings[code] = append(lst, b)
		}
		// A gram spanning into the next block belongs to both.
		if nb := int32((i + q - 1) / blockSize); nb != b {
			lst := idx.postings[code]
			if lst[len(lst)-1] != nb {
				idx.postings[code] = append(lst, nb)
			}
		}
	}
	return idx, nil
}

func (idx *Index) code(gram []byte) (uint64, bool) {
	var c uint64
	for _, b := range gram {
		v := idx.alpha.Code(b)
		if v < 0 {
			return 0, false
		}
		c = c<<idx.alpha.Bits() | uint64(v)
	}
	return c, true
}

// Len returns the indexed text length.
func (idx *Index) Len() int { return len(idx.text) }

// SizeBytes approximates the filter's footprint: postings plus the
// retained text (verification needs it).
func (idx *Index) SizeBytes() int64 {
	b := int64(len(idx.text))
	for _, lst := range idx.postings {
		b += 16 + int64(len(lst))*4
	}
	return b
}

// CandidatesChecked reports the cumulative number of candidate blocks
// verified — the filter-quality metric.
func (idx *Index) CandidatesChecked() int64 { return idx.candidatesChecked }

// candidateBlocks returns the sorted blocks that could contain a window
// matching p with at most k substitutions, by the q-gram lemma: such a
// window shares at least len(p)-q+1-k*q of p's q-grams. When that bound is
// non-positive the lemma gives no filtering power and every block is a
// candidate (the filter degrades to a verified full scan, as filter
// indexes do for short or high-error patterns).
func (idx *Index) candidateBlocks(p []byte, k int) []int32 {
	grams := len(p) - idx.q + 1
	threshold := grams - k*idx.q
	if grams <= 0 || threshold < 1 {
		all := make([]int32, idx.blocks)
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	counts := make(map[int32]int)
	for i := 0; i+idx.q <= len(p); i++ {
		code, ok := idx.code(p[i : i+idx.q])
		if !ok {
			continue // foreign letters contribute no grams
		}
		for _, b := range idx.postings[code] {
			counts[b]++
		}
	}
	// An occurrence starting in block b can have all its gram support in b
	// or in b+1 (windows straddle boundaries), so accept b whenever b and
	// b+1 together reach the threshold — including blocks whose own count
	// is zero but whose right neighbour carries the support.
	accept := make(map[int32]bool)
	for b, c := range counts {
		if c+counts[b+1] >= threshold {
			accept[b] = true
		}
		if b > 0 && counts[b-1]+c >= threshold {
			accept[b-1] = true
		}
	}
	out := make([]int32, 0, len(accept))
	for b := range accept {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FindAll returns every exact occurrence start of p, in increasing order:
// filter to candidate blocks, then verify by direct comparison.
func (idx *Index) FindAll(p []byte) []int {
	if len(p) == 0 {
		out := make([]int, len(idx.text)+1)
		for i := range out {
			out[i] = i
		}
		return out
	}
	var out []int
	for _, b := range idx.candidateBlocks(p, 0) {
		idx.candidatesChecked++
		lo := int(b) * idx.blockSize
		hi := lo + idx.blockSize + len(p) - 1
		if hi > len(idx.text) {
			hi = len(idx.text)
		}
		for i := lo; i+len(p) <= hi; i++ {
			if string(idx.text[i:i+len(p)]) == string(p) {
				out = append(out, i)
			}
		}
	}
	return dedupSorted(out)
}

// FindAllWithin returns every start whose length-len(p) window is within k
// substitutions of p, increasing.
func (idx *Index) FindAllWithin(p []byte, k int) []int {
	if len(p) == 0 {
		return idx.FindAll(p)
	}
	var out []int
	for _, b := range idx.candidateBlocks(p, k) {
		idx.candidatesChecked++
		lo := int(b) * idx.blockSize
		hi := lo + idx.blockSize + len(p) - 1
		if hi > len(idx.text) {
			hi = len(idx.text)
		}
		for i := lo; i+len(p) <= hi; i++ {
			d := 0
			for j := 0; j < len(p) && d <= k; j++ {
				if idx.text[i+j] != p[j] {
					d++
				}
			}
			if d <= k {
				out = append(out, i)
			}
		}
	}
	return dedupSorted(out)
}

// Contains reports whether p occurs exactly.
func (idx *Index) Contains(p []byte) bool { return len(idx.FindAll(p)) > 0 || len(p) == 0 }

func dedupSorted(v []int) []int {
	if len(v) == 0 {
		return nil
	}
	sort.Ints(v)
	out := v[:1]
	for _, x := range v[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
