package qgram

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestNegFilterNoFalseNegatives: every substring of the text must pass
// the filter — a bloom can only err toward "maybe present".
func TestNegFilterNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	text := make([]byte, 4096)
	for i := range text {
		text[i] = "acgt"[rng.Intn(4)]
	}
	for _, q := range []int{3, 8, 12} {
		f, err := BuildNegFilter(text, q, DefaultNegFilterBits)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 500; trial++ {
			plen := 1 + rng.Intn(32)
			off := rng.Intn(len(text) - plen)
			if !f.MayContain(text[off : off+plen]) {
				t.Fatalf("q=%d: substring %q rejected (false negative)", q, text[off:off+plen])
			}
		}
	}
}

// TestNegFilterRejectsAbsent: patterns over an alphabet disjoint from
// the text must be rejected (their grams were never inserted), and the
// false-positive rate on random same-alphabet absent patterns must stay
// far below 1 at the default budget.
func TestNegFilterRejectsAbsent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	text := make([]byte, 1<<15)
	for i := range text {
		text[i] = "acgt"[rng.Intn(4)]
	}
	const q = 12
	f, err := BuildNegFilter(text, q, DefaultNegFilterBits)
	if err != nil {
		t.Fatal(err)
	}
	if f.MayContain([]byte("zzzzzzzzzzzzzzzz")) {
		t.Fatal("foreign-alphabet pattern passed the filter")
	}
	rejected, trials := 0, 200
	p := make([]byte, 24)
	for trial := 0; trial < trials; trial++ {
		for i := range p {
			p[i] = "acgt"[rng.Intn(4)]
		}
		if bytes.Contains(text, p) {
			continue // rare; skip genuinely present patterns
		}
		if !f.MayContain(p) {
			rejected++
		}
	}
	// A 24-char pattern tests 13 grams; even at a 1% per-gram FP rate
	// essentially every absent pattern is rejected. Require 90%.
	if rejected < trials*9/10 {
		t.Fatalf("only %d/%d absent patterns rejected", rejected, trials)
	}
}

// TestNegFilterShortPatterns: patterns shorter than q always pass, as
// does the empty pattern.
func TestNegFilterShortPatterns(t *testing.T) {
	f, err := BuildNegFilter([]byte("acgtacgt"), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][]byte{nil, []byte("z"), []byte("zzz")} {
		if !f.MayContain(p) {
			t.Fatalf("short pattern %q rejected", p)
		}
	}
	if f.Q() != 4 {
		t.Fatalf("Q = %d", f.Q())
	}
}

// TestNegFilterTinyText: a text shorter than q builds an empty (always
// rejecting complete grams, always passing short patterns) filter
// without error.
func TestNegFilterTinyText(t *testing.T) {
	f, err := BuildNegFilter([]byte("ac"), 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !f.MayContain([]byte("ac")) {
		t.Fatal("sub-q pattern rejected on tiny text")
	}
	if f.MayContain([]byte("acgtacgtacgt")) {
		t.Fatal("full gram passed against a text with no grams")
	}
	if _, err := BuildNegFilter([]byte("acgt"), 0, 8); err == nil {
		t.Fatal("q=0 accepted")
	}
}
