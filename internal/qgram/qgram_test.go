package qgram

import (
	"math/rand"
	"testing"

	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/trie"
)

func build(t *testing.T, text string, q, block int) *Index {
	t.Helper()
	idx, err := Build([]byte(text), seq.DNA, q, block)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return idx
}

func TestFindAllMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(400)
		text := make([]byte, n)
		for i := range text {
			text[i] = "acgt"[rng.Intn(4)]
		}
		idx, err := Build(text, seq.DNA, 4, 32)
		if err != nil {
			t.Fatal(err)
		}
		o := trie.NewOracle(text)
		for qn := 0; qn < 40; qn++ {
			m := 1 + rng.Intn(12)
			p := make([]byte, m)
			for i := range p {
				p[i] = "acgt"[rng.Intn(4)]
			}
			got := idx.FindAll(p)
			want := o.Occurrences(p)
			if len(got) != len(want) {
				t.Fatalf("text len %d: FindAll(%q) = %v, want %v", n, p, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("FindAll(%q) = %v, want %v", p, got, want)
				}
			}
		}
	}
}

func TestFindAllWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	for trial := 0; trial < 20; trial++ {
		n := 60 + rng.Intn(300)
		text := make([]byte, n)
		for i := range text {
			text[i] = "acgt"[rng.Intn(4)]
		}
		idx, err := Build(text, seq.DNA, 3, 24)
		if err != nil {
			t.Fatal(err)
		}
		for qn := 0; qn < 15; qn++ {
			m := 5 + rng.Intn(10)
			p := make([]byte, m)
			for i := range p {
				p[i] = "acgt"[rng.Intn(4)]
			}
			k := rng.Intn(3)
			got := idx.FindAllWithin(p, k)
			var want []int
			for i := 0; i+m <= n; i++ {
				d := 0
				for j := 0; j < m; j++ {
					if text[i+j] != p[j] {
						d++
					}
				}
				if d <= k {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("p=%q k=%d: got %v, want %v", p, k, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("p=%q k=%d: got %v, want %v", p, k, got, want)
				}
			}
		}
	}
}

func TestPatternShorterThanQ(t *testing.T) {
	idx := build(t, "acgtacgtacgt", 4, 8)
	got := idx.FindAll([]byte("cg"))
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("FindAll(cg) = %v", got)
	}
}

func TestCrossBlockOccurrences(t *testing.T) {
	// Pattern straddling a block boundary must still be found.
	text := "aaaaaaaagattacagaaaaaaaa" // block size 8: "gattaca" spans blocks 1-2
	idx := build(t, text, 3, 8)
	got := idx.FindAll([]byte("gattacag"))
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("FindAll(gattacag) = %v, want [8]", got)
	}
}

func TestFilterActuallyFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	text := make([]byte, 20000)
	for i := range text {
		text[i] = "acgt"[rng.Intn(4)]
	}
	idx, err := Build(text, seq.DNA, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	// A pattern sampled from the text: candidates must be a small fraction
	// of all blocks.
	p := text[5000:5020]
	before := idx.CandidatesChecked()
	if got := idx.FindAll(p); len(got) == 0 {
		t.Fatal("planted pattern not found")
	}
	checked := idx.CandidatesChecked() - before
	totalBlocks := int64((len(text) + 63) / 64)
	if checked*10 > totalBlocks {
		t.Fatalf("filter too weak: verified %d of %d blocks", checked, totalBlocks)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]byte("acgt"), seq.DNA, 0, 8); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := Build([]byte("acgt"), seq.DNA, 40, 80); err == nil {
		t.Error("q too large for 64-bit codes accepted")
	}
	if _, err := Build([]byte("acgt"), seq.DNA, 4, 2); err == nil {
		t.Error("block smaller than q accepted")
	}
	if _, err := Build([]byte("acgn"), seq.DNA, 2, 8); err == nil {
		t.Error("foreign text byte accepted")
	}
}

func TestEmptyPattern(t *testing.T) {
	idx := build(t, "acgt", 2, 4)
	if got := idx.FindAll(nil); len(got) != 5 {
		t.Fatalf("FindAll(empty) = %v", got)
	}
	if !idx.Contains(nil) {
		t.Fatal("empty pattern not contained")
	}
}

func TestSizeBytesSmallerThanComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(214))
	text := make([]byte, 50000)
	for i := range text {
		text[i] = "acgt"[rng.Intn(4)]
	}
	// q tuned to the text size (4^6 = 4096 codes over 50k grams) so
	// posting lists amortize the map overhead.
	idx, err := Build(text, seq.DNA, 6, 64)
	if err != nil {
		t.Fatal(err)
	}
	// The filter (postings + text) should undercut even a suffix array
	// (~5 B/char); generous bound to avoid flakiness.
	if bpc := float64(idx.SizeBytes()) / float64(len(text)); bpc > 8 {
		t.Fatalf("filter uses %.1f B/char; expected a small footprint", bpc)
	}
}
