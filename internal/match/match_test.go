package match

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/diskindex"
	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/suffixtree"
)

// bruteReport computes the operation's specification directly: for every
// query end e whose matching statistic is right-maximal and >= minLen,
// report the matched string's left-maximal data occurrences.
func bruteReport(data, query []byte, minLen int) []Match {
	n := len(query)
	ms := make([]int, n+1)
	for e := 1; e <= n; e++ {
		for l := e; l >= 1; l-- {
			if bruteContains(data, query[e-l:e]) {
				ms[e] = l
				break
			}
		}
	}
	var out []Match
	for e := 1; e <= n; e++ {
		if ms[e] < minLen {
			continue
		}
		if e < n && ms[e+1] > ms[e] {
			continue // extended; not right-maximal
		}
		w := query[e-ms[e] : e]
		m := Match{QueryStart: e - ms[e], Len: ms[e]}
		for i := 0; i+len(w) <= len(data); i++ {
			if string(data[i:i+len(w)]) == string(w) && leftMaximal(data, query, i, m.QueryStart) {
				m.DataStarts = append(m.DataStarts, i)
			}
		}
		if len(m.DataStarts) > 0 {
			out = append(out, m)
		}
	}
	return out
}

func bruteContains(text, p []byte) bool {
	for i := 0; i+len(p) <= len(text); i++ {
		if string(text[i:i+len(p)]) == string(p) {
			return true
		}
	}
	return false
}

// allEngines builds every engine variant over data.
func allEngines(t *testing.T, data []byte) map[string]Engine {
	t.Helper()
	idx := core.Build(data)
	compact, err := core.Freeze(idx, seq.DNA)
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	st, err := suffixtree.Build(data, 0)
	if err != nil {
		t.Fatalf("suffix tree Build: %v", err)
	}
	ds, err := diskindex.CreateSpine(t.TempDir(), diskindex.Options{PageSize: 512, BufferPages: 8})
	if err != nil {
		t.Fatalf("CreateSpine: %v", err)
	}
	t.Cleanup(func() { ds.Close() })
	if err := ds.AppendAll(data); err != nil {
		t.Fatalf("disk AppendAll: %v", err)
	}
	dt, err := diskindex.CreateTree(t.TempDir(), 0, diskindex.Options{PageSize: 512, BufferPages: 8})
	if err != nil {
		t.Fatalf("CreateTree: %v", err)
	}
	t.Cleanup(func() { dt.Close() })
	if err := dt.AppendAll(data); err != nil {
		t.Fatalf("disk tree AppendAll: %v", err)
	}
	if err := dt.Finish(); err != nil {
		t.Fatalf("disk tree Finish: %v", err)
	}
	return map[string]Engine{
		"spine":      NewSpineEngine(idx),
		"compact":    NewCompactSpineEngine(compact),
		"tree":       NewTreeEngine(st),
		"disk-spine": NewDiskSpineEngine(ds),
		"disk-tree":  NewDiskTreeEngine(dt),
	}
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].QueryStart != b[i].QueryStart || a[i].Len != b[i].Len ||
			!reflect.DeepEqual(a[i].DataStarts, b[i].DataStarts) {
			return false
		}
	}
	return true
}

func TestAllEnginesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		data := randomRepetitive(rng, 60+rng.Intn(120))
		var query []byte
		if trial%2 == 0 {
			query = randomRepetitive(rng, 60)
		} else {
			query = append([]byte{}, data[rng.Intn(len(data)/2):]...)
			for i := range query {
				if rng.Float64() < 0.08 {
					query[i] = "acgt"[rng.Intn(4)]
				}
			}
		}
		minLen := 1 + rng.Intn(5)
		want := bruteReport(data, query, minLen)
		for name, e := range allEngines(t, data) {
			rep, err := MaximalMatches(e, data, query, minLen)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !matchesEqual(rep.Matches, want) {
				t.Fatalf("%s: data=%q query=%q minLen=%d:\n got %+v\nwant %+v",
					name, data, query, minLen, rep.Matches, want)
			}
		}
	}
}

// TestPaperMatchingExample runs the §4 example: S1 and S2 with threshold
// 6. The long shared substrings ("attacgaga", "gacgag"-family, etc.) must
// be found at the right coordinates on every engine.
func TestPaperMatchingExample(t *testing.T) {
	s1 := []byte("acaccgacgatacgagattacgagacgagaatacaacag")
	s2 := []byte("catagagagacgattacgagaaaacgggaaagacgatcc")
	want := bruteReport(s1, s2, 6)
	if len(want) == 0 {
		t.Fatal("the paper example must contain matches of length >= 6")
	}
	// The flagship match: "attacgaga" (length >= 9) appears in both.
	foundLong := false
	for _, m := range want {
		if m.Len >= 9 {
			foundLong = true
		}
	}
	if !foundLong {
		t.Fatalf("expected a long (>=9) shared substring in the paper example; got %+v", want)
	}
	for name, e := range allEngines(t, s1) {
		rep, err := MaximalMatches(e, s1, s2, 6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !matchesEqual(rep.Matches, want) {
			t.Fatalf("%s: got %+v want %+v", name, rep.Matches, want)
		}
		if rep.Pairs == 0 || rep.Elapsed < 0 {
			t.Fatalf("%s: implausible report: %+v", name, rep)
		}
	}
}

// TestSpineChecksFewerNodesThanTree verifies the §4.1 claim behind Table 6:
// on repetitive data, SPINE's set-basis link chain examines fewer nodes
// than the suffix tree's per-suffix walk.
func TestSpineChecksFewerNodesThanTree(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	data := randomRepetitive(rng, 4000)
	query := randomRepetitive(rng, 2000)
	idx := core.Build(data)
	st, err := suffixtree.Build(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	se := NewSpineEngine(idx)
	te := NewTreeEngine(st)
	if _, err := MaximalMatches(se, data, query, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := MaximalMatches(te, data, query, 20); err != nil {
		t.Fatal(err)
	}
	if se.Checked() >= te.Checked() {
		t.Fatalf("SPINE checked %d nodes >= suffix tree's %d; set-basis advantage missing",
			se.Checked(), te.Checked())
	}
}

func TestThresholdFilters(t *testing.T) {
	data := []byte("acgtacgtaacc")
	query := []byte("ttacgtaa")
	e := NewSpineEngine(core.Build(data))
	rep, err := MaximalMatches(e, data, query, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.Matches {
		if m.Len < 6 {
			t.Fatalf("match below threshold reported: %+v", m)
		}
	}
	// With an impossible threshold nothing is reported.
	e2 := NewSpineEngine(core.Build(data))
	rep, err = MaximalMatches(e2, data, query, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Matches) != 0 {
		t.Fatalf("matches above impossible threshold: %+v", rep.Matches)
	}
}

func TestDisjointStringsNoMatches(t *testing.T) {
	data := []byte("aaaaaaaa")
	query := []byte("cccccccc")
	for name, e := range allEngines(t, data) {
		rep, err := MaximalMatches(e, data, query, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Matches) != 0 {
			t.Fatalf("%s: unexpected matches %+v", name, rep.Matches)
		}
	}
}

func TestEmptyQuery(t *testing.T) {
	data := []byte("acgt")
	e := NewSpineEngine(core.Build(data))
	rep, err := MaximalMatches(e, data, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Matches) != 0 {
		t.Fatalf("matches on empty query: %+v", rep.Matches)
	}
}

func randomRepetitive(rng *rand.Rand, n int) []byte {
	s := make([]byte, 0, n)
	for len(s) < n {
		if len(s) > 10 && rng.Float64() < 0.5 {
			l := 1 + rng.Intn(10)
			if l > len(s) {
				l = len(s)
			}
			start := rng.Intn(len(s) - l + 1)
			s = append(s, s[start:start+l]...)
		} else {
			s = append(s, "acgt"[rng.Intn(4)])
		}
	}
	return s[:n]
}
