package match

import (
	"context"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/diskindex"
	"github.com/spine-index/spine/internal/suffixtree"
)

// spinePos snapshots a SPINE cursor position.
type spinePos struct{ node, l int32 }

// SpineEngine adapts the in-memory SPINE index.
type SpineEngine struct {
	idx *core.Index
	cur *core.Cursor
}

// NewSpineEngine returns a matching engine over idx.
func NewSpineEngine(idx *core.Index) *SpineEngine {
	return &SpineEngine{idx: idx, cur: core.NewCursor(idx)}
}

func (e *SpineEngine) Advance(c byte) error { e.cur.Advance(c); return nil }
func (e *SpineEngine) Len() int             { return int(e.cur.Len) }
func (e *SpineEngine) Mark() Pos            { return spinePos{e.cur.Node, e.cur.Len} }
func (e *SpineEngine) Checked() int64       { return e.cur.Checked }
func (e *SpineEngine) Reset()               { e.cur.Reset() }

func (e *SpineEngine) EndsAt(p Pos) ([]int32, error) {
	sp := p.(spinePos)
	if sp.l == 0 {
		return nil, nil
	}
	out := e.idx.ScanMany([]int32{sp.node}, []int32{sp.l})
	return out[0], nil
}

// EndsAtBatch resolves every snapshot in one backbone scan (§4's deferred
// concurrent enumeration).
func (e *SpineEngine) EndsAtBatch(ps []Pos) ([][]int32, error) {
	firsts := make([]int32, len(ps))
	lens := make([]int32, len(ps))
	for i, p := range ps {
		sp := p.(spinePos)
		firsts[i], lens[i] = sp.node, sp.l
	}
	return e.idx.ScanMany(firsts, lens), nil
}

// EndsAtBatchCtx is EndsAtBatch with cancellation checkpoints in the
// backbone scan.
func (e *SpineEngine) EndsAtBatchCtx(ctx context.Context, ps []Pos) ([][]int32, error) {
	firsts := make([]int32, len(ps))
	lens := make([]int32, len(ps))
	for i, p := range ps {
		sp := p.(spinePos)
		firsts[i], lens[i] = sp.node, sp.l
	}
	return e.idx.ScanManyCtx(ctx, firsts, lens)
}

// CompactSpineEngine adapts the compact-layout SPINE index.
type CompactSpineEngine struct {
	idx *core.CompactIndex
	cur *core.CompactCursor
}

// NewCompactSpineEngine returns a matching engine over c.
func NewCompactSpineEngine(c *core.CompactIndex) *CompactSpineEngine {
	return &CompactSpineEngine{idx: c, cur: core.NewCompactCursor(c)}
}

func (e *CompactSpineEngine) Advance(c byte) error { e.cur.Advance(c); return nil }
func (e *CompactSpineEngine) Len() int             { return int(e.cur.Len) }
func (e *CompactSpineEngine) Mark() Pos            { return spinePos{e.cur.Node, e.cur.Len} }
func (e *CompactSpineEngine) Checked() int64       { return e.cur.Checked }
func (e *CompactSpineEngine) Reset()               { e.cur.Reset() }

func (e *CompactSpineEngine) EndsAt(p Pos) ([]int32, error) {
	sp := p.(spinePos)
	if sp.l == 0 {
		return nil, nil
	}
	out := e.idx.ScanMany([]int32{sp.node}, []int32{sp.l})
	return out[0], nil
}

// EndsAtBatch resolves every snapshot in one backbone scan.
func (e *CompactSpineEngine) EndsAtBatch(ps []Pos) ([][]int32, error) {
	firsts := make([]int32, len(ps))
	lens := make([]int32, len(ps))
	for i, p := range ps {
		sp := p.(spinePos)
		firsts[i], lens[i] = sp.node, sp.l
	}
	return e.idx.ScanMany(firsts, lens), nil
}

// EndsAtBatchCtx is EndsAtBatch with cancellation checkpoints in the
// backbone scan.
func (e *CompactSpineEngine) EndsAtBatchCtx(ctx context.Context, ps []Pos) ([][]int32, error) {
	firsts := make([]int32, len(ps))
	lens := make([]int32, len(ps))
	for i, p := range ps {
		sp := p.(spinePos)
		firsts[i], lens[i] = sp.node, sp.l
	}
	return e.idx.ScanManyCtx(ctx, firsts, lens)
}

// TreeEngine adapts the in-memory suffix tree. Suffix trees resolve
// occurrence sets by subtree leaf collection, so no batch optimization
// applies; each snapshot needs its own cursor replay, which TreeEngine
// avoids by collecting ends eagerly at Mark time for pending candidates.
type TreeEngine struct {
	t   *suffixtree.Tree
	cur *suffixtree.Cursor
}

// NewTreeEngine returns a matching engine over t.
func NewTreeEngine(t *suffixtree.Tree) *TreeEngine {
	return &TreeEngine{t: t, cur: suffixtree.NewCursor(t)}
}

type treePos struct{ parent, child, off, l int32 }

func (e *TreeEngine) Advance(c byte) error { e.cur.Advance(c); return nil }
func (e *TreeEngine) Len() int             { return e.cur.Len() }
func (e *TreeEngine) Checked() int64       { return e.cur.Checked }
func (e *TreeEngine) Reset()               { e.cur.Reset() }

func (e *TreeEngine) Mark() Pos {
	parent, child, off := e.cur.Position()
	return treePos{parent, child, off, int32(e.cur.Len())}
}

func (e *TreeEngine) EndsAt(p Pos) ([]int32, error) {
	tp := p.(treePos)
	return e.t.EndsAt(tp.parent, tp.child, tp.off, int(tp.l)), nil
}

// DiskSpineEngine adapts the disk-resident SPINE index.
type DiskSpineEngine struct {
	s   *diskindex.Spine
	cur *diskindex.SpineCursor
}

// NewDiskSpineEngine returns a matching engine over s.
func NewDiskSpineEngine(s *diskindex.Spine) *DiskSpineEngine {
	return &DiskSpineEngine{s: s, cur: s.NewCursor()}
}

func (e *DiskSpineEngine) Advance(c byte) error { return e.cur.Advance(c) }
func (e *DiskSpineEngine) Len() int             { return int(e.cur.Len) }
func (e *DiskSpineEngine) Mark() Pos            { return spinePos{e.cur.Node, e.cur.Len} }
func (e *DiskSpineEngine) Checked() int64       { return e.cur.Checked }
func (e *DiskSpineEngine) Reset()               { e.cur.Node, e.cur.Len = 0, 0 }

func (e *DiskSpineEngine) EndsAt(p Pos) ([]int32, error) {
	sp := p.(spinePos)
	if sp.l == 0 {
		return nil, nil
	}
	out, err := e.s.ScanMany([]int32{sp.node}, []int32{sp.l})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// EndsAtBatch resolves every snapshot in one backbone pass — on disk this
// is the difference between reading each node page once and once per
// match.
func (e *DiskSpineEngine) EndsAtBatch(ps []Pos) ([][]int32, error) {
	firsts := make([]int32, len(ps))
	lens := make([]int32, len(ps))
	for i, p := range ps {
		sp := p.(spinePos)
		firsts[i], lens[i] = sp.node, sp.l
	}
	return e.s.ScanMany(firsts, lens)
}

// DiskTreeEngine adapts the disk-resident suffix tree.
type DiskTreeEngine struct {
	t   *diskindex.Tree
	cur *diskindex.TreeCursor
}

// NewDiskTreeEngine returns a matching engine over t.
func NewDiskTreeEngine(t *diskindex.Tree) *DiskTreeEngine {
	return &DiskTreeEngine{t: t, cur: t.NewCursor()}
}

func (e *DiskTreeEngine) Advance(c byte) error { return e.cur.Advance(c) }
func (e *DiskTreeEngine) Len() int             { return e.cur.Len() }
func (e *DiskTreeEngine) Checked() int64       { return e.cur.Checked }
func (e *DiskTreeEngine) Reset()               { e.cur.Reset() }

func (e *DiskTreeEngine) Mark() Pos {
	parent, child, off := e.cur.Position()
	return treePos{parent, child, off, int32(e.cur.Len())}
}

func (e *DiskTreeEngine) EndsAt(p Pos) ([]int32, error) {
	tp := p.(treePos)
	return e.t.EndsAt(tp.parent, tp.child, tp.off, int(tp.l))
}
