// Package match implements the paper's §4 "complex matching operation":
// given a data string S1 (indexed) and a query string S2, find all maximal
// matching substrings between them — including repeated occurrences —
// whose length reaches a threshold. This is the core of genome alignment
// tools such as MUMmer, and the workload of Tables 5, 6 and 7.
//
// The operation runs over a pluggable Engine (SPINE reference, SPINE
// compact, suffix tree, or their disk-resident variants), so the SPINE/ST
// comparison is a pure engine swap. Engines expose the number of nodes
// examined, the Table 6 metric that demonstrates SPINE's set-basis suffix
// processing.
package match

import (
	"context"
	"time"

	"github.com/spine-index/spine/internal/trace"
)

// Pos is an engine-specific opaque snapshot of a match position, used to
// resolve occurrence sets after the streaming pass (the paper defers
// occurrence enumeration to a single final scan).
type Pos interface{}

// Engine is a streaming matching-statistics cursor over a data string.
type Engine interface {
	// Advance consumes one query character.
	Advance(c byte) error
	// Len returns the current matched length.
	Len() int
	// Mark snapshots the current match position for later EndsAt.
	Mark() Pos
	// EndsAt returns every end position (exclusive) in the data string of
	// the match snapshotted by p, in increasing order.
	EndsAt(p Pos) ([]int32, error)
	// Checked returns the cumulative number of nodes examined.
	Checked() int64
	// Reset clears the match state (Checked is preserved).
	Reset()
}

// BatchEngine is implemented by engines that can resolve many occurrence
// sets in one pass (SPINE's single final backbone scan).
type BatchEngine interface {
	Engine
	EndsAtBatch(ps []Pos) ([][]int32, error)
}

// CtxBatchEngine is implemented by batch engines whose final scan honors
// context cancellation — the scan is O(data length), so a server must be
// able to abort it when a request deadline passes.
type CtxBatchEngine interface {
	BatchEngine
	EndsAtBatchCtx(ctx context.Context, ps []Pos) ([][]int32, error)
}

// A Match is one maximal matching substring between data and query.
type Match struct {
	// QueryStart is the match's start offset in the query.
	QueryStart int
	// Len is the match length.
	Len int
	// DataStarts lists every start offset in the data string at which this
	// match occurs left- and right-maximally, in increasing order.
	DataStarts []int
}

// Report is the outcome of one matching run.
type Report struct {
	Matches []Match
	// Pairs counts (query position, data position) maximal pairs, i.e.
	// the total number of reported occurrences.
	Pairs int
	// NodesChecked is the engine's cumulative node-examination count —
	// the Table 6 metric.
	NodesChecked int64
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
}

// MaximalMatches finds all maximal matching substrings of length >= minLen
// between the engine's data string and query. data must be the raw indexed
// string (used for left-maximality checks). minLen must be >= 1.
//
// A reported (queryStart, dataStart, len) pair cannot be extended on
// either side: the right side is guaranteed by matching statistics (the
// streamed match could not absorb the next query character anywhere in the
// data), and the left side is checked per data occurrence.
func MaximalMatches(e Engine, data, query []byte, minLen int) (Report, error) {
	return MaximalMatchesCtx(context.Background(), e, data, query, minLen)
}

// ctxStride is the number of query characters consumed between
// cancellation checkpoints in the streaming pass.
const ctxStride = 1 << 12

// MaximalMatchesCtx is MaximalMatches with cancellation: the streaming
// pass checks ctx every few thousand query characters, and the final
// occurrence-resolution scan aborts through CtxBatchEngine when the
// engine supports it. It returns ctx.Err() if the context ends mid-run.
func MaximalMatchesCtx(ctx context.Context, e Engine, data, query []byte, minLen int) (Report, error) {
	start := time.Now()
	tr := trace.FromContext(ctx)
	checkedAtStart := e.Checked()
	if minLen < 1 {
		minLen = 1
	}
	type cand struct {
		qEnd, l int
		pos     Pos
	}
	var cands []cand
	prevLen := 0
	var prevMark Pos
	for j := 0; j < len(query); j++ {
		if j%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return Report{}, err
			}
		}
		if err := e.Advance(query[j]); err != nil {
			return Report{}, err
		}
		cur := e.Len()
		if prevLen >= minLen && cur <= prevLen {
			// The match ending at query position j was right-maximal.
			cands = append(cands, cand{qEnd: j, l: prevLen, pos: prevMark})
		}
		prevLen = cur
		prevMark = e.Mark()
	}
	if prevLen >= minLen {
		cands = append(cands, cand{qEnd: len(query), l: prevLen, pos: prevMark})
	}
	// The streaming pass is the matching-statistics descent; its Nodes is
	// the engine's Checked delta (cursor probes, chain and extrib hops),
	// which is exactly what Report.NodesChecked reports.
	if tr != nil {
		tr.Add(trace.StageStream, time.Since(start),
			trace.Counters{Nodes: e.Checked() - checkedAtStart})
	}
	resolveStart := time.Now()

	// Resolve occurrence sets — in one batch scan when the engine can.
	endSets := make([][]int32, len(cands))
	switch be := e.(type) {
	case CtxBatchEngine:
		ps := make([]Pos, len(cands))
		for i, c := range cands {
			ps[i] = c.pos
		}
		var err error
		endSets, err = be.EndsAtBatchCtx(ctx, ps)
		if err != nil {
			return Report{}, err
		}
	case BatchEngine:
		ps := make([]Pos, len(cands))
		for i, c := range cands {
			ps[i] = c.pos
		}
		var err error
		endSets, err = be.EndsAtBatch(ps)
		if err != nil {
			return Report{}, err
		}
	default:
		for i, c := range cands {
			if err := ctx.Err(); err != nil {
				return Report{}, err
			}
			ends, err := e.EndsAt(c.pos)
			if err != nil {
				return Report{}, err
			}
			endSets[i] = ends
		}
	}

	// The deferred resolution is SPINE's single backbone scan (§4); its
	// cost is wall time, not cursor probes, so the span carries the link
	// volume (resolved end positions) rather than Nodes.
	if tr != nil {
		var links int64
		for _, ends := range endSets {
			links += int64(len(ends))
		}
		tr.Add(trace.StageOccurrences, time.Since(resolveStart), trace.Counters{Links: links})
	}

	rep := Report{NodesChecked: e.Checked()}
	for i, c := range cands {
		m := Match{QueryStart: c.qEnd - c.l, Len: c.l}
		for _, end := range endSets[i] {
			dStart := int(end) - c.l
			if leftMaximal(data, query, dStart, m.QueryStart) {
				m.DataStarts = append(m.DataStarts, dStart)
			}
		}
		if len(m.DataStarts) > 0 {
			rep.Matches = append(rep.Matches, m)
			rep.Pairs += len(m.DataStarts)
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// leftMaximal reports whether the pair starting at (dStart, qStart) cannot
// be extended one character to the left.
func leftMaximal(data, query []byte, dStart, qStart int) bool {
	if dStart == 0 || qStart == 0 {
		return true
	}
	return data[dStart-1] != query[qStart-1]
}
