package align

import (
	"math/rand"
	"testing"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/match"
	"github.com/spine-index/spine/internal/seq"
)

func TestChainSelectsColinearSubset(t *testing.T) {
	anchors := []Anchor{
		{QStart: 0, RStart: 0, Len: 5},
		{QStart: 10, RStart: 2, Len: 4}, // conflicts with the 0/0 anchor's order? no: overlaps R
		{QStart: 10, RStart: 10, Len: 6},
		{QStart: 20, RStart: 20, Len: 3},
		{QStart: 18, RStart: 5, Len: 2}, // backwards in R; breaks colinearity with 10/10
	}
	chain := Chain(anchors)
	total := 0
	for i, a := range chain {
		total += a.Len
		if i > 0 {
			p := chain[i-1]
			if p.QStart+p.Len > a.QStart || p.RStart+p.Len > a.RStart {
				t.Fatalf("chain not colinear: %+v then %+v", p, a)
			}
		}
	}
	if total != 5+6+3 {
		t.Fatalf("chain weight = %d, want 14 (anchors 0/0, 10/10, 20/20)", total)
	}
}

func TestChainEmptyAndSingle(t *testing.T) {
	if got := Chain(nil); got != nil {
		t.Fatalf("Chain(nil) = %v", got)
	}
	one := []Anchor{{QStart: 3, RStart: 7, Len: 9}}
	got := Chain(one)
	if len(got) != 1 || got[0] != one[0] {
		t.Fatalf("Chain(single) = %v", got)
	}
}

func TestChainPrefersHeavierPath(t *testing.T) {
	// A single long anchor outweighs two short colinear ones it conflicts
	// with.
	anchors := []Anchor{
		{QStart: 0, RStart: 50, Len: 3},
		{QStart: 5, RStart: 60, Len: 3},
		{QStart: 2, RStart: 0, Len: 20},
	}
	chain := Chain(anchors)
	if len(chain) != 1 || chain[0].Len != 20 {
		t.Fatalf("chain = %+v, want the single 20-long anchor", chain)
	}
}

func TestAnchorsFiltersUniqueOnly(t *testing.T) {
	rep := match.Report{Matches: []match.Match{
		{QueryStart: 0, Len: 10, DataStarts: []int{5}},
		{QueryStart: 20, Len: 10, DataStarts: []int{5, 50}}, // repeated: not an anchor
		{QueryStart: 40, Len: 3, DataStarts: []int{8}},      // below minLen
	}}
	got := Anchors(rep, 5)
	if len(got) != 1 || got[0] != (Anchor{QStart: 0, RStart: 5, Len: 10}) {
		t.Fatalf("Anchors = %+v", got)
	}
}

// TestAlignRelatedGenomes aligns a mutated copy against its source: the
// chain must cover most of the query, in order.
func TestAlignRelatedGenomes(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	ref := make([]byte, 4000)
	for i := range ref {
		ref[i] = "acgt"[rng.Intn(4)]
	}
	query := append([]byte{}, ref...)
	for i := range query {
		if rng.Float64() < 0.01 { // 1% point mutations
			query[i] = "acgt"[rng.Intn(4)]
		}
	}
	e := match.NewSpineEngine(core.Build(ref))
	al, err := Align(e, ref, query, 15)
	if err != nil {
		t.Fatal(err)
	}
	if al.QueryCoverage < 0.7 {
		t.Fatalf("query coverage %.2f < 0.7 on 1%%-mutated copy (%d anchors)",
			al.QueryCoverage, len(al.Chain))
	}
	for i := 1; i < len(al.Chain); i++ {
		p, a := al.Chain[i-1], al.Chain[i]
		if p.QStart+p.Len > a.QStart || p.RStart+p.Len > a.RStart {
			t.Fatalf("chain not colinear at %d: %+v then %+v", i, p, a)
		}
	}
}

// TestAlignUnrelatedGenomesLowCoverage checks the converse: random
// unrelated strings anchor almost nothing at a meaningful threshold.
func TestAlignUnrelatedGenomesLowCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	ref := make([]byte, 4000)
	query := make([]byte, 4000)
	for i := range ref {
		ref[i] = "acgt"[rng.Intn(4)]
	}
	for i := range query {
		query[i] = "acgt"[rng.Intn(4)]
	}
	e := match.NewSpineEngine(core.Build(ref))
	al, err := Align(e, ref, query, 15)
	if err != nil {
		t.Fatal(err)
	}
	if al.QueryCoverage > 0.05 {
		t.Fatalf("unrelated strings anchored %.2f of the query", al.QueryCoverage)
	}
}

func TestAlignEmptyInputs(t *testing.T) {
	e := match.NewSpineEngine(core.Build([]byte("acgt")))
	al, err := Align(e, []byte("acgt"), nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Chain) != 0 || al.QueryCoverage != 0 {
		t.Fatalf("alignment of empty query: %+v", al)
	}
}

// TestAlignBothStrandsFindsInversion plants an inverted segment: the
// forward strand cannot anchor it, the reverse strand must.
func TestAlignBothStrandsFindsInversion(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	ref := make([]byte, 6000)
	for i := range ref {
		ref[i] = "acgt"[rng.Intn(4)]
	}
	query := append([]byte{}, ref...)
	// Invert (reverse-complement) the middle 2000 bp.
	mid := seq.MustReverseComplement(query[2000:4000])
	copy(query[2000:4000], mid)

	e := match.NewSpineEngine(core.Build(ref))
	fwd, rev, err := AlignBothStrands(e, ref, query, 20, seq.MustReverseComplement)
	if err != nil {
		t.Fatal(err)
	}
	// Forward anchors cover the non-inverted two thirds.
	if fwd.QueryCoverage < 0.5 || fwd.QueryCoverage > 0.75 {
		t.Fatalf("forward coverage %.2f, want ~2/3", fwd.QueryCoverage)
	}
	// Reverse anchors cover the inverted third.
	if rev.QueryCoverage < 0.2 || rev.QueryCoverage > 0.45 {
		t.Fatalf("reverse coverage %.2f, want ~1/3", rev.QueryCoverage)
	}
	// Every reverse anchor sits inside the inverted window (allow edges).
	for _, a := range rev.Chain {
		if a.QStart < 1900 || a.QStart+a.Len > 4100 {
			t.Fatalf("reverse anchor outside inversion: %+v", a)
		}
		rc := seq.MustReverseComplement(query[a.QStart : a.QStart+a.Len])
		if string(rc) != string(ref[a.RStart:a.RStart+a.Len]) {
			t.Fatalf("reverse anchor does not verify: %+v", a)
		}
	}
}
