// Package align builds a MUMmer-style global alignment skeleton on top of
// the matching layer: extract anchor matches between a reference and a
// query, then chain the longest consistent (colinear) subset. This is the
// application §1 of the paper motivates ("performing global alignment
// between a pair of genomes ... the core operation of which is searching
// for maximal unique matches").
package align

import (
	"fmt"
	"sort"

	"github.com/spine-index/spine/internal/match"
)

// Anchor is a candidate alignment segment: query[QStart:QStart+Len] ==
// ref[RStart:RStart+Len].
type Anchor struct {
	QStart, RStart, Len int
}

// Anchors extracts chainable anchors from a matching report: matches that
// occur at exactly one reference position (reference-unique, the "U" of
// MUM) of length >= minLen.
func Anchors(rep match.Report, minLen int) []Anchor {
	var out []Anchor
	for _, m := range rep.Matches {
		if m.Len >= minLen && len(m.DataStarts) == 1 {
			out = append(out, Anchor{QStart: m.QueryStart, RStart: m.DataStarts[0], Len: m.Len})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].QStart != out[j].QStart {
			return out[i].QStart < out[j].QStart
		}
		return out[i].RStart < out[j].RStart
	})
	return out
}

// Chain selects the heaviest colinear subset of anchors: strictly
// increasing in both query and reference coordinates without overlap,
// maximizing total anchored length (weighted LIS, O(k^2) dynamic program —
// anchor counts are small relative to the genomes).
func Chain(anchors []Anchor) []Anchor {
	k := len(anchors)
	if k == 0 {
		return nil
	}
	sorted := append([]Anchor(nil), anchors...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].QStart != sorted[j].QStart {
			return sorted[i].QStart < sorted[j].QStart
		}
		return sorted[i].RStart < sorted[j].RStart
	})
	best := make([]int, k) // best chain weight ending at i
	prev := make([]int, k)
	argBest := 0
	for i := range sorted {
		best[i] = sorted[i].Len
		prev[i] = -1
		for j := 0; j < i; j++ {
			if sorted[j].QStart+sorted[j].Len <= sorted[i].QStart &&
				sorted[j].RStart+sorted[j].Len <= sorted[i].RStart &&
				best[j]+sorted[i].Len > best[i] {
				best[i] = best[j] + sorted[i].Len
				prev[i] = j
			}
		}
		if best[i] > best[argBest] {
			argBest = i
		}
	}
	var chain []Anchor
	for i := argBest; i >= 0; i = prev[i] {
		chain = append(chain, sorted[i])
		if prev[i] < 0 {
			break
		}
	}
	// Reverse into increasing order.
	for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
		chain[l], chain[r] = chain[r], chain[l]
	}
	return chain
}

// Alignment summarizes a chained alignment.
type Alignment struct {
	// Chain is the selected colinear anchor chain.
	Chain []Anchor
	// Anchored is the total reference length covered by the chain.
	Anchored int
	// QueryCoverage and RefCoverage are the anchored fractions.
	QueryCoverage, RefCoverage float64
}

// Align runs the full pipeline: maximal matches on the given engine,
// reference-unique anchor extraction, and chaining.
func Align(e match.Engine, ref, query []byte, minAnchor int) (Alignment, error) {
	rep, err := match.MaximalMatches(e, ref, query, minAnchor)
	if err != nil {
		return Alignment{}, fmt.Errorf("align: matching: %w", err)
	}
	chain := Chain(Anchors(rep, minAnchor))
	al := Alignment{Chain: chain}
	for _, a := range chain {
		al.Anchored += a.Len
	}
	if len(query) > 0 {
		al.QueryCoverage = float64(al.Anchored) / float64(len(query))
	}
	if len(ref) > 0 {
		al.RefCoverage = float64(al.Anchored) / float64(len(ref))
	}
	return al, nil
}

// AlignBothStrands aligns query and its reverse complement against the
// reference — DNA aligners must consider both orientations (an inverted
// segment matches only on the reverse strand). The engine is Reset between
// passes. Reverse-strand anchor coordinates are mapped back to forward
// query coordinates: a reverse anchor at QStart covers
// query[QStart : QStart+Len] whose reverse complement equals the reference
// at RStart.
func AlignBothStrands(e match.Engine, ref, query []byte, minAnchor int, revComp func([]byte) []byte) (forward, reverse Alignment, err error) {
	forward, err = Align(e, ref, query, minAnchor)
	if err != nil {
		return Alignment{}, Alignment{}, err
	}
	e.Reset()
	rc := revComp(query)
	reverse, err = Align(e, ref, rc, minAnchor)
	if err != nil {
		return Alignment{}, Alignment{}, err
	}
	// Map reverse-strand coordinates back onto the forward query.
	for i, a := range reverse.Chain {
		reverse.Chain[i].QStart = len(query) - a.QStart - a.Len
	}
	// The chain was colinear in rc-coordinates; in forward coordinates it
	// runs backwards — re-sort for presentation.
	sort.Slice(reverse.Chain, func(i, j int) bool {
		return reverse.Chain[i].QStart < reverse.Chain[j].QStart
	})
	return forward, reverse, nil
}
