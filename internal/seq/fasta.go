package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// Record is one FASTA record: a header (without the leading '>') and the
// concatenated sequence letters.
type Record struct {
	Header string
	Seq    []byte
}

// ReadFASTA parses every record from r. Sequence lines are concatenated
// verbatim except for stripped whitespace; no alphabet filtering is applied
// (use Alphabet.Sanitize for that). Data before the first '>' header is an
// error, as is an empty input.
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var recs []Record
	var cur *Record
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		if b[0] == '>' {
			recs = append(recs, Record{Header: string(b[1:])})
			cur = &recs[len(recs)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seq: line %d: sequence data before first FASTA header", line)
		}
		cur.Seq = append(cur.Seq, b...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seq: reading FASTA: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("seq: no FASTA records found")
	}
	return recs, nil
}

// WriteFASTA writes records to w with sequence lines wrapped at width
// columns (width <= 0 means 70).
func WriteFASTA(w io.Writer, recs []Record, width int) error {
	if width <= 0 {
		width = 70
	}
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Header); err != nil {
			return err
		}
		for off := 0; off < len(rec.Seq); off += width {
			end := off + width
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			if _, err := bw.Write(rec.Seq[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
