// Package seq provides the sequence substrate used by all SPINE components:
// alphabets over which indexes are built, packed (2-bit and 5-bit) character
// coders that back the compact index layouts, and FASTA input/output.
//
// The paper's prototype indexes DNA genomes (alphabet size 4) and proteomes
// (alphabet size 20); both are first-class here, and arbitrary byte
// alphabets up to 255 symbols are supported for generality.
package seq

import (
	"fmt"
	"sort"
)

// Alphabet maps between raw sequence bytes (e.g. 'a', 'c', 'g', 't') and
// dense symbol codes 0..Size()-1. A dense code space is what allows the
// compact SPINE layout to store a character label in 2 bits (DNA) or
// 5 bits (protein), per §5 of the paper.
//
// The zero value is not useful; construct with NewAlphabet, or use the
// package-level DNA and Protein alphabets.
type Alphabet struct {
	letters []byte     // code -> letter, sorted ascending
	codes   [256]int16 // letter -> code (case-folded), -1 if absent
	bits    uint       // bits needed per symbol
}

// DNA is the four-letter nucleotide alphabet {a, c, g, t}. Lookups fold
// ASCII case, so 'A' and 'a' share a code.
var DNA = NewAlphabet([]byte("acgt"))

// Protein is the twenty-letter amino-acid residue alphabet. Lookups fold
// ASCII case.
var Protein = NewAlphabet([]byte("ACDEFGHIKLMNPQRSTVWY"))

// NewAlphabet builds an alphabet over the given distinct letters. Letters
// are canonicalized to their given byte values, and upper/lower ASCII case
// variants of each letter map to the same code. NewAlphabet panics if
// letters is empty, longer than 255, or contains duplicates (after case
// folding), because an invalid alphabet is a programming error, not a
// runtime condition.
func NewAlphabet(letters []byte) *Alphabet {
	if len(letters) == 0 || len(letters) > 255 {
		panic(fmt.Sprintf("seq: alphabet size %d out of range [1,255]", len(letters)))
	}
	a := &Alphabet{letters: make([]byte, len(letters))}
	copy(a.letters, letters)
	sort.Slice(a.letters, func(i, j int) bool { return a.letters[i] < a.letters[j] })
	for i := range a.codes {
		a.codes[i] = -1
	}
	for code, l := range a.letters {
		if other := otherCase(l); other != l {
			if a.codes[other] != -1 {
				panic(fmt.Sprintf("seq: duplicate alphabet letter %q (case-folded)", l))
			}
			a.codes[other] = int16(code)
		}
		if a.codes[l] != -1 {
			panic(fmt.Sprintf("seq: duplicate alphabet letter %q", l))
		}
		a.codes[l] = int16(code)
	}
	for a.bits = 1; 1<<a.bits < len(a.letters); a.bits++ {
	}
	return a
}

func otherCase(b byte) byte {
	switch {
	case b >= 'a' && b <= 'z':
		return b - ('a' - 'A')
	case b >= 'A' && b <= 'Z':
		return b + ('a' - 'A')
	}
	return b
}

// Size returns the number of symbols in the alphabet.
func (a *Alphabet) Size() int { return len(a.letters) }

// Bits returns the number of bits needed to store one symbol code
// (2 for DNA, 5 for the protein alphabet).
func (a *Alphabet) Bits() uint { return a.bits }

// Code returns the dense code of letter b, or -1 if b is not in the
// alphabet.
func (a *Alphabet) Code(b byte) int { return int(a.codes[b]) }

// Letter returns the letter for symbol code c. It panics if c is out of
// range.
func (a *Alphabet) Letter(c int) byte { return a.letters[c] }

// Contains reports whether every byte of s is an alphabet letter.
func (a *Alphabet) Contains(s []byte) bool {
	for _, b := range s {
		if a.codes[b] == -1 {
			return false
		}
	}
	return true
}

// Encode translates raw letters to dense symbol codes. It returns an error
// naming the first offending byte if s contains a letter outside the
// alphabet.
func (a *Alphabet) Encode(s []byte) ([]byte, error) {
	out := make([]byte, len(s))
	for i, b := range s {
		c := a.codes[b]
		if c == -1 {
			return nil, fmt.Errorf("seq: byte %q at offset %d not in alphabet", b, i)
		}
		out[i] = byte(c)
	}
	return out, nil
}

// Decode translates dense symbol codes back to letters. It returns an
// error if any code is out of range.
func (a *Alphabet) Decode(codes []byte) ([]byte, error) {
	out := make([]byte, len(codes))
	for i, c := range codes {
		if int(c) >= len(a.letters) {
			return nil, fmt.Errorf("seq: code %d at offset %d out of range for alphabet size %d", c, i, len(a.letters))
		}
		out[i] = a.letters[c]
	}
	return out, nil
}

// Sanitize returns a copy of s with every byte outside the alphabet
// removed, folding case first. It is the lenient counterpart of Encode,
// useful when ingesting FASTA files that contain ambiguity codes (e.g. 'N')
// the index does not model.
func (a *Alphabet) Sanitize(s []byte) []byte {
	out := make([]byte, 0, len(s))
	for _, b := range s {
		if a.codes[b] != -1 {
			out = append(out, b)
		}
	}
	return out
}
