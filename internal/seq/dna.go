package seq

import "fmt"

// complementTable maps each DNA letter to its Watson-Crick complement,
// case-preserving; other bytes map to themselves.
var complementTable = func() [256]byte {
	var t [256]byte
	for i := range t {
		t[i] = byte(i)
	}
	pairs := []struct{ a, b byte }{{'a', 't'}, {'c', 'g'}, {'A', 'T'}, {'C', 'G'}}
	for _, p := range pairs {
		t[p.a], t[p.b] = p.b, p.a
	}
	return t
}()

// ReverseComplement returns the reverse complement of a DNA sequence
// (a<->t, c<->g, case-preserving). It returns an error if s contains a
// byte outside the DNA alphabet.
func ReverseComplement(s []byte) ([]byte, error) {
	out := make([]byte, len(s))
	for i, b := range s {
		if DNA.Code(b) < 0 {
			return nil, fmt.Errorf("seq: byte %q at offset %d is not a DNA base", b, i)
		}
		out[len(s)-1-i] = complementTable[b]
	}
	return out, nil
}

// MustReverseComplement is ReverseComplement for inputs known to be DNA;
// it panics on foreign bytes.
func MustReverseComplement(s []byte) []byte {
	out, err := ReverseComplement(s)
	if err != nil {
		panic(err)
	}
	return out
}
