package seq

// Word-level access to packed symbol storage. The SWAR scan kernels in
// internal/core compare 64 bits of packed characters per machine op —
// 32 DNA symbols or 8 raw bytes at a time — so they need to pull an
// arbitrarily bit-aligned 64-bit window out of a packed sequence, and
// to pack a query pattern into the same representation once per query.
// Both sides of every comparison run through the functions here, which
// define the canonical lane order: symbol k of a window occupies bits
// [k*bits, (k+1)*bits), i.e. little-endian within the word.

// WordFrom returns the 64 bits of data starting at bit offset bitOff.
// Bits past the end of data read as zero, so a window overlapping the
// packed tail compares equal to a pattern window padded the same way.
func WordFrom(data []uint64, bitOff uint) uint64 {
	w := int(bitOff >> 6)
	if w >= len(data) {
		return 0
	}
	off := bitOff & 63
	v := data[w] >> off
	if off != 0 && w+1 < len(data) {
		v |= data[w+1] << (64 - off)
	}
	return v
}

// WordAt returns a 64-bit window of packed symbols starting at symbol i:
// symbol i+k occupies bits [k*Bits(), (k+1)*Bits()) of the result.
// Symbols past Len() read as zero.
func (p *Packed) WordAt(i int) uint64 {
	return WordFrom(p.data, uint(i)*p.bits)
}

// PackWords packs symbol codes at the given width into 64-bit words in
// the canonical lane order, appending to dst (pass dst[:0] to reuse a
// buffer; the steady state then allocates nothing). Codes wider than
// bits are masked, not rejected — callers own validation.
func PackWords(codes []byte, bits uint, dst []uint64) []uint64 {
	need := int((uint(len(codes))*bits + 63) / 64)
	for len(dst) < need {
		dst = append(dst, 0)
	}
	dst = dst[:need]
	for i := range dst {
		dst[i] = 0
	}
	mask := byte(1<<bits - 1)
	for i, c := range codes {
		bit := uint(i) * bits
		w, off := bit>>6, bit&63
		dst[w] |= uint64(c&mask) << off
		if off+bits > 64 {
			dst[w+1] |= uint64(c&mask) >> (64 - off)
		}
	}
	return dst
}
