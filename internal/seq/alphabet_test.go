package seq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDNAAlphabetBasics(t *testing.T) {
	if got := DNA.Size(); got != 4 {
		t.Fatalf("DNA.Size() = %d, want 4", got)
	}
	if got := DNA.Bits(); got != 2 {
		t.Fatalf("DNA.Bits() = %d, want 2", got)
	}
	want := map[byte]int{'a': 0, 'c': 1, 'g': 2, 't': 3}
	for b, code := range want {
		if got := DNA.Code(b); got != code {
			t.Errorf("DNA.Code(%q) = %d, want %d", b, got, code)
		}
		if got := DNA.Letter(code); got != b {
			t.Errorf("DNA.Letter(%d) = %q, want %q", code, got, b)
		}
	}
}

func TestDNAAlphabetCaseFolding(t *testing.T) {
	for _, pair := range [][2]byte{{'a', 'A'}, {'c', 'C'}, {'g', 'G'}, {'t', 'T'}} {
		lo, up := DNA.Code(pair[0]), DNA.Code(pair[1])
		if lo != up {
			t.Errorf("Code(%q)=%d != Code(%q)=%d", pair[0], lo, pair[1], up)
		}
	}
}

func TestProteinAlphabetBasics(t *testing.T) {
	if got := Protein.Size(); got != 20 {
		t.Fatalf("Protein.Size() = %d, want 20", got)
	}
	if got := Protein.Bits(); got != 5 {
		t.Fatalf("Protein.Bits() = %d, want 5", got)
	}
	if Protein.Code('B') != -1 {
		t.Errorf("Protein.Code('B') = %d, want -1 (not a residue)", Protein.Code('B'))
	}
	if Protein.Code('w') == -1 {
		t.Errorf("Protein.Code('w') = -1, want case-folded residue code")
	}
}

func TestCodeRejectsForeignBytes(t *testing.T) {
	for _, b := range []byte{'n', 'N', '-', ' ', 0, 255} {
		if got := DNA.Code(b); got != -1 {
			t.Errorf("DNA.Code(%q) = %d, want -1", b, got)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := []byte("acgtACGTacgt")
	codes, err := DNA.Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := DNA.Decode(codes)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// Decode canonicalizes to the declared (lower) case.
	if string(out) != "acgtacgtacgt" {
		t.Fatalf("round trip = %q, want %q", out, "acgtacgtacgt")
	}
}

func TestEncodeRejectsForeignByte(t *testing.T) {
	if _, err := DNA.Encode([]byte("acgnt")); err == nil {
		t.Fatal("Encode accepted 'n', want error")
	}
}

func TestDecodeRejectsOutOfRangeCode(t *testing.T) {
	if _, err := DNA.Decode([]byte{0, 4}); err == nil {
		t.Fatal("Decode accepted code 4 for a 4-letter alphabet, want error")
	}
}

func TestSanitizeDropsForeignBytes(t *testing.T) {
	got := DNA.Sanitize([]byte("ac-gN t\n"))
	if string(got) != "acgt" {
		t.Fatalf("Sanitize = %q, want %q", got, "acgt")
	}
}

func TestContains(t *testing.T) {
	if !DNA.Contains([]byte("gattaca")) {
		t.Error("Contains(gattaca) = false, want true")
	}
	if DNA.Contains([]byte("gattaxa")) {
		t.Error("Contains(gattaxa) = true, want false")
	}
	if !DNA.Contains(nil) {
		t.Error("Contains(nil) = false, want true (vacuous)")
	}
}

func TestNewAlphabetPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAlphabet accepted duplicate letters, want panic")
		}
	}()
	NewAlphabet([]byte("aA"))
}

func TestNewAlphabetPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAlphabet accepted empty letter set, want panic")
		}
	}()
	NewAlphabet(nil)
}

func TestAlphabetBitsCoversSize(t *testing.T) {
	cases := []struct {
		letters string
		bits    uint
	}{
		{"ab", 1}, {"abc", 2}, {"abcd", 2}, {"abcde", 3},
		{"abcdefgh", 3}, {"abcdefghi", 4},
	}
	for _, c := range cases {
		a := NewAlphabet([]byte(c.letters))
		if a.Bits() != c.bits {
			t.Errorf("Bits(%q) = %d, want %d", c.letters, a.Bits(), c.bits)
		}
	}
}

// Property: Encode then Decode is the identity on canonical-case strings.
func TestQuickEncodeDecodeIdentity(t *testing.T) {
	f := func(raw []byte) bool {
		in := make([]byte, len(raw))
		for i, b := range raw {
			in[i] = DNA.Letter(int(b % 4))
		}
		codes, err := DNA.Encode(in)
		if err != nil {
			return false
		}
		out, err := DNA.Decode(codes)
		if err != nil {
			return false
		}
		return string(out) == string(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestReverseComplement(t *testing.T) {
	got, err := ReverseComplement([]byte("acgt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "acgt" { // palindrome
		t.Fatalf("RC(acgt) = %q", got)
	}
	got, err = ReverseComplement([]byte("aacg"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "cgtt" {
		t.Fatalf("RC(aacg) = %q, want cgtt", got)
	}
	// Case preserved per-base.
	got, err = ReverseComplement([]byte("AacG"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "CgtT" {
		t.Fatalf("RC(AacG) = %q, want CgtT", got)
	}
	if _, err := ReverseComplement([]byte("acgn")); err == nil {
		t.Fatal("foreign base accepted")
	}
	// Involution: RC(RC(x)) == x.
	x := []byte("ggatccaatt")
	if back := MustReverseComplement(MustReverseComplement(x)); string(back) != string(x) {
		t.Fatalf("RC not an involution: %q", back)
	}
}
