package seq

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadFASTASingleRecord(t *testing.T) {
	in := ">chr1 test genome\nacgt\nACGT\n"
	recs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadFASTA: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if recs[0].Header != "chr1 test genome" {
		t.Errorf("header = %q", recs[0].Header)
	}
	if string(recs[0].Seq) != "acgtACGT" {
		t.Errorf("seq = %q, want %q", recs[0].Seq, "acgtACGT")
	}
}

func TestReadFASTAMultipleRecordsAndBlankLines(t *testing.T) {
	in := ">a\nac\n\ngt\n>b\n\ntt\n"
	recs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadFASTA: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if string(recs[0].Seq) != "acgt" || string(recs[1].Seq) != "tt" {
		t.Errorf("seqs = %q, %q", recs[0].Seq, recs[1].Seq)
	}
}

func TestReadFASTARejectsLeadingData(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("acgt\n>a\nac\n")); err == nil {
		t.Fatal("accepted sequence data before first header, want error")
	}
}

func TestReadFASTARejectsEmpty(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("")); err == nil {
		t.Fatal("accepted empty input, want error")
	}
}

func TestWriteFASTAWrapsAndRoundTrips(t *testing.T) {
	recs := []Record{
		{Header: "x", Seq: []byte("acgtacgtacgt")},
		{Header: "y z", Seq: []byte("tt")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs, 5); err != nil {
		t.Fatalf("WriteFASTA: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, ">x\nacgta\ncgtac\ngt\n") {
		t.Errorf("unexpected wrapping:\n%s", out)
	}
	back, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatalf("ReadFASTA(round trip): %v", err)
	}
	if len(back) != 2 || string(back[0].Seq) != "acgtacgtacgt" || back[1].Header != "y z" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestWriteFASTADefaultWidth(t *testing.T) {
	seq := bytes.Repeat([]byte("a"), 150)
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, []Record{{Header: "h", Seq: seq}}, 0); err != nil {
		t.Fatalf("WriteFASTA: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + 70 + 70 + 10
	if len(lines) != 4 || len(lines[1]) != 70 || len(lines[3]) != 10 {
		t.Fatalf("unexpected line layout: %d lines, lens %v", len(lines), lines)
	}
}
