package seq

import "fmt"

// Packed is a bit-packed sequence of dense symbol codes. It backs the
// compact SPINE layout's character-label storage: 2 bits per DNA symbol or
// 5 bits per protein residue (§5 of the paper), instead of one byte each.
//
// Packed stores codes, not letters; pair it with an Alphabet to go back to
// text.
type Packed struct {
	bits uint
	n    int
	data []uint64
}

// NewPacked packs the given symbol codes at the given width. It returns an
// error if any code does not fit in bits.
func NewPacked(codes []byte, bits uint) (*Packed, error) {
	if bits == 0 || bits > 8 {
		return nil, fmt.Errorf("seq: packed width %d out of range [1,8]", bits)
	}
	p := &Packed{
		bits: bits,
		n:    len(codes),
		data: make([]uint64, (uint(len(codes))*bits+63)/64),
	}
	limit := byte(1<<bits - 1)
	for i, c := range codes {
		if c > limit {
			return nil, fmt.Errorf("seq: code %d at offset %d does not fit in %d bits", c, i, bits)
		}
		p.set(i, c)
	}
	return p, nil
}

func (p *Packed) set(i int, c byte) {
	bit := uint(i) * p.bits
	word, off := bit/64, bit%64
	p.data[word] |= uint64(c) << off
	if off+p.bits > 64 {
		p.data[word+1] |= uint64(c) >> (64 - off)
	}
}

// Len returns the number of symbols stored.
func (p *Packed) Len() int { return p.n }

// Bits returns the per-symbol width.
func (p *Packed) Bits() uint { return p.bits }

// At returns the symbol code at position i.
func (p *Packed) At(i int) byte {
	bit := uint(i) * p.bits
	word, off := bit/64, bit%64
	v := p.data[word] >> off
	if off+p.bits > 64 {
		v |= p.data[word+1] << (64 - off)
	}
	return byte(v) & byte(1<<p.bits-1)
}

// Unpack expands the packed codes back into one byte per symbol.
func (p *Packed) Unpack() []byte {
	out := make([]byte, p.n)
	for i := range out {
		out[i] = p.At(i)
	}
	return out
}

// SizeBytes returns the in-memory footprint of the packed payload in bytes.
func (p *Packed) SizeBytes() int { return len(p.data) * 8 }

// Words exposes the underlying packed words. The slice is the live
// backing store, not a copy; callers must treat it as read-only.
func (p *Packed) Words() []uint64 { return p.data }

// FromWords wraps an existing word slice as a packed sequence of n codes
// at the given width, without copying. The words may alias externally
// owned memory (e.g. a memory-mapped file); Append must not be called on
// the result while it aliases read-only storage.
func FromWords(words []uint64, n int, bits uint) (*Packed, error) {
	if bits == 0 || bits > 8 {
		return nil, fmt.Errorf("seq: packed width %d out of range [1,8]", bits)
	}
	if n < 0 {
		return nil, fmt.Errorf("seq: negative packed length %d", n)
	}
	if need := int((uint(n)*bits + 63) / 64); need != len(words) {
		return nil, fmt.Errorf("seq: packed word count %d != %d required for %d codes at %d bits",
			len(words), need, n, bits)
	}
	return &Packed{bits: bits, n: n, data: words}, nil
}

// Append adds one symbol code at the end. It returns an error if c does
// not fit the packed width.
func (p *Packed) Append(c byte) error {
	if c > byte(1<<p.bits-1) {
		return fmt.Errorf("seq: code %d does not fit in %d bits", c, p.bits)
	}
	bit := uint(p.n+1) * p.bits
	if need := int((bit + 63) / 64); need > len(p.data) {
		p.data = append(p.data, 0)
	}
	p.set(p.n, c)
	p.n++
	return nil
}
