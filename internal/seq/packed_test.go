package seq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackedRoundTrip2Bit(t *testing.T) {
	codes := []byte{0, 1, 2, 3, 3, 2, 1, 0, 2}
	p, err := NewPacked(codes, 2)
	if err != nil {
		t.Fatalf("NewPacked: %v", err)
	}
	if p.Len() != len(codes) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(codes))
	}
	for i, c := range codes {
		if got := p.At(i); got != c {
			t.Errorf("At(%d) = %d, want %d", i, got, c)
		}
	}
	if got := p.Unpack(); string(got) != string(codes) {
		t.Fatalf("Unpack = %v, want %v", got, codes)
	}
}

func TestPackedRoundTrip5BitCrossesWordBoundary(t *testing.T) {
	// 5-bit codes straddle 64-bit word boundaries every 64/gcd(5,64)
	// symbols; use enough symbols to cross several boundaries.
	codes := make([]byte, 300)
	rng := rand.New(rand.NewSource(7))
	for i := range codes {
		codes[i] = byte(rng.Intn(20))
	}
	p, err := NewPacked(codes, 5)
	if err != nil {
		t.Fatalf("NewPacked: %v", err)
	}
	for i, c := range codes {
		if got := p.At(i); got != c {
			t.Fatalf("At(%d) = %d, want %d", i, got, c)
		}
	}
}

func TestPackedRejectsOversizeCode(t *testing.T) {
	if _, err := NewPacked([]byte{4}, 2); err == nil {
		t.Fatal("NewPacked accepted code 4 at width 2, want error")
	}
}

func TestPackedRejectsBadWidth(t *testing.T) {
	for _, bits := range []uint{0, 9} {
		if _, err := NewPacked(nil, bits); err == nil {
			t.Fatalf("NewPacked accepted width %d, want error", bits)
		}
	}
}

func TestPackedEmpty(t *testing.T) {
	p, err := NewPacked(nil, 2)
	if err != nil {
		t.Fatalf("NewPacked: %v", err)
	}
	if p.Len() != 0 || p.SizeBytes() != 0 {
		t.Fatalf("empty packed: Len=%d SizeBytes=%d, want 0,0", p.Len(), p.SizeBytes())
	}
}

func TestPackedSizeBytes(t *testing.T) {
	// 1000 DNA symbols at 2 bits = 2000 bits = 32 words (rounded up) = 256 B.
	p, err := NewPacked(make([]byte, 1000), 2)
	if err != nil {
		t.Fatalf("NewPacked: %v", err)
	}
	if got := p.SizeBytes(); got != 256 {
		t.Fatalf("SizeBytes = %d, want 256", got)
	}
}

// Property: packing at any legal width round-trips.
func TestQuickPackedRoundTrip(t *testing.T) {
	f := func(raw []byte, widthSeed uint8) bool {
		bits := uint(widthSeed%8) + 1
		codes := make([]byte, len(raw))
		for i, b := range raw {
			codes[i] = b & byte(1<<bits-1)
		}
		p, err := NewPacked(codes, bits)
		if err != nil {
			return false
		}
		got := p.Unpack()
		return string(got) == string(codes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestPackedAppendMatchesBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, bits := range []uint{1, 2, 5, 8} {
		codes := make([]byte, 500)
		for i := range codes {
			codes[i] = byte(rng.Intn(1 << bits))
		}
		bulk, err := NewPacked(codes, bits)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := NewPacked(nil, bits)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range codes {
			if err := inc.Append(c); err != nil {
				t.Fatal(err)
			}
		}
		if inc.Len() != bulk.Len() {
			t.Fatalf("bits=%d: lengths differ", bits)
		}
		for i := range codes {
			if inc.At(i) != bulk.At(i) {
				t.Fatalf("bits=%d: At(%d) = %d, want %d", bits, i, inc.At(i), bulk.At(i))
			}
		}
	}
}

func TestPackedAppendRejectsOversize(t *testing.T) {
	p, err := NewPacked(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Append(4); err == nil {
		t.Fatal("oversize code accepted")
	}
}
