package seq

import (
	"math/rand"
	"testing"
)

// TestWordAtAgainstAt checks WordAt against the scalar At() oracle for
// every supported width, at every symbol offset, including windows that
// straddle word boundaries and windows overlapping the packed tail.
func TestWordAtAgainstAt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for bits := uint(1); bits <= 8; bits++ {
		for _, n := range []int{0, 1, 7, 31, 32, 33, 63, 64, 65, 200} {
			codes := make([]byte, n)
			limit := byte(1<<bits - 1)
			for i := range codes {
				codes[i] = byte(rng.Intn(int(limit) + 1))
			}
			p, err := NewPacked(codes, bits)
			if err != nil {
				t.Fatalf("bits=%d n=%d: %v", bits, n, err)
			}
			for i := 0; i <= n; i++ {
				got := p.WordAt(i)
				// Verify symbol by symbol: lane k must equal At(i+k).
				for k := 0; (uint(k)+1)*bits <= 64; k++ {
					lane := byte(got>>(uint(k)*bits)) & limit
					want := byte(0)
					if i+k < n {
						want = p.At(i + k)
					}
					if lane != want {
						t.Fatalf("bits=%d n=%d WordAt(%d) lane %d = %d, want %d",
							bits, n, i, k, lane, want)
					}
				}
			}
		}
	}
}

// TestWordFromTailZeroFill pins the zero-fill contract: bits past the
// end of the data slice read as zero at every offset.
func TestWordFromTailZeroFill(t *testing.T) {
	data := []uint64{^uint64(0)}
	for off := uint(0); off < 130; off++ {
		got := WordFrom(data, off)
		var want uint64
		if off < 64 {
			want = ^uint64(0) >> off
		}
		if got != want {
			t.Fatalf("WordFrom(all-ones, %d) = %#x, want %#x", off, got, want)
		}
	}
}

// TestPackWordsRoundTrip packs codes and re-extracts them through
// WordFrom, for every width, including widths that straddle word
// boundaries (3, 5, 6, 7 bits).
func TestPackWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for bits := uint(1); bits <= 8; bits++ {
		limit := byte(1<<bits - 1)
		for _, n := range []int{0, 1, 13, 64, 100} {
			codes := make([]byte, n)
			for i := range codes {
				codes[i] = byte(rng.Intn(int(limit) + 1))
			}
			words := PackWords(codes, bits, nil)
			for i, c := range codes {
				got := byte(WordFrom(words, uint(i)*bits)) & limit
				if got != c {
					t.Fatalf("bits=%d n=%d: code %d round-tripped to %d, want %d", bits, n, i, got, c)
				}
			}
			// Packed and PackWords must agree word for word: both sides of
			// a SWAR comparison use the same lane order.
			p, err := NewPacked(codes, bits)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i <= n; i++ {
				if got, want := WordFrom(words, uint(i)*bits), p.WordAt(i); got != want {
					t.Fatalf("bits=%d n=%d offset %d: PackWords window %#x != Packed window %#x",
						bits, n, i, got, want)
				}
			}
		}
	}
}

// TestPackWordsReuse verifies the buffer-reuse contract: a second pack
// into the returned slice must not allocate and must fully overwrite
// stale content.
func TestPackWordsReuse(t *testing.T) {
	a := PackWords([]byte{3, 3, 3, 3, 3, 3, 3, 3}, 8, nil)
	b := PackWords([]byte{1}, 8, a[:0])
	if b[0] != 1 {
		t.Fatalf("reused buffer kept stale bits: %#x", b[0])
	}
	if &a[0] != &b[0] {
		t.Fatal("PackWords reallocated despite sufficient capacity")
	}
}
