package suffixarray

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/spine-index/spine/internal/trie"
)

// naiveSA builds the suffix array by direct sorting, for cross-checking.
func naiveSA(s []byte) []int32 {
	sa := make([]int32, len(s))
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(i, j int) bool {
		return string(s[sa[i]:]) < string(s[sa[j]:])
	})
	return sa
}

func TestSAMatchesNaiveConstruction(t *testing.T) {
	cases := []string{
		"banana", "mississippi", "aaccacaaca", "aaaa", "abab",
		"a", "ab", "ba", "acgtacgtacgt", "zyxwv",
	}
	for _, s := range cases {
		got := Build([]byte(s)).SA()
		want := naiveSA([]byte(s))
		if len(got) != len(want) {
			t.Fatalf("s=%q: len %d, want %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("s=%q: sa = %v, want %v", s, got, want)
			}
		}
	}
}

func TestSAMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.Intn(300)
		alpha := []byte("ac")
		if trial%3 == 1 {
			alpha = []byte("acgt")
		} else if trial%3 == 2 {
			alpha = []byte("abcdefghij")
		}
		s := make([]byte, n)
		for i := range s {
			s[i] = alpha[rng.Intn(len(alpha))]
		}
		got := Build(s).SA()
		want := naiveSA(s)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("s=%q: sa mismatch at %d: %v vs %v", s, i, got, want)
			}
		}
	}
}

func TestSAEmpty(t *testing.T) {
	a := Build(nil)
	if a.Len() != 0 {
		t.Fatalf("Len = %d", a.Len())
	}
	if !a.Contains(nil) {
		t.Fatal("empty pattern not contained")
	}
	if a.Contains([]byte("a")) {
		t.Fatal("letter contained in empty array")
	}
	if got := a.Find(nil); got != 0 {
		t.Fatalf("Find(empty) = %d", got)
	}
}

func TestSAFindAllMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(100)
		s := make([]byte, n)
		for i := range s {
			s[i] = "acgt"[rng.Intn(4)]
		}
		a := Build(s)
		o := trie.NewOracle(s)
		for q := 0; q < 100; q++ {
			m := 1 + rng.Intn(7)
			p := make([]byte, m)
			for i := range p {
				p[i] = "acgt"[rng.Intn(4)]
			}
			got := a.FindAll(p)
			want := o.Occurrences(p)
			if len(got) != len(want) {
				t.Fatalf("s=%q FindAll(%q) = %v, want %v", s, p, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("s=%q FindAll(%q) = %v, want %v", s, p, got, want)
				}
			}
			if gotF, wantF := a.Find(p), o.First(p); gotF != wantF {
				t.Fatalf("s=%q Find(%q) = %d, want %d", s, p, gotF, wantF)
			}
		}
	}
}

func TestSAPatternLongerThanText(t *testing.T) {
	a := Build([]byte("ac"))
	if a.Contains([]byte("acgt")) {
		t.Fatal("pattern longer than text reported contained")
	}
}

func TestSASizeBytes(t *testing.T) {
	a := Build([]byte("acgtacgt"))
	if got := a.SizeBytes(); got != 8*4+8 {
		t.Fatalf("SizeBytes = %d, want 40", got)
	}
}

// naiveLCP computes the LCP array directly.
func naiveLCP(text []byte, sa []int32) []int32 {
	lcp := make([]int32, len(sa))
	for i := 1; i < len(sa); i++ {
		a, b := text[sa[i-1]:], text[sa[i]:]
		j := 0
		for j < len(a) && j < len(b) && a[j] == b[j] {
			j++
		}
		lcp[i] = int32(j)
	}
	return lcp
}

func TestLCPMatchesNaive(t *testing.T) {
	cases := []string{"banana", "mississippi", "aaaa", "abcd", "a", "aaccacaaca"}
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		s := make([]byte, n)
		for i := range s {
			s[i] = "acgt"[rng.Intn(4)]
		}
		cases = append(cases, string(s))
	}
	for _, c := range cases {
		a := Build([]byte(c))
		got := a.LCP()
		want := naiveLCP(a.text, a.sa)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("s=%q: lcp[%d] = %d, want %d", c, i, got[i], want[i])
			}
		}
	}
}

func TestLCPEmpty(t *testing.T) {
	if got := Build(nil).LCP(); len(got) != 0 {
		t.Fatalf("LCP(empty) = %v", got)
	}
}

func TestSALongestRepeatedSubstring(t *testing.T) {
	a := Build([]byte("banana"))
	s, p, q := a.LongestRepeatedSubstring()
	if string(s) != "ana" || p != 1 || q != 3 {
		t.Fatalf("LRS = %q (%d, %d)", s, p, q)
	}
	if s, _, _ := Build([]byte("abcd")).LongestRepeatedSubstring(); s != nil {
		t.Fatalf("LRS of repeat-free string = %q", s)
	}
}
