// Package suffixarray implements a suffix array with Manber–Myers
// prefix-doubling construction and binary-search lookup. It is the §7
// related-work comparator: roughly 6 bytes per indexed character but
// supra-linear construction and O(m log n) search, the trade-off the paper
// positions SPINE against.
package suffixarray

import "sort"

// Array is a suffix array over a byte string.
type Array struct {
	text []byte
	sa   []int32 // lexicographically sorted suffix start offsets
}

// Build constructs the suffix array in O(n log n) time using prefix
// doubling with radix (counting) sorts.
func Build(s []byte) *Array {
	n := len(s)
	a := &Array{text: append([]byte(nil), s...), sa: make([]int32, n)}
	if n == 0 {
		return a
	}
	rank := make([]int32, n)
	tmp := make([]int32, n)
	for i := range a.sa {
		a.sa[i] = int32(i)
		rank[i] = int32(s[i])
	}
	cnt := make([]int32, maxInt(n, 256)+1)
	sa2 := make([]int32, n)

	// countingSortByKey sorts sa stably by key(i).
	countingSort := func(key func(int32) int32, keyMax int32) {
		for i := int32(0); i <= keyMax; i++ {
			cnt[i] = 0
		}
		for _, i := range a.sa {
			cnt[key(i)]++
		}
		for i := int32(1); i <= keyMax; i++ {
			cnt[i] += cnt[i-1]
		}
		for j := n - 1; j >= 0; j-- {
			i := a.sa[j]
			cnt[key(i)]--
			sa2[cnt[key(i)]] = i
		}
		a.sa, sa2 = sa2, a.sa
	}

	// Initial order: sort by first character, so the shifted enumeration
	// below yields second-key order on the first doubling round.
	countingSort(func(i int32) int32 { return rank[i] }, 256)

	for k := 1; ; k *= 2 {
		keyMax := int32(maxInt(n, 256))
		// Sort by second key (rank at i+k; 0 = past the end), then stably
		// by first key (rank at i). Second-key order comes cheaply: offsets
		// with i+k >= n first, then suffixes in current sa order shifted.
		p := 0
		for i := n - k; i < n; i++ {
			sa2[p] = int32(i)
			p++
		}
		for _, i := range a.sa {
			if int(i) >= k {
				sa2[p] = i - int32(k)
				p++
			}
		}
		a.sa, sa2 = sa2, a.sa
		countingSort(func(i int32) int32 { return rank[i] }, keyMax)

		// Re-rank.
		tmp[a.sa[0]] = 0
		r := int32(0)
		for j := 1; j < n; j++ {
			cur, prev := a.sa[j], a.sa[j-1]
			if rank[cur] != rank[prev] || rank2(rank, cur, k, n) != rank2(rank, prev, k, n) {
				r++
			}
			tmp[cur] = r
		}
		rank, tmp = tmp, rank
		if int(r) == n-1 {
			break
		}
	}
	return a
}

// rank2 returns the second sort key: the rank k positions later, or -1
// when past the end (shorter suffix sorts first).
func rank2(rank []int32, i int32, k, n int) int32 {
	if int(i)+k < n {
		return rank[int(i)+k]
	}
	return -1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Len returns the indexed text length.
func (a *Array) Len() int { return len(a.text) }

// SA returns the underlying suffix array (do not modify).
func (a *Array) SA() []int32 { return a.sa }

// lookupRange returns the half-open range of sa rows whose suffixes start
// with p.
func (a *Array) lookupRange(p []byte) (lo, hi int) {
	lo = sort.Search(len(a.sa), func(i int) bool {
		return compareSuffix(a.text, int(a.sa[i]), p) >= 0
	})
	hi = sort.Search(len(a.sa), func(i int) bool {
		return compareSuffixPrefix(a.text, int(a.sa[i]), p) > 0
	})
	return lo, hi
}

// compareSuffix compares text[off:] with p lexicographically.
func compareSuffix(text []byte, off int, p []byte) int {
	s := text[off:]
	for i := 0; i < len(s) && i < len(p); i++ {
		if s[i] != p[i] {
			if s[i] < p[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(p):
		return -1
	case len(s) > len(p):
		return 1
	}
	return 0
}

// compareSuffixPrefix compares the length-|p| prefix of text[off:] with p;
// a shorter suffix compares less.
func compareSuffixPrefix(text []byte, off int, p []byte) int {
	s := text[off:]
	if len(s) > len(p) {
		s = s[:len(p)]
	}
	for i := 0; i < len(s); i++ {
		if s[i] != p[i] {
			if s[i] < p[i] {
				return -1
			}
			return 1
		}
	}
	if len(s) < len(p) {
		return -1
	}
	return 0
}

// Contains reports whether p occurs in the text.
func (a *Array) Contains(p []byte) bool {
	lo, hi := a.lookupRange(p)
	return lo < hi || len(p) == 0
}

// Find returns the start offset of the leftmost occurrence of p, or -1.
func (a *Array) Find(p []byte) int {
	occ := a.FindAll(p)
	if len(occ) == 0 {
		if len(p) == 0 {
			return 0
		}
		return -1
	}
	return occ[0]
}

// FindAll returns every occurrence start offset in increasing order, nil
// if absent.
func (a *Array) FindAll(p []byte) []int {
	if len(p) == 0 {
		out := make([]int, len(a.text)+1)
		for i := range out {
			out[i] = i
		}
		return out
	}
	lo, hi := a.lookupRange(p)
	if lo >= hi {
		return nil
	}
	out := make([]int, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = int(a.sa[i])
	}
	sort.Ints(out)
	return out
}

// SizeBytes returns the footprint: 4 bytes per suffix plus the text —
// close to the ~6 B/char the paper quotes for suffix arrays (with 1-byte
// characters rather than packed ones).
func (a *Array) SizeBytes() int64 { return int64(len(a.sa))*4 + int64(len(a.text)) }
