package suffixarray

// LCP computes the longest-common-prefix array for the suffix array using
// Kasai's algorithm: lcp[i] is the length of the longest common prefix of
// the suffixes at sa[i-1] and sa[i] (lcp[0] = 0). O(n) time.
func (a *Array) LCP() []int32 {
	n := len(a.text)
	lcp := make([]int32, n)
	if n == 0 {
		return lcp
	}
	rank := make([]int32, n)
	for i, s := range a.sa {
		rank[s] = int32(i)
	}
	h := 0
	for i := 0; i < n; i++ {
		r := rank[i]
		if r == 0 {
			h = 0
			continue
		}
		j := int(a.sa[r-1])
		for i+h < n && j+h < n && a.text[i+h] == a.text[j+h] {
			h++
		}
		lcp[r] = int32(h)
		if h > 0 {
			h--
		}
	}
	return lcp
}

// LongestRepeatedSubstring returns the longest substring occurring at
// least twice, with two of its occurrence offsets — the classical
// suffix-array solution (max LCP entry). Used to cross-check SPINE's
// LEL-based answer at scale.
func (a *Array) LongestRepeatedSubstring() (s []byte, first, second int) {
	lcp := a.LCP()
	best, at := int32(0), -1
	for i, l := range lcp {
		if l > best {
			best, at = l, i
		}
	}
	if at < 0 {
		return nil, 0, 0
	}
	p, q := int(a.sa[at-1]), int(a.sa[at])
	if p > q {
		p, q = q, p
	}
	return a.text[p : p+int(best)], p, q
}
