package obs

import (
	"io"
	"time"

	"github.com/spine-index/spine/internal/telemetry"
)

// WritePrometheus renders the pipeline's and SLO engine's Prometheus
// families, appended after the telemetry registry's exposition on
// /metrics scrapes. Families are emitted whenever the pipeline is
// enabled — zeros included — so dashboards never see a missing series;
// a disabled pipeline emits nothing.
func WritePrometheus(w io.Writer, st PipelineStats, slo *SLO) error {
	if !st.Enabled {
		return nil
	}
	p := telemetry.NewPromWriter(w)

	p.Family("spine_obs_events_emitted_total", "counter", "Wide events emitted by type (query, batch_item, shard_leg).")
	p.Sample("spine_obs_events_emitted_total", []telemetry.Label{{Name: "type", Value: EventQuery}}, float64(st.EmittedQuery))
	p.Sample("spine_obs_events_emitted_total", []telemetry.Label{{Name: "type", Value: EventBatchItem}}, float64(st.EmittedBatchItems))
	p.Sample("spine_obs_events_emitted_total", []telemetry.Label{{Name: "type", Value: EventShardLeg}}, float64(st.EmittedShardLegs))
	p.Family("spine_obs_events_dropped_total", "counter", "Wide events dropped because the export queue was full (backpressure signal; the query path never blocks).")
	p.Sample("spine_obs_events_dropped_total", nil, float64(st.Dropped))
	p.Family("spine_obs_events_exported_total", "counter", "Wide events handed to the sinks.")
	p.Sample("spine_obs_events_exported_total", nil, float64(st.Exported))
	p.Family("spine_obs_export_errors_total", "counter", "Sink export failures after retries.")
	p.Sample("spine_obs_export_errors_total", nil, float64(st.ExportErrors))
	p.Family("spine_obs_export_retries_total", "counter", "Sink transport retries.")
	p.Sample("spine_obs_export_retries_total", nil, float64(st.ExportRetries))
	p.Family("spine_obs_queue_depth", "gauge", "Wide events currently waiting in the export queue.")
	p.Sample("spine_obs_queue_depth", nil, float64(st.QueueDepth))

	if statuses := slo.Snapshot(); len(statuses) > 0 {
		p.Family("spine_slo_objective", "gauge", "Configured SLO objective as a good-events fraction.")
		for _, st := range statuses {
			p.Sample("spine_slo_objective", []telemetry.Label{{Name: "slo", Value: st.Name}}, st.Objective)
		}
		for _, st := range statuses {
			if st.Name == "latency" {
				p.Family("spine_slo_latency_threshold_seconds", "gauge", "Latency SLO threshold.")
				p.Sample("spine_slo_latency_threshold_seconds", nil, st.ThresholdMs/1e3)
			}
		}
		p.Family("spine_slo_burn_rate", "gauge", "Error-budget burn rate per trailing window (1 = budget exhausted exactly at period end).")
		for _, st := range statuses {
			for _, bw := range st.Windows {
				p.Sample("spine_slo_burn_rate", sloLabels(st.Name, "window", bw.Window), bw.Burn)
			}
		}
		p.Family("spine_slo_window_requests", "gauge", "Requests observed per burn-rate window.")
		for _, st := range statuses {
			for _, bw := range st.Windows {
				p.Sample("spine_slo_window_requests", sloLabels(st.Name, "window", bw.Window), float64(bw.Total))
			}
		}
		p.Family("spine_slo_window_bad", "gauge", "Budget-burning events per burn-rate window.")
		for _, st := range statuses {
			for _, bw := range st.Windows {
				p.Sample("spine_slo_window_bad", sloLabels(st.Name, "window", bw.Window), float64(bw.Bad))
			}
		}
		p.Family("spine_slo_alert", "gauge", "Multi-window burn alert verdicts (1 = firing).")
		for _, st := range statuses {
			p.Sample("spine_slo_alert", sloLabels(st.Name, "severity", "page"), boolGauge(st.Page))
			p.Sample("spine_slo_alert", sloLabels(st.Name, "severity", "ticket"), boolGauge(st.Ticket))
		}
	}

	return p.Err()
}

func sloLabels(slo, name, value string) []telemetry.Label {
	return []telemetry.Label{{Name: "slo", Value: slo}, {Name: name, Value: value}}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Dash is the /debug/dash payload: the pipeline's health, the RED
// windows per series, and the SLO verdicts — a one-request operational
// dashboard.
type Dash struct {
	Time     time.Time        `json:"time"`
	Pipeline PipelineStats    `json:"pipeline"`
	Series   []SeriesSnapshot `json:"series,omitempty"`
	SLO      []SLOStatus      `json:"slo,omitempty"`
}

// BuildDash assembles the dashboard snapshot; nil-safe on every input.
func BuildDash(p *Pipeline, slo *SLO) Dash {
	return Dash{
		Time:     time.Now(),
		Pipeline: p.Stats(),
		Series:   p.RED().Snapshot(),
		SLO:      slo.Snapshot(),
	}
}
