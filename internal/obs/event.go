package obs

import (
	"context"
	"errors"
	"time"

	"github.com/spine-index/spine/internal/trace"
)

// Event types: one event per query, whatever shape the query takes.
const (
	// EventQuery is a single-pattern HTTP query (contains, find,
	// findall, count, approx, match).
	EventQuery = "query"
	// EventBatchItem is one item of a /batch request; BatchIndex is its
	// position, ParentSpanID the batch request's span.
	EventBatchItem = "batch_item"
	// EventShardLeg is one shard's share of a fan-out; Shard is the
	// shard number, ParentSpanID the enclosing query's span.
	EventShardLeg = "shard_leg"
)

// Event is the wide event: everything worth knowing about one query in
// one record, joinable against logs and the slow-query ring by request
// id and against distributed traces by the W3C ids. Node-counter fields
// inside Stages partition NodesChecked exactly (the internal/trace
// invariant), so the event stream sums to the same work totals the
// Prometheus families report.
type Event struct {
	Time time.Time `json:"time"`
	Type string    `json:"type"`
	// RequestID correlates every event, log line and slowlog entry of
	// one HTTP request.
	RequestID string `json:"requestId"`
	// TraceID/SpanID/ParentSpanID are W3C trace-context ids: TraceID is
	// shared across the whole distributed request, SpanID names this
	// event's span, ParentSpanID its parent (the client's span for a
	// query event, the query's span for batch items and shard legs).
	TraceID      string `json:"traceId"`
	SpanID       string `json:"spanId"`
	ParentSpanID string `json:"parentSpanId,omitempty"`
	Endpoint     string `json:"endpoint"`
	// Kind is the QueryOptions kind (contains|find|findall|count) or the
	// endpoint-specific operation (approx, match).
	Kind  string `json:"kind,omitempty"`
	Limit int    `json:"limit,omitempty"`
	// Shard is the shard number for shard-leg events, -1 otherwise.
	Shard int `json:"shard"`
	// BatchIndex is the item's position for batch-item events, -1
	// otherwise.
	BatchIndex int               `json:"batchIndex"`
	Pattern    trace.Fingerprint `json:"pattern"`
	// Source is the serving layer that answered: scan, cache or
	// negfilter (empty when unknown, e.g. a request that failed before
	// reaching the querier).
	Source string `json:"source,omitempty"`
	// Status is the HTTP status (query events only).
	Status int `json:"status,omitempty"`
	// Error is the stable error slug (the HTTP surface's code values);
	// empty on success.
	Error      string `json:"error,omitempty"`
	DurationUs int64  `json:"durationUs"`
	// NodesChecked is the query's §4.1 work total; the Nodes counters of
	// Stages sum to it when a stage breakdown is present.
	NodesChecked int64 `json:"nodesChecked"`
	ResultCount  int   `json:"resultCount"`
	Truncated    bool  `json:"truncated"`
	// Stages is the per-stage duration/counter breakdown summarized from
	// the query's trace; nil when the query was not traced.
	Stages []trace.StageSummary `json:"stages,omitempty"`
}

// Outcome is the handler-visible result summary stamped onto a QueryCtx
// once the querier answers.
type Outcome struct {
	Source       string
	NodesChecked int64
	ResultCount  int
	Truncated    bool
}

// errSlug classifies an engine error into the HTTP surface's stable
// code vocabulary for event records.
func errSlug(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "internal"
	}
}
