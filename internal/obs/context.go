package obs

import (
	"context"
	"time"

	"github.com/spine-index/spine/internal/trace"
)

// QueryCtx is one HTTP request's correlation identity plus the
// annotations its handler accumulates for the wide event. It travels by
// context through Querier → Cached → Sharded → batch, so every layer —
// including each shard leg's goroutine — can mint child spans off the
// same trace. A nil *QueryCtx is valid and every method no-ops, keeping
// un-instrumented paths (library use, tests) free.
//
// Identity fields are immutable after Begin. Annotation setters are
// called only from the handler goroutine before the deferred
// EmitQuery; shard legs read only identity and the pattern fingerprint,
// which the handler stamps before the fan-out starts, so the goroutine
// creation edge orders those reads.
type QueryCtx struct {
	pipe       *Pipeline
	endpoint   string
	requestID  string
	tp         TraceParent // this request's identity: trace id + server span
	parentSpan SpanID      // client's span from the ingested traceparent

	// Handler annotations.
	pattern  trace.Fingerprint
	kind     string
	limit    int
	outcome  Outcome
	errCode  string
	suppress bool
}

// Begin opens a request's correlation scope. incoming is the parsed
// traceparent (zero value when the client sent none or sent garbage):
// its trace id is adopted and its span id becomes the parent; otherwise
// a fresh trace starts. requestID is the sanitized X-Request-Id (or a
// freshly minted one). A nil pipeline returns nil — correlation off.
func Begin(pipe *Pipeline, endpoint, requestID string, incoming TraceParent) *QueryCtx {
	if pipe == nil {
		return nil
	}
	qc := &QueryCtx{pipe: pipe, endpoint: endpoint, requestID: requestID}
	if incoming.IsZero() {
		qc.tp = TraceParent{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	} else {
		qc.tp = TraceParent{TraceID: incoming.TraceID, SpanID: NewSpanID(), Flags: incoming.Flags | FlagSampled}
		qc.parentSpan = incoming.SpanID
	}
	return qc
}

type ctxKey struct{}

// NewContext returns a context carrying qc; a nil qc returns ctx
// unchanged.
func NewContext(ctx context.Context, qc *QueryCtx) context.Context {
	if qc == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, qc)
}

// FromContext returns the request's QueryCtx, or nil when correlation
// is off for this query.
func FromContext(ctx context.Context) *QueryCtx {
	qc, _ := ctx.Value(ctxKey{}).(*QueryCtx)
	return qc
}

// RequestID returns the request's correlation id ("" on nil).
func (qc *QueryCtx) RequestID() string {
	if qc == nil {
		return ""
	}
	return qc.requestID
}

// TraceParent returns the request's own trace identity — what the
// server echoes back to the client and what child spans parent on.
func (qc *QueryCtx) TraceParent() TraceParent {
	if qc == nil {
		return TraceParent{}
	}
	return qc.tp
}

// SetPattern stamps the query's pattern fingerprint. Call before the
// querier runs so shard legs can copy it.
func (qc *QueryCtx) SetPattern(fp trace.Fingerprint) {
	if qc == nil {
		return
	}
	qc.pattern = fp
}

// SetQuery annotates the query kind and (findall) limit.
func (qc *QueryCtx) SetQuery(kind string, limit int) {
	if qc == nil {
		return
	}
	qc.kind, qc.limit = kind, limit
}

// SetOutcome annotates the result summary once the querier answers.
func (qc *QueryCtx) SetOutcome(o Outcome) {
	if qc == nil {
		return
	}
	qc.outcome = o
}

// SetError annotates the stable error slug the response carried.
func (qc *QueryCtx) SetError(code string) {
	if qc == nil {
		return
	}
	qc.errCode = code
}

// SuppressQueryEvent marks the request as already covered by per-item
// events (the batch handler emits one event per item instead of one per
// request).
func (qc *QueryCtx) SuppressQueryEvent() {
	if qc == nil {
		return
	}
	qc.suppress = true
}

// EmitQuery builds and emits the request's wide event from the
// accumulated annotations. The middleware calls it once per completed
// query request; suppressed (batch) requests no-op.
func (qc *QueryCtx) EmitQuery(status int, start time.Time, elapsed time.Duration, stages []trace.StageSummary) {
	if qc == nil || qc.suppress {
		return
	}
	qc.pipe.Emit(Event{
		Time:         start,
		Type:         EventQuery,
		RequestID:    qc.requestID,
		TraceID:      qc.tp.TraceID.String(),
		SpanID:       qc.tp.SpanID.String(),
		ParentSpanID: spanOrEmpty(qc.parentSpan),
		Endpoint:     qc.endpoint,
		Kind:         qc.kind,
		Limit:        qc.limit,
		Shard:        -1,
		BatchIndex:   -1,
		Pattern:      qc.pattern,
		Source:       qc.outcome.Source,
		Status:       status,
		Error:        qc.errCode,
		DurationUs:   elapsed.Microseconds(),
		NodesChecked: qc.outcome.NodesChecked,
		ResultCount:  qc.outcome.ResultCount,
		Truncated:    qc.outcome.Truncated,
		Stages:       stages,
	})
}

// EmitBatchItem emits one batch item's event as a child span of the
// batch request. durUs is the item's amortized share of the engine
// time; errCode is the item's stable error slug ("" on success).
func (qc *QueryCtx) EmitBatchItem(index int, pattern trace.Fingerprint, limit int, out Outcome, errCode string, durUs int64) {
	if qc == nil {
		return
	}
	qc.pipe.Emit(Event{
		Time:         time.Now(),
		Type:         EventBatchItem,
		RequestID:    qc.requestID,
		TraceID:      qc.tp.TraceID.String(),
		SpanID:       NewSpanID().String(),
		ParentSpanID: qc.tp.SpanID.String(),
		Endpoint:     qc.endpoint,
		Kind:         "findall",
		Limit:        limit,
		Shard:        -1,
		BatchIndex:   index,
		Pattern:      pattern,
		Source:       out.Source,
		Error:        errCode,
		DurationUs:   durUs,
		NodesChecked: out.NodesChecked,
		ResultCount:  out.ResultCount,
		Truncated:    out.Truncated,
	})
}

// Leg is one shard's in-progress share of a fan-out. Its span id is the
// identity a future cross-process tier would propagate to the remote
// shard ("00-<trace>-<leg span>-<flags>").
type Leg struct {
	qc    *QueryCtx
	shard int
	span  SpanID
	start time.Time
}

// StartLeg opens a shard leg's span; nil-safe (returns nil when
// correlation is off, and a nil *Leg's End no-ops).
func (qc *QueryCtx) StartLeg(shard int) *Leg {
	if qc == nil {
		return nil
	}
	return &Leg{qc: qc, shard: shard, span: NewSpanID(), start: time.Now()}
}

// TraceParent returns the leg's outgoing trace identity for
// cross-process propagation.
func (l *Leg) TraceParent() TraceParent {
	if l == nil {
		return TraceParent{}
	}
	return TraceParent{TraceID: l.qc.tp.TraceID, SpanID: l.span, Flags: l.qc.tp.Flags}
}

// End emits the shard-leg event: the leg's wall time, its share of the
// work, and — when the query is traced — its stage breakdown.
func (l *Leg) End(nodes int64, resultCount int, err error, stages []trace.StageSummary) {
	if l == nil {
		return
	}
	qc := l.qc
	qc.pipe.Emit(Event{
		Time:         l.start,
		Type:         EventShardLeg,
		RequestID:    qc.requestID,
		TraceID:      qc.tp.TraceID.String(),
		SpanID:       l.span.String(),
		ParentSpanID: qc.tp.SpanID.String(),
		Endpoint:     qc.endpoint,
		Kind:         qc.kind,
		Shard:        l.shard,
		BatchIndex:   -1,
		Pattern:      qc.pattern,
		Error:        errSlug(err),
		DurationUs:   time.Since(l.start).Microseconds(),
		NodesChecked: nodes,
		ResultCount:  resultCount,
		Stages:       stages,
	})
}

func spanOrEmpty(s SpanID) string {
	if s.IsZero() {
		return ""
	}
	return s.String()
}
