package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestJSONLSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	sink, err := OpenJSONLSink(path)
	if err != nil {
		t.Fatal(err)
	}
	evs := []Event{
		{Type: EventQuery, RequestID: "r1", Endpoint: "contains", Shard: -1, BatchIndex: -1},
		{Type: EventShardLeg, RequestID: "r1", Endpoint: "contains", Shard: 2, BatchIndex: -1},
	}
	if err := sink.Export(evs); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var got Event
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines+1, err)
		}
		if got.RequestID != "r1" {
			t.Fatalf("line %d request id %q", lines+1, got.RequestID)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}

func TestHTTPSinkPostsBatch(t *testing.T) {
	var got atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var evs []Event
		if err := json.NewDecoder(r.Body).Decode(&evs); err != nil {
			t.Errorf("bad body: %v", err)
		}
		got.Add(int64(len(evs)))
	}))
	defer srv.Close()
	sink := NewHTTPSink(srv.URL, srv.Client(), 0, time.Millisecond)
	if err := sink.Export([]Event{{Type: EventQuery}, {Type: EventQuery}}); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 2 {
		t.Fatalf("collector received %d events, want 2", got.Load())
	}
	if sink.Retries() != 0 {
		t.Fatalf("retries %d, want 0", sink.Retries())
	}
}

func TestHTTPSinkRetriesServerErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer srv.Close()
	sink := NewHTTPSink(srv.URL, srv.Client(), 2, time.Millisecond)
	if err := sink.Export([]Event{{Type: EventQuery}}); err != nil {
		t.Fatalf("export should succeed on third attempt: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d calls, want 3", calls.Load())
	}
	if sink.Retries() != 2 {
		t.Fatalf("retries %d, want 2", sink.Retries())
	}
}

func TestHTTPSinkGivesUpAfterRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()
	sink := NewHTTPSink(srv.URL, srv.Client(), 1, time.Millisecond)
	if err := sink.Export([]Event{{Type: EventQuery}}); err == nil {
		t.Fatal("export should fail after exhausting retries")
	}
}

func TestHTTPSinkNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer srv.Close()
	sink := NewHTTPSink(srv.URL, srv.Client(), 3, time.Millisecond)
	if err := sink.Export([]Event{{Type: EventQuery}}); err == nil {
		t.Fatal("4xx should be an error")
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls for a 4xx, want 1 (no retry)", calls.Load())
	}
}
