package obs

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Sink receives exported event batches. Export runs on the pipeline's
// single export goroutine and may block (disk, network, retries) — the
// pipeline absorbs that in its buffer and drops on overflow, so a slow
// sink never stalls the query path.
type Sink interface {
	Export(events []Event) error
	Close() error
}

// retryStatser is the optional sink capability reporting transport
// retries, folded into PipelineStats.
type retryStatser interface{ Retries() int64 }

// Config tunes a Pipeline.
type Config struct {
	// Buffer is the event queue capacity; once full, new events are
	// dropped (and counted) rather than blocking the emitter. <= 0
	// picks 4096.
	Buffer int
	// BatchSize is the largest batch handed to sinks; <= 0 picks 128.
	BatchSize int
	// FlushInterval bounds how long a non-full batch waits; <= 0 picks
	// one second.
	FlushInterval time.Duration
	// RED, when set, is updated synchronously on Emit for query and
	// batch-item events (a few atomic-cheap bucket updates), so the
	// /debug/dash rollups and SLO math stay exact even when the export
	// buffer overflows and drops events.
	RED *RED
}

func (c Config) withDefaults() Config {
	if c.Buffer <= 0 {
		c.Buffer = 4096
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 128
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = time.Second
	}
	return c
}

// Pipeline is the bounded async exporter: Emit enqueues without ever
// blocking (dropping and counting on overflow), a single background
// goroutine batches events out to the sinks. A nil *Pipeline is valid
// and inert, so callers thread one unconditionally.
type Pipeline struct {
	cfg   Config
	sinks []Sink
	red   *RED

	ch     chan Event
	flushc chan chan struct{}
	quit   chan struct{}
	done   chan struct{}

	emittedQuery atomic.Int64
	emittedItem  atomic.Int64
	emittedLeg   atomic.Int64
	dropped      atomic.Int64
	exported     atomic.Int64
	exportErrors atomic.Int64
}

// NewPipeline starts a pipeline exporting to sinks (zero sinks is fine:
// the pipeline still feeds the RED rollup and counts events).
func NewPipeline(cfg Config, sinks ...Sink) *Pipeline {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:    cfg,
		sinks:  sinks,
		red:    cfg.RED,
		ch:     make(chan Event, cfg.Buffer),
		flushc: make(chan chan struct{}),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go p.run()
	return p
}

// Emit records one event: the RED rollup updates synchronously, then
// the event is enqueued for export without blocking — a full queue
// increments the dropped counter instead. Nil-safe.
func (p *Pipeline) Emit(e Event) {
	if p == nil {
		return
	}
	switch e.Type {
	case EventQuery:
		p.emittedQuery.Add(1)
	case EventBatchItem:
		p.emittedItem.Add(1)
	case EventShardLeg:
		p.emittedLeg.Add(1)
	}
	if p.red != nil && e.Type != EventShardLeg {
		// Shard legs are sub-spans of a query already counted once;
		// folding them in would multiply the request rate by the shard
		// count.
		p.red.Observe(e)
	}
	select {
	case p.ch <- e:
	default:
		p.dropped.Add(1)
	}
}

func (p *Pipeline) run() {
	defer close(p.done)
	ticker := time.NewTicker(p.cfg.FlushInterval)
	defer ticker.Stop()
	batch := make([]Event, 0, p.cfg.BatchSize)
	drain := func() {
		for {
			select {
			case e := <-p.ch:
				batch = append(batch, e)
				if len(batch) >= p.cfg.BatchSize {
					batch = p.export(batch)
				}
			default:
				return
			}
		}
	}
	for {
		select {
		case e := <-p.ch:
			batch = append(batch, e)
			if len(batch) >= p.cfg.BatchSize {
				batch = p.export(batch)
			}
		case <-ticker.C:
			batch = p.export(batch)
		case ack := <-p.flushc:
			drain()
			batch = p.export(batch)
			close(ack)
		case <-p.quit:
			drain()
			p.export(batch)
			for _, s := range p.sinks {
				if err := s.Close(); err != nil {
					p.exportErrors.Add(1)
				}
			}
			return
		}
	}
}

// export hands the batch to every sink and returns the reset batch.
// Sink errors are counted, not propagated: export is fire-and-forget
// by design, and each sink does its own retrying.
func (p *Pipeline) export(batch []Event) []Event {
	if len(batch) == 0 {
		return batch
	}
	for _, s := range p.sinks {
		if err := s.Export(batch); err != nil {
			p.exportErrors.Add(1)
		}
	}
	p.exported.Add(int64(len(batch)))
	return batch[:0]
}

// Flush drains everything enqueued so far through the sinks. It blocks
// (control path, not query path) until the worker acknowledges or ctx
// ends.
func (p *Pipeline) Flush(ctx context.Context) error {
	if p == nil {
		return nil
	}
	ack := make(chan struct{})
	select {
	case p.flushc <- ack:
	case <-p.done:
		return fmt.Errorf("obs: pipeline closed")
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-ack:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains the queue, exports the final batch, closes the sinks and
// stops the worker. Emit after Close still counts (and drops once the
// queue fills) but exports nothing.
func (p *Pipeline) Close(ctx context.Context) error {
	if p == nil {
		return nil
	}
	select {
	case <-p.done:
		return nil
	default:
	}
	close(p.quit)
	select {
	case <-p.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// PipelineStats is the exporter's own health: how many events each type
// emitted, how many were dropped under backpressure (the explicit
// "exporter fell behind" signal), how many reached the sinks.
type PipelineStats struct {
	Enabled           bool  `json:"enabled"`
	EmittedQuery      int64 `json:"emittedQuery"`
	EmittedBatchItems int64 `json:"emittedBatchItems"`
	EmittedShardLegs  int64 `json:"emittedShardLegs"`
	Dropped           int64 `json:"dropped"`
	Exported          int64 `json:"exported"`
	ExportErrors      int64 `json:"exportErrors"`
	ExportRetries     int64 `json:"exportRetries"`
	QueueDepth        int   `json:"queueDepth"`
}

// Stats snapshots the pipeline's counters; a nil pipeline reports
// Enabled=false zeros.
func (p *Pipeline) Stats() PipelineStats {
	if p == nil {
		return PipelineStats{}
	}
	st := PipelineStats{
		Enabled:           true,
		EmittedQuery:      p.emittedQuery.Load(),
		EmittedBatchItems: p.emittedItem.Load(),
		EmittedShardLegs:  p.emittedLeg.Load(),
		Dropped:           p.dropped.Load(),
		Exported:          p.exported.Load(),
		ExportErrors:      p.exportErrors.Load(),
		QueueDepth:        len(p.ch),
	}
	for _, s := range p.sinks {
		if rs, ok := s.(retryStatser); ok {
			st.ExportRetries += rs.Retries()
		}
	}
	return st
}

// RED returns the pipeline's rollup (nil when not configured).
func (p *Pipeline) RED() *RED {
	if p == nil {
		return nil
	}
	return p.red
}
