package obs

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/spine-index/spine/internal/trace"
)

func testEvent(typ string) Event {
	return Event{Type: typ, Endpoint: "contains", Kind: "contains", DurationUs: 10}
}

func TestPipelineExportsAndCounts(t *testing.T) {
	sink := NewCollectorSink()
	p := NewPipeline(Config{Buffer: 64, BatchSize: 8}, sink)
	for i := 0; i < 20; i++ {
		p.Emit(testEvent(EventQuery))
	}
	p.Emit(testEvent(EventBatchItem))
	p.Emit(testEvent(EventShardLeg))
	if err := p.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := len(sink.Events()); got != 22 {
		t.Fatalf("exported %d events, want 22", got)
	}
	st := p.Stats()
	if st.EmittedQuery != 20 || st.EmittedBatchItems != 1 || st.EmittedShardLegs != 1 {
		t.Fatalf("emit counters: %+v", st)
	}
	if st.Dropped != 0 || st.Exported != 22 {
		t.Fatalf("dropped=%d exported=%d, want 0/22", st.Dropped, st.Exported)
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if !sink.Closed() {
		t.Fatal("sink not closed")
	}
}

// TestPipelineNeverBlocks is the acceptance-criteria test: a sink stuck
// forever must not stall Emit; overflow surfaces as the dropped
// counter. Run under -race by make race / the CI obs-smoke job.
func TestPipelineNeverBlocks(t *testing.T) {
	sink := NewBlockingSink()
	p := NewPipeline(Config{Buffer: 4, BatchSize: 1, FlushInterval: time.Millisecond}, sink)
	defer func() {
		sink.Release()
		p.Close(context.Background())
	}()

	const emitters, perEmitter = 8, 200
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				p.Emit(testEvent(EventQuery))
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a stuck sink")
	}
	st := p.Stats()
	if st.EmittedQuery != emitters*perEmitter {
		t.Fatalf("emitted %d, want %d", st.EmittedQuery, emitters*perEmitter)
	}
	if st.Dropped == 0 {
		t.Fatal("expected dropped events with a blocked sink and a 4-slot buffer")
	}
}

func TestPipelineCloseDrains(t *testing.T) {
	sink := NewCollectorSink()
	p := NewPipeline(Config{Buffer: 128, BatchSize: 64, FlushInterval: time.Hour}, sink)
	for i := 0; i < 10; i++ {
		p.Emit(testEvent(EventQuery))
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := len(sink.Events()); got != 10 {
		t.Fatalf("close exported %d events, want 10", got)
	}
	// Idempotent.
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestPipelineFeedsRED(t *testing.T) {
	red := NewRED(time.Millisecond)
	p := NewPipeline(Config{Buffer: 1, RED: red}) // tiny buffer: drops must not affect RED
	defer p.Close(context.Background())
	for i := 0; i < 50; i++ {
		p.Emit(Event{Type: EventQuery, Endpoint: "contains", Kind: "contains", DurationUs: 5})
	}
	p.Emit(Event{Type: EventShardLeg, Endpoint: "contains", Kind: "contains", Shard: 0, DurationUs: 5})
	w := red.Window("", "", time.Minute)
	if w.Count != 50 {
		t.Fatalf("RED total count %d, want 50 (shard legs excluded, drops included)", w.Count)
	}
}

func TestNilPipelineSafe(t *testing.T) {
	var p *Pipeline
	p.Emit(testEvent(EventQuery))
	if err := p.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Enabled {
		t.Fatal("nil pipeline reports enabled")
	}
	if p.RED() != nil {
		t.Fatal("nil pipeline returned a RED")
	}
}

func TestQueryCtxNilSafe(t *testing.T) {
	var qc *QueryCtx
	qc.SetPattern(trace.FingerprintOf([]byte("abc")))
	qc.SetQuery("contains", 0)
	qc.SetOutcome(Outcome{})
	qc.SetError("internal")
	qc.SuppressQueryEvent()
	qc.EmitQuery(200, time.Time{}, 0, nil)
	qc.EmitBatchItem(0, trace.FingerprintOf([]byte("abc")), 0, Outcome{}, "", 0)
	if qc.RequestID() != "" || !qc.TraceParent().IsZero() {
		t.Fatal("nil QueryCtx leaked identity")
	}
	leg := qc.StartLeg(0)
	if leg != nil {
		t.Fatal("nil QueryCtx produced a leg")
	}
	leg.End(0, 0, nil, nil)
	if !leg.TraceParent().IsZero() {
		t.Fatal("nil leg has identity")
	}
	if Begin(nil, "contains", "id", TraceParent{}) != nil {
		t.Fatal("Begin with nil pipeline should return nil")
	}
}

func TestBeginAdoptsIncomingTrace(t *testing.T) {
	p := NewPipeline(Config{})
	defer p.Close(context.Background())
	in, _ := ParseTraceParent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	qc := Begin(p, "contains", "req1", in)
	tp := qc.TraceParent()
	if tp.TraceID != in.TraceID {
		t.Fatal("did not adopt incoming trace id")
	}
	if tp.SpanID == in.SpanID || tp.SpanID.IsZero() {
		t.Fatal("server span must be fresh")
	}
	if tp.Flags&FlagSampled == 0 {
		t.Fatal("sampled flag not set")
	}

	fresh := Begin(p, "contains", "req2", TraceParent{})
	if fresh.TraceParent().IsZero() {
		t.Fatal("no fresh trace minted")
	}
}

func TestLegEventParentage(t *testing.T) {
	sink := NewCollectorSink()
	p := NewPipeline(Config{}, sink)
	defer p.Close(context.Background())
	qc := Begin(p, "findall", "req1", TraceParent{})
	qc.SetQuery("findall", 10)
	leg := qc.StartLeg(3)
	outgoing := leg.TraceParent()
	if outgoing.TraceID != qc.TraceParent().TraceID {
		t.Fatal("leg must share the request's trace id")
	}
	leg.End(42, 7, nil, nil)
	qc.SetOutcome(Outcome{Source: "scan", NodesChecked: 42, ResultCount: 7})
	qc.EmitQuery(200, time.Now(), time.Millisecond, nil)
	if err := p.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	evs := sink.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	legEv, qEv := evs[0], evs[1]
	if legEv.Type != EventShardLeg || qEv.Type != EventQuery {
		t.Fatalf("event order/types: %s, %s", legEv.Type, qEv.Type)
	}
	if legEv.TraceID != qEv.TraceID {
		t.Fatal("trace ids differ between leg and query")
	}
	if legEv.ParentSpanID != qEv.SpanID {
		t.Fatalf("leg parent %q != query span %q", legEv.ParentSpanID, qEv.SpanID)
	}
	if legEv.SpanID != outgoing.SpanID.String() {
		t.Fatal("leg span id differs from its outgoing traceparent")
	}
	if legEv.Shard != 3 || legEv.NodesChecked != 42 || legEv.ResultCount != 7 {
		t.Fatalf("leg payload: %+v", legEv)
	}
	if qEv.RequestID != "req1" || legEv.RequestID != "req1" {
		t.Fatal("request id not stamped on both events")
	}
}
