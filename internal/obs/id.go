// Package obs is the wide-event observability pipeline of the serving
// layer. Where internal/telemetry aggregates populations and
// internal/trace explains one query's stages in-process, obs answers
// "what happened to THIS query" across processes: every query — a
// single request, one item of a batch, one shard leg of a fan-out —
// emits exactly one structured Event carrying the request id, W3C
// trace-context ids, the pattern fingerprint, the cache/negative-filter
// outcome, per-stage durations and node counters lifted from the
// query's trace, and the result shape. Events flow through a bounded,
// non-blocking Pipeline to pluggable sinks (JSONL file, HTTP batch
// export); backpressure surfaces as a dropped-events counter, never as
// latency on the query path. On top of the event stream a
// multi-resolution RED rollup (rate/errors/duration at 1s/10s/1m)
// powers the /debug/dash endpoint and the SLO burn-rate engine.
package obs

import (
	"math/rand/v2"
	"strings"
)

// TraceID is the 16-byte W3C trace-context trace id shared by every
// span of one distributed request.
type TraceID [16]byte

// SpanID is the 8-byte W3C trace-context span (parent) id.
type SpanID [8]byte

const hexDigits = "0123456789abcdef"

func appendHex(dst []byte, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, hexDigits[b>>4], hexDigits[b&0x0f])
	}
	return dst
}

// IsZero reports the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return string(appendHex(make([]byte, 0, 32), t[:])) }

// IsZero reports the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return string(appendHex(make([]byte, 0, 16), s[:])) }

// NewTraceID returns a fresh non-zero trace id. Ids come from
// math/rand/v2's process-wide ChaCha8 generator (securely seeded,
// goroutine-safe, no syscall per id), which is collision-resistant
// enough for correlation without paying crypto/rand on the query path.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		putUint64(t[:8], rand.Uint64())
		putUint64(t[8:], rand.Uint64())
	}
	return t
}

// NewSpanID returns a fresh non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		putUint64(s[:], rand.Uint64())
	}
	return s
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// FlagSampled is the trace-flags bit requesting downstream recording.
const FlagSampled byte = 0x01

// TraceParent is a parsed W3C traceparent header: the propagation
// contract every spineserve hop honors, and the one a future
// cross-process shard fan-out inherits (each outgoing leg sends
// "00-<TraceID>-<leg SpanID>-<flags>" so the remote shard's events
// parent correctly).
type TraceParent struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// IsZero reports an unset traceparent.
func (tp TraceParent) IsZero() bool { return tp.TraceID.IsZero() }

// Header renders the version-00 header value.
func (tp TraceParent) Header() string {
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = appendHex(b, tp.TraceID[:])
	b = append(b, '-')
	b = appendHex(b, tp.SpanID[:])
	b = append(b, '-')
	b = appendHex(b, []byte{tp.Flags})
	return string(b)
}

// ParseTraceParent parses a traceparent header value per the W3C
// trace-context spec: version "00" (higher versions are accepted by
// reading their first four fields, per the spec's forward-compatibility
// rule), 32-hex trace id, 16-hex span id, 2-hex flags, all lowercase,
// ids non-zero. Malformed headers report ok=false and the caller starts
// a fresh trace rather than failing the request.
func ParseTraceParent(h string) (tp TraceParent, ok bool) {
	h = strings.TrimSpace(h)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceParent{}, false
	}
	version, ok := hexField(h[0:2])
	if !ok || len(version) != 1 || version[0] == 0xff {
		return TraceParent{}, false
	}
	if version[0] == 0 && len(h) != 55 {
		return TraceParent{}, false
	}
	if version[0] > 0 && len(h) > 55 && h[55] != '-' {
		return TraceParent{}, false
	}
	tid, ok1 := hexField(h[3:35])
	sid, ok2 := hexField(h[36:52])
	flags, ok3 := hexField(h[53:55])
	if !ok1 || !ok2 || !ok3 {
		return TraceParent{}, false
	}
	copy(tp.TraceID[:], tid)
	copy(tp.SpanID[:], sid)
	tp.Flags = flags[0]
	if tp.TraceID.IsZero() || tp.SpanID.IsZero() {
		return TraceParent{}, false
	}
	return tp, true
}

// hexField decodes an even-length lowercase-hex string (uppercase is
// rejected, per the traceparent ABNF).
func hexField(s string) ([]byte, bool) {
	if len(s)%2 != 0 {
		return nil, false
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(s); i++ {
		var v byte
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			v = c - '0'
		case c >= 'a' && c <= 'f':
			v = c - 'a' + 10
		default:
			return nil, false
		}
		if i%2 == 0 {
			out[i/2] = v << 4
		} else {
			out[i/2] |= v
		}
	}
	return out, true
}

// NewRequestID returns a fresh 16-hex-digit request id.
func NewRequestID() string {
	var b [8]byte
	putUint64(b[:], rand.Uint64())
	return string(appendHex(make([]byte, 0, 16), b[:]))
}

// maxRequestIDLen bounds ingested request ids so a hostile header
// cannot bloat every event and log line.
const maxRequestIDLen = 128

// SanitizeRequestID validates a client-supplied X-Request-Id: printable
// ASCII without spaces or quotes, at most 128 bytes. Anything else
// reports ok=false and the server mints its own id.
func SanitizeRequestID(s string) (string, bool) {
	if s == "" || len(s) > maxRequestIDLen {
		return "", false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return "", false
		}
	}
	return s, true
}
