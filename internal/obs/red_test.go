package obs

import (
	"testing"
	"time"
)

// fakeClock pins the RED rollup's clock for deterministic windows.
func fakeClock(r *RED, at *time.Time) {
	r.now = func() time.Time { return *at }
}

func TestREDWindowMath(t *testing.T) {
	red := NewRED(10 * time.Millisecond)
	now := time.Unix(1_000_000, 0)
	fakeClock(red, &now)

	for i := 0; i < 10; i++ {
		red.Observe(Event{Type: EventQuery, Endpoint: "contains", Kind: "contains", DurationUs: 100, Status: 200})
	}
	red.Observe(Event{Type: EventQuery, Endpoint: "contains", Kind: "contains", DurationUs: 100, Status: 500})
	// 20ms > the 10ms slow threshold.
	red.Observe(Event{Type: EventQuery, Endpoint: "find", Kind: "find", DurationUs: 20_000, Status: 200})

	total := red.Window("", "", time.Minute)
	if total.Count != 12 || total.Errors != 1 || total.Slow != 1 {
		t.Fatalf("total window: %+v", total)
	}
	per := red.Window("contains", "contains", time.Minute)
	if per.Count != 11 || per.Errors != 1 || per.Slow != 0 {
		t.Fatalf("contains window: %+v", per)
	}
	if per.MeanUs() != 100 {
		t.Fatalf("mean %d, want 100", per.MeanUs())
	}
	if w := red.Window("find", "find", time.Minute); w.DurationMaxUs != 20_000 {
		t.Fatalf("max duration %d", w.DurationMaxUs)
	}
	if w := red.Window("nosuch", "x", time.Minute); w.Count != 0 {
		t.Fatalf("unknown series non-empty: %+v", w)
	}
}

func TestREDWindowExpiry(t *testing.T) {
	red := NewRED(0)
	now := time.Unix(2_000_000, 0)
	fakeClock(red, &now)
	red.Observe(Event{Type: EventQuery, Endpoint: "contains", Kind: "contains", DurationUs: 1, Status: 200})

	// Within the 1s ring's 5m range.
	now = now.Add(2 * time.Minute)
	if w := red.Window("", "", 5*time.Minute); w.Count != 1 {
		t.Fatalf("5m window after 2m: %+v", w)
	}
	// Outside 5m but inside the 1m ring's 6h range.
	now = now.Add(30 * time.Minute)
	if w := red.Window("", "", 5*time.Minute); w.Count != 0 {
		t.Fatalf("5m window after 32m: %+v", w)
	}
	if w := red.Window("", "", 6*time.Hour); w.Count != 1 {
		t.Fatalf("6h window after 32m: %+v", w)
	}
	// Ring wrap: past 6h everything is gone.
	now = now.Add(7 * time.Hour)
	if w := red.Window("", "", 6*time.Hour); w.Count != 0 {
		t.Fatalf("6h window after 7h: %+v", w)
	}
}

func TestREDBucketReuseOnWrap(t *testing.T) {
	red := NewRED(0)
	now := time.Unix(3_000_000, 0)
	fakeClock(red, &now)
	red.Observe(Event{Type: EventQuery, Endpoint: "c", Kind: "c", DurationUs: 1, Status: 200})
	// Land in the same 1s bucket slot one full ring later (300s); the
	// stale bucket must be reset, not accumulated.
	now = now.Add(300 * time.Second)
	red.Observe(Event{Type: EventQuery, Endpoint: "c", Kind: "c", DurationUs: 1, Status: 200})
	if w := red.Window("", "", 10*time.Second); w.Count != 1 {
		t.Fatalf("wrapped bucket window: %+v", w)
	}
}

func TestREDErrorClassification(t *testing.T) {
	cases := []struct {
		ev    Event
		isErr bool
	}{
		{Event{Status: 200}, false},
		{Event{Status: 404}, false},
		{Event{Status: 500}, true},
		{Event{Status: 503}, true},
		// Statusless batch items classify by slug.
		{Event{Error: ""}, false},
		{Event{Error: "bad_request"}, false},
		{Event{Error: "pattern_too_long"}, false},
		{Event{Error: "canceled"}, false},
		{Event{Error: "timeout"}, true},
		{Event{Error: "internal"}, true},
	}
	for _, c := range cases {
		red := NewRED(0)
		now := time.Unix(4_000_000, 0)
		fakeClock(red, &now)
		c.ev.Type = EventQuery
		c.ev.Endpoint = "e"
		red.Observe(c.ev)
		w := red.Window("", "", time.Minute)
		if gotErr := w.Errors == 1; gotErr != c.isErr {
			t.Errorf("event %+v: error=%v, want %v", c.ev, gotErr, c.isErr)
		}
	}
}

func TestREDSnapshotShape(t *testing.T) {
	red := NewRED(0)
	now := time.Unix(5_000_000, 0)
	fakeClock(red, &now)
	red.Observe(Event{Type: EventQuery, Endpoint: "find", Kind: "find", DurationUs: 1, Status: 200})
	red.Observe(Event{Type: EventQuery, Endpoint: "contains", Kind: "contains", DurationUs: 1, Status: 200})
	snap := red.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d series, want 3 (total + 2)", len(snap))
	}
	if snap[0].Endpoint != "_total" {
		t.Fatalf("first series %q, want _total", snap[0].Endpoint)
	}
	if snap[1].Endpoint != "contains" || snap[2].Endpoint != "find" {
		t.Fatalf("series order: %q, %q", snap[1].Endpoint, snap[2].Endpoint)
	}
	ws, ok := snap[0].Windows["1m"]
	if !ok || ws.Count != 2 {
		t.Fatalf("total 1m window: %+v ok=%v", ws, ok)
	}
}
