package obs

import (
	"strings"
	"testing"
)

func TestIDGeneration(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatal("generated a zero id")
		}
		if len(tid.String()) != 32 || len(sid.String()) != 16 {
			t.Fatalf("bad id lengths: %q %q", tid, sid)
		}
		if seen[tid.String()] {
			t.Fatalf("trace id collision in 100 draws: %s", tid)
		}
		seen[tid.String()] = true
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tp := TraceParent{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: FlagSampled}
	h := tp.Header()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") {
		t.Fatalf("bad header %q", h)
	}
	got, ok := ParseTraceParent(h)
	if !ok || got != tp {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, tp)
	}
}

func TestParseTraceParent(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"valid", valid, true},
		{"valid with whitespace", "  " + valid + " ", true},
		{"future version extra field", "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", true},
		{"empty", "", false},
		{"short", valid[:54], false},
		{"version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false},
		{"version 00 trailing field", valid + "-extra", false},
		{"future version no dash before extra", "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x", false},
		{"uppercase hex", "00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01", false},
		{"zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01", false},
		{"zero span id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", false},
		{"wrong delimiter", "00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false},
		{"non-hex", "00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01", false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tp, ok := ParseTraceParent(c.in)
			if ok != c.ok {
				t.Fatalf("ParseTraceParent(%q) ok=%v, want %v", c.in, ok, c.ok)
			}
			if ok && tp.IsZero() {
				t.Fatalf("ParseTraceParent(%q) accepted but returned zero value", c.in)
			}
		})
	}
}

func TestParseTraceParentFields(t *testing.T) {
	tp, ok := ParseTraceParent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !ok {
		t.Fatal("parse failed")
	}
	if got := tp.TraceID.String(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id %q", got)
	}
	if got := tp.SpanID.String(); got != "b7ad6b7169203331" {
		t.Fatalf("span id %q", got)
	}
	if tp.Flags != FlagSampled {
		t.Fatalf("flags %#x", tp.Flags)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	if got, ok := SanitizeRequestID("req-abc_123/XY.Z"); !ok || got != "req-abc_123/XY.Z" {
		t.Fatalf("rejected benign id: %q %v", got, ok)
	}
	for _, bad := range []string{
		"", "has space", "has\"quote", `has\backslash`, "has\nnewline", "ütf8",
		strings.Repeat("x", maxRequestIDLen+1),
	} {
		if _, ok := SanitizeRequestID(bad); ok {
			t.Fatalf("accepted %q", bad)
		}
	}
	if got := NewRequestID(); len(got) != 16 {
		t.Fatalf("NewRequestID() = %q, want 16 hex chars", got)
	}
}
