package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// JSONLSink writes one JSON object per line — the grep/jq-friendly
// export format the CI obs-smoke job validates. Safe for the pipeline's
// single export goroutine plus concurrent Stats readers.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONLSink wraps an arbitrary writer (closed on pipeline Close when
// it implements io.Closer).
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// OpenJSONLSink creates (or truncates) path and returns a sink over it.
func OpenJSONLSink(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f), nil
}

// Export appends each event as one JSON line and flushes the batch.
func (s *JSONLSink) Export(events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	enc := json.NewEncoder(s.w)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			s.err = err
			return err
		}
	}
	if err := s.w.Flush(); err != nil {
		s.err = err
		return err
	}
	return nil
}

// Close flushes and closes the underlying writer.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.w.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); cerr != nil {
			return cerr
		}
	}
	return ferr
}

// HTTPSink POSTs event batches as a JSON array to a collector endpoint
// (OTLP-style shape: one request per batch). Failed posts retry with
// exponential backoff; retries happen on the pipeline's export
// goroutine, where blocking is safe — the pipeline's bounded queue is
// what shields the query path.
type HTTPSink struct {
	url     string
	client  *http.Client
	retries int
	backoff time.Duration
	retried atomic.Int64
}

// NewHTTPSink builds a sink for url. retries is the number of re-sends
// after the first attempt (default 2 when < 0); backoff is the initial
// retry delay, doubling per attempt (default 100ms when <= 0).
func NewHTTPSink(url string, client *http.Client, retries int, backoff time.Duration) *HTTPSink {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	if retries < 0 {
		retries = 2
	}
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	return &HTTPSink{url: url, client: client, retries: retries, backoff: backoff}
}

// Export posts the batch, retrying transport errors and 5xx responses.
func (s *HTTPSink) Export(events []Event) error {
	body, err := json.Marshal(events)
	if err != nil {
		return err
	}
	delay := s.backoff
	var lastErr error
	for attempt := 0; attempt <= s.retries; attempt++ {
		if attempt > 0 {
			s.retried.Add(1)
			time.Sleep(delay)
			delay *= 2
		}
		resp, err := s.client.Post(s.url, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode < 500 {
			if resp.StatusCode >= 400 {
				// Client error: the payload won't get better; don't retry.
				return fmt.Errorf("obs: collector rejected batch: %s", resp.Status)
			}
			return nil
		}
		lastErr = fmt.Errorf("obs: collector returned %s", resp.Status)
	}
	return lastErr
}

// Retries reports total re-send attempts (the retryStatser capability).
func (s *HTTPSink) Retries() int64 { return s.retried.Load() }

// Close is a no-op; the sink holds no resources beyond the client.
func (s *HTTPSink) Close() error { return nil }

// CollectorSink buffers exported events in memory for tests.
type CollectorSink struct {
	mu     sync.Mutex
	events []Event
	closed bool
}

// NewCollectorSink returns an empty in-memory sink.
func NewCollectorSink() *CollectorSink { return &CollectorSink{} }

// Export appends the batch.
func (s *CollectorSink) Export(events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, events...)
	return nil
}

// Close marks the sink closed.
func (s *CollectorSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Events returns a copy of everything exported so far.
func (s *CollectorSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Closed reports whether the pipeline closed the sink.
func (s *CollectorSink) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// BlockingSink blocks every Export until released — the test double for
// proving the query path never waits on a slow collector.
type BlockingSink struct {
	release chan struct{}
	once    sync.Once
	batches atomic.Int64
}

// NewBlockingSink returns a sink whose Export blocks until Release.
func NewBlockingSink() *BlockingSink {
	return &BlockingSink{release: make(chan struct{})}
}

// Export blocks until Release, then succeeds.
func (s *BlockingSink) Export(events []Event) error {
	<-s.release
	s.batches.Add(1)
	return nil
}

// Release unblocks all current and future Exports.
func (s *BlockingSink) Release() { s.once.Do(func() { close(s.release) }) }

// Batches reports how many batches completed after release.
func (s *BlockingSink) Batches() int64 { return s.batches.Load() }

// Close releases any blocked export.
func (s *BlockingSink) Close() error {
	s.Release()
	return nil
}
