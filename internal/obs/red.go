package obs

import (
	"sort"
	"sync"
	"time"
)

// The RED rollup keeps rate/errors/duration per endpoint×kind in three
// ring-buffered resolutions. Each ring trades range for grain:
//
//	1s  × 300 buckets → last 5 minutes   (fast burn windows)
//	10s × 360 buckets → last hour        (1h burn window)
//	1m  × 360 buckets → last 6 hours     (slow burn window)
//
// Observations are O(resolutions) atomic-cheap bucket updates under one
// mutex; reads aggregate whichever ring covers the asked window at the
// finest grain. Slowness (for the latency SLO) is stamped at observe
// time against the configured threshold so a later threshold change
// doesn't rewrite history.

// redResolutions defines the rings, finest first.
var redResolutions = []struct {
	width   time.Duration
	buckets int
}{
	{time.Second, 300},
	{10 * time.Second, 360},
	{time.Minute, 360},
}

// redBucket accumulates one time slot of one series.
type redBucket struct {
	start    int64 // unix seconds, aligned to the ring width; 0 = empty
	count    int64
	errors   int64
	slow     int64
	durUs    int64
	durMaxUs int64
}

type redRing struct {
	width   time.Duration
	buckets []redBucket
}

func (r *redRing) observe(now time.Time, durUs int64, isErr, isSlow bool) {
	w := int64(r.width / time.Second)
	start := now.Unix() / w * w
	b := &r.buckets[int(start/w)%len(r.buckets)]
	if b.start != start {
		*b = redBucket{start: start}
	}
	b.count++
	if isErr {
		b.errors++
	}
	if isSlow {
		b.slow++
	}
	b.durUs += durUs
	if durUs > b.durMaxUs {
		b.durMaxUs = durUs
	}
}

// window sums the buckets covering [now-d, now).
func (r *redRing) window(now time.Time, d time.Duration) WindowStats {
	w := int64(r.width / time.Second)
	lo := now.Add(-d).Unix() / w * w
	hi := now.Unix()
	var ws WindowStats
	for i := range r.buckets {
		b := &r.buckets[i]
		if b.start == 0 || b.start < lo || b.start > hi {
			continue
		}
		ws.Count += b.count
		ws.Errors += b.errors
		ws.Slow += b.slow
		ws.DurationUs += b.durUs
		if b.durMaxUs > ws.DurationMaxUs {
			ws.DurationMaxUs = b.durMaxUs
		}
	}
	return ws
}

// redSeries is one endpoint×kind's rings across all resolutions.
type redSeries struct {
	rings []*redRing
}

func newRedSeries() *redSeries {
	s := &redSeries{}
	for _, res := range redResolutions {
		s.rings = append(s.rings, &redRing{width: res.width, buckets: make([]redBucket, res.buckets)})
	}
	return s
}

// WindowStats is the RED aggregate over one time window of one series.
type WindowStats struct {
	Count         int64 `json:"count"`
	Errors        int64 `json:"errors"`
	Slow          int64 `json:"slow"`
	DurationUs    int64 `json:"durationUs"`
	DurationMaxUs int64 `json:"durationMaxUs"`
}

// MeanUs returns the window's mean duration in microseconds.
func (w WindowStats) MeanUs() int64 {
	if w.Count == 0 {
		return 0
	}
	return w.DurationUs / w.Count
}

// RED is the multi-resolution rollup: one series per endpoint×kind plus
// a synthetic total series every event also feeds.
type RED struct {
	mu          sync.Mutex
	series      map[redKey]*redSeries
	total       *redSeries
	slowUs      int64 // latency-SLO threshold; slowness stamped at observe time
	now         func() time.Time
	maxSeries   int
	seriesDrops int64
}

type redKey struct{ endpoint, kind string }

// NewRED builds a rollup; slowThreshold is the latency-SLO cut
// (observations above it count as slow; <= 0 disables slow counting).
func NewRED(slowThreshold time.Duration) *RED {
	return &RED{
		series:    make(map[redKey]*redSeries),
		total:     newRedSeries(),
		slowUs:    slowThreshold.Microseconds(),
		now:       time.Now,
		maxSeries: 256,
	}
}

// Observe folds one query or batch-item event into the rollup. An event
// is an error when its HTTP status is 5xx or, statusless (batch items),
// when it carries a server-side error slug; client-side slugs
// (bad_request etc.) don't burn the availability SLO.
func (r *RED) Observe(e Event) {
	if r == nil {
		return
	}
	isErr := e.Status >= 500 || (e.Status == 0 && serverSideSlug(e.Error))
	isSlow := r.slowUs > 0 && e.DurationUs > r.slowUs
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	k := redKey{endpoint: e.Endpoint, kind: e.Kind}
	s := r.series[k]
	if s == nil {
		if len(r.series) >= r.maxSeries {
			// Endpoint and kind come from fixed vocabularies, so this
			// only trips on a bug; drop into the total series rather
			// than growing without bound.
			r.seriesDrops++
			s = r.total
		} else {
			s = newRedSeries()
			r.series[k] = s
		}
	}
	for _, ring := range s.rings {
		ring.observe(now, e.DurationUs, isErr, isSlow)
	}
	if s != r.total {
		for _, ring := range r.total.rings {
			ring.observe(now, e.DurationUs, isErr, isSlow)
		}
	}
}

// serverSideSlug reports whether an error slug counts against the
// availability SLO (server fault) rather than being the client's.
func serverSideSlug(slug string) bool {
	switch slug {
	case "", "bad_request", "pattern_too_long", "payload_too_large", "unsupported", "canceled":
		return false
	default:
		// timeout, too_many_requests, internal, and anything new.
		return true
	}
}

// Window aggregates one series (or the total with endpoint=="") over
// the trailing duration d, read from the finest ring that covers d.
func (r *RED) Window(endpoint, kind string, d time.Duration) WindowStats {
	if r == nil {
		return WindowStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.total
	if endpoint != "" {
		s = r.series[redKey{endpoint: endpoint, kind: kind}]
		if s == nil {
			return WindowStats{}
		}
	}
	return r.windowLocked(s, d)
}

func (r *RED) windowLocked(s *redSeries, d time.Duration) WindowStats {
	now := r.now()
	for _, ring := range s.rings {
		if time.Duration(len(ring.buckets))*ring.width >= d {
			return ring.window(now, d)
		}
	}
	return s.rings[len(s.rings)-1].window(now, d)
}

// SeriesSnapshot is one endpoint×kind's windows for /debug/dash.
type SeriesSnapshot struct {
	Endpoint string                 `json:"endpoint"`
	Kind     string                 `json:"kind,omitempty"`
	Windows  map[string]WindowStats `json:"windows"`
}

// dashWindows are the trailing windows /debug/dash reports per series.
var dashWindows = []struct {
	label string
	d     time.Duration
}{
	{"10s", 10 * time.Second},
	{"1m", time.Minute},
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
}

// Snapshot returns every series' dash windows, total first, the rest
// sorted by endpoint then kind.
func (r *RED) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SeriesSnapshot, 0, len(r.series)+1)
	out = append(out, r.snapshotLocked("_total", "", r.total))
	keys := make([]redKey, 0, len(r.series))
	for k := range r.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].kind < keys[j].kind
	})
	for _, k := range keys {
		out = append(out, r.snapshotLocked(k.endpoint, k.kind, r.series[k]))
	}
	return out
}

func (r *RED) snapshotLocked(endpoint, kind string, s *redSeries) SeriesSnapshot {
	ss := SeriesSnapshot{Endpoint: endpoint, Kind: kind, Windows: make(map[string]WindowStats, len(dashWindows))}
	for _, w := range dashWindows {
		ss.Windows[w.label] = r.windowLocked(s, w.d)
	}
	return ss
}
