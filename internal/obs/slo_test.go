package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSLOBurnRate(t *testing.T) {
	red := NewRED(50 * time.Millisecond)
	now := time.Unix(6_000_000, 0)
	fakeClock(red, &now)
	slo := NewSLO(SLOConfig{Availability: 0.999, LatencyObjective: 0.99, LatencyThreshold: 50 * time.Millisecond}, red)

	// 1000 requests, 10 server errors, 50 slow.
	for i := 0; i < 1000; i++ {
		ev := Event{Type: EventQuery, Endpoint: "contains", Kind: "contains", DurationUs: 1000, Status: 200}
		if i < 10 {
			ev.Status = 500
		}
		if i >= 10 && i < 60 {
			ev.DurationUs = 100_000
		}
		red.Observe(ev)
	}

	statuses := slo.Snapshot()
	if len(statuses) != 2 {
		t.Fatalf("got %d statuses", len(statuses))
	}
	avail, lat := statuses[0], statuses[1]
	if avail.Name != "availability" || lat.Name != "latency" {
		t.Fatalf("status order: %s, %s", avail.Name, lat.Name)
	}
	// availability: bad ratio 0.01 over budget 0.001 → burn 10.
	w5 := avail.Windows[0]
	if w5.Window != "5m" || w5.Total != 1000 || w5.Bad != 10 {
		t.Fatalf("availability 5m window: %+v", w5)
	}
	if math.Abs(w5.Burn-10) > 1e-9 {
		t.Fatalf("availability burn %v, want 10", w5.Burn)
	}
	// latency: bad ratio 0.05 over budget 0.01 → burn 5.
	if got := lat.Windows[0].Burn; math.Abs(got-5) > 1e-9 {
		t.Fatalf("latency burn %v, want 5", got)
	}
	if lat.ThresholdMs != 50 {
		t.Fatalf("latency threshold %v ms", lat.ThresholdMs)
	}
	// Burn 10 < 14.4: no page. Burn 10 > 6 on both 30m and 6h: ticket.
	if avail.Page {
		t.Fatal("availability paged at burn 10")
	}
	if !avail.Ticket {
		t.Fatal("availability should ticket at burn 10")
	}
	if lat.Page || lat.Ticket {
		t.Fatalf("latency alerts at burn 5: page=%v ticket=%v", lat.Page, lat.Ticket)
	}
}

func TestSLOPageAlert(t *testing.T) {
	red := NewRED(0)
	now := time.Unix(7_000_000, 0)
	fakeClock(red, &now)
	slo := NewSLO(SLOConfig{Availability: 0.999}, red)
	// 2% errors → burn 20 > 14.4 on every window.
	for i := 0; i < 1000; i++ {
		ev := Event{Type: EventQuery, Endpoint: "e", Status: 200}
		if i < 20 {
			ev.Status = 500
		}
		red.Observe(ev)
	}
	st := slo.Snapshot()[0]
	if !st.Page || !st.Ticket {
		t.Fatalf("burn 20: page=%v ticket=%v, want both", st.Page, st.Ticket)
	}
}

func TestSLOQuietWindows(t *testing.T) {
	red := NewRED(0)
	slo := NewSLO(SLOConfig{Availability: 0.999}, red)
	for _, w := range slo.Snapshot()[0].Windows {
		if w.Burn != 0 || w.Total != 0 {
			t.Fatalf("empty rollup burned: %+v", w)
		}
	}
}

func TestSLODisabled(t *testing.T) {
	if NewSLO(SLOConfig{}, NewRED(0)) != nil {
		t.Fatal("no objectives should disable the engine")
	}
	if NewSLO(SLOConfig{Availability: 0.999}, nil) != nil {
		t.Fatal("nil RED should disable the engine")
	}
	var s *SLO
	if s.Snapshot() != nil {
		t.Fatal("nil SLO snapshot non-nil")
	}
	if s.Config() != (SLOConfig{}) {
		t.Fatal("nil SLO config non-zero")
	}
}

func TestWritePrometheusObs(t *testing.T) {
	red := NewRED(50 * time.Millisecond)
	now := time.Unix(8_000_000, 0)
	fakeClock(red, &now)
	slo := NewSLO(SLOConfig{Availability: 0.999, LatencyObjective: 0.99, LatencyThreshold: 50 * time.Millisecond}, red)
	red.Observe(Event{Type: EventQuery, Endpoint: "contains", Kind: "contains", DurationUs: 100, Status: 200})

	var b strings.Builder
	st := PipelineStats{Enabled: true, EmittedQuery: 1, Dropped: 2, Exported: 3}
	if err := WritePrometheus(&b, st, slo); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`spine_obs_events_emitted_total{type="query"} 1`,
		"spine_obs_events_dropped_total 2",
		"spine_obs_events_exported_total 3",
		"spine_obs_queue_depth 0",
		`spine_slo_objective{slo="availability"} 0.999`,
		`spine_slo_objective{slo="latency"} 0.99`,
		"spine_slo_latency_threshold_seconds 0.05",
		`spine_slo_burn_rate{slo="availability",window="5m"} 0`,
		`spine_slo_window_requests{slo="availability",window="5m"} 1`,
		`spine_slo_alert{slo="availability",severity="page"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Family headers must be unique.
	seen := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			if seen[line] {
				t.Errorf("duplicate family header %q", line)
			}
			seen[line] = true
		}
	}
	// Disabled pipeline emits nothing.
	var empty strings.Builder
	if err := WritePrometheus(&empty, PipelineStats{}, nil); err != nil || empty.Len() != 0 {
		t.Fatalf("disabled exposition: %q err=%v", empty.String(), err)
	}
}
