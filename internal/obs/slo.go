package obs

import "time"

// SLO math, multi-window burn-rate style (Google SRE workbook ch. 5).
//
// For an objective o (say 0.999 availability), the error budget is
// 1-o. The burn rate over a window is
//
//	burn = (bad/total) / (1-o)
//
// — burn 1 means the budget is being consumed exactly at the rate that
// exhausts it at the end of the SLO period; burn 14.4 on a 0.999 SLO
// means the month's budget is gone in ~2 days. Alerts pair a long
// window (is it sustained?) with a short one (is it still happening?):
//
//	page:   burn > 14.4 on 5m AND 1h
//	ticket: burn > 6    on 30m AND 6h
//
// Availability's bad events are server-fault errors; latency's bad
// events are observations over the threshold (stamped at observe time
// by the RED rollup).

// SLOConfig declares the objectives.
type SLOConfig struct {
	// Availability objective as a fraction of good requests, e.g. 0.999.
	// <= 0 disables the availability SLO.
	Availability float64
	// LatencyObjective is the fraction of requests that must finish
	// under LatencyThreshold, e.g. 0.99. <= 0 disables the latency SLO.
	LatencyObjective float64
	// LatencyThreshold is the latency SLO's cut; it is also the RED
	// rollup's slow-stamp threshold.
	LatencyThreshold time.Duration
}

// burnWindows are the windows every burn rate is computed over. The 6h
// window is the longest the 1m ring covers.
var burnWindows = []struct {
	label string
	d     time.Duration
}{
	{"5m", 5 * time.Minute},
	{"30m", 30 * time.Minute},
	{"1h", time.Hour},
	{"6h", 6 * time.Hour},
}

// Alert thresholds, multi-window multi-burn-rate standard values.
const (
	burnPage   = 14.4
	burnTicket = 6.0
)

// SLO evaluates burn rates for one RED rollup.
type SLO struct {
	cfg SLOConfig
	red *RED
}

// NewSLO binds objectives to a rollup; returns nil (inert) when no
// objective is enabled or red is nil.
func NewSLO(cfg SLOConfig, red *RED) *SLO {
	if red == nil || (cfg.Availability <= 0 && cfg.LatencyObjective <= 0) {
		return nil
	}
	return &SLO{cfg: cfg, red: red}
}

// BurnWindow is one window's burn-rate evaluation.
type BurnWindow struct {
	Window string  `json:"window"`
	Total  int64   `json:"total"`
	Bad    int64   `json:"bad"`
	Burn   float64 `json:"burn"`
}

// SLOStatus is one objective's full evaluation.
type SLOStatus struct {
	Name      string  `json:"name"` // "availability" | "latency"
	Objective float64 `json:"objective"`
	// ThresholdMs is set for the latency SLO only.
	ThresholdMs float64      `json:"thresholdMs,omitempty"`
	Windows     []BurnWindow `json:"windows"`
	// Page/Ticket are the multi-window alert verdicts.
	Page   bool `json:"page"`
	Ticket bool `json:"ticket"`
}

// Snapshot evaluates every enabled objective over the total series.
func (s *SLO) Snapshot() []SLOStatus {
	if s == nil {
		return nil
	}
	var out []SLOStatus
	if s.cfg.Availability > 0 {
		out = append(out, s.evaluate("availability", s.cfg.Availability, func(w WindowStats) int64 { return w.Errors }))
	}
	if s.cfg.LatencyObjective > 0 {
		st := s.evaluate("latency", s.cfg.LatencyObjective, func(w WindowStats) int64 { return w.Slow })
		st.ThresholdMs = float64(s.cfg.LatencyThreshold) / float64(time.Millisecond)
		out = append(out, st)
	}
	return out
}

func (s *SLO) evaluate(name string, objective float64, bad func(WindowStats) int64) SLOStatus {
	st := SLOStatus{Name: name, Objective: objective}
	burn := make(map[string]float64, len(burnWindows))
	for _, bw := range burnWindows {
		w := s.red.Window("", "", bw.d)
		b := BurnWindow{Window: bw.label, Total: w.Count, Bad: bad(w)}
		if w.Count > 0 {
			b.Burn = (float64(b.Bad) / float64(w.Count)) / (1 - objective)
		}
		burn[bw.label] = b.Burn
		st.Windows = append(st.Windows, b)
	}
	st.Page = burn["5m"] > burnPage && burn["1h"] > burnPage
	st.Ticket = burn["30m"] > burnTicket && burn["6h"] > burnTicket
	return st
}

// Config returns the objectives the engine runs with.
func (s *SLO) Config() SLOConfig {
	if s == nil {
		return SLOConfig{}
	}
	return s.cfg
}
