// Package rescache is a sharded, byte-budgeted LRU for query results.
// It is the storage half of the serving layer's result cache: keys are
// (pattern, query kind, limit) triples, values are opaque (the public
// package stores its QueryResult there), and eviction is driven by an
// approximate byte cost the caller supplies with each insert.
//
// Invalidation is epoch-based rather than by enumeration: the cache
// carries a global epoch counter, every entry is stamped with the epoch
// at insert time, and BumpEpoch makes every existing entry stale in
// O(1). Stale entries are collected lazily — a Get that lands on one
// removes it and reports a miss. This is the invalidation discipline
// the live-ingest roadmap item needs: an Append to the underlying index
// must not race a scan of the cache, it just bumps the epoch.
//
// Sharding bounds lock contention: the key hashes (FNV-1a) to one of a
// power-of-two number of shards, each with its own mutex, map and LRU
// list, and its own slice of the byte budget.
package rescache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Key identifies one cached query result.
type Key struct {
	// Pattern is the query pattern bytes (as a string so Key is
	// comparable and usable as a map key).
	Pattern string
	// Kind discriminates query kinds sharing a pattern (contains vs
	// count vs findall answers differ).
	Kind uint8
	// Limit is the occurrence cap the result was computed under; kinds
	// without a limit normalize it to 0 so they share entries.
	Limit int
}

// Config tunes a Cache.
type Config struct {
	// MaxBytes is the total byte budget across all shards; <= 0 picks
	// DefaultMaxBytes.
	MaxBytes int64
	// Shards is the shard count, rounded up to a power of two; <= 0
	// picks DefaultShards.
	Shards int
}

// DefaultMaxBytes is the byte budget when Config.MaxBytes <= 0 (64 MiB).
const DefaultMaxBytes = 64 << 20

// DefaultShards is the shard count when Config.Shards <= 0.
const DefaultShards = 16

// Stats is a point-in-time view of the cache's occupancy counters.
type Stats struct {
	Entries   int64 // live entries across all shards
	Bytes     int64 // bytes charged against the budget
	Evictions int64 // entries evicted by the byte budget (not staleness)
	Epoch     uint64
}

type entry struct {
	key   Key
	value any
	cost  int64
	epoch uint64
}

type shard struct {
	mu    sync.Mutex
	items map[Key]*list.Element
	lru   *list.List // front = most recent
	bytes int64
}

// Cache is a sharded epoch-invalidated LRU. The zero value is not
// usable; construct with New.
type Cache struct {
	shards    []*shard
	mask      uint64
	perShard  int64 // byte budget per shard
	epoch     atomic.Uint64
	entries   atomic.Int64
	bytes     atomic.Int64
	evictions atomic.Int64
}

// New returns an empty cache with the given budget and shard count.
func New(cfg Config) *Cache {
	maxBytes := cfg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so shard selection is a mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &Cache{
		shards:   make([]*shard, pow),
		mask:     uint64(pow - 1),
		perShard: maxBytes / int64(pow),
	}
	if c.perShard < 1 {
		c.perShard = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{items: make(map[Key]*list.Element), lru: list.New()}
	}
	return c
}

// hash is FNV-1a over the key's pattern bytes mixed with kind and limit.
func hash(k Key) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.Pattern); i++ {
		h ^= uint64(k.Pattern[i])
		h *= prime64
	}
	h ^= uint64(k.Kind)
	h *= prime64
	h ^= uint64(k.Limit)
	h *= prime64
	return h
}

func (c *Cache) shardFor(k Key) *shard { return c.shards[hash(k)&c.mask] }

// Get returns the cached value for k, if present and current. An entry
// stamped with an older epoch is removed on the spot and reported as a
// miss — BumpEpoch invalidation is collected lazily, here.
func (c *Cache) Get(k Key) (any, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.items[k]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	e := el.Value.(*entry)
	// Load the epoch under the shard lock so the staleness check sees
	// any BumpEpoch that completed before the lookup; loading it
	// earlier could return an entry invalidated an instant before.
	if e.epoch != c.epoch.Load() {
		s.remove(el)
		c.entries.Add(-1)
		c.bytes.Add(-e.cost)
		s.mu.Unlock()
		return nil, false
	}
	s.lru.MoveToFront(el)
	v := e.value
	s.mu.Unlock()
	return v, true
}

// Put inserts (or refreshes) k with the given value and byte cost,
// evicting least-recently-used entries from the key's shard until the
// shard fits its budget slice. Values costlier than a whole shard's
// budget are not admitted.
func (c *Cache) Put(k Key, value any, cost int64) {
	if cost < 1 {
		cost = 1
	}
	if cost > c.perShard {
		return // would evict the entire shard for one entry
	}
	s := c.shardFor(k)
	s.mu.Lock()
	// Stamp with the epoch as of lock acquisition, mirroring Get: an
	// earlier load could only stamp an older (already-stale) epoch,
	// but keeping both reads under the lock makes the ordering plain.
	epoch := c.epoch.Load()
	if el, ok := s.items[k]; ok {
		e := el.Value.(*entry)
		s.bytes -= e.cost
		c.bytes.Add(-e.cost)
		e.value, e.cost, e.epoch = value, cost, epoch
		s.bytes += cost
		c.bytes.Add(cost)
		s.lru.MoveToFront(el)
	} else {
		el := s.lru.PushFront(&entry{key: k, value: value, cost: cost, epoch: epoch})
		s.items[k] = el
		s.bytes += cost
		c.bytes.Add(cost)
		c.entries.Add(1)
	}
	for s.bytes > c.perShard {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.remove(back)
		c.entries.Add(-1)
		c.bytes.Add(-e.cost)
		c.evictions.Add(1)
	}
	s.mu.Unlock()
}

// remove unlinks el from the shard; the caller holds the shard lock and
// settles the cache-wide counters.
func (s *shard) remove(el *list.Element) {
	e := el.Value.(*entry)
	delete(s.items, e.key)
	s.lru.Remove(el)
	s.bytes -= e.cost
}

// BumpEpoch invalidates every current entry in O(1): subsequent Gets
// see the epoch mismatch and treat the entries as absent (removing them
// lazily). Use it whenever the indexed text changes.
func (c *Cache) BumpEpoch() { c.epoch.Add(1) }

// Epoch returns the current epoch.
func (c *Cache) Epoch() uint64 { return c.epoch.Load() }

// Stats returns the cache's occupancy counters. Entries and Bytes may
// include stale entries not yet lazily collected.
func (c *Cache) Stats() Stats {
	return Stats{
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
		Evictions: c.evictions.Load(),
		Epoch:     c.epoch.Load(),
	}
}
