package rescache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 4})
	k := Key{Pattern: "acgt", Kind: 2, Limit: 10}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "value", 100)
	v, ok := c.Get(k)
	if !ok || v.(string) != "value" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	// Kind and limit discriminate.
	if _, ok := c.Get(Key{Pattern: "acgt", Kind: 3, Limit: 10}); ok {
		t.Fatal("kind not part of identity")
	}
	if _, ok := c.Get(Key{Pattern: "acgt", Kind: 2, Limit: 11}); ok {
		t.Fatal("limit not part of identity")
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
	// Refresh replaces cost and value.
	c.Put(k, "value2", 50)
	if v, _ := c.Get(k); v.(string) != "value2" {
		t.Fatalf("refreshed value = %v", v)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 50 {
		t.Fatalf("stats after refresh = %+v", st)
	}
}

// TestByteBudgetEviction: a shard over its budget slice evicts from the
// LRU tail, and the evicted key misses afterwards.
func TestByteBudgetEviction(t *testing.T) {
	// One shard, 100-byte budget.
	c := New(Config{MaxBytes: 100, Shards: 1})
	for i := 0; i < 10; i++ {
		c.Put(Key{Pattern: fmt.Sprintf("p%d", i)}, i, 30)
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Fatalf("budget exceeded: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	// The most recent insert survived; the oldest did not.
	if _, ok := c.Get(Key{Pattern: "p9"}); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := c.Get(Key{Pattern: "p0"}); ok {
		t.Fatal("oldest entry survived a full wrap of the budget")
	}
	// Oversized values are not admitted at all.
	c.Put(Key{Pattern: "huge"}, 0, 1000)
	if _, ok := c.Get(Key{Pattern: "huge"}); ok {
		t.Fatal("entry over the shard budget admitted")
	}
}

// TestLRUOrdering: touching an entry via Get protects it from the next
// eviction round.
func TestLRUOrdering(t *testing.T) {
	c := New(Config{MaxBytes: 90, Shards: 1})
	c.Put(Key{Pattern: "a"}, 1, 30)
	c.Put(Key{Pattern: "b"}, 2, 30)
	c.Put(Key{Pattern: "c"}, 3, 30)
	c.Get(Key{Pattern: "a"}) // refresh a; b is now the LRU tail
	c.Put(Key{Pattern: "d"}, 4, 30)
	if _, ok := c.Get(Key{Pattern: "a"}); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(Key{Pattern: "b"}); ok {
		t.Fatal("least recently used entry survived")
	}
}

// TestEpochInvalidation: BumpEpoch makes every prior entry miss, and the
// stale entries are collected lazily by the Gets that find them.
func TestEpochInvalidation(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 2})
	for i := 0; i < 8; i++ {
		c.Put(Key{Pattern: fmt.Sprintf("p%d", i)}, i, 10)
	}
	c.BumpEpoch()
	for i := 0; i < 8; i++ {
		if _, ok := c.Get(Key{Pattern: fmt.Sprintf("p%d", i)}); ok {
			t.Fatalf("entry p%d survived the epoch bump", i)
		}
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stale entries not collected: %+v", st)
	}
	// New inserts under the new epoch hit normally.
	c.Put(Key{Pattern: "fresh"}, 1, 10)
	if _, ok := c.Get(Key{Pattern: "fresh"}); !ok {
		t.Fatal("post-bump insert missing")
	}
}

// TestConcurrentAccess hammers all operations from many goroutines; run
// with -race.
func TestConcurrentAccess(t *testing.T) {
	c := New(Config{MaxBytes: 10 << 10, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{Pattern: fmt.Sprintf("p%d", i%32), Kind: uint8(w % 3)}
				switch i % 4 {
				case 0:
					c.Put(k, i, int64(16+i%64))
				case 3:
					if w == 0 && i%100 == 0 {
						c.BumpEpoch()
					}
					c.Stats()
				default:
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes < 0 || st.Entries < 0 {
		t.Fatalf("negative occupancy after concurrent churn: %+v", st)
	}
}
