package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/spine-index/spine/internal/seq"
)

func TestFindAllCtxMatchesFindAll(t *testing.T) {
	text := []byte("aaccacaacaggtaccaaccacaacagg")
	idx := Build(text)
	ctx := context.Background()
	for _, p := range []string{"", "a", "cc", "acaa", "zz", "aaccacaacaggtaccaaccacaacagg"} {
		want := idx.FindAll([]byte(p))
		res, err := idx.FindAllCtx(ctx, []byte(p), 0)
		if err != nil {
			t.Fatalf("FindAllCtx(%q): %v", p, err)
		}
		if len(res.Positions) != len(want) {
			t.Fatalf("FindAllCtx(%q) = %v, want %v", p, res.Positions, want)
		}
		for i := range want {
			if res.Positions[i] != want[i] {
				t.Fatalf("FindAllCtx(%q) = %v, want %v", p, res.Positions, want)
			}
		}
		if res.Truncated {
			t.Fatalf("unlimited FindAllCtx(%q) marked truncated", p)
		}
	}
}

func TestFindAllCtxLimit(t *testing.T) {
	text := []byte(strings.Repeat("ac", 1000))
	idx := Build(text)
	full := idx.FindAll([]byte("ac"))
	res, err := idx.FindAllCtx(context.Background(), []byte("ac"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 5 || !res.Truncated {
		t.Fatalf("limit 5: got %d positions, truncated=%v", len(res.Positions), res.Truncated)
	}
	for i := 0; i < 5; i++ {
		if res.Positions[i] != full[i] {
			t.Fatalf("limited prefix diverges at %d: %d vs %d", i, res.Positions[i], full[i])
		}
	}
	// A limit at least as large as the occurrence count is not truncated.
	res, err = idx.FindAllCtx(context.Background(), []byte("ac"), len(full))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != len(full) || res.Truncated {
		t.Fatalf("exact limit: got %d/%d, truncated=%v", len(res.Positions), len(full), res.Truncated)
	}
	// Empty pattern respects the limit too.
	res, err = idx.FindAllCtx(context.Background(), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 3 || !res.Truncated {
		t.Fatalf("empty pattern limit: %+v", res)
	}
}

func TestFindAllCtxNodesChecked(t *testing.T) {
	idx := Build([]byte(strings.Repeat("ac", 1000)))
	res, err := idx.FindAllCtx(context.Background(), []byte("ac"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesChecked <= 0 {
		t.Fatalf("NodesChecked = %d, want > 0", res.NodesChecked)
	}
}

func TestFindAllCtxCancelled(t *testing.T) {
	idx := Build([]byte(strings.Repeat("a", 200000)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.FindAllCtx(ctx, []byte("aa"), 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFindAllCtxAbortsMidScan verifies that a deadline expiring during
// the backbone scan aborts it promptly instead of completing the O(n)
// pass and materializing every occurrence.
func TestFindAllCtxAbortsMidScan(t *testing.T) {
	idx := Build([]byte(strings.Repeat("a", 4_000_000)))
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := idx.FindAllCtx(ctx, []byte("aaaa"), 0)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v — checkpoint not reached", elapsed)
	}
}

func TestCompactFindAllCtx(t *testing.T) {
	text := []byte("aaccacaacaggtaccaaccacaacagg")
	idx := Build(text)
	ci, err := Freeze(idx, seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"acaa", "zz", "a"} {
		want := ci.FindAll([]byte(p))
		res, err := ci.FindAllCtx(context.Background(), []byte(p), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Positions) != len(want) {
			t.Fatalf("compact FindAllCtx(%q) = %v, want %v", p, res.Positions, want)
		}
	}
	res, err := ci.FindAllCtx(context.Background(), []byte("ac"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 2 || !res.Truncated {
		t.Fatalf("compact limit: %+v", res)
	}
}

func TestScanManyCtxParity(t *testing.T) {
	text := []byte("aaccacaacaggtaccaaccacaacagg")
	idx := Build(text)
	end1, _ := idx.EndNode([]byte("ac"))
	end2, _ := idx.EndNode([]byte("ca"))
	firsts := []int32{end1, end2}
	lens := []int32{2, 2}
	want := idx.ScanMany(firsts, lens)
	got, err := idx.ScanManyCtx(context.Background(), firsts, lens)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("ScanManyCtx[%d] = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("ScanManyCtx[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.ScanManyCtx(ctx, firsts, lens); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ScanManyCtx err = %v", err)
	}
}

func TestCountCtx(t *testing.T) {
	idx := Build([]byte("abracadabra"))
	n, err := idx.CountCtx(context.Background(), []byte("a"))
	if err != nil || n != idx.Count([]byte("a")) {
		t.Fatalf("CountCtx = %d, %v; want %d", n, err, idx.Count([]byte("a")))
	}
}
