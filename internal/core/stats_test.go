package core

import (
	"math"
	"testing"

	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/seqgen"
)

func TestStatsPaperExample(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	st := idx.ComputeStats()
	if st.Length != 10 {
		t.Fatalf("Length = %d", st.Length)
	}
	if st.MaxLEL != 3 || st.MaxPT != 3 || st.MaxPRT != 1 {
		t.Fatalf("max labels = LEL %d, PT %d, PRT %d; want 3, 3, 1", st.MaxLEL, st.MaxPT, st.MaxPRT)
	}
	if st.RibCount != 4 || st.ExtribCount != 2 {
		t.Fatalf("edges = %d ribs, %d extribs; want 4, 2", st.RibCount, st.ExtribCount)
	}
}

func TestFanoutAccounting(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	st := idx.ComputeStats()
	total := 0
	for _, c := range st.FanoutNodes {
		total += c
	}
	if total != st.Length+1 {
		t.Fatalf("fanout counts sum to %d, want %d nodes", total, st.Length+1)
	}
	// Nodes 0,1 have one rib each; node 3 has rib; node 5 has rib+extrib
	// (fanout 2); node 7 has extrib only.
	if st.FanoutNodes[1] != 4 || st.FanoutNodes[2] != 1 {
		t.Fatalf("fanout histogram = %v", st.FanoutNodes)
	}
	wantPct := 100 * 5.0 / 11.0
	if math.Abs(st.NodesWithEdgesPercent()-wantPct) > 1e-9 {
		t.Fatalf("NodesWithEdgesPercent = %v, want %v", st.NodesWithEdgesPercent(), wantPct)
	}
}

func TestLinkHistogramSumsTo100(t *testing.T) {
	s := seqgen.MustGenerate(seqgen.Spec{
		Name: "t", Alphabet: dnaAlpha(), Length: 20000,
		RepeatFraction: 0.35, MeanRepeatLen: 120, MutationRate: 0.02, Seed: 5,
	})
	idx := Build(s)
	h := idx.LinkHistogram(10)
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Fatalf("histogram sums to %v, want 100", sum)
	}
}

// TestLinkHistogramTopHeavy checks the Figure 8 shape on a genome-like
// synthetic string: the first bucket dominates and the overall trend
// decays toward the tail.
func TestLinkHistogramTopHeavy(t *testing.T) {
	s := seqgen.MustGenerate(seqgen.Spec{
		Name: "t", Alphabet: dnaAlpha(), Length: 200000,
		RepeatFraction: 0.35, MeanRepeatLen: 250, MutationRate: 0.02, Seed: 6,
	})
	idx := Build(s)
	h := idx.LinkHistogram(6)
	if h[0] <= h[len(h)-1] {
		t.Fatalf("link histogram not top-heavy: %v", h)
	}
	if h[0] < 25 {
		t.Fatalf("first bucket only %.1f%%; expected dominant head: %v", h[0], h)
	}
}

func TestLinkHistogramDegenerateInputs(t *testing.T) {
	idx := Build(nil)
	if got := idx.LinkHistogram(4); got != nil {
		t.Fatalf("histogram of empty index = %v, want nil", got)
	}
	idx = Build([]byte("acgt"))
	if got := idx.LinkHistogram(0); got != nil {
		t.Fatalf("histogram with 0 buckets = %v, want nil", got)
	}
}

// TestTable3ShapeOnSyntheticGenome verifies the Table 3 claim that label
// values stay far below 2^16 on genome-scale repetitive data (the basis
// for 2-byte label fields).
func TestLabelValuesStayModest(t *testing.T) {
	n := 300000
	if testing.Short() {
		n = 60000
	}
	s := seqgen.MustGenerate(seqgen.Spec{
		Name: "t", Alphabet: dnaAlpha(), Length: n,
		RepeatFraction: 0.30, MeanRepeatLen: 220, MutationRate: 0.02, Seed: 7,
	})
	st := Build(s).ComputeStats()
	if st.MaxLEL <= 0 || st.MaxPT <= 0 {
		t.Fatal("degenerate label maxima")
	}
	if st.MaxLEL >= 65536 || st.MaxPT >= 65536 {
		t.Fatalf("labels exceeded 2 bytes on %d-char genome: LEL %d PT %d", n, st.MaxLEL, st.MaxPT)
	}
}

// TestTable4ShapeOnSyntheticGenome verifies the rib-distribution shape:
// the fraction of nodes with downstream edges is around a third, and the
// histogram decays with fan-out.
func TestRibDistributionShape(t *testing.T) {
	n := 300000
	if testing.Short() {
		n = 60000
	}
	s := seqgen.MustGenerate(seqgen.Spec{
		Name: "t", Alphabet: dnaAlpha(), Length: n,
		RepeatFraction: 0.30, MeanRepeatLen: 220, MutationRate: 0.02, Seed: 8,
	})
	st := Build(s).ComputeStats()
	pct := st.NodesWithEdgesPercent()
	if pct < 15 || pct > 55 {
		t.Fatalf("nodes with downstream edges = %.1f%%, outside genome-like range", pct)
	}
	if st.FanoutPercent(1) <= st.FanoutPercent(3) {
		t.Fatalf("fan-out histogram not decaying: 1:%.1f%% 2:%.1f%% 3:%.1f%%",
			st.FanoutPercent(1), st.FanoutPercent(2), st.FanoutPercent(3))
	}
}

func TestMemoryBytesPositiveAndOrdered(t *testing.T) {
	small := Build([]byte("acgtacgt")).MemoryBytes()
	big := Build(seqgen.MustGenerate(seqgen.Spec{
		Name: "t", Alphabet: dnaAlpha(), Length: 5000,
		RepeatFraction: 0.3, MeanRepeatLen: 100, MutationRate: 0.02, Seed: 9,
	})).MemoryBytes()
	if small <= 0 || big <= small {
		t.Fatalf("MemoryBytes not monotone: small=%d big=%d", small, big)
	}
}

func dnaAlpha() *seq.Alphabet { return seq.DNA }
