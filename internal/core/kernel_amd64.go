//go:build amd64 && !purego

package core

import "unsafe"

// amd64 word loads for the SWAR kernels: x86-64 guarantees efficient
// unaligned 64-bit loads and is little-endian, so a lane group is one
// MOVQ straight out of the backing array. The portable twin of this
// file is kernel_generic.go (`!amd64 || purego`); both must produce
// identical words — the canonical lane order is little-endian, lane k
// of a group at index i is element i+k. Build with -tags purego to
// force the generic path on amd64 (the CI matrix tests both).

const kernelISA = "amd64"

// loadU64 returns 8 bytes of b starting at i as a little-endian word.
// The caller guarantees i+8 <= len(b).
func loadU64(b []byte, i int) uint64 {
	return *(*uint64)(unsafe.Pointer(&b[i]))
}

// loadQuad16 returns 4 consecutive uint16 values starting at s[i] as
// one word, element i+k in lane k. The caller guarantees i+4 <= len(s).
func loadQuad16(s []uint16, i int) uint64 {
	return *(*uint64)(unsafe.Pointer(&s[i]))
}

// loadPair32 returns 2 consecutive int32 values starting at s[i] as one
// word, element i+k in lane k. The values must be non-negative (LELs
// always are). The caller guarantees i+2 <= len(s).
func loadPair32(s []int32, i int) uint64 {
	return *(*uint64)(unsafe.Pointer(&s[i]))
}
