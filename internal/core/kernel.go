package core

import (
	"fmt"
	mbits "math/bits"
	"sync"
	"sync/atomic"

	"github.com/spine-index/spine/internal/seq"
)

// Word-parallel (SWAR) scan kernels.
//
// internal/seq already stores vertebra labels packed — 2 bits per DNA
// symbol, one byte per raw-alphabet character — yet the §3 pattern
// descent and the §4 occurrence scan historically examined one
// character (or one backbone label) per step. Packing 8–32 characters
// into a uint64 and comparing word-at-a-time is the packed-compact-trie
// idea (Takagi et al.) and the word-level trick of sparse-suffix-tree
// matching (Kolpakov–Kucherov): an XOR lights up the first differing
// lane, a trailing-zero count locates it, and one machine op replaces
// up to 32 character comparisons. Three hot paths use it:
//
//   - Pattern descent: runs of vertebra extensions — the overwhelmingly
//     common descent step on genomic data — are matched as whole packed
//     words of text against the pattern packed once per query.
//   - Occurrence scan: inside an admitted block, the lel(j) >= |p| test
//     runs over 4 packed uint16 lanes (compact layout) or 2 int32 lanes
//     (reference layout) per op, jumping straight to the next candidate.
//   - Block-skip admission: per-block maxLEL summaries are additionally
//     kept as saturated uint16 lanes, so runs of inadmissible blocks
//     (256 backbone nodes per word) are rejected with one compare.
//
// The scalar paths are retained verbatim as the differential oracle —
// the same policy the block-skip index followed — and SetScanKernel
// flips between them at runtime. Word loads go through the build-tagged
// helpers in kernel_amd64.go / kernel_generic.go: the amd64 path
// (`amd64 && !purego`) issues direct unaligned loads, the portable
// fallback assembles words byte by byte and runs on any architecture.

// ScanKernel selects the character-comparison kernel for descents and
// occurrence scans.
type ScanKernel uint8

const (
	// KernelSWAR is the word-parallel kernel (the default): packed-word
	// descent, lane-parallel lel tests, word-parallel block admission.
	KernelSWAR ScanKernel = iota
	// KernelScalar is the character-at-a-time oracle: the paper's loops,
	// retained verbatim for differential testing and benchmarking.
	KernelScalar
)

// String returns the kernel's flag-friendly name.
func (k ScanKernel) String() string {
	if k == KernelScalar {
		return "scalar"
	}
	return "swar"
}

// ParseScanKernel maps a flag value ("swar" or "scalar") to a kernel.
func ParseScanKernel(name string) (ScanKernel, error) {
	switch name {
	case "swar":
		return KernelSWAR, nil
	case "scalar":
		return KernelScalar, nil
	}
	return 0, fmt.Errorf("core: unknown scan kernel %q (want swar or scalar)", name)
}

// scalarKernel disables the SWAR kernel, routing descents and scan
// inner loops through the scalar oracle. Zero value = SWAR on.
var scalarKernel atomic.Bool

// SetScanKernel selects the active kernel, returning the previous one.
// It is safe to flip concurrently with queries; each query reads the
// knob once at entry, so an individual query is all-SWAR or all-scalar
// but never mixed mid-scan.
func SetScanKernel(k ScanKernel) (previous ScanKernel) {
	if scalarKernel.Swap(k == KernelScalar) {
		return KernelScalar
	}
	return KernelSWAR
}

// ActiveScanKernel reports the kernel queries currently select.
func ActiveScanKernel() ScanKernel {
	if scalarKernel.Load() {
		return KernelScalar
	}
	return KernelSWAR
}

// ScanKernelISA names the word-load implementation compiled in:
// "amd64" for the unaligned-load fast path, "generic" for the portable
// fallback (any architecture, or the purego build tag).
func ScanKernelISA() string { return kernelISA }

// swarCapable reports whether the packed width supports whole-word
// character comparison: lanes must tile a uint64 exactly so a
// trailing-zero count maps to a character index. Power-of-two widths
// (raw bytes, DNA's 2 bits, 4-bit codes) qualify; odd widths like the
// 5-bit protein packing fall back to the scalar descent.
func swarCapable(bits uint) bool { return bits > 0 && bits <= 8 && 64%bits == 0 }

// SWAR lane comparisons. laneGE16/laneGE32 compare each unsigned lane
// of x against a broadcast threshold, returning a mask with the lane's
// top bit set where lane >= t; the first passing lane is then
// TrailingZeros64(mask)/laneWidth. The formula is the classic
// borrow-isolation compare: force each lane's top bit before
// subtracting the threshold's low bits (so borrows cannot cross
// lanes), then patch the result with the true top-bit comparison:
//
//	x >= t  ⟺  (xhi > thi) ∨ (xhi == thi ∧ xlo >= tlo)
const (
	hi16 = uint64(0x8000_8000_8000_8000)
	hi32 = uint64(0x8000_0000_8000_0000)
)

// laneGE16 returns, for each of the 4 uint16 lanes of x, the lane's top
// bit set iff lane >= t (unsigned).
func laneGE16(x uint64, t uint16) uint64 {
	y := uint64(t) * 0x0001_0001_0001_0001 // broadcast
	p := ((x | hi16) - (y &^ hi16)) & hi16 // per-lane xlo >= tlo
	g := x &^ y & hi16                     // xhi > thi
	e := ^(x ^ y) & hi16                   // xhi == thi
	return g | (e & p)
}

// laneGE32 returns, for each of the 2 uint32 lanes of x, the lane's top
// bit set iff lane >= t (unsigned).
func laneGE32(x uint64, t uint32) uint64 {
	y := uint64(t) * 0x0000_0001_0000_0001
	p := ((x | hi32) - (y &^ hi32)) & hi32
	g := x &^ y & hi32
	e := ^(x ^ y) & hi32
	return g | (e & p)
}

// swarPat is a pooled pattern packed into words for the SWAR descent:
// the pattern is packed once per query, then any 64-bit window of it is
// extracted at char granularity to compare against a text window.
type swarPat struct {
	words []uint64
	bits  uint
}

var swarPatPool = sync.Pool{New: func() any { return new(swarPat) }}

// getSwarPat packs p (already in the store's native representation) at
// the given width into a pooled buffer. Steady state allocates nothing.
func getSwarPat(p []byte, bits uint) *swarPat {
	sp := swarPatPool.Get().(*swarPat)
	sp.bits = bits
	sp.words = seq.PackWords(p, bits, sp.words[:0])
	return sp
}

func putSwarPat(sp *swarPat) { swarPatPool.Put(sp) }

// wordAt returns the 64-bit pattern window starting at char i.
func (sp *swarPat) wordAt(i int32) uint64 {
	return seq.WordFrom(sp.words, uint(i)*sp.bits)
}

// satLEL16 saturates a pattern length into the uint16 lane space used
// by the packed block summaries and the compact layout's LEL fields.
func satLEL16(v int32) uint16 {
	if v >= int32(labelSentinel) {
		return labelSentinel
	}
	return uint16(v)
}

// matchLanes returns how many leading characters of two packed windows
// agree: 64/bits when the windows are identical, otherwise the index of
// the first differing character.
func matchLanes(tw, pw uint64, bits uint) int32 {
	diff := tw ^ pw
	if diff == 0 {
		return int32(64 / bits)
	}
	return int32(uint(mbits.TrailingZeros64(diff)) / bits)
}

// Packed block-maxLEL summaries: lane b&3 of word b>>2 holds
// min(blocks[b].maxLEL, 0xFFFF). A whole word summarizes 4 blocks =
// 256 backbone nodes, so one laneGE16 decides a quarter-kilonode of
// backbone. The pack is derived state: folded online alongside the
// blockMeta slice and rebuilt wherever the blocks are rebuilt.

// foldBlockLEL extends the packed maxLEL lanes with node j's LEL,
// mirroring foldBlock's append/update split.
func foldBlockLEL(pack []uint64, j, lel int32) []uint64 {
	b := blockFor(j)
	w, shift := b>>2, uint(b&3)*16
	if w >= len(pack) {
		pack = append(pack, 0)
	}
	v := uint64(satLEL16(lel))
	if cur := (pack[w] >> shift) & 0xFFFF; v > cur {
		pack[w] = pack[w]&^(uint64(0xFFFF)<<shift) | v<<shift
	}
	return pack
}

// packBlockLELs builds the packed maxLEL lanes from a complete block
// summary slice — the one-shot form used at freeze, finish and load.
func packBlockLELs(blocks []blockMeta) []uint64 {
	pack := make([]uint64, (len(blocks)+3)/4)
	for b, m := range blocks {
		pack[b>>2] |= uint64(satLEL16(m.maxLEL)) << (uint(b&3) * 16)
	}
	return pack
}

// nextBlockLEL returns the first block in [b, lastBlock] whose packed
// maxLEL lane passes the saturated lel >= t test (a conservative
// superset of full admission), or lastBlock+1, plus the word compares
// spent. Lanes beyond lastBlock are zero and t >= 1, so they never
// pass.
func nextBlockLEL(pack []uint64, b, lastBlock int, t uint16) (int, int64) {
	var words int64
	for b <= lastBlock {
		w := pack[b>>2] >> (uint(b&3) * 16)
		words++
		if m := laneGE16(w, t); m != 0 {
			return b + mbits.TrailingZeros64(m)>>4, words
		}
		b += 4 - (b & 3)
	}
	return lastBlock + 1, words
}
