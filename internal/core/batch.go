package core

import (
	"context"
	"time"

	"github.com/spine-index/spine/internal/trace"
)

// ScanMany resolves the occurrence end sets of many matches in one
// sequential pass over the backbone — the §4 optimization: "we defer this
// step until the first occurrences of all matches are found, and then, in
// one single final sequential scan of the backbone, the repeated
// occurrences of all matching patterns are concurrently found."
//
// firsts[i] is the first-occurrence end node of match i and lens[i] its
// length; the result's i-th slice lists every end node of match i in
// increasing order.
func (idx *Index) ScanMany(firsts, lens []int32) [][]int32 {
	return scanManyOn(idx, firsts, lens)
}

// ScanMany is the compact-layout variant; see Index.ScanMany.
func (c *CompactIndex) ScanMany(firsts, lens []int32) [][]int32 {
	return scanManyOn(c, firsts, lens)
}

// scanManyOn delegates to the shared unlimited batch pass (see
// scanManyOnCtx); a background context never cancels it.
func scanManyOn[S store](s S, firsts, lens []int32) [][]int32 {
	out, _ := scanManyOnCtx(context.Background(), s, firsts, lens)
	return out
}

// BatchScan is the outcome of a limit-aware batched occurrence scan.
type BatchScan struct {
	// Ends[i] lists every occurrence end node of match i in increasing
	// order, the first occurrence included.
	Ends [][]int32
	// Truncated[i] reports that match i stopped at its limit; more
	// occurrences may exist.
	Truncated []bool
	// Scanned is the number of backbone nodes examined by the single
	// shared scan — counted once for the whole batch, which is the point
	// of §4's deferral: N patterns cost one O(n) pass, not N.
	Scanned int64
}

// ScanManyLimitCtx is ScanMany with per-match result caps and
// cancellation — the serving-stack form of the §4 optimization. firsts
// and lens are as in ScanMany; limits[i] caps match i's total occurrence
// count (the first occurrence included; <= 0 means unlimited). Each
// match's truncation mirrors the single-query FindAllCtx semantics
// exactly, so batched and per-pattern queries are byte-identical. The
// scan ends early once every match has reached its cap. When ctx
// carries a trace, the pass records one StageBatchScan span.
func (idx *Index) ScanManyLimitCtx(ctx context.Context, firsts, lens []int32, limits []int) (BatchScan, error) {
	return scanManyLimitTracedOnCtx(ctx, idx, firsts, lens, limits, true)
}

// ScanManyLimitCtx is the compact-layout variant; see Index.ScanManyLimitCtx.
func (c *CompactIndex) ScanManyLimitCtx(ctx context.Context, firsts, lens []int32, limits []int) (BatchScan, error) {
	return scanManyLimitTracedOnCtx(ctx, c, firsts, lens, limits, true)
}

// scanManyLimitTracedOnCtx is the shared batched scan. traced=false
// suppresses the StageBatchScan span — the unlimited ScanManyCtx fold
// rides through here, and its legacy callers account work themselves;
// an extra span would double-count nodes in the per-stage partition.
func scanManyLimitTracedOnCtx[S store](ctx context.Context, s S, firsts, lens []int32, limits []int, traced bool) (BatchScan, error) {
	res := BatchScan{
		Ends:      make([][]int32, len(firsts)),
		Truncated: make([]bool, len(firsts)),
	}
	if err := ctx.Err(); err != nil {
		return BatchScan{}, err
	}
	if len(firsts) == 0 {
		return res, nil
	}
	tr := trace.FromContext(ctx)
	if !traced {
		tr = nil
	}
	var scanStart time.Time
	if tr != nil {
		scanStart = time.Now()
	}
	endScan := func(st scanStats) {
		res.Scanned = st.visited
		if tr != nil {
			tr.Add(trace.StageBatchScan, time.Since(scanStart), trace.Counters{
				Nodes: st.visited, Links: st.visited,
				BlocksSkipped: st.blocksSkipped, BlocksScanned: st.blocksScanned,
				WorkersUsed: st.workersUsed, ChainsStitched: st.chainsStitched,
			})
			if st.raIssued+st.raHits > 0 {
				// Disk activity is attributed to its own stage with zero
				// node counts, keeping the NodesChecked partition exact.
				tr.Add(trace.StageDisk, 0, trace.Counters{
					ReadaheadIssued: st.raIssued, ReadaheadHits: st.raHits,
				})
			}
		}
	}
	// owners[node] lists the matches whose target buffer contains node;
	// done matches stay listed but are skipped, so a capped match stops
	// accumulating without disturbing the others.
	owners := make(map[int32][]int32)
	done := make([]bool, len(firsts))
	active := 0
	minFirst := int32(-1)
	maxMember := int32(0) // largest target-set node across active matches
	for i := range firsts {
		res.Ends[i] = []int32{firsts[i]}
		if limits[i] == 1 {
			// The single-query path truncates unconditionally at limit 1
			// without scanning; mirror it so batch results stay identical.
			done[i], res.Truncated[i] = true, true
			continue
		}
		owners[firsts[i]] = append(owners[firsts[i]], int32(i))
		if minFirst < 0 || firsts[i] < minFirst {
			minFirst = firsts[i]
		}
		if firsts[i] > maxMember {
			maxMember = firsts[i]
		}
		active++
	}
	if active == 0 {
		endScan(scanStats{})
		return res, nil
	}
	n := s.textLen()
	if blockSkipOff.Load() {
		// Scalar oracle: visit every node after the earliest first.
		for j := minFirst + 1; j <= n; j++ {
			if (j-minFirst)%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					// Node j itself was never examined; see findAllOnCtx.
					endScan(scanStats{visited: int64(j - minFirst - 1)})
					return BatchScan{Scanned: res.Scanned}, err
				}
			}
			link, lel := s.linkOf(j)
			ms, ok := owners[link]
			if !ok {
				continue
			}
			for _, m := range ms {
				if done[m] || lel < lens[m] || j <= firsts[m] {
					continue
				}
				res.Ends[m] = append(res.Ends[m], j)
				owners[j] = append(owners[j], m)
				if limits[m] > 0 && len(res.Ends[m]) >= limits[m] {
					done[m], res.Truncated[m] = true, j < n
					active--
				}
			}
			if active == 0 {
				endScan(scanStats{visited: int64(j - minFirst)})
				return res, nil
			}
		}
		endScan(scanStats{visited: int64(n - minFirst)})
		return res, nil
	}
	// Block-skip scan: the admission test generalizes the single-pattern
	// conditions to the batch. A block is skippable when no active match
	// can admit a node in it: maxLEL below every active length, maxLink
	// before every member (members are >= minFirst), or minLink beyond
	// the newest member (an in-block member would need a link to an
	// earlier member, which the same condition rules out inductively).
	minActiveLen := lens[0]
	recalcMinLen := func() {
		minActiveLen = int32(1) << 30
		for i := range lens {
			if !done[i] && lens[i] < minActiveLen {
				minActiveLen = lens[i]
			}
		}
	}
	recalcMinLen()
	// Partitioned parallel pass — unlimited batches only: per-match
	// limits make block admission depend on the done-set evolution,
	// entangling partitions; with no limits the admission inputs are
	// scan constants and the chain-stitch argument applies per match.
	anyLimit := false
	for i := range limits {
		if !done[i] && limits[i] > 0 {
			anyLimit = true
			break
		}
	}
	if !anyLimit {
		if parts := planScanParts(minFirst, n, scanWorkersFor(n-minFirst)); len(parts) > 1 {
			st, err := parScanManyOn(ctx, s, firsts, lens, done, minFirst, maxMember, minActiveLen, parts, res.Ends)
			endScan(st)
			if err != nil {
				return BatchScan{Scanned: res.Scanned}, err
			}
			return res, nil
		}
	}
	blocks := s.skipBlocks()
	var st scanStats
	nextCheck := int64(cancelStride)
	ra := s.readahead()
	if ra != nil {
		iss, hits := ra.Advance(minFirst + 1)
		st.raIssued += iss
		st.raHits += hits
	}
	j := minFirst + 1
	for j <= n {
		b := blockFor(j)
		last := blockLastNode(b)
		if last > n {
			last = n
		}
		bm := &blocks[b]
		if bm.maxLEL < minActiveLen || bm.maxLink < minFirst || bm.minLink > maxMember {
			st.blocksSkipped++
			j = last + 1
			continue
		}
		st.blocksScanned++
		st.visited += int64(last - j + 1)
		for ; j <= last; j++ {
			link, lel := s.linkOf(j)
			ms, ok := owners[link]
			if !ok {
				continue
			}
			for _, m := range ms {
				if done[m] || lel < lens[m] || j <= firsts[m] {
					continue
				}
				res.Ends[m] = append(res.Ends[m], j)
				owners[j] = append(owners[j], m)
				if j > maxMember {
					maxMember = j
				}
				if limits[m] > 0 && len(res.Ends[m]) >= limits[m] {
					done[m], res.Truncated[m] = true, j < n
					active--
					if lens[m] <= minActiveLen {
						recalcMinLen()
					}
				}
			}
			if active == 0 {
				st.visited -= int64(last - j)
				endScan(st)
				return res, nil
			}
		}
		if st.visited+blockSize*st.blocksSkipped >= nextCheck {
			nextCheck += cancelStride
			if ra != nil {
				iss, hits := ra.Advance(j)
				st.raIssued += iss
				st.raHits += hits
			}
			if err := ctx.Err(); err != nil {
				endScan(st)
				return BatchScan{Scanned: res.Scanned}, err
			}
		}
	}
	endScan(st)
	return res, nil
}
