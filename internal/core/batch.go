package core

// ScanMany resolves the occurrence end sets of many matches in one
// sequential pass over the backbone — the §4 optimization: "we defer this
// step until the first occurrences of all matches are found, and then, in
// one single final sequential scan of the backbone, the repeated
// occurrences of all matching patterns are concurrently found."
//
// firsts[i] is the first-occurrence end node of match i and lens[i] its
// length; the result's i-th slice lists every end node of match i in
// increasing order.
func (idx *Index) ScanMany(firsts, lens []int32) [][]int32 {
	return scanManyOn(idx, firsts, lens)
}

// ScanMany is the compact-layout variant; see Index.ScanMany.
func (c *CompactIndex) ScanMany(firsts, lens []int32) [][]int32 {
	return scanManyOn(c, firsts, lens)
}

func scanManyOn[S store](s S, firsts, lens []int32) [][]int32 {
	out := make([][]int32, len(firsts))
	if len(firsts) == 0 {
		return out
	}
	// owners[node] lists the matches whose target buffer contains node.
	owners := make(map[int32][]int32)
	minFirst := firsts[0]
	for i := range firsts {
		out[i] = []int32{firsts[i]}
		owners[firsts[i]] = append(owners[firsts[i]], int32(i))
		if firsts[i] < minFirst {
			minFirst = firsts[i]
		}
	}
	n := s.textLen()
	for j := minFirst + 1; j <= n; j++ {
		link, lel := s.linkOf(j)
		ms, ok := owners[link]
		if !ok {
			continue
		}
		for _, m := range ms {
			if lel >= lens[m] && j > firsts[m] {
				out[m] = append(out[m], j)
				owners[j] = append(owners[j], m)
			}
		}
	}
	return out
}
