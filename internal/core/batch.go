package core

import (
	"context"
	"time"

	"github.com/spine-index/spine/internal/trace"
)

// ScanMany resolves the occurrence end sets of many matches in one
// sequential pass over the backbone — the §4 optimization: "we defer this
// step until the first occurrences of all matches are found, and then, in
// one single final sequential scan of the backbone, the repeated
// occurrences of all matching patterns are concurrently found."
//
// firsts[i] is the first-occurrence end node of match i and lens[i] its
// length; the result's i-th slice lists every end node of match i in
// increasing order.
func (idx *Index) ScanMany(firsts, lens []int32) [][]int32 {
	return scanManyOn(idx, firsts, lens)
}

// ScanMany is the compact-layout variant; see Index.ScanMany.
func (c *CompactIndex) ScanMany(firsts, lens []int32) [][]int32 {
	return scanManyOn(c, firsts, lens)
}

func scanManyOn[S store](s S, firsts, lens []int32) [][]int32 {
	out := make([][]int32, len(firsts))
	if len(firsts) == 0 {
		return out
	}
	// owners[node] lists the matches whose target buffer contains node.
	owners := make(map[int32][]int32)
	minFirst := firsts[0]
	for i := range firsts {
		out[i] = []int32{firsts[i]}
		owners[firsts[i]] = append(owners[firsts[i]], int32(i))
		if firsts[i] < minFirst {
			minFirst = firsts[i]
		}
	}
	n := s.textLen()
	for j := minFirst + 1; j <= n; j++ {
		link, lel := s.linkOf(j)
		ms, ok := owners[link]
		if !ok {
			continue
		}
		for _, m := range ms {
			if lel >= lens[m] && j > firsts[m] {
				out[m] = append(out[m], j)
				owners[j] = append(owners[j], m)
			}
		}
	}
	return out
}

// BatchScan is the outcome of a limit-aware batched occurrence scan.
type BatchScan struct {
	// Ends[i] lists every occurrence end node of match i in increasing
	// order, the first occurrence included.
	Ends [][]int32
	// Truncated[i] reports that match i stopped at its limit; more
	// occurrences may exist.
	Truncated []bool
	// Scanned is the number of backbone nodes examined by the single
	// shared scan — counted once for the whole batch, which is the point
	// of §4's deferral: N patterns cost one O(n) pass, not N.
	Scanned int64
}

// ScanManyLimitCtx is ScanMany with per-match result caps and
// cancellation — the serving-stack form of the §4 optimization. firsts
// and lens are as in ScanMany; limits[i] caps match i's total occurrence
// count (the first occurrence included; <= 0 means unlimited). Each
// match's truncation mirrors the single-query FindAllCtx semantics
// exactly, so batched and per-pattern queries are byte-identical. The
// scan ends early once every match has reached its cap. When ctx
// carries a trace, the pass records one StageBatchScan span.
func (idx *Index) ScanManyLimitCtx(ctx context.Context, firsts, lens []int32, limits []int) (BatchScan, error) {
	return scanManyLimitOnCtx(ctx, idx, firsts, lens, limits)
}

// ScanManyLimitCtx is the compact-layout variant; see Index.ScanManyLimitCtx.
func (c *CompactIndex) ScanManyLimitCtx(ctx context.Context, firsts, lens []int32, limits []int) (BatchScan, error) {
	return scanManyLimitOnCtx(ctx, c, firsts, lens, limits)
}

func scanManyLimitOnCtx[S store](ctx context.Context, s S, firsts, lens []int32, limits []int) (BatchScan, error) {
	res := BatchScan{
		Ends:      make([][]int32, len(firsts)),
		Truncated: make([]bool, len(firsts)),
	}
	if err := ctx.Err(); err != nil {
		return BatchScan{}, err
	}
	if len(firsts) == 0 {
		return res, nil
	}
	tr := trace.FromContext(ctx)
	var scanStart time.Time
	if tr != nil {
		scanStart = time.Now()
	}
	endScan := func(scanned int64) {
		res.Scanned = scanned
		if tr != nil {
			tr.Add(trace.StageBatchScan, time.Since(scanStart),
				trace.Counters{Nodes: scanned, Links: scanned})
		}
	}
	// owners[node] lists the matches whose target buffer contains node;
	// done matches stay listed but are skipped, so a capped match stops
	// accumulating without disturbing the others.
	owners := make(map[int32][]int32)
	done := make([]bool, len(firsts))
	active := 0
	minFirst := int32(-1)
	for i := range firsts {
		res.Ends[i] = []int32{firsts[i]}
		if limits[i] == 1 {
			// The single-query path truncates unconditionally at limit 1
			// without scanning; mirror it so batch results stay identical.
			done[i], res.Truncated[i] = true, true
			continue
		}
		owners[firsts[i]] = append(owners[firsts[i]], int32(i))
		if minFirst < 0 || firsts[i] < minFirst {
			minFirst = firsts[i]
		}
		active++
	}
	if active == 0 {
		endScan(0)
		return res, nil
	}
	n := s.textLen()
	for j := minFirst + 1; j <= n; j++ {
		if (j-minFirst)%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				endScan(int64(j - minFirst))
				return BatchScan{Scanned: res.Scanned}, err
			}
		}
		link, lel := s.linkOf(j)
		ms, ok := owners[link]
		if !ok {
			continue
		}
		for _, m := range ms {
			if done[m] || lel < lens[m] || j <= firsts[m] {
				continue
			}
			res.Ends[m] = append(res.Ends[m], j)
			owners[j] = append(owners[j], m)
			if limits[m] > 0 && len(res.Ends[m]) >= limits[m] {
				done[m], res.Truncated[m] = true, j < n
				active--
			}
		}
		if active == 0 {
			endScan(int64(j - minFirst))
			return res, nil
		}
	}
	endScan(int64(n - minFirst))
	return res, nil
}
