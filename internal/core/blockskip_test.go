package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/trace"
)

func equalBlocks(a, b []blockMeta) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "acgt"[rng.Intn(4)]
	}
	return s
}

func TestBlockHelpers(t *testing.T) {
	for _, tc := range []struct {
		node int32
		want int
	}{{1, 0}, {2, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2}} {
		if got := blockFor(tc.node); got != tc.want {
			t.Errorf("blockFor(%d) = %d, want %d", tc.node, got, tc.want)
		}
	}
	if got := blockLastNode(0); got != 64 {
		t.Errorf("blockLastNode(0) = %d, want 64", got)
	}
	if got := blockLastNode(2); got != 192 {
		t.Errorf("blockLastNode(2) = %d, want 192", got)
	}
	for _, tc := range []struct{ n, want int }{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}} {
		if got := blocksFor(tc.n); got != tc.want {
			t.Errorf("blocksFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// The online fold in setLink must produce, after every append, exactly
// the skip index a one-shot rebuild over the current backbone produces.
func TestOnlineBlocksMatchRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	text := randDNA(rng, 1000)
	idx := New()
	for i, c := range text {
		idx.Append(c)
		if i%97 == 0 || i == len(text)-1 || i == blockSize-1 || i == blockSize {
			want := buildBlocksOn(idx)
			if !equalBlocks(idx.blocks, want) {
				t.Fatalf("after %d appends: online blocks diverge from rebuild", i+1)
			}
		}
	}
	if len(idx.blocks) != blocksFor(idx.Len()) {
		t.Fatalf("got %d blocks for n=%d, want %d", len(idx.blocks), idx.Len(), blocksFor(idx.Len()))
	}
}

// Freeze and CompactBuilder must carry the same skip index as a rebuild
// over the frozen layout.
func TestCompactBlocksMatchRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	text := randDNA(rng, 700)
	comp := mustFreeze(t, text, seq.DNA)
	if want := buildBlocksOn(comp); !equalBlocks(comp.blocks, want) {
		t.Fatal("Freeze blocks diverge from rebuild")
	}
	cb, err := NewCompactBuilder(seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range text {
		if err := cb.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	built := cb.Finish()
	if want := buildBlocksOn(built); !equalBlocks(built.blocks, want) {
		t.Fatal("CompactBuilder blocks diverge from rebuild")
	}
	if !equalBlocks(comp.blocks, built.blocks) {
		t.Fatal("Freeze and CompactBuilder skip indexes disagree")
	}
}

// Block admission must be conservative: a rejected block can never
// contain an occurrence end. Checked directly against the scalar scan's
// end set for every (pattern, block) pair of a repeat-rich text.
func TestBlockAdmitConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := randDNA(rng, 200)
	text := append(append(append([]byte{}, base...), base[:150]...), base...)
	idx := Build(text)
	for _, plen := range []int{2, 5, 17, 63, 64, 65, 150} {
		p := text[20 : 20+plen]
		first, ok := endNodeOn(idx, p)
		if !ok {
			t.Fatalf("|P|=%d: sampled pattern not found", plen)
		}
		ends := scanOccurrencesScalarOn(idx, first, int32(plen))
		isEnd := map[int32]bool{}
		for _, e := range ends {
			isEnd[e] = true
		}
		// Replay the admission decisions with the exact member horizon the
		// accelerated scan would hold entering each block.
		maxMember := first
		for _, e := range ends[1:] {
			if e > maxMember {
				maxMember = e
			}
		}
		for b := range idx.blocks {
			lo, hi := int32(b)<<blockShift+1, blockLastNode(b)
			if hi <= first {
				continue
			}
			if idx.blocks[b].admit(int32(plen), first, maxMember) {
				continue
			}
			for j := lo; j <= hi && j <= int32(idx.Len()); j++ {
				if j > first && isEnd[j] {
					t.Fatalf("|P|=%d: block %d rejected but contains occurrence end %d", plen, b, j)
				}
			}
		}
	}
}

// CountPrefixCtx must agree with filtering the full position list.
func TestCountPrefixCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := randDNA(rng, 300)
	text := append(append([]byte{}, base...), base...)
	idx := Build(text)
	ctx := context.Background()
	for _, plen := range []int{1, 3, 8, 40} {
		p := text[5 : 5+plen]
		all := idx.FindAll(p)
		for _, maxStart := range []int{-1, 0, 1, 100, 299, 300, 301, len(text)} {
			got, err := idx.CountPrefixCtx(ctx, p, maxStart)
			if err != nil {
				t.Fatal(err)
			}
			want := len(all)
			if maxStart >= 0 {
				want = 0
				for _, pos := range all {
					if pos < maxStart {
						want++
					}
				}
			}
			if got != want {
				t.Fatalf("CountPrefixCtx(|P|=%d, maxStart=%d) = %d, want %d", plen, maxStart, got, want)
			}
		}
	}
	if got, err := idx.CountPrefixCtx(ctx, nil, 10); err != nil || got != 10 {
		t.Fatalf("empty pattern bounded count = %d, %v; want 10", got, err)
	}
}

// Acceptance: on a large (>1MB) text and a selective pattern (|P| far
// above the median LEL) the accelerated scan must actually skip blocks,
// report them in the trace, and keep the NodesChecked partition exact.
func TestBlocksSkippedOnSelectivePattern(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	text := randDNA(rng, 1<<20|12345)
	idx := Build(text)
	p := text[512000 : 512000+48] // random 48-mer: almost surely unique
	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	res, err := idx.FindAllCtx(ctx, p, 0)
	if err != nil {
		t.Fatal(err)
	}

	prev := SetBlockSkip(false)
	scalar := idx.FindAll(p)
	SetBlockSkip(prev)
	if !equalInts(res.Positions, scalar) {
		t.Fatalf("accelerated positions %v != scalar %v", res.Positions, scalar)
	}

	var skipped, scanned, nodes int64
	for _, rec := range tr.Records() {
		nodes += rec.Nodes
		skipped += rec.BlocksSkipped
		scanned += rec.BlocksScanned
	}
	if skipped == 0 {
		t.Fatal("selective pattern on 1MB text skipped no blocks")
	}
	if skipped < scanned {
		t.Fatalf("selective pattern skipped %d blocks but scanned %d", skipped, scanned)
	}
	if nodes != res.NodesChecked {
		t.Fatalf("trace Nodes sum %d != NodesChecked %d (partition broken)", nodes, res.NodesChecked)
	}
	if int64(idx.Len()) < 4*res.NodesChecked {
		t.Fatalf("accelerated scan visited %d of %d nodes — skip index ineffective", res.NodesChecked, idx.Len())
	}
}

// Serialization: v2 streams carry the skip index verbatim, and loading
// must reject a stream whose block count disagrees with n.
func TestSerializeRoundTripBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := randDNA(rng, 400)
	text := append(append([]byte{}, base...), base...)
	comp := mustFreeze(t, text, seq.DNA)
	var buf bytes.Buffer
	if err := comp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCompact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !equalBlocks(back.blocks, comp.blocks) {
		t.Fatal("round-tripped skip index differs")
	}
	p := text[10:42]
	if got, want := back.FindAll(p), comp.FindAll(p); !equalInts(got, want) {
		t.Fatalf("round-tripped FindAll = %v, want %v", got, want)
	}
}
