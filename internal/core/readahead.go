package core

import "sync/atomic"

// ScanReadahead receives forward-progress hints from the occurrence
// scan. A disk-backed layout registers one so larger-than-RAM backbone
// sweeps stream ahead of the scan cursor instead of faulting randomly;
// memory-resident layouts leave it nil and the scan loops skip the
// checkpoint entirely.
//
// Advance hints that the scan is about to walk backbone rows forward
// from node j. Implementations prefetch whatever byte ranges back those
// rows and report the prefetch windows issued and the windows already
// covered by an earlier hint (range-cache hits). Advance is called at
// most once per cancelStride of scan work, so it may do real work
// (syscalls) without showing up in the per-node hot loop.
type ScanReadahead interface {
	Advance(j int32) (issued, hits int64)
}

// SetScanReadahead registers (or, with nil, removes) the readahead
// sink consulted by this index's occurrence scans. Each scan loads the
// sink once at entry, so swapping it mid-query affects only later
// queries.
func (c *CompactIndex) SetScanReadahead(ra ScanReadahead) {
	if ra == nil {
		c.ra.Store(nil)
		return
	}
	c.ra.Store(&ra)
}

func (c *CompactIndex) readahead() ScanReadahead {
	if p := c.ra.Load(); p != nil {
		return *p
	}
	return nil
}

// readahead on the reference layout: always memory-resident, no sink.
func (idx *Index) readahead() ScanReadahead { return nil }

// raPointer is the field type backing SetScanReadahead; an atomic
// pointer-to-interface so serving stacks can attach the sink after the
// index is already taking queries.
type raPointer = atomic.Pointer[ScanReadahead]
