package core

import "sort"

// Approximate matching over the SPINE automaton. The valid-path transition
// relation is deterministic per character, so approximate search is a
// bounded-error DFS over (node, pathlen, pattern position) states: at each
// state every traversable outgoing character is a branch, and mismatching
// the pattern (or, for edit distance, inserting/deleting) spends error
// budget. Suffix links are not needed — this is the "approximate matching"
// capability §7 of the paper points out space-stripped indexes lose.
//
// Cost grows with alphabet^k; intended for the small error budgets (k <= 3)
// used in seed-and-extend pipelines.

// Distance selects the error model for approximate search.
type Distance int

const (
	// Hamming counts substitutions only (pattern and match have equal
	// length).
	Hamming Distance = iota
	// Edit counts substitutions, insertions and deletions (Levenshtein).
	Edit
)

// edgeOut is one traversable outgoing edge at a (node, pathlen) state.
type edgeOut struct {
	c    byte
	next int32
}

// successors enumerates every character traversable from node v at path
// length pathlen, with its destination. At most one edge exists per
// character (vertebra or resolved rib family member).
func (idx *Index) successors(v, pathlen int32) []edgeOut {
	var out []edgeOut
	if int(v) < len(idx.text) {
		out = append(out, edgeOut{idx.text[v], v + 1})
	}
	for _, r := range idx.Ribs(int(v)) {
		if pathlen <= r.PT {
			out = append(out, edgeOut{r.CL, r.Dest})
			continue
		}
		// Fall through the extrib chain of r's family.
		node := r.Dest
		for {
			x, ok := idx.findExtrib(node)
			if !ok {
				break
			}
			if x.ParentSrc == v && x.PRT == r.PT && x.PT >= pathlen {
				out = append(out, edgeOut{r.CL, x.Dest})
				break
			}
			node = x.Dest
		}
	}
	return out
}

// FindAllWithin returns the start offsets of every substring of the
// indexed text whose distance to p is at most k under the given model, in
// increasing order without duplicates. k = 0 degenerates to FindAll.
//
// For Hamming, every reported window has length len(p); for Edit, windows
// may be up to k shorter or longer, and each start offset is reported once
// even when several window lengths match there.
func (idx *Index) FindAllWithin(p []byte, k int, model Distance) []int {
	if k < 0 {
		return nil
	}
	if len(p) == 0 {
		// Consistent with FindAll: the empty pattern matches everywhere
		// (under Edit with budget k the windows are non-empty too, but the
		// start set is the same).
		return idx.FindAll(nil)
	}
	// Collect distinct end states (end node, matched length): each is the
	// first-occurrence end of one matching variant string.
	type endState struct{ node, length int32 }
	ends := make(map[endState]bool)

	type frame struct {
		node, plen int32
		i          int32 // pattern position consumed
		errs       int32 // budget remaining
	}
	seen := make(map[frame]bool)
	var dfs func(f frame)
	dfs = func(f frame) {
		if seen[f] {
			return
		}
		seen[f] = true
		if f.i == int32(len(p)) {
			ends[endState{f.node, f.plen}] = true
			if model == Hamming || f.errs == 0 {
				return
			}
			// Edit: trailing insertions (text consumes extra characters).
			for _, e := range idx.successors(f.node, f.plen) {
				dfs(frame{e.next, f.plen + 1, f.i, f.errs - 1})
			}
			return
		}
		if model == Edit && f.errs > 0 {
			// Deletion: skip a pattern character.
			dfs(frame{f.node, f.plen, f.i + 1, f.errs - 1})
		}
		for _, e := range idx.successors(f.node, f.plen) {
			if e.c == p[f.i] {
				dfs(frame{e.next, f.plen + 1, f.i + 1, f.errs})
			} else if f.errs > 0 {
				// Substitution.
				dfs(frame{e.next, f.plen + 1, f.i + 1, f.errs - 1})
			}
			if model == Edit && f.errs > 0 {
				// Insertion: text consumes a character the pattern lacks.
				dfs(frame{e.next, f.plen + 1, f.i, f.errs - 1})
			}
		}
	}
	dfs(frame{0, 0, 0, int32(k)})

	// Resolve every variant's occurrences and merge start offsets.
	starts := make(map[int]bool)
	for es := range ends {
		if es.length == 0 {
			continue
		}
		for _, end := range idx.scanOccurrences(es.node, es.length) {
			starts[int(end-es.length)] = true
		}
	}
	out := make([]int, 0, len(starts))
	for s := range starts {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// CountWithin returns the number of distinct start offsets matching p
// within distance k.
func (idx *Index) CountWithin(p []byte, k int, model Distance) int {
	return len(idx.FindAllWithin(p, k, model))
}
