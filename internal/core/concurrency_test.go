package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/spine-index/spine/internal/seq"
)

// TestConcurrentReaders hammers a built index (and its compact twin) from
// many goroutines at once; run with -race to validate the documented
// guarantee that completed indexes are safe for concurrent readers.
func TestConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	text := randomRepetitive(rng, []byte("acgt"), 4000)
	idx := Build(text)
	comp, err := Freeze(idx, seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-generate per-goroutine workloads (rand.Rand is not thread-safe).
	const workers = 8
	patterns := make([][][]byte, workers)
	for w := range patterns {
		for q := 0; q < 50; q++ {
			off := rng.Intn(len(text) - 10)
			patterns[w] = append(patterns[w], text[off:off+4+rng.Intn(6)])
		}
	}
	want := make([][]int, workers)
	for w := range want {
		want[w] = idx.FindAll(patterns[w][0])
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := NewCursor(idx)
			for _, p := range patterns[w] {
				if !idx.Contains(p) {
					t.Errorf("worker %d: Contains(%q) = false", w, p)
					return
				}
				if got := comp.FindAll(p); len(got) == 0 {
					t.Errorf("worker %d: compact FindAll(%q) empty", w, p)
					return
				}
				for _, c := range p {
					cur.Advance(c)
				}
				cur.Reset()
			}
			if got := idx.FindAll(patterns[w][0]); !equalInts(got, want[w]) {
				t.Errorf("worker %d: FindAll drifted", w)
			}
		}(w)
	}
	wg.Wait()
}
