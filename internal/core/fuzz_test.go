package core

import (
	"bytes"
	"testing"

	"github.com/spine-index/spine/internal/seq"
)

// FuzzBuildAndQuery drives the full index lifecycle from fuzz inputs:
// build, verify, query against brute force, freeze, and serialize.
// `go test` runs the seed corpus; `go test -fuzz=FuzzBuildAndQuery` mines.
func FuzzBuildAndQuery(f *testing.F) {
	f.Add([]byte("aaccacaaca"), []byte("ac"))
	f.Add([]byte("abababab"), []byte("bab"))
	f.Add([]byte(""), []byte("a"))
	f.Add([]byte("accacacaaaacacacccaaacacacccaaccaaacaaaaaaaacaaccaaacacaaaaaacaacaacaaaccaaacaaaccaaacaaa"), []byte("caaacaac"))
	f.Fuzz(func(t *testing.T, rawText, rawPat []byte) {
		if len(rawText) > 2000 || len(rawPat) > 50 {
			return
		}
		text := dnaFrom(rawText)
		pat := dnaFrom(rawPat)
		idx := Build(text)
		if err := idx.Verify(); err != nil {
			t.Fatalf("Verify(%q): %v", text, err)
		}
		if got, want := idx.Contains(pat), bruteContains(text, pat); got != want {
			t.Fatalf("Contains(%q in %q) = %v, want %v", pat, text, got, want)
		}
		occ := idx.FindAll(pat)
		for i, off := range occ {
			if i > 0 && occ[i-1] >= off {
				t.Fatalf("FindAll not strictly increasing: %v", occ)
			}
			if off < 0 || off+len(pat) > len(text) || string(text[off:off+len(pat)]) != string(pat) {
				t.Fatalf("FindAll(%q in %q): bogus offset %d", pat, text, off)
			}
		}
		comp, err := Freeze(idx, seq.DNA)
		if err != nil {
			t.Fatalf("Freeze(%q): %v", text, err)
		}
		if got := comp.FindAll(pat); !equalInts(got, occ) {
			t.Fatalf("compact FindAll(%q) = %v, reference %v", pat, got, occ)
		}
		var buf bytes.Buffer
		if err := comp.Save(&buf); err != nil {
			t.Fatalf("Save: %v", err)
		}
		back, err := ReadCompact(&buf)
		if err != nil {
			t.Fatalf("ReadCompact: %v", err)
		}
		if got := back.FindAll(pat); !equalInts(got, occ) {
			t.Fatalf("round-tripped FindAll(%q) = %v, want %v", pat, got, occ)
		}
	})
}

// FuzzReadCompact feeds arbitrary bytes to the deserializer: it must
// reject or accept without panicking or over-allocating, never crash.
func FuzzReadCompact(f *testing.F) {
	// Seed with a genuine serialized index and simple garbage.
	comp, err := Freeze(Build([]byte("aaccacaaca")), seq.DNA)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := comp.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SPNE"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCompact(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent enough to query.
		c.Contains([]byte("a"))
		c.FindAll([]byte("ac"))
	})
}
