// Package core implements the SPINE index — the horizontally compacted
// suffix trie of Neelapala, Mittal & Haritsa (ICDE 2004) — together with
// the compact table layout of §5 of the paper.
//
// # Structure
//
// The index over a string s of length n consists of nodes 0..n on a linear
// backbone. Node i sits below the length-i prefix B_i = s[0:i]. The edges:
//
//   - Vertebras: implicit forward edges i -> i+1 labelled s[i]. Because node
//     creation order equals logical order, no destination is stored; the
//     character labels are the text itself, which is why the data string
//     need not be retained separately.
//   - Links: one backward edge per node (except the root). link(i) is the
//     termination node — the first-occurrence end — of the longest suffix
//     of B_i that also occurs ending strictly before i; lel(i) is that
//     suffix's length (the Longest Early-terminating suffix Length). A node
//     whose every nonempty suffix is new links to the root with LEL 0.
//   - Ribs: forward cross edges created to extend early-terminating
//     suffixes. A rib t -> d with character label CL=c and Pathlength
//     Threshold PT=p may be traversed by a search whose path length at t is
//     <= p.
//   - Extribs: extension ribs created when an existing rib's PT is too
//     small. Extribs are chained starting at the rib's destination node
//     (one outgoing extrib per node); each carries PT (its own threshold)
//     and PRT (the parent rib's PT). An extrib represents the same single
//     character as its parent rib.
//
// # Central invariant
//
// Every valid path (root-originated, all PT constraints respected) of
// length l ending at node v spells exactly s[v-l:v], and each substring of
// s has exactly one valid path, ending at its first-occurrence end node.
// Consequently the valid paths are precisely the substrings of s: no false
// positives and no false negatives. The exhaustive property tests in this
// package check that equivalence directly against a brute-force oracle.
//
// # Deviation from the paper
//
// The paper identifies an extrib inside a shared chain by PRT alone. Two
// parent ribs with equal PTs can come to share one chain (all extribs
// created in one append step target the same tail node, merging chains),
// at which point PRT is ambiguous — and the ambiguity is real: see
// TestPaperPRTOnlyRuleCounterexample for a string on which the paper's
// rule admits a false positive. Each extrib here additionally records its
// parent rib's source node and is matched on (ParentSrc, PRT); see
// DESIGN.md.
//
// # Layout
//
// Backbone labels (links, LELs) live in flat arrays. Downstream cross
// edges are sparse (~a third of nodes, Table 4), so nodes carry a -1 /
// edge-list index, and edge records inline up to three ribs — the DNA
// worst case — spilling larger alphabets to a slice. The structure is
// almost pointer-free, which keeps Go GC cost negligible at genome scale.
package core

import "fmt"

// Rib is a forward cross edge from a backbone node.
type Rib struct {
	CL   byte  // character label
	Dest int32 // destination node
	PT   int32 // pathlength threshold: traversable iff pathlen <= PT
}

// Extrib is an extension rib. It hangs off the node it is stored at and
// extends the rib family identified by (ParentSrc, PRT); it represents the
// same character as its parent rib.
type Extrib struct {
	Dest      int32 // destination node
	PT        int32 // new, larger pathlength threshold
	PRT       int32 // parent rib's PT
	ParentSrc int32 // parent rib's source node (disambiguation; see package doc)
}

// inlineRibs is the number of rib slots stored directly in an edge record:
// the DNA worst case (alphabet size - 1). Larger alphabets spill.
const inlineRibs = 3

// nodeEdges holds the downstream cross edges of one backbone node.
type nodeEdges struct {
	ribs   [inlineRibs]Rib
	more   []Rib // spill beyond inlineRibs (protein alphabets)
	ribN   uint8
	hasExt bool
	ext    Extrib
}

// noEdges marks a node without downstream cross edges in Index.edgeID.
const noEdges = int32(-1)

// Index is an in-memory SPINE index over a byte string. The zero value is
// not ready to use; call New or Build. An Index is safe for concurrent
// readers once construction stops; it must not be appended to concurrently
// with queries.
type Index struct {
	text   []byte      // backbone vertebra character labels
	link   []int32     // link[i] for node i; link[0] unused
	lel    []int32     // lel[i] for node i; lel[0] unused
	edgeID []int32     // per node: index into edges, or noEdges
	edges  []nodeEdges // records for nodes with downstream cross edges
	blocks []blockMeta // block-max skip index, folded online in setLink

	// blockLEL packs the blocks' maxLEL fields as saturated uint16 lanes
	// (4 blocks per word) for the SWAR admission prefilter; folded online
	// alongside blocks.
	blockLEL []uint64

	// construction statistics, maintained online
	maxLEL, maxPT, maxPRT int32
	ribCount, extribCount int
}

// Build constructs the SPINE index for s in a single pass. The input is
// copied; Build never aliases caller memory.
func Build(s []byte) *Index {
	idx := New()
	idx.grow(len(s))
	for _, c := range s {
		idx.Append(c)
	}
	return idx
}

// New returns an empty index ready for online Append calls. SPINE
// construction is online: the index over the first k appended characters is
// always complete and queryable, and is byte-identical to the first-k
// fragment of any longer index (prefix partitioning).
func New() *Index {
	return &Index{
		link:   make([]int32, 1),
		lel:    make([]int32, 1),
		edgeID: []int32{noEdges},
	}
}

// grow pre-allocates backbone storage for n more characters.
func (idx *Index) grow(n int) {
	need := len(idx.text) + n
	if cap(idx.text) < need {
		t := make([]byte, len(idx.text), need)
		copy(t, idx.text)
		idx.text = t
	}
	if cap(idx.link) < need+1 {
		idx.link = growInt32(idx.link, need+1)
		idx.lel = growInt32(idx.lel, need+1)
		idx.edgeID = growInt32(idx.edgeID, need+1)
	}
	// Edge records cover roughly a third of nodes (Table 4).
	if cap(idx.edges) < need/3 {
		e := make([]nodeEdges, len(idx.edges), need/3)
		copy(e, idx.edges)
		idx.edges = e
	}
	if cap(idx.blocks) < blocksFor(need) {
		b := make([]blockMeta, len(idx.blocks), blocksFor(need))
		copy(b, idx.blocks)
		idx.blocks = b
	}
	if lanes := (blocksFor(need) + 3) / 4; cap(idx.blockLEL) < lanes {
		l := make([]uint64, len(idx.blockLEL), lanes)
		copy(l, idx.blockLEL)
		idx.blockLEL = l
	}
}

func growInt32(s []int32, capacity int) []int32 {
	out := make([]int32, len(s), capacity)
	copy(out, s)
	return out
}

// Len returns the number of indexed characters (== number of non-root
// nodes).
func (idx *Index) Len() int { return len(idx.text) }

// Text returns the indexed string. SPINE stores it as the vertebra
// character labels; the returned slice is the index's own storage and must
// not be modified.
func (idx *Index) Text() []byte { return idx.text }

// Link returns the link destination and LEL of node i in 1..Len().
func (idx *Index) Link(i int) (dest, lel int32) { return idx.link[i], idx.lel[i] }

// edgesAt returns the edge record of node i, or nil.
func (idx *Index) edgesAt(i int32) *nodeEdges {
	id := idx.edgeID[i]
	if id == noEdges {
		return nil
	}
	return &idx.edges[id]
}

// ensureEdges returns the edge record of node i, allocating one if needed.
func (idx *Index) ensureEdges(i int32) *nodeEdges {
	if id := idx.edgeID[i]; id != noEdges {
		return &idx.edges[id]
	}
	idx.edgeID[i] = int32(len(idx.edges))
	idx.edges = append(idx.edges, nodeEdges{})
	return &idx.edges[len(idx.edges)-1]
}

// Ribs returns a copy of the ribs emanating from node i in creation order
// (nil if none).
func (idx *Index) Ribs(i int) []Rib {
	e := idx.edgesAt(int32(i))
	if e == nil || e.ribN == 0 {
		return nil
	}
	out := make([]Rib, 0, e.ribN)
	inline := int(e.ribN)
	if inline > inlineRibs {
		inline = inlineRibs
	}
	out = append(out, e.ribs[:inline]...)
	return append(out, e.more...)
}

// ExtribAt returns the extrib emanating from node i, if any.
func (idx *Index) ExtribAt(i int) (Extrib, bool) {
	if e := idx.edgesAt(int32(i)); e != nil && e.hasExt {
		return e.ext, true
	}
	return Extrib{}, false
}

// ribAt returns the rib labelled c at node t, if present. At most one rib
// per (node, character) exists, and never one duplicating the node's
// vertebra label.
func (idx *Index) ribAt(t int32, c byte) (Rib, bool) {
	e := idx.edgesAt(t)
	if e == nil {
		return Rib{}, false
	}
	inline := int(e.ribN)
	if inline > inlineRibs {
		inline = inlineRibs
	}
	for j := 0; j < inline; j++ {
		if e.ribs[j].CL == c {
			return e.ribs[j], true
		}
	}
	for _, r := range e.more {
		if r.CL == c {
			return r, true
		}
	}
	return Rib{}, false
}

func (idx *Index) addRib(t int32, r Rib) {
	e := idx.ensureEdges(t)
	if int(e.ribN) < inlineRibs {
		e.ribs[e.ribN] = r
	} else {
		e.more = append(e.more, r)
	}
	e.ribN++
	idx.ribCount++
	if r.PT > idx.maxPT {
		idx.maxPT = r.PT
	}
}

func (idx *Index) setExtrib(t int32, x Extrib) {
	e := idx.ensureEdges(t)
	if e.hasExt {
		// The construction algorithm only creates an extrib at the end of a
		// chain, i.e. at a node without one; anything else is a bug.
		panic(fmt.Sprintf("core: node %d already has an extrib", t))
	}
	e.ext = x
	e.hasExt = true
	idx.extribCount++
	if x.PT > idx.maxPT {
		idx.maxPT = x.PT
	}
	if x.PRT > idx.maxPRT {
		idx.maxPRT = x.PRT
	}
}

// Append extends the index by one character, creating one backbone node
// and whatever links, ribs and extribs the construction algorithm
// (Figure 4 of the paper) requires. Cost is amortized O(chain length);
// total construction is observed linear on genomic data.
func (idx *Index) Append(c byte) {
	k := int32(len(idx.text)) // current tail node
	idx.text = append(idx.text, c)
	idx.link = append(idx.link, 0)
	idx.lel = append(idx.lel, 0)
	idx.edgeID = append(idx.edgeID, noEdges)
	newNode := k + 1

	if k == 0 {
		// First character: the only suffix is end-terminating; the link
		// records the null suffix at the root.
		idx.setLink(newNode, 0, 0)
		return
	}

	// Walk the link chain of the previous tail. At each chain node t the
	// suffix lengths (lel(t), L] of B_k still need their c-extension
	// recorded; L is the LEL of the last link traversed.
	t := idx.link[k]
	L := idx.lel[k]
	for {
		// CASE 1 (paper line 11): a vertebra for c exists at t. The suffix
		// set extends through it; all shorter suffixes were extended when
		// that edge first appeared in this chain.
		if idx.text[t] == c {
			idx.setLink(newNode, t+1, L+1)
			return
		}
		if r, ok := idx.ribAt(t, c); ok {
			if L <= r.PT {
				// CASE 2 (line 16): rib threshold suffices; already extended.
				idx.setLink(newNode, r.Dest, L+1)
				return
			}
			// CASE 4 (line 15): rib exists but its PT is too small; extend
			// the rib family through its extrib chain.
			idx.handleExtribs(t, r, L, newNode)
			return
		}
		// CASE 3 (line 19): no edge for c; record the extension with a new
		// rib to the tail and keep walking the chain for shorter suffixes.
		idx.addRib(t, Rib{CL: c, Dest: newNode, PT: L})
		if t == 0 {
			// Line 24: chain exhausted; only the null suffix remains.
			idx.setLink(newNode, 0, 0)
			return
		}
		t, L = idx.link[t], idx.lel[t]
	}
}

// handleExtribs implements the extrib arm of the construction: rib r at
// node t failed the threshold test for required length L. Either an extrib
// of r's family already covers L (stop), or a new extrib is appended at the
// end of the chain pointing to the new tail node.
func (idx *Index) handleExtribs(t int32, r Rib, L, newNode int32) {
	// lastDest/lastPT track the family member with the largest PT < L; the
	// rib itself is the first member.
	lastDest, lastPT := r.Dest, r.PT
	node := r.Dest
	for {
		e := idx.edgesAt(node)
		if e == nil || !e.hasExt {
			break
		}
		x := e.ext
		if x.ParentSrc == t && x.PRT == r.PT {
			if x.PT >= L {
				// An existing extrib already records this extension; the
				// suffix set terminates at its destination.
				idx.setLink(newNode, x.Dest, L+1)
				return
			}
			lastDest, lastPT = x.Dest, x.PT
		}
		node = x.Dest
	}
	// End of chain: create the new extrib there. Suffix lengths
	// (lastPT, L] become end-terminating at the new node via it, so the
	// longest early-terminating suffix of the new prefix has length
	// lastPT+1, terminating at the previous family member's destination.
	idx.setExtrib(node, Extrib{Dest: newNode, PT: L, PRT: r.PT, ParentSrc: t})
	idx.setLink(newNode, lastDest, lastPT+1)
}

// setLink records the new node's backward link. It runs exactly once
// per append, always for the newest node, so it doubles as the online
// fold point of the block-max skip index: the skip metadata is complete
// after every Append, never stale, and costs O(1) per character.
func (idx *Index) setLink(node, dest, lel int32) {
	idx.link[node] = dest
	idx.lel[node] = lel
	if lel > idx.maxLEL {
		idx.maxLEL = lel
	}
	idx.blocks = foldBlock(idx.blocks, node, dest, lel)
	idx.blockLEL = foldBlockLEL(idx.blockLEL, node, lel)
}
