package core

import (
	"context"
	"testing"

	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/suffixtree"
)

// FuzzParallelScanEquivalence differentially tests the partitioned
// parallel scan: parallel == sequential == suffix tree, across layouts
// (reference and compact), kernels, limits, worker counts, and appends
// after the initial build. NodesChecked must match the sequential
// oracle exactly — the replay pass makes it parallelism-invariant on
// every completed scan, truncated or not. Seeds straddle the block
// boundary and the partition boundaries of small worker counts.
// `go test` runs the corpus; `go test -fuzz=FuzzParallelScanEquivalence`
// mines.
func FuzzParallelScanEquivalence(f *testing.F) {
	f.Add([]byte("abababab"), []byte("ab"), uint8(0), uint8(3), uint8(2))
	f.Add([]byte("aaccacaaca"), []byte("ca"), uint8(5), uint8(0), uint8(4))
	f.Add(repeatStr("acgt", 16), []byte("acgtacgt"), uint8(1), uint8(2), uint8(3))
	f.Add(repeatStr("acca", 33), []byte("cca"), uint8(63), uint8(1), uint8(2)) // boundary straddle
	f.Add(repeatStr("a", 65), []byte("aaa"), uint8(64), uint8(4), uint8(8))    // runs cross block + partition edges
	f.Add(repeatStr("gattaca", 40), repeatStr("gattaca", 10), uint8(2), uint8(0), uint8(5))
	f.Fuzz(func(t *testing.T, rawText, rawPat []byte, extraRaw, limRaw, wRaw uint8) {
		if len(rawText) > 4096 || len(rawPat) > 160 {
			return
		}
		text := dnaFrom(rawText)
		pat := dnaFrom(rawPat)
		idx := Build(text)
		// Extend after the build: appended nodes must partition and
		// stitch exactly like one-shot builds.
		for i := 0; i < int(extraRaw)%70; i++ {
			c := "acgt"[(int(extraRaw)+i*7)%4]
			idx.Append(c)
			text = append(text, c)
		}
		st, err := suffixtree.Build(text, 0xFF)
		if err != nil {
			t.Fatalf("suffixtree.Build: %v", err)
		}
		oracle := st.FindAll(pat)

		workers := 2 + int(wRaw)%4 // 2..5
		limit := int(limRaw) % 5
		prevT := SetScanParallelThreshold(1)
		prevP := SetScanParallelism(1)
		defer func() {
			SetScanParallelism(prevP)
			SetScanParallelThreshold(prevT)
		}()
		ctx := context.Background()

		comp, err := Freeze(idx, seq.DNA)
		if err != nil {
			t.Fatalf("Freeze: %v", err)
		}

		for _, kernel := range []ScanKernel{KernelSWAR, KernelScalar} {
			prevK := SetScanKernel(kernel)
			SetScanParallelism(1)
			seqAll, err := idx.FindAllCtx(ctx, pat, 0)
			if err != nil {
				t.Fatal(err)
			}
			seqLim, err := idx.FindAllCtx(ctx, pat, limit)
			if err != nil {
				t.Fatal(err)
			}
			seqCount, err := idx.CountCtx(ctx, pat)
			if err != nil {
				t.Fatal(err)
			}

			if !equalInts(seqAll.Positions, oracle) {
				t.Fatalf("kernel %v sequential FindAll(%q in %q) = %v, want %v", kernel, pat, text, seqAll.Positions, oracle)
			}

			SetScanParallelism(workers)
			parAll, err := idx.FindAllCtx(ctx, pat, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(parAll.Positions, oracle) ||
				parAll.Truncated != seqAll.Truncated ||
				parAll.NodesChecked != seqAll.NodesChecked {
				t.Fatalf("kernel %v workers %d FindAll(%q in %q):\n par (%v, trunc %v, nodes %d)\n seq (%v, trunc %v, nodes %d)",
					kernel, workers, pat, text,
					parAll.Positions, parAll.Truncated, parAll.NodesChecked,
					seqAll.Positions, seqAll.Truncated, seqAll.NodesChecked)
			}
			parLim, err := idx.FindAllCtx(ctx, pat, limit)
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(parLim.Positions, seqLim.Positions) ||
				parLim.Truncated != seqLim.Truncated ||
				parLim.NodesChecked != seqLim.NodesChecked {
				t.Fatalf("kernel %v workers %d FindAll(%q, limit %d): par (%v, %v, %d) != seq (%v, %v, %d)",
					kernel, workers, pat, limit,
					parLim.Positions, parLim.Truncated, parLim.NodesChecked,
					seqLim.Positions, seqLim.Truncated, seqLim.NodesChecked)
			}
			if got, err := idx.CountCtx(ctx, pat); err != nil || got != seqCount {
				t.Fatalf("kernel %v workers %d Count(%q) = %d, %v; want %d", kernel, workers, pat, got, err, seqCount)
			}
			maxStart := int(limRaw)
			wantBounded := 0
			for _, pos := range oracle {
				if pos < maxStart {
					wantBounded++
				}
			}
			if got, err := idx.CountPrefixCtx(ctx, pat, maxStart); err != nil || got != wantBounded {
				t.Fatalf("kernel %v workers %d CountPrefix(%q, %d) = %d, %v; want %d", kernel, workers, pat, maxStart, got, err, wantBounded)
			}

			// Compact layout through the same parallel path.
			compAll, err := comp.FindAllCtx(ctx, pat, limit)
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(compAll.Positions, seqLim.Positions) || compAll.Truncated != seqLim.Truncated {
				t.Fatalf("kernel %v workers %d compact FindAll(%q, limit %d) = %v, want %v",
					kernel, workers, pat, limit, compAll.Positions, seqLim.Positions)
			}
			SetScanKernel(prevK)
		}

		// Batched scan parity: the unlimited batch is the parallel shape;
		// feed the pattern plus a prefix so chains overlap across matches.
		if first, ok := endNodeOn(idx, pat); ok {
			firsts := []int32{first}
			lens := []int32{int32(len(pat))}
			if len(pat) > 1 {
				if pf, ok := endNodeOn(idx, pat[:1]); ok {
					firsts = append(firsts, pf)
					lens = append(lens, 1)
				}
			}
			limits := make([]int, len(firsts))
			SetScanParallelism(1)
			want, err := idx.ScanManyLimitCtx(ctx, firsts, lens, limits)
			if err != nil {
				t.Fatal(err)
			}
			SetScanParallelism(workers)
			got, err := idx.ScanManyLimitCtx(ctx, firsts, lens, limits)
			if err != nil {
				t.Fatal(err)
			}
			if got.Scanned != want.Scanned {
				t.Fatalf("workers %d batch Scanned = %d, want %d", workers, got.Scanned, want.Scanned)
			}
			for i := range want.Ends {
				if !equalInt32s(got.Ends[i], want.Ends[i]) {
					t.Fatalf("workers %d batch match %d ends = %v, want %v", workers, i, got.Ends[i], want.Ends[i])
				}
			}
		}
	})
}
