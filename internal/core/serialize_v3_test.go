package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"hash"
	"hash/crc32"
	"math/rand"
	"testing"

	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/suffixtree"
)

// saveV3 serializes c with the current writer.
func saveV3(t *testing.T, c *CompactIndex) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return buf.Bytes()
}

// v3HeaderGeometry locates the parts of a v3 image the corruption tests
// tamper with: the directory entries and the header checksum.
func v3HeaderGeometry(data []byte) (dirOff, crcOff, dataStart int64) {
	alphaLen := int64(data[21])
	dirOff = v3HeaderFixed + alphaLen + 4
	headerLen := dirOff + v3SectionCount*v3DirEntrySize + 4
	return dirOff, headerLen - 4, align8(headerLen)
}

// fixHeaderCRC recomputes the header checksum after a deliberate header
// edit, so the structural validation under test — not the checksum — is
// what rejects the image.
func fixHeaderCRC(data []byte) {
	_, crcOff, _ := v3HeaderGeometry(data)
	binary.LittleEndian.PutUint32(data[crcOff:], crc32.ChecksumIEEE(data[:crcOff]))
}

// openAllPaths drives every v3 open path over one image, asserting none
// of them panics, and reports whether each accepted it.
func openAllPaths(t *testing.T, data []byte) (readOK, bytesOK, atOK bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("open path panicked: %v", r)
		}
	}()
	if _, err := ReadCompact(bytes.NewReader(data)); err == nil {
		readOK = true
	}
	if _, _, err := OpenCompactBytes(aligned8(append([]byte(nil), data...)), true); err == nil {
		bytesOK = true
	}
	if _, _, err := OpenCompactAt(bytes.NewReader(data)); err == nil {
		atOK = true
	}
	return readOK, bytesOK, atOK
}

func TestV3RejectsCorruptSectionDirectory(t *testing.T) {
	c := mustFreeze(t, []byte("aaccacaacaggtaccaaccacaaca"), seq.DNA)
	full := saveV3(t, c)
	dirOff, _, dataStart := v3HeaderGeometry(full)
	entryOff := func(data []byte, i int) []byte { return data[dirOff+int64(i)*v3DirEntrySize:] }

	cases := []struct {
		name   string
		tamper func(data []byte)
	}{
		{"misaligned offset", func(data []byte) {
			e := entryOff(data, 0)
			binary.LittleEndian.PutUint64(e, binary.LittleEndian.Uint64(e)+1)
		}},
		{"offset before data start", func(data []byte) {
			binary.LittleEndian.PutUint64(entryOff(data, 0), uint64(dataStart-8))
		}},
		{"offset past end of file", func(data []byte) {
			binary.LittleEndian.PutUint64(entryOff(data, 0), uint64(len(data))+64)
		}},
		{"length past end of file", func(data []byte) {
			binary.LittleEndian.PutUint64(entryOff(data, 0)[8:], uint64(len(data)))
		}},
		{"overlapping sections", func(data []byte) {
			// Point section 1 at section 0's bytes: same offset, same CRC
			// as declared, but the directory must be strictly ascending.
			e0, e1 := entryOff(data, 0), entryOff(data, 1)
			copy(e1[:16], e0[:16])
		}},
		{"huge fileSize", func(data []byte) {
			binary.LittleEndian.PutUint64(data[8:], uint64(maxV3FileSize)+8)
		}},
		{"tiny fileSize", func(data []byte) {
			binary.LittleEndian.PutUint64(data[8:], uint64(v3HeaderFixed))
		}},
		{"zero section count", func(data []byte) {
			binary.LittleEndian.PutUint32(data[v3HeaderFixed+int(data[21]):], 0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			corrupt := append([]byte(nil), full...)
			tc.tamper(corrupt)
			fixHeaderCRC(corrupt)
			if r, b, a := openAllPaths(t, corrupt); r || b || a {
				t.Fatalf("corrupt image accepted (ReadCompact=%v bytes=%v readerAt=%v)", r, b, a)
			}
		})
	}
}

func TestV3RejectsTruncationEverywhere(t *testing.T) {
	c := mustFreeze(t, []byte("aaccacaacaggtacca"), seq.DNA)
	full := saveV3(t, c)
	cuts := []int{0, 1, 5, v3HeaderFixed - 1, v3HeaderFixed, len(full) / 4, len(full) / 2, len(full) - 8, len(full) - 1}
	for _, cut := range cuts {
		if r, b, a := openAllPaths(t, full[:cut]); r || b || a {
			t.Fatalf("truncation at %d accepted (ReadCompact=%v bytes=%v readerAt=%v)", cut, r, b, a)
		}
	}
}

func TestV3TrailingGarbage(t *testing.T) {
	c := mustFreeze(t, []byte("aaccacaacaggtacca"), seq.DNA)
	full := saveV3(t, c)
	glued := append(append([]byte(nil), full...), []byte("GARBAGEgarbage!!")...)
	// The whole-stream paths see a length that disagrees with the
	// header's fileSize and must reject. OpenCompactAt reads exactly
	// fileSize bytes from the ReaderAt, so the intact prefix may open —
	// but it must never read past fileSize or panic.
	readOK, bytesOK, atOK := openAllPaths(t, glued)
	if readOK || bytesOK {
		t.Fatalf("trailing garbage accepted by a whole-stream path (ReadCompact=%v bytes=%v)", readOK, bytesOK)
	}
	if atOK {
		back, _, err := OpenCompactAt(bytes.NewReader(glued))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := back.FindAll([]byte("acca")), c.FindAll([]byte("acca")); !equalInts(got, want) {
			t.Fatalf("ReaderAt open over garbage tail answered %v, want %v", got, want)
		}
	}
}

func TestV3SectionBitFlipsRejectedVerified(t *testing.T) {
	c := mustFreeze(t, []byte("aaccacaacaggtacca"), seq.DNA)
	full := saveV3(t, c)
	_, _, dataStart := v3HeaderGeometry(full)
	rng := rand.New(rand.NewSource(143))
	const trials = 40
	for i := 0; i < trials; i++ {
		corrupt := append([]byte(nil), full...)
		pos := int(dataStart) + rng.Intn(len(corrupt)-int(dataStart))
		corrupt[pos] ^= 1 << uint(rng.Intn(8))
		if _, _, err := OpenCompactBytes(aligned8(corrupt), true); err == nil {
			t.Fatalf("payload bit flip at %d accepted under verify", pos)
		}
		// The lazy open skips section checksums by design; it must still
		// never panic on the damaged payload.
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("lazy open panicked on bit flip at %d: %v", pos, r)
				}
			}()
			OpenCompactBytes(aligned8(corrupt), false)
		}()
	}
}

func TestOpenCompactAtMatchesReadCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	text := randomRepetitive(rng, []byte("acgt"), 800)
	c := mustFreeze(t, text, seq.DNA)
	full := saveV3(t, c)
	back, layout, err := OpenCompactAt(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("OpenCompactAt: %v", err)
	}
	if layout.FileSize != int64(len(full)) {
		t.Fatalf("layout FileSize = %d, want %d", layout.FileSize, len(full))
	}
	for q := 0; q < 200; q++ {
		p := make([]byte, 1+rng.Intn(8))
		for i := range p {
			p[i] = "acgt"[rng.Intn(4)]
		}
		if got, want := back.FindAll(p), c.FindAll(p); !equalInts(got, want) {
			t.Fatalf("FindAll(%q) = %v, want %v", p, got, want)
		}
	}
}

// legacyWriter replays the v2 stream format byte for byte, so current
// readers stay pinned against images written by previous releases.
type legacyWriter struct {
	w   *bufio.Writer
	sum hash.Hash32
	err error
}

func (cw *legacyWriter) bytes(b []byte) {
	if cw.err != nil {
		return
	}
	if _, err := cw.w.Write(b); err != nil {
		cw.err = err
		return
	}
	cw.sum.Write(b)
}

func (cw *legacyWriter) u8(v uint8) { cw.bytes([]byte{v}) }
func (cw *legacyWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	cw.bytes(b[:])
}
func (cw *legacyWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	cw.bytes(b[:])
}
func (cw *legacyWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	cw.bytes(b[:])
}
func (cw *legacyWriter) u16s(vs []uint16) {
	cw.u32(uint32(len(vs)))
	for _, v := range vs {
		cw.u16(v)
	}
}
func (cw *legacyWriter) u32s(vs []uint32) {
	cw.u32(uint32(len(vs)))
	for _, v := range vs {
		cw.u32(v)
	}
}
func (cw *legacyWriter) byteSlice(vs []byte) {
	cw.u32(uint32(len(vs)))
	cw.bytes(vs)
}

// saveLegacyV2 writes c in the retired v2 stream format.
func saveLegacyV2(t *testing.T, c *CompactIndex) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw := &legacyWriter{w: bufio.NewWriter(&buf), sum: crc32.NewIEEE()}
	cw.bytes([]byte(serializeMagic))
	cw.u16(serializeVersionLegacy)
	letters := make([]byte, c.alpha.Size())
	for i := range letters {
		letters[i] = c.alpha.Letter(i)
	}
	cw.byteSlice(letters)
	cw.u32(uint32(c.n))
	cw.u8(uint8(c.chars.Bits()))
	cw.byteSlice(c.chars.Unpack())
	cw.u16s(c.lel)
	cw.u32s(c.ref)
	for shape := 1; shape < numShapes; shape++ {
		tb := &c.tables[shape]
		cw.u32s(tb.ld)
		cw.u32s(tb.ribRD)
		cw.u16s(tb.ribPT)
		cw.byteSlice(tb.ribCL)
		cw.u32s(tb.extRD)
		cw.u16s(tb.extPT)
		cw.u16s(tb.extPRT)
		cw.u32s(tb.extSrc)
	}
	sp := &c.spill
	cw.u32s(sp.ld)
	cw.u32s(sp.start)
	cw.u32s(sp.ribRD)
	cw.u16s(sp.ribPT)
	cw.byteSlice(sp.ribCL)
	cw.u32s(sp.extRD)
	cw.u16s(sp.extPT)
	cw.u16s(sp.extPRT)
	cw.u32s(sp.extSrc)
	cw.u32(uint32(len(c.lelOverflow)))
	for k, v := range c.lelOverflow {
		cw.u32(uint32(k))
		cw.u32(uint32(v))
	}
	cw.u32(uint32(len(c.ptOverflow)))
	for k, v := range c.ptOverflow {
		cw.u64(k)
		cw.u32(uint32(v))
	}
	cw.u32(uint32(len(c.extOverflow)))
	for k, v := range c.extOverflow {
		cw.u32(uint32(k))
		cw.u32(uint32(v[0]))
		cw.u32(uint32(v[1]))
	}
	cw.u32(uint32(len(c.blocks)))
	for _, bm := range c.blocks {
		cw.u32(uint32(bm.maxLEL))
		cw.u32(uint32(bm.minLink))
		cw.u32(uint32(bm.maxLink))
	}
	if cw.err != nil {
		t.Fatalf("legacy save: %v", cw.err)
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], cw.sum.Sum32())
	if _, err := cw.w.Write(b[:]); err != nil {
		t.Fatal(err)
	}
	if err := cw.w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLegacyV2FilesStillLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(145))
	text := randomRepetitive(rng, []byte("acgt"), 600)
	c := mustFreeze(t, text, seq.DNA)
	old := saveLegacyV2(t, c)
	back, err := ReadCompact(bytes.NewReader(old))
	if err != nil {
		t.Fatalf("ReadCompact(v2): %v", err)
	}
	for q := 0; q < 200; q++ {
		p := make([]byte, 1+rng.Intn(8))
		for i := range p {
			p[i] = "acgt"[rng.Intn(4)]
		}
		if got, want := back.FindAll(p), c.FindAll(p); !equalInts(got, want) {
			t.Fatalf("v2 FindAll(%q) = %v, want %v", p, got, want)
		}
	}
	// The zero-copy paths are v3-only and must decline a v2 image
	// cleanly, not panic on the foreign layout.
	if CanOpenZeroCopy(old) {
		t.Fatal("v2 image claimed zero-copy openable")
	}
	if _, _, err := OpenCompactBytes(aligned8(append([]byte(nil), old...)), true); err == nil {
		t.Fatal("OpenCompactBytes accepted a v2 image")
	}
	if _, _, err := OpenCompactAt(bytes.NewReader(old)); err == nil {
		t.Fatal("OpenCompactAt accepted a v2 image")
	}
}

func TestLegacyV2CorruptionStillRejected(t *testing.T) {
	c := mustFreeze(t, []byte("aaccacaacaggtacca"), seq.DNA)
	old := saveLegacyV2(t, c)
	rng := rand.New(rand.NewSource(146))
	for i := 0; i < 40; i++ {
		corrupt := append([]byte(nil), old...)
		pos := rng.Intn(len(corrupt))
		corrupt[pos] ^= 1 << uint(rng.Intn(8))
		if _, err := ReadCompact(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("v2 bit flip at %d accepted", pos)
		}
	}
}

// FuzzMappedEquivalence pins the zero-copy open against the heap
// deserialization and an independent suffix tree: for any text and
// pattern, a mapped image must answer with identical positions, counts,
// truncation and NodesChecked. `go test` runs the corpus;
// `go test -fuzz=FuzzMappedEquivalence` mines.
func FuzzMappedEquivalence(f *testing.F) {
	f.Add([]byte("aaccacaaca"), []byte("ca"), uint8(0))
	f.Add([]byte("abababab"), []byte("ab"), uint8(3))
	f.Add(repeatStr("acca", 33), []byte("cca"), uint8(1))
	f.Add(repeatStr("a", 65), []byte("aaa"), uint8(2))
	f.Add(repeatStr("gattaca", 40), repeatStr("gattaca", 10), uint8(0))
	f.Fuzz(func(t *testing.T, rawText, rawPat []byte, limRaw uint8) {
		if len(rawText) > 4096 || len(rawPat) > 160 {
			return
		}
		text := dnaFrom(rawText)
		pat := dnaFrom(rawPat)
		heap, err := Freeze(Build(text), seq.DNA)
		if err != nil {
			t.Fatalf("Freeze: %v", err)
		}
		var buf bytes.Buffer
		if err := heap.Save(&buf); err != nil {
			t.Fatalf("Save: %v", err)
		}
		mapped, _, err := OpenCompactBytes(aligned8(append([]byte(nil), buf.Bytes()...)), true)
		if err != nil {
			t.Fatalf("OpenCompactBytes: %v", err)
		}
		st, err := suffixtree.Build(text, 0xFF)
		if err != nil {
			t.Fatalf("suffixtree.Build: %v", err)
		}
		oracle := st.FindAll(pat)

		ctx := context.Background()
		hres, err := heap.FindAllCtx(ctx, pat, 0)
		if err != nil {
			t.Fatal(err)
		}
		mres, err := mapped.FindAllCtx(ctx, pat, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(mres.Positions, oracle) {
			t.Fatalf("mapped FindAll(%q in %q) = %v, want %v", pat, text, mres.Positions, oracle)
		}
		if !equalInts(mres.Positions, hres.Positions) || mres.NodesChecked != hres.NodesChecked {
			t.Fatalf("mapped (%v, %d nodes) != heap (%v, %d nodes)",
				mres.Positions, mres.NodesChecked, hres.Positions, hres.NodesChecked)
		}
		hc, err := heap.CountCtx(ctx, pat)
		if err != nil {
			t.Fatal(err)
		}
		mc, err := mapped.CountCtx(ctx, pat)
		if err != nil {
			t.Fatal(err)
		}
		if mc != hc || mc != len(oracle) {
			t.Fatalf("Count(%q): mapped %d, heap %d, suffix tree %d", pat, mc, hc, len(oracle))
		}
		if limit := int(limRaw) % 5; limit > 0 {
			hl, err1 := heap.FindAllCtx(ctx, pat, limit)
			ml, err2 := mapped.FindAllCtx(ctx, pat, limit)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !equalInts(ml.Positions, hl.Positions) || ml.Truncated != hl.Truncated || ml.NodesChecked != hl.NodesChecked {
				t.Fatalf("limit %d: mapped %+v != heap %+v", limit, ml, hl)
			}
		}
	})
}
