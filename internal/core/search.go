package core

import mbits "math/bits"

// Index implements store over the reference layout.

func (idx *Index) textLen() int32                      { return int32(len(idx.text)) }
func (idx *Index) charAt(v int32) byte                 { return idx.text[v] }
func (idx *Index) findRib(t int32, c byte) (Rib, bool) { return idx.ribAt(t, c) }
func (idx *Index) linkOf(i int32) (int32, int32)       { return idx.link[i], idx.lel[i] }
func (idx *Index) skipBlocks() []blockMeta             { return idx.blocks }

func (idx *Index) findExtrib(t int32) (Extrib, bool) {
	if e := idx.edgesAt(t); e != nil && e.hasExt {
		return e.ext, true
	}
	return Extrib{}, false
}

// SWAR kernel surface: the reference layout's vertebra labels are the
// raw text bytes (8-bit lanes) and its LELs are int32 (2 lanes per word).

func (idx *Index) blockLELs() []uint64 { return idx.blockLEL }
func (idx *Index) vertBits() uint      { return 8 }

// vertWord returns text[v:v+8] as a little-endian word, zero-filled
// past the text end.
func (idx *Index) vertWord(v int32) uint64 {
	if int(v)+8 <= len(idx.text) {
		return loadU64(idx.text, int(v))
	}
	var w uint64
	for k := int(v); k < len(idx.text); k++ {
		w |= uint64(idx.text[k]) << (8 * uint(k-int(v)))
	}
	return w
}

// nextLEL advances to the first node in [j, last] with lel >= patlen,
// two int32 lanes per compare. The int32 LELs are exact (no sentinel
// saturation), so the test itself is exact here; the caller re-checks
// through linkOf regardless.
func (idx *Index) nextLEL(j, last, patlen int32) (int32, int64) {
	var words int64
	for j+1 <= last {
		w := loadPair32(idx.lel, int(j))
		words++
		if m := laneGE32(w, uint32(patlen)); m != 0 {
			return j + int32(mbits.TrailingZeros64(m)>>5), words
		}
		j += 2
	}
	if j <= last && idx.lel[j] >= patlen {
		return j, words
	}
	return last + 1, words
}

// step advances a valid path of length pathlen ending at node v by one
// character c, returning the successor node. The transition relation is
// deterministic: a vertebra is always traversable, a rib only when
// pathlen <= PT, and a too-small rib falls through to the first extrib of
// its family whose PT covers pathlen. ok is false when no valid extension
// exists, which (by the no-false-negative property) means the extended
// string is not a substring.
func (idx *Index) step(v, pathlen int32, c byte) (next int32, ok bool) {
	return stepOn(idx, v, pathlen, c)
}

// Contains reports whether p is a substring of the indexed text. The empty
// pattern is always contained. Time is O(len(p)) plus extrib-chain hops.
func (idx *Index) Contains(p []byte) bool {
	_, ok := idx.EndNode(p)
	return ok
}

// EndNode locates the unique valid path spelling p and returns its end
// node, which is the end position of p's first occurrence. ok is false if
// p does not occur. The empty pattern ends at the root.
func (idx *Index) EndNode(p []byte) (end int32, ok bool) { return endNodeOn(idx, p) }

// Find returns the start offset of the first occurrence of p, or -1 if p
// does not occur. The empty pattern occurs at offset 0.
func (idx *Index) Find(p []byte) int {
	end, ok := idx.EndNode(p)
	if !ok {
		return -1
	}
	return int(end) - len(p)
}

// FindAll returns the start offsets of every occurrence of p (including
// overlapping ones) in increasing order, or nil if p does not occur. The
// empty pattern occurs at every offset 0..Len().
//
// Per §4 of the paper, the first occurrence comes from the valid-path
// search; the remainder come from a single downstream scan of the backbone
// that repeatedly extends a sorted target node buffer: node j is an
// occurrence end iff lel(j) >= len(p) and link(j) is already in the buffer.
func (idx *Index) FindAll(p []byte) []int { return findAllOn(idx, p) }

// FindAllAppend is FindAll appending into dst: with a reused dst whose
// capacity covers the result, the steady-state query allocates nothing.
func (idx *Index) FindAllAppend(p []byte, dst []int) []int {
	return findAllAppendOn(idx, p, dst)
}

// scanOccurrences performs the target-node-buffer scan: given the
// first-occurrence end node and the pattern length, it returns every
// occurrence end node in increasing order.
func (idx *Index) scanOccurrences(first, patlen int32) []int32 {
	return scanOccurrencesOn(idx, first, patlen)
}

// containsSorted reports membership of x in the ascending slice buf using
// binary search (the paper's "binary fashion" target-buffer probe).
func containsSorted(buf []int32, x int32) bool {
	lo, hi := 0, len(buf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if buf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(buf) && buf[lo] == x
}

// Count returns the number of occurrences of p. The count comes from
// the streaming scan directly — no occurrence slice is materialized —
// and allocates nothing at steady state.
func (idx *Index) Count(p []byte) int { return countOn(idx, p) }

// ForEachOccurrence streams every occurrence start offset of p in
// increasing order to fn, stopping early if fn returns false. It performs
// the same backbone scan as FindAll but only retains the membership
// table, so enormous occurrence sets don't materialize a result slice.
func (idx *Index) ForEachOccurrence(p []byte, fn func(start int) bool) {
	forEachOccurrenceOn(idx, p, fn)
}
