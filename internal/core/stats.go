package core

// Stats summarizes the structural measurements the paper reports for a
// built index: Table 3 (maximum numeric label values), Table 4 (rib
// fan-out distribution) and Figure 8 (link-destination distribution).
type Stats struct {
	// Length is the indexed string length n (== node count excluding root).
	Length int
	// MaxLEL, MaxPT and MaxPRT are the largest numeric label values; the
	// paper observes they stay below 2^16 on real genomes, enabling 2-byte
	// label fields (Table 3).
	MaxLEL, MaxPT, MaxPRT int32
	// RibCount and ExtribCount are total downstream cross edges.
	RibCount, ExtribCount int
	// FanoutNodes[k] is the number of nodes with exactly k downstream cross
	// edges (ribs + extrib), for k = 1..len-1; FanoutNodes[len-1]
	// accumulates >= len-1. Index 0 is the count of nodes with none.
	FanoutNodes []int
}

// ComputeStats measures the built index. Cost is O(n).
func (idx *Index) ComputeStats() Stats {
	st := Stats{
		Length:      idx.Len(),
		MaxLEL:      idx.maxLEL,
		MaxPT:       idx.maxPT,
		MaxPRT:      idx.maxPRT,
		RibCount:    idx.ribCount,
		ExtribCount: idx.extribCount,
		FanoutNodes: make([]int, 6),
	}
	withEdges := 0
	for i := range idx.edges {
		e := &idx.edges[i]
		fan := int(e.ribN)
		if e.hasExt {
			fan++
		}
		if fan > 0 {
			withEdges++
		}
		if fan >= len(st.FanoutNodes) {
			fan = len(st.FanoutNodes) - 1
		}
		st.FanoutNodes[fan]++
	}
	st.FanoutNodes[0] = idx.Len() + 1 - withEdges
	return st
}

// FanoutPercent returns FanoutNodes[k] as a percentage of all nodes, the
// unit Table 4 reports in.
func (st Stats) FanoutPercent(k int) float64 {
	if st.Length == 0 {
		return 0
	}
	return 100 * float64(st.FanoutNodes[k]) / float64(st.Length+1)
}

// NodesWithEdgesPercent returns the percentage of nodes with at least one
// downstream cross edge (the Table 4 "Total" column; ~28-35% on genomes).
func (st Stats) NodesWithEdgesPercent() float64 {
	if st.Length == 0 {
		return 0
	}
	with := 0
	for k := 1; k < len(st.FanoutNodes); k++ {
		with += st.FanoutNodes[k]
	}
	return 100 * float64(with) / float64(st.Length+1)
}

// LinkHistogram buckets link destinations into the given number of equal
// backbone segments and returns the percentage of links landing in each —
// the Figure 8 measurement. The paper observes a top-heavy, monotonically
// decaying distribution, which motivates the "retain the top of the link
// table" buffering policy.
func (idx *Index) LinkHistogram(buckets int) []float64 {
	if buckets <= 0 || idx.Len() == 0 {
		return nil
	}
	counts := make([]int, buckets)
	n := idx.Len()
	for i := 1; i <= n; i++ {
		b := int(int64(idx.link[i]) * int64(buckets) / int64(n+1))
		counts[b]++
	}
	out := make([]float64, buckets)
	for i, c := range counts {
		out[i] = 100 * float64(c) / float64(n)
	}
	return out
}

// Space model constants (bytes), following Table 2 of the paper for the
// naive layout and §5 for the optimized one.
const (
	// NaiveNodeBytes is the worst-case per-node cost of the straightforward
	// struct-of-fields layout in Table 2: 0.25 (packed CL) + 4 (vertebra
	// dest) + 8 (link dest+LEL) + 3*8 (ribs dest+PT) + 12 (extrib
	// dest+PT+PRT) = 48.25 bytes.
	NaiveNodeBytes = 48.25
	// STNodeBytesPerChar is the standard suffix-tree budget the paper cites
	// for comparison (§8): about 17 bytes per indexed character.
	STNodeBytesPerChar = 17.0
)

// MemoryBytes returns the actual heap footprint of this reference (clear,
// pointer-rich) layout. The compact layout (CompactIndex) is the one that
// realizes the paper's <12 bytes/char; this figure quantifies what the §5
// optimizations save.
func (idx *Index) MemoryBytes() int64 {
	b := int64(len(idx.text))                                      // vertebra labels
	b += int64(len(idx.link)) * 4                                  // link dests
	b += int64(len(idx.lel)) * 4                                   // LELs
	b += int64(len(idx.edgeID)) * 4                                // edge record ids
	const edgeRecordBytes = int64(inlineRibs*12 + 24 + 2 + 16 + 6) // ribs + spill header + counts + extrib + pad
	b += int64(len(idx.edges)) * edgeRecordBytes
	for i := range idx.edges {
		b += int64(len(idx.edges[i].more)) * 12
	}
	b += int64(len(idx.blocks)) * 12 // block-max skip index
	return b
}
