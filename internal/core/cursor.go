package core

// Cursor implements streaming matching statistics over the index: feed it
// the query string one character at a time and it maintains the longest
// suffix of the consumed query that occurs in the indexed text, together
// with that suffix's first-occurrence end node (field Node) and length
// (field Len).
//
// This is SPINE's set-basis suffix processing (§4 and §4.1 of the paper):
// on a mismatch, one hop up the link chain discards a whole set of suffix
// lengths at once, where a suffix tree walks suffix links one suffix at a
// time. The Checked field counts the nodes examined — the Table 6 metric.
//
// Advance consumes one query character: it extends the current match if
// possible, otherwise shortens to the longest extendable suffix (possibly
// empty). After Advance, Len is the matching statistic for the consumed
// position. MatchEnds lists every end position of the current match.
type Cursor = cursorState[*Index]

// NewCursor returns a cursor over idx positioned at the root with an empty
// match.
func NewCursor(idx *Index) *Cursor { return &Cursor{st: idx} }
