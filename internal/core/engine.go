package core

// store is the storage abstraction the search engine runs over. Both the
// reference layout (Index) and the §5 compact layout (CompactIndex)
// implement it; the engine is instantiated per concrete type so the hot
// loops devirtualize.
//
// Implementations operate on their native character representation: raw
// letters for Index, dense alphabet codes for CompactIndex. Callers
// translate patterns before invoking the engine.
type store interface {
	// textLen returns the indexed length n.
	textLen() int32
	// charAt returns the vertebra character label of node v (v < n).
	charAt(v int32) byte
	// findRib returns the rib labelled c at node t, if any.
	findRib(t int32, c byte) (Rib, bool)
	// findExtrib returns the extrib at node t, if any.
	findExtrib(t int32) (Extrib, bool)
	// linkOf returns (link, LEL) of node i in 1..n.
	linkOf(i int32) (int32, int32)
}

// stepOn advances a valid path of length pathlen at node v by character c.
// See Index.step for semantics.
func stepOn[S store](s S, v, pathlen int32, c byte) (next int32, ok bool) {
	if v < s.textLen() && s.charAt(v) == c {
		return v + 1, true
	}
	r, ok := s.findRib(v, c)
	if !ok {
		return 0, false
	}
	if pathlen <= r.PT {
		return r.Dest, true
	}
	node := r.Dest
	for {
		x, ok := s.findExtrib(node)
		if !ok {
			return 0, false
		}
		if x.ParentSrc == v && x.PRT == r.PT && x.PT >= pathlen {
			return x.Dest, true
		}
		node = x.Dest
	}
}

// endNodeOn locates the unique valid path spelling p.
func endNodeOn[S store](s S, p []byte) (end int32, ok bool) {
	v := int32(0)
	for i, c := range p {
		v, ok = stepOn(s, v, int32(i), c)
		if !ok {
			return 0, false
		}
	}
	return v, true
}

// scanOccurrencesOn performs the §4 target-node-buffer scan.
func scanOccurrencesOn[S store](s S, first, patlen int32) []int32 {
	buf := []int32{first}
	n := s.textLen()
	for j := first + 1; j <= n; j++ {
		link, lel := s.linkOf(j)
		if lel >= patlen && containsSorted(buf, link) {
			buf = append(buf, j) // j > all current entries: stays sorted
		}
	}
	return buf
}

// findAllOn returns all occurrence start offsets of p.
func findAllOn[S store](s S, p []byte) []int {
	if len(p) == 0 {
		out := make([]int, s.textLen()+1)
		for i := range out {
			out[i] = i
		}
		return out
	}
	first, ok := endNodeOn(s, p)
	if !ok {
		return nil
	}
	ends := scanOccurrencesOn(s, first, int32(len(p)))
	out := make([]int, len(ends))
	for i, e := range ends {
		out[i] = int(e) - len(p)
	}
	return out
}

// cursorState is the generic matching-statistics cursor; Cursor and
// CompactCursor instantiate it. See Cursor for field semantics.
type cursorState[S store] struct {
	st S
	// Node is the first-occurrence end node of the current match.
	Node int32
	// Len is the current matched length; the match is text[Node-Len:Node].
	Len int32
	// Checked counts nodes examined (chain hops, edge probes, extrib hops).
	Checked int64
}

// Reset returns the cursor to the root with an empty match, preserving the
// Checked counter.
func (c *cursorState[S]) Reset() { c.Node, c.Len = 0, 0 }

// Advance consumes one character (in the store's native representation).
// See Cursor.Advance.
func (c *cursorState[S]) Advance(ch byte) {
	for {
		c.Checked++
		if next, matched, ok := c.bestExtension(ch); ok {
			c.Node, c.Len = next, matched+1
			return
		}
		if c.Node == 0 && c.Len == 0 {
			return
		}
		c.Node, c.Len = c.st.linkOf(c.Node)
	}
}

// bestExtension finds the longest length l <= c.Len such that the length-l
// suffix of the current match extends by ch at this node. All candidate
// lengths here exceed lel(Node), so a partial extension through the rib
// family member with maximal PT < Len still beats anything further up the
// chain.
func (c *cursorState[S]) bestExtension(ch byte) (next, matched int32, ok bool) {
	v := c.Node
	if v < c.st.textLen() && c.st.charAt(v) == ch {
		return v + 1, c.Len, true
	}
	r, found := c.st.findRib(v, ch)
	if !found {
		return 0, 0, false
	}
	if c.Len <= r.PT {
		return r.Dest, c.Len, true
	}
	bestDest, bestPT := r.Dest, r.PT
	node := r.Dest
	for {
		x, found := c.st.findExtrib(node)
		if !found {
			break
		}
		c.Checked++
		if x.ParentSrc == v && x.PRT == r.PT {
			if x.PT >= c.Len {
				return x.Dest, c.Len, true
			}
			bestDest, bestPT = x.Dest, x.PT
		}
		node = x.Dest
	}
	return bestDest, bestPT, true
}

// MatchEnds returns every end position of the current match, increasing.
func (c *cursorState[S]) MatchEnds() []int32 {
	if c.Len == 0 {
		return nil
	}
	return scanOccurrencesOn(c.st, c.Node, c.Len)
}
