package core

// store is the storage abstraction the search engine runs over. Both the
// reference layout (Index) and the §5 compact layout (CompactIndex)
// implement it; the engine is instantiated per concrete type so the hot
// loops devirtualize.
//
// Implementations operate on their native character representation: raw
// letters for Index, dense alphabet codes for CompactIndex. Callers
// translate patterns before invoking the engine.
type store interface {
	// textLen returns the indexed length n.
	textLen() int32
	// charAt returns the vertebra character label of node v (v < n).
	charAt(v int32) byte
	// findRib returns the rib labelled c at node t, if any.
	findRib(t int32, c byte) (Rib, bool)
	// findExtrib returns the extrib at node t, if any.
	findExtrib(t int32) (Extrib, bool)
	// linkOf returns (link, LEL) of node i in 1..n.
	linkOf(i int32) (int32, int32)
	// skipBlocks returns the block-max skip index over the backbone:
	// entry b summarizes nodes b*blockSize+1 .. (b+1)*blockSize. Both
	// layouts keep it current with the backbone (the Index folds it
	// online per append; the compact layout builds it at freeze time).
	skipBlocks() []blockMeta
	// blockLELs returns the packed saturated-uint16 maxLEL lanes of the
	// skip blocks (lane b&3 of word b>>2 = block b), kept current with
	// skipBlocks; the SWAR admission prefilter reads it.
	blockLELs() []uint64
	// vertBits is the packed width of the vertebra character labels in
	// the store's native representation: 8 for raw bytes, the alphabet
	// width for the compact layout.
	vertBits() uint
	// vertWord returns a 64-bit window of packed vertebra labels
	// starting at node v in seq's canonical lane order (char v+k at bits
	// [k*vertBits(), (k+1)*vertBits())), zero-filled past the text end.
	vertWord(v int32) uint64
	// nextLEL returns the smallest node in [j, last] passing a
	// conservative word-parallel lel >= patlen test (last+1 if none)
	// plus the word compares spent. Conservative means false positives
	// are possible (the compact layout saturates LELs at the uint16
	// sentinel) but false negatives are not; callers re-check the exact
	// LEL via linkOf.
	nextLEL(j, last, patlen int32) (int32, int64)
	// readahead returns the scan readahead sink for disk-backed
	// layouts, or nil when the store is memory-resident. The scan
	// loops consult it once per entry; a nil sink costs nothing.
	readahead() ScanReadahead
}

// stepOn advances a valid path of length pathlen at node v by character c.
// See Index.step for semantics.
func stepOn[S store](s S, v, pathlen int32, c byte) (next int32, ok bool) {
	if v < s.textLen() && s.charAt(v) == c {
		return v + 1, true
	}
	return edgeStepOn(s, v, pathlen, c)
}

// edgeStepOn is the cross-edge arm of stepOn: the vertebra for c is
// absent (or v is the text end), so the step succeeds only through a
// rib — and, when the rib's threshold is too small, its extrib chain.
// The SWAR descent shares this arm; only run matching differs.
func edgeStepOn[S store](s S, v, pathlen int32, c byte) (next int32, ok bool) {
	r, ok := s.findRib(v, c)
	if !ok {
		return 0, false
	}
	if pathlen <= r.PT {
		return r.Dest, true
	}
	node := r.Dest
	for {
		x, ok := s.findExtrib(node)
		if !ok {
			return 0, false
		}
		if x.ParentSrc == v && x.PRT == r.PT && x.PT >= pathlen {
			return x.Dest, true
		}
		node = x.Dest
	}
}

// endNodeOn locates the unique valid path spelling p, through the
// active kernel: word-parallel vertebra runs when the SWAR kernel is
// selected and the store's packed width tiles a word, the scalar
// character loop otherwise.
func endNodeOn[S store](s S, p []byte) (end int32, ok bool) {
	if !scalarKernel.Load() {
		if end, ok, handled := endNodeSWAROn(s, p, nil); handled {
			return end, ok
		}
	}
	return endNodeScalarOn(s, p)
}

// endNodeScalarOn is the character-at-a-time descent — the paper's §3
// walk, retained verbatim as the SWAR kernel's differential oracle.
func endNodeScalarOn[S store](s S, p []byte) (end int32, ok bool) {
	v := int32(0)
	for i, c := range p {
		v, ok = stepOn(s, v, int32(i), c)
		if !ok {
			return 0, false
		}
	}
	return v, true
}

// endNodeSWAROn is the word-parallel descent: runs of vertebra
// extensions — the hot case of genomic descents — are matched a packed
// word at a time (32 DNA chars or 8 raw bytes per XOR), falling into
// edgeStepOn only at the run-breaking character. The pattern is packed
// once into pooled scratch. handled is false when the store's packed
// width cannot tile a word (e.g. 5-bit protein codes); the caller then
// takes the scalar path. When words is non-nil it accumulates the
// word comparisons performed (the traced descent's WordsCompared).
func endNodeSWAROn[S store](s S, p []byte, words *int64) (end int32, ok, handled bool) {
	bits := s.vertBits()
	if !swarCapable(bits) {
		return 0, false, false
	}
	sp := getSwarPat(p, bits)
	cpw := int32(64 / bits)
	v, i := int32(0), int32(0)
	n, m := s.textLen(), int32(len(p))
	for i < m {
		if v < n {
			run := cpw
			if rem := m - i; rem < run {
				run = rem
			}
			if rem := n - v; rem < run {
				run = rem
			}
			k := matchLanes(s.vertWord(v), sp.wordAt(i), bits)
			if words != nil {
				*words++
			}
			if k > run {
				k = run
			}
			v += k
			i += k
			if k == run {
				// Full window matched: pattern done, text end reached, or
				// another whole word to go.
				continue
			}
		}
		// Mismatch (or text exhausted): only a cross edge can extend.
		next, stepped := edgeStepOn(s, v, i, p[i])
		if !stepped {
			putSwarPat(sp)
			return 0, false, true
		}
		v = next
		i++
	}
	putSwarPat(sp)
	return v, true, true
}

// scanOccurrencesScalarOn performs the §4 target-node-buffer scan
// exactly as the paper describes it: every backbone node after the
// first occurrence is visited and candidate links are probed against
// the sorted buffer "in binary fashion". This is the in-tree oracle the
// block-skip scan is differentially tested against (see SetBlockSkip).
func scanOccurrencesScalarOn[S store](s S, first, patlen int32) []int32 {
	buf := []int32{first}
	n := s.textLen()
	for j := first + 1; j <= n; j++ {
		link, lel := s.linkOf(j)
		if lel >= patlen && containsSorted(buf, link) {
			buf = append(buf, j) // j > all current entries: stays sorted
		}
	}
	return buf
}

// scanOccurrencesOn resolves every occurrence end of a match via the
// block-skip scan (or the scalar oracle when disabled).
func scanOccurrencesOn[S store](s S, first, patlen int32) []int32 {
	if blockSkipOff.Load() {
		return scanOccurrencesScalarOn(s, first, patlen)
	}
	sc := getScratch(s.textLen())
	occScanOn(nil, s, sc, first, patlen, -1)
	out := make([]int32, 0, len(sc.ends)+1)
	out = append(out, first)
	out = append(out, sc.ends...)
	putScratch(sc)
	return out
}

// findAllOn returns all occurrence start offsets of p.
func findAllOn[S store](s S, p []byte) []int {
	return findAllAppendOn(s, p, nil)
}

// findAllAppendOn appends all occurrence start offsets of p to dst and
// returns the extended slice. With a pre-sized dst the steady state
// performs no allocation; with dst == nil exactly one exact-size result
// slice is allocated when p occurs.
func findAllAppendOn[S store](s S, p []byte, dst []int) []int {
	if len(p) == 0 {
		n := int(s.textLen())
		if dst == nil {
			dst = make([]int, 0, n+1)
		}
		for i := 0; i <= n; i++ {
			dst = append(dst, i)
		}
		return dst
	}
	first, ok := endNodeOn(s, p)
	if !ok {
		return dst
	}
	if blockSkipOff.Load() {
		ends := scanOccurrencesScalarOn(s, first, int32(len(p)))
		if dst == nil {
			dst = make([]int, 0, len(ends))
		}
		for _, e := range ends {
			dst = append(dst, int(e)-len(p))
		}
		return dst
	}
	sc := getScratch(s.textLen())
	occScanOn(nil, s, sc, first, int32(len(p)), -1)
	if dst == nil {
		dst = make([]int, 0, len(sc.ends)+1)
	}
	dst = append(dst, int(first)-len(p))
	for _, e := range sc.ends {
		dst = append(dst, int(e)-len(p))
	}
	putScratch(sc)
	return dst
}

// countOn counts the occurrences of p without materializing them.
func countOn[S store](s S, p []byte) int {
	if len(p) == 0 {
		return int(s.textLen()) + 1
	}
	first, ok := endNodeOn(s, p)
	if !ok {
		return 0
	}
	if blockSkipOff.Load() {
		return len(scanOccurrencesScalarOn(s, first, int32(len(p))))
	}
	sc := getScratch(s.textLen())
	extra, _, _ := occCountOn(nil, s, sc, first, int32(len(p)), 0)
	putScratch(sc)
	return extra + 1
}

// forEachOccurrenceOn streams every occurrence start offset of p to fn
// in increasing order, stopping early when fn returns false. fn is
// passed through to the scan kernel untouched, so the steady state
// allocates nothing.
func forEachOccurrenceOn[S store](s S, p []byte, fn func(start int) bool) {
	if len(p) == 0 {
		n := int(s.textLen())
		for i := 0; i <= n; i++ {
			if !fn(i) {
				return
			}
		}
		return
	}
	first, ok := endNodeOn(s, p)
	if !ok {
		return
	}
	if !fn(int(first) - len(p)) {
		return
	}
	patlen := int32(len(p))
	if blockSkipOff.Load() {
		buf := []int32{first}
		n := s.textLen()
		for j := first + 1; j <= n; j++ {
			link, lel := s.linkOf(j)
			if lel >= patlen && containsSorted(buf, link) {
				buf = append(buf, j)
				if !fn(int(j) - len(p)) {
					return
				}
			}
		}
		return
	}
	sc := getScratch(s.textLen())
	occStreamOn(s, sc, first, patlen, len(p), fn)
	putScratch(sc)
}

// cursorState is the generic matching-statistics cursor; Cursor and
// CompactCursor instantiate it. See Cursor for field semantics.
type cursorState[S store] struct {
	st S
	// Node is the first-occurrence end node of the current match.
	Node int32
	// Len is the current matched length; the match is text[Node-Len:Node].
	Len int32
	// Checked counts nodes examined (chain hops, edge probes, extrib hops).
	Checked int64
}

// Reset returns the cursor to the root with an empty match, preserving the
// Checked counter.
func (c *cursorState[S]) Reset() { c.Node, c.Len = 0, 0 }

// Advance consumes one character (in the store's native representation).
// See Cursor.Advance.
func (c *cursorState[S]) Advance(ch byte) {
	for {
		c.Checked++
		if next, matched, ok := c.bestExtension(ch); ok {
			c.Node, c.Len = next, matched+1
			return
		}
		if c.Node == 0 && c.Len == 0 {
			return
		}
		c.Node, c.Len = c.st.linkOf(c.Node)
	}
}

// bestExtension finds the longest length l <= c.Len such that the length-l
// suffix of the current match extends by ch at this node. All candidate
// lengths here exceed lel(Node), so a partial extension through the rib
// family member with maximal PT < Len still beats anything further up the
// chain.
func (c *cursorState[S]) bestExtension(ch byte) (next, matched int32, ok bool) {
	v := c.Node
	if v < c.st.textLen() && c.st.charAt(v) == ch {
		return v + 1, c.Len, true
	}
	r, found := c.st.findRib(v, ch)
	if !found {
		return 0, 0, false
	}
	if c.Len <= r.PT {
		return r.Dest, c.Len, true
	}
	bestDest, bestPT := r.Dest, r.PT
	node := r.Dest
	for {
		x, found := c.st.findExtrib(node)
		if !found {
			break
		}
		c.Checked++
		if x.ParentSrc == v && x.PRT == r.PT {
			if x.PT >= c.Len {
				return x.Dest, c.Len, true
			}
			bestDest, bestPT = x.Dest, x.PT
		}
		node = x.Dest
	}
	return bestDest, bestPT, true
}

// MatchEnds returns every end position of the current match, increasing.
func (c *cursorState[S]) MatchEnds() []int32 {
	if c.Len == 0 {
		return nil
	}
	return scanOccurrencesOn(c.st, c.Node, c.Len)
}
