package core

import (
	"context"
	"time"

	"github.com/spine-index/spine/internal/trace"
)

// Context-aware query variants. The backbone occurrence scan is O(n) per
// query regardless of the occurrence count, so a production server needs
// to abort scans whose request deadline has passed. The loops below
// check ctx every cancelStride iterations — cheap enough to be free,
// frequent enough that cancellation lands within tens of microseconds.

// cancelStride is the number of backbone nodes scanned between
// cancellation checkpoints.
const cancelStride = 1 << 14

// ScanResult carries the outcome of a context-aware occurrence query.
type ScanResult struct {
	// Positions lists occurrence start offsets in increasing order.
	Positions []int
	// Truncated reports that the scan stopped at the caller's limit;
	// more occurrences may exist.
	Truncated bool
	// NodesChecked counts index nodes examined (descent steps plus
	// backbone nodes scanned) — the paper's §4.1 work metric.
	NodesChecked int64
}

// FindAllCtx is FindAll with cancellation and an optional result cap:
// limit <= 0 means unlimited. It returns ctx.Err() if the context ends
// mid-scan.
func (idx *Index) FindAllCtx(ctx context.Context, p []byte, limit int) (ScanResult, error) {
	return findAllOnCtx(ctx, idx, p, limit)
}

// FindAllCtx is the compact-layout variant; see Index.FindAllCtx.
func (c *CompactIndex) FindAllCtx(ctx context.Context, p []byte, limit int) (ScanResult, error) {
	codes, ok := c.encodePattern(p)
	if !ok {
		// A letter outside the alphabet occurs nowhere; the pattern walk
		// is the only work done.
		if tr := trace.FromContext(ctx); tr != nil {
			tr.Add(trace.StageDescend, 0, trace.Counters{Nodes: int64(len(p))})
		}
		return ScanResult{NodesChecked: int64(len(p))}, ctx.Err()
	}
	return findAllOnCtx(ctx, c, codes, limit)
}

func findAllOnCtx[S store](ctx context.Context, s S, p []byte, limit int) (ScanResult, error) {
	var res ScanResult
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if len(p) == 0 {
		n := int(s.textLen()) + 1
		if limit > 0 && n > limit {
			n = limit
			res.Truncated = true
		}
		res.Positions = make([]int, n)
		for i := range res.Positions {
			res.Positions[i] = i
		}
		return res, nil
	}
	tr := trace.FromContext(ctx)
	var first int32
	var ok bool
	if tr != nil {
		first, ok = descendTracedOn(s, p, tr)
	} else {
		first, ok = endNodeOn(s, p)
	}
	res.NodesChecked = int64(len(p))
	if !ok {
		return res, nil
	}
	res.Positions = append(res.Positions, int(first)-len(p))
	if limit == 1 {
		res.Truncated = true
		return res, nil
	}
	// endScan attributes the backbone occurrence scan: scanned nodes is
	// exactly what each exit path below adds to NodesChecked, so the
	// trace's per-stage Nodes counters sum to the reported total.
	var scanStart time.Time
	if tr != nil {
		scanStart = time.Now()
	}
	endScan := func(scanned int64) {
		if tr != nil {
			tr.Add(trace.StageOccurrences, time.Since(scanStart),
				trace.Counters{Nodes: scanned, Links: scanned})
		}
	}
	buf := []int32{first}
	m := int32(len(p))
	n := s.textLen()
	for j := first + 1; j <= n; j++ {
		if (j-first)%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				res.NodesChecked += int64(j - first)
				endScan(int64(j - first))
				return ScanResult{NodesChecked: res.NodesChecked}, err
			}
		}
		link, lel := s.linkOf(j)
		if lel >= m && containsSorted(buf, link) {
			buf = append(buf, j)
			res.Positions = append(res.Positions, int(j)-len(p))
			if limit > 0 && len(res.Positions) >= limit {
				res.Truncated = j < n
				res.NodesChecked += int64(j - first)
				endScan(int64(j - first))
				return res, nil
			}
		}
	}
	res.NodesChecked += int64(n - first)
	endScan(int64(n - first))
	return res, nil
}

// CountCtx is Count with cancellation.
func (idx *Index) CountCtx(ctx context.Context, p []byte) (int, error) {
	res, err := findAllOnCtx(ctx, idx, p, 0)
	return len(res.Positions), err
}

// CountCtx is the compact-layout variant; see Index.CountCtx.
func (c *CompactIndex) CountCtx(ctx context.Context, p []byte) (int, error) {
	res, err := c.FindAllCtx(ctx, p, 0)
	return len(res.Positions), err
}

// ScanManyCtx is ScanMany with cancellation checkpoints; see
// Index.ScanMany for semantics.
func (idx *Index) ScanManyCtx(ctx context.Context, firsts, lens []int32) ([][]int32, error) {
	return scanManyOnCtx(ctx, idx, firsts, lens)
}

// ScanManyCtx is the compact-layout variant; see Index.ScanManyCtx.
func (c *CompactIndex) ScanManyCtx(ctx context.Context, firsts, lens []int32) ([][]int32, error) {
	return scanManyOnCtx(ctx, c, firsts, lens)
}

func scanManyOnCtx[S store](ctx context.Context, s S, firsts, lens []int32) ([][]int32, error) {
	out := make([][]int32, len(firsts))
	if len(firsts) == 0 {
		return out, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	owners := make(map[int32][]int32)
	minFirst := firsts[0]
	for i := range firsts {
		out[i] = []int32{firsts[i]}
		owners[firsts[i]] = append(owners[firsts[i]], int32(i))
		if firsts[i] < minFirst {
			minFirst = firsts[i]
		}
	}
	n := s.textLen()
	for j := minFirst + 1; j <= n; j++ {
		if (j-minFirst)%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		link, lel := s.linkOf(j)
		ms, ok := owners[link]
		if !ok {
			continue
		}
		for _, m := range ms {
			if lel >= lens[m] && j > firsts[m] {
				out[m] = append(out[m], j)
				owners[j] = append(owners[j], m)
			}
		}
	}
	return out, nil
}
