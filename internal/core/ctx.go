package core

import (
	"context"
	"time"

	"github.com/spine-index/spine/internal/trace"
)

// Context-aware query variants. The backbone occurrence scan is O(n) per
// query regardless of the occurrence count, so a production server needs
// to abort scans whose request deadline has passed. The loops below
// check ctx every cancelStride iterations — cheap enough to be free,
// frequent enough that cancellation lands within tens of microseconds.

// cancelStride is the number of backbone nodes scanned between
// cancellation checkpoints.
const cancelStride = 1 << 14

// ScanResult carries the outcome of a context-aware occurrence query.
type ScanResult struct {
	// Positions lists occurrence start offsets in increasing order.
	Positions []int
	// Truncated reports that the scan stopped at the caller's limit;
	// more occurrences may exist.
	Truncated bool
	// NodesChecked counts index nodes examined (descent steps plus
	// backbone nodes scanned) — the paper's §4.1 work metric.
	NodesChecked int64
}

// FindAllCtx is FindAll with cancellation and an optional result cap:
// limit <= 0 means unlimited. It returns ctx.Err() if the context ends
// mid-scan.
func (idx *Index) FindAllCtx(ctx context.Context, p []byte, limit int) (ScanResult, error) {
	return findAllOnCtx(ctx, idx, p, limit)
}

// FindAllCtx is the compact-layout variant; see Index.FindAllCtx.
func (c *CompactIndex) FindAllCtx(ctx context.Context, p []byte, limit int) (ScanResult, error) {
	codes, ok := c.encodePattern(p)
	if !ok {
		// A letter outside the alphabet occurs nowhere; the pattern walk
		// is the only work done.
		if tr := trace.FromContext(ctx); tr != nil {
			tr.Add(trace.StageDescend, 0, trace.Counters{Nodes: int64(len(p))})
		}
		return ScanResult{NodesChecked: int64(len(p))}, ctx.Err()
	}
	return findAllOnCtx(ctx, c, codes, limit)
}

func findAllOnCtx[S store](ctx context.Context, s S, p []byte, limit int) (ScanResult, error) {
	var res ScanResult
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if len(p) == 0 {
		n := int(s.textLen()) + 1
		if limit > 0 && n > limit {
			n = limit
			res.Truncated = true
		}
		res.Positions = make([]int, n)
		for i := range res.Positions {
			res.Positions[i] = i
		}
		return res, nil
	}
	tr := trace.FromContext(ctx)
	var first int32
	var ok bool
	if tr != nil {
		first, ok = descendTracedOn(s, p, tr)
	} else {
		first, ok = endNodeOn(s, p)
	}
	res.NodesChecked = int64(len(p))
	if !ok {
		return res, nil
	}
	res.Positions = append(res.Positions, int(first)-len(p))
	if limit == 1 {
		res.Truncated = true
		return res, nil
	}
	// endScan attributes the backbone occurrence scan: scanned nodes is
	// exactly what each exit path below adds to NodesChecked, so the
	// trace's per-stage Nodes counters sum to the reported total. On the
	// accelerated path scanned means nodes actually visited — skipped
	// blocks do no work and contribute none.
	var scanStart time.Time
	if tr != nil {
		scanStart = time.Now()
	}
	endScan := func(st scanStats) {
		if tr != nil {
			tr.Add(trace.StageOccurrences, time.Since(scanStart), trace.Counters{
				Nodes: st.visited, Links: st.visited,
				BlocksSkipped: st.blocksSkipped, BlocksScanned: st.blocksScanned,
				WordsCompared: st.words,
				WorkersUsed:   st.workersUsed, ChainsStitched: st.chainsStitched,
			})
			if st.raIssued+st.raHits > 0 {
				// Disk activity gets its own stage with zero Nodes so the
				// NodesChecked partition across stages stays exact.
				tr.Add(trace.StageDisk, 0, trace.Counters{
					ReadaheadIssued: st.raIssued, ReadaheadHits: st.raHits,
				})
			}
		}
	}
	m := int32(len(p))
	n := s.textLen()
	if blockSkipOff.Load() {
		buf := []int32{first}
		for j := first + 1; j <= n; j++ {
			if (j-first)%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					// The checkpoint fires before node j is examined, so only
					// j-first-1 nodes beyond the descent were actually visited.
					res.NodesChecked += int64(j - first - 1)
					endScan(scanStats{visited: int64(j - first - 1)})
					return ScanResult{NodesChecked: res.NodesChecked}, err
				}
			}
			link, lel := s.linkOf(j)
			if lel >= m && containsSorted(buf, link) {
				buf = append(buf, j)
				res.Positions = append(res.Positions, int(j)-len(p))
				if limit > 0 && len(res.Positions) >= limit {
					res.Truncated = j < n
					res.NodesChecked += int64(j - first)
					endScan(scanStats{visited: int64(j - first)})
					return res, nil
				}
			}
		}
		res.NodesChecked += int64(n - first)
		endScan(scanStats{visited: int64(n - first)})
		return res, nil
	}
	sc := getScratch(n)
	maxExtra := -1
	if limit > 0 {
		maxExtra = limit - 1
	}
	var st scanStats
	var truncated bool
	var err error
	if parts := planScanParts(first, n, scanWorkersFor(n-first)); len(parts) > 1 {
		st, truncated, err = parOccScanOn(ctx, s, sc, first, m, maxExtra, parts, "findall")
	} else {
		st, truncated, err = occScanOn(ctx, s, sc, first, m, maxExtra)
	}
	res.NodesChecked += st.visited
	endScan(st)
	if err != nil {
		putScratch(sc)
		return ScanResult{NodesChecked: res.NodesChecked}, err
	}
	if len(sc.ends) > 0 {
		out := make([]int, 1, len(sc.ends)+1)
		out[0] = res.Positions[0]
		for _, e := range sc.ends {
			out = append(out, int(e)-len(p))
		}
		res.Positions = out
	}
	res.Truncated = truncated
	putScratch(sc)
	return res, nil
}

// CountCtx is Count with cancellation. Like Count, it streams: the
// occurrence set is never materialized.
func (idx *Index) CountCtx(ctx context.Context, p []byte) (int, error) {
	return countOnCtx(ctx, idx, p, -1)
}

// CountCtx is the compact-layout variant; see Index.CountCtx.
func (c *CompactIndex) CountCtx(ctx context.Context, p []byte) (int, error) {
	codes, ok := c.encodePattern(p)
	if !ok {
		if tr := trace.FromContext(ctx); tr != nil {
			tr.Add(trace.StageDescend, 0, trace.Counters{Nodes: int64(len(p))})
		}
		return 0, ctx.Err()
	}
	return countOnCtx(ctx, c, codes, -1)
}

// CountPrefixCtx counts the occurrences of p whose start offset is
// strictly below maxStart (maxStart < 0 means unbounded — plain
// CountCtx). Sharded counting uses the bound to ignore overlap-region
// starts without materializing or shipping positions.
func (idx *Index) CountPrefixCtx(ctx context.Context, p []byte, maxStart int) (int, error) {
	return countOnCtx(ctx, idx, p, maxStart)
}

// countOnCtx streams the occurrence count of p, keeping only the
// membership table: occurrences starting at or past maxStart still
// stamp membership (later occurrences may link to them) but are not
// counted. maxStart < 0 means count everything.
func countOnCtx[S store](ctx context.Context, s S, p []byte, maxStart int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n := s.textLen()
	if len(p) == 0 {
		total := int(n) + 1
		if maxStart >= 0 && total > maxStart {
			total = maxStart
		}
		return total, nil
	}
	tr := trace.FromContext(ctx)
	var first int32
	var ok bool
	if tr != nil {
		first, ok = descendTracedOn(s, p, tr)
	} else {
		first, ok = endNodeOn(s, p)
	}
	if !ok {
		return 0, nil
	}
	// endBound translates the start-offset bound into end-node space:
	// start = end - len(p) < maxStart  <=>  end < maxStart + len(p).
	endBound := int32(0)
	if maxStart >= 0 {
		endBound = int32(maxStart + len(p))
	}
	count := 0
	if endBound <= 0 || first < endBound {
		count++
	}
	var scanStart time.Time
	if tr != nil {
		scanStart = time.Now()
	}
	endScan := func(st scanStats) {
		if tr != nil {
			tr.Add(trace.StageOccurrences, time.Since(scanStart), trace.Counters{
				Nodes: st.visited, Links: st.visited,
				BlocksSkipped: st.blocksSkipped, BlocksScanned: st.blocksScanned,
				WordsCompared: st.words,
				WorkersUsed:   st.workersUsed, ChainsStitched: st.chainsStitched,
			})
			if st.raIssued+st.raHits > 0 {
				// Disk activity gets its own stage with zero Nodes so the
				// NodesChecked partition across stages stays exact.
				tr.Add(trace.StageDisk, 0, trace.Counters{
					ReadaheadIssued: st.raIssued, ReadaheadHits: st.raHits,
				})
			}
		}
	}
	m := int32(len(p))
	if blockSkipOff.Load() {
		buf := []int32{first}
		for j := first + 1; j <= n; j++ {
			if (j-first)%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					// Node j itself was never examined; see findAllOnCtx.
					endScan(scanStats{visited: int64(j - first - 1)})
					return 0, err
				}
			}
			link, lel := s.linkOf(j)
			if lel >= m && containsSorted(buf, link) {
				buf = append(buf, j)
				if endBound <= 0 || j < endBound {
					count++
				}
			}
		}
		endScan(scanStats{visited: int64(n - first)})
		return count, nil
	}
	sc := getScratch(n)
	var extra int
	var st scanStats
	var err error
	if parts := planScanParts(first, n, scanWorkersFor(n-first)); len(parts) > 1 {
		// The partitioned scan stages end nodes instead of streaming the
		// count — O(occurrences) transient memory buys the parallel pass.
		st, _, err = parOccScanOn(ctx, s, sc, first, m, -1, parts, "count")
		if err == nil {
			for _, e := range sc.ends {
				if endBound <= 0 || e < endBound {
					extra++
				}
			}
		}
	} else {
		extra, st, err = occCountOn(ctx, s, sc, first, m, endBound)
	}
	endScan(st)
	putScratch(sc)
	if err != nil {
		return 0, err
	}
	return count + extra, nil
}

// ScanManyCtx is ScanMany with cancellation checkpoints; see
// Index.ScanMany for semantics.
func (idx *Index) ScanManyCtx(ctx context.Context, firsts, lens []int32) ([][]int32, error) {
	return scanManyOnCtx(ctx, idx, firsts, lens)
}

// ScanManyCtx is the compact-layout variant; see Index.ScanManyCtx.
func (c *CompactIndex) ScanManyCtx(ctx context.Context, firsts, lens []int32) ([][]int32, error) {
	return scanManyOnCtx(ctx, c, firsts, lens)
}

// scanManyOnCtx is the unlimited batch scan folded onto the limit-aware
// pass with zero limits: one shared implementation (block-skip
// acceleration and the partitioned parallel path included) instead of a
// duplicated scalar loop with its own per-call owners map. Tracing is
// suppressed — the legacy ScanManyCtx contract records no batch-scan
// span, and the match-engine paths that call it account NodesChecked
// themselves.
func scanManyOnCtx[S store](ctx context.Context, s S, firsts, lens []int32) ([][]int32, error) {
	if len(firsts) == 0 {
		return make([][]int32, 0), ctx.Err()
	}
	bs, err := scanManyLimitTracedOnCtx(ctx, s, firsts, lens, make([]int, len(firsts)), false)
	if err != nil {
		return nil, err
	}
	return bs.Ends, nil
}
