package core

import (
	"context"
	"testing"

	"github.com/spine-index/spine/internal/seq"
)

// withParallelism pins the parallelism knob and admission threshold for
// one test, restoring both on cleanup. threshold 1 forces the
// partitioned path onto tiny corpora regardless of GOMAXPROCS.
func withParallelism(t *testing.T, workers, threshold int) {
	t.Helper()
	prevP := SetScanParallelism(workers)
	prevT := SetScanParallelThreshold(threshold)
	t.Cleanup(func() {
		SetScanParallelism(prevP)
		SetScanParallelThreshold(prevT)
	})
}

// lcgText generates a deterministic pseudo-random DNA text: repetitive
// enough for long chains, irregular enough to exercise every
// classification branch.
func lcgText(n int, seed uint64) []byte {
	out := make([]byte, n)
	s := seed
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		out[i] = "acgt"[(s>>33)%4]
	}
	return out
}

func TestScanParallelismKnob(t *testing.T) {
	prev := SetScanParallelism(7)
	defer SetScanParallelism(prev)
	if got := ScanParallelism(); got != 7 {
		t.Fatalf("ScanParallelism = %d, want 7", got)
	}
	if got := SetScanParallelism(-3); got != 7 {
		t.Fatalf("SetScanParallelism(-3) previous = %d, want 7", got)
	}
	if got := ScanParallelism(); got != 0 {
		t.Fatalf("negative clamps to adaptive, got %d", got)
	}
	SetScanParallelism(1000)
	if got := ScanParallelism(); got != maxScanWorkers {
		t.Fatalf("oversized clamps to %d, got %d", maxScanWorkers, got)
	}

	prevT := SetScanParallelThreshold(123)
	if got := SetScanParallelThreshold(0); got != 123 {
		t.Fatalf("threshold previous = %d, want 123", got)
	}
	if got := SetScanParallelThreshold(prevT); got != defaultScanParMinSpan {
		t.Fatalf("threshold <= 0 restores default, got %d", got)
	}
	SetScanParallelThreshold(prevT)
}

func TestPlanScanParts(t *testing.T) {
	cases := []struct {
		first, n int32
		workers  int
	}{
		{0, 10, 4}, {0, 64, 2}, {0, 65, 2}, {3, 200, 3}, {63, 64, 8},
		{1, 1 << 14, 8}, {100, 5000, 7}, {0, 127, 32}, {50, 51, 2},
	}
	for _, c := range cases {
		parts := planScanParts(c.first, c.n, c.workers)
		if c.workers <= 1 || c.n-c.first < 2 {
			if parts != nil {
				t.Fatalf("planScanParts(%d,%d,%d) = %v, want nil", c.first, c.n, c.workers, parts)
			}
			continue
		}
		if parts == nil {
			// A single covering block legitimately yields no split.
			if blockFor(c.first+1) != blockFor(c.n) {
				t.Fatalf("planScanParts(%d,%d,%d) = nil with multiple blocks", c.first, c.n, c.workers)
			}
			continue
		}
		if len(parts) > c.workers {
			t.Fatalf("planScanParts(%d,%d,%d): %d parts > workers", c.first, c.n, c.workers, len(parts))
		}
		if parts[0].lo != c.first+1 {
			t.Fatalf("parts[0].lo = %d, want %d", parts[0].lo, c.first+1)
		}
		if parts[len(parts)-1].hi != c.n {
			t.Fatalf("last hi = %d, want %d", parts[len(parts)-1].hi, c.n)
		}
		for k, p := range parts {
			if p.lo > p.hi {
				t.Fatalf("part %d empty: %+v", k, p)
			}
			if k > 0 {
				if p.lo != parts[k-1].hi+1 {
					t.Fatalf("gap between part %d and %d: %+v %+v", k-1, k, parts[k-1], p)
				}
				if (p.lo-1)&(blockSize-1) != 0 {
					t.Fatalf("part %d lo %d not block-aligned", k, p.lo)
				}
			}
		}
	}
}

// TestParallelScanEquivalence drives the partitioned scan against the
// sequential oracle (SetScanParallelism(1)) over both kernels, a ladder
// of worker counts, and a ladder of limits — positions, truncation and
// NodesChecked must be identical, truncated queries included (the
// replay makes the counters canonical).
func TestParallelScanEquivalence(t *testing.T) {
	text := lcgText(200_000, 42)
	idx := Build(text)
	comp, err := Freeze(idx, seq.DNA)
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	ctx := context.Background()
	pats := [][]byte{
		[]byte("a"), []byte("ac"), []byte("acg"), []byte("gattaca"),
		text[1000:1012], text[150_000:150_008], []byte("acgtacgtacgtacgtacgt"),
	}
	limits := []int{0, 1, 2, 7, 100, 100_000}
	prevT := SetScanParallelThreshold(1)
	defer SetScanParallelThreshold(prevT)

	for _, kernel := range []ScanKernel{KernelSWAR, KernelScalar} {
		prevK := SetScanKernel(kernel)
		for _, pat := range pats {
			for _, limit := range limits {
				prevP := SetScanParallelism(1)
				wantIdx, err := idx.FindAllCtx(ctx, pat, limit)
				if err != nil {
					t.Fatal(err)
				}
				wantCount, err := idx.CountCtx(ctx, pat)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range []int{2, 3, 4, 8} {
					SetScanParallelism(w)
					for name, got := range map[string]func() (ScanResult, error){
						"index":   func() (ScanResult, error) { return idx.FindAllCtx(ctx, pat, limit) },
						"compact": func() (ScanResult, error) { return comp.FindAllCtx(ctx, pat, limit) },
					} {
						res, err := got()
						if err != nil {
							t.Fatal(err)
						}
						if !equalInts(res.Positions, wantIdx.Positions) ||
							res.Truncated != wantIdx.Truncated ||
							res.NodesChecked != wantIdx.NodesChecked {
							t.Fatalf("kernel %v %s workers %d FindAllCtx(%q, %d):\n got (%d pos, trunc %v, nodes %d)\nwant (%d pos, trunc %v, nodes %d)",
								kernel, name, w, pat, limit,
								len(res.Positions), res.Truncated, res.NodesChecked,
								len(wantIdx.Positions), wantIdx.Truncated, wantIdx.NodesChecked)
						}
					}
					if got, err := idx.CountCtx(ctx, pat); err != nil || got != wantCount {
						t.Fatalf("kernel %v workers %d CountCtx(%q) = %d, %v; want %d", kernel, w, pat, got, err, wantCount)
					}
					if got, err := comp.CountCtx(ctx, pat); err != nil || got != wantCount {
						t.Fatalf("kernel %v workers %d compact CountCtx(%q) = %d, %v; want %d", kernel, w, pat, got, err, wantCount)
					}
				}
				SetScanParallelism(prevP)
			}
		}
		SetScanKernel(prevK)
	}
}

// TestParallelCountPrefixEquivalence pins the bounded-count path: the
// parallel count stages end nodes and filters, the sequential one
// filters inline — totals must agree for every bound.
func TestParallelCountPrefixEquivalence(t *testing.T) {
	text := lcgText(60_000, 7)
	idx := Build(text)
	ctx := context.Background()
	pat := text[500:506]
	withParallelism(t, 1, 1)
	var wants []int
	bounds := []int{0, 1, 100, 30_000, 59_000}
	for _, b := range bounds {
		w, err := idx.CountPrefixCtx(ctx, pat, b)
		if err != nil {
			t.Fatal(err)
		}
		wants = append(wants, w)
	}
	SetScanParallelism(4)
	for i, b := range bounds {
		got, err := idx.CountPrefixCtx(ctx, pat, b)
		if err != nil || got != wants[i] {
			t.Fatalf("CountPrefixCtx(%q, %d) = %d, %v; want %d", pat, b, got, err, wants[i])
		}
	}
}

// TestParallelBatchEquivalence pins the unlimited batched scan (the
// only batch shape that parallelizes) against the sequential pass:
// identical Ends and identical Scanned via the batch replay. Limited
// batches must keep taking the sequential path and agree as before.
func TestParallelBatchEquivalence(t *testing.T) {
	text := lcgText(120_000, 99)
	idx := Build(text)
	ctx := context.Background()
	pats := [][]byte{text[10:14], text[50_000:50_006], []byte("ac"), text[80_000:80_003]}
	var firsts, lens []int32
	for _, p := range pats {
		first, ok := endNodeOn(idx, p)
		if !ok {
			t.Fatalf("pattern %q not found", p)
		}
		firsts = append(firsts, first)
		lens = append(lens, int32(len(p)))
	}
	limitSets := map[string][]int{
		"unlimited": {0, 0, 0, 0},
		"mixedOne":  {1, 0, 0, 0}, // limit-1 matches are predone; rest unlimited
		"limited":   {0, 5, 0, 3}, // stays sequential
	}
	withParallelism(t, 1, 1)
	for name, limits := range limitSets {
		SetScanParallelism(1)
		want, err := idx.ScanManyLimitCtx(ctx, firsts, lens, limits)
		if err != nil {
			t.Fatal(err)
		}
		wantMany, err := idx.ScanManyCtx(ctx, firsts, lens)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 8} {
			SetScanParallelism(w)
			got, err := idx.ScanManyLimitCtx(ctx, firsts, lens, limits)
			if err != nil {
				t.Fatal(err)
			}
			if got.Scanned != want.Scanned {
				t.Fatalf("%s workers %d: Scanned %d, want %d", name, w, got.Scanned, want.Scanned)
			}
			for i := range want.Ends {
				if !equalInt32s(got.Ends[i], want.Ends[i]) || got.Truncated[i] != want.Truncated[i] {
					t.Fatalf("%s workers %d match %d: ends %v (trunc %v), want %v (trunc %v)",
						name, w, i, got.Ends[i], got.Truncated[i], want.Ends[i], want.Truncated[i])
				}
			}
			many, err := idx.ScanManyCtx(ctx, firsts, lens)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantMany {
				if !equalInt32s(many[i], wantMany[i]) {
					t.Fatalf("%s workers %d ScanManyCtx match %d: %v, want %v", name, w, i, many[i], wantMany[i])
				}
			}
			manyPlain := idx.ScanMany(firsts, lens)
			for i := range wantMany {
				if !equalInt32s(manyPlain[i], wantMany[i]) {
					t.Fatalf("%s workers %d ScanMany match %d diverges", name, w, i)
				}
			}
		}
	}
}

// TestParallelScanCancellation checks that a context cancelled mid-query
// surfaces as an error from the partitioned path (or, when the race is
// lost, yields exactly the sequential answer) and never corrupts later
// queries on the shared scratch pools.
func TestParallelScanCancellation(t *testing.T) {
	text := lcgText(150_000, 5)
	idx := Build(text)
	pat := []byte("ac")
	withParallelism(t, 1, 1)
	want, err := idx.FindAllCtx(context.Background(), pat, 0)
	if err != nil {
		t.Fatal(err)
	}
	SetScanParallelism(4)
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		if i%2 == 0 {
			cancel() // already dead at entry
		} else {
			go cancel() // races the scan
		}
		res, err := idx.FindAllCtx(ctx, pat, 0)
		if err == nil {
			if !equalInts(res.Positions, want.Positions) || res.NodesChecked != want.NodesChecked {
				t.Fatalf("iteration %d: completed scan diverges from oracle", i)
			}
		} else if err != context.Canceled {
			t.Fatalf("iteration %d: err = %v", i, err)
		}
		cancel()
	}
	// The pools must be clean: a fresh uncancelled query still agrees.
	res, err := idx.FindAllCtx(context.Background(), pat, 0)
	if err != nil || !equalInts(res.Positions, want.Positions) {
		t.Fatalf("post-cancel query diverged: %v", err)
	}
}

func equalInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
