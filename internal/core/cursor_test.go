package core

import (
	"math/rand"
	"testing"
)

// bruteMatchingStatistic returns, for each position j in query (1-based
// end), the length of the longest suffix of query[:j] that occurs in text.
func bruteMatchingStatistics(text, query []byte) []int {
	ms := make([]int, len(query))
	for j := 1; j <= len(query); j++ {
		for l := j; l >= 1; l-- {
			if bruteContains(text, query[j-l:j]) {
				ms[j-1] = l
				break
			}
		}
	}
	return ms
}

func bruteContains(text, p []byte) bool {
	for i := 0; i+len(p) <= len(text); i++ {
		if string(text[i:i+len(p)]) == string(p) {
			return true
		}
	}
	return false
}

func TestCursorMatchingStatisticsExact(t *testing.T) {
	text := []byte("aaccacaaca")
	query := []byte("ccacaacaacca")
	idx := Build(text)
	cur := NewCursor(idx)
	want := bruteMatchingStatistics(text, query)
	for j, c := range query {
		cur.Advance(c)
		if int(cur.Len) != want[j] {
			t.Fatalf("query pos %d (%q): matched length %d, want %d", j, query[:j+1], cur.Len, want[j])
		}
		// The cursor must sit at the first-occurrence end of its match.
		if cur.Len > 0 {
			m := query[j+1-int(cur.Len) : j+1]
			if got := idx.Find(m); got != int(cur.Node)-int(cur.Len) {
				t.Fatalf("query pos %d: cursor node %d (start %d), Find(%q)=%d",
					j, cur.Node, int(cur.Node)-int(cur.Len), m, got)
			}
		}
	}
}

func TestCursorMatchingStatisticsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	letters := []byte("acgt")
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		n := 20 + rng.Intn(80)
		text := randomRepetitive(rng, letters, n)
		// Query shares structure with text half the time so long matches occur.
		var query []byte
		if trial%2 == 0 {
			query = randomRepetitive(rng, letters, 30)
		} else {
			query = append([]byte{}, text[rng.Intn(n/2):]...)
			for i := range query {
				if rng.Float64() < 0.1 {
					query[i] = letters[rng.Intn(4)]
				}
			}
		}
		idx := Build(text)
		cur := NewCursor(idx)
		want := bruteMatchingStatistics(text, query)
		for j, c := range query {
			cur.Advance(c)
			if int(cur.Len) != want[j] {
				t.Fatalf("text=%q query=%q pos %d: matched %d, want %d",
					text, query, j, cur.Len, want[j])
			}
		}
	}
}

func TestCursorForeignCharacterResets(t *testing.T) {
	idx := Build([]byte("acgtacgt"))
	cur := NewCursor(idx)
	for _, c := range []byte("acg") {
		cur.Advance(c)
	}
	if cur.Len != 3 {
		t.Fatalf("Len = %d, want 3", cur.Len)
	}
	cur.Advance('x') // never occurs
	if cur.Len != 0 || cur.Node != 0 {
		t.Fatalf("after foreign char: Len=%d Node=%d, want 0,0", cur.Len, cur.Node)
	}
	cur.Advance('a')
	if cur.Len != 1 {
		t.Fatalf("recovery failed: Len = %d, want 1", cur.Len)
	}
}

func TestCursorMatchEnds(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	cur := NewCursor(idx)
	for _, c := range []byte("ac") {
		cur.Advance(c)
	}
	ends := cur.MatchEnds()
	want := []int32{3, 6, 9}
	if len(ends) != len(want) {
		t.Fatalf("MatchEnds = %v, want %v", ends, want)
	}
	for i := range ends {
		if ends[i] != want[i] {
			t.Fatalf("MatchEnds = %v, want %v", ends, want)
		}
	}
}

func TestCursorMatchEndsEmpty(t *testing.T) {
	cur := NewCursor(Build([]byte("acgt")))
	if got := cur.MatchEnds(); got != nil {
		t.Fatalf("MatchEnds on empty match = %v, want nil", got)
	}
}

func TestCursorResetPreservesChecked(t *testing.T) {
	cur := NewCursor(Build([]byte("acgtacgt")))
	cur.Advance('a')
	cur.Advance('c')
	checked := cur.Checked
	if checked == 0 {
		t.Fatal("Checked stayed 0 after advances")
	}
	cur.Reset()
	if cur.Len != 0 || cur.Node != 0 {
		t.Fatal("Reset did not clear position")
	}
	if cur.Checked != checked {
		t.Fatalf("Reset cleared Checked: %d -> %d", checked, cur.Checked)
	}
}

// TestCursorChecksFewerNodesThanSuffixCount spot-checks the §4.1 claim at
// small scale: processing suffixes on a set basis keeps the per-character
// work bounded; total checks grow linearly, not quadratically.
func TestCursorCheckedGrowsLinearly(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	letters := []byte("acgt")
	text := randomRepetitive(rng, letters, 2000)
	idx := Build(text)
	query := randomRepetitive(rng, letters, 1000)
	cur := NewCursor(idx)
	for _, c := range query {
		cur.Advance(c)
	}
	// Amortized bound: each Advance does O(1) amortized chain hops; allow a
	// generous constant.
	if cur.Checked > int64(len(query))*20 {
		t.Fatalf("Checked = %d for %d query chars; set-basis processing broken?", cur.Checked, len(query))
	}
}

func randomRepetitive(rng *rand.Rand, letters []byte, n int) []byte {
	s := make([]byte, 0, n)
	for len(s) < n {
		if len(s) > 10 && rng.Float64() < 0.5 {
			l := 1 + rng.Intn(10)
			if l > len(s) {
				l = len(s)
			}
			start := rng.Intn(len(s) - l + 1)
			s = append(s, s[start:start+l]...)
		} else {
			s = append(s, letters[rng.Intn(len(letters))])
		}
	}
	return s[:n]
}
