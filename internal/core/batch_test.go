package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/trace"
)

// batchInputs descends each pattern and returns the scan inputs for the
// ones that occur, plus their indices into patterns.
func batchInputs(t *testing.T, idx *Index, patterns [][]byte) (firsts, lens []int32, which []int) {
	t.Helper()
	for i, p := range patterns {
		first, ok := idx.EndNode(p)
		if !ok {
			continue
		}
		firsts = append(firsts, first)
		lens = append(lens, int32(len(p)))
		which = append(which, i)
	}
	return firsts, lens, which
}

// TestScanManyLimitCtxMatchesSingleQueries is the core parity contract:
// for every pattern and limit, the batched scan's ends and truncation
// equal the single-query FindAllCtx outcome.
func TestScanManyLimitCtxMatchesSingleQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	text := make([]byte, 0, 600)
	for len(text) < 600 {
		text = append(text, "acgt"[rng.Intn(3)]) // 3-letter slice: dense repeats
	}
	idx := Build(text)
	patterns := [][]byte{
		[]byte("a"), []byte("ac"), []byte("ca"), []byte("acg"),
		[]byte("gg"), []byte("t"), // likely absent
		text[10:18], text[100:103], text[0:1],
	}
	ctx := context.Background()
	for _, limit := range []int{0, 1, 2, 3, 7, 1000} {
		firsts, lens, which := batchInputs(t, idx, patterns)
		limits := make([]int, len(firsts))
		for i := range limits {
			limits[i] = limit
		}
		scan, err := idx.ScanManyLimitCtx(ctx, firsts, lens, limits)
		if err != nil {
			t.Fatal(err)
		}
		for k, i := range which {
			p := patterns[i]
			want, err := idx.FindAllCtx(ctx, p, limit)
			if err != nil {
				t.Fatal(err)
			}
			got := scan.Ends[k]
			if len(got) != len(want.Positions) {
				t.Fatalf("limit %d pattern %q: %d ends, want %d", limit, p, len(got), len(want.Positions))
			}
			for e, end := range got {
				if pos := int(end) - len(p); pos != want.Positions[e] {
					t.Fatalf("limit %d pattern %q end[%d]: pos %d, want %d", limit, p, e, pos, want.Positions[e])
				}
			}
			if scan.Truncated[k] != want.Truncated {
				t.Fatalf("limit %d pattern %q: Truncated = %v, want %v", limit, p, scan.Truncated[k], want.Truncated)
			}
		}
	}
}

// TestScanManyLimitCtxUnlimitedMatchesScanMany pins the limit-aware scan
// to the original ScanMany when no caps apply.
func TestScanManyLimitCtxUnlimitedMatchesScanMany(t *testing.T) {
	text := []byte("aaccacaacaggtaccaaccacaacaggaaccacaaca")
	idx := Build(text)
	patterns := [][]byte{[]byte("a"), []byte("ac"), []byte("cacaaca"), []byte("gg")}
	firsts, lens, _ := batchInputs(t, idx, patterns)
	want := idx.ScanMany(firsts, lens)
	got, err := idx.ScanManyLimitCtx(context.Background(), firsts, lens, make([]int, len(firsts)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if len(got.Ends[i]) != len(want[i]) {
			t.Fatalf("match %d: %v, want %v", i, got.Ends[i], want[i])
		}
		for j := range want[i] {
			if got.Ends[i][j] != want[i][j] {
				t.Fatalf("match %d: %v, want %v", i, got.Ends[i], want[i])
			}
		}
		if got.Truncated[i] {
			t.Fatalf("match %d truncated without a limit", i)
		}
	}
	if got.Scanned <= 0 {
		t.Fatalf("Scanned = %d, want > 0", got.Scanned)
	}
}

// TestScanManyLimitCtxEarlyExit: when every match is capped, the scan
// stops before the backbone's end and reports the shorter distance.
func TestScanManyLimitCtxEarlyExit(t *testing.T) {
	// Dense hits early, then a long tail without any.
	text := append([]byte("acacacacac"), bytesRepeat('g', 5000)...)
	idx := Build(text)
	patterns := [][]byte{[]byte("ac"), []byte("ca")}
	firsts, lens, _ := batchInputs(t, idx, patterns)
	got, err := idx.ScanManyLimitCtx(context.Background(), firsts, lens, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Scanned >= int64(len(text))/2 {
		t.Fatalf("Scanned = %d, want early exit well before %d", got.Scanned, len(text))
	}
	for i := range patterns {
		if !got.Truncated[i] || len(got.Ends[i]) != 2 {
			t.Fatalf("match %d: ends %v truncated %v, want 2 ends truncated", i, got.Ends[i], got.Truncated[i])
		}
	}
}

// TestScanManyLimitCtxCancellation: a cancelled context aborts the scan
// mid-flight with context.Canceled.
func TestScanManyLimitCtxCancellation(t *testing.T) {
	text := bytesRepeat('a', 3*cancelStride)
	idx := Build(text)
	firsts, lens, _ := batchInputs(t, idx, [][]byte{[]byte("aa")})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Unlimited: without cancellation this would scan the whole backbone.
	if _, err := idx.ScanManyLimitCtx(ctx, firsts, lens, []int{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestScanManyLimitCtxTracesOneSpan: one batch pass records exactly one
// batchscan span whose node count equals the scanned distance.
func TestScanManyLimitCtxTracesOneSpan(t *testing.T) {
	text := []byte("aaccacaacaggtaccaaccacaacagg")
	idx := Build(text)
	firsts, lens, _ := batchInputs(t, idx, [][]byte{[]byte("a"), []byte("ac"), []byte("gg")})
	tr := trace.New()
	ctx := trace.NewContext(context.Background(), tr)
	scan, err := idx.ScanManyLimitCtx(ctx, firsts, lens, make([]int, len(firsts)))
	if err != nil {
		t.Fatal(err)
	}
	var spans int
	for _, rec := range tr.Records() {
		if rec.Stage != trace.StageBatchScan {
			t.Fatalf("unexpected stage %q", rec.Stage)
		}
		spans++
		if rec.Nodes != scan.Scanned {
			t.Fatalf("span nodes = %d, want %d", rec.Nodes, scan.Scanned)
		}
	}
	if spans != 1 {
		t.Fatalf("batchscan spans = %d, want exactly 1", spans)
	}
}

// TestScanManyLimitCtxCompactParity: the compact layout's batch scan
// matches the reference layout's.
func TestScanManyLimitCtxCompactParity(t *testing.T) {
	text := []byte("aaccacaacaggtaccaaccacaacaggaaccacaaca")
	idx := Build(text)
	comp, err := Freeze(idx, seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	patterns := [][]byte{[]byte("a"), []byte("ac"), []byte("cacaaca")}
	firsts, lens, _ := batchInputs(t, idx, patterns)
	ctx := context.Background()
	for _, limit := range []int{0, 1, 3} {
		limits := make([]int, len(firsts))
		for i := range limits {
			limits[i] = limit
		}
		ref, err := idx.ScanManyLimitCtx(ctx, firsts, lens, limits)
		if err != nil {
			t.Fatal(err)
		}
		// The compact layout shares node numbering with the reference
		// layout, so the same firsts/lens drive both scans.
		got, err := comp.ScanManyLimitCtx(ctx, firsts, lens, limits)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Ends {
			if len(got.Ends[i]) != len(ref.Ends[i]) || got.Truncated[i] != ref.Truncated[i] {
				t.Fatalf("limit %d match %d: compact %v/%v, reference %v/%v",
					limit, i, got.Ends[i], got.Truncated[i], ref.Ends[i], ref.Truncated[i])
			}
			for j := range ref.Ends[i] {
				if got.Ends[i][j] != ref.Ends[i][j] {
					t.Fatalf("limit %d match %d: compact %v, reference %v", limit, i, got.Ends[i], ref.Ends[i])
				}
			}
		}
	}
}

func bytesRepeat(c byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}
