package core

// String utilities that fall directly out of the SPINE structure: the LEL
// labels are, by construction, the lengths of the longest repeated
// suffixes at every prefix, so classic stringology queries reduce to scans
// over the link table.

// LongestRepeatedSubstring returns the longest substring occurring at
// least twice (possibly overlapping), together with the start offsets of
// its first two occurrences. The LEL array answers this directly: a suffix
// of length lel(i) ending at i also occurred ending at link(i), so the
// global maximum LEL is the answer. Empty text or no repeats return nil.
func (idx *Index) LongestRepeatedSubstring() (s []byte, first, second int) {
	bestNode, bestLEL := int32(0), int32(0)
	for i := int32(1); i <= int32(idx.Len()); i++ {
		if idx.lel[i] > bestLEL {
			bestNode, bestLEL = i, idx.lel[i]
		}
	}
	if bestNode == 0 {
		return nil, 0, 0
	}
	l := idx.lel[bestNode]
	return idx.text[bestNode-l : bestNode], int(idx.link[bestNode] - l), int(bestNode - l)
}

// LongestCommonSubstring returns the longest string occurring both in the
// indexed text and in other, with one occurrence position in each (-1s and
// nil when the strings share nothing). One streaming cursor pass: O(|other|)
// amortized.
func (idx *Index) LongestCommonSubstring(other []byte) (s []byte, textPos, otherPos int) {
	cur := NewCursor(idx)
	bestLen, bestNode, bestEnd := int32(0), int32(0), 0
	for j, c := range other {
		cur.Advance(c)
		if cur.Len > bestLen {
			bestLen, bestNode, bestEnd = cur.Len, cur.Node, j+1
		}
	}
	if bestLen == 0 {
		return nil, -1, -1
	}
	return idx.text[bestNode-bestLen : bestNode], int(bestNode - bestLen), bestEnd - int(bestLen)
}

// DistinctSubstrings returns the number of distinct nonempty substrings of
// the indexed text. It falls straight out of the construction: appending
// character i creates exactly i - lel(i) substrings never seen before (the
// suffixes of B_i longer than its longest repeated suffix), so the count
// is sum(i - lel(i)) — one O(n) scan, no extra space.
func (idx *Index) DistinctSubstrings() int64 {
	var total int64
	for i := int64(1); i <= int64(idx.Len()); i++ {
		total += i - int64(idx.lel[i])
	}
	return total
}

// RepeatProfile returns, for every text position i in 1..n, the length of
// the longest suffix of text[:i] that also occurs earlier — the raw LEL
// array, useful for repeat-density analysis (and the quantity behind
// Figure 8's locality). The returned slice is a copy.
func (idx *Index) RepeatProfile() []int32 {
	out := make([]int32, idx.Len())
	copy(out, idx.lel[1:])
	return out
}
