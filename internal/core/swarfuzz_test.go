package core

import (
	"context"
	"testing"

	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/suffixtree"
	"github.com/spine-index/spine/internal/trace"
)

// FuzzSWAREquivalence differentially tests the word-parallel kernels:
// on identical inputs the SWAR and scalar kernels must return the same
// positions, counts, truncation flags and NodesChecked — and both must
// agree with an independent suffix tree — across the reference and
// compact layouts, a packed DNA text and a raw byte-alphabet text
// (8-bit lanes), and after post-build appends (the online fold of the
// packed block-admission lanes). The traced variant additionally pins
// the per-stage Nodes partition as kernel-invariant, with WordsCompared
// confined to the SWAR runs. Seeds straddle the packed-word sizes (8
// chars for byte lanes, 32 for DNA) and the 64-node block boundary.
// `go test` runs the corpus; `go test -fuzz=FuzzSWAREquivalence` mines.
func FuzzSWAREquivalence(f *testing.F) {
	f.Add([]byte("abababab"), []byte("ab"), uint8(0), uint8(3))
	f.Add(repeatStr("acgt", 16), []byte("acgtacgt"), uint8(1), uint8(2))  // 64 chars: one packed DNA word boundary x2
	f.Add(repeatStr("acgt", 8), repeatStr("acgt", 9), uint8(0), uint8(0)) // pattern longer than text
	f.Add(repeatStr("acca", 33), []byte("cca"), uint8(63), uint8(1))      // 132 chars: block-boundary straddle
	f.Add(repeatStr("a", 65), repeatStr("a", 33), uint8(64), uint8(4))    // runs cross word and block edges
	f.Add(repeatStr("gattaca", 40), repeatStr("gattaca", 10), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, rawText, rawPat []byte, extraRaw, limRaw uint8) {
		if len(rawText) > 4096 || len(rawPat) > 160 || len(rawText) == 0 {
			return
		}
		prevK := ActiveScanKernel()
		prevB := SetBlockSkip(true)
		defer func() { SetScanKernel(prevK); SetBlockSkip(prevB) }()

		text := dnaFrom(rawText)
		pat := dnaFrom(rawPat)
		idx := Build(text)
		for i := 0; i < int(extraRaw)%70; i++ {
			c := "acgt"[(int(extraRaw)+i*7)%4]
			idx.Append(c)
			text = append(text, c)
		}
		// The online fold of the packed admission lanes must match the
		// one-shot packing after appends.
		if want := packBlockLELs(idx.blocks); !equalU64(idx.blockLEL, want) {
			t.Fatal("online blockLEL lanes diverge from repack after appends")
		}
		comp := mustFreeze(t, text, seq.DNA)

		st, err := suffixtree.Build(text, 0xFF)
		if err != nil {
			t.Fatalf("suffixtree.Build: %v", err)
		}
		oracle := st.FindAll(pat)

		limit := int(limRaw) % 5
		checkLayout(t, "reference", idx, pat, oracle, limit)
		checkLayout(t, "compact", comp, pat, oracle, limit)

		// Raw byte alphabet: the reference layout over the untranslated
		// fuzz bytes exercises the 8-bit lane path on arbitrary content.
		// The oracle needs a terminal byte absent from the text; skip the
		// variant in the (pathological) case all 256 values occur.
		if len(rawPat) > 0 {
			var seen [256]bool
			for _, b := range rawText {
				seen[b] = true
			}
			term, found := byte(0), false
			for v := 0; v < 256; v++ {
				if !seen[v] {
					term, found = byte(v), true
					break
				}
			}
			if found {
				bst, err := suffixtree.Build(rawText, term)
				if err != nil {
					t.Fatalf("suffixtree.Build(bytes): %v", err)
				}
				checkLayout(t, "bytes", Build(rawText), rawPat, bst.FindAll(rawPat), limit)
			}
		}
	})
}

// queryable is the slice of the layout API the SWAR fuzz target drives.
type queryable interface {
	FindAll(p []byte) []int
	Count(p []byte) int
	FindAllCtx(ctx context.Context, p []byte, limit int) (ScanResult, error)
}

// checkLayout runs the full kernel-equivalence battery for one layout:
// scalar and SWAR results must be identical to each other and to the
// oracle, the traced NodesChecked partition must be kernel-invariant,
// and word compares must be confined to the SWAR kernel.
func checkLayout(t *testing.T, name string, q queryable, pat []byte, oracle []int, limit int) {
	t.Helper()
	type outcome struct {
		all      []int
		count    int
		limited  ScanResult
		nodes    int64
		stageSum int64
		words    int64
	}
	run := func(k ScanKernel) outcome {
		SetScanKernel(k)
		var o outcome
		o.all = q.FindAll(pat)
		o.count = q.Count(pat)
		tr := trace.New()
		ctx := trace.NewContext(context.Background(), tr)
		res, err := q.FindAllCtx(ctx, pat, limit)
		if err != nil {
			t.Fatalf("%s/%v: FindAllCtx: %v", name, k, err)
		}
		o.limited = res
		o.nodes = res.NodesChecked
		for _, rec := range tr.Records() {
			o.stageSum += rec.Nodes
			o.words += rec.WordsCompared
		}
		return o
	}
	scalar := run(KernelScalar)
	swar := run(KernelSWAR)

	if !equalInts(swar.all, scalar.all) {
		t.Fatalf("%s: FindAll(%q): swar %v != scalar %v", name, pat, swar.all, scalar.all)
	}
	if !equalInts(swar.all, oracle) {
		t.Fatalf("%s: FindAll(%q): swar %v != suffix tree %v", name, pat, swar.all, oracle)
	}
	if swar.count != scalar.count || swar.count != len(oracle) {
		t.Fatalf("%s: Count(%q): swar %d, scalar %d, oracle %d", name, pat, swar.count, scalar.count, len(oracle))
	}
	if !equalInts(swar.limited.Positions, scalar.limited.Positions) ||
		swar.limited.Truncated != scalar.limited.Truncated {
		t.Fatalf("%s: FindAllCtx(%q, limit=%d): swar (%v, %v) != scalar (%v, %v)", name, pat, limit,
			swar.limited.Positions, swar.limited.Truncated, scalar.limited.Positions, scalar.limited.Truncated)
	}
	if swar.nodes != scalar.nodes {
		t.Fatalf("%s: NodesChecked(%q): swar %d != scalar %d", name, pat, swar.nodes, scalar.nodes)
	}
	// Per-stage Nodes must partition the reported total identically
	// under both kernels (§4.1 accounting is kernel-invariant).
	if swar.stageSum != swar.nodes || scalar.stageSum != scalar.nodes {
		t.Fatalf("%s: stage Nodes partition broken: swar %d/%d, scalar %d/%d",
			name, swar.stageSum, swar.nodes, scalar.stageSum, scalar.nodes)
	}
	if scalar.words != 0 {
		t.Fatalf("%s: scalar kernel recorded %d word compares", name, scalar.words)
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
