package core

import (
	"math/rand"
	"testing"

	"github.com/spine-index/spine/internal/seq"
)

// The steady-state query hot paths must not allocate: scan scratch and
// pattern-code buffers come from pools, membership is epoch-stamped
// (bumping the epoch replaces clearing), Count streams, and
// FindAllAppend reuses the caller's slice. Pinned to exactly zero
// allocations per query on both layouts.
func TestQueryPathsAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under the race detector")
	}
	rng := rand.New(rand.NewSource(29))
	base := randDNA(rng, 4000)
	text := append(append([]byte{}, base...), base...)
	idx := Build(text)
	comp := mustFreeze(t, text, seq.DNA)
	pat := append([]byte(nil), text[100:112]...) // repeated: many occurrences
	miss := []byte("acgtacgtacgtttttttttttttacgt")
	keep := func(int) bool { return true }

	type layout struct {
		name          string
		contains      func(p []byte) bool
		find          func(p []byte) int
		count         func(p []byte) int
		findAllAppend func(p []byte, dst []int) []int
		forEach       func(p []byte, fn func(int) bool)
	}
	// Both kernels must hold the zero-allocation bar: the SWAR paths
	// draw their packed-pattern buffers from the swarPat pool and the
	// packed admission lanes are plain index reads.
	prev := ActiveScanKernel()
	defer SetScanKernel(prev)
	for _, kernel := range []ScanKernel{KernelSWAR, KernelScalar} {
		SetScanKernel(kernel)
		for _, lay := range []layout{
			{"reference", idx.Contains, idx.Find, idx.Count, idx.FindAllAppend, idx.ForEachOccurrence},
			{"compact", comp.Contains, comp.Find, comp.Count, comp.FindAllAppend, comp.ForEachOccurrence},
		} {
			dst := lay.findAllAppend(pat, make([]int, 0, len(text))) // warm pools, size dst
			if len(dst) == 0 {
				t.Fatalf("%s/%v: warm-up found no occurrences", lay.name, kernel)
			}
			lay.contains(pat)
			lay.find(pat)
			lay.count(pat)
			lay.forEach(pat, keep)

			cases := []struct {
				op string
				fn func()
			}{
				{"Contains(hit)", func() { lay.contains(pat) }},
				{"Contains(miss)", func() { lay.contains(miss) }},
				{"Find", func() { lay.find(pat) }},
				{"Count", func() { lay.count(pat) }},
				{"FindAllAppend(steady)", func() { dst = lay.findAllAppend(pat, dst[:0]) }},
				{"ForEachOccurrence", func() { lay.forEach(pat, keep) }},
			}
			for _, tc := range cases {
				if n := testing.AllocsPerRun(50, tc.fn); n != 0 {
					t.Errorf("%s/%v %s: %.1f allocs/op, want 0", lay.name, kernel, tc.op, n)
				}
			}
		}
	}
}
