package core

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/spine-index/spine/internal/suffixarray"
	"github.com/spine-index/spine/internal/trie"
)

// bruteLRS finds the longest repeated substring by brute force.
func bruteLRS(s []byte) string {
	best := ""
	for i := 0; i < len(s); i++ {
		for j := i + 1; j <= len(s); j++ {
			sub := string(s[i:j])
			if len(sub) <= len(best) {
				continue
			}
			if strings.Contains(string(s[i+1:]), sub) {
				best = sub
			}
		}
	}
	return best
}

func TestLongestRepeatedSubstringKnownCases(t *testing.T) {
	cases := []struct {
		s    string
		want string
	}{
		{"banana", "ana"},
		{"aaccacaaca", "caa"}, // "caa" ends at 8 (lel) — verify length vs brute force below
		{"abcdefg", ""},
		{"aaaa", "aaa"},
		{"", ""},
		{"mississippi", "issi"},
	}
	for _, c := range cases {
		idx := Build([]byte(c.s))
		got, first, second := idx.LongestRepeatedSubstring()
		want := bruteLRS([]byte(c.s))
		if len(got) != len(want) {
			t.Fatalf("s=%q: LRS %q (len %d), brute force %q (len %d)", c.s, got, len(got), want, len(want))
		}
		if len(got) > 0 {
			if first >= second {
				t.Fatalf("s=%q: occurrence order wrong: %d, %d", c.s, first, second)
			}
			if string(c.s[first:first+len(got)]) != string(got) || string(c.s[second:second+len(got)]) != string(got) {
				t.Fatalf("s=%q: reported occurrences do not hold %q", c.s, got)
			}
		}
	}
}

func TestLongestRepeatedSubstringRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 25; trial++ {
		s := randomRepetitive(rng, []byte("acg"), 10+rng.Intn(50))
		got, _, _ := Build(s).LongestRepeatedSubstring()
		want := bruteLRS(s)
		if len(got) != len(want) {
			t.Fatalf("s=%q: LRS length %d, want %d (%q vs %q)", s, len(got), len(want), got, want)
		}
	}
}

// bruteLCS finds the longest common substring of a and b.
func bruteLCS(a, b []byte) string {
	best := ""
	for i := 0; i < len(a); i++ {
		for j := i + 1; j <= len(a); j++ {
			sub := string(a[i:j])
			if len(sub) > len(best) && strings.Contains(string(b), sub) {
				best = sub
			}
		}
	}
	return best
}

func TestLongestCommonSubstringKnownCases(t *testing.T) {
	idx := Build([]byte("gattacagena"))
	s, tp, op := idx.LongestCommonSubstring([]byte("xxtacagexx"))
	if string(s) != "tacage" {
		t.Fatalf("LCS = %q, want tacage", s)
	}
	if tp != 3 || op != 2 {
		t.Fatalf("positions = (%d, %d), want (3, 2)", tp, op)
	}
}

func TestLongestCommonSubstringDisjoint(t *testing.T) {
	idx := Build([]byte("aaaa"))
	s, tp, op := idx.LongestCommonSubstring([]byte("cccc"))
	if s != nil || tp != -1 || op != -1 {
		t.Fatalf("disjoint LCS = %q (%d, %d)", s, tp, op)
	}
}

func TestLongestCommonSubstringRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	for trial := 0; trial < 25; trial++ {
		a := randomRepetitive(rng, []byte("acgt"), 20+rng.Intn(60))
		b := randomRepetitive(rng, []byte("acgt"), 20+rng.Intn(60))
		idx := Build(a)
		got, tp, op := idx.LongestCommonSubstring(b)
		want := bruteLCS(a, b)
		if len(got) != len(want) {
			t.Fatalf("a=%q b=%q: LCS length %d, want %d", a, b, len(got), len(want))
		}
		if len(got) > 0 {
			if string(a[tp:tp+len(got)]) != string(got) || string(b[op:op+len(got)]) != string(got) {
				t.Fatalf("a=%q b=%q: reported positions wrong for %q", a, b, got)
			}
		}
	}
}

func TestRepeatProfile(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	prof := idx.RepeatProfile()
	want := []int32{0, 1, 0, 1, 1, 2, 2, 2, 3, 3}
	if len(prof) != len(want) {
		t.Fatalf("profile length %d", len(prof))
	}
	for i := range want {
		if prof[i] != want[i] {
			t.Fatalf("profile = %v, want %v", prof, want)
		}
	}
	// Must be a copy, not an alias.
	prof[0] = 99
	if p2 := idx.RepeatProfile(); p2[0] == 99 {
		t.Fatal("RepeatProfile aliases internal storage")
	}
}

func TestDistinctSubstringsMatchesTrie(t *testing.T) {
	for _, s := range []string{"", "a", "aa", "ab", "banana", "aaccacaaca", "mississippi", "abcabcabc"} {
		idx := Build([]byte(s))
		got := idx.DistinctSubstrings()
		want := int64(len(trie.NewOracle([]byte(s)).SubstringSet(0)))
		if got != want {
			t.Fatalf("s=%q: DistinctSubstrings = %d, want %d", s, got, want)
		}
	}
	rng := rand.New(rand.NewSource(183))
	for trial := 0; trial < 20; trial++ {
		s := randomRepetitive(rng, []byte("acg"), 10+rng.Intn(80))
		got := Build(s).DistinctSubstrings()
		want := int64(len(trie.NewOracle(s).SubstringSet(0)))
		if got != want {
			t.Fatalf("s=%q: DistinctSubstrings = %d, want %d", s, got, want)
		}
	}
}

// TestArbitraryByteAlphabet confirms the core index is alphabet-agnostic:
// any byte values, including 0x00 and 0xFF, index and query correctly.
func TestArbitraryByteAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(184))
	letters := []byte{0x00, 0x01, 0x7F, 0xFE, 0xFF}
	s := make([]byte, 300)
	for i := range s {
		s[i] = letters[rng.Intn(len(letters))]
	}
	idx := Build(s)
	if err := idx.Verify(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 100; q++ {
		off := rng.Intn(len(s) - 5)
		p := s[off : off+5]
		if got := idx.Find(p); got < 0 || string(s[got:got+5]) != string(p) {
			t.Fatalf("Find over binary alphabet broken: %d", got)
		}
	}
}

// TestLRSCrossCheckWithSuffixArray validates the LEL-based longest
// repeated substring against the classical suffix-array answer on larger
// inputs than brute force can handle.
func TestLRSCrossCheckWithSuffixArray(t *testing.T) {
	rng := rand.New(rand.NewSource(185))
	for trial := 0; trial < 5; trial++ {
		s := randomRepetitive(rng, []byte("acgt"), 20000)
		spineLRS, _, _ := Build(s).LongestRepeatedSubstring()
		saLRS, _, _ := suffixarray.Build(s).LongestRepeatedSubstring()
		if len(spineLRS) != len(saLRS) {
			t.Fatalf("trial %d: SPINE LRS length %d, suffix array %d", trial, len(spineLRS), len(saLRS))
		}
	}
}
