//go:build !amd64 || purego

package core

import "encoding/binary"

// Portable word loads for the SWAR kernels: explicit little-endian
// assembly, valid on any architecture and alignment regime. This is
// the `purego` / non-amd64 twin of kernel_amd64.go; both must produce
// identical words (lane k of a group at index i is element i+k).

const kernelISA = "generic"

// loadU64 returns 8 bytes of b starting at i as a little-endian word.
// The caller guarantees i+8 <= len(b).
func loadU64(b []byte, i int) uint64 {
	return binary.LittleEndian.Uint64(b[i:])
}

// loadQuad16 returns 4 consecutive uint16 values starting at s[i] as
// one word, element i+k in lane k. The caller guarantees i+4 <= len(s).
func loadQuad16(s []uint16, i int) uint64 {
	return uint64(s[i]) | uint64(s[i+1])<<16 | uint64(s[i+2])<<32 | uint64(s[i+3])<<48
}

// loadPair32 returns 2 consecutive int32 values starting at s[i] as one
// word, element i+k in lane k. The values must be non-negative (LELs
// always are). The caller guarantees i+2 <= len(s).
func loadPair32(s []int32, i int) uint64 {
	return uint64(uint32(s[i])) | uint64(uint32(s[i+1]))<<32
}
