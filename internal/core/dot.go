package core

import (
	"fmt"
	"io"
)

// WriteDot renders the index as a Graphviz digraph in the style of the
// paper's Figure 3: the backbone as a vertical chain of circled nodes with
// character-labelled vertebras, ribs as solid curved edges labelled
// "CL(PT)", extribs as dotted edges labelled "PRT(PT)", and links as
// dashed upstream edges labelled with their LEL. Rendering
// `dot -Tsvg` of the paper's example string aaccacaaca reproduces
// Figure 3 edge for edge.
func (idx *Index) WriteDot(w io.Writer) error {
	ew := &errWriter{w: w}
	ew.printf("digraph spine {\n")
	ew.printf("  rankdir=TB;\n")
	ew.printf("  node [shape=circle, fontsize=11, width=0.3, fixedsize=true];\n")
	ew.printf("  edge [fontsize=9];\n")
	n := idx.Len()
	for i := 0; i <= n; i++ {
		ew.printf("  n%d [label=\"%d\"];\n", i, i)
	}
	// Vertebras: the backbone chain.
	for i := 0; i < n; i++ {
		ew.printf("  n%d -> n%d [label=\"%c\", weight=100, penwidth=1.4];\n", i, i+1, idx.text[i])
	}
	// Links (dashed, upstream), ribs (solid, constraint-free so the
	// backbone stays straight) and extribs (dotted).
	for i := 1; i <= n; i++ {
		dest, lel := idx.Link(i)
		ew.printf("  n%d -> n%d [style=dashed, color=gray40, label=\"%d\", constraint=false];\n", i, dest, lel)
	}
	for i := 0; i <= n; i++ {
		for _, r := range idx.Ribs(i) {
			ew.printf("  n%d -> n%d [label=\"%c(%d)\", constraint=false];\n", i, r.Dest, r.CL, r.PT)
		}
		if x, ok := idx.ExtribAt(i); ok {
			ew.printf("  n%d -> n%d [style=dotted, label=\"%d(%d)\", constraint=false];\n", i, x.Dest, x.PRT, x.PT)
		}
	}
	ew.printf("}\n")
	return ew.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}
