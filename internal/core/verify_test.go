package core

import (
	"math/rand"
	"testing"
)

func TestVerifyPassesOnCorpus(t *testing.T) {
	for _, s := range testStrings() {
		if err := Build([]byte(s)).Verify(); err != nil {
			t.Fatalf("s=%q: %v", s, err)
		}
	}
	rng := rand.New(rand.NewSource(161))
	for trial := 0; trial < 30; trial++ {
		s := randomRepetitive(rng, []byte("acgt"), 50+rng.Intn(400))
		if err := Build(s).Verify(); err != nil {
			t.Fatalf("s=%q: %v", s, err)
		}
	}
}

func TestVerifyDetectsCorruptedLink(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	idx.link[8] = 4 // truth is 2
	if err := idx.Verify(); err == nil {
		t.Fatal("corrupted link not detected")
	}
}

func TestVerifyDetectsCorruptedLEL(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	idx.lel[6] = 1 // truth is 2
	if err := idx.Verify(); err == nil {
		t.Fatal("corrupted LEL not detected")
	}
}

func TestVerifyDetectsCorruptedRibPT(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	corrupted := false
	for i := range idx.edges {
		if idx.edges[i].ribN > 0 {
			idx.edges[i].ribs[0].PT += 3
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no rib to corrupt")
	}
	if err := idx.Verify(); err == nil {
		t.Fatal("corrupted rib PT not detected")
	}
}

func TestVerifyDetectsCorruptedExtrib(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	e := idx.edgesAt(5) // has the extrib to 7
	if e == nil || !e.hasExt {
		t.Fatal("expected extrib at node 5")
	}
	e.ext.PT = 3 // truth is 2; spells a wrong extension
	if err := idx.Verify(); err == nil {
		t.Fatal("corrupted extrib PT not detected")
	}
}

// TestSharedChainFamiliesVerify hunts for indexes whose extrib chains are
// shared by multiple parent-rib families — the situation behind the
// documented deviation (extribs carry ParentSrc) — and checks both the
// invariants and query correctness there.
func TestSharedChainFamiliesVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	foundShared, foundSamePRT := 0, 0
	for trial := 0; trial < 4000 && (foundShared < 20 || foundSamePRT < 1); trial++ {
		s := randomRepetitive(rng, []byte("ac"), 20+rng.Intn(60))
		idx := Build(s)
		// Map chain-start node -> set of families traversing it.
		type family struct {
			src int32
			prt int32
		}
		chains := map[int32][]family{}
		for i := 0; i <= idx.Len(); i++ {
			for _, r := range idx.Ribs(i) {
				node := r.Dest
				for {
					x, ok := idx.ExtribAt(int(node))
					if !ok {
						break
					}
					if x.ParentSrc == int32(i) && x.PRT == r.PT {
						chains[r.Dest] = append(chains[r.Dest], family{int32(i), r.PT})
						break
					}
					node = x.Dest
				}
			}
		}
		// Count chain-start nodes whose extrib serves >= 2 families, and
		// the sharper case of equal PRTs across families.
		for _, fams := range chains {
			if len(fams) >= 2 {
				foundShared++
				prts := map[int32]int{}
				for _, f := range fams {
					prts[f.prt]++
				}
				for _, cnt := range prts {
					if cnt >= 2 {
						foundSamePRT++
					}
				}
			}
		}
		if err := idx.Verify(); err != nil {
			t.Fatalf("s=%q: %v", s, err)
		}
	}
	if foundShared == 0 {
		t.Fatal("hunt found no shared extrib chains; test corpus too weak")
	}
	t.Logf("shared chains found: %d (same-PRT families: %d)", foundShared, foundSamePRT)
}

// prtOnlyDisagreements compares the paper's extrib-resolution rule —
// match on (PRT, PT) alone — against the stricter (ParentSrc, PRT, PT)
// rule this implementation uses, over every rib and in-range path length.
// It returns the number of (rib, pathlength) points where the two rules
// select different destinations.
func prtOnlyDisagreements(idx *Index) int {
	disagreements := 0
	for i := 0; i <= idx.Len(); i++ {
		for _, r := range idx.Ribs(i) {
			for l := r.PT + 1; l <= int32(i); l++ {
				strictDest, strictOK := int32(-1), false
				paperDest, paperOK := int32(-1), false
				node := r.Dest
				for {
					x, ok := idx.ExtribAt(int(node))
					if !ok {
						break
					}
					if !paperOK && x.PRT == r.PT && x.PT >= l {
						paperDest, paperOK = x.Dest, true
					}
					if !strictOK && x.ParentSrc == int32(i) && x.PRT == r.PT && x.PT >= l {
						strictDest, strictOK = x.Dest, true
					}
					node = x.Dest
				}
				if strictOK != paperOK || strictDest != paperDest {
					disagreements++
				}
			}
		}
	}
	return disagreements
}

// TestPaperPRTOnlyRuleCounterexample pins the reproduction finding behind
// the documented deviation (DESIGN.md): the paper identifies an extrib
// within a shared chain by PRT alone, but two parent ribs with equal PTs
// can share a chain, making PRT ambiguous. On the string below the paper's
// rule resolves rib (node 38, 'c', PT 6) at path length 7 to a
// wrong-family extrib, admitting "caaacaac" — not a substring — as a valid
// path: a genuine false positive. The (ParentSrc, PRT) rule used here
// resolves it correctly, as the exhaustive oracle tests confirm.
func TestPaperPRTOnlyRuleCounterexample(t *testing.T) {
	s := []byte("accacacaaaacacacccaaacacacccaaccaaacaaaaaaaacaaccaaacacaaaaaacaacaacaaaccaaacaaaccaaacaaa")
	idx := Build(s)
	if got := prtOnlyDisagreements(idx); got == 0 {
		t.Fatal("expected the paper's PRT-only rule to disagree on this string")
	}
	// The strict rule stays exact: the string the paper's rule would admit
	// is indeed absent, and the index correctly rejects it.
	bogus := append(append([]byte{}, s[31:38]...), 'c') // "caaacaac"
	if bruteContains(s, bogus) {
		t.Fatal("test premise broken: bogus string actually occurs")
	}
	if idx.Contains(bogus) {
		t.Fatalf("index admitted the false positive %q", bogus)
	}
	if err := idx.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestPRTOnlyRuleMostlyAgrees quantifies how rare the ambiguity is: across
// a random corpus the two rules disagree on only a small fraction of
// strings (which is presumably why the paper's prototype worked in
// practice), but not zero — hence the extra field.
func TestPRTOnlyRuleMostlyAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	disagreeStrings := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		s := randomRepetitive(rng, []byte("ac"), 20+rng.Intn(80))
		if prtOnlyDisagreements(Build(s)) > 0 {
			disagreeStrings++
		}
	}
	if disagreeStrings == 0 {
		t.Fatal("expected at least one ambiguous string in 400 repetitive binaries")
	}
	if disagreeStrings > trials/4 {
		t.Fatalf("ambiguity unexpectedly common: %d/%d strings", disagreeStrings, trials)
	}
	t.Logf("PRT-only ambiguity on %d/%d random repetitive strings", disagreeStrings, trials)
}
