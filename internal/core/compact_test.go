package core

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/seqgen"
	"github.com/spine-index/spine/internal/trie"
)

func mustFreeze(t *testing.T, s []byte, alpha *seq.Alphabet) *CompactIndex {
	t.Helper()
	c, err := Freeze(Build(s), alpha)
	if err != nil {
		t.Fatalf("Freeze(%q): %v", s, err)
	}
	return c
}

// TestCompactEquivalenceExhaustive replays the binary-string exhaustive
// check on the compact layout: every query result must match both the
// reference index and the oracle.
func TestCompactEquivalenceExhaustive(t *testing.T) {
	alpha := NewTestAlphabet(t, "ac")
	maxLen := 10
	if testing.Short() {
		maxLen = 7
	}
	for n := 1; n <= maxLen; n++ {
		s := make([]byte, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				checkCompactAgainstReference(t, s, alpha)
				return
			}
			for _, c := range []byte("ac") {
				s[i] = c
				rec(i + 1)
			}
		}
		rec(0)
		if t.Failed() {
			return
		}
	}
}

// NewTestAlphabet builds an alphabet over the given letters for tests.
func NewTestAlphabet(t *testing.T, letters string) *seq.Alphabet {
	t.Helper()
	return seq.NewAlphabet([]byte(letters))
}

func checkCompactAgainstReference(t *testing.T, s []byte, alpha *seq.Alphabet) {
	t.Helper()
	ref := Build(s)
	c, err := Freeze(ref, alpha)
	if err != nil {
		t.Fatalf("Freeze(%q): %v", s, err)
	}
	o := trie.NewOracle(s)
	for str := range o.SubstringSet(0) {
		p := []byte(str)
		if !c.Contains(p) {
			t.Fatalf("s=%q: compact Contains(%q) = false", s, p)
		}
		if got, want := c.Find(p), ref.Find(p); got != want {
			t.Fatalf("s=%q: compact Find(%q) = %d, ref %d", s, p, got, want)
		}
		if got, want := c.FindAll(p), ref.FindAll(p); !equalInts(got, want) {
			t.Fatalf("s=%q: compact FindAll(%q) = %v, ref %v", s, p, got, want)
		}
		// Near-misses.
		for _, x := range []byte("ac") {
			probe := append(append([]byte{}, p...), x)
			if c.Contains(probe) != ref.Contains(probe) {
				t.Fatalf("s=%q: compact Contains(%q) disagrees with reference", s, probe)
			}
		}
	}
}

func TestCompactEquivalenceRandomDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		s := randomRepetitive(rng, []byte("acgt"), 30+rng.Intn(120))
		ref := Build(s)
		c, err := Freeze(ref, seq.DNA)
		if err != nil {
			t.Fatalf("Freeze: %v", err)
		}
		for q := 0; q < 200; q++ {
			m := 1 + rng.Intn(10)
			p := make([]byte, m)
			for i := range p {
				p[i] = "acgt"[rng.Intn(4)]
			}
			if got, want := c.Find(p), ref.Find(p); got != want {
				t.Fatalf("s=%q: compact Find(%q)=%d ref=%d", s, p, got, want)
			}
			if got, want := c.FindAll(p), ref.FindAll(p); !equalInts(got, want) {
				t.Fatalf("s=%q: compact FindAll(%q)=%v ref=%v", s, p, got, want)
			}
		}
	}
}

func TestCompactCursorMatchesReferenceCursor(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 20; trial++ {
		text := randomRepetitive(rng, []byte("acgt"), 200)
		query := randomRepetitive(rng, []byte("acgt"), 100)
		ref := Build(text)
		c, err := Freeze(ref, seq.DNA)
		if err != nil {
			t.Fatalf("Freeze: %v", err)
		}
		rc := NewCursor(ref)
		cc := NewCompactCursor(c)
		for j, ch := range query {
			rc.Advance(ch)
			cc.Advance(ch)
			if rc.Len != cc.Len || rc.Node != cc.Node {
				t.Fatalf("trial %d pos %d: ref (node %d, len %d) vs compact (node %d, len %d)",
					trial, j, rc.Node, rc.Len, cc.Node, cc.Len)
			}
		}
	}
}

func TestCompactCursorForeignLetter(t *testing.T) {
	c := mustFreeze(t, []byte("acgtacgt"), seq.DNA)
	cur := NewCompactCursor(c)
	cur.Advance('a')
	cur.Advance('c')
	if cur.Len != 2 {
		t.Fatalf("Len = %d, want 2", cur.Len)
	}
	cur.Advance('x')
	if cur.Len != 0 || cur.Node != 0 {
		t.Fatalf("foreign letter: Len=%d Node=%d, want 0,0", cur.Len, cur.Node)
	}
}

func TestCompactForeignPatternLetters(t *testing.T) {
	c := mustFreeze(t, []byte("acgtacgt"), seq.DNA)
	if c.Contains([]byte("acx")) {
		t.Error("Contains with foreign letter = true")
	}
	if got := c.Find([]byte("nn")); got != -1 {
		t.Errorf("Find with foreign letters = %d, want -1", got)
	}
	if got := c.FindAll([]byte("a-")); got != nil {
		t.Errorf("FindAll with foreign letters = %v, want nil", got)
	}
}

func TestCompactPaperExample(t *testing.T) {
	alpha := NewTestAlphabet(t, "ac")
	c := mustFreeze(t, []byte("aaccacaaca"), alpha)
	if got := c.FindAll([]byte("ac")); !equalInts(got, []int{1, 4, 7}) {
		t.Fatalf("FindAll(ac) = %v, want [1 4 7]", got)
	}
	if c.Contains([]byte("accaa")) {
		t.Fatal("compact layout admitted the accaa false positive")
	}
	// Label round-trip through the 2-byte fields.
	link, lel := c.linkOf(8)
	if link != 2 || lel != 2 {
		t.Fatalf("linkOf(8) = (%d, %d), want (2, 2)", link, lel)
	}
	x, ok := c.findExtrib(5)
	if !ok || x != (Extrib{Dest: 7, PT: 2, PRT: 1, ParentSrc: 3}) {
		t.Fatalf("findExtrib(5) = %+v (%v)", x, ok)
	}
}

// TestCompactLabelOverflow forces LEL/PT values past the 2-byte sentinel
// with a 70k-character run of a single letter and checks the overflow
// table preserves exact values.
func TestCompactLabelOverflow(t *testing.T) {
	n := 70000
	s := []byte(strings.Repeat("a", n))
	ref := Build(s)
	if ref.maxLEL < int32(labelSentinel) {
		t.Fatalf("test needs LEL >= %d, got %d", labelSentinel, ref.maxLEL)
	}
	c, err := Freeze(ref, seq.DNA)
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if len(c.lelOverflow) == 0 {
		t.Fatal("no LEL overflow entries despite huge labels")
	}
	// Every node's link/LEL must round-trip exactly.
	for i := 1; i <= n; i++ {
		wd, wl := ref.Link(i)
		gd, gl := c.linkOf(int32(i))
		if wd != gd || wl != gl {
			t.Fatalf("node %d: compact link (%d,%d), ref (%d,%d)", i, gd, gl, wd, wl)
		}
	}
	// And queries still work at both extremes.
	if got := c.Find(s[:66000]); got != 0 {
		t.Fatalf("Find(a^66000) = %d, want 0", got)
	}
	if got := len(c.FindAll([]byte("aaa"))); got != n-2 {
		t.Fatalf("FindAll(aaa) count = %d, want %d", got, n-2)
	}
}

// TestCompactProteinSpill exercises the spill table: protein alphabets can
// give a node more than three ribs.
func TestCompactProteinSpill(t *testing.T) {
	// Root collects one rib per distinct first-occurring letter; with 20
	// residues it spills.
	s := []byte("ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY")
	ref := Build(s)
	if got := len(ref.Ribs(0)); got <= maxInlineRibs {
		t.Fatalf("root has %d ribs; test needs > %d", got, maxInlineRibs)
	}
	c, err := Freeze(ref, seq.Protein)
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if len(c.spill.ld) == 0 {
		t.Fatal("spill table empty despite high-fanout node")
	}
	o := trie.NewOracle(s)
	for str := range o.SubstringSet(6) {
		if !c.Contains([]byte(str)) {
			t.Fatalf("compact protein index misses %q", str)
		}
		if got, want := c.FindAll([]byte(str)), o.Occurrences([]byte(str)); !equalInts(got, want) {
			t.Fatalf("FindAll(%q) = %v, want %v", str, got, want)
		}
	}
}

// TestCompactBytesPerChar verifies the headline §5 claim on a synthetic
// genome: the compact layout stays under 12 bytes per indexed character
// and beats the reference layout by a wide margin.
func TestCompactBytesPerChar(t *testing.T) {
	n := 400000
	if testing.Short() {
		n = 80000
	}
	s := seqgen.MustGenerate(seqgen.Spec{
		Name: "t", Alphabet: seq.DNA, Length: n,
		RepeatFraction: 0.30, MeanRepeatLen: 220, MutationRate: 0.02, Seed: 12,
	})
	ref := Build(s)
	c, err := Freeze(ref, seq.DNA)
	if err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	bpc := c.BytesPerChar()
	if bpc >= 12 {
		t.Fatalf("compact layout uses %.2f B/char, want < 12 (paper §5)", bpc)
	}
	if bpc <= 6 {
		t.Fatalf("compact layout reports %.2f B/char; implausibly small, accounting bug?", bpc)
	}
	if c.SizeBytes() >= ref.MemoryBytes() {
		t.Fatalf("compact (%d B) not smaller than reference (%d B)", c.SizeBytes(), ref.MemoryBytes())
	}
}

func TestFreezeRejectsForeignText(t *testing.T) {
	if _, err := Freeze(Build([]byte("acgx")), seq.DNA); err == nil {
		t.Fatal("Freeze accepted text outside the alphabet")
	}
	if _, err := Freeze(Build([]byte("acg")), nil); err == nil {
		t.Fatal("Freeze accepted nil alphabet")
	}
}

func TestCompactEmpty(t *testing.T) {
	c := mustFreeze(t, nil, seq.DNA)
	if c.Len() != 0 || c.BytesPerChar() != 0 {
		t.Fatalf("empty compact: Len=%d bpc=%v", c.Len(), c.BytesPerChar())
	}
	if !c.Contains(nil) {
		t.Fatal("empty pattern not contained")
	}
	if c.Contains([]byte("a")) {
		t.Fatal("letter contained in empty index")
	}
}

func TestCompactTextRoundTrip(t *testing.T) {
	s := []byte("aaccacaacaggtacca")
	c := mustFreeze(t, s, seq.DNA)
	if got := c.Text(); string(got) != string(s) {
		t.Fatalf("Text() = %q, want %q", got, s)
	}
	// Also after serialization.
	back := roundTrip(t, c)
	if got := back.Text(); string(got) != string(s) {
		t.Fatalf("round-tripped Text() = %q", got)
	}
}

func TestCompactStatsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(261))
	for trial := 0; trial < 10; trial++ {
		s := randomRepetitive(rng, []byte("acgt"), 100+rng.Intn(400))
		ref := Build(s)
		c, err := Freeze(ref, seq.DNA)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.ComputeStats()
		got := c.ComputeStats()
		if got.Length != want.Length || got.RibCount != want.RibCount ||
			got.ExtribCount != want.ExtribCount ||
			got.MaxLEL != want.MaxLEL || got.MaxPT != want.MaxPT || got.MaxPRT != want.MaxPRT {
			t.Fatalf("s=%q:\ncompact %+v\nref     %+v", s, got, want)
		}
		for k := range want.FanoutNodes {
			if got.FanoutNodes[k] != want.FanoutNodes[k] {
				t.Fatalf("s=%q: fanout[%d] = %d, want %d", s, k, got.FanoutNodes[k], want.FanoutNodes[k])
			}
		}
	}
}

func TestCompactStatsProteinSpill(t *testing.T) {
	s := []byte("ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY")
	ref := Build(s)
	c, err := Freeze(ref, seq.Protein)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.ComputeStats()
	got := c.ComputeStats()
	if got.RibCount != want.RibCount || got.ExtribCount != want.ExtribCount {
		t.Fatalf("compact %+v, ref %+v", got, want)
	}
}
