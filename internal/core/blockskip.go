package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// Block-skip occurrence scanning.
//
// The §4 all-occurrence scan visits every backbone node after the first
// match and, per node, tests lel(j) >= |p| and probes link(j) against
// the target buffer. Two observations make most of that work avoidable:
//
//   - Node labels are wildly non-uniform: LEL concentrates near
//     log_sigma(n) (Table 3), so for a pattern longer than that, runs of
//     64 consecutive nodes almost never contain a single node with
//     lel >= |p|. Folding each run into a blockMeta{maxLEL, minLink,
//     maxLink} summary lets the scanner reject the whole run with one
//     cache-resident comparison — the block-max trick of word/block-level
//     sparse-suffix-tree matching (Kolpakov-Kucherov-Starikovskaya) and
//     packed compact tries (Takagi et al.) transplanted to the backbone.
//   - The target buffer only ever grows at the high end (each admitted
//     node exceeds all current members), so "is link(j) a member" does
//     not need the paper's sorted-buffer binary probe: an epoch-stamped
//     direct-index table answers it with one array read and is reused
//     across queries without clearing.
//
// The pre-existing scalar scan (containsSorted over a fresh buffer) is
// retained verbatim as the in-tree differential oracle; SetBlockSkip
// routes every public scan through it so tests and benchmarks can
// compare the two paths on identical inputs.

const (
	// blockShift sets the skip-index granularity: 1<<blockShift backbone
	// nodes per block. 64 keeps a block's labels within a cache line pair
	// while its 12-byte summary costs 0.19 bytes per indexed character.
	blockShift = 6
	blockSize  = 1 << blockShift
	// BlockSize exports the skip-index granularity for benchmarks and
	// work-accounting cross-checks (a skipped block covers at most
	// BlockSize nodes).
	BlockSize = blockSize
)

// blockMeta summarizes one run of blockSize consecutive backbone nodes:
// block b covers nodes b*blockSize+1 .. (b+1)*blockSize.
type blockMeta struct {
	maxLEL  int32 // max lel(j) over the block's nodes
	minLink int32 // min link(j)
	maxLink int32 // max link(j)
}

// blockFor returns the block index of backbone node j (j >= 1).
func blockFor(j int32) int { return int(j-1) >> blockShift }

// blockLastNode returns the last node of block b (may exceed n).
func blockLastNode(b int) int32 { return int32(b+1) << blockShift }

// blocksFor returns the number of blocks covering n backbone nodes.
func blocksFor(n int) int { return (n + blockSize - 1) / blockSize }

// foldBlock extends a block summary slice with node j's labels. Nodes
// must be folded in backbone order, which both the online Index append
// and the one-shot rebuilds guarantee.
func foldBlock(blocks []blockMeta, j, link, lel int32) []blockMeta {
	if (j-1)&(blockSize-1) == 0 {
		return append(blocks, blockMeta{maxLEL: lel, minLink: link, maxLink: link})
	}
	m := &blocks[len(blocks)-1]
	if lel > m.maxLEL {
		m.maxLEL = lel
	}
	if link < m.minLink {
		m.minLink = link
	}
	if link > m.maxLink {
		m.maxLink = link
	}
	return blocks
}

// buildBlocksOn folds the whole backbone of s into a fresh skip index —
// the one-shot form used by Freeze, CompactBuilder.Finish and
// deserialization of pre-block formats.
func buildBlocksOn[S store](s S) []blockMeta {
	n := s.textLen()
	blocks := make([]blockMeta, 0, blocksFor(int(n)))
	for j := int32(1); j <= n; j++ {
		link, lel := s.linkOf(j)
		blocks = foldBlock(blocks, j, link, lel)
	}
	return blocks
}

// blockSkipOff disables the accelerated scan, routing queries through
// the scalar oracle. Zero value = acceleration on.
var blockSkipOff atomic.Bool

// SetBlockSkip selects between the block-skip scan (true, the default)
// and the scalar oracle scan (false), returning the previous setting.
// It is safe to flip concurrently with queries; each query reads the
// knob once at entry.
func SetBlockSkip(on bool) (previous bool) {
	return !blockSkipOff.Swap(!on)
}

// BlockSkipEnabled reports whether the accelerated scan is selected.
func BlockSkipEnabled() bool { return !blockSkipOff.Load() }

// scanScratch is the pooled per-query scan state: the epoch-stamped
// membership table standing in for the paper's sorted target buffer,
// and a reusable end-node buffer for result staging. Reuse across
// queries never clears the stamp table — bumping the epoch invalidates
// every stale entry in O(1).
type scanScratch struct {
	stamp []uint32
	epoch uint32
	ends  []int32
}

var scratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

// getScratch returns scratch able to stamp nodes 0..n, with a fresh
// epoch and an empty ends buffer. Steady state performs no allocation.
func getScratch(n int32) *scanScratch {
	sc := scratchPool.Get().(*scanScratch)
	if cap(sc.stamp) < int(n)+1 {
		sc.stamp = make([]uint32, int(n)+1)
		sc.epoch = 0
	}
	sc.stamp = sc.stamp[:cap(sc.stamp)]
	sc.epoch++
	if sc.epoch == 0 {
		// Epoch wrapped: stale stamps from 2^32 queries ago would alias
		// the new epoch; clear once and restart.
		clear(sc.stamp)
		sc.epoch = 1
	}
	sc.ends = sc.ends[:0]
	return sc
}

func putScratch(sc *scanScratch) { scratchPool.Put(sc) }

// member reports whether node x was stamped during this query.
func (sc *scanScratch) member(x int32) bool { return sc.stamp[x] == sc.epoch }

// add stamps node x as a member of the current target set.
func (sc *scanScratch) add(x int32) { sc.stamp[x] = sc.epoch }

// scanStats is the work accounting of one accelerated scan.
type scanStats struct {
	// visited counts backbone nodes actually examined (the accelerated
	// path's NodesChecked contribution; skipped nodes are free). The
	// SWAR kernel covers the same nodes in fewer machine ops, so this
	// metric is kernel-invariant by design — the differential suite
	// asserts exact equality across kernels.
	visited int64
	// blocksSkipped / blocksScanned count skip-index decisions.
	blocksSkipped int64
	blocksScanned int64
	// words counts 64-bit SWAR comparisons (lane tests and packed-word
	// admission probes); zero under the scalar kernel.
	words int64
	// raIssued / raHits count readahead windows issued and range-cache
	// hits when a disk-backed store registered a scan readahead sink;
	// both stay zero for memory-resident stores.
	raIssued int64
	raHits   int64
	// workersUsed / chainsStitched describe the partitioned parallel
	// scan: partitions actually spawned (0 on the sequential path) and
	// cross-partition chain roots resolved by the ordered stitch.
	workersUsed    int64
	chainsStitched int64
}

// admit reports whether block m can contain an occurrence end for a
// pattern of length patlen whose target members currently span
// [first, maxMember]. The three rejections are each conservative:
//
//   - maxLEL < patlen: no node in the block passes the lel test.
//   - maxLink < first: every link in the block lands before the first
//     occurrence end, and members are always >= first.
//   - minLink > maxMember: every link in the block lands beyond the
//     newest member. No node in the block can link to a pre-block
//     member, so (inductively, scanning in node order) none can become
//     a member within the block either.
func (m *blockMeta) admit(patlen, first, maxMember int32) bool {
	return m.maxLEL >= patlen && m.maxLink >= first && m.minLink <= maxMember
}

// occScanOn is the block-skip occurrence scan shared by the single-
// pattern query paths: starting from the first-occurrence end node it
// appends every further occurrence end to sc.ends in increasing order.
// maxExtra caps len(sc.ends) when >= 0 (the caller's limit minus the
// first occurrence); truncated reports an early stop with backbone
// remaining. A nil ctx disables cancellation checks; a cancelled ctx
// aborts with the stats accumulated so far.
func occScanOn[S store](ctx context.Context, s S, sc *scanScratch, first, patlen int32, maxExtra int) (st scanStats, truncated bool, err error) {
	n := s.textLen()
	blocks := s.skipBlocks()
	swar, pack, t16, lastBlock := scanKernelState(s, n, patlen)
	sc.add(first)
	maxMember := first
	nextCheck := int64(cancelStride)
	ra := s.readahead()
	if ra != nil {
		iss, hits := ra.Advance(first + 1)
		st.raIssued += iss
		st.raHits += hits
	}
	j := first + 1
	for j <= n {
		b := blockFor(j)
		if swar {
			// Word-parallel admission prefilter: jump over runs of blocks
			// whose saturated maxLEL lane already fails, 4 blocks per op.
			nb, w := nextBlockLEL(pack, b, lastBlock, t16)
			st.words += w
			if nb > b {
				st.blocksSkipped += int64(nb - b)
				if nb > lastBlock {
					break
				}
				b = nb
				j = int32(b)<<blockShift + 1
			}
		}
		last := blockLastNode(b)
		if last > n {
			last = n
		}
		if !blocks[b].admit(patlen, first, maxMember) {
			st.blocksSkipped++
			j = last + 1
			continue
		}
		st.blocksScanned++
		st.visited += int64(last - j + 1)
		for j <= last {
			if swar {
				// Lane-parallel lel >= |p| prefilter within the block; the
				// exact test below re-checks through linkOf.
				nj, w := s.nextLEL(j, last, patlen)
				st.words += w
				j = nj
				if j > last {
					break
				}
			}
			link, lel := s.linkOf(j)
			if lel >= patlen && sc.member(link) {
				sc.add(j)
				maxMember = j
				sc.ends = append(sc.ends, j)
				if maxExtra >= 0 && len(sc.ends) >= maxExtra {
					st.visited -= int64(last - j) // nodes not reached
					return st, j < n, nil
				}
			}
			j++
		}
		if (ctx != nil || ra != nil) && st.visited+blockSize*st.blocksSkipped >= nextCheck {
			nextCheck += cancelStride
			if ra != nil {
				iss, hits := ra.Advance(j)
				st.raIssued += iss
				st.raHits += hits
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return st, false, err
				}
			}
		}
	}
	return st, false, nil
}

// scanKernelState reads the kernel knob once per scan and materializes
// the SWAR prefilter inputs: the packed block-maxLEL lanes, the
// saturated threshold, and the last block index. A query is therefore
// all-SWAR or all-scalar even when SetScanKernel flips concurrently.
func scanKernelState[S store](s S, n, patlen int32) (swar bool, pack []uint64, t16 uint16, lastBlock int) {
	if scalarKernel.Load() || n == 0 {
		return false, nil, 0, 0
	}
	return true, s.blockLELs(), satLEL16(patlen), blockFor(n)
}

// occCountOn is occScanOn without result staging: it counts occurrence
// ends strictly below endBound (endBound <= 0 means no bound; the first
// occurrence is NOT counted — callers own that). Membership is stamped
// for every occurrence regardless of the bound, since later occurrences
// may link to ends past it.
func occCountOn[S store](ctx context.Context, s S, sc *scanScratch, first, patlen, endBound int32) (count int, st scanStats, err error) {
	n := s.textLen()
	blocks := s.skipBlocks()
	swar, pack, t16, lastBlock := scanKernelState(s, n, patlen)
	sc.add(first)
	maxMember := first
	nextCheck := int64(cancelStride)
	ra := s.readahead()
	if ra != nil {
		iss, hits := ra.Advance(first + 1)
		st.raIssued += iss
		st.raHits += hits
	}
	j := first + 1
	for j <= n {
		b := blockFor(j)
		if swar {
			nb, w := nextBlockLEL(pack, b, lastBlock, t16)
			st.words += w
			if nb > b {
				st.blocksSkipped += int64(nb - b)
				if nb > lastBlock {
					break
				}
				b = nb
				j = int32(b)<<blockShift + 1
			}
		}
		last := blockLastNode(b)
		if last > n {
			last = n
		}
		if !blocks[b].admit(patlen, first, maxMember) {
			st.blocksSkipped++
			j = last + 1
			continue
		}
		st.blocksScanned++
		st.visited += int64(last - j + 1)
		for j <= last {
			if swar {
				nj, w := s.nextLEL(j, last, patlen)
				st.words += w
				j = nj
				if j > last {
					break
				}
			}
			link, lel := s.linkOf(j)
			if lel >= patlen && sc.member(link) {
				sc.add(j)
				maxMember = j
				if endBound <= 0 || j < endBound {
					count++
				}
			}
			j++
		}
		if (ctx != nil || ra != nil) && st.visited+blockSize*st.blocksSkipped >= nextCheck {
			nextCheck += cancelStride
			if ra != nil {
				iss, hits := ra.Advance(j)
				st.raIssued += iss
				st.raHits += hits
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return count, st, err
				}
			}
		}
	}
	return count, st, nil
}

// occStreamOn is the streaming form: fn receives each occurrence start
// offset beyond the first (in increasing order) and returns false to
// stop the scan. fn is passed through untouched so steady-state calls
// allocate nothing.
func occStreamOn[S store](s S, sc *scanScratch, first, patlen int32, plen int, fn func(start int) bool) scanStats {
	var st scanStats
	n := s.textLen()
	blocks := s.skipBlocks()
	swar, pack, t16, lastBlock := scanKernelState(s, n, patlen)
	sc.add(first)
	maxMember := first
	nextCheck := int64(cancelStride)
	ra := s.readahead()
	if ra != nil {
		iss, hits := ra.Advance(first + 1)
		st.raIssued += iss
		st.raHits += hits
	}
	j := first + 1
	for j <= n {
		b := blockFor(j)
		if swar {
			nb, w := nextBlockLEL(pack, b, lastBlock, t16)
			st.words += w
			if nb > b {
				st.blocksSkipped += int64(nb - b)
				if nb > lastBlock {
					break
				}
				b = nb
				j = int32(b)<<blockShift + 1
			}
		}
		last := blockLastNode(b)
		if last > n {
			last = n
		}
		if !blocks[b].admit(patlen, first, maxMember) {
			st.blocksSkipped++
			j = last + 1
			continue
		}
		st.blocksScanned++
		st.visited += int64(last - j + 1)
		for j <= last {
			if swar {
				nj, w := s.nextLEL(j, last, patlen)
				st.words += w
				j = nj
				if j > last {
					break
				}
			}
			link, lel := s.linkOf(j)
			if lel >= patlen && sc.member(link) {
				sc.add(j)
				maxMember = j
				if !fn(int(j) - plen) {
					st.visited -= int64(last - j)
					return st
				}
			}
			j++
		}
		if ra != nil && st.visited+blockSize*st.blocksSkipped >= nextCheck {
			nextCheck += cancelStride
			iss, hits := ra.Advance(j)
			st.raIssued += iss
			st.raHits += hits
		}
	}
	return st
}
