package core

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/spine-index/spine/internal/seq"
)

func buildDirect(t *testing.T, s []byte, alpha *seq.Alphabet) *CompactIndex {
	t.Helper()
	b, err := NewCompactBuilder(alpha)
	if err != nil {
		t.Fatalf("NewCompactBuilder: %v", err)
	}
	for _, c := range s {
		if err := b.Append(c); err != nil {
			t.Fatalf("Append(%q): %v", c, err)
		}
	}
	return b.Finish()
}

// assertCompactEquivalent checks two compact indexes answer identically
// over the full substring set plus near-misses.
func assertCompactEquivalent(t *testing.T, s []byte, a, b *CompactIndex, alphabet []byte) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("s=%q: lengths %d vs %d", s, a.Len(), b.Len())
	}
	for i := 0; i < len(s); i++ {
		for j := i + 1; j <= len(s) && j <= i+12; j++ {
			p := s[i:j]
			ga, gb := a.FindAll(p), b.FindAll(p)
			if !equalInts(ga, gb) {
				t.Fatalf("s=%q: FindAll(%q): %v vs %v", s, p, ga, gb)
			}
		}
	}
	for _, c := range alphabet {
		probe := append(append([]byte{}, s...), c)
		if a.Contains(probe) != b.Contains(probe) {
			t.Fatalf("s=%q: Contains(%q) differs", s, probe)
		}
	}
	for i := int32(1); i <= int32(a.Len()); i++ {
		ad, al := a.linkOf(i)
		bd, bl := b.linkOf(i)
		if ad != bd || al != bl {
			t.Fatalf("s=%q node %d: links (%d,%d) vs (%d,%d)", s, i, ad, al, bd, bl)
		}
	}
}

func TestDirectBuildEqualsFreezeExhaustive(t *testing.T) {
	alpha := seq.NewAlphabet([]byte("ac"))
	maxLen := 11
	if testing.Short() {
		maxLen = 8
	}
	for n := 1; n <= maxLen; n++ {
		s := make([]byte, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				frozen, err := Freeze(Build(s), alpha)
				if err != nil {
					t.Fatalf("Freeze: %v", err)
				}
				direct := buildDirect(t, s, alpha)
				assertCompactEquivalent(t, s, frozen, direct, []byte("ac"))
				return
			}
			for _, c := range []byte("ac") {
				s[i] = c
				rec(i + 1)
			}
		}
		rec(0)
		if t.Failed() {
			return
		}
	}
}

func TestDirectBuildEqualsFreezeRandomDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		s := randomRepetitive(rng, []byte("acgt"), 50+rng.Intn(300))
		frozen, err := Freeze(Build(s), seq.DNA)
		if err != nil {
			t.Fatal(err)
		}
		direct := buildDirect(t, s, seq.DNA)
		assertCompactEquivalent(t, s, frozen, direct, []byte("acgt"))
	}
}

func TestDirectBuildProteinSpill(t *testing.T) {
	s := []byte("ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWYACDEFGHIKL")
	frozen, err := Freeze(Build(s), seq.Protein)
	if err != nil {
		t.Fatal(err)
	}
	direct := buildDirect(t, s, seq.Protein)
	if len(direct.spill.ld) == 0 {
		t.Fatal("direct build did not exercise the spill table")
	}
	// Finish must have compacted: no dead rows remain referenced.
	assertCompactEquivalent(t, s, frozen, direct, []byte("ACDEFGHIKLMNPQRSTVWY"))
	if got, want := len(direct.spill.ld), len(frozen.spill.ld); got != want {
		t.Fatalf("spill rows after compaction: %d, frozen has %d", got, want)
	}
}

func TestDirectBuildOverflowLabels(t *testing.T) {
	s := []byte(strings.Repeat("a", 70000))
	direct := buildDirect(t, s, seq.DNA)
	if len(direct.lelOverflow) == 0 {
		t.Fatal("no overflow entries on a^70000")
	}
	if got := direct.Find(s[:66000]); got != 0 {
		t.Fatalf("Find(a^66000) = %d", got)
	}
}

func TestDirectBuildRejectsForeignLetter(t *testing.T) {
	b, err := NewCompactBuilder(seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append('x'); err == nil {
		t.Fatal("foreign letter accepted")
	}
	if _, err := NewCompactBuilder(nil); err == nil {
		t.Fatal("nil alphabet accepted")
	}
}

func TestDirectBuildSizeMatchesFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	s := randomRepetitive(rng, []byte("acgt"), 5000)
	frozen, err := Freeze(Build(s), seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	direct := buildDirect(t, s, seq.DNA)
	fb, db := frozen.SizeBytes(), direct.SizeBytes()
	// Identical logical content; allow slack for slice growth capacity
	// (SizeBytes counts lengths, so they should match exactly).
	if fb != db {
		t.Fatalf("SizeBytes: frozen %d vs direct %d", fb, db)
	}
}

// TestDirectBuildSerializationRoundTrip confirms direct-built indexes
// serialize like frozen ones.
func TestDirectBuildSerializationRoundTrip(t *testing.T) {
	s := []byte("aaccacaacaggtaccacaacag")
	direct := buildDirect(t, s, seq.DNA)
	back := roundTrip(t, direct)
	if got, want := back.FindAll([]byte("caa")), direct.FindAll([]byte("caa")); !equalInts(got, want) {
		t.Fatalf("round trip FindAll = %v, want %v", got, want)
	}
}
