package core

import (
	"math/rand"
	"testing"
)

// bruteHamming returns start offsets where a length-len(p) window is
// within k substitutions of p.
func bruteHamming(s, p []byte, k int) []int {
	var out []int
	for i := 0; i+len(p) <= len(s); i++ {
		d := 0
		for j := range p {
			if s[i+j] != p[j] {
				d++
			}
		}
		if d <= k {
			out = append(out, i)
		}
	}
	return out
}

// bruteEdit returns start offsets i such that some window s[i:j] has edit
// distance <= k to p. Computed per start with banded DP over window
// lengths len(p)-k .. len(p)+k.
func bruteEdit(s, p []byte, k int) []int {
	m := len(p)
	var out []int
	for i := 0; i <= len(s); i++ {
		maxW := m + k
		if i+1 > len(s) && m > 0 {
			// windows starting at len(s) can only match via deletions
		}
		if w := len(s) - i; maxW > w {
			maxW = w
		}
		// dp[j] = edit distance between s[i:i+t] and p[:j] rolled over t.
		prev := make([]int, m+1)
		cur := make([]int, m+1)
		for j := 0; j <= m; j++ {
			prev[j] = j
		}
		matched := prev[m] <= k && m <= k // empty window
		for t := 1; t <= maxW && !matched; t++ {
			cur[0] = t
			for j := 1; j <= m; j++ {
				cost := 1
				if s[i+t-1] == p[j-1] {
					cost = 0
				}
				cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			}
			if cur[m] <= k {
				matched = true
			}
			prev, cur = cur, prev
		}
		if m <= k {
			matched = true // empty window within budget
		}
		if matched && i < len(s)+1 {
			out = append(out, i)
		}
	}
	// Only starts with at least a nonempty match window inside s make
	// sense for comparison; drop a trailing start == len(s) unless m <= k.
	if len(out) > 0 && out[len(out)-1] == len(s) && m > k {
		out = out[:len(out)-1]
	}
	return out
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func TestFindAllWithinZeroEqualsExact(t *testing.T) {
	s := []byte("aaccacaacaggtaccacaaca")
	idx := Build(s)
	for _, p := range []string{"ca", "acca", "caacag", "zz"} {
		got := idx.FindAllWithin([]byte(p), 0, Hamming)
		want := idx.FindAll([]byte(p))
		if !equalInts(got, want) {
			t.Fatalf("k=0 Hamming FindAllWithin(%q) = %v, FindAll = %v", p, got, want)
		}
		got = idx.FindAllWithin([]byte(p), 0, Edit)
		if !equalInts(got, want) {
			t.Fatalf("k=0 Edit FindAllWithin(%q) = %v, FindAll = %v", p, got, want)
		}
	}
}

func TestFindAllWithinHammingMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		s := randomRepetitive(rng, []byte("acgt"), 40+rng.Intn(120))
		idx := Build(s)
		for q := 0; q < 20; q++ {
			m := 3 + rng.Intn(8)
			p := make([]byte, m)
			for i := range p {
				p[i] = "acgt"[rng.Intn(4)]
			}
			k := rng.Intn(3)
			got := idx.FindAllWithin(p, k, Hamming)
			want := bruteHamming(s, p, k)
			if !equalInts(got, orEmpty(want)) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("s=%q p=%q k=%d: got %v, want %v", s, p, k, got, want)
			}
		}
	}
}

func TestFindAllWithinEditMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(172))
	trials := 15
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		s := randomRepetitive(rng, []byte("acgt"), 30+rng.Intn(60))
		idx := Build(s)
		for q := 0; q < 10; q++ {
			m := 4 + rng.Intn(6)
			p := make([]byte, m)
			for i := range p {
				p[i] = "acgt"[rng.Intn(4)]
			}
			k := 1 + rng.Intn(2)
			got := idx.FindAllWithin(p, k, Edit)
			want := bruteEdit(s, p, k)
			if !equalInts(got, orEmpty(want)) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("s=%q p=%q k=%d: got %v, want %v", s, p, k, got, want)
			}
		}
	}
}

func TestFindAllWithinPlantedMutations(t *testing.T) {
	// A pattern absent exactly but present with one substitution at a
	// known position must be found at k=1 and not at k=0.
	s := []byte("gggggggacgaacgtggggggg") // acgtacgt with one substitution (t->a) at offset 7
	idx := Build(s)
	p := []byte("acgtacgt")
	if got := idx.FindAllWithin(p, 0, Hamming); len(got) != 0 {
		t.Fatalf("k=0 found %v, want none", got)
	}
	got := idx.FindAllWithin(p, 1, Hamming)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("k=1 = %v, want [7]", got)
	}
	// With one deletion in the text, Edit finds it but Hamming cannot.
	s2 := []byte("gggggggacgacgtggggggg") // acgtacgt minus one 't'
	idx2 := Build(s2)
	if got := idx2.FindAllWithin(p, 1, Hamming); len(got) != 0 {
		t.Fatalf("Hamming k=1 on deleted text = %v, want none", got)
	}
	if got := idx2.FindAllWithin(p, 1, Edit); len(got) == 0 {
		t.Fatal("Edit k=1 missed the single-deletion occurrence")
	}
}

func TestFindAllWithinNegativeBudget(t *testing.T) {
	idx := Build([]byte("acgt"))
	if got := idx.FindAllWithin([]byte("a"), -1, Hamming); got != nil {
		t.Fatalf("negative budget = %v, want nil", got)
	}
}

func TestCountWithin(t *testing.T) {
	idx := Build([]byte("acgtacgtacgt"))
	if got := idx.CountWithin([]byte("acgt"), 0, Hamming); got != 3 {
		t.Fatalf("CountWithin k=0 = %d, want 3", got)
	}
	if got := idx.CountWithin([]byte("acga"), 1, Hamming); got < 3 {
		t.Fatalf("CountWithin k=1 = %d, want >= 3", got)
	}
}

func orEmpty(v []int) []int {
	if v == nil {
		return []int{}
	}
	return v
}
