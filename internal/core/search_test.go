package core

import (
	"math/rand"
	"testing"

	"github.com/spine-index/spine/internal/trie"
)

// enumerateValidPaths walks the deterministic valid-path transition
// relation from the root and returns every spelled string together with
// its end node. This is the direct encoding of the paper's "valid paths
// correspond exactly to the substrings" theorem.
func enumerateValidPaths(idx *Index, alphabet []byte, maxLen int) map[string]int32 {
	out := map[string]int32{"": 0}
	type state struct {
		node, plen int32
		str        string
	}
	stack := []state{{0, 0, ""}}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if int(st.plen) >= maxLen {
			continue
		}
		for _, c := range alphabet {
			if next, ok := idx.step(st.node, st.plen, c); ok {
				s := st.str + string(c)
				if prev, seen := out[s]; seen && prev != next {
					// A string must have exactly one valid path.
					panic("duplicate valid path with different end node for " + s)
				}
				if _, seen := out[s]; !seen {
					out[s] = next
					stack = append(stack, state{next, st.plen + 1, s})
				}
			}
		}
	}
	return out
}

// checkAgainstOracle asserts full behavioural equivalence of the index and
// the brute-force oracle on s: valid paths == substrings, end node ==
// first-occurrence end, and FindAll == all occurrences, for every
// substring and a set of near-miss patterns.
func checkAgainstOracle(t *testing.T, s []byte, alphabet []byte) {
	t.Helper()
	idx := Build(s)
	o := trie.NewOracle(s)

	paths := enumerateValidPaths(idx, alphabet, len(s))
	want := o.SubstringSet(0)
	for str, end := range paths {
		if str == "" {
			continue
		}
		if !want[str] {
			t.Fatalf("s=%q: false positive: valid path spells %q (ends at node %d)", s, str, end)
		}
		if first := o.First([]byte(str)); int(end) != first+len(str) {
			t.Fatalf("s=%q: path for %q ends at node %d, want first-occurrence end %d",
				s, str, end, first+len(str))
		}
	}
	for str := range want {
		if _, ok := paths[str]; !ok {
			t.Fatalf("s=%q: false negative: substring %q has no valid path", s, str)
		}
		gotOcc := idx.FindAll([]byte(str))
		wantOcc := o.Occurrences([]byte(str))
		if !equalInts(gotOcc, wantOcc) {
			t.Fatalf("s=%q: FindAll(%q) = %v, want %v", s, str, gotOcc, wantOcc)
		}
	}
	// Near-miss patterns: every substring with one appended/substituted
	// character must agree with the oracle too.
	for str := range want {
		for _, c := range alphabet {
			probe := []byte(str + string(c))
			if idx.Contains(probe) != o.Contains(probe) {
				t.Fatalf("s=%q: Contains(%q) = %v, oracle %v", s, probe, idx.Contains(probe), o.Contains(probe))
			}
		}
	}
}

// TestExhaustiveBinaryStrings validates every string over {a,c} up to
// length 12 — 8190 indexes — against the oracle. Slow mode only checks a
// sampled subset under -short.
func TestExhaustiveBinaryStrings(t *testing.T) {
	alphabet := []byte("ac")
	maxLen := 12
	if testing.Short() {
		maxLen = 9
	}
	for n := 1; n <= maxLen; n++ {
		s := make([]byte, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				checkAgainstOracle(t, s, alphabet)
				return
			}
			for _, c := range alphabet {
				s[i] = c
				rec(i + 1)
			}
		}
		rec(0)
		if t.Failed() {
			return
		}
	}
}

// TestExhaustiveTernaryStrings validates every string over {a,c,g} up to
// length 8.
func TestExhaustiveTernaryStrings(t *testing.T) {
	alphabet := []byte("acg")
	maxLen := 8
	if testing.Short() {
		maxLen = 6
	}
	for n := 1; n <= maxLen; n++ {
		s := make([]byte, n)
		var rec func(i int)
		rec = func(i int) {
			if i == n {
				checkAgainstOracle(t, s, alphabet)
				return
			}
			for _, c := range alphabet {
				s[i] = c
				rec(i + 1)
			}
		}
		rec(0)
		if t.Failed() {
			return
		}
	}
}

// TestRandomDNAStringsAgainstOracle exercises longer random and
// repeat-heavy strings over the full DNA alphabet.
func TestRandomDNAStringsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := []byte("acgt")
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		n := 20 + rng.Intn(60)
		s := make([]byte, n)
		for i := range s {
			if i > 10 && rng.Float64() < 0.5 {
				// Re-copy an earlier segment to force repeat structure
				// (ribs with growing PTs, deep extrib chains).
				l := 1 + rng.Intn(8)
				start := rng.Intn(i - l + 1)
				copy(s[i:], s[start:start+l])
			}
			s[i] = alphabet[rng.Intn(4)]
		}
		checkAgainstOracle(t, s, alphabet)
		if t.Failed() {
			return
		}
	}
}

// TestAdversarialRepetitiveStrings hits the structures known to stress
// extrib chains: high-order repeats with small period.
func TestAdversarialRepetitiveStrings(t *testing.T) {
	cases := []string{
		"aaaaaaaaaaaaaaaaaaaa",
		"abababababababababab",
		"aabaabaabaabaabaab",
		"abcabcabcabcabcabc",
		"aabbaabbaabbaabb",
		"abaababaabaababaababa", // Fibonacci-like
		"aacaacaaacaaacaaaacaaaa",
		"atatacatatacgatatacgg",
	}
	for _, s := range cases {
		alpha := distinctLetters(s)
		checkAgainstOracle(t, []byte(s), alpha)
		if t.Failed() {
			return
		}
	}
}

func distinctLetters(s string) []byte {
	seen := map[byte]bool{}
	var out []byte
	for i := 0; i < len(s); i++ {
		if !seen[s[i]] {
			seen[s[i]] = true
			out = append(out, s[i])
		}
	}
	return out
}

func TestFindAgreesWithOracleOnAbsentPatterns(t *testing.T) {
	s := []byte("gattacagattacaagatta")
	idx := Build(s)
	o := trie.NewOracle(s)
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 500; q++ {
		m := 1 + rng.Intn(8)
		p := make([]byte, m)
		for i := range p {
			p[i] = "acgt"[rng.Intn(4)]
		}
		if got, want := idx.Find(p), o.First(p); got != want {
			t.Fatalf("Find(%q) = %d, oracle %d", p, got, want)
		}
	}
}

func TestFullTextIsItsOwnSubstring(t *testing.T) {
	s := []byte("ccacaacgtgttaaccacaacag")
	idx := Build(s)
	if got := idx.Find(s); got != 0 {
		t.Fatalf("Find(full text) = %d, want 0", got)
	}
	if got := idx.FindAll(s); len(got) != 1 || got[0] != 0 {
		t.Fatalf("FindAll(full text) = %v, want [0]", got)
	}
}

func TestCount(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	if got := idx.Count([]byte("ca")); got != 3 {
		t.Fatalf("Count(ca) = %d, want 3", got)
	}
	if got := idx.Count([]byte("zz")); got != 0 {
		t.Fatalf("Count(zz) = %d, want 0", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestForEachOccurrenceStreamsAndStops(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	var got []int
	idx.ForEachOccurrence([]byte("ac"), func(start int) bool {
		got = append(got, start)
		return true
	})
	if !equalInts(got, []int{1, 4, 7}) {
		t.Fatalf("streamed = %v", got)
	}
	// Early stop after the first hit.
	count := 0
	idx.ForEachOccurrence([]byte("ac"), func(int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
	// Absent pattern: no calls.
	idx.ForEachOccurrence([]byte("zz"), func(int) bool {
		t.Fatal("callback for absent pattern")
		return false
	})
	// Empty pattern: n+1 positions.
	count = 0
	idx.ForEachOccurrence(nil, func(int) bool { count++; return true })
	if count != 11 {
		t.Fatalf("empty pattern visited %d", count)
	}
}

func TestForEachOccurrenceMatchesFindAll(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	s := randomRepetitive(rng, []byte("acgt"), 400)
	idx := Build(s)
	for q := 0; q < 100; q++ {
		m := 1 + rng.Intn(6)
		p := make([]byte, m)
		for i := range p {
			p[i] = "acgt"[rng.Intn(4)]
		}
		var got []int
		idx.ForEachOccurrence(p, func(start int) bool { got = append(got, start); return true })
		if want := idx.FindAll(p); !equalInts(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("ForEach(%q) = %v, FindAll = %v", p, got, want)
		}
	}
}
