package core

import (
	"math/rand"
	"testing"
)

// BenchmarkOccurrenceScan compares the scalar §4 scan against the
// block-skip scan on a 1MB random-DNA text with a selective pattern
// (the regime BENCH_scan.json reports on; see also spinebench -scan).
func BenchmarkOccurrenceScan(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	text := randDNA(rng, 1<<20)
	idx := Build(text)
	pat := text[1000:1032]
	for _, mode := range []struct {
		name string
		on   bool
	}{{"scalar", false}, {"blockskip", true}} {
		b.Run(mode.name, func(b *testing.B) {
			prev := SetBlockSkip(mode.on)
			defer SetBlockSkip(prev)
			var dst []int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = idx.FindAllAppend(pat, dst[:0])
			}
		})
	}
}
