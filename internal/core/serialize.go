package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"github.com/spine-index/spine/internal/seq"
)

// Serialized compact-index format (little-endian):
//
//	magic "SPNE" | version u16 | alphabet: len u8 + letters |
//	n u32 | packed: bits u8 + words u32 + u64 data |
//	lel []u16 | ref []u32 |
//	7 x shape table | spill table | 3 overflow maps |
//	v2+: block-max skip index (3 x u32 per block) |
//	crc32 (IEEE) of everything before it
//
// Every length field is validated against sane bounds on load, and the
// checksum is verified before any data is trusted. Version 1 files (no
// block section) still load: the skip index is rebuilt from the link
// table in one O(n) pass.
const (
	serializeMagic   = "SPNE"
	serializeVersion = uint16(2)
)

type countingWriter struct {
	w   *bufio.Writer
	sum hash.Hash32
	err error
}

func (cw *countingWriter) bytes(b []byte) {
	if cw.err != nil {
		return
	}
	if _, err := cw.w.Write(b); err != nil {
		cw.err = err
		return
	}
	cw.sum.Write(b)
}

func (cw *countingWriter) u8(v uint8) { cw.bytes([]byte{v}) }
func (cw *countingWriter) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	cw.bytes(b[:])
}
func (cw *countingWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	cw.bytes(b[:])
}
func (cw *countingWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	cw.bytes(b[:])
}

func (cw *countingWriter) u16s(vs []uint16) {
	cw.u32(uint32(len(vs)))
	for _, v := range vs {
		cw.u16(v)
	}
}

func (cw *countingWriter) u32s(vs []uint32) {
	cw.u32(uint32(len(vs)))
	for _, v := range vs {
		cw.u32(v)
	}
}

func (cw *countingWriter) byteSlice(vs []byte) {
	cw.u32(uint32(len(vs)))
	cw.bytes(vs)
}

// Save serializes the compact index to w; sizes are available via
// SizeBytes.
func (c *CompactIndex) Save(w io.Writer) error {
	cw := &countingWriter{w: bufio.NewWriter(w), sum: crc32.NewIEEE()}
	cw.bytes([]byte(serializeMagic))
	cw.u16(serializeVersion)

	letters := make([]byte, c.alpha.Size())
	for i := range letters {
		letters[i] = c.alpha.Letter(i)
	}
	cw.byteSlice(letters)

	cw.u32(uint32(c.n))
	cw.u8(uint8(c.chars.Bits()))
	packed := c.chars.Unpack() // re-packed on load; simple and alphabet-safe
	cw.byteSlice(packed)

	cw.u16s(c.lel)
	cw.u32s(c.ref)

	for shape := 1; shape < numShapes; shape++ {
		tb := &c.tables[shape]
		cw.u32s(tb.ld)
		cw.u32s(tb.ribRD)
		cw.u16s(tb.ribPT)
		cw.byteSlice(tb.ribCL)
		cw.u32s(tb.extRD)
		cw.u16s(tb.extPT)
		cw.u16s(tb.extPRT)
		cw.u32s(tb.extSrc)
	}
	sp := &c.spill
	cw.u32s(sp.ld)
	cw.u32s(sp.start)
	cw.u32s(sp.ribRD)
	cw.u16s(sp.ribPT)
	cw.byteSlice(sp.ribCL)
	cw.u32s(sp.extRD)
	cw.u16s(sp.extPT)
	cw.u16s(sp.extPRT)
	cw.u32s(sp.extSrc)

	cw.u32(uint32(len(c.lelOverflow)))
	for k, v := range c.lelOverflow {
		cw.u32(uint32(k))
		cw.u32(uint32(v))
	}
	cw.u32(uint32(len(c.ptOverflow)))
	for k, v := range c.ptOverflow {
		cw.u64(k)
		cw.u32(uint32(v))
	}
	cw.u32(uint32(len(c.extOverflow)))
	for k, v := range c.extOverflow {
		cw.u32(uint32(k))
		cw.u32(uint32(v[0]))
		cw.u32(uint32(v[1]))
	}
	cw.u32(uint32(len(c.blocks)))
	for _, bm := range c.blocks {
		cw.u32(uint32(bm.maxLEL))
		cw.u32(uint32(bm.minLink))
		cw.u32(uint32(bm.maxLink))
	}
	if cw.err != nil {
		return fmt.Errorf("core: serializing index: %w", cw.err)
	}
	// Checksum trailer (not itself summed).
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], cw.sum.Sum32())
	if _, err := cw.w.Write(b[:]); err != nil {
		return fmt.Errorf("core: serializing index: %w", err)
	}
	return cw.w.Flush()
}

type countingReader struct {
	r   *bufio.Reader
	sum hash.Hash32
	err error
}

func (cr *countingReader) bytes(n int) []byte {
	if cr.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(cr.r, b); err != nil {
		cr.err = err
		return nil
	}
	cr.sum.Write(b)
	return b
}

func (cr *countingReader) u8() uint8 {
	b := cr.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (cr *countingReader) u16() uint16 {
	b := cr.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (cr *countingReader) u32() uint32 {
	b := cr.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (cr *countingReader) u64() uint64 {
	b := cr.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// lenCapped reads a length field and bounds it to keep a corrupt stream
// from forcing huge allocations before the checksum is verified.
func (cr *countingReader) lenCapped(max uint32, what string) int {
	n := cr.u32()
	if cr.err == nil && n > max {
		cr.err = fmt.Errorf("implausible %s length %d", what, n)
	}
	return int(n)
}

const maxReasonable = 1 << 28 // 256M entries caps any one array

// readChunk is the incremental allocation unit for array reads: a lying
// length field in a corrupt stream fails at EOF after at most one chunk of
// wasted work instead of committing gigabytes up front.
const readChunk = 1 << 16

func (cr *countingReader) u16s(what string) []uint16 {
	n := cr.lenCapped(maxReasonable, what)
	if cr.err != nil {
		return nil
	}
	var out []uint16
	for len(out) < n {
		batch := n - len(out)
		if batch > readChunk {
			batch = readChunk
		}
		b := cr.bytes(batch * 2)
		if cr.err != nil {
			return nil
		}
		for i := 0; i < batch; i++ {
			out = append(out, binary.LittleEndian.Uint16(b[i*2:]))
		}
	}
	return out
}

func (cr *countingReader) u32s(what string) []uint32 {
	n := cr.lenCapped(maxReasonable, what)
	if cr.err != nil {
		return nil
	}
	var out []uint32
	for len(out) < n {
		batch := n - len(out)
		if batch > readChunk {
			batch = readChunk
		}
		b := cr.bytes(batch * 4)
		if cr.err != nil {
			return nil
		}
		for i := 0; i < batch; i++ {
			out = append(out, binary.LittleEndian.Uint32(b[i*4:]))
		}
	}
	return out
}

func (cr *countingReader) byteSlice(what string) []byte {
	n := cr.lenCapped(maxReasonable, what)
	if cr.err != nil {
		return nil
	}
	var out []byte
	for len(out) < n {
		batch := n - len(out)
		if batch > readChunk {
			batch = readChunk
		}
		b := cr.bytes(batch)
		if cr.err != nil {
			return nil
		}
		out = append(out, b...)
	}
	return out
}

// ReadCompact deserializes a compact index written by WriteTo, verifying
// magic, version, structural bounds, and the checksum.
func ReadCompact(r io.Reader) (*CompactIndex, error) {
	cr := &countingReader{r: bufio.NewReader(r), sum: crc32.NewIEEE()}
	fail := func(err error) (*CompactIndex, error) {
		return nil, fmt.Errorf("core: reading index: %w", err)
	}
	magic := cr.bytes(4)
	if cr.err != nil {
		return fail(cr.err)
	}
	if string(magic) != serializeMagic {
		return fail(fmt.Errorf("bad magic %q", magic))
	}
	version := cr.u16()
	if cr.err == nil && (version < 1 || version > serializeVersion) {
		return fail(fmt.Errorf("unsupported version %d", version))
	}
	letters := cr.byteSlice("alphabet")
	if cr.err != nil {
		return fail(cr.err)
	}
	if len(letters) == 0 || len(letters) > 255 {
		return fail(fmt.Errorf("alphabet size %d out of range", len(letters)))
	}
	seen := [256]bool{}
	for _, l := range letters {
		if seen[l] {
			return fail(fmt.Errorf("alphabet letter %q duplicated", l))
		}
		seen[l] = true
		if other := otherCaseByte(l); other != l && seen[other] {
			return fail(fmt.Errorf("alphabet letters %q/%q collide after case folding", l, other))
		}
	}
	alpha := seq.NewAlphabet(letters)

	n := cr.u32()
	bits := cr.u8()
	codes := cr.byteSlice("packed codes")
	if cr.err != nil {
		return fail(cr.err)
	}
	if uint32(len(codes)) != n {
		return fail(fmt.Errorf("code count %d != n %d", len(codes), n))
	}
	packed, err := seq.NewPacked(codes, uint(bits))
	if err != nil {
		return fail(err)
	}

	c := &CompactIndex{
		alpha:       alpha,
		chars:       packed,
		n:           int32(n),
		lelOverflow: make(map[int32]int32),
		ptOverflow:  make(map[uint64]int32),
		extOverflow: make(map[int32][2]int32),
	}
	c.lel = cr.u16s("lel")
	c.ref = cr.u32s("ref")
	for shape := 1; shape < numShapes; shape++ {
		tb := &c.tables[shape]
		tb.ribs = shape >> 1
		tb.hasExt = shape&1 == 1
		tb.ld = cr.u32s("ld")
		tb.ribRD = cr.u32s("ribRD")
		tb.ribPT = cr.u16s("ribPT")
		tb.ribCL = cr.byteSlice("ribCL")
		tb.extRD = cr.u32s("extRD")
		tb.extPT = cr.u16s("extPT")
		tb.extPRT = cr.u16s("extPRT")
		tb.extSrc = cr.u32s("extSrc")
	}
	sp := &c.spill
	sp.ld = cr.u32s("spill ld")
	sp.start = cr.u32s("spill start")
	sp.ribRD = cr.u32s("spill ribRD")
	sp.ribPT = cr.u16s("spill ribPT")
	sp.ribCL = cr.byteSlice("spill ribCL")
	sp.extRD = cr.u32s("spill extRD")
	sp.extPT = cr.u16s("spill extPT")
	sp.extPRT = cr.u16s("spill extPRT")
	sp.extSrc = cr.u32s("spill extSrc")

	nLel := cr.lenCapped(maxReasonable, "lel overflow")
	for i := 0; i < nLel && cr.err == nil; i++ {
		k, v := cr.u32(), cr.u32()
		c.lelOverflow[int32(k)] = int32(v)
	}
	nPT := cr.lenCapped(maxReasonable, "pt overflow")
	for i := 0; i < nPT && cr.err == nil; i++ {
		k, v := cr.u64(), cr.u32()
		c.ptOverflow[k] = int32(v)
	}
	nExt := cr.lenCapped(maxReasonable, "ext overflow")
	for i := 0; i < nExt && cr.err == nil; i++ {
		k, v0, v1 := cr.u32(), cr.u32(), cr.u32()
		c.extOverflow[int32(k)] = [2]int32{int32(v0), int32(v1)}
	}
	if version >= 2 {
		nBlocks := cr.lenCapped(maxReasonable, "skip blocks")
		if cr.err == nil {
			c.blocks = make([]blockMeta, 0, nBlocks)
			for i := 0; i < nBlocks && cr.err == nil; i++ {
				maxLEL, minLink, maxLink := cr.u32(), cr.u32(), cr.u32()
				c.blocks = append(c.blocks, blockMeta{
					maxLEL:  int32(maxLEL),
					minLink: int32(minLink),
					maxLink: int32(maxLink),
				})
			}
		}
	}
	if cr.err != nil {
		return fail(cr.err)
	}

	wantSum := cr.sum.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(cr.r, trailer[:]); err != nil {
		return fail(fmt.Errorf("missing checksum: %w", err))
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != wantSum {
		return fail(fmt.Errorf("checksum mismatch: file %08x, computed %08x", got, wantSum))
	}
	if version < 2 {
		// Pre-block formats carry no skip index; rebuild it from the link
		// table so loaded indexes accelerate identically to frozen ones.
		c.blocks = buildBlocksOn(c)
	}
	// The packed SWAR admission lanes are derived state, never serialized.
	c.blockLEL = packBlockLELs(c.blocks)
	if err := c.validate(); err != nil {
		return fail(err)
	}
	return c, nil
}

func otherCaseByte(b byte) byte {
	switch {
	case b >= 'a' && b <= 'z':
		return b - ('a' - 'A')
	case b >= 'A' && b <= 'Z':
		return b + ('a' - 'A')
	}
	return b
}

// validate cross-checks structural consistency after a load.
func (c *CompactIndex) validate() error {
	if len(c.lel) != int(c.n)+1 || len(c.ref) != int(c.n)+1 {
		return fmt.Errorf("LT sizes (%d, %d) inconsistent with n=%d", len(c.lel), len(c.ref), c.n)
	}
	if len(c.blocks) != blocksFor(int(c.n)) {
		return fmt.Errorf("skip index has %d blocks for n=%d (want %d)", len(c.blocks), c.n, blocksFor(int(c.n)))
	}
	if len(c.blockLEL) != (len(c.blocks)+3)/4 {
		return fmt.Errorf("packed admission lanes cover %d words for %d blocks (want %d)", len(c.blockLEL), len(c.blocks), (len(c.blocks)+3)/4)
	}
	for shape := 1; shape < numShapes; shape++ {
		tb := &c.tables[shape]
		rows := len(tb.ld)
		if len(tb.ribRD) != rows*tb.ribs || len(tb.ribPT) != rows*tb.ribs || len(tb.ribCL) != rows*tb.ribs {
			return fmt.Errorf("shape %d rib arrays inconsistent", shape)
		}
		extRows := 0
		if tb.hasExt {
			extRows = rows
		}
		if len(tb.extRD) != extRows || len(tb.extPT) != extRows || len(tb.extPRT) != extRows || len(tb.extSrc) != extRows {
			return fmt.Errorf("shape %d extrib arrays inconsistent", shape)
		}
	}
	sp := &c.spill
	if len(sp.start) != len(sp.ld)+1 {
		return fmt.Errorf("spill CSR offsets inconsistent")
	}
	if len(sp.start) > 0 && int(sp.start[len(sp.start)-1]) != len(sp.ribRD) {
		return fmt.Errorf("spill CSR tail inconsistent")
	}
	for i := int32(0); i <= c.n; i++ {
		ref := c.ref[i]
		if ref&refTag == 0 {
			if ref > uint32(c.n) {
				return fmt.Errorf("node %d: link destination %d beyond backbone", i, ref)
			}
			continue
		}
		shape := (ref >> refShapeShift) & 7
		row := ref & refRowMask
		if shape == 0 {
			if int(row) >= len(sp.ld) {
				return fmt.Errorf("node %d: spill row %d out of range", i, row)
			}
		} else if int(row) >= len(c.tables[shape].ld) {
			return fmt.Errorf("node %d: shape %d row %d out of range", i, shape, row)
		}
	}
	return nil
}
