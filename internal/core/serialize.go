package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"github.com/spine-index/spine/internal/seq"
)

// Serialized compact-index formats (little-endian):
//
// Version 3 (current, written by Save) is the section-directory layout
// documented in serialize_v3.go: a fixed header plus a directory of
// 8-byte-aligned raw-array sections, openable zero-copy.
//
// Versions 1–2 are the legacy byte stream this file still reads:
//
//	magic "SPNE" | version u16 | alphabet: len u8 + letters |
//	n u32 | packed: bits u8 + codes u32 + code bytes |
//	lel []u16 | ref []u32 |
//	7 x shape table | spill table | 3 overflow maps |
//	v2: block-max skip index (3 x u32 per block) |
//	crc32 (IEEE) of everything before it
//
// Every length field is validated against sane bounds on load, and the
// checksum is verified before any data is trusted. Version 1 files (no
// block section) still load: the skip index is rebuilt from the link
// table in one O(n) pass.
const (
	serializeMagic   = "SPNE"
	serializeVersion = uint16(3)

	// serializeVersionLegacy is the newest pre-directory stream version.
	serializeVersionLegacy = uint16(2)
)

type countingReader struct {
	r   *bufio.Reader
	sum hash.Hash32
	err error
}

func (cr *countingReader) bytes(n int) []byte {
	if cr.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(cr.r, b); err != nil {
		cr.err = err
		return nil
	}
	cr.sum.Write(b)
	return b
}

func (cr *countingReader) u8() uint8 {
	b := cr.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (cr *countingReader) u16() uint16 {
	b := cr.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (cr *countingReader) u32() uint32 {
	b := cr.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (cr *countingReader) u64() uint64 {
	b := cr.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// lenCapped reads a length field and bounds it to keep a corrupt stream
// from forcing huge allocations before the checksum is verified.
func (cr *countingReader) lenCapped(max uint32, what string) int {
	n := cr.u32()
	if cr.err == nil && n > max {
		cr.err = fmt.Errorf("implausible %s length %d", what, n)
	}
	return int(n)
}

const maxReasonable = 1 << 28 // 256M entries caps any one array

// readChunk is the incremental allocation unit for array reads: a lying
// length field in a corrupt stream fails at EOF after at most one chunk of
// wasted work instead of committing gigabytes up front.
const readChunk = 1 << 16

func (cr *countingReader) u16s(what string) []uint16 {
	n := cr.lenCapped(maxReasonable, what)
	if cr.err != nil {
		return nil
	}
	var out []uint16
	for len(out) < n {
		batch := n - len(out)
		if batch > readChunk {
			batch = readChunk
		}
		b := cr.bytes(batch * 2)
		if cr.err != nil {
			return nil
		}
		for i := 0; i < batch; i++ {
			out = append(out, binary.LittleEndian.Uint16(b[i*2:]))
		}
	}
	return out
}

func (cr *countingReader) u32s(what string) []uint32 {
	n := cr.lenCapped(maxReasonable, what)
	if cr.err != nil {
		return nil
	}
	var out []uint32
	for len(out) < n {
		batch := n - len(out)
		if batch > readChunk {
			batch = readChunk
		}
		b := cr.bytes(batch * 4)
		if cr.err != nil {
			return nil
		}
		for i := 0; i < batch; i++ {
			out = append(out, binary.LittleEndian.Uint32(b[i*4:]))
		}
	}
	return out
}

func (cr *countingReader) byteSlice(what string) []byte {
	n := cr.lenCapped(maxReasonable, what)
	if cr.err != nil {
		return nil
	}
	var out []byte
	for len(out) < n {
		batch := n - len(out)
		if batch > readChunk {
			batch = readChunk
		}
		b := cr.bytes(batch)
		if cr.err != nil {
			return nil
		}
		out = append(out, b...)
	}
	return out
}

// ReadCompact deserializes a compact index written by Save, verifying
// magic, version, structural bounds, and every checksum. Version 3
// files go through the section-directory open with full verification
// (including the padding-is-zero rule, so any flipped bit is caught);
// version 1–2 streams use the legacy decoder.
func ReadCompact(r io.Reader) (*CompactIndex, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading index: %w", err)
	}
	if len(data) >= 6 && string(data[:4]) == serializeMagic &&
		binary.LittleEndian.Uint16(data[4:6]) == serializeVersion {
		c, _, err := openCompactBytes(aligned8(data), true)
		return c, err
	}
	return readCompactLegacy(bytes.NewReader(data))
}

// readCompactLegacy decodes the version 1–2 byte-stream format.
func readCompactLegacy(r io.Reader) (*CompactIndex, error) {
	cr := &countingReader{r: bufio.NewReader(r), sum: crc32.NewIEEE()}
	fail := func(err error) (*CompactIndex, error) {
		return nil, fmt.Errorf("core: reading index: %w", err)
	}
	magic := cr.bytes(4)
	if cr.err != nil {
		return fail(cr.err)
	}
	if string(magic) != serializeMagic {
		return fail(fmt.Errorf("bad magic %q", magic))
	}
	version := cr.u16()
	if cr.err == nil && (version < 1 || version > serializeVersionLegacy) {
		return fail(fmt.Errorf("unsupported version %d", version))
	}
	letters := cr.byteSlice("alphabet")
	if cr.err != nil {
		return fail(cr.err)
	}
	if len(letters) == 0 || len(letters) > 255 {
		return fail(fmt.Errorf("alphabet size %d out of range", len(letters)))
	}
	seen := [256]bool{}
	for _, l := range letters {
		if seen[l] {
			return fail(fmt.Errorf("alphabet letter %q duplicated", l))
		}
		seen[l] = true
		if other := otherCaseByte(l); other != l && seen[other] {
			return fail(fmt.Errorf("alphabet letters %q/%q collide after case folding", l, other))
		}
	}
	alpha := seq.NewAlphabet(letters)

	n := cr.u32()
	bits := cr.u8()
	codes := cr.byteSlice("packed codes")
	if cr.err != nil {
		return fail(cr.err)
	}
	if uint32(len(codes)) != n {
		return fail(fmt.Errorf("code count %d != n %d", len(codes), n))
	}
	packed, err := seq.NewPacked(codes, uint(bits))
	if err != nil {
		return fail(err)
	}

	c := &CompactIndex{
		alpha:       alpha,
		chars:       packed,
		n:           int32(n),
		lelOverflow: make(map[int32]int32),
		ptOverflow:  make(map[uint64]int32),
		extOverflow: make(map[int32][2]int32),
	}
	c.lel = cr.u16s("lel")
	c.ref = cr.u32s("ref")
	for shape := 1; shape < numShapes; shape++ {
		tb := &c.tables[shape]
		tb.ribs = shape >> 1
		tb.hasExt = shape&1 == 1
		tb.ld = cr.u32s("ld")
		tb.ribRD = cr.u32s("ribRD")
		tb.ribPT = cr.u16s("ribPT")
		tb.ribCL = cr.byteSlice("ribCL")
		tb.extRD = cr.u32s("extRD")
		tb.extPT = cr.u16s("extPT")
		tb.extPRT = cr.u16s("extPRT")
		tb.extSrc = cr.u32s("extSrc")
	}
	sp := &c.spill
	sp.ld = cr.u32s("spill ld")
	sp.start = cr.u32s("spill start")
	sp.ribRD = cr.u32s("spill ribRD")
	sp.ribPT = cr.u16s("spill ribPT")
	sp.ribCL = cr.byteSlice("spill ribCL")
	sp.extRD = cr.u32s("spill extRD")
	sp.extPT = cr.u16s("spill extPT")
	sp.extPRT = cr.u16s("spill extPRT")
	sp.extSrc = cr.u32s("spill extSrc")

	nLel := cr.lenCapped(maxReasonable, "lel overflow")
	for i := 0; i < nLel && cr.err == nil; i++ {
		k, v := cr.u32(), cr.u32()
		c.lelOverflow[int32(k)] = int32(v)
	}
	nPT := cr.lenCapped(maxReasonable, "pt overflow")
	for i := 0; i < nPT && cr.err == nil; i++ {
		k, v := cr.u64(), cr.u32()
		c.ptOverflow[k] = int32(v)
	}
	nExt := cr.lenCapped(maxReasonable, "ext overflow")
	for i := 0; i < nExt && cr.err == nil; i++ {
		k, v0, v1 := cr.u32(), cr.u32(), cr.u32()
		c.extOverflow[int32(k)] = [2]int32{int32(v0), int32(v1)}
	}
	if version >= 2 {
		nBlocks := cr.lenCapped(maxReasonable, "skip blocks")
		if cr.err == nil {
			c.blocks = make([]blockMeta, 0, nBlocks)
			for i := 0; i < nBlocks && cr.err == nil; i++ {
				maxLEL, minLink, maxLink := cr.u32(), cr.u32(), cr.u32()
				c.blocks = append(c.blocks, blockMeta{
					maxLEL:  int32(maxLEL),
					minLink: int32(minLink),
					maxLink: int32(maxLink),
				})
			}
		}
	}
	if cr.err != nil {
		return fail(cr.err)
	}

	wantSum := cr.sum.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(cr.r, trailer[:]); err != nil {
		return fail(fmt.Errorf("missing checksum: %w", err))
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != wantSum {
		return fail(fmt.Errorf("checksum mismatch: file %08x, computed %08x", got, wantSum))
	}
	if version < 2 {
		// Pre-block formats carry no skip index; rebuild it from the link
		// table so loaded indexes accelerate identically to frozen ones.
		c.blocks = buildBlocksOn(c)
	}
	// The packed SWAR admission lanes are derived state, never serialized.
	c.blockLEL = packBlockLELs(c.blocks)
	if err := c.validate(); err != nil {
		return fail(err)
	}
	if err := c.validateRefs(); err != nil {
		return fail(err)
	}
	return c, nil
}

func otherCaseByte(b byte) byte {
	switch {
	case b >= 'a' && b <= 'z':
		return b - ('a' - 'A')
	case b >= 'A' && b <= 'Z':
		return b + ('a' - 'A')
	}
	return b
}

// validate cross-checks structural consistency after a load.
func (c *CompactIndex) validate() error {
	if len(c.lel) != int(c.n)+1 || len(c.ref) != int(c.n)+1 {
		return fmt.Errorf("LT sizes (%d, %d) inconsistent with n=%d", len(c.lel), len(c.ref), c.n)
	}
	if len(c.blocks) != blocksFor(int(c.n)) {
		return fmt.Errorf("skip index has %d blocks for n=%d (want %d)", len(c.blocks), c.n, blocksFor(int(c.n)))
	}
	if len(c.blockLEL) != (len(c.blocks)+3)/4 {
		return fmt.Errorf("packed admission lanes cover %d words for %d blocks (want %d)", len(c.blockLEL), len(c.blocks), (len(c.blocks)+3)/4)
	}
	for shape := 1; shape < numShapes; shape++ {
		tb := &c.tables[shape]
		rows := len(tb.ld)
		if len(tb.ribRD) != rows*tb.ribs || len(tb.ribPT) != rows*tb.ribs || len(tb.ribCL) != rows*tb.ribs {
			return fmt.Errorf("shape %d rib arrays inconsistent", shape)
		}
		extRows := 0
		if tb.hasExt {
			extRows = rows
		}
		if len(tb.extRD) != extRows || len(tb.extPT) != extRows || len(tb.extPRT) != extRows || len(tb.extSrc) != extRows {
			return fmt.Errorf("shape %d extrib arrays inconsistent", shape)
		}
	}
	sp := &c.spill
	if len(sp.start) != len(sp.ld)+1 {
		return fmt.Errorf("spill CSR offsets inconsistent")
	}
	if len(sp.start) > 0 && int(sp.start[len(sp.start)-1]) != len(sp.ribRD) {
		return fmt.Errorf("spill CSR tail inconsistent")
	}
	return nil
}

// validateRefs walks every node's link reference and bounds-checks its
// table row — O(n) work that touches the whole ref section, so the
// zero-copy lazy open (which promises a page-cache-cold open in
// milliseconds) defers it to the Verify option while the deserializing
// and fallback loaders always run it.
func (c *CompactIndex) validateRefs() error {
	sp := &c.spill
	for i := int32(0); i <= c.n; i++ {
		ref := c.ref[i]
		if ref&refTag == 0 {
			if ref > uint32(c.n) {
				return fmt.Errorf("node %d: link destination %d beyond backbone", i, ref)
			}
			continue
		}
		shape := (ref >> refShapeShift) & 7
		row := ref & refRowMask
		if shape == 0 {
			if int(row) >= len(sp.ld) {
				return fmt.Errorf("node %d: spill row %d out of range", i, row)
			}
		} else if int(row) >= len(c.tables[shape].ld) {
			return fmt.Errorf("node %d: shape %d row %d out of range", i, shape, row)
		}
	}
	return nil
}
