package core

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// Partitioned form of the §4 batched occurrence scan (ScanMany /
// unlimited ScanManyLimitCtx). The single-pattern chain argument in
// parallel.go generalizes per match: node j is an end of match m iff
// lel(j) >= lens[m] and its link chain — every hop with lel >= lens[m]
// — terminates in a node already in m's target set. A worker therefore
// tracks, per in-partition node, both the locally resolved memberships
// (link chains reaching a seed first or a local member) and the pending
// chain state (ultimate root in an earlier partition plus the minimum
// lel along the local chain, which is the binding constraint for any
// match the root may belong to).
//
// Only unlimited batches take this path: per-match limits make block
// admission depend on the done-set evolution, which would entangle the
// partitions; limited batches stay on the sequential scan. The fold of
// ScanManyCtx onto this pass means the match-engine batch path — the
// heavy analytics consumer — is exactly the one that parallelizes.

// batchEntry is one classified candidate streamed to the batch stitch:
// m >= 0 is a locally resolved member of match m; m == -1 is a pending
// chain with ultimate root `root` and effective (minimum) chain lel.
type batchEntry struct {
	j    int32
	m    int32
	root int32
	lel  int32
}

var batchChunkPool = sync.Pool{New: func() any {
	return make([]batchEntry, 0, scanChunkLen)
}}

// batchPartScratch is the pooled per-worker chain state for the batch
// scan: the epoch-stamped pending table from parallel.go plus a
// parallel lel word (valid only when the state epoch matches).
type batchPartScratch struct {
	base    int32
	state   []uint64
	pendLEL []int32
	epoch   uint32
}

var batchPartScratchPool = sync.Pool{New: func() any { return new(batchPartScratch) }}

func getBatchPartScratch(part scanPart) *batchPartScratch {
	bp := batchPartScratchPool.Get().(*batchPartScratch)
	span := int(part.hi-part.lo) + 1
	if cap(bp.state) < span {
		bp.state = make([]uint64, span)
		bp.pendLEL = make([]int32, span)
		bp.epoch = 0
	}
	bp.state = bp.state[:cap(bp.state)]
	bp.pendLEL = bp.pendLEL[:cap(bp.pendLEL)]
	bp.epoch++
	if bp.epoch == 0 {
		clear(bp.state)
		bp.epoch = 1
	}
	bp.base = part.lo
	return bp
}

func putBatchPartScratch(bp *batchPartScratch) {
	if bp != nil {
		batchPartScratchPool.Put(bp)
	}
}

func (bp *batchPartScratch) setPend(x, root, lel int32) {
	i := x - bp.base
	bp.state[i] = uint64(bp.epoch)<<32 | uint64(uint32(root))
	bp.pendLEL[i] = lel
}

func (bp *batchPartScratch) pendOf(x int32) (root, lel int32, ok bool) {
	i := x - bp.base
	v := bp.state[i]
	if uint32(v>>32) != bp.epoch {
		return 0, 0, false
	}
	return int32(uint32(v)), bp.pendLEL[i], true
}

// parBatchPartScanOn scans one partition for the batch: the sequential
// batch admission and classification (no SWAR prefilters, mirroring the
// sequential batch pass so the replayed Scanned counter is exact),
// streaming batchEntry chunks in backbone order.
func parBatchPartScanOn[S store](ctx context.Context, s S, bp *batchPartScratch, part scanPart, firsts, lens []int32, predone []bool, minFirst, maxFirst, minActiveLen int32, out chan<- []batchEntry, stop *atomic.Bool, stopCh <-chan struct{}) (st scanStats, err error) {
	blocks := s.skipBlocks()
	// owners[node] lists matches whose target set locally contains node,
	// seeded with every active first — including firsts inside or after
	// this partition, which the j > firsts[m] guard neutralizes.
	owners := make(map[int32][]int32, len(firsts))
	for i := range firsts {
		if !predone[i] {
			owners[firsts[i]] = append(owners[firsts[i]], int32(i))
		}
	}
	// maxActive seeds at max(lo-1, maxFirst): at least the sequential
	// maxMember at the same backbone point, so admission is a superset.
	maxActive := part.lo - 1
	if maxFirst > maxActive {
		maxActive = maxFirst
	}
	chunk := batchChunkPool.Get().([]batchEntry)[:0]
	flush := func() bool {
		if len(chunk) == 0 {
			return true
		}
		select {
		case out <- chunk:
			chunk = batchChunkPool.Get().([]batchEntry)[:0]
			return true
		case <-stopCh:
			return false
		}
	}
	nextCheck := int64(cancelStride)
	ra := s.readahead()
	if ra != nil {
		iss, hits := ra.Advance(part.lo)
		st.raIssued += iss
		st.raHits += hits
	}
	j := part.lo
	for j <= part.hi {
		b := blockFor(j)
		last := blockLastNode(b)
		if last > part.hi {
			last = part.hi
		}
		bm := &blocks[b]
		if bm.maxLEL < minActiveLen || bm.maxLink < minFirst || bm.minLink > maxActive {
			st.blocksSkipped++
			j = last + 1
			continue
		}
		st.blocksScanned++
		st.visited += int64(last - j + 1)
		for ; j <= last; j++ {
			link, lel := s.linkOf(j)
			emitted := false
			if ms, ok := owners[link]; ok {
				for _, m := range ms {
					if lel >= lens[m] && j > firsts[m] {
						owners[j] = append(owners[j], m)
						chunk = append(chunk, batchEntry{j: j, m: m})
						emitted = true
					}
				}
			}
			// Pending chain tracking is independent of local membership: a
			// link target can be a local member of one match and, unseen by
			// this worker, a member of others — so a cross-partition link
			// always also emits a pending entry; the stitch deduplicates.
			if lel >= minActiveLen {
				if link < part.lo {
					if link > minFirst {
						bp.setPend(j, link, lel)
						chunk = append(chunk, batchEntry{j: j, m: -1, root: link, lel: lel})
						emitted = true
					}
				} else if root, plel, ok := bp.pendOf(link); ok {
					eff := lel
					if plel < eff {
						eff = plel
					}
					bp.setPend(j, root, eff)
					chunk = append(chunk, batchEntry{j: j, m: -1, root: root, lel: eff})
					emitted = true
				}
			}
			if emitted {
				maxActive = j
				if len(chunk) >= scanChunkLen && !flush() {
					return st, nil
				}
			}
		}
		if st.visited+blockSize*st.blocksSkipped >= nextCheck {
			nextCheck += cancelStride
			if ra != nil {
				iss, hits := ra.Advance(j)
				st.raIssued += iss
				st.raHits += hits
			}
			if stop.Load() {
				return st, nil
			}
			if err := ctx.Err(); err != nil {
				return st, err
			}
		}
	}
	if !flush() {
		return st, nil
	}
	return st, nil
}

// parScanManyOn runs the unlimited batch scan over parts partitions,
// appending each match's further occurrence ends to ends[i] (already
// seeded with the first occurrences) in increasing order. The stitch
// consumes partitions left to right, resolving pending roots against
// the global owner map exactly as the sequential induction would. On
// success the stats are the sequential pass's own numbers via replay.
func parScanManyOn[S store](ctx context.Context, s S, firsts, lens []int32, predone []bool, minFirst, maxFirst, minActiveLen int32, parts []scanPart, ends [][]int32) (st scanStats, err error) {
	n := s.textLen()
	states := make([]parPartState, len(parts))
	chans := make([]chan []batchEntry, len(parts))
	for k := range parts {
		chans[k] = make(chan []batchEntry, chunkBuf)
	}
	var stop atomic.Bool
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { stop.Store(true); close(stopCh) }) }
	var wg sync.WaitGroup
	for k := range parts {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			bp := getBatchPartScratch(parts[k])
			pprof.Do(ctx, pprof.Labels("spine_scan", "batchscan", "spine_scan_part", strconv.Itoa(k)), func(ctx context.Context) {
				stw, errw := parBatchPartScanOn(ctx, s, bp, parts[k], firsts, lens, predone, minFirst, maxFirst, minActiveLen, chans[k], &stop, stopCh)
				states[k] = parPartState{st: stw, err: errw}
			})
			putBatchPartScratch(bp)
			close(chans[k])
		}(k)
	}

	ownersG := make(map[int32][]int32, len(firsts))
	for i := range firsts {
		if !predone[i] {
			ownersG[firsts[i]] = append(ownersG[firsts[i]], int32(i))
		}
	}
	// members collects every appended end in backbone order (consecutive
	// duplicates collapsed) — the maxMember evolution the replay needs.
	var members []int32
	var chains int64
	appendEnd := func(j int32, m int32) {
		// Dedup guard: a pending entry can re-derive a membership the
		// worker (or an earlier entry for the same node) already resolved;
		// per match, ends grow in strictly increasing node order, so a
		// duplicate can only be the latest element.
		if e := ends[m]; len(e) > 0 && e[len(e)-1] == j {
			return
		}
		ends[m] = append(ends[m], j)
		ownersG[j] = append(ownersG[j], m)
		if len(members) == 0 || members[len(members)-1] != j {
			members = append(members, j)
		}
	}
	for k := range parts {
		for chunk := range chans[k] {
			for _, e := range chunk {
				if e.m >= 0 {
					appendEnd(e.j, e.m)
					continue
				}
				chains++
				for _, m := range ownersG[e.root] {
					if e.lel >= lens[m] && e.j > firsts[m] {
						appendEnd(e.j, m)
					}
				}
			}
			batchChunkPool.Put(chunk[:0])
		}
		if states[k].err != nil {
			err = states[k].err
			break
		}
	}
	halt()
	wg.Wait()

	st.workersUsed = int64(len(parts))
	st.chainsStitched = chains
	for k := range states {
		st.raIssued += states[k].st.raIssued
		st.raHits += states[k].st.raHits
	}
	if err != nil {
		for k := range states {
			st.visited += states[k].st.visited
			st.blocksSkipped += states[k].st.blocksSkipped
			st.blocksScanned += states[k].st.blocksScanned
		}
		return st, err
	}
	st.visited, st.blocksSkipped, st.blocksScanned = replayBatchScanOn(s, minFirst, maxFirst, minActiveLen, members, n)
	return st, nil
}

// replayBatchScanOn re-derives the sequential batch pass's work
// counters from the skip metadata and the stitched member sequence —
// valid because with no limits the admission inputs (minActiveLen,
// minFirst) are scan constants and maxMember evolves only with the
// merged member sequence.
func replayBatchScanOn[S store](s S, minFirst, maxFirst, minActiveLen int32, members []int32, n int32) (visited, skipped, scanned int64) {
	blocks := s.skipBlocks()
	maxMember := maxFirst
	mi := 0
	j := minFirst + 1
	for j <= n {
		for mi < len(members) && members[mi] < j {
			maxMember = members[mi]
			mi++
		}
		b := blockFor(j)
		last := blockLastNode(b)
		if last > n {
			last = n
		}
		bm := &blocks[b]
		if bm.maxLEL < minActiveLen || bm.maxLink < minFirst || bm.minLink > maxMember {
			skipped++
		} else {
			scanned++
			visited += int64(last - j + 1)
		}
		j = last + 1
	}
	return visited, skipped, scanned
}
