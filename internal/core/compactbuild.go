package core

import (
	"fmt"

	"github.com/spine-index/spine/internal/seq"
)

// CompactBuilder constructs a CompactIndex directly in the §5 table
// layout, online — the way the paper's prototype builds. When a node
// acquires an additional downstream edge its row moves to the rib table of
// the next shape ("it might appear at first glance that the construction
// time of SPINE would degrade due to the movement of nodes across the RTs
// ... we have experimentally observed that this impact is negligible");
// the BenchmarkAblationDirectCompactBuild ablation measures exactly that.
//
// The builder maintains, per table, a row -> node back-map so a
// swap-with-last delete can repair the displaced node's locator. Spill
// rows (fan-out beyond three ribs, protein alphabets) are CSR-shaped and
// immutable, so a spill-row change appends a fresh row and abandons the
// old one; Finish compacts the garbage away.
type CompactBuilder struct {
	c *CompactIndex
	// rowNode[shape][row] is the node owning that row.
	rowNode [numShapes][]uint32
	// spillNode[row] is the node owning that spill row (or dead).
	spillNode []uint32
}

// NewCompactBuilder returns an empty builder over the given alphabet.
func NewCompactBuilder(alpha *seq.Alphabet) (*CompactBuilder, error) {
	if alpha == nil {
		return nil, fmt.Errorf("core: CompactBuilder requires an alphabet")
	}
	packed, err := seq.NewPacked(nil, alpha.Bits())
	if err != nil {
		return nil, err
	}
	c := &CompactIndex{
		alpha:       alpha,
		chars:       packed,
		lel:         make([]uint16, 1),
		ref:         make([]uint32, 1),
		lelOverflow: make(map[int32]int32),
		ptOverflow:  make(map[uint64]int32),
		extOverflow: make(map[int32][2]int32),
	}
	for shape := 1; shape < numShapes; shape++ {
		c.tables[shape].ribs = shape >> 1
		c.tables[shape].hasExt = shape&1 == 1
	}
	c.spill.start = append(c.spill.start, 0)
	return &CompactBuilder{c: c}, nil
}

// Len returns the number of appended characters.
func (b *CompactBuilder) Len() int { return int(b.c.n) }

// Append extends the index by one character (a raw alphabet letter).
func (b *CompactBuilder) Append(letter byte) error {
	code := b.c.alpha.Code(letter)
	if code < 0 {
		return fmt.Errorf("core: letter %q not in the alphabet", letter)
	}
	return b.appendCode(byte(code))
}

func (b *CompactBuilder) appendCode(code byte) error {
	c := b.c
	k := c.n
	if err := c.chars.Append(code); err != nil {
		return err
	}
	c.n++
	c.lel = append(c.lel, 0)
	c.ref = append(c.ref, 0)
	newNode := k + 1

	if k == 0 {
		b.setLink(newNode, 0, 0)
		return nil
	}
	t, L := c.linkOf(k)
	for {
		if c.charAt(t) == code {
			b.setLink(newNode, t+1, L+1)
			return nil
		}
		if r, ok := c.findRib(t, code); ok {
			if L <= r.PT {
				b.setLink(newNode, r.Dest, L+1)
				return nil
			}
			return b.handleExtribs(t, r, L, newNode)
		}
		b.addRib(t, Rib{CL: code, Dest: newNode, PT: L})
		if t == 0 {
			b.setLink(newNode, 0, 0)
			return nil
		}
		t, L = c.linkOf(t)
	}
}

func (b *CompactBuilder) handleExtribs(t int32, r Rib, L, newNode int32) error {
	c := b.c
	lastDest, lastPT := r.Dest, r.PT
	node := r.Dest
	for {
		x, ok := c.findExtrib(node)
		if !ok {
			break
		}
		if x.ParentSrc == t && x.PRT == r.PT {
			if x.PT >= L {
				b.setLink(newNode, x.Dest, L+1)
				return nil
			}
			lastDest, lastPT = x.Dest, x.PT
		}
		node = x.Dest
	}
	b.setExtrib(node, Extrib{Dest: newNode, PT: L, PRT: r.PT, ParentSrc: t})
	b.setLink(newNode, lastDest, lastPT+1)
	return nil
}

func (b *CompactBuilder) setLink(node, dest, lel int32) {
	c := b.c
	c.lel[node] = c.squeezeLEL(node, lel)
	if c.ref[node]&refTag == 0 {
		c.ref[node] = uint32(dest)
		return
	}
	// The node already has an edge row; the LD lives there.
	shape := (c.ref[node] >> refShapeShift) & 7
	row := c.ref[node] & refRowMask
	if shape == 0 {
		c.spill.ld[row] = uint32(dest)
	} else {
		c.tables[shape].ld[row] = uint32(dest)
	}
}

// rowOf decodes a node's current edge location.
func (b *CompactBuilder) rowOf(node int32) (shape int32, row uint32, tagged bool) {
	ref := b.c.ref[node]
	if ref&refTag == 0 {
		return 0, 0, false
	}
	return int32((ref >> refShapeShift) & 7), ref & refRowMask, true
}

// extractRow removes node's current edge row, returning its contents.
// The node's ref reverts to a plain LD.
func (b *CompactBuilder) extractRow(node int32) (ld uint32, ribs []Rib, ext Extrib, hasExt bool) {
	c := b.c
	shape, row, tagged := b.rowOf(node)
	if !tagged {
		return c.ref[node], nil, Extrib{}, false
	}
	if shape == 0 {
		// Spill rows are abandoned in place; Finish compacts.
		sp := &c.spill
		ld = sp.ld[row]
		lo, hi := sp.start[row], sp.start[row+1]
		for i := lo; i < hi; i++ {
			ribs = append(ribs, Rib{CL: sp.ribCL[i], Dest: int32(sp.ribRD[i]), PT: b.widenRibPT(node, sp.ribCL[i], sp.ribPT[i])})
		}
		if sp.extRD[row] != 0 {
			hasExt = true
			ext = b.widenExt(node, sp.extRD[row], sp.extPT[row], sp.extPRT[row], sp.extSrc[row])
		}
		b.spillNode[row] = deadRow
		c.ref[node] = ld
		return ld, ribs, ext, hasExt
	}
	tb := &c.tables[shape]
	ld = tb.ld[row]
	base := int(row) * tb.ribs
	for j := 0; j < tb.ribs; j++ {
		ribs = append(ribs, Rib{CL: tb.ribCL[base+j], Dest: int32(tb.ribRD[base+j]), PT: b.widenRibPT(node, tb.ribCL[base+j], tb.ribPT[base+j])})
	}
	if tb.hasExt {
		hasExt = true
		ext = b.widenExt(node, tb.extRD[row], tb.extPT[row], tb.extPRT[row], tb.extSrc[row])
	}
	b.deleteShapeRow(shape, row)
	c.ref[node] = ld
	return ld, ribs, ext, hasExt
}

// deadRow marks an abandoned spill row.
const deadRow = ^uint32(0)

// deleteShapeRow removes a row from a fixed-shape table with
// swap-with-last, repairing the displaced node's locator.
func (b *CompactBuilder) deleteShapeRow(shape int32, row uint32) {
	c := b.c
	tb := &c.tables[shape]
	last := uint32(len(tb.ld) - 1)
	if row != last {
		tb.ld[row] = tb.ld[last]
		baseDst, baseSrc := int(row)*tb.ribs, int(last)*tb.ribs
		copy(tb.ribRD[baseDst:baseDst+tb.ribs], tb.ribRD[baseSrc:baseSrc+tb.ribs])
		copy(tb.ribPT[baseDst:baseDst+tb.ribs], tb.ribPT[baseSrc:baseSrc+tb.ribs])
		copy(tb.ribCL[baseDst:baseDst+tb.ribs], tb.ribCL[baseSrc:baseSrc+tb.ribs])
		if tb.hasExt {
			tb.extRD[row] = tb.extRD[last]
			tb.extPT[row] = tb.extPT[last]
			tb.extPRT[row] = tb.extPRT[last]
			tb.extSrc[row] = tb.extSrc[last]
		}
		moved := b.rowNode[shape][last]
		b.rowNode[shape][row] = moved
		c.ref[moved] = refTag | uint32(shape)<<refShapeShift | row
	}
	tb.ld = tb.ld[:last]
	tb.ribRD = tb.ribRD[:int(last)*tb.ribs]
	tb.ribPT = tb.ribPT[:int(last)*tb.ribs]
	tb.ribCL = tb.ribCL[:int(last)*tb.ribs]
	if tb.hasExt {
		tb.extRD = tb.extRD[:last]
		tb.extPT = tb.extPT[:last]
		tb.extPRT = tb.extPRT[:last]
		tb.extSrc = tb.extSrc[:last]
	}
	b.rowNode[shape] = b.rowNode[shape][:last]
}

// placeRow installs (ld, ribs, ext) as node's edge row in the table of the
// appropriate shape (or the spill table).
func (b *CompactBuilder) placeRow(node int32, ld uint32, ribs []Rib, ext Extrib, hasExt bool) {
	c := b.c
	if len(ribs) > maxInlineRibs {
		sp := &c.spill
		row := uint32(len(sp.ld))
		sp.ld = append(sp.ld, ld)
		for _, r := range ribs {
			sp.ribRD = append(sp.ribRD, uint32(r.Dest))
			sp.ribPT = append(sp.ribPT, c.squeezeRibPTCode(node, r.CL, r.PT))
			sp.ribCL = append(sp.ribCL, r.CL)
		}
		sp.start = append(sp.start, uint32(len(sp.ribRD)))
		if hasExt {
			sp.extRD = append(sp.extRD, uint32(ext.Dest))
			pt, prt := c.squeezeExt(node, ext)
			sp.extPT = append(sp.extPT, pt)
			sp.extPRT = append(sp.extPRT, prt)
			sp.extSrc = append(sp.extSrc, uint32(ext.ParentSrc))
		} else {
			sp.extRD = append(sp.extRD, 0)
			sp.extPT = append(sp.extPT, 0)
			sp.extPRT = append(sp.extPRT, 0)
			sp.extSrc = append(sp.extSrc, 0)
		}
		b.spillNode = append(b.spillNode, uint32(node))
		c.ref[node] = refTag | row
		return
	}
	shape := int32(len(ribs)<<1 | boolBit(hasExt))
	tb := &c.tables[shape]
	row := uint32(len(tb.ld))
	tb.ld = append(tb.ld, ld)
	for _, r := range ribs {
		tb.ribRD = append(tb.ribRD, uint32(r.Dest))
		tb.ribPT = append(tb.ribPT, c.squeezeRibPTCode(node, r.CL, r.PT))
		tb.ribCL = append(tb.ribCL, r.CL)
	}
	if hasExt {
		tb.extRD = append(tb.extRD, uint32(ext.Dest))
		pt, prt := c.squeezeExt(node, ext)
		tb.extPT = append(tb.extPT, pt)
		tb.extPRT = append(tb.extPRT, prt)
		tb.extSrc = append(tb.extSrc, uint32(ext.ParentSrc))
	}
	b.rowNode[shape] = append(b.rowNode[shape], uint32(node))
	c.ref[node] = refTag | uint32(shape)<<refShapeShift | row
}

// widenRibPT resolves a possibly-overflowed stored rib PT.
func (b *CompactBuilder) widenRibPT(node int32, cl byte, pt16 uint16) int32 {
	if pt16 != labelSentinel {
		return int32(pt16)
	}
	if v, ok := b.c.ptOverflow[uint64(node)<<8|uint64(cl)]; ok {
		return v
	}
	return int32(pt16)
}

func (b *CompactBuilder) widenExt(node int32, rd uint32, pt16, prt16 uint16, src uint32) Extrib {
	pt, prt := int32(pt16), int32(prt16)
	if pt16 == labelSentinel || prt16 == labelSentinel {
		if v, ok := b.c.extOverflow[node]; ok {
			pt, prt = v[0], v[1]
		}
	}
	return Extrib{Dest: int32(rd), PT: pt, PRT: prt, ParentSrc: int32(src)}
}

// addRib moves node's row up one rib shape with the new rib appended
// (note: squeezeRibPT re-registers overflow entries idempotently).
func (b *CompactBuilder) addRib(node int32, r Rib) {
	ld, ribs, ext, hasExt := b.extractRow(node)
	ribs = append(ribs, r)
	b.placeRow(node, ld, ribs, ext, hasExt)
}

// setExtrib moves node's row to its extrib-bearing shape.
func (b *CompactBuilder) setExtrib(node int32, x Extrib) {
	ld, ribs, _, hasExt := b.extractRow(node)
	if hasExt {
		panic(fmt.Sprintf("core: node %d already has an extrib", node))
	}
	b.placeRow(node, ld, ribs, x, true)
}

// Finish compacts abandoned spill rows and returns the completed index.
// The builder must not be used afterwards.
func (b *CompactBuilder) Finish() *CompactIndex {
	c := b.c
	if len(c.spill.ld) > 0 {
		old := c.spill
		var fresh spillTable
		fresh.start = append(fresh.start, 0)
		newRow := uint32(0)
		for row := range old.ld {
			node := b.spillNode[row]
			if node == deadRow {
				continue
			}
			fresh.ld = append(fresh.ld, old.ld[row])
			lo, hi := old.start[row], old.start[row+1]
			fresh.ribRD = append(fresh.ribRD, old.ribRD[lo:hi]...)
			fresh.ribPT = append(fresh.ribPT, old.ribPT[lo:hi]...)
			fresh.ribCL = append(fresh.ribCL, old.ribCL[lo:hi]...)
			fresh.start = append(fresh.start, uint32(len(fresh.ribRD)))
			fresh.extRD = append(fresh.extRD, old.extRD[row])
			fresh.extPT = append(fresh.extPT, old.extPT[row])
			fresh.extPRT = append(fresh.extPRT, old.extPRT[row])
			fresh.extSrc = append(fresh.extSrc, old.extSrc[row])
			c.ref[node] = refTag | newRow
			newRow++
		}
		c.spill = fresh
	}
	c.blocks = buildBlocksOn(c)
	c.blockLEL = packBlockLELs(c.blocks)
	b.c = nil
	return c
}
