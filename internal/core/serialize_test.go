package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/spine-index/spine/internal/seq"
)

func roundTrip(t *testing.T, c *CompactIndex) *CompactIndex {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := ReadCompact(&buf)
	if err != nil {
		t.Fatalf("ReadCompact: %v", err)
	}
	return back
}

func TestSerializeRoundTripPaperExample(t *testing.T) {
	alpha := seq.NewAlphabet([]byte("ac"))
	c := mustFreeze(t, []byte("aaccacaaca"), alpha)
	back := roundTrip(t, c)
	if back.Len() != 10 {
		t.Fatalf("Len = %d", back.Len())
	}
	if got := back.FindAll([]byte("ac")); !equalInts(got, []int{1, 4, 7}) {
		t.Fatalf("FindAll(ac) = %v", got)
	}
	if back.Contains([]byte("accaa")) {
		t.Fatal("round trip admitted the accaa false positive")
	}
}

func TestSerializeRoundTripRandomQueriesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	text := randomRepetitive(rng, []byte("acgt"), 500)
	c := mustFreeze(t, text, seq.DNA)
	back := roundTrip(t, c)
	for q := 0; q < 300; q++ {
		m := 1 + rng.Intn(10)
		p := make([]byte, m)
		for i := range p {
			p[i] = "acgt"[rng.Intn(4)]
		}
		if got, want := back.FindAll(p), c.FindAll(p); !equalInts(got, want) {
			t.Fatalf("FindAll(%q) = %v, want %v", p, got, want)
		}
	}
}

func TestSerializeRoundTripOverflowLabels(t *testing.T) {
	c := mustFreeze(t, []byte(strings.Repeat("a", 70000)), seq.DNA)
	if len(c.lelOverflow) == 0 {
		t.Fatal("test needs overflow entries")
	}
	back := roundTrip(t, c)
	if len(back.lelOverflow) != len(c.lelOverflow) {
		t.Fatalf("overflow entries lost: %d vs %d", len(back.lelOverflow), len(c.lelOverflow))
	}
	if got := back.Find(bytes.Repeat([]byte("a"), 66000)); got != 0 {
		t.Fatalf("Find(a^66000) = %d", got)
	}
}

func TestSerializeRoundTripProteinSpill(t *testing.T) {
	c := mustFreeze(t, []byte("ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY"), seq.Protein)
	if len(c.spill.ld) == 0 {
		t.Fatal("test needs spill rows")
	}
	back := roundTrip(t, c)
	if got, want := back.FindAll([]byte("DEF")), c.FindAll([]byte("DEF")); !equalInts(got, want) {
		t.Fatalf("FindAll(DEF) = %v, want %v", got, want)
	}
}

func TestSerializeRoundTripEmpty(t *testing.T) {
	c := mustFreeze(t, nil, seq.DNA)
	back := roundTrip(t, c)
	if back.Len() != 0 || back.Contains([]byte("a")) {
		t.Fatal("empty index round trip broken")
	}
}

func TestReadCompactRejectsBadMagic(t *testing.T) {
	if _, err := ReadCompact(strings.NewReader("NOPExxxxxxxxxxxxxxxx")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadCompactRejectsTruncation(t *testing.T) {
	c := mustFreeze(t, []byte("aaccacaaca"), seq.DNA)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 5, len(full) / 2, len(full) - 1} {
		if _, err := ReadCompact(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadCompactRejectsBitFlips(t *testing.T) {
	c := mustFreeze(t, []byte("aaccacaacaggtacca"), seq.DNA)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	rng := rand.New(rand.NewSource(142))
	rejected := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		corrupt := append([]byte(nil), full...)
		pos := rng.Intn(len(corrupt))
		corrupt[pos] ^= 1 << uint(rng.Intn(8))
		if _, err := ReadCompact(bytes.NewReader(corrupt)); err != nil {
			rejected++
		}
	}
	// Every single-bit flip lands either in summed content (checksum
	// catches it) or in the checksum trailer itself (mismatch); all must
	// be rejected.
	if rejected != trials {
		t.Fatalf("only %d/%d corruptions rejected", rejected, trials)
	}
}

func TestReadCompactRejectsWrongVersion(t *testing.T) {
	c := mustFreeze(t, []byte("ac"), seq.DNA)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	full[4] = 99 // version low byte
	if _, err := ReadCompact(bytes.NewReader(full)); err == nil {
		t.Fatal("wrong version accepted")
	}
}
