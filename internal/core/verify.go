package core

import "fmt"

// Verify checks every structural invariant of the index against its own
// text and returns the first violation found. It is O(n + edges) plus one
// brute-force check per link (O(n * maxLEL) worst case), intended for
// tools (`spinebuild -verify`), tests and post-load validation — not for
// hot paths.
//
// Invariants checked:
//
//  1. Links point strictly upstream, LELs fit their node (lel(i) <= link(i))
//     and the LEL-long strings above node and link destination coincide.
//  2. LELs strictly decrease along every link chain.
//  3. At most one rib per (node, character); no rib duplicates the
//     vertebra character; rib thresholds exceed the source node's LEL.
//  4. Rib and extrib destinations are on the backbone and downstream of
//     their sources.
//  5. Extrib chains are acyclic (strictly increasing node ids) and within
//     one parent family PTs strictly increase along the chain.
//  6. The rib/extrib string property: for the maximal valid path length,
//     the spelled extension matches the text at the destination.
func (idx *Index) Verify() error {
	n := int32(idx.Len())
	for i := int32(1); i <= n; i++ {
		dest, lel := idx.link[i], idx.lel[i]
		if dest >= i {
			return fmt.Errorf("node %d: link %d not upstream", i, dest)
		}
		if lel > dest {
			return fmt.Errorf("node %d: LEL %d exceeds link destination %d", i, lel, dest)
		}
		if string(idx.text[i-lel:i]) != string(idx.text[dest-lel:dest]) {
			return fmt.Errorf("node %d: LEL-string mismatch with link %d", i, dest)
		}
		if dest > 0 && idx.lel[dest] >= lel {
			return fmt.Errorf("node %d: chain LEL not decreasing (%d -> %d)", i, lel, idx.lel[dest])
		}
		// Cross-consistency with search: the LEL-long suffix's valid path
		// must end at the link destination (its first occurrence), and the
		// one-longer suffix must first occur at i itself (LEL maximality).
		if end, ok := idx.EndNode(idx.text[i-lel : i]); !ok || end != dest {
			return fmt.Errorf("node %d: LEL suffix path ends at %d (ok=%v), want link %d", i, end, ok, dest)
		}
		if lel+1 <= i {
			if end, ok := idx.EndNode(idx.text[i-lel-1 : i]); !ok || end != i {
				return fmt.Errorf("node %d: LEL %d not maximal (longer suffix first ends at %d, ok=%v)", i, lel, end, ok)
			}
		}
	}
	for src := int32(0); src <= n; src++ {
		ribs := idx.Ribs(int(src))
		ext, hasExt := idx.ExtribAt(int(src))
		var srcLEL int32
		if src > 0 {
			srcLEL = idx.lel[src]
		}
		seen := map[byte]bool{}
		for _, r := range ribs {
			if int(src) < len(idx.text) && idx.text[src] == r.CL {
				return fmt.Errorf("node %d: rib duplicates vertebra character %q", src, r.CL)
			}
			if seen[r.CL] {
				return fmt.Errorf("node %d: duplicate rib for %q", src, r.CL)
			}
			seen[r.CL] = true
			if r.Dest <= src || r.Dest > n {
				return fmt.Errorf("node %d: rib destination %d out of range", src, r.Dest)
			}
			if r.PT <= srcLEL && src > 0 {
				return fmt.Errorf("node %d: rib PT %d does not exceed node LEL %d", src, r.PT, srcLEL)
			}
			// String property at the maximal traversable length.
			l := r.PT
			if l > src {
				return fmt.Errorf("node %d: rib PT %d exceeds backbone depth", src, r.PT)
			}
			if string(idx.text[src-l:src])+string([]byte{r.CL}) != string(idx.text[r.Dest-l-1:r.Dest]) {
				return fmt.Errorf("node %d: rib to %d spells wrong extension at PT %d", src, r.Dest, r.PT)
			}
			if err := idx.verifyChain(src, r, n); err != nil {
				return err
			}
		}
		if hasExt {
			if ext.Dest <= src || ext.Dest > n {
				return fmt.Errorf("node %d: extrib destination %d out of range", src, ext.Dest)
			}
		}
	}
	return nil
}

// verifyChain walks the extrib chain of one parent rib and checks family
// ordering, acyclicity and the string property of each family member.
func (idx *Index) verifyChain(src int32, r Rib, n int32) error {
	lastPT := r.PT
	node := r.Dest
	for {
		x, ok := idx.findExtrib(node)
		if !ok {
			return nil
		}
		if x.Dest <= node {
			return fmt.Errorf("extrib chain at node %d not strictly increasing (%d -> %d)", src, node, x.Dest)
		}
		if x.ParentSrc == src && x.PRT == r.PT {
			if x.PT <= lastPT {
				return fmt.Errorf("family (%d, PT %d): extrib PT %d not increasing past %d", src, r.PT, x.PT, lastPT)
			}
			lastPT = x.PT
			l := x.PT
			if l > src {
				return fmt.Errorf("family (%d, PT %d): extrib PT %d exceeds backbone depth", src, r.PT, x.PT)
			}
			if string(idx.text[src-l:src])+string([]byte{r.CL}) != string(idx.text[x.Dest-l-1:x.Dest]) {
				return fmt.Errorf("family (%d, PT %d): extrib to %d spells wrong extension", src, r.PT, x.Dest)
			}
		}
		node = x.Dest
	}
}
