package core

import (
	"context"
	"testing"

	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/suffixtree"
)

// FuzzScanEquivalence differentially tests the block-skip occurrence
// scan: on the same inputs it must agree with the scalar oracle scan
// (SetBlockSkip(false)) and with an independent suffix tree, on both
// layouts, including limit/truncation behavior, bounded counting, and
// appends after the initial build (the online block fold). Seeds pin
// text and pattern lengths straddling the 64-node block boundary.
// `go test` runs the corpus; `go test -fuzz=FuzzScanEquivalence` mines.
func FuzzScanEquivalence(f *testing.F) {
	f.Add([]byte("abababab"), []byte("ab"), uint8(0), uint8(3))
	f.Add([]byte("aaccacaaca"), []byte("ca"), uint8(5), uint8(0))
	f.Add(repeatStr("acgt", 16), []byte("acgtacgt"), uint8(1), uint8(2)) // 64 chars: one exact block
	f.Add(repeatStr("acca", 33), []byte("cca"), uint8(63), uint8(1))     // 132 chars: boundary straddle
	f.Add(repeatStr("a", 65), []byte("aaa"), uint8(64), uint8(4))        // runs cross the block edge
	f.Add(repeatStr("gattaca", 40), repeatStr("gattaca", 10), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, rawText, rawPat []byte, extraRaw, limRaw uint8) {
		if len(rawText) > 4096 || len(rawPat) > 160 {
			return
		}
		text := dnaFrom(rawText)
		pat := dnaFrom(rawPat)
		idx := Build(text)
		// Extend after the build: the appended nodes must fold into the
		// skip index exactly as if built in one shot.
		for i := 0; i < int(extraRaw)%70; i++ {
			c := "acgt"[(int(extraRaw)+i*7)%4]
			idx.Append(c)
			text = append(text, c)
		}
		if want := buildBlocksOn(idx); !equalBlocks(idx.blocks, want) {
			t.Fatal("online blocks diverge from rebuild after appends")
		}

		st, err := suffixtree.Build(text, 0xFF)
		if err != nil {
			t.Fatalf("suffixtree.Build: %v", err)
		}
		oracle := st.FindAll(pat)

		prev := SetBlockSkip(false)
		defer SetBlockSkip(prev)
		scalar := idx.FindAll(pat)
		scalarCount := idx.Count(pat)
		SetBlockSkip(true)
		accel := idx.FindAll(pat)
		accelCount := idx.Count(pat)

		if !equalInts(accel, scalar) {
			t.Fatalf("FindAll(%q in %q): block-skip %v != scalar %v", pat, text, accel, scalar)
		}
		if !equalInts(accel, oracle) {
			t.Fatalf("FindAll(%q in %q): block-skip %v != suffix tree %v", pat, text, accel, oracle)
		}
		if accelCount != scalarCount || accelCount != len(oracle) {
			t.Fatalf("Count(%q): block-skip %d, scalar %d, suffix tree %d", pat, accelCount, scalarCount, len(oracle))
		}

		// Streaming must yield the same sequence and honor early stop.
		var streamed []int
		idx.ForEachOccurrence(pat, func(start int) bool {
			streamed = append(streamed, start)
			return true
		})
		if !equalInts(streamed, oracle) {
			t.Fatalf("ForEachOccurrence(%q) = %v, want %v", pat, streamed, oracle)
		}

		// Limit/truncation parity between the two scan paths.
		ctx := context.Background()
		limit := int(limRaw) % 5
		SetBlockSkip(false)
		rs, err := idx.FindAllCtx(ctx, pat, limit)
		if err != nil {
			t.Fatal(err)
		}
		SetBlockSkip(true)
		ra, err := idx.FindAllCtx(ctx, pat, limit)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(ra.Positions, rs.Positions) || ra.Truncated != rs.Truncated {
			t.Fatalf("FindAllCtx(%q, limit=%d): block-skip (%v, %v) != scalar (%v, %v)",
				pat, limit, ra.Positions, ra.Truncated, rs.Positions, rs.Truncated)
		}

		// Bounded counting agrees with filtering the oracle's positions.
		maxStart := int(limRaw)
		wantBounded := 0
		for _, pos := range oracle {
			if pos < maxStart {
				wantBounded++
			}
		}
		if got, err := idx.CountPrefixCtx(ctx, pat, maxStart); err != nil || got != wantBounded {
			t.Fatalf("CountPrefixCtx(%q, %d) = %d, %v; want %d", pat, maxStart, got, err, wantBounded)
		}

		// Compact layout: same equivalences through the frozen tables.
		comp, err := Freeze(idx, seq.DNA)
		if err != nil {
			t.Fatalf("Freeze: %v", err)
		}
		if got := comp.FindAll(pat); !equalInts(got, oracle) {
			t.Fatalf("compact FindAll(%q) = %v, want %v", pat, got, oracle)
		}
		if got := comp.Count(pat); got != len(oracle) {
			t.Fatalf("compact Count(%q) = %d, want %d", pat, got, len(oracle))
		}
		SetBlockSkip(false)
		if got := comp.FindAll(pat); !equalInts(got, oracle) {
			t.Fatalf("compact scalar FindAll(%q) = %v, want %v", pat, got, oracle)
		}
		SetBlockSkip(true)
	})
}

func repeatStr(s string, n int) []byte {
	out := make([]byte, 0, len(s)*n)
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return out
}
