package core

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// Intra-query parallel occurrence scanning.
//
// Every scan acceleration so far — block-skip admission, SWAR word
// kernels, mmap readahead — cut single-core cost; a cold selective
// query still walked one goroutine across the whole backbone while the
// other cores idled. This file splits the §4 valid-path scan range
// (first, n] into P contiguous partitions on block-skip block
// boundaries and scans them concurrently.
//
// The sequential invariant being preserved: node j is an occurrence
// end iff lel(j) >= |P| and link(j) is already a member of the target
// set, which (unrolling the induction) means j's link chain passes
// only through candidate nodes (each with lel >= |P|, links strictly
// decreasing) and terminates exactly at `first`. A worker scanning
// partition [lo, hi] classifies every candidate it visits without
// seeing the other partitions:
//
//   - member:    the chain resolves inside the partition down to a
//                node whose link is `first` — an occurrence for sure.
//   - nonmember: the link lands before `first`, or on an in-partition
//                node already known not to be on a live chain.
//   - pending:   the chain leaves the partition at some root
//                r ∈ (first, lo) — an occurrence iff r turns out to be
//                a member. The worker records the *ultimate* root
//                (chains through in-partition pendings collapse to
//                their root), so resolution is one membership probe,
//                not a chain walk.
//
// Workers stream (node, root) entries in backbone order through
// bounded channels to a single stitch pass that consumes partitions
// left to right, resolving roots against the membership built so far —
// the sequential induction replayed over precomputed classifications.
// Increasing position order, first-k limit truncation (with later
// partitions cancelled once the limit is satisfied) and context
// cancellation all fall out of the stitch running in backbone order,
// and the bounded channels cap peak memory at a few chunk buffers per
// worker no matter how candidate-dense the pattern is.
//
// Block admission inside a worker reuses blockMeta.admit with
// maxActive (the newest member-or-pending node, seeded at lo-1)
// standing in for the sequential maxMember. maxActive is always >= the
// sequential maxMember at the same point of the backbone, so every
// block the sequential scan admits is admitted here too — workers scan
// a (usually empty) superset of the sequential blocks, never a subset.
// The canonical — parallelism- and kernel-invariant — visited/blocks
// counters are recovered after the stitch by replaying the sequential
// admission decisions over the skip metadata with the true member
// sequence (replayScanOn): O(#blocks), a rounding error next to the
// scan itself.

// maxScanWorkers bounds intra-query fan-out regardless of the knob or
// GOMAXPROCS.
const maxScanWorkers = 32

// scanParallelism holds the SetScanParallelism knob: 0 selects
// automatic (GOMAXPROCS-adaptive) parallelism, 1 pins the sequential
// oracle, k > 1 requests exactly k workers.
var scanParallelism atomic.Int32

// scanParMinSpan is the adaptive-admission threshold: scans covering
// fewer backbone nodes than this stay sequential — goroutine fan-out
// and stitch overhead only pay off on long scans.
var scanParMinSpan atomic.Int64

const defaultScanParMinSpan = 1 << 16

// SetScanParallelism selects the intra-query scan parallelism,
// returning the previous setting. 0 (the default) is adaptive: engage
// one worker per core, but only when GOMAXPROCS > 1 and the scan span
// clears the admission threshold. 1 pins the sequential scan — the
// differential oracle every parallel result is testable against.
// k > 1 requests exactly k workers (still subject to the span
// threshold and to there being at least k blocks to split; k workers
// engage even on a single CPU, which is what the equivalence tests
// exercise). Safe to flip concurrently with queries; each scan reads
// the knob once.
func SetScanParallelism(workers int) (previous int) {
	if workers < 0 {
		workers = 0
	}
	if workers > maxScanWorkers {
		workers = maxScanWorkers
	}
	return int(scanParallelism.Swap(int32(workers)))
}

// ScanParallelism reports the current SetScanParallelism setting
// (0 = adaptive).
func ScanParallelism() int { return int(scanParallelism.Load()) }

// SetScanParallelThreshold sets the minimum scan span (backbone nodes)
// for parallel admission, returning the previous value. nodes <= 0
// restores the default. Tests and benchmarks lower it to exercise the
// partitioned path on small corpora.
func SetScanParallelThreshold(nodes int) (previous int) {
	if nodes <= 0 {
		nodes = defaultScanParMinSpan
	}
	prev := scanParMinSpan.Swap(int64(nodes))
	if prev == 0 {
		prev = defaultScanParMinSpan
	}
	return int(prev)
}

// scanWorkersFor resolves the worker count for a scan over span
// backbone nodes: the knob (or GOMAXPROCS when adaptive), gated by the
// span threshold. Adaptive mode requires real cores; an explicit k > 1
// engages regardless.
func scanWorkersFor(span int32) int {
	minSpan := scanParMinSpan.Load()
	if minSpan == 0 {
		minSpan = defaultScanParMinSpan
	}
	if int64(span) < minSpan {
		return 1
	}
	p := int(scanParallelism.Load())
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
		if p > maxScanWorkers {
			p = maxScanWorkers
		}
	}
	if p < 1 {
		p = 1
	}
	return p
}

// scanPart is one contiguous backbone partition [lo, hi], both
// inclusive. Every boundary except the scan start and the backbone end
// lies on a block-skip block boundary, so workers never share a
// blockMeta decision.
type scanPart struct {
	lo, hi int32
}

// planScanParts splits the scan range (first, n] into at most workers
// block-aligned partitions. It returns nil when the range is empty or
// a single partition would result — callers fall through to the
// sequential scan.
func planScanParts(first, n int32, workers int) []scanPart {
	if workers <= 1 || n-first < 2 {
		return nil
	}
	bFirst := blockFor(first + 1)
	bLast := blockFor(n)
	nb := bLast - bFirst + 1
	if workers > nb {
		workers = nb
	}
	if workers <= 1 {
		return nil
	}
	parts := make([]scanPart, 0, workers)
	per, rem := nb/workers, nb%workers
	b := bFirst
	for k := 0; k < workers; k++ {
		cnt := per
		if k < rem {
			cnt++
		}
		lastB := b + cnt - 1
		lo := int32(b)<<blockShift + 1
		if k == 0 {
			lo = first + 1
		}
		hi := blockLastNode(lastB)
		if hi > n {
			hi = n
		}
		parts = append(parts, scanPart{lo: lo, hi: hi})
		b = lastB + 1
	}
	return parts
}

// rootLocal marks a chain entry whose membership was resolved inside
// its own partition. Real cross-partition roots are always > first
// >= 1, so 0 is free to act as the sentinel.
const rootLocal = int32(0)

// chainEntry is one candidate a worker admitted: either a locally
// resolved member (root == rootLocal) or a pending chain whose
// ultimate root lies in an earlier partition.
type chainEntry struct {
	j    int32
	root int32
}

// scanChunkLen is the streaming granularity between a worker and the
// stitch; chunkBuf is the per-worker channel depth. Together they cap
// how far a worker may run ahead of the stitch — and thus the peak
// entry memory — at chunkBuf+2 chunks per worker.
const (
	scanChunkLen = 4096
	chunkBuf     = 4
)

var chainChunkPool = sync.Pool{New: func() any {
	return make([]chainEntry, 0, scanChunkLen)
}}

// partScratch is the pooled per-worker classification state: one
// epoch-stamped word per partition node packing the validity epoch
// (high 32 bits) with the chain root (low 32 bits, rootLocal for
// members). Reuse across queries never clears it — bumping the epoch
// invalidates every stale entry in O(1).
type partScratch struct {
	base  int32
	state []uint64
	epoch uint32
}

var partScratchPool = sync.Pool{New: func() any { return new(partScratch) }}

func getPartScratch(part scanPart) *partScratch {
	ps := partScratchPool.Get().(*partScratch)
	span := int(part.hi-part.lo) + 1
	if cap(ps.state) < span {
		ps.state = make([]uint64, span)
		ps.epoch = 0
	}
	ps.state = ps.state[:cap(ps.state)]
	ps.epoch++
	if ps.epoch == 0 {
		clear(ps.state)
		ps.epoch = 1
	}
	ps.base = part.lo
	return ps
}

func putPartScratch(ps *partScratch) {
	if ps != nil {
		partScratchPool.Put(ps)
	}
}

// set records node x as active with the given chain root (rootLocal
// for a resolved member).
func (ps *partScratch) set(x, root int32) {
	ps.state[x-ps.base] = uint64(ps.epoch)<<32 | uint64(uint32(root))
}

// rootOf returns x's chain root and whether x is active this query.
func (ps *partScratch) rootOf(x int32) (int32, bool) {
	v := ps.state[x-ps.base]
	if uint32(v>>32) != ps.epoch {
		return 0, false
	}
	return int32(uint32(v)), true
}

// parPartState is the per-worker outcome read by the stitch after the
// worker's channel closes (entries travel through the channel; stats
// and errors ride here).
type parPartState struct {
	st  scanStats
	err error
}

// parPartScanOn scans one partition with the block-skip/SWAR kernels,
// classifying candidates and streaming chainEntry chunks to out in
// backbone order. stop is the stitch's cancellation broadcast: once
// the limit is satisfied by stitched prefixes (or the query dies),
// later partitions abandon their remainder — their queued entries are
// never read. Partial stats still count; they are machine work
// actually done.
func parPartScanOn[S store](ctx context.Context, s S, ps *partScratch, part scanPart, first, patlen int32, out chan<- []chainEntry, stop *atomic.Bool, stopCh <-chan struct{}) (st scanStats, err error) {
	n := s.textLen()
	blocks := s.skipBlocks()
	swar, pack, t16, _ := scanKernelState(s, n, patlen)
	bHi := blockFor(part.hi)
	// Seeding maxActive at lo-1 makes the admission test conservative:
	// any node before the partition may turn out to be a member, so a
	// block is only rejected when even that assumption cannot admit it.
	// Every block the sequential scan admits is admitted here too.
	maxActive := part.lo - 1
	chunk := chainChunkPool.Get().([]chainEntry)[:0]
	flush := func() bool {
		if len(chunk) == 0 {
			return true
		}
		select {
		case out <- chunk:
			chunk = chainChunkPool.Get().([]chainEntry)[:0]
			return true
		case <-stopCh:
			return false
		}
	}
	nextCheck := int64(cancelStride)
	ra := s.readahead()
	if ra != nil {
		// Per-worker readahead frontier: each partition streams its own
		// window of the on-disk LEL/link rows; the pager's range cache
		// deduplicates overlap between neighbors.
		iss, hits := ra.Advance(part.lo)
		st.raIssued += iss
		st.raHits += hits
	}
	j := part.lo
	for j <= part.hi {
		b := blockFor(j)
		if swar {
			nb, w := nextBlockLEL(pack, b, bHi, t16)
			st.words += w
			if nb > b {
				st.blocksSkipped += int64(nb - b)
				if nb > bHi {
					break
				}
				b = nb
				j = int32(b)<<blockShift + 1
			}
		}
		last := blockLastNode(b)
		if last > part.hi {
			last = part.hi
		}
		if !blocks[b].admit(patlen, first, maxActive) {
			st.blocksSkipped++
			j = last + 1
			continue
		}
		st.blocksScanned++
		st.visited += int64(last - j + 1)
		for j <= last {
			if swar {
				nj, w := s.nextLEL(j, last, patlen)
				st.words += w
				j = nj
				if j > last {
					break
				}
			}
			link, lel := s.linkOf(j)
			if lel >= patlen {
				root, active := int32(-1), false
				switch {
				case link == first:
					// Chain roots directly in the seed member.
					root, active = rootLocal, true
				case link >= part.lo:
					// In-partition link: the target was visited earlier in
					// this very partition (or provably rejected), so its
					// classification is already known.
					root, active = ps.rootOf(link)
				case link > first:
					// Chain leaves the partition: j is an occurrence iff
					// the root is stitched into the member set.
					root, active = link, true
				}
				// Remaining case, link < first: provably a nonmember —
				// members are always >= first.
				if active {
					ps.set(j, root)
					maxActive = j
					chunk = append(chunk, chainEntry{j: j, root: root})
					if len(chunk) == scanChunkLen && !flush() {
						return st, nil
					}
				}
			}
			j++
		}
		if st.visited+blockSize*st.blocksSkipped >= nextCheck {
			nextCheck += cancelStride
			if ra != nil {
				iss, hits := ra.Advance(j)
				st.raIssued += iss
				st.raHits += hits
			}
			if stop.Load() {
				return st, nil
			}
			if err := ctx.Err(); err != nil {
				return st, err
			}
		}
	}
	if !flush() {
		return st, nil
	}
	return st, nil
}

// parOccScanOn is the partitioned form of occScanOn: identical
// contract (occurrence ends beyond first appended to sc.ends in
// increasing order, maxExtra capping, truncated/err reporting), scanned
// by len(parts) workers and resolved by the ordered stitch. On every
// completed scan — truncated ones included — the visited/blocks stats
// are the sequential scan's own numbers, recovered by replay; only a
// context cancellation falls back to summing the partial per-worker
// work.
func parOccScanOn[S store](ctx context.Context, s S, sc *scanScratch, first, patlen int32, maxExtra int, parts []scanPart, kind string) (st scanStats, truncated bool, err error) {
	n := s.textLen()
	states := make([]parPartState, len(parts))
	chans := make([]chan []chainEntry, len(parts))
	for k := range parts {
		chans[k] = make(chan []chainEntry, chunkBuf)
	}
	var stop atomic.Bool
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { stop.Store(true); close(stopCh) }) }
	var wg sync.WaitGroup
	for k := range parts {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ps := getPartScratch(parts[k])
			pprof.Do(ctx, pprof.Labels("spine_scan", kind, "spine_scan_part", strconv.Itoa(k)), func(ctx context.Context) {
				stw, errw := parPartScanOn(ctx, s, ps, parts[k], first, patlen, chans[k], &stop, stopCh)
				states[k] = parPartState{st: stw, err: errw}
			})
			putPartScratch(ps)
			close(chans[k])
		}(k)
	}

	// Ordered stitch: partitions are consumed left to right, so when a
	// pending chain's root is probed, every node before it has already
	// been classified — the sequential induction replayed over
	// precomputed entries. Members land in the same scratch table the
	// sequential scan would use.
	sc.add(first)
	var truncAt int32
	var chains int64
stitch:
	for k := range parts {
		for chunk := range chans[k] {
			for _, e := range chunk {
				if e.root != rootLocal {
					chains++
					if !sc.member(e.root) {
						continue
					}
				}
				sc.add(e.j)
				sc.ends = append(sc.ends, e.j)
				if maxExtra >= 0 && len(sc.ends) >= maxExtra {
					truncated = e.j < n
					truncAt = e.j
					chainChunkPool.Put(chunk[:0])
					break stitch
				}
			}
			chainChunkPool.Put(chunk[:0])
		}
		if states[k].err != nil {
			err = states[k].err
			break
		}
	}
	halt()
	wg.Wait()

	st.workersUsed = int64(len(parts))
	st.chainsStitched = chains
	for k := range states {
		st.words += states[k].st.words
		st.raIssued += states[k].st.raIssued
		st.raHits += states[k].st.raHits
	}
	if err != nil {
		// Cancelled mid-scan: like the sequential path, report the work
		// actually done (here: summed across workers).
		for k := range states {
			st.visited += states[k].st.visited
			st.blocksSkipped += states[k].st.blocksSkipped
			st.blocksScanned += states[k].st.blocksScanned
		}
		return st, false, err
	}
	stopAt := n
	if truncated {
		stopAt = truncAt
	}
	st.visited, st.blocksSkipped, st.blocksScanned = replayScanOn(s, first, patlen, sc.ends, stopAt)
	return st, truncated, nil
}

// replayScanOn re-derives the sequential scan's work counters from the
// skip metadata and the true member sequence: a block's admission
// depends only on (patlen, first, largest member before the block),
// all of which the stitch has settled. The result is independent of
// both the kernel and the worker layout — the canonical NodesChecked
// contribution, equal to what SetScanParallelism(1) would have
// reported.
func replayScanOn[S store](s S, first, patlen int32, members []int32, stopAt int32) (visited, skipped, scanned int64) {
	blocks := s.skipBlocks()
	n := s.textLen()
	maxMember := first
	mi := 0
	j := first + 1
	for j <= stopAt {
		for mi < len(members) && members[mi] < j {
			maxMember = members[mi]
			mi++
		}
		b := blockFor(j)
		last := blockLastNode(b)
		if last > n {
			last = n
		}
		if !blocks[b].admit(patlen, first, maxMember) {
			skipped++
			j = last + 1
			continue
		}
		scanned++
		if stopAt < last {
			// The sequential scan stops at the limit-hitting member and
			// uncounts the rest of the block.
			visited += int64(stopAt - j + 1)
		} else {
			visited += int64(last - j + 1)
		}
		j = last + 1
	}
	return visited, skipped, scanned
}
