package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"unsafe"

	"github.com/spine-index/spine/internal/seq"
)

// Version-3 compact files trade the v2 byte stream for a section
// directory so the big tables can be used straight out of a memory
// mapping, without deserialization:
//
//	fixed header (24 B):
//	  magic "SPNE" | version u16 = 3 | flags u16 = 0 |
//	  fileSize u64 | n u32 | bits u8 | alphaLen u8 | reserved u16
//	alphabet letters (alphaLen B)
//	section count u32 = 72
//	72 x directory entry: off u64 | len u64 | crc32 u32
//	header crc32 (IEEE, over every header byte before it)
//	zero padding to 8
//	72 x section payload, each starting 8-byte aligned, zero padded
//
// Sections appear in one canonical order (chars, lel, ref, the seven
// shape tables, the spill table, the three overflow maps, the skip
// blocks) and hold raw little-endian element arrays, so on a
// little-endian host an 8-byte-aligned image can alias every array
// in place. fileSize pins the exact image length: truncation and
// trailing garbage are both structural errors, and the directory walk
// rejects unordered, overlapping, misaligned, or out-of-range
// sections before a single payload byte is touched. The section CRCs
// and the padding-is-zero rule together cover every byte of the file,
// so full verification (ReadCompact) still rejects any single-bit
// flip; mapped opens may skip payload CRCs to stay lazy.
const (
	v3HeaderFixed  = 24
	v3DirEntrySize = 20
	v3SectionCount = 72

	// maxV3FileSize bounds the up-front allocation a lying header can
	// force on the io.ReaderAt open path.
	maxV3FileSize = int64(1) << 38
)

// v3SecDesc names one canonical section and its element width.
type v3SecDesc struct {
	name string
	elem int
}

// v3Layout is the canonical section order; writer and reader both walk
// it, so the directory needs no per-section type tags.
var v3Layout = buildV3Layout()

func buildV3Layout() []v3SecDesc {
	descs := make([]v3SecDesc, 0, v3SectionCount)
	add := func(name string, elem int) {
		descs = append(descs, v3SecDesc{name: name, elem: elem})
	}
	add("chars", 8)
	add("lel", 2)
	add("ref", 4)
	table := func(prefix string, withStart bool) {
		add(prefix+"ld", 4)
		if withStart {
			add(prefix+"start", 4)
		}
		add(prefix+"ribRD", 4)
		add(prefix+"ribPT", 2)
		add(prefix+"ribCL", 1)
		add(prefix+"extRD", 4)
		add(prefix+"extPT", 2)
		add(prefix+"extPRT", 2)
		add(prefix+"extSrc", 4)
	}
	for shape := 1; shape < numShapes; shape++ {
		table(fmt.Sprintf("shape%d.", shape), false)
	}
	table("spill.", true)
	add("lelOverflow", 8)
	add("ptOverflow", 12)
	add("extOverflow", 12)
	add("blocks", 12)
	if len(descs) != v3SectionCount {
		panic("core: v3 layout section count drifted")
	}
	return descs
}

// v3Enc encodes one section: count elements written by enc into a
// buffer of exactly count*elem bytes. Encoders must be deterministic —
// Save runs each twice (checksum pass, write pass).
type v3Enc struct {
	count int
	enc   func(dst []byte)
}

func encU16s(vs []uint16) v3Enc {
	return v3Enc{count: len(vs), enc: func(dst []byte) {
		for i, v := range vs {
			binary.LittleEndian.PutUint16(dst[i*2:], v)
		}
	}}
}

func encU32s(vs []uint32) v3Enc {
	return v3Enc{count: len(vs), enc: func(dst []byte) {
		for i, v := range vs {
			binary.LittleEndian.PutUint32(dst[i*4:], v)
		}
	}}
}

func encU64s(vs []uint64) v3Enc {
	return v3Enc{count: len(vs), enc: func(dst []byte) {
		for i, v := range vs {
			binary.LittleEndian.PutUint64(dst[i*8:], v)
		}
	}}
}

func encBytes(vs []byte) v3Enc {
	return v3Enc{count: len(vs), enc: func(dst []byte) { copy(dst, vs) }}
}

// v3Encoders returns one encoder per v3Layout entry, in order.
func (c *CompactIndex) v3Encoders() []v3Enc {
	encs := make([]v3Enc, 0, v3SectionCount)
	encs = append(encs, encU64s(c.chars.Words()), encU16s(c.lel), encU32s(c.ref))
	table := func(ld, ribRD []uint32, start []uint32, ribPT []uint16, ribCL []byte,
		extRD []uint32, extPT, extPRT []uint16, extSrc []uint32) {
		encs = append(encs, encU32s(ld))
		if start != nil {
			encs = append(encs, encU32s(start))
		}
		encs = append(encs, encU32s(ribRD), encU16s(ribPT), encBytes(ribCL),
			encU32s(extRD), encU16s(extPT), encU16s(extPRT), encU32s(extSrc))
	}
	for shape := 1; shape < numShapes; shape++ {
		tb := &c.tables[shape]
		table(tb.ld, tb.ribRD, nil, tb.ribPT, tb.ribCL, tb.extRD, tb.extPT, tb.extPRT, tb.extSrc)
	}
	sp := &c.spill
	table(sp.ld, sp.ribRD, sp.start, sp.ribPT, sp.ribCL, sp.extRD, sp.extPT, sp.extPRT, sp.extSrc)

	// Map sections are sorted by key so encoding is deterministic and
	// saved files are byte-reproducible.
	lelKeys := make([]int32, 0, len(c.lelOverflow))
	for k := range c.lelOverflow {
		lelKeys = append(lelKeys, k)
	}
	sort.Slice(lelKeys, func(i, j int) bool { return lelKeys[i] < lelKeys[j] })
	encs = append(encs, v3Enc{count: len(lelKeys), enc: func(dst []byte) {
		for i, k := range lelKeys {
			binary.LittleEndian.PutUint32(dst[i*8:], uint32(k))
			binary.LittleEndian.PutUint32(dst[i*8+4:], uint32(c.lelOverflow[k]))
		}
	}})
	ptKeys := make([]uint64, 0, len(c.ptOverflow))
	for k := range c.ptOverflow {
		ptKeys = append(ptKeys, k)
	}
	sort.Slice(ptKeys, func(i, j int) bool { return ptKeys[i] < ptKeys[j] })
	encs = append(encs, v3Enc{count: len(ptKeys), enc: func(dst []byte) {
		for i, k := range ptKeys {
			binary.LittleEndian.PutUint64(dst[i*12:], k)
			binary.LittleEndian.PutUint32(dst[i*12+8:], uint32(c.ptOverflow[k]))
		}
	}})
	extKeys := make([]int32, 0, len(c.extOverflow))
	for k := range c.extOverflow {
		extKeys = append(extKeys, k)
	}
	sort.Slice(extKeys, func(i, j int) bool { return extKeys[i] < extKeys[j] })
	encs = append(encs, v3Enc{count: len(extKeys), enc: func(dst []byte) {
		for i, k := range extKeys {
			v := c.extOverflow[k]
			binary.LittleEndian.PutUint32(dst[i*12:], uint32(k))
			binary.LittleEndian.PutUint32(dst[i*12+4:], uint32(v[0]))
			binary.LittleEndian.PutUint32(dst[i*12+8:], uint32(v[1]))
		}
	}})
	encs = append(encs, v3Enc{count: len(c.blocks), enc: func(dst []byte) {
		for i, bm := range c.blocks {
			binary.LittleEndian.PutUint32(dst[i*12:], uint32(bm.maxLEL))
			binary.LittleEndian.PutUint32(dst[i*12+4:], uint32(bm.minLink))
			binary.LittleEndian.PutUint32(dst[i*12+8:], uint32(bm.maxLink))
		}
	}})
	return encs
}

func align8(v int64) int64 { return (v + 7) &^ 7 }

// Save serializes the compact index in the version-3 section-directory
// layout; sizes are available via SizeBytes. The large tables are
// written as raw little-endian arrays, so the file can later be opened
// zero-copy (OpenCompactBytes / OpenCompactAt) as well as fully
// deserialized (ReadCompact).
func (c *CompactIndex) Save(w io.Writer) error {
	encs := c.v3Encoders()
	letters := make([]byte, c.alpha.Size())
	for i := range letters {
		letters[i] = c.alpha.Letter(i)
	}
	if len(letters) == 0 || len(letters) > 255 {
		return fmt.Errorf("core: serializing index: alphabet size %d out of range", len(letters))
	}

	headerLen := int64(v3HeaderFixed + len(letters) + 4 + v3SectionCount*v3DirEntrySize + 4)
	dataStart := align8(headerLen)
	offs := make([]int64, len(encs))
	lens := make([]int64, len(encs))
	var maxLen int64
	off := dataStart
	for i, e := range encs {
		offs[i] = off
		lens[i] = int64(e.count) * int64(v3Layout[i].elem)
		if lens[i] > maxLen {
			maxLen = lens[i]
		}
		off = align8(off + lens[i])
	}
	fileSize := off

	// Pass 1: encode each section once into a reusable scratch buffer to
	// compute its checksum, so the whole image never needs to be resident.
	scratch := make([]byte, maxLen)
	crcs := make([]uint32, len(encs))
	for i, e := range encs {
		b := scratch[:lens[i]]
		e.enc(b)
		crcs[i] = crc32.ChecksumIEEE(b)
	}

	hdr := make([]byte, dataStart) // trailing pad bytes stay zero
	copy(hdr[0:4], serializeMagic)
	binary.LittleEndian.PutUint16(hdr[4:], serializeVersion)
	binary.LittleEndian.PutUint16(hdr[6:], 0) // flags
	binary.LittleEndian.PutUint64(hdr[8:], uint64(fileSize))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(c.n))
	hdr[20] = uint8(c.chars.Bits())
	hdr[21] = uint8(len(letters))
	p := v3HeaderFixed
	p += copy(hdr[p:], letters)
	binary.LittleEndian.PutUint32(hdr[p:], v3SectionCount)
	p += 4
	for i := range encs {
		binary.LittleEndian.PutUint64(hdr[p:], uint64(offs[i]))
		binary.LittleEndian.PutUint64(hdr[p+8:], uint64(lens[i]))
		binary.LittleEndian.PutUint32(hdr[p+16:], crcs[i])
		p += v3DirEntrySize
	}
	binary.LittleEndian.PutUint32(hdr[p:], crc32.ChecksumIEEE(hdr[:p]))

	bw := bufio.NewWriter(w)
	var pad [8]byte
	werr := func(err error) error { return fmt.Errorf("core: serializing index: %w", err) }
	if _, err := bw.Write(hdr); err != nil {
		return werr(err)
	}
	for i, e := range encs {
		b := scratch[:lens[i]]
		e.enc(b) // pass 2: deterministic re-encode for the actual write
		if _, err := bw.Write(b); err != nil {
			return werr(err)
		}
		if gap := align8(offs[i]+lens[i]) - (offs[i] + lens[i]); gap > 0 {
			if _, err := bw.Write(pad[:gap]); err != nil {
				return werr(err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return werr(err)
	}
	return nil
}

// Extent is a byte range inside a serialized compact file.
type Extent struct {
	Off int64
	Len int64
}

// CompactLayout reports where the major table groups of a version-3
// compact file live. Disk-backed opens use it to steer access-pattern
// hints (the descent tables are random-access, the backbone rows are
// scanned sequentially) and to warm the hot top of the Link Table.
type CompactLayout struct {
	// FileSize is the total image length in bytes.
	FileSize int64
	// Chars spans the bit-packed character words.
	Chars Extent
	// LEL spans the squeezed 2-byte numeric-edge-label row.
	LEL Extent
	// Ref spans the packed link/rib-reference row.
	Ref Extent
	// Tables spans the per-shape rib/extrib tables and the spill CSR.
	Tables Extent
	// Overflow spans the three overflow maps.
	Overflow Extent
	// Blocks spans the block-max skip metadata.
	Blocks Extent
}

type v3Entry struct {
	off int64
	len int64
	crc uint32
}

// v3Image is a parsed, bounds-checked v3 file image; section payloads
// are consumed in canonical order via take.
type v3Image struct {
	data    []byte
	entries []v3Entry
	alias   bool // little-endian host and 8-aligned base: alias in place
	next    int
	err     error
}

func (im *v3Image) take(elem int) []byte {
	if im.err != nil {
		return nil
	}
	i := im.next
	im.next++
	desc := v3Layout[i]
	if desc.elem != elem {
		panic("core: v3 section order drifted between reader and layout")
	}
	e := im.entries[i]
	if e.len%int64(elem) != 0 {
		im.err = fmt.Errorf("section %s length %d not a multiple of element size %d", desc.name, e.len, elem)
		return nil
	}
	return im.data[e.off : e.off+e.len : e.off+e.len]
}

func (im *v3Image) u16s() []uint16 {
	b := im.take(2)
	if len(b) == 0 {
		return nil
	}
	if im.alias {
		return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), len(b)/2)
	}
	out := make([]uint16, len(b)/2)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[i*2:])
	}
	return out
}

func (im *v3Image) u32s() []uint32 {
	b := im.take(4)
	if len(b) == 0 {
		return nil
	}
	if im.alias {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func (im *v3Image) u64s() []uint64 {
	b := im.take(8)
	if len(b) == 0 {
		return nil
	}
	if im.alias {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func (im *v3Image) byteSec() []byte { return im.take(1) }

func (im *v3Image) blockMetas() []blockMeta {
	b := im.take(12)
	if len(b) == 0 {
		return nil
	}
	// blockMeta is three int32s; alias only if the compiler lays it out
	// with no padding (it does on every supported target — the check is
	// a guard, not a branch we expect to take).
	if im.alias && unsafe.Sizeof(blockMeta{}) == 12 {
		return unsafe.Slice((*blockMeta)(unsafe.Pointer(&b[0])), len(b)/12)
	}
	out := make([]blockMeta, len(b)/12)
	for i := range out {
		out[i] = blockMeta{
			maxLEL:  int32(binary.LittleEndian.Uint32(b[i*12:])),
			minLink: int32(binary.LittleEndian.Uint32(b[i*12+4:])),
			maxLink: int32(binary.LittleEndian.Uint32(b[i*12+8:])),
		}
	}
	return out
}

// hostLittleEndian reports whether native integer byte order matches the
// file's little-endian encoding, the precondition for aliasing.
func hostLittleEndian() bool {
	probe := uint16(0x00FF)
	return *(*byte)(unsafe.Pointer(&probe)) == 0xFF
}

// openCompactBytes opens a version-3 image in place. Structural checks
// (magic, version, file size, header checksum, directory sanity,
// alphabet, cross-table consistency) always run; verify additionally
// checks every section checksum, that all padding is zero — which
// together cover each byte of the image — and bounds-checks every
// node's link reference (the one O(n) pass; see validateRefs). Without
// verify the open cost is O(sections). On little-endian hosts with an
// 8-byte-aligned base the returned index aliases data directly — the
// caller keeps data alive and immutable for the index's lifetime.
func openCompactBytes(data []byte, verify bool) (*CompactIndex, *CompactLayout, error) {
	fail := func(format string, args ...any) (*CompactIndex, *CompactLayout, error) {
		return nil, nil, fmt.Errorf("core: opening compact image: "+format, args...)
	}
	if len(data) < v3HeaderFixed {
		return fail("short header: %d bytes", len(data))
	}
	if string(data[0:4]) != serializeMagic {
		return fail("bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != serializeVersion {
		return fail("unsupported version %d", v)
	}
	if flags := binary.LittleEndian.Uint16(data[6:8]); flags != 0 {
		return fail("unknown flags %#x", flags)
	}
	fileSize := binary.LittleEndian.Uint64(data[8:16])
	if fileSize != uint64(len(data)) {
		return fail("file size %d != image length %d (truncated or trailing garbage)", fileSize, len(data))
	}
	n := binary.LittleEndian.Uint32(data[16:20])
	if n > maxReasonable {
		return fail("implausible node count %d", n)
	}
	bits := data[20]
	alphaLen := int(data[21])
	headerLen := int64(v3HeaderFixed + alphaLen + 4 + v3SectionCount*v3DirEntrySize + 4)
	if headerLen > int64(len(data)) {
		return fail("header overruns %d-byte image", len(data))
	}
	crcOff := headerLen - 4
	if got, want := binary.LittleEndian.Uint32(data[crcOff:]), crc32.ChecksumIEEE(data[:crcOff]); got != want {
		return fail("header checksum mismatch: file %08x, computed %08x", got, want)
	}
	// Header integrity established; validate the alphabet.
	letters := data[v3HeaderFixed : v3HeaderFixed+alphaLen]
	if len(letters) == 0 {
		return fail("alphabet size 0 out of range")
	}
	seen := [256]bool{}
	for _, l := range letters {
		if seen[l] {
			return fail("alphabet letter %q duplicated", l)
		}
		seen[l] = true
		if other := otherCaseByte(l); other != l && seen[other] {
			return fail("alphabet letters %q/%q collide after case folding", l, other)
		}
	}
	if secCount := binary.LittleEndian.Uint32(data[v3HeaderFixed+alphaLen:]); secCount != v3SectionCount {
		return fail("section count %d (want %d)", secCount, v3SectionCount)
	}

	dataStart := align8(headerLen)
	entries := make([]v3Entry, v3SectionCount)
	dirOff := int64(v3HeaderFixed + alphaLen + 4)
	cursor := dataStart
	for i := range entries {
		off := binary.LittleEndian.Uint64(data[dirOff:])
		length := binary.LittleEndian.Uint64(data[dirOff+8:])
		crc := binary.LittleEndian.Uint32(data[dirOff+16:])
		dirOff += v3DirEntrySize
		if off%8 != 0 {
			return fail("section %s offset %d misaligned", v3Layout[i].name, off)
		}
		if off > fileSize || length > fileSize-off {
			return fail("section %s [%d,+%d) overruns %d-byte image", v3Layout[i].name, off, length, fileSize)
		}
		if int64(off) < cursor {
			return fail("section %s [%d,+%d) overlaps previous section or header", v3Layout[i].name, off, length)
		}
		if verify {
			// Inter-section gaps are outside every checksum; full
			// verification insists they are all-zero padding so no byte
			// of the image escapes scrutiny.
			for _, b := range data[cursor:off] {
				if b != 0 {
					return fail("nonzero padding before section %s", v3Layout[i].name)
				}
			}
			if got := crc32.ChecksumIEEE(data[off : int64(off)+int64(length)]); got != crc {
				return fail("section %s checksum mismatch: file %08x, computed %08x", v3Layout[i].name, crc, got)
			}
		}
		entries[i] = v3Entry{off: int64(off), len: int64(length), crc: crc}
		cursor = int64(off) + int64(length)
	}
	if verify {
		for _, b := range data[cursor:] {
			if b != 0 {
				return fail("nonzero padding after last section")
			}
		}
	}

	im := &v3Image{
		data:    data,
		entries: entries,
		alias:   hostLittleEndian() && uintptr(unsafe.Pointer(&data[0]))%8 == 0,
	}
	c := &CompactIndex{
		alpha:       seq.NewAlphabet(letters),
		n:           int32(n),
		lelOverflow: make(map[int32]int32),
		ptOverflow:  make(map[uint64]int32),
		extOverflow: make(map[int32][2]int32),
	}
	words := im.u64s()
	c.lel = im.u16s()
	c.ref = im.u32s()
	for shape := 1; shape < numShapes; shape++ {
		tb := &c.tables[shape]
		tb.ribs = shape >> 1
		tb.hasExt = shape&1 == 1
		tb.ld = im.u32s()
		tb.ribRD = im.u32s()
		tb.ribPT = im.u16s()
		tb.ribCL = im.byteSec()
		tb.extRD = im.u32s()
		tb.extPT = im.u16s()
		tb.extPRT = im.u16s()
		tb.extSrc = im.u32s()
	}
	sp := &c.spill
	sp.ld = im.u32s()
	sp.start = im.u32s()
	sp.ribRD = im.u32s()
	sp.ribPT = im.u16s()
	sp.ribCL = im.byteSec()
	sp.extRD = im.u32s()
	sp.extPT = im.u16s()
	sp.extPRT = im.u16s()
	sp.extSrc = im.u32s()
	// Overflow maps are tiny (§5 keeps overflow rare by construction);
	// they always decode onto the heap.
	lelOvf := im.take(8)
	ptOvf := im.take(12)
	extOvf := im.take(12)
	c.blocks = im.blockMetas()
	if im.err != nil {
		return fail("%v", im.err)
	}
	for i := 0; i < len(lelOvf); i += 8 {
		k := int32(binary.LittleEndian.Uint32(lelOvf[i:]))
		c.lelOverflow[k] = int32(binary.LittleEndian.Uint32(lelOvf[i+4:]))
	}
	for i := 0; i < len(ptOvf); i += 12 {
		k := binary.LittleEndian.Uint64(ptOvf[i:])
		c.ptOverflow[k] = int32(binary.LittleEndian.Uint32(ptOvf[i+8:]))
	}
	for i := 0; i < len(extOvf); i += 12 {
		k := int32(binary.LittleEndian.Uint32(extOvf[i:]))
		c.extOverflow[k] = [2]int32{
			int32(binary.LittleEndian.Uint32(extOvf[i+4:])),
			int32(binary.LittleEndian.Uint32(extOvf[i+8:])),
		}
	}
	packed, err := seq.FromWords(words, int(n), uint(bits))
	if err != nil {
		return fail("%v", err)
	}
	c.chars = packed
	// The packed SWAR admission lanes are derived state, never serialized.
	c.blockLEL = packBlockLELs(c.blocks)
	if err := c.validate(); err != nil {
		return fail("%v", err)
	}
	// Per-node link validation reads the entire ref section — the one
	// O(n) pass the lazy open must not pay. Verified opens (and the
	// deserializing loaders, which call validateRefs themselves) keep
	// it; a lazy open trusts the image the way any zero-copy mapping
	// must, and the Verify option exists for untrusted files.
	if verify {
		if err := c.validateRefs(); err != nil {
			return fail("%v", err)
		}
	}

	span := func(first, last int) Extent {
		return Extent{Off: entries[first].off, Len: entries[last].off + entries[last].len - entries[first].off}
	}
	layout := &CompactLayout{
		FileSize: int64(fileSize),
		Chars:    span(0, 0),
		LEL:      span(1, 1),
		Ref:      span(2, 2),
		Tables:   span(3, 3+7*8+9-1),
		Overflow: span(3+7*8+9, 3+7*8+9+2),
		Blocks:   span(v3SectionCount-1, v3SectionCount-1),
	}
	return c, layout, nil
}

// CanOpenZeroCopy reports whether data begins a compact image in the
// section-directory format, i.e. whether OpenCompactBytes /
// OpenCompactAt can open it in place. Legacy stream versions return
// false and must go through ReadCompact.
func CanOpenZeroCopy(data []byte) bool {
	return len(data) >= 6 && string(data[:4]) == serializeMagic &&
		binary.LittleEndian.Uint16(data[4:6]) == serializeVersion
}

// OpenCompactBytes opens a version-3 compact image in place, returning
// the index and its section layout. On little-endian hosts with an
// 8-byte-aligned base the index aliases data zero-copy: the caller must
// keep data alive and unmodified (e.g. an mmap'd file) for the index's
// lifetime. verify additionally checks every section checksum, the
// zero padding and every node's link reference; header and
// cross-section structural bounds are always enforced.
func OpenCompactBytes(data []byte, verify bool) (*CompactIndex, *CompactLayout, error) {
	return openCompactBytes(data, verify)
}

// OpenCompactAt opens a version-3 compact file through an io.ReaderAt,
// the portable fallback when memory mapping is unavailable. The whole
// image is read into one 8-byte-aligned buffer and fully verified, and
// the returned index aliases that buffer.
func OpenCompactAt(r io.ReaderAt) (*CompactIndex, *CompactLayout, error) {
	fail := func(format string, args ...any) (*CompactIndex, *CompactLayout, error) {
		return nil, nil, fmt.Errorf("core: opening compact image: "+format, args...)
	}
	var hdr [v3HeaderFixed]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return fail("short header: %v", err)
	}
	if string(hdr[0:4]) != serializeMagic {
		return fail("bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != serializeVersion {
		return fail("unsupported version %d", v)
	}
	fileSize := int64(binary.LittleEndian.Uint64(hdr[8:16]))
	if fileSize < v3HeaderFixed || fileSize > maxV3FileSize {
		return fail("implausible file size %d", fileSize)
	}
	if fileSize%8 != 0 {
		return fail("file size %d not 8-byte aligned", fileSize)
	}
	words := make([]uint64, fileSize/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), fileSize)
	if _, err := r.ReadAt(buf, 0); err != nil {
		return fail("reading image: %v", err)
	}
	return openCompactBytes(buf, true)
}

// aligned8 returns data backed by an 8-byte-aligned allocation, copying
// only when the original base is misaligned.
func aligned8(data []byte) []byte {
	if len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))%8 == 0 {
		return data
	}
	words := make([]uint64, (len(data)+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)[:len(data)]
	copy(buf, data)
	return buf
}
