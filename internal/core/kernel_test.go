package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/spine-index/spine/internal/seq"
)

// runBothKernels runs fn once under each kernel, restoring the previous
// selection afterwards.
func runBothKernels(t *testing.T, fn func(t *testing.T, k ScanKernel)) {
	t.Helper()
	prev := ActiveScanKernel()
	defer SetScanKernel(prev)
	for _, k := range []ScanKernel{KernelScalar, KernelSWAR} {
		SetScanKernel(k)
		t.Run(k.String(), func(t *testing.T) { fn(t, k) })
	}
}

// lane16Cases are the boundary-heavy values the borrow-isolation compare
// must get right: around zero, around the sign bit, around the sentinel.
var lane16Cases = []uint16{0, 1, 2, 0x7FFE, 0x7FFF, 0x8000, 0x8001, 0xFFFE, 0xFFFF}

func TestLaneGE16(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	vals := append([]uint16(nil), lane16Cases...)
	for i := 0; i < 40; i++ {
		vals = append(vals, uint16(rng.Uint32()))
	}
	for _, threshold := range vals {
		// Pack four values per word, covering every lane position.
		for trial := 0; trial < len(vals); trial++ {
			var lanes [4]uint16
			for l := range lanes {
				lanes[l] = vals[(trial+l*7)%len(vals)]
			}
			x := uint64(lanes[0]) | uint64(lanes[1])<<16 | uint64(lanes[2])<<32 | uint64(lanes[3])<<48
			m := laneGE16(x, threshold)
			for l, v := range lanes {
				got := m>>(uint(l)*16+15)&1 == 1
				want := v >= threshold
				if got != want {
					t.Fatalf("laneGE16(lane %d = %#x, t = %#x): got %v, want %v", l, v, threshold, got, want)
				}
			}
		}
	}
}

func TestLaneGE32(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	vals := []uint32{0, 1, 0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFE, 0xFFFF_FFFF, 0xFFFF, 0x10000}
	for i := 0; i < 40; i++ {
		vals = append(vals, rng.Uint32())
	}
	for _, threshold := range vals {
		for trial := 0; trial < len(vals); trial++ {
			lo, hi := vals[trial], vals[(trial+5)%len(vals)]
			x := uint64(lo) | uint64(hi)<<32
			m := laneGE32(x, threshold)
			if got, want := m>>31&1 == 1, lo >= threshold; got != want {
				t.Fatalf("laneGE32(lane 0 = %#x, t = %#x): got %v, want %v", lo, threshold, got, want)
			}
			if got, want := m>>63&1 == 1, hi >= threshold; got != want {
				t.Fatalf("laneGE32(lane 1 = %#x, t = %#x): got %v, want %v", hi, threshold, got, want)
			}
		}
	}
}

func TestMatchLanes(t *testing.T) {
	for _, bits := range []uint{2, 4, 8} {
		cpw := int(64 / bits)
		base := uint64(0x0123_4567_89AB_CDEF)
		if got := matchLanes(base, base, bits); got != int32(cpw) {
			t.Fatalf("bits=%d: identical words matched %d lanes, want %d", bits, got, cpw)
		}
		for lane := 0; lane < cpw; lane++ {
			flipped := base ^ 1<<(uint(lane)*bits) // change exactly char `lane`
			if got := matchLanes(base, flipped, bits); got != int32(lane) {
				t.Fatalf("bits=%d: first diff at lane %d reported as %d", bits, lane, got)
			}
		}
	}
}

// TestFoldBlockLELMatchesPack checks the online fold against the one-
// shot packing for every prefix length, including LELs at and past the
// uint16 sentinel (saturation).
func TestFoldBlockLELMatchesPack(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	var blocks []blockMeta
	var pack []uint64
	for j := int32(1); j <= 600; j++ {
		lel := int32(rng.Intn(70_000)) // some values saturate
		blocks = foldBlock(blocks, j, 0, lel)
		pack = foldBlockLEL(pack, j, lel)
		want := packBlockLELs(blocks)
		if len(want) != len(pack) {
			t.Fatalf("node %d: fold has %d words, pack %d", j, len(pack), len(want))
		}
		for w := range want {
			if pack[w] != want[w] {
				t.Fatalf("node %d word %d: fold %#x != pack %#x", j, w, pack[w], want[w])
			}
		}
	}
}

// TestNextBlockLEL checks the packed admission jump against a scalar
// walk of the block summaries, for thresholds straddling every block's
// maxLEL and for start positions at every lane offset.
func TestNextBlockLEL(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for _, nBlocks := range []int{1, 2, 3, 4, 5, 7, 8, 9, 30} {
		blocks := make([]blockMeta, nBlocks)
		for i := range blocks {
			blocks[i].maxLEL = int32(rng.Intn(120))
		}
		pack := packBlockLELs(blocks)
		for _, patlen := range []int32{1, 2, 50, 119, 120, 70_000} {
			t16 := satLEL16(patlen)
			for b := 0; b < nBlocks; b++ {
				got, _ := nextBlockLEL(pack, b, nBlocks-1, t16)
				want := nBlocks
				for s := b; s < nBlocks; s++ {
					if satLEL16(blocks[s].maxLEL) >= t16 {
						want = s
						break
					}
				}
				if got != want {
					t.Fatalf("nextBlockLEL(%d blocks, from %d, patlen %d) = %d, want %d",
						nBlocks, b, patlen, got, want)
				}
			}
		}
	}
}

// TestSWARDescentWordBoundaries is the word-boundary property suite:
// patterns of every length 1..65 sliced at every offset within a packed
// word, on both layouts, must agree with the scalar oracle — including
// the mutated near-miss at the pattern's last character. The text
// length is deliberately not a multiple of the chars-per-word count, so
// patterns reaching the end exercise the partially-filled last word.
func TestSWARDescentWordBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	text := randomRepetitive(rng, []byte("acgt"), 2048+77) // partial last packed word
	idx := Build(text)
	comp := mustFreeze(t, text, seq.DNA)

	prev := ActiveScanKernel()
	defer SetScanKernel(prev)

	check := func(p []byte) {
		t.Helper()
		SetScanKernel(KernelScalar)
		wantIdxEnd, wantIdxOK := endNodeOn(idx, p)
		codes, ok := comp.encodePattern(p)
		if !ok {
			t.Fatalf("pattern %q not encodable", p)
		}
		wantCompEnd, wantCompOK := endNodeOn(comp, codes)
		SetScanKernel(KernelSWAR)
		gotIdxEnd, gotIdxOK := endNodeOn(idx, p)
		gotCompEnd, gotCompOK := endNodeOn(comp, codes)
		if gotIdxOK != wantIdxOK || (gotIdxOK && gotIdxEnd != wantIdxEnd) {
			t.Fatalf("reference descent %q: swar (%d, %v) != scalar (%d, %v)",
				p, gotIdxEnd, gotIdxOK, wantIdxEnd, wantIdxOK)
		}
		if gotCompOK != wantCompOK || (gotCompOK && gotCompEnd != wantCompEnd) {
			t.Fatalf("compact descent %q: swar (%d, %v) != scalar (%d, %v)",
				p, gotCompEnd, gotCompOK, wantCompEnd, wantCompOK)
		}
		if gotIdxOK != gotCompOK {
			t.Fatalf("descent %q: layouts disagree (%v vs %v)", p, gotIdxOK, gotCompOK)
		}
	}

	// Every offset within a 32-char DNA word x every length straddling
	// one and two word boundaries, plus slices running into the text end.
	for off := 0; off < 32; off++ {
		for plen := 1; plen <= 65; plen++ {
			p := append([]byte(nil), text[off:off+plen]...)
			check(p)
			p[plen-1] = "acgt"[(int(p[plen-1])+1)%4] // near-miss at the last char
			check(p)
		}
		tail := append([]byte(nil), text[len(text)-off-1:]...)
		check(tail)
	}
}

// TestSWARScalarFallbackProtein pins the generic-fallback contract: the
// 5-bit protein packing does not tile a 64-bit word (64 % 5 != 0), so
// the SWAR kernel must decline and route compact descents through the
// scalar path — transparently, with identical results.
func TestSWARScalarFallbackProtein(t *testing.T) {
	if swarCapable(seq.Protein.Bits()) {
		t.Fatalf("protein packing (%d bits) unexpectedly swarCapable", seq.Protein.Bits())
	}
	rng := rand.New(rand.NewSource(406))
	text := randomRepetitive(rng, []byte("ACDEFGHIKLMNPQRSTVWY"), 900)
	comp := mustFreeze(t, text, seq.Protein)
	runBothKernels(t, func(t *testing.T, k ScanKernel) {
		for i := 0; i < 64; i++ {
			off := rng.Intn(len(text) - 40)
			p := text[off : off+1+rng.Intn(39)]
			if !comp.Contains(p) {
				t.Fatalf("kernel %v: protein Contains(%q) = false", k, p)
			}
		}
		if comp.Contains([]byte("ACDEFACDEFACDEFWWWWW")) != bruteContains(text, []byte("ACDEFACDEFACDEFWWWWW")) {
			t.Fatalf("kernel %v: protein miss disagrees with brute force", k)
		}
	})
}

// TestVertWordMatchesCharAt pins the packed-window extraction both
// layouts feed the descent kernel: every lane of every window must
// equal the scalar charAt, and lanes past the text end must be zero.
func TestVertWordMatchesCharAt(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	text := randomRepetitive(rng, []byte("acgt"), 203)
	idx := Build(text)
	comp := mustFreeze(t, text, seq.DNA)

	n := int32(len(text))
	for v := int32(0); v < n; v++ {
		w := idx.vertWord(v)
		for k := int32(0); k < 8; k++ {
			lane := byte(w >> (uint(k) * 8))
			want := byte(0)
			if v+k < n {
				want = idx.charAt(v + k)
			}
			if lane != want {
				t.Fatalf("reference vertWord(%d) lane %d = %#x, want %#x", v, k, lane, want)
			}
		}
		cw := comp.vertWord(v)
		bits := comp.vertBits()
		mask := uint64(1)<<bits - 1
		for k := int32(0); k < int32(64/bits); k++ {
			lane := byte(cw >> (uint(k) * bits) & mask)
			want := byte(0)
			if v+k < n {
				want = comp.charAt(v + k)
			}
			if lane != want {
				t.Fatalf("compact vertWord(%d) lane %d = %#x, want %#x", v, k, lane, want)
			}
		}
	}
}

// TestNextLELMatchesScalar pins both layouts' lane-parallel LEL
// prefilter against a scalar walk, at every start offset so each lane
// alignment is exercised, with thresholds at the saturation boundary.
func TestNextLELMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(408))
	text := randomRepetitive(rng, []byte("acgt"), 700)
	idx := Build(text)
	comp := mustFreeze(t, text, seq.DNA)
	n := int32(len(text))
	for _, patlen := range []int32{1, 2, 3, 5, 9, 17, 70_000} {
		for j := int32(1); j <= n; j++ {
			last := j + int32(rng.Intn(int(n-j)+1))
			wantIdx := last + 1
			for s := j; s <= last; s++ {
				if idx.lel[s] >= patlen {
					wantIdx = s
					break
				}
			}
			if got, _ := idx.nextLEL(j, last, patlen); got != wantIdx {
				t.Fatalf("reference nextLEL(%d, %d, %d) = %d, want %d", j, last, patlen, got, wantIdx)
			}
			// The compact walk tests the saturated field (conservative
			// superset); mirror that in the scalar reference.
			t16 := satLEL16(patlen)
			wantComp := last + 1
			for s := j; s <= last; s++ {
				if comp.lel[s] >= t16 {
					wantComp = s
					break
				}
			}
			if got, _ := comp.nextLEL(j, last, patlen); got != wantComp {
				t.Fatalf("compact nextLEL(%d, %d, %d) = %d, want %d", j, last, patlen, got, wantComp)
			}
		}
	}
}

// TestParseScanKernel pins the flag surface.
func TestParseScanKernel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ScanKernel
		ok   bool
	}{
		{"swar", KernelSWAR, true},
		{"scalar", KernelScalar, true},
		{"avx2", 0, false},
		{"", 0, false},
	} {
		got, err := ParseScanKernel(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Fatalf("ParseScanKernel(%q) = %v, %v", tc.in, got, err)
		}
	}
	if KernelSWAR.String() != "swar" || KernelScalar.String() != "scalar" {
		t.Fatal("kernel names drifted from flag values")
	}
	if isa := ScanKernelISA(); isa != "amd64" && isa != "generic" {
		t.Fatalf("ScanKernelISA() = %q", isa)
	}
}

// TestScanKernelSwapUnderLoad flips the kernel while queries run on
// both layouts; run with -race to validate that SetScanKernel is safe
// against live readers and every query stays internally consistent.
func TestScanKernelSwapUnderLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	text := randomRepetitive(rng, []byte("acgt"), 3000)
	idx := Build(text)
	comp := mustFreeze(t, text, seq.DNA)
	prev := ActiveScanKernel()
	defer SetScanKernel(prev)

	const workers = 4
	patterns := make([][][]byte, workers)
	want := make([][][]int, workers)
	for w := range patterns {
		for q := 0; q < 40; q++ {
			off := rng.Intn(len(text) - 20)
			p := append([]byte(nil), text[off:off+3+rng.Intn(16)]...)
			patterns[w] = append(patterns[w], p)
			want[w] = append(want[w], idx.FindAll(p))
		}
	}

	var workersWG, flipperWG sync.WaitGroup
	stop := make(chan struct{})
	flipperWG.Add(1)
	go func() { // the flipper
		defer flipperWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				SetScanKernel(KernelScalar)
			} else {
				SetScanKernel(KernelSWAR)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			for round := 0; round < 30; round++ {
				for q, p := range patterns[w] {
					if got := idx.FindAll(p); !equalInts(got, want[w][q]) {
						t.Errorf("worker %d: FindAll(%q) = %v, want %v", w, p, got, want[w][q])
						return
					}
					if got := comp.Count(p); got != len(want[w][q]) {
						t.Errorf("worker %d: compact Count(%q) = %d, want %d", w, p, got, len(want[w][q]))
						return
					}
				}
			}
		}(w)
	}
	workersWG.Wait()
	close(stop)
	flipperWG.Wait()
}

// TestKernelInvariantWorkAccounting pins the contract that NodesChecked
// and the block-skip decision counters are identical across kernels —
// the SWAR prefilters cover the same nodes in fewer machine ops — while
// WordsCompared is non-zero only under SWAR.
func TestKernelInvariantWorkAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(410))
	text := randomRepetitive(rng, []byte("acgt"), 5000)
	idx := Build(text)
	comp := mustFreeze(t, text, seq.DNA)
	prev := ActiveScanKernel()
	defer SetScanKernel(prev)

	type work struct {
		visited, skipped, scanned int64
	}
	measure := func(s interface {
		FindAll(p []byte) []int
	}, p []byte, k ScanKernel) (work, int64) {
		SetScanKernel(k)
		// Drive the scan directly so the stats are observable.
		var st scanStats
		var words int64
		switch v := s.(type) {
		case *Index:
			first, ok := endNodeOn(v, p)
			if !ok {
				return work{}, 0
			}
			sc := getScratch(v.textLen())
			st, _, _ = occScanOn(nil, v, sc, first, int32(len(p)), -1)
			putScratch(sc)
		case *CompactIndex:
			codes, ok := v.encodePattern(p)
			if !ok {
				return work{}, 0
			}
			first, ok := endNodeOn(v, codes)
			if !ok {
				return work{}, 0
			}
			sc := getScratch(v.textLen())
			st, _, _ = occScanOn(nil, v, sc, first, int32(len(p)), -1)
			putScratch(sc)
		}
		words = st.words
		return work{st.visited, st.blocksSkipped, st.blocksScanned}, words
	}

	for trial := 0; trial < 60; trial++ {
		off := rng.Intn(len(text) - 40)
		p := text[off : off+2+rng.Intn(36)]
		for _, s := range []interface{ FindAll(p []byte) []int }{idx, comp} {
			scalarWork, scalarWords := measure(s, p, KernelScalar)
			swarWork, swarWords := measure(s, p, KernelSWAR)
			if scalarWork != swarWork {
				t.Fatalf("%T %q: work diverges across kernels: scalar %+v, swar %+v",
					s, p, scalarWork, swarWork)
			}
			if scalarWords != 0 {
				t.Fatalf("%T %q: scalar kernel reported %d word compares", s, p, scalarWords)
			}
			_ = swarWords // zero is legal (e.g. scan never entered SWAR loops)
		}
	}
}

// TestDefaultKernelIsSWAR pins the zero-value default: the package's
// pre-existing differential suites implicitly exercise the SWAR paths
// because SWAR is what queries run unless explicitly disabled.
func TestDefaultKernelIsSWAR(t *testing.T) {
	var knob ScanKernel // zero value
	if knob != KernelSWAR {
		t.Fatal("zero-value ScanKernel is not KernelSWAR")
	}
	if ActiveScanKernel() != KernelSWAR {
		t.Fatalf("active kernel is %v, want swar (a test leaked a SetScanKernel)", ActiveScanKernel())
	}
}
