package core

import (
	"context"
	"time"

	"github.com/spine-index/spine/internal/trace"
)

// Traced query paths. When the context carries a trace, descents run
// through descendTracedOn — a counting twin of endNodeOn/stepOn that
// attributes work to the trace's descend/ribs/extribs stages — and the
// occurrence scan in findAllOnCtx records an occurrences span. When it
// does not (the common case), queries take the untouched fast paths;
// the only added cost is one context lookup per query.

// descendOnCtx walks the valid path for p, tracing if ctx asks for it.
func descendOnCtx[S store](ctx context.Context, s S, p []byte) (end int32, ok bool) {
	if tr := trace.FromContext(ctx); tr != nil {
		return descendTracedOn(s, p, tr)
	}
	return endNodeOn(s, p)
}

// descendTracedOn is endNodeOn with per-stage accounting: it records a
// descend span whose Nodes equals len(p) (the §4.1 convention — one
// node examined per pattern character, matching ScanResult.NodesChecked)
// with rib/extrib hop counters, plus ribs/extribs spans isolating the
// time spent off the backbone. The inner loop mirrors stepOn exactly;
// clock reads happen only on the rib/extrib paths, which genomic
// descents take rarely (most steps are vertebra extensions).
func descendTracedOn[S store](s S, p []byte, tr *trace.Trace) (end int32, ok bool) {
	if !scalarKernel.Load() {
		if end, ok, handled := descendTracedSWAROn(s, p, tr); handled {
			return end, ok
		}
	}
	sp := tr.Start(trace.StageDescend)
	sp.C.Nodes = int64(len(p))
	var ribsDur, extribsDur time.Duration
	finish := func(end int32, ok bool) (int32, bool) {
		sp.End()
		if sp.C.RibHops > 0 {
			tr.Add(trace.StageRibs, ribsDur, trace.Counters{RibHops: sp.C.RibHops})
		}
		if sp.C.ExtribHops > 0 {
			tr.Add(trace.StageExtribs, extribsDur, trace.Counters{ExtribHops: sp.C.ExtribHops})
		}
		return end, ok
	}
	v := int32(0)
	n := s.textLen()
	for i, c := range p {
		if v < n && s.charAt(v) == c {
			v++ // vertebra extension: the hot case, no clocks
			continue
		}
		t0 := time.Now()
		r, found := s.findRib(v, c)
		ribsDur += time.Since(t0)
		sp.C.RibHops++
		if !found {
			return finish(0, false)
		}
		pathlen := int32(i)
		if pathlen <= r.PT {
			v = r.Dest
			continue
		}
		t0 = time.Now()
		node := r.Dest
		for {
			x, found := s.findExtrib(node)
			if !found {
				extribsDur += time.Since(t0)
				return finish(0, false)
			}
			sp.C.ExtribHops++
			if x.ParentSrc == v && x.PRT == r.PT && x.PT >= pathlen {
				v = x.Dest
				break
			}
			node = x.Dest
		}
		extribsDur += time.Since(t0)
	}
	return finish(v, true)
}

// descendTracedSWAROn is the counting twin of endNodeSWAROn: vertebra
// runs are matched a packed word at a time (each compare recorded in
// WordsCompared), while the run-breaking cross-edge steps carry the
// same rib/extrib accounting as the scalar traced descent. Edge steps
// fire at exactly the characters where the scalar walk leaves the
// backbone, so Nodes/RibHops/ExtribHops are kernel-invariant; only
// WordsCompared is kernel-dependent. handled is false when the packed
// width cannot tile a word (the caller then takes the scalar path).
func descendTracedSWAROn[S store](s S, p []byte, tr *trace.Trace) (end int32, ok, handled bool) {
	bits := s.vertBits()
	if !swarCapable(bits) {
		return 0, false, false
	}
	sp := tr.Start(trace.StageDescend)
	sp.C.Nodes = int64(len(p))
	var ribsDur, extribsDur time.Duration
	finish := func(end int32, ok bool) (int32, bool, bool) {
		sp.End()
		if sp.C.RibHops > 0 {
			tr.Add(trace.StageRibs, ribsDur, trace.Counters{RibHops: sp.C.RibHops})
		}
		if sp.C.ExtribHops > 0 {
			tr.Add(trace.StageExtribs, extribsDur, trace.Counters{ExtribHops: sp.C.ExtribHops})
		}
		return end, ok, true
	}
	pat := getSwarPat(p, bits)
	defer putSwarPat(pat)
	cpw := int32(64 / bits)
	v, i := int32(0), int32(0)
	n, m := s.textLen(), int32(len(p))
	for i < m {
		if v < n {
			run := cpw
			if rem := m - i; rem < run {
				run = rem
			}
			if rem := n - v; rem < run {
				run = rem
			}
			k := matchLanes(s.vertWord(v), pat.wordAt(i), bits)
			sp.C.WordsCompared++
			if k > run {
				k = run
			}
			v += k
			i += k
			if k == run {
				continue
			}
		}
		c := p[i]
		t0 := time.Now()
		r, found := s.findRib(v, c)
		ribsDur += time.Since(t0)
		sp.C.RibHops++
		if !found {
			return finish(0, false)
		}
		if i <= r.PT {
			v = r.Dest
			i++
			continue
		}
		t0 = time.Now()
		node := r.Dest
		for {
			x, found := s.findExtrib(node)
			if !found {
				extribsDur += time.Since(t0)
				return finish(0, false)
			}
			sp.C.ExtribHops++
			if x.ParentSrc == v && x.PRT == r.PT && x.PT >= i {
				v = x.Dest
				break
			}
			node = x.Dest
		}
		extribsDur += time.Since(t0)
		i++
	}
	return finish(v, true)
}

// EndNodeCtx is EndNode with tracing: when ctx carries a trace the
// descent records descend/ribs/extribs spans.
func (idx *Index) EndNodeCtx(ctx context.Context, p []byte) (end int32, ok bool) {
	return descendOnCtx(ctx, idx, p)
}

// EndNodeCtx is the compact-layout variant; see Index.EndNodeCtx. A
// pattern containing a letter outside the alphabet occurs nowhere; the
// failed encoding still records the pattern walk's node count.
func (c *CompactIndex) EndNodeCtx(ctx context.Context, p []byte) (end int32, ok bool) {
	codes, ok := c.encodePattern(p)
	if !ok {
		if tr := trace.FromContext(ctx); tr != nil {
			tr.Add(trace.StageDescend, 0, trace.Counters{Nodes: int64(len(p))})
		}
		return 0, false
	}
	return descendOnCtx(ctx, c, codes)
}
