package core

import (
	"fmt"
	mbits "math/bits"
	"sync"

	"github.com/spine-index/spine/internal/seq"
)

// CompactIndex is the read-optimized §5 layout of a SPINE index. It
// realizes every space optimization the paper describes:
//
//   - Implicit vertebras: node order equals creation order, so vertebra
//     destinations are not stored; character labels are bit-packed (2 bits
//     per DNA symbol, 5 per protein residue).
//   - Small numeric labels: LEL/PT/PRT fields are 2 bytes, with a sentinel
//     redirecting the rare value >= 65535 to an overflow table (Table 3
//     shows real-genome labels stay below ~25k).
//   - Sparse rib storage: the dense Link Table (LT) holds one entry per
//     node; only nodes with downstream edges carry a tagged pointer into
//     one of several Rib Tables (RTs), one table per edge-count shape so
//     no slots are wasted (Figure 5). Nodes with more than three ribs —
//     possible on protein alphabets — go to a CSR-shaped spill table.
//
// A CompactIndex is immutable: build an Index online, then Freeze it.
// Queries take raw letters and translate through the alphabet; patterns
// containing letters outside the alphabet simply do not occur.
type CompactIndex struct {
	alpha *seq.Alphabet
	chars *seq.Packed // vertebra character codes
	n     int32

	lel []uint16 // LT: per node 1..n (slot 0 unused)
	ref []uint32 // LT: per node; LD, or tagged RT locator (see refTag)

	tables [numShapes]ribTable
	spill  spillTable

	lelOverflow map[int32]int32    // node -> LEL when >= labelSentinel
	ptOverflow  map[uint64]int32   // (src<<8|cl) -> rib PT
	extOverflow map[int32][2]int32 // ext-source node -> {PT, PRT}

	// blocks is the block-max skip index, built at freeze/load time. It
	// joins the layout's space accounting: 12 bytes per 64 nodes, under
	// 0.2 bytes per indexed character.
	blocks []blockMeta
	// blockLEL packs the blocks' maxLEL fields as saturated uint16 lanes
	// (4 blocks per word) for the SWAR admission prefilter; rebuilt
	// wherever blocks is rebuilt.
	blockLEL []uint64

	// ra is the optional scan readahead sink (see SetScanReadahead);
	// nil for memory-resident indexes.
	ra raPointer
}

const (
	// refTag marks an LT ref as an RT locator: bits 28..30 select the
	// table shape, bits 0..27 the row. Plain refs are link destinations.
	refTag        = uint32(1) << 31
	refShapeShift = 28
	refRowMask    = (uint32(1) << refShapeShift) - 1

	// labelSentinel in a 2-byte field redirects to the overflow tables.
	labelSentinel = uint16(0xFFFF)

	// maxInlineRibs is the largest rib count with a dedicated table shape;
	// DNA needs at most alphabet-1 = 3. Larger fan-outs spill.
	maxInlineRibs = 3
	// numShapes: rib counts 0..3 x {extrib, no extrib}, minus the empty
	// shape, plus one slot to keep indexing simple. Shape id =
	// ribCount*2 + ext, ids 1..7; id 0 denotes the spill table.
	numShapes = 8
)

// ribTable stores all nodes sharing one edge shape (fixed rib count r,
// extrib present or not) in parallel flat arrays — the Figure 5 RT layout.
// Flat arrays keep the structure pointer-free, which matters for GC cost
// at genome scale.
type ribTable struct {
	ribs   int // ribs per row
	hasExt bool

	ld     []uint32 // link destination, one per row
	ribRD  []uint32 // len rows*ribs
	ribPT  []uint16
	ribCL  []byte
	extRD  []uint32 // one per row when hasExt
	extPT  []uint16
	extPRT []uint16
	extSrc []uint32
}

// spillTable holds nodes with more than maxInlineRibs ribs, CSR-shaped.
type spillTable struct {
	ld     []uint32
	start  []uint32 // CSR offsets, len rows+1
	ribRD  []uint32
	ribPT  []uint16
	ribCL  []byte
	extRD  []uint32 // 0 = no extrib (node 0 is never an extrib target)
	extPT  []uint16
	extPRT []uint16
	extSrc []uint32
}

// Freeze converts a built reference index into the compact layout. The
// alphabet must cover every character of the indexed text.
func Freeze(idx *Index, alpha *seq.Alphabet) (*CompactIndex, error) {
	if alpha == nil {
		return nil, fmt.Errorf("core: Freeze requires an alphabet")
	}
	codes, err := alpha.Encode(idx.text)
	if err != nil {
		return nil, fmt.Errorf("core: freezing index: %w", err)
	}
	packed, err := seq.NewPacked(codes, alpha.Bits())
	if err != nil {
		return nil, fmt.Errorf("core: freezing index: %w", err)
	}
	n := int32(idx.Len())
	c := &CompactIndex{
		alpha:       alpha,
		chars:       packed,
		n:           n,
		lel:         make([]uint16, n+1),
		ref:         make([]uint32, n+1),
		lelOverflow: make(map[int32]int32),
		ptOverflow:  make(map[uint64]int32),
		extOverflow: make(map[int32][2]int32),
	}
	for shape := 1; shape < numShapes; shape++ {
		c.tables[shape].ribs = shape >> 1
		c.tables[shape].hasExt = shape&1 == 1
	}
	c.spill.start = append(c.spill.start, 0)

	for i := int32(0); i <= n; i++ {
		if i > 0 {
			c.lel[i] = c.squeezeLEL(i, idx.lel[i])
		}
		ribs := idx.Ribs(int(i))
		ext, hasExt := idx.ExtribAt(int(i))
		if len(ribs) == 0 && !hasExt {
			c.ref[i] = uint32(idx.link[i]) // plain LD (unused for the root)
			continue
		}
		ld := uint32(idx.link[i])
		if len(ribs) > maxInlineRibs {
			c.ref[i] = c.spillRow(i, ld, ribs, ext, hasExt, alpha)
			continue
		}
		shape := len(ribs)<<1 | boolBit(hasExt)
		tb := &c.tables[shape]
		row := uint32(len(tb.ld))
		if row > refRowMask {
			return nil, fmt.Errorf("core: RT shape %d exceeds %d rows", shape, refRowMask)
		}
		tb.ld = append(tb.ld, ld)
		for _, r := range ribs {
			tb.ribRD = append(tb.ribRD, uint32(r.Dest))
			tb.ribPT = append(tb.ribPT, c.squeezeRibPT(i, r, alpha))
			tb.ribCL = append(tb.ribCL, byte(alpha.Code(r.CL)))
		}
		if hasExt {
			tb.extRD = append(tb.extRD, uint32(ext.Dest))
			pt, prt := c.squeezeExt(i, ext)
			tb.extPT = append(tb.extPT, pt)
			tb.extPRT = append(tb.extPRT, prt)
			tb.extSrc = append(tb.extSrc, uint32(ext.ParentSrc))
		}
		c.ref[i] = refTag | uint32(shape)<<refShapeShift | row
	}
	c.blocks = buildBlocksOn(c)
	c.blockLEL = packBlockLELs(c.blocks)
	return c, nil
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

func (c *CompactIndex) spillRow(i int32, ld uint32, ribs []Rib, ext Extrib, hasExt bool, alpha *seq.Alphabet) uint32 {
	sp := &c.spill
	row := uint32(len(sp.ld))
	sp.ld = append(sp.ld, ld)
	for _, r := range ribs {
		sp.ribRD = append(sp.ribRD, uint32(r.Dest))
		sp.ribPT = append(sp.ribPT, c.squeezeRibPT(i, r, alpha))
		sp.ribCL = append(sp.ribCL, byte(alpha.Code(r.CL)))
	}
	sp.start = append(sp.start, uint32(len(sp.ribRD)))
	if hasExt {
		sp.extRD = append(sp.extRD, uint32(ext.Dest))
		pt, prt := c.squeezeExt(i, ext)
		sp.extPT = append(sp.extPT, pt)
		sp.extPRT = append(sp.extPRT, prt)
		sp.extSrc = append(sp.extSrc, uint32(ext.ParentSrc))
	} else {
		sp.extRD = append(sp.extRD, 0)
		sp.extPT = append(sp.extPT, 0)
		sp.extPRT = append(sp.extPRT, 0)
		sp.extSrc = append(sp.extSrc, 0)
	}
	return refTag | row // shape bits 0 = spill
}

func (c *CompactIndex) squeezeLEL(node, v int32) uint16 {
	if v < int32(labelSentinel) {
		return uint16(v)
	}
	c.lelOverflow[node] = v
	return labelSentinel
}

func (c *CompactIndex) squeezeRibPT(src int32, r Rib, alpha *seq.Alphabet) uint16 {
	return c.squeezeRibPTCode(src, byte(alpha.Code(r.CL)), r.PT)
}

// squeezeRibPTCode is squeezeRibPT for a rib whose CL is already an
// alphabet code (the CompactBuilder's native representation).
func (c *CompactIndex) squeezeRibPTCode(src int32, clCode byte, pt int32) uint16 {
	if pt < int32(labelSentinel) {
		return uint16(pt)
	}
	c.ptOverflow[uint64(src)<<8|uint64(clCode)] = pt
	return labelSentinel
}

func (c *CompactIndex) squeezeExt(src int32, x Extrib) (pt, prt uint16) {
	if x.PT < int32(labelSentinel) && x.PRT < int32(labelSentinel) {
		return uint16(x.PT), uint16(x.PRT)
	}
	c.extOverflow[src] = [2]int32{x.PT, x.PRT}
	return labelSentinel, labelSentinel
}

// Len returns the number of indexed characters.
func (c *CompactIndex) Len() int { return int(c.n) }

// Alphabet returns the alphabet the index was frozen with.
func (c *CompactIndex) Alphabet() *seq.Alphabet { return c.alpha }

// Text reconstructs the indexed string from the packed vertebra labels —
// the §1.1 property that the data string "is not required any more once
// the index is constructed" made concrete: the index is its own text.
func (c *CompactIndex) Text() []byte {
	out := make([]byte, c.n)
	for i := int32(0); i < c.n; i++ {
		out[i] = c.alpha.Letter(int(c.chars.At(int(i))))
	}
	return out
}

// ComputeStats measures the structural statistics of the compact layout;
// fan-out counts come directly from the per-shape table sizes.
func (c *CompactIndex) ComputeStats() Stats {
	st := Stats{
		Length:      int(c.n),
		FanoutNodes: make([]int, 6),
	}
	withEdges := 0
	for shape := 1; shape < numShapes; shape++ {
		tb := &c.tables[shape]
		rows := len(tb.ld)
		withEdges += rows
		fan := tb.ribs
		if tb.hasExt {
			fan++
		}
		if fan >= len(st.FanoutNodes) {
			fan = len(st.FanoutNodes) - 1
		}
		st.FanoutNodes[fan] += rows
		st.RibCount += rows * tb.ribs
		if tb.hasExt {
			st.ExtribCount += rows
		}
	}
	sp := &c.spill
	for row := range sp.ld {
		withEdges++
		ribs := int(sp.start[row+1] - sp.start[row])
		fan := ribs
		hasExt := sp.extRD[row] != 0
		if hasExt {
			fan++
			st.ExtribCount++
		}
		st.RibCount += ribs
		if fan >= len(st.FanoutNodes) {
			fan = len(st.FanoutNodes) - 1
		}
		st.FanoutNodes[fan]++
	}
	st.FanoutNodes[0] = int(c.n) + 1 - withEdges
	// Label maxima: scan the 2-byte fields, resolving overflow entries.
	for i := int32(1); i <= c.n; i++ {
		_, lel := c.linkOf(i)
		if lel > st.MaxLEL {
			st.MaxLEL = lel
		}
	}
	for _, v := range c.ptOverflow {
		if v > st.MaxPT {
			st.MaxPT = v
		}
	}
	scanPTs := func(pts []uint16) {
		for _, v := range pts {
			if v != labelSentinel && int32(v) > st.MaxPT {
				st.MaxPT = int32(v)
			}
		}
	}
	for shape := 1; shape < numShapes; shape++ {
		scanPTs(c.tables[shape].ribPT)
		scanPTs(c.tables[shape].extPT)
		for _, v := range c.tables[shape].extPRT {
			if v != labelSentinel && int32(v) > st.MaxPRT {
				st.MaxPRT = int32(v)
			}
		}
	}
	scanPTs(sp.ribPT)
	scanPTs(sp.extPT)
	for _, v := range sp.extPRT {
		if v != labelSentinel && int32(v) > st.MaxPRT {
			st.MaxPRT = int32(v)
		}
	}
	for _, v := range c.extOverflow {
		if v[0] > st.MaxPT {
			st.MaxPT = v[0]
		}
		if v[1] > st.MaxPRT {
			st.MaxPRT = v[1]
		}
	}
	return st
}

// store implementation (native representation: alphabet codes).

func (c *CompactIndex) textLen() int32          { return c.n }
func (c *CompactIndex) charAt(v int32) byte     { return c.chars.At(int(v)) }
func (c *CompactIndex) skipBlocks() []blockMeta { return c.blocks }

// SWAR kernel surface: vertebra labels live bit-packed in chars (the
// alphabet width per lane) and LELs are saturated uint16 (4 lanes per
// word). Odd widths — the 5-bit protein packing — fail swarCapable and
// route descents through the scalar oracle.

func (c *CompactIndex) blockLELs() []uint64     { return c.blockLEL }
func (c *CompactIndex) vertBits() uint          { return c.alpha.Bits() }
func (c *CompactIndex) vertWord(v int32) uint64 { return c.chars.WordAt(int(v)) }

// nextLEL advances to the first node in [j, last] whose saturated LEL
// field passes lel >= sat(patlen), four uint16 lanes per compare. The
// sentinel saturation makes the test conservative (an overflowed LEL
// always passes); the caller re-checks the exact LEL through linkOf.
func (c *CompactIndex) nextLEL(j, last, patlen int32) (int32, int64) {
	t := satLEL16(patlen)
	var words int64
	for j+3 <= last {
		w := loadQuad16(c.lel, int(j))
		words++
		if m := laneGE16(w, t); m != 0 {
			return j + int32(mbits.TrailingZeros64(m)>>4), words
		}
		j += 4
	}
	for ; j <= last; j++ {
		if c.lel[j] >= t {
			return j, words
		}
	}
	return last + 1, words
}

func (c *CompactIndex) linkOf(i int32) (int32, int32) {
	lel := int32(c.lel[i])
	if c.lel[i] == labelSentinel {
		if v, ok := c.lelOverflow[i]; ok {
			lel = v
		}
	}
	return int32(c.ldOf(i)), lel
}

func (c *CompactIndex) ldOf(i int32) uint32 {
	ref := c.ref[i]
	if ref&refTag == 0 {
		return ref
	}
	shape := (ref >> refShapeShift) & 7
	row := ref & refRowMask
	if shape == 0 {
		return c.spill.ld[row]
	}
	return c.tables[shape].ld[row]
}

func (c *CompactIndex) findRib(t int32, code byte) (Rib, bool) {
	ref := c.ref[t]
	if ref&refTag == 0 {
		return Rib{}, false
	}
	shape := (ref >> refShapeShift) & 7
	row := ref & refRowMask
	var rds []uint32
	var pts []uint16
	var cls []byte
	if shape == 0 {
		lo, hi := c.spill.start[row], c.spill.start[row+1]
		rds, pts, cls = c.spill.ribRD[lo:hi], c.spill.ribPT[lo:hi], c.spill.ribCL[lo:hi]
	} else {
		tb := &c.tables[shape]
		lo := int(row) * tb.ribs
		hi := lo + tb.ribs
		rds, pts, cls = tb.ribRD[lo:hi], tb.ribPT[lo:hi], tb.ribCL[lo:hi]
	}
	for j, cl := range cls {
		if cl != code {
			continue
		}
		pt := int32(pts[j])
		if pts[j] == labelSentinel {
			if v, ok := c.ptOverflow[uint64(t)<<8|uint64(code)]; ok {
				pt = v
			}
		}
		return Rib{CL: code, Dest: int32(rds[j]), PT: pt}, true
	}
	return Rib{}, false
}

func (c *CompactIndex) findExtrib(t int32) (Extrib, bool) {
	ref := c.ref[t]
	if ref&refTag == 0 {
		return Extrib{}, false
	}
	shape := (ref >> refShapeShift) & 7
	row := ref & refRowMask
	var rd uint32
	var pt16, prt16 uint16
	var src uint32
	if shape == 0 {
		rd = c.spill.extRD[row]
		if rd == 0 {
			return Extrib{}, false
		}
		pt16, prt16, src = c.spill.extPT[row], c.spill.extPRT[row], c.spill.extSrc[row]
	} else {
		tb := &c.tables[shape]
		if !tb.hasExt {
			return Extrib{}, false
		}
		rd, pt16, prt16, src = tb.extRD[row], tb.extPT[row], tb.extPRT[row], tb.extSrc[row]
	}
	pt, prt := int32(pt16), int32(prt16)
	if pt16 == labelSentinel || prt16 == labelSentinel {
		if v, ok := c.extOverflow[t]; ok {
			pt, prt = v[0], v[1]
		}
	}
	return Extrib{Dest: int32(rd), PT: pt, PRT: prt, ParentSrc: int32(src)}, true
}

// encodePattern translates a letter pattern to codes; ok is false when the
// pattern contains a letter outside the alphabet (and hence cannot occur).
func (c *CompactIndex) encodePattern(p []byte) ([]byte, bool) {
	out := make([]byte, len(p))
	for i, b := range p {
		code := c.alpha.Code(b)
		if code < 0 {
			return nil, false
		}
		out[i] = byte(code)
	}
	return out, true
}

// patBuf is a pooled pattern-code buffer; the compact hot paths encode
// into it so translation costs no allocation at steady state.
type patBuf struct{ b []byte }

var patBufPool = sync.Pool{New: func() any { return new(patBuf) }}

// encodePatternPooled is encodePattern into a pooled buffer. When ok,
// the caller must release pb with patBufPool.Put once codes is dead; on
// failure the buffer is already released.
func (c *CompactIndex) encodePatternPooled(p []byte) (pb *patBuf, codes []byte, ok bool) {
	pb = patBufPool.Get().(*patBuf)
	if cap(pb.b) < len(p) {
		pb.b = make([]byte, len(p))
	}
	codes = pb.b[:len(p)]
	for i, b := range p {
		code := c.alpha.Code(b)
		if code < 0 {
			patBufPool.Put(pb)
			return nil, nil, false
		}
		codes[i] = byte(code)
	}
	return pb, codes, true
}

// Contains reports whether p (raw letters) is a substring of the text.
func (c *CompactIndex) Contains(p []byte) bool {
	pb, codes, ok := c.encodePatternPooled(p)
	if !ok {
		return false
	}
	_, ok = endNodeOn(c, codes)
	patBufPool.Put(pb)
	return ok
}

// Find returns the start offset of the first occurrence of p, or -1.
func (c *CompactIndex) Find(p []byte) int {
	pb, codes, ok := c.encodePatternPooled(p)
	if !ok {
		return -1
	}
	end, ok := endNodeOn(c, codes)
	patBufPool.Put(pb)
	if !ok {
		return -1
	}
	return int(end) - len(p)
}

// FindAll returns every occurrence start offset of p, increasing; nil if
// absent.
func (c *CompactIndex) FindAll(p []byte) []int {
	return c.FindAllAppend(p, nil)
}

// FindAllAppend is FindAll appending into dst; see Index.FindAllAppend.
func (c *CompactIndex) FindAllAppend(p []byte, dst []int) []int {
	pb, codes, ok := c.encodePatternPooled(p)
	if !ok {
		return dst
	}
	dst = findAllAppendOn(c, codes, dst)
	patBufPool.Put(pb)
	return dst
}

// Count returns the number of occurrences of p via the streaming scan;
// no occurrence slice is materialized.
func (c *CompactIndex) Count(p []byte) int {
	pb, codes, ok := c.encodePatternPooled(p)
	if !ok {
		return 0
	}
	n := countOn(c, codes)
	patBufPool.Put(pb)
	return n
}

// ForEachOccurrence streams every occurrence start offset of p in
// increasing order to fn, stopping early if fn returns false; see
// Index.ForEachOccurrence.
func (c *CompactIndex) ForEachOccurrence(p []byte, fn func(start int) bool) {
	pb, codes, ok := c.encodePatternPooled(p)
	if !ok {
		return
	}
	forEachOccurrenceOn(c, codes, fn)
	patBufPool.Put(pb)
}

// CompactCursor is the matching-statistics cursor over the compact layout;
// see Cursor for semantics. Advance takes raw letters.
type CompactCursor struct {
	cursorState[*CompactIndex]
}

// NewCompactCursor returns a cursor over c at the root with empty match.
func NewCompactCursor(c *CompactIndex) *CompactCursor {
	return &CompactCursor{cursorState[*CompactIndex]{st: c}}
}

// Advance consumes one query letter, translating to the alphabet code
// space. A letter outside the alphabet cannot match anywhere: the cursor
// resets to the root with an empty match.
func (cc *CompactCursor) Advance(letter byte) {
	code := cc.st.alpha.Code(letter)
	if code < 0 {
		cc.Checked++
		cc.Node, cc.Len = 0, 0
		return
	}
	cc.cursorState.Advance(byte(code))
}

// SizeBytes returns the total compact-layout footprint in bytes — the
// figure behind the paper's "less than 12 bytes per indexed character".
func (c *CompactIndex) SizeBytes() int64 {
	b := int64(c.chars.SizeBytes())
	b += int64(len(c.lel)) * 2
	b += int64(len(c.ref)) * 4
	for i := 1; i < numShapes; i++ {
		tb := &c.tables[i]
		b += int64(len(tb.ld))*4 +
			int64(len(tb.ribRD))*4 + int64(len(tb.ribPT))*2 + int64(len(tb.ribCL)) +
			int64(len(tb.extRD))*4 + int64(len(tb.extPT))*2 + int64(len(tb.extPRT))*2 + int64(len(tb.extSrc))*4
	}
	sp := &c.spill
	b += int64(len(sp.ld))*4 + int64(len(sp.start))*4 +
		int64(len(sp.ribRD))*4 + int64(len(sp.ribPT))*2 + int64(len(sp.ribCL)) +
		int64(len(sp.extRD))*4 + int64(len(sp.extPT))*2 + int64(len(sp.extPRT))*2 + int64(len(sp.extSrc))*4
	b += int64(len(c.lelOverflow)+len(c.ptOverflow))*12 + int64(len(c.extOverflow))*16
	b += int64(len(c.blocks)) * 12  // block-max skip index (3 x int32 per block)
	b += int64(len(c.blockLEL)) * 8 // packed SWAR admission lanes (2 bytes per block)
	return b
}

// BytesPerChar returns SizeBytes divided by the text length.
func (c *CompactIndex) BytesPerChar() float64 {
	if c.n == 0 {
		return 0
	}
	return float64(c.SizeBytes()) / float64(c.n)
}
