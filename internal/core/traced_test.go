package core

import (
	"context"
	"strings"
	"testing"

	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/trace"
)

// tracedStores builds both layouts over the same text for trace tests.
func tracedStores(t *testing.T, text []byte) (*Index, *CompactIndex) {
	t.Helper()
	idx := Build(text)
	ci, err := Freeze(idx, seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	return idx, ci
}

// TestDescendTracedMatchesPlain verifies the counting descent is an
// exact behavioral twin of endNodeOn on both layouts, across found,
// absent, and out-of-alphabet patterns.
func TestDescendTracedMatchesPlain(t *testing.T) {
	text := []byte("aaccacaacaggtaccaaccacaacagg")
	idx, ci := tracedStores(t, text)
	patterns := []string{"", "a", "cc", "acaa", "gg", "ggt", "zz", "accg",
		"aaccacaacaggtaccaaccacaacagg", "caacagg"}
	for _, p := range patterns {
		wantEnd, wantOK := endNodeOn(idx, []byte(p))
		tr := trace.New()
		end, ok := descendTracedOn(idx, []byte(p), tr)
		if end != wantEnd || ok != wantOK {
			t.Fatalf("descendTracedOn(%q) = (%d,%v), want (%d,%v)", p, end, ok, wantEnd, wantOK)
		}
		ctx := trace.NewContext(context.Background(), trace.New())
		cEnd, cOK := ci.EndNodeCtx(ctx, []byte(p))
		pEnd, pOK := idx.EndNodeCtx(ctx, []byte(p))
		if cEnd != pEnd || cOK != pOK {
			t.Fatalf("layouts disagree on %q: compact (%d,%v) vs reference (%d,%v)", p, cEnd, cOK, pEnd, pOK)
		}
	}
}

// TestTracedFindAllStageSums checks the acceptance property: the Nodes
// counters of a traced query's spans sum to its reported NodesChecked,
// on both layouts, with and without limits.
func TestTracedFindAllStageSums(t *testing.T) {
	text := []byte(strings.Repeat("acgtacca", 200))
	idx, ci := tracedStores(t, text)
	type q struct {
		p     string
		limit int
	}
	cases := []q{{"ac", 0}, {"ac", 5}, {"acgt", 0}, {"zz", 0}, {"acca", 1}, {"tacgta", 0}}
	run := func(name string, findAll func(ctx context.Context, p []byte, limit int) (ScanResult, error)) {
		for _, c := range cases {
			tr := trace.New()
			ctx := trace.NewContext(context.Background(), tr)
			res, err := findAll(ctx, []byte(c.p), c.limit)
			if err != nil {
				t.Fatalf("%s FindAllCtx(%q): %v", name, c.p, err)
			}
			plain, err := findAll(context.Background(), []byte(c.p), c.limit)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Positions) != len(plain.Positions) || res.NodesChecked != plain.NodesChecked {
				t.Fatalf("%s traced result differs for %q: %d pos/%d nodes vs %d/%d",
					name, c.p, len(res.Positions), res.NodesChecked, len(plain.Positions), plain.NodesChecked)
			}
			if got := tr.TotalNodes(); got != res.NodesChecked {
				t.Fatalf("%s span sum for %q limit %d = %d, want NodesChecked %d",
					name, c.p, c.limit, got, res.NodesChecked)
			}
			var haveDescend bool
			for _, r := range tr.Records() {
				if r.Stage == trace.StageDescend {
					haveDescend = true
				}
			}
			if !haveDescend {
				t.Fatalf("%s trace for %q has no descend span: %+v", name, c.p, tr.Records())
			}
		}
	}
	run("reference", idx.FindAllCtx)
	run("compact", ci.FindAllCtx)
}

// TestTracedCancelRecordsPartialScan checks that an aborted scan still
// attributes the nodes it examined before cancellation.
func TestTracedCancelRecordsPartialScan(t *testing.T) {
	text := []byte(strings.Repeat("ac", 1<<15))
	idx := Build(text)
	tr := trace.New()
	ctx, cancel := context.WithCancel(trace.NewContext(context.Background(), tr))
	cancel()
	// Pre-cancelled context: the entry check fires before any span.
	if _, err := idx.FindAllCtx(ctx, []byte("ac"), 0); err == nil {
		t.Fatal("want error from cancelled context")
	}
	if len(tr.Records()) != 0 {
		t.Fatalf("pre-cancelled query recorded spans: %+v", tr.Records())
	}
}

// TestTracedRibExtribCounters verifies descents that leave the backbone
// record rib (and, when applicable, extrib) hop counts.
func TestTracedRibExtribCounters(t *testing.T) {
	// A pattern whose first occurrence is not a prefix forces rib hops.
	text := []byte("aaccacaacaggtaccaaccacaacagg")
	idx := Build(text)
	tr := trace.New()
	if _, ok := descendTracedOn(idx, []byte("gg"), tr); !ok {
		t.Fatal("gg should be found")
	}
	var ribHops int64
	for _, r := range tr.Records() {
		if r.Stage == trace.StageRibs {
			ribHops += r.RibHops
			if r.Nodes != 0 {
				t.Fatalf("ribs span must not carry Nodes: %+v", r)
			}
		}
		if r.Stage == trace.StageDescend && r.RibHops == 0 {
			t.Fatalf("descend span should count rib hops: %+v", r)
		}
	}
	if ribHops == 0 {
		t.Fatal("no rib hops recorded for an off-backbone descent")
	}
}
