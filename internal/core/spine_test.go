package core

import "testing"

// TestPaperExampleStructure checks the index for the paper's running
// example "aaccacaaca" against every edge and label visible in Figure 3
// and the construction walkthrough of §3.1.
func TestPaperExampleStructure(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	if idx.Len() != 10 {
		t.Fatalf("Len = %d, want 10", idx.Len())
	}

	wantLinks := []struct{ node, dest, lel int32 }{
		{1, 0, 0},  // first character links to root
		{2, 1, 1},  // CASE 1 walkthrough: vertebra found, LEL 1
		{3, 0, 0},  // CASE 3: chain exhausted at root
		{4, 3, 1},  // CASE 2: rib with sufficient PT, LEL 1
		{5, 1, 1},  // §2.2: LET-suffix of aacca is "a"
		{6, 3, 2},  // "ac" first ends at node 3
		{7, 5, 2},  // CASE 4: link to last family member, LEL 2
		{8, 2, 2},  // Figure 3: "link from Node 8 to Node 2 has an LEL of 2"
		{9, 3, 3},  // "aac" first ends at node 3
		{10, 7, 3}, // "aca" first ends at node 7
	}
	for _, w := range wantLinks {
		dest, lel := idx.Link(int(w.node))
		if dest != w.dest || lel != w.lel {
			t.Errorf("link(%d) = (%d, LEL %d), want (%d, LEL %d)", w.node, dest, lel, w.dest, w.lel)
		}
	}

	// Figure 3 ribs: 1->3 (c, PT 1), 0->3 (c, PT 0), 3->5 (a, PT 1),
	// 5->8 (a, PT 2).
	wantRibs := []struct {
		src int32
		rib Rib
	}{
		{1, Rib{CL: 'c', Dest: 3, PT: 1}},
		{0, Rib{CL: 'c', Dest: 3, PT: 0}},
		{3, Rib{CL: 'a', Dest: 5, PT: 1}},
		{5, Rib{CL: 'a', Dest: 8, PT: 2}},
	}
	for _, w := range wantRibs {
		r, ok := idx.ribAt(w.src, w.rib.CL)
		if !ok || r != w.rib {
			t.Errorf("rib at %d for %q = %+v (ok=%v), want %+v", w.src, w.rib.CL, r, ok, w.rib)
		}
	}

	// Figure 3 extrib chain 5 -> 7 -> 10 for parent rib (3, PT 1):
	// "the extrib from Node 5 to Node 7 has a PRT of 1 and PT of 2".
	x5, ok := idx.ExtribAt(5)
	if !ok || x5 != (Extrib{Dest: 7, PT: 2, PRT: 1, ParentSrc: 3}) {
		t.Errorf("extrib at 5 = %+v (ok=%v), want {Dest:7 PT:2 PRT:1 ParentSrc:3}", x5, ok)
	}
	x7, ok := idx.ExtribAt(7)
	if !ok || x7 != (Extrib{Dest: 10, PT: 3, PRT: 1, ParentSrc: 3}) {
		t.Errorf("extrib at 7 = %+v (ok=%v), want {Dest:10 PT:3 PRT:1 ParentSrc:3}", x7, ok)
	}

	st := idx.ComputeStats()
	if st.RibCount != 4 || st.ExtribCount != 2 {
		t.Errorf("rib/extrib counts = %d/%d, want 4/2", st.RibCount, st.ExtribCount)
	}
}

// TestPaperFalsePositiveRejected reproduces the §2.1/§4 example: "accaa"
// looks like a path in Figure 3 but the PT labels must reject it.
func TestPaperFalsePositiveRejected(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	if idx.Contains([]byte("accaa")) {
		t.Fatal(`Contains("accaa") = true; PT labelling failed to block the false positive`)
	}
	// The prefix "acca" is genuine and must still be found.
	if !idx.Contains([]byte("acca")) {
		t.Fatal(`Contains("acca") = false, want true`)
	}
}

// TestPaperSearchExample reproduces the §4 all-occurrences walkthrough:
// query "ac" on aaccacaaca fills the target node buffer with 3, 6, 9.
func TestPaperSearchExample(t *testing.T) {
	idx := Build([]byte("aaccacaaca"))
	end, ok := idx.EndNode([]byte("ac"))
	if !ok || end != 3 {
		t.Fatalf("EndNode(ac) = (%d, %v), want (3, true)", end, ok)
	}
	got := idx.FindAll([]byte("ac"))
	want := []int{1, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("FindAll(ac) = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("FindAll(ac) = %v, want %v", got, want)
		}
	}
}

func TestNodeCountEqualsLength(t *testing.T) {
	// §1.1: "the number of nodes is always equal to the string length"
	// (plus the root), in contrast to suffix trees' up-to-2n nodes.
	for _, s := range []string{"", "a", "aaaa", "abcabc", "aaccacaaca"} {
		idx := Build([]byte(s))
		if idx.Len() != len(s) {
			t.Errorf("Build(%q).Len() = %d, want %d", s, idx.Len(), len(s))
		}
		if got := len(idx.link); got != len(s)+1 {
			t.Errorf("Build(%q) has %d link slots, want %d", s, got, len(s)+1)
		}
	}
}

func TestEmptyIndex(t *testing.T) {
	idx := Build(nil)
	if !idx.Contains(nil) {
		t.Error("empty pattern not contained in empty index")
	}
	if idx.Contains([]byte("a")) {
		t.Error(`Contains("a") on empty index = true`)
	}
	if got := idx.Find([]byte("a")); got != -1 {
		t.Errorf("Find on empty index = %d, want -1", got)
	}
	if got := idx.FindAll(nil); len(got) != 1 || got[0] != 0 {
		t.Errorf("FindAll(empty) on empty index = %v, want [0]", got)
	}
}

func TestSingleAndRepeatedCharacter(t *testing.T) {
	idx := Build([]byte("aaaaaa"))
	if got := idx.FindAll([]byte("aa")); len(got) != 5 {
		t.Fatalf("FindAll(aa in a^6) = %v, want 5 overlapping occurrences", got)
	}
	if got := idx.Find([]byte("aaaaaa")); got != 0 {
		t.Fatalf("Find(full string) = %d, want 0", got)
	}
	if idx.Contains([]byte("aaaaaaa")) {
		t.Fatal("Contains(a^7) in a^6 = true")
	}
}

// TestLinkChainStrictlyDecreasingLEL checks the structural invariant the
// construction relies on for termination: LELs strictly decrease along any
// link chain, and links always point upstream.
func TestLinkChainStrictlyDecreasingLEL(t *testing.T) {
	for _, s := range testStrings() {
		idx := Build([]byte(s))
		for i := 1; i <= idx.Len(); i++ {
			dest, lel := idx.Link(i)
			if dest >= int32(i) {
				t.Fatalf("s=%q: link(%d)=%d not upstream", s, i, dest)
			}
			if dest == 0 {
				continue
			}
			_, destLEL := idx.Link(int(dest))
			if destLEL >= lel {
				t.Fatalf("s=%q: lel(link(%d))=%d >= lel(%d)=%d", s, i, destLEL, i, lel)
			}
		}
	}
}

// TestLELMatchesDefinition verifies lel(i) is the length of the longest
// suffix of s[:i] that also occurs ending strictly earlier, and link(i) is
// that suffix's first-occurrence end.
func TestLELMatchesDefinition(t *testing.T) {
	for _, s := range testStrings() {
		idx := Build([]byte(s))
		for i := 1; i <= len(s); i++ {
			wantLEL, wantEnd := 0, 0
			for l := i - 1; l >= 1; l-- {
				suf := s[i-l : i]
				if p := firstOccurrenceEnd(s[:i-1], suf); p >= 0 {
					wantLEL, wantEnd = l, p
					break
				}
			}
			dest, lel := idx.Link(i)
			if int(lel) != wantLEL || int(dest) != wantEnd {
				t.Fatalf("s=%q node %d: link=(%d, LEL %d), want (%d, LEL %d)",
					s, i, dest, lel, wantEnd, wantLEL)
			}
		}
	}
}

// firstOccurrenceEnd returns the end offset of the first occurrence of p
// fully inside s[:limitEnd+len(p)]... specifically the first end position
// e <= len(s) with s[e-len(p):e] == p, or -1. Here s is the prefix that may
// contain the earlier occurrence.
func firstOccurrenceEnd(s, p string) int {
	for e := len(p); e <= len(s); e++ {
		if s[e-len(p):e] == p {
			return e
		}
	}
	return -1
}

// TestRibPTExceedsSourceLEL checks the invariant the cursor's partial
// extension relies on: every rib/extrib family threshold exceeds its
// source node's LEL.
func TestRibPTExceedsSourceLEL(t *testing.T) {
	for _, s := range testStrings() {
		idx := Build([]byte(s))
		for i := 0; i <= idx.Len(); i++ {
			var srcLEL int32
			if i > 0 {
				_, srcLEL = idx.Link(i)
			}
			for _, r := range idx.Ribs(i) {
				if r.PT < srcLEL {
					t.Fatalf("s=%q: rib %d->%d PT %d < lel(src) %d", s, i, r.Dest, r.PT, srcLEL)
				}
			}
		}
	}
}

// TestExtribFamilyPTsIncrease checks that within one parent-rib family,
// extrib PTs strictly increase along the chain (first-fit == earliest
// occurrence relies on this).
func TestExtribFamilyPTsIncrease(t *testing.T) {
	for _, s := range testStrings() {
		idx := Build([]byte(s))
		for i := 0; i <= idx.Len(); i++ {
			for _, r := range idx.Ribs(i) {
				lastPT := r.PT
				node := r.Dest
				for {
					x, ok := idx.ExtribAt(int(node))
					if !ok {
						break
					}
					if x.ParentSrc == int32(i) && x.PRT == r.PT {
						if x.PT <= lastPT {
							t.Fatalf("s=%q: family (%d,PT %d): extrib PT %d <= previous %d",
								s, i, r.PT, x.PT, lastPT)
						}
						lastPT = x.PT
					}
					node = x.Dest
				}
			}
		}
	}
}

// TestOnlineEqualsOneShot verifies Append-at-a-time construction matches
// Build exactly.
func TestOnlineEqualsOneShot(t *testing.T) {
	s := []byte("ccacaacgtgttaaccacaacaggtacca")
	one := Build(s)
	inc := New()
	for _, c := range s {
		inc.Append(c)
	}
	assertStructurallyEqual(t, one, inc)
}

// TestPrefixPartitioning verifies §2.7: the index for a prefix is exactly
// the initial fragment of the index for the full string — identical links
// and LELs, and identical cross edges once edges landing beyond the prefix
// are discarded.
func TestPrefixPartitioning(t *testing.T) {
	s := []byte("aaccacaacaggtaccacaacag")
	full := Build(s)
	for k := 0; k <= len(s); k++ {
		pre := Build(s[:k])
		for i := 1; i <= k; i++ {
			fd, fl := full.Link(i)
			pd, pl := pre.Link(i)
			if fd != pd || fl != pl {
				t.Fatalf("k=%d node %d: full link (%d,%d) != prefix link (%d,%d)", k, i, fd, fl, pd, pl)
			}
		}
		for i := 0; i <= k; i++ {
			var fullRibs []Rib
			for _, r := range full.Ribs(i) {
				if int(r.Dest) <= k {
					fullRibs = append(fullRibs, r)
				}
			}
			preRibs := pre.Ribs(i)
			if len(fullRibs) != len(preRibs) {
				t.Fatalf("k=%d node %d: rib counts differ: full-restricted %v vs prefix %v", k, i, fullRibs, preRibs)
			}
			for j := range fullRibs {
				if fullRibs[j] != preRibs[j] {
					t.Fatalf("k=%d node %d rib %d: %+v != %+v", k, i, j, fullRibs[j], preRibs[j])
				}
			}
			fx, fok := full.ExtribAt(i)
			px, pok := pre.ExtribAt(i)
			if fok && int(fx.Dest) > k {
				fok = false
			}
			if fok != pok || (fok && fx != px) {
				t.Fatalf("k=%d node %d: extribs differ: full %+v(%v) vs prefix %+v(%v)", k, i, fx, fok, px, pok)
			}
		}
	}
}

func assertStructurallyEqual(t *testing.T, a, b *Index) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 1; i <= a.Len(); i++ {
		ad, al := a.Link(i)
		bd, bl := b.Link(i)
		if ad != bd || al != bl {
			t.Fatalf("node %d links differ: (%d,%d) vs (%d,%d)", i, ad, al, bd, bl)
		}
	}
	for i := 0; i <= a.Len(); i++ {
		ar, br := a.Ribs(i), b.Ribs(i)
		if len(ar) != len(br) {
			t.Fatalf("node %d rib counts differ", i)
		}
		for j := range ar {
			if ar[j] != br[j] {
				t.Fatalf("node %d rib %d differs: %+v vs %+v", i, j, ar[j], br[j])
			}
		}
		ax, aok := a.ExtribAt(i)
		bx, bok := b.ExtribAt(i)
		if aok != bok || ax != bx {
			t.Fatalf("node %d extribs differ: %+v(%v) vs %+v(%v)", i, ax, aok, bx, bok)
		}
	}
}

// testStrings returns a corpus of structurally adversarial strings:
// repetitive, periodic, Fibonacci, and the paper's example.
func testStrings() []string {
	fib := []string{"a", "ab"}
	for len(fib[len(fib)-1]) < 80 {
		fib = append(fib, fib[len(fib)-1]+fib[len(fib)-2])
	}
	return []string{
		"", "a", "aa", "ab", "aaa", "aba", "abab", "aabb",
		"aaaaaaaaaa", "abababab", "aabaabaab",
		"aaccacaaca",
		"mississippi",
		"abcabcabcabc",
		"aabcbabcaabcba",
		fib[len(fib)-1],
		"acgtacgtacacgtgtacgt",
		"ccacaacgtgttaaccacaacaggtacca",
	}
}
