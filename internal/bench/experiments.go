package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/match"
	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/seqgen"
	"github.com/spine-index/spine/internal/suffixtree"
)

// MatchThreshold is the minimum maximal-match length used by the matching
// experiments (Tables 5-7); the paper's §4 example uses a small threshold,
// production alignment tools use ~20.
const MatchThreshold = 20

// alphabetFor returns the alphabet of a suite sequence.
func alphabetFor(name string) *seq.Alphabet {
	for _, p := range seqgen.ProteinSuiteNames {
		if p == name {
			return seq.Protein
		}
	}
	return seq.DNA
}

// Table2NodeContent reproduces Table 2: the naive per-node space budget
// that motivates the §5 optimizations. It is a static audit, identical at
// every scale.
func Table2NodeContent() Table {
	rows := [][]string{
		{"CharacterLabel", "0.25", "1", "0.25"},
		{"VertebraDest", "4", "1", "4"},
		{"Link Dest", "4", "1", "4"},
		{"Link LEL", "4", "1", "4"},
		{"Rib Dest", "4", "3", "12"},
		{"Rib PT", "4", "3", "12"},
		{"ExtRib Dest", "4", "1", "4"},
		{"ExtRib PT", "4", "1", "4"},
		{"ExtRib PRT", "4", "1", "4"},
	}
	return Table{
		ID:     "table2",
		Title:  "Index node content, naive layout (bytes)",
		Header: []string{"Field", "Space(B)", "Count", "Total(B)"},
		Rows:   rows,
		Notes: []string{
			"worst-case naive node = 48.25 B; the optimized layout (table-size experiment) brings the average under 12 B/char",
		},
	}
}

// Table3LabelValues reproduces Table 3: maximum numeric label values per
// genome stay far below 2^16, enabling 2-byte label fields.
func Table3LabelValues(c *Corpus, names []string) (Table, error) {
	t := Table{
		ID:     "table3",
		Title:  "Maximum numeric label values",
		Header: []string{"Genome", "Length", "MaxLEL", "MaxPT", "MaxPRT", "Fits2B"},
	}
	for _, name := range names {
		s, err := c.Get(name)
		if err != nil {
			return Table{}, err
		}
		st := core.Build(s).ComputeStats()
		maxv := st.MaxLEL
		if st.MaxPT > maxv {
			maxv = st.MaxPT
		}
		t.Rows = append(t.Rows, []string{
			name, fmtCount(int64(st.Length)),
			fmt.Sprint(st.MaxLEL), fmt.Sprint(st.MaxPT), fmt.Sprint(st.MaxPRT),
			fmt.Sprint(maxv < 65535),
		})
	}
	if c.Divide() > 1 {
		t.Notes = append(t.Notes, fmt.Sprintf("sequence lengths scaled by 1/%d; label maxima grow slowly with length", c.Divide()))
	}
	return t, nil
}

// Table4RibDistribution reproduces Table 4: the percentage of nodes with
// 1..4 downstream edges, decaying with fan-out, totalling ~28-35%.
func Table4RibDistribution(c *Corpus, names []string) (Table, error) {
	t := Table{
		ID:     "table4",
		Title:  "Rib distribution across nodes (% of nodes by downstream-edge count)",
		Header: []string{"Genome", "1", "2", "3", "4", "Total"},
	}
	for _, name := range names {
		s, err := c.Get(name)
		if err != nil {
			return Table{}, err
		}
		st := core.Build(s).ComputeStats()
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.0f%%", st.FanoutPercent(1)),
			fmt.Sprintf("%.0f%%", st.FanoutPercent(2)),
			fmt.Sprintf("%.0f%%", st.FanoutPercent(3)),
			fmt.Sprintf("%.0f%%", st.FanoutPercent(4)),
			fmt.Sprintf("%.0f%%", st.NodesWithEdgesPercent()),
		})
	}
	return t, nil
}

// Fig6ConstructInMemory reproduces Figure 6: in-memory construction times
// for ST and SPINE, including the memory-budget result (ST exhausts the
// paper's 1 GB on HC19 under its ~17 B/char model while SPINE at
// <12 B/char fits; SPINE handles ~30% longer strings per budget).
func Fig6ConstructInMemory(c *Corpus, names []string) (Table, error) {
	t := Table{
		ID:     "fig6",
		Title:  "Index construction times (in memory)",
		Header: []string{"Genome", "Length", "ST build", "SPINE build", "ST model mem", "SPINE mem", "ST fits 1GB?"},
	}
	// The paper's machine had 1 GB; scale the budget with the corpus. The
	// ST footprint is its ~17 B/char index plus the retained text plus
	// allocator overhead (~20 B/char total): at full scale that puts HC19
	// (57.5M x 20 = 1.15 GB) — and only HC19 — past the budget, the
	// paper's OOM result.
	budget := int64(1<<30) / int64(c.Divide())
	const stTotalBytesPerChar = suffixtree.ModelBytesPerChar + 3.0
	for _, name := range names {
		s, err := c.Get(name)
		if err != nil {
			return Table{}, err
		}
		stModel := int64(float64(len(s)) * stTotalBytesPerChar)
		stFits := stModel <= budget

		stBuild := "OOM(model)"
		if stFits {
			start := time.Now()
			if _, err := suffixtree.Build(s, 0); err != nil {
				return Table{}, err
			}
			stBuild = fmtDuration(time.Since(start))
		}
		start := time.Now()
		idx := core.Build(s)
		spineDur := time.Since(start)
		comp, err := core.Freeze(idx, alphabetFor(name))
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			name, fmtCount(int64(len(s))),
			stBuild, fmtDuration(spineDur),
			fmtBytes(stModel), fmtBytes(comp.SizeBytes()),
			fmt.Sprint(stFits),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("memory budget scaled to %s (paper: 1 GB at full scale); ST modelled at %.0f B/char index + text + overhead, SPINE measured",
			fmtBytes(budget), suffixtree.ModelBytesPerChar),
	)
	return t, nil
}

// MatchPair names a (data, query) experiment pair.
type MatchPair struct{ Data, Query string }

// homologize implants mutated fragments of data into query, emulating the
// conserved homologous segments real genome pairs share (independent
// synthetic sequences would otherwise share no long exact matches, unlike
// the paper's real genome pairs). About 3% of the query becomes
// data-derived segments of 100-1000 characters carrying 3% point
// mutations. Deterministic per pair.
func homologize(data, query []byte, seed int64) []byte {
	if len(data) == 0 || len(query) == 0 {
		return query
	}
	rng := rand.New(rand.NewSource(seed))
	out := append([]byte(nil), query...)
	letters := distinctLetters(data)
	budget := len(out) * 3 / 100
	for budget > 0 {
		segLen := 100 + rng.Intn(900)
		if segLen > len(data) {
			segLen = len(data)
		}
		if segLen > len(out) {
			segLen = len(out)
		}
		src := rng.Intn(len(data) - segLen + 1)
		dst := rng.Intn(len(out) - segLen + 1)
		for i := 0; i < segLen; i++ {
			b := data[src+i]
			if rng.Float64() < 0.03 {
				b = letters[rng.Intn(len(letters))]
			}
			out[dst+i] = b
		}
		budget -= segLen
	}
	return out
}

func distinctLetters(s []byte) []byte {
	seen := [256]bool{}
	var out []byte
	for _, b := range s {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// Table5Pairs are the paper's Table 5 genome combinations.
var Table5Pairs = []MatchPair{
	{"eco", "cel"}, {"cel", "hc21"}, {"hc21", "cel"}, {"hc21", "hc19"}, {"hc19", "hc21"},
}

// Table6Pairs are the paper's Table 6 genome combinations.
var Table6Pairs = []MatchPair{
	{"cel", "eco"}, {"hc21", "eco"}, {"hc21", "cel"},
}

// Table5MatchInMemory reproduces Table 5: time to find all maximal
// matching substrings (including repetitions) for genome pairs, ST vs
// SPINE; the paper reports SPINE ~30% faster.
func Table5MatchInMemory(c *Corpus, pairs []MatchPair) (Table, error) {
	t := Table{
		ID:     "table5",
		Title:  fmt.Sprintf("Substring matching times, threshold %d (in memory)", MatchThreshold),
		Header: []string{"Data", "Query", "ST", "SPINE", "SPINE/ST", "Pairs"},
	}
	for _, p := range pairs {
		data, err := c.Get(p.Data)
		if err != nil {
			return Table{}, err
		}
		query, err := c.Get(p.Query)
		if err != nil {
			return Table{}, err
		}
		query = homologize(data, query, int64(len(data)+len(query)))
		st, err := suffixtree.Build(data, 0)
		if err != nil {
			return Table{}, err
		}
		stRep, err := match.MaximalMatches(match.NewTreeEngine(st), data, query, MatchThreshold)
		if err != nil {
			return Table{}, err
		}
		idx := core.Build(data)
		spRep, err := match.MaximalMatches(match.NewSpineEngine(idx), data, query, MatchThreshold)
		if err != nil {
			return Table{}, err
		}
		ratio := float64(spRep.Elapsed) / float64(stRep.Elapsed)
		t.Rows = append(t.Rows, []string{
			p.Data, p.Query,
			fmtDuration(stRep.Elapsed), fmtDuration(spRep.Elapsed),
			fmt.Sprintf("%.2f", ratio),
			fmtCount(int64(spRep.Pairs)),
		})
	}
	t.Notes = append(t.Notes, "paper shape: SPINE ~0.6-0.8x of ST")
	return t, nil
}

// Table6NodesChecked reproduces Table 6: nodes examined during matching,
// in thousands — SPINE's set-basis processing examines far fewer.
func Table6NodesChecked(c *Corpus, pairs []MatchPair) (Table, error) {
	t := Table{
		ID:     "table6",
		Title:  "Number of nodes checked during matching (in 1000s)",
		Header: []string{"Data", "Query", "ST", "SPINE", "SPINE/ST"},
	}
	for _, p := range pairs {
		data, err := c.Get(p.Data)
		if err != nil {
			return Table{}, err
		}
		query, err := c.Get(p.Query)
		if err != nil {
			return Table{}, err
		}
		query = homologize(data, query, int64(len(data)+len(query)))
		st, err := suffixtree.Build(data, 0)
		if err != nil {
			return Table{}, err
		}
		te := match.NewTreeEngine(st)
		if _, err := match.MaximalMatches(te, data, query, MatchThreshold); err != nil {
			return Table{}, err
		}
		se := match.NewSpineEngine(core.Build(data))
		if _, err := match.MaximalMatches(se, data, query, MatchThreshold); err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			p.Data, p.Query,
			fmt.Sprintf("%d", te.Checked()/1000),
			fmt.Sprintf("%d", se.Checked()/1000),
			fmt.Sprintf("%.2f", float64(se.Checked())/float64(te.Checked())),
		})
	}
	t.Notes = append(t.Notes, "paper shape: SPINE checks ~0.55-0.62x of ST's nodes")
	return t, nil
}

// Fig8LinkDistribution reproduces Figure 8: the percentage of links whose
// destination falls in each backbone segment — top-heavy and decaying.
func Fig8LinkDistribution(c *Corpus, names []string, buckets int) (Table, error) {
	t := Table{
		ID:     "fig8",
		Title:  fmt.Sprintf("Link distribution over the backbone (%d equal segments, %% of links)", buckets),
		Header: append([]string{"Genome"}, segmentHeaders(buckets)...),
	}
	for _, name := range names {
		s, err := c.Get(name)
		if err != nil {
			return Table{}, err
		}
		h := core.Build(s).LinkHistogram(buckets)
		row := []string{name}
		for _, v := range h {
			row = append(row, fmt.Sprintf("%.1f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper shape: monotone decay from the head segment; motivates top-retention buffering")
	return t, nil
}

func segmentHeaders(buckets int) []string {
	out := make([]string, buckets)
	for i := range out {
		out[i] = fmt.Sprintf("s%d", i+1)
	}
	return out
}

// BytesPerChar reproduces the §5/§8 space claims: compact SPINE below 12
// B/char versus ~17 B/char for an engineered suffix tree (and the ~6
// B/char suffix-array point from related work, measured on our own
// implementation).
func BytesPerChar(c *Corpus, names []string) (Table, error) {
	t := Table{
		ID:     "size",
		Title:  "Index size (bytes per indexed character)",
		Header: []string{"Genome", "SPINE compact", "ST model", "ST (Go impl)", "SuffixArray"},
	}
	for _, name := range names {
		s, err := c.Get(name)
		if err != nil {
			return Table{}, err
		}
		idx := core.Build(s)
		comp, err := core.Freeze(idx, alphabetFor(name))
		if err != nil {
			return Table{}, err
		}
		st, err := suffixtree.Build(s, 0)
		if err != nil {
			return Table{}, err
		}
		saBPC := 4.0 + 1.0 // int32 array + text byte
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.2f", comp.BytesPerChar()),
			fmt.Sprintf("%.1f", suffixtree.ModelBytesPerChar),
			fmt.Sprintf("%.1f", st.BytesPerChar()),
			fmt.Sprintf("%.1f", saBPC),
		})
	}
	t.Notes = append(t.Notes, "paper shape: SPINE < 12 B/char vs ~17 B/char for engineered suffix trees")
	return t, nil
}

// Linearity reproduces the §6.1 scaling claim: construction time grows
// linearly with string length ("the indexes take less than two seconds
// construction time per Mbp"). One genome family is built at a geometric
// ladder of lengths; per-Mbp cost must stay flat.
func Linearity(c *Corpus, name string, steps int) (Table, error) {
	t := Table{
		ID:     "linear",
		Title:  "Construction-time linearity (per-Mbp cost across lengths)",
		Header: []string{"Length", "SPINE build", "SPINE s/Mbp", "ST build", "ST s/Mbp"},
	}
	full, err := c.Get(name)
	if err != nil {
		return Table{}, err
	}
	if steps < 2 {
		steps = 2
	}
	for i := steps; i >= 1; i-- {
		n := len(full) >> uint(steps-i)
		if n < 1000 {
			continue
		}
		s := full[:n]
		start := time.Now()
		core.Build(s)
		spineDur := time.Since(start)
		start = time.Now()
		if _, err := suffixtree.Build(s, 0); err != nil {
			return Table{}, err
		}
		stDur := time.Since(start)
		perMbp := func(d time.Duration) string {
			return fmt.Sprintf("%.3f", d.Seconds()/(float64(n)/1e6))
		}
		t.Rows = append(t.Rows, []string{
			fmtCount(int64(n)),
			fmtDuration(spineDur), perMbp(spineDur),
			fmtDuration(stDur), perMbp(stDur),
		})
	}
	t.Notes = append(t.Notes, "paper claim (§6.1): <2 s/Mbp on 2004 hardware; linear scaling = flat s/Mbp column")
	return t, nil
}

// ProteinSuite reproduces the §5.2 observations on proteomes: labels stay
// small, under ~30% of nodes carry downstream edges, and construction
// scales linearly.
func ProteinSuite(c *Corpus, names []string) (Table, error) {
	t := Table{
		ID:     "protein",
		Title:  "Protein-string behaviour (§5.2)",
		Header: []string{"Proteome", "Length", "Build", "ns/char", "Search µs/q", "MaxLabel", "EdgeNodes%", "B/char"},
	}
	for _, name := range names {
		s, err := c.Get(name)
		if err != nil {
			return Table{}, err
		}
		start := time.Now()
		idx := core.Build(s)
		dur := time.Since(start)
		st := idx.ComputeStats()
		comp, err := core.Freeze(idx, seq.Protein)
		if err != nil {
			return Table{}, err
		}
		maxv := st.MaxLEL
		if st.MaxPT > maxv {
			maxv = st.MaxPT
		}
		perChar := float64(dur.Nanoseconds()) / float64(len(s))
		// §5.2: "the search times are independent of the data string
		// length" — measure point queries sampled from the text.
		const numQ = 200
		start = time.Now()
		for q := 0; q < numQ; q++ {
			off := (q * 7919) % (len(s) - 24)
			idx.Find(s[off : off+24])
		}
		searchPerQ := float64(time.Since(start).Microseconds()) / numQ
		t.Rows = append(t.Rows, []string{
			name, fmtCount(int64(len(s))), fmtDuration(dur),
			fmt.Sprintf("%.0f", perChar),
			fmt.Sprintf("%.2f", searchPerQ),
			fmt.Sprint(maxv),
			fmt.Sprintf("%.0f%%", st.NodesWithEdgesPercent()),
			fmt.Sprintf("%.2f", comp.BytesPerChar()),
		})
	}
	t.Notes = append(t.Notes, "paper shape: linear scaling (flat ns/char), length-independent search, <30% edge nodes")
	return t, nil
}
