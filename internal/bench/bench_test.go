package bench

import (
	"strings"
	"testing"

	"github.com/spine-index/spine/internal/pager"
	"github.com/spine-index/spine/internal/seqgen"
)

// A small corpus keeps harness tests fast while exercising every code
// path; table shapes are asserted, absolute numbers are not.
func testCorpus() *Corpus { return NewCorpus(400) }

func TestTableFormatting(t *testing.T) {
	tbl := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"A", "LongHeader"},
		Rows:   [][]string{{"aaaa", "b"}},
		Notes:  []string{"a note"},
	}
	s := tbl.String()
	for _, want := range []string{"== x: demo ==", "LongHeader", "aaaa", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted table missing %q:\n%s", want, s)
		}
	}
}

func TestCorpusCachesAndScales(t *testing.T) {
	c := NewCorpus(1000)
	a := c.MustGet("eco")
	b := c.MustGet("eco")
	if &a[0] != &b[0] {
		t.Error("corpus did not cache")
	}
	if len(a) != 3500 {
		t.Errorf("eco/1000 length = %d, want 3500", len(a))
	}
	if _, err := c.Get("nope"); err == nil {
		t.Error("unknown sequence accepted")
	}
}

func TestTable2Static(t *testing.T) {
	tbl := Table2NodeContent()
	if len(tbl.Rows) != 9 {
		t.Fatalf("Table 2 rows = %d, want 9", len(tbl.Rows))
	}
	if tbl.Rows[0][3] != "0.25" || tbl.Rows[4][3] != "12" {
		t.Fatalf("Table 2 totals wrong: %v", tbl.Rows)
	}
}

func TestTable3Shape(t *testing.T) {
	tbl, err := Table3LabelValues(testCorpus(), []string{"eco", "cel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[5] != "true" {
			t.Fatalf("labels exceeded 2 bytes at test scale: %v", row)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	tbl, err := Table4RibDistribution(testCorpus(), []string{"eco"})
	if err != nil {
		t.Fatal(err)
	}
	row := tbl.Rows[0]
	// Decaying percentages: col1 >= col3.
	if row[1] < row[3] && len(row[1]) == len(row[3]) {
		t.Fatalf("fan-out percentages not decaying: %v", row)
	}
}

func TestFig6Shape(t *testing.T) {
	tbl, err := Fig6ConstructInMemory(testCorpus(), seqgen.SuiteNames)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The budget scales with the corpus, so the paper's shape must hold at
	// any scale: hc19 busts the ST model budget, eco fits.
	if tbl.Rows[0][6] != "true" {
		t.Fatalf("eco should fit the scaled budget: %v", tbl.Rows[0])
	}
	if tbl.Rows[3][6] != "false" || tbl.Rows[3][2] != "OOM(model)" {
		t.Fatalf("hc19 should exhaust the ST model budget: %v", tbl.Rows[3])
	}
}

func TestTable5And6Shape(t *testing.T) {
	c := testCorpus()
	pairs := []MatchPair{{"eco", "cel"}}
	t5, err := Table5MatchInMemory(c, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 1 {
		t.Fatalf("table5 rows = %d", len(t5.Rows))
	}
	t6, err := Table6NodesChecked(c, pairs)
	if err != nil {
		t.Fatal(err)
	}
	ratio := t6.Rows[0][4]
	if !strings.HasPrefix(ratio, "0.") {
		t.Fatalf("SPINE/ST nodes-checked ratio %s not < 1 (Table 6 shape)", ratio)
	}
}

func TestFig8Shape(t *testing.T) {
	tbl, err := Fig8LinkDistribution(testCorpus(), []string{"eco"}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows[0]) != 7 {
		t.Fatalf("row = %v", tbl.Rows[0])
	}
}

func TestBytesPerCharShape(t *testing.T) {
	tbl, err := BytesPerChar(testCorpus(), []string{"eco"})
	if err != nil {
		t.Fatal(err)
	}
	bpc := tbl.Rows[0][1]
	if bpc >= "12" && len(bpc) >= 2 && bpc[1] != '.' {
		t.Fatalf("compact SPINE B/char = %s, want < 12", bpc)
	}
}

func TestProteinSuiteShape(t *testing.T) {
	tbl, err := ProteinSuite(testCorpus(), []string{"ecoli-res"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFig7AndTable7RunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("disk experiments skipped in -short")
	}
	c := NewCorpus(2000)
	cfg := DiskConfig{Policy: pager.TopRetention}
	f7, err := Fig7ConstructOnDisk(c, []string{"eco"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Rows) != 1 {
		t.Fatalf("fig7 rows = %d", len(f7.Rows))
	}
	t7, err := Table7MatchOnDisk(c, []MatchPair{{"cel", "eco"}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t7.Rows) != 1 {
		t.Fatalf("table7 rows = %d", len(t7.Rows))
	}
}

func TestBufferPolicyAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("disk experiments skipped in -short")
	}
	tbl, err := BufferPolicyAblation(NewCorpus(2000), "eco")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFilterComparisonShape(t *testing.T) {
	tbl, err := FilterComparison(testCorpus(), "eco")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestLinearityShape(t *testing.T) {
	tbl, err := Linearity(testCorpus(), "cel", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}
