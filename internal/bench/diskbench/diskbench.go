// Package diskbench benchmarks serving a Compact index from its disk
// image. It lives in its own package (not internal/bench) because it
// exercises the public spine.OpenMapped entry point, and the root
// package's own benchmarks import internal/bench — importing spine
// from there would be a cycle.
package diskbench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/spine-index/spine"
	"github.com/spine-index/spine/internal/bench"
	"github.com/spine-index/spine/internal/mmap"
)

// Cold-open and streaming-scan comparison: the same on-disk v3 image
// opened three ways — full heap deserialization (LoadCompact), the
// zero-copy mmap path, and the portable io.ReaderAt fallback — then a
// full-backbone occurrence sweep under a deliberately small readahead
// range-cache budget, so the run behaves like an index larger than the
// memory we allow it. Every timed open is followed by a differential
// query pass against the heap reference, so the speedups never come
// from wrong answers.

// Config drives RunDiskBench over an in-process corpus build.
type Config struct {
	Sequence   string // corpus sequence name, e.g. "eco"
	Rounds     int    // cold opens per mode; <= 0 = 3
	Patterns   int    // cross-check patterns; <= 0 = 32
	PatternLen int    // cross-check pattern length; <= 0 = 12
	// RangeCacheBytes is the readahead range-cache budget for the sweep
	// (kept intentionally small so the sweep cycles the cache the way a
	// larger-than-RAM index would); <= 0 = 1 MiB.
	RangeCacheBytes int64
	Seed            int64 // pattern seed; 0 = 1
	// Dir is the working directory for the index image (a temp dir
	// when empty; removed afterwards).
	Dir string
}

// OpenStats aggregates one mode's cold-open rounds.
type OpenStats struct {
	Rounds  int   `json:"rounds"`
	MeanUs  int64 `json:"meanUs"`
	P50Us   int64 `json:"p50Us"`
	MaxUs   int64 `json:"maxUs"`
	TotalUs int64 `json:"totalUs"`
}

// Report is the machine-readable comparison (committed as
// BENCH_disk.json).
type Report struct {
	Sequence  string `json:"sequence"`
	Chars     int    `json:"chars"`
	FileBytes int64  `json:"fileBytes"`
	BuildUs   int64  `json:"buildUs"`

	// Cold-open latency per mode. Mmap is omitted when the build or
	// platform has no mmap support (e.g. -tags nommap).
	HeapOpen     OpenStats  `json:"heapOpen"`
	MmapOpen     *OpenStats `json:"mmapOpen,omitempty"`
	ReaderAtOpen OpenStats  `json:"readerAtOpen"`
	// SpeedupMmap is heap mean open time over mmap mean open time.
	SpeedupMmap     float64 `json:"speedupMmap,omitempty"`
	SpeedupReaderAt float64 `json:"speedupReaderAt"`

	// CrossChecked counts patterns whose FindAll positions were compared
	// element-wise between the mapped and heap indexes (all must agree
	// or RunDiskBench fails).
	CrossChecked int `json:"crossChecked"`

	// Full-backbone occurrence sweep under the small range cache.
	SweepMode        string          `json:"sweepMode"`
	SweepOccurrences int64           `json:"sweepOccurrences"`
	SweepUs          int64           `json:"sweepUs"`
	SweepRangeCache  int64           `json:"sweepRangeCacheBytes"`
	SweepDisk        spine.DiskStats `json:"sweepDisk"`
}

// RunDiskBench builds the sequence, saves its compact image, measures
// cold opens in every available mode, cross-checks mapped answers
// against the heap reference, and drives the budgeted sweep. Returns
// the human table plus the JSON report.
func RunDiskBench(c *bench.Corpus, cfg Config) (bench.Table, Report, error) {
	text, err := c.Get(cfg.Sequence)
	if err != nil {
		return bench.Table{}, Report{}, err
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	nPats := cfg.Patterns
	if nPats <= 0 {
		nPats = 32
	}
	plen := cfg.PatternLen
	if plen <= 0 {
		plen = 12
	}
	budget := cfg.RangeCacheBytes
	if budget <= 0 {
		budget = 1 << 20
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "spinebench-disk")
		if err != nil {
			return bench.Table{}, Report{}, err
		}
		defer os.RemoveAll(d)
		dir = d
	}

	rep := Report{Sequence: cfg.Sequence, Chars: len(text), SweepRangeCache: budget}

	// Build once, in memory; this heap instance is the differential
	// reference for every mapped answer below.
	buildStart := time.Now()
	ref, err := spine.Build(text).Compact(alphabetFor(text))
	if err != nil {
		return bench.Table{}, Report{}, fmt.Errorf("diskbench: build: %w", err)
	}
	rep.BuildUs = time.Since(buildStart).Microseconds()

	path := filepath.Join(dir, cfg.Sequence+".spine")
	f, err := os.Create(path)
	if err != nil {
		return bench.Table{}, Report{}, err
	}
	if err := ref.Save(f); err != nil {
		f.Close()
		return bench.Table{}, Report{}, fmt.Errorf("diskbench: save: %w", err)
	}
	if err := f.Close(); err != nil {
		return bench.Table{}, Report{}, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return bench.Table{}, Report{}, err
	}
	rep.FileBytes = st.Size()

	// Cold-open rounds. The OS page cache stays warm across rounds for
	// every mode alike, so the difference isolates what each open path
	// does with the bytes: full parse+copy (heap), aligned copy
	// (readerat), or mapping only (mmap).
	rep.HeapOpen, err = timeOpens(rounds, func() (func() error, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		x, err := spine.LoadCompact(f)
		if err != nil {
			return nil, err
		}
		_ = x
		return func() error { return nil }, nil
	})
	if err != nil {
		return bench.Table{}, rep, fmt.Errorf("diskbench: heap open: %w", err)
	}
	rep.ReaderAtOpen, err = timeOpens(rounds, func() (func() error, error) {
		mc, err := spine.OpenMapped(path, spine.MappedOptions{NoMmap: true})
		if err != nil {
			return nil, err
		}
		return mc.Close, nil
	})
	if err != nil {
		return bench.Table{}, rep, fmt.Errorf("diskbench: readerat open: %w", err)
	}
	if rep.ReaderAtOpen.MeanUs > 0 {
		rep.SpeedupReaderAt = float64(rep.HeapOpen.MeanUs) / float64(rep.ReaderAtOpen.MeanUs)
	}
	if mmap.Supported() {
		ms, err := timeOpens(rounds, func() (func() error, error) {
			mc, err := spine.OpenMapped(path, spine.MappedOptions{})
			if err != nil {
				return nil, err
			}
			if mc.Mode() != "mmap" {
				mc.Close()
				return nil, fmt.Errorf("expected mmap mode, got %q", mc.Mode())
			}
			return mc.Close, nil
		})
		if err != nil {
			return bench.Table{}, rep, fmt.Errorf("diskbench: mmap open: %w", err)
		}
		rep.MmapOpen = &ms
		if ms.MeanUs > 0 {
			rep.SpeedupMmap = float64(rep.HeapOpen.MeanUs) / float64(ms.MeanUs)
		}
	}

	// Differential pass: mapped answers must match the heap reference
	// element-wise before any timing is trusted.
	mc, err := spine.OpenMapped(path, spine.MappedOptions{RangeCacheBytes: budget})
	if err != nil {
		return bench.Table{}, rep, err
	}
	defer mc.Close()
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	for i := 0; i < nPats; i++ {
		p := samplePattern(rng, text, plen)
		got, err := mc.Query(ctx, p, spine.QueryOptions{Kind: spine.KindFindAll})
		if err != nil {
			return bench.Table{}, rep, fmt.Errorf("diskbench: mapped FindAll(%q): %w", p, err)
		}
		want := ref.FindAll(p)
		if len(got.Positions) != len(want) {
			return bench.Table{}, rep, fmt.Errorf("diskbench: FindAll(%q): mapped %d positions, heap %d", p, len(got.Positions), len(want))
		}
		for j := range want {
			if got.Positions[j] != want[j] {
				return bench.Table{}, rep, fmt.Errorf("diskbench: FindAll(%q): position %d differs", p, j)
			}
		}
		rep.CrossChecked++
	}

	// Full-backbone sweep: counting every occurrence of a single letter
	// touches the occurrence tables end to end, so with the small range
	// cache the readahead layer must stream (issue, hit, evict) rather
	// than assume residency.
	sweepPat := text[:1]
	sweepStart := time.Now()
	res, err := mc.Query(ctx, sweepPat, spine.QueryOptions{Kind: spine.KindCount})
	if err != nil {
		return bench.Table{}, rep, fmt.Errorf("diskbench: sweep: %w", err)
	}
	rep.SweepUs = time.Since(sweepStart).Microseconds()
	rep.SweepOccurrences = int64(res.Count)
	rep.SweepMode = mc.Mode()
	rep.SweepDisk = mc.DiskStats()
	if n := int64(bytes.Count(text, sweepPat)); rep.SweepOccurrences != n {
		return bench.Table{}, rep, fmt.Errorf("diskbench: sweep count %d, text has %d", rep.SweepOccurrences, n)
	}

	return buildTable(rep), rep, nil
}

// timeOpens runs one cold open per round, closing between rounds.
func timeOpens(rounds int, open func() (func() error, error)) (OpenStats, error) {
	s := OpenStats{Rounds: rounds}
	durs := make([]int64, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		closeFn, err := open()
		d := time.Since(start).Microseconds()
		if err != nil {
			return s, err
		}
		if err := closeFn(); err != nil {
			return s, err
		}
		durs = append(durs, d)
		s.TotalUs += d
		if d > s.MaxUs {
			s.MaxUs = d
		}
	}
	s.MeanUs = s.TotalUs / int64(rounds)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	s.P50Us = durs[len(durs)/2]
	return s, nil
}

// samplePattern cuts a random present substring out of the text.
func samplePattern(rng *rand.Rand, text []byte, plen int) []byte {
	if plen >= len(text) {
		plen = len(text) / 2
	}
	off := rng.Intn(len(text) - plen)
	return text[off : off+plen]
}

// alphabetFor picks the compaction alphabet by probing the text's
// letters: DNA when everything fits, protein otherwise.
func alphabetFor(text []byte) *spine.Alphabet {
	for _, c := range text {
		switch c {
		case 'a', 'c', 'g', 't':
		default:
			return spine.Protein
		}
	}
	return spine.DNA
}

// buildTable renders the report as the human comparison table.
func buildTable(rep Report) bench.Table {
	t := bench.Table{
		ID:     "disk",
		Title:  fmt.Sprintf("cold open + streamed sweep, %s (%d chars, %.1f MiB image)", rep.Sequence, rep.Chars, float64(rep.FileBytes)/(1<<20)),
		Header: []string{"open mode", "rounds", "mean", "p50", "max", "speedup"},
	}
	row := func(name string, s OpenStats, speedup float64) {
		sp := "1.0x"
		if speedup > 0 {
			sp = fmt.Sprintf("%.1fx", speedup)
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(s.Rounds),
			fmtUs(s.MeanUs), fmtUs(s.P50Us), fmtUs(s.MaxUs), sp,
		})
	}
	row("heap (LoadCompact)", rep.HeapOpen, 0)
	row("readerat (fallback)", rep.ReaderAtOpen, rep.SpeedupReaderAt)
	if rep.MmapOpen != nil {
		row("mmap (zero-copy)", *rep.MmapOpen, rep.SpeedupMmap)
	}
	d := rep.SweepDisk
	t.Notes = append(t.Notes,
		fmt.Sprintf("cross-checked %d FindAll pattern sets against the heap reference", rep.CrossChecked),
		fmt.Sprintf("sweep (%s): %d occurrences in %s, range cache %d B", rep.SweepMode, rep.SweepOccurrences, fmtUs(rep.SweepUs), rep.SweepRangeCache),
		fmt.Sprintf("readahead: issued %d, hits %d, bytes %d, evicted %d", d.ReadaheadIssued, d.ReadaheadHits, d.ReadaheadBytes, d.RangeCacheEvicted),
	)
	return t
}

func fmtUs(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.1fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dus", us)
	}
}
