package bench

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/spine-index/spine/internal/telemetry"
)

func TestSamplePatterns(t *testing.T) {
	text := []byte("abcdefghij")
	ps := SamplePatterns(text, 3, 4)
	if len(ps) != 3 {
		t.Fatalf("got %d patterns", len(ps))
	}
	want := []string{"abcd", "defg", "ghij"}
	for i, p := range ps {
		if string(p) != want[i] {
			t.Errorf("pattern %d = %q, want %q", i, p, want[i])
		}
		if !bytes.Contains(text, p) {
			t.Errorf("pattern %q not in text", p)
		}
	}
	if SamplePatterns(text, 3, 0) != nil || SamplePatterns(text, 0, 4) != nil ||
		SamplePatterns(text, 1, 11) != nil {
		t.Fatal("degenerate inputs should return nil")
	}
}

func TestExpandMix(t *testing.T) {
	sched, err := expandMix([]MixEntry{{"contains", 2}, {"count", 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(sched, ","); got != "contains,contains,count" {
		t.Fatalf("schedule = %s", got)
	}
	if _, err := expandMix([]MixEntry{{"bogus", 1}}); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if _, err := expandMix([]MixEntry{{"find", 0}}); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestRunLoad(t *testing.T) {
	var contains, findall, errs atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/contains":
			contains.Add(1)
			w.Write([]byte(`{"contains":true}`))
		case "/findall":
			findall.Add(1)
			if r.URL.Query().Get("limit") != "7" {
				t.Errorf("findall limit = %q, want 7", r.URL.Query().Get("limit"))
			}
			w.Write([]byte(`{"count":0,"positions":[],"truncated":false}`))
		case "/count":
			errs.Add(1)
			http.Error(w, "boom", http.StatusInternalServerError)
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	defer ts.Close()

	table, results, err := RunLoad(LoadConfig{
		BaseURL:      ts.URL,
		Patterns:     [][]byte{[]byte("ac"), []byte("gt")},
		Mix:          []MixEntry{{"contains", 2}, {"findall", 1}, {"count", 1}},
		Requests:     40,
		Concurrency:  4,
		FindAllLimit: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if contains.Load() != 20 || findall.Load() != 10 || errs.Load() != 10 {
		t.Fatalf("request split = %d/%d/%d, want 20/10/10",
			contains.Load(), findall.Load(), errs.Load())
	}
	byEp := map[string]LoadResult{}
	for _, r := range results {
		byEp[r.Endpoint] = r
	}
	if r := byEp["contains"]; r.Requests != 20 || r.Errors != 0 || r.Latency.Count != 20 {
		t.Fatalf("contains result = %+v", r)
	}
	if r := byEp["count"]; r.Requests != 10 || r.Errors != 10 {
		t.Fatalf("count result = %+v", r)
	}
	if len(table.Rows) != 3 || len(table.Notes) == 0 {
		t.Fatalf("table shape: %d rows, %d notes", len(table.Rows), len(table.Notes))
	}
	out := table.String()
	if !strings.Contains(out, "p99(µs)") || !strings.Contains(out, "contains") {
		t.Fatalf("rendered table missing columns:\n%s", out)
	}
}

func TestRunLoadValidation(t *testing.T) {
	base := LoadConfig{BaseURL: "http://x", Patterns: [][]byte{[]byte("a")}, Requests: 1}
	bad := []LoadConfig{
		{Patterns: base.Patterns, Requests: 1},         // no URL
		{BaseURL: "http://x", Requests: 1},             // no patterns
		{BaseURL: "http://x", Patterns: base.Patterns}, // no requests
		{BaseURL: "http://x", Patterns: base.Patterns, Requests: 1, Mix: []MixEntry{{"nope", 1}}},
	}
	for i, cfg := range bad {
		if _, _, err := RunLoad(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestQueryLatencyExperiment(t *testing.T) {
	c := NewCorpus(4000) // ~875-char eco: fast but structured
	table, err := QueryLatency(c, "eco", []int{4, 16}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 { // 2 layouts x 2 pattern lengths
		t.Fatalf("rows = %d, want 4", len(table.Rows))
	}
	for _, row := range table.Rows {
		if row[6] == "0" {
			t.Fatalf("mean nodes checked is zero: %v", row)
		}
	}
}

func TestWriteLoadPrometheus(t *testing.T) {
	var lat telemetry.Histogram
	lat.Observe(120)
	lat.Observe(4500)
	results := []LoadResult{
		{Endpoint: "contains", Requests: 10, Errors: 1, Rejected: 2, Latency: lat.Snapshot()},
		{Endpoint: "findall", Requests: 5},
	}
	var buf bytes.Buffer
	if err := WriteLoadPrometheus(&buf, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`spinebench_requests_total{endpoint="contains"} 10`,
		`spinebench_errors_total{endpoint="contains"} 1`,
		`spinebench_rejected_total{endpoint="contains"} 2`,
		`spinebench_requests_total{endpoint="findall"} 5`,
		`spinebench_request_duration_seconds_count{endpoint="contains"} 2`,
		`le="+Inf"`,
		"# TYPE spinebench_request_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
