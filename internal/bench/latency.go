package bench

import (
	"context"
	"fmt"

	"time"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/telemetry"
)

// QueryLatency profiles in-process query latency on both index layouts
// across a ladder of pattern lengths, using the same log2 histograms the
// server exports from /metrics. This is the serving-side companion to
// the paper's §6 match benchmarks: instead of total batch time it shows
// the per-query latency distribution an online service would observe.
func QueryLatency(c *Corpus, name string, plens []int, queriesPerLen int) (Table, error) {
	s, err := c.Get(name)
	if err != nil {
		return Table{}, err
	}
	idx := core.Build(s)
	comp, err := core.Freeze(idx, alphabetFor(name))
	if err != nil {
		return Table{}, err
	}
	ctx := context.Background()

	t := Table{
		ID:    "latency",
		Title: fmt.Sprintf("per-query FindAll latency on %s (%s chars, %d queries/row)", name, fmtCount(int64(len(s))), queriesPerLen),
		Header: []string{"layout", "|P|", "p50(µs)", "p90(µs)", "p99(µs)", "max(µs)",
			"mean nodes", "mean occs"},
	}
	type layout struct {
		name    string
		findAll func(ctx context.Context, p []byte, limit int) (core.ScanResult, error)
	}
	for _, lay := range []layout{
		{"reference", idx.FindAllCtx},
		{"compact", comp.FindAllCtx},
	} {
		for _, plen := range plens {
			patterns := SamplePatterns(s, queriesPerLen, plen)
			if len(patterns) == 0 {
				continue
			}
			var hist telemetry.Histogram
			var nodes, occs int64
			for _, p := range patterns {
				t0 := time.Now()
				res, err := lay.findAll(ctx, p, 0)
				if err != nil {
					return Table{}, err
				}
				hist.ObserveDuration(time.Since(t0))
				nodes += res.NodesChecked
				occs += int64(len(res.Positions))
			}
			snap := hist.Snapshot()
			n := int64(len(patterns))
			t.Rows = append(t.Rows, []string{
				lay.name,
				fmt.Sprintf("%d", plen),
				fmt.Sprintf("%d", snap.P50),
				fmt.Sprintf("%d", snap.P90),
				fmt.Sprintf("%d", snap.P99),
				fmt.Sprintf("%d", snap.Max),
				fmt.Sprintf("%d", nodes/n),
				fmt.Sprintf("%d", occs/n),
			})
		}
	}
	t.Notes = append(t.Notes,
		"patterns are real occurrences sampled evenly across the sequence",
		"quantiles are log2-bucket upper bounds, matching the server's /metrics histograms")
	return t, nil
}
