package bench

import (
	"fmt"
	"os"
	"time"

	"github.com/spine-index/spine/internal/diskindex"
	"github.com/spine-index/spine/internal/match"
	"github.com/spine-index/spine/internal/pager"
)

// DiskConfig parameterizes the §6.2 disk experiments.
type DiskConfig struct {
	// Dir is the working directory for index files (a temp dir when empty).
	Dir string
	// Sync enables synchronous page writes (the paper's methodology; slow).
	Sync bool
	// BufferFraction sizes the buffer pool relative to the final index's
	// page count, so the index genuinely does not fit in memory. 0 means
	// 0.1 (10%).
	BufferFraction float64
	// Policy is the replacement policy for SPINE (the paper's
	// top-retention policy by default; ST always uses LRU).
	Policy pager.Policy
}

func (dc DiskConfig) fraction() float64 {
	if dc.BufferFraction <= 0 {
		return 0.1
	}
	return dc.BufferFraction
}

func (dc DiskConfig) dir() (string, func(), error) {
	if dc.Dir != "" {
		return dc.Dir, func() {}, nil
	}
	d, err := os.MkdirTemp("", "spinebench")
	if err != nil {
		return "", nil, err
	}
	return d, func() { os.RemoveAll(d) }, nil
}

// bufferPagesFor estimates a pool size: fraction of the pages the index
// will occupy (SPINE: 72 B/node; ST: ~2x 48 B nodes).
func bufferPagesFor(n int, bytesPerChar float64, fraction float64) int {
	pages := int(float64(n)*bytesPerChar/float64(pager.DefaultPageSize)*fraction) + 8
	return pages
}

// Fig7ConstructOnDisk reproduces Figure 7: on-disk construction times for
// ST and SPINE under an identical (index-smaller-than-data) buffer
// budget. The paper reports SPINE at about half of ST's time, from
// smaller nodes plus better locality; page I/O counts make the mechanism
// visible.
func Fig7ConstructOnDisk(c *Corpus, names []string, cfg DiskConfig) (Table, error) {
	t := Table{
		ID:    "fig7",
		Title: "Index construction (on disk)",
		Header: []string{"Genome", "Length", "ST build", "ST pageIO", "SPINE build", "SPINE pageIO",
			"SPINE/ST time", "SPINE/ST IO"},
	}
	dir, cleanup, err := cfg.dir()
	if err != nil {
		return Table{}, err
	}
	defer cleanup()
	for _, name := range names {
		s, err := c.Get(name)
		if err != nil {
			return Table{}, err
		}
		// Suffix tree on disk.
		stDir, err := os.MkdirTemp(dir, "st")
		if err != nil {
			return Table{}, err
		}
		stOpts := diskindex.Options{
			Sync:        cfg.Sync,
			BufferPages: bufferPagesFor(len(s), 2*48, cfg.fraction()),
			Policy:      pager.LRU,
		}
		start := time.Now()
		dt, err := diskindex.CreateTree(stDir, 0, stOpts)
		if err != nil {
			return Table{}, err
		}
		if err := dt.AppendAll(s); err != nil {
			return Table{}, err
		}
		if err := dt.Finish(); err != nil {
			return Table{}, err
		}
		if err := dt.Flush(); err != nil {
			return Table{}, err
		}
		stDur := time.Since(start)
		stIO := dt.IOStats()
		dt.Close()

		// SPINE on disk.
		spDir, err := os.MkdirTemp(dir, "spine")
		if err != nil {
			return Table{}, err
		}
		spOpts := diskindex.Options{
			Sync:        cfg.Sync,
			BufferPages: bufferPagesFor(len(s), 72, cfg.fraction()),
			Policy:      cfg.Policy,
		}
		start = time.Now()
		ds, err := diskindex.CreateSpine(spDir, spOpts)
		if err != nil {
			return Table{}, err
		}
		if err := ds.AppendAll(s); err != nil {
			return Table{}, err
		}
		if err := ds.Flush(); err != nil {
			return Table{}, err
		}
		spDur := time.Since(start)
		spIO := ds.IOStats()
		ds.Close()

		stTotal := stIO.Reads + stIO.Writes
		spTotal := spIO.Reads + spIO.Writes
		t.Rows = append(t.Rows, []string{
			name, fmtCount(int64(len(s))),
			fmtDuration(stDur), fmtCount(stTotal),
			fmtDuration(spDur), fmtCount(spTotal),
			fmt.Sprintf("%.2f", float64(spDur)/float64(stDur)),
			fmt.Sprintf("%.2f", float64(spTotal)/float64(stTotal)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("buffer pool = %.0f%% of each index's page footprint; sync=%v", cfg.fraction()*100, cfg.Sync),
		"paper shape: SPINE ~0.5x of ST construction time on disk",
	)
	return t, nil
}

// Table7Pairs are the paper's Table 7 genome combinations.
var Table7Pairs = []MatchPair{
	{"cel", "eco"}, {"hc21", "eco"}, {"hc21", "cel"}, {"hc19", "hc21"},
}

// Table7MatchOnDisk reproduces Table 7: disk-resident maximal-substring
// matching; the paper reports a ~50% speedup for SPINE.
func Table7MatchOnDisk(c *Corpus, pairs []MatchPair, cfg DiskConfig) (Table, error) {
	t := Table{
		ID:     "table7",
		Title:  fmt.Sprintf("Substring matching on disk, threshold %d", MatchThreshold),
		Header: []string{"Data", "Query", "ST(MUMmer-style)", "SPINE", "Speedup", "ST pageRd", "SPINE pageRd"},
	}
	dir, cleanup, err := cfg.dir()
	if err != nil {
		return Table{}, err
	}
	defer cleanup()
	for _, p := range pairs {
		data, err := c.Get(p.Data)
		if err != nil {
			return Table{}, err
		}
		query, err := c.Get(p.Query)
		if err != nil {
			return Table{}, err
		}
		query = homologize(data, query, int64(len(data)+len(query)))

		stDir, err := os.MkdirTemp(dir, "st")
		if err != nil {
			return Table{}, err
		}
		dt, err := diskindex.CreateTree(stDir, 0, diskindex.Options{
			BufferPages: bufferPagesFor(len(data), 2*48, cfg.fraction()),
			Policy:      pager.LRU,
		})
		if err != nil {
			return Table{}, err
		}
		if err := dt.AppendAll(data); err != nil {
			return Table{}, err
		}
		if err := dt.Finish(); err != nil {
			return Table{}, err
		}
		preReads := dt.IOStats().Reads
		start := time.Now()
		if _, err := match.MaximalMatches(match.NewDiskTreeEngine(dt), data, query, MatchThreshold); err != nil {
			return Table{}, err
		}
		stDur := time.Since(start)
		stReads := dt.IOStats().Reads - preReads
		dt.Close()

		spDir, err := os.MkdirTemp(dir, "spine")
		if err != nil {
			return Table{}, err
		}
		ds, err := diskindex.CreateSpine(spDir, diskindex.Options{
			BufferPages: bufferPagesFor(len(data), 72, cfg.fraction()),
			Policy:      cfg.Policy,
		})
		if err != nil {
			return Table{}, err
		}
		if err := ds.AppendAll(data); err != nil {
			return Table{}, err
		}
		preReads = ds.IOStats().Reads
		start = time.Now()
		if _, err := match.MaximalMatches(match.NewDiskSpineEngine(ds), data, query, MatchThreshold); err != nil {
			return Table{}, err
		}
		spDur := time.Since(start)
		spReads := ds.IOStats().Reads - preReads
		ds.Close()

		t.Rows = append(t.Rows, []string{
			p.Data, p.Query,
			fmtDuration(stDur), fmtDuration(spDur),
			fmt.Sprintf("%.1f%%", 100*(1-float64(spDur)/float64(stDur))),
			fmtCount(stReads), fmtCount(spReads),
		})
	}
	t.Notes = append(t.Notes, "paper shape: ~50% speedup for SPINE")
	return t, nil
}

// BufferPolicyAblation compares LRU against the paper's top-retention
// policy for disk-SPINE search, quantifying the Figure 8 insight.
func BufferPolicyAblation(c *Corpus, name string) (Table, error) {
	t := Table{
		ID:     "policy",
		Title:  "Buffer policy ablation (disk SPINE search)",
		Header: []string{"Genome", "Policy", "HitRate", "PageReads", "Elapsed"},
	}
	data, err := c.Get(name)
	if err != nil {
		return Table{}, err
	}
	query, err := c.Get(name)
	if err != nil {
		return Table{}, err
	}
	// Query with the tail half against the whole: heavy link-chain reuse.
	query = query[len(query)/2:]
	for _, pol := range []pager.Policy{pager.LRU, pager.TopRetention} {
		dir, err := os.MkdirTemp("", "policy")
		if err != nil {
			return Table{}, err
		}
		ds, err := diskindex.CreateSpine(dir, diskindex.Options{
			BufferPages: bufferPagesFor(len(data), 72, 0.05),
			Policy:      pol,
		})
		if err != nil {
			return Table{}, err
		}
		if err := ds.AppendAll(data); err != nil {
			return Table{}, err
		}
		preReads := ds.IOStats().Reads
		start := time.Now()
		if _, err := match.MaximalMatches(match.NewDiskSpineEngine(ds), data, query, MatchThreshold); err != nil {
			return Table{}, err
		}
		dur := time.Since(start)
		reads := ds.IOStats().Reads - preReads
		t.Rows = append(t.Rows, []string{
			name, pol.String(),
			fmt.Sprintf("%.3f", ds.HitRate()),
			fmtCount(reads), fmtDuration(dur),
		})
		ds.Close()
		os.RemoveAll(dir)
	}
	return t, nil
}
