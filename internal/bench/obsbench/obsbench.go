// Package obsbench benchmarks the wide-event observability layer. Like
// cachebench, it lives in its own package (not internal/bench) because
// it exercises the public spine.Index query path, and the root package's
// own benchmarks import internal/bench — importing spine from there
// would be a cycle.
package obsbench

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/spine-index/spine"
	"github.com/spine-index/spine/internal/bench"
	"github.com/spine-index/spine/internal/obs"
	"github.com/spine-index/spine/internal/trace"
)

// Exporter-overhead comparison: the same traced FindAll queries with the
// wide-event pipeline off versus on (JSONL sink to a real file), both
// arms paying for the trace itself, so the delta isolates what ISSUE 7's
// observability layer adds to the query path — event assembly, the RED
// rollup update and one non-blocking channel send; the file I/O happens
// on the pipeline's export goroutine. The run doubles as an export
// validation pass: every line of the JSONL output must decode back into
// an event, and the dropped counter must stay at zero.

// ObsBenchConfig drives RunObsBench over an in-process corpus build.
type ObsBenchConfig struct {
	Sequence   string // corpus sequence name, e.g. "eco"
	Requests   int    // queries per arm; <= 0 = 2000
	PatternLen int    // sampled pattern length; <= 0 = 4 (occurrence-heavy)
	Limit      int    // findall limit; <= 0 = 2000
	Buffer     int    // pipeline queue capacity; <= 0 = pipeline default
}

// ObsArmStats aggregates one arm's per-query latencies (exact
// percentiles, not histogram buckets — the overhead bound is a few
// percent and 2x buckets would bury it).
type ObsArmStats struct {
	Requests int     `json:"requests"`
	TotalUs  int64   `json:"totalUs"`
	MeanUs   float64 `json:"meanUs"`
	P50Us    float64 `json:"p50Us"`
	P90Us    float64 `json:"p90Us"`
	MaxUs    float64 `json:"maxUs"`
}

// ObsBenchReport is the BENCH_obs.json shape.
type ObsBenchReport struct {
	Sequence   string      `json:"sequence"`
	Chars      int         `json:"chars"`
	Requests   int         `json:"requests"`
	PatternLen int         `json:"patternLen"`
	Disabled   ObsArmStats `json:"disabled"`
	Enabled    ObsArmStats `json:"enabled"`
	// OverheadP50Pct is the p50 regression of the enabled arm relative
	// to the disabled arm, in percent (negative = noise in favor of
	// enabled). The acceptance bound is < 3%.
	OverheadP50Pct  float64 `json:"overheadP50Pct"`
	OverheadMeanPct float64 `json:"overheadMeanPct"`
	// Export health of the enabled arm.
	EventsEmitted int64 `json:"eventsEmitted"`
	Dropped       int64 `json:"dropped"`
	JSONLLines    int   `json:"jsonlLines"`
	JSONLValid    bool  `json:"jsonlValid"`
}

// RunObsBench measures the wide-event layer's query-path overhead and
// validates the JSONL export end to end.
func RunObsBench(c *bench.Corpus, cfg ObsBenchConfig) (bench.Table, ObsBenchReport, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 2000
	}
	if cfg.PatternLen <= 0 {
		cfg.PatternLen = 4
	}
	if cfg.Limit <= 0 {
		cfg.Limit = 2000
	}
	text, err := c.Get(cfg.Sequence)
	if err != nil {
		return bench.Table{}, ObsBenchReport{}, err
	}
	patterns := bench.SamplePatterns(text, 256, cfg.PatternLen)
	if len(patterns) == 0 {
		return bench.Table{}, ObsBenchReport{}, fmt.Errorf("obsbench: cannot sample %d-char patterns from %s (%d chars)",
			cfg.PatternLen, cfg.Sequence, len(text))
	}
	idx := spine.Build(text)

	f, err := os.CreateTemp("", "spine-obsbench-*.jsonl")
	if err != nil {
		return bench.Table{}, ObsBenchReport{}, err
	}
	path := f.Name()
	defer os.Remove(path)
	pipe := obs.NewPipeline(obs.Config{Buffer: cfg.Buffer, RED: obs.NewRED(100 * time.Millisecond)}, obs.NewJSONLSink(f))

	// Warm both code paths (index caches, allocator) before timing.
	runObsArm(idx, patterns, min(cfg.Requests, 200), cfg.Limit, nil)
	runObsArm(idx, patterns, min(cfg.Requests, 200), cfg.Limit, pipe)

	disabled := runObsArm(idx, patterns, cfg.Requests, cfg.Limit, nil)
	enabled := runObsArm(idx, patterns, cfg.Requests, cfg.Limit, pipe)

	closeCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st := pipe.Stats()
	if err := pipe.Close(closeCtx); err != nil {
		return bench.Table{}, ObsBenchReport{}, fmt.Errorf("obsbench: pipeline close: %w", err)
	}
	lines, valid, err := validateJSONL(path)
	if err != nil {
		return bench.Table{}, ObsBenchReport{}, err
	}

	report := ObsBenchReport{
		Sequence:        cfg.Sequence,
		Chars:           len(text),
		Requests:        cfg.Requests,
		PatternLen:      cfg.PatternLen,
		Disabled:        disabled,
		Enabled:         enabled,
		OverheadP50Pct:  pctDelta(disabled.P50Us, enabled.P50Us),
		OverheadMeanPct: pctDelta(disabled.MeanUs, enabled.MeanUs),
		EventsEmitted:   st.EmittedQuery,
		Dropped:         st.Dropped,
		JSONLLines:      lines,
		JSONLValid:      valid,
	}

	t := bench.Table{
		ID:     "obs",
		Title:  fmt.Sprintf("wide-event exporter overhead (%s, %d findall queries/arm, plen %d)", cfg.Sequence, cfg.Requests, cfg.PatternLen),
		Header: []string{"arm", "requests", "mean(µs)", "p50(µs)", "p90(µs)", "max(µs)"},
	}
	for _, arm := range []struct {
		name string
		s    ObsArmStats
	}{{"export off", disabled}, {"export on (jsonl)", enabled}} {
		t.Rows = append(t.Rows, []string{
			arm.name,
			fmt.Sprintf("%d", arm.s.Requests),
			fmt.Sprintf("%.1f", arm.s.MeanUs),
			fmt.Sprintf("%.1f", arm.s.P50Us),
			fmt.Sprintf("%.1f", arm.s.P90Us),
			fmt.Sprintf("%.1f", arm.s.MaxUs),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("p50 overhead %.2f%%, mean overhead %.2f%%; %d events exported, %d dropped, jsonl valid=%v",
			report.OverheadP50Pct, report.OverheadMeanPct, report.EventsEmitted, report.Dropped, report.JSONLValid))
	return t, report, nil
}

// runObsArm issues n traced findall queries, emitting one wide event per
// query when pipe is non-nil (exactly the serving path's sequence:
// Begin, annotate, EmitQuery with the stage summary), and returns exact
// latency stats.
func runObsArm(idx *spine.Index, patterns [][]byte, n, limit int, pipe *obs.Pipeline) ObsArmStats {
	durs := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		p := patterns[i%len(patterns)]
		t0 := time.Now()
		qc := obs.Begin(pipe, "findall", fmt.Sprintf("obsbench-%d", i), obs.TraceParent{})
		tr := trace.New()
		tr.SetEndpoint("findall")
		ctx := trace.NewContext(context.Background(), tr)
		res, err := idx.Query(ctx, p, spine.QueryOptions{Kind: spine.KindFindAll, Limit: limit})
		qc.SetPattern(trace.FingerprintOf(p))
		qc.SetQuery("findall", limit)
		if err == nil {
			qc.SetOutcome(obs.Outcome{
				Source:       res.Source.String(),
				NodesChecked: res.NodesChecked,
				ResultCount:  len(res.Positions),
				Truncated:    res.Truncated,
			})
		}
		elapsed := time.Since(t0)
		qc.EmitQuery(200, t0, elapsed, trace.Summarize(tr.Records()))
		durs = append(durs, time.Since(t0))
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var total time.Duration
	for _, d := range durs {
		total += d
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return ObsArmStats{
		Requests: n,
		TotalUs:  total.Microseconds(),
		MeanUs:   us(total) / float64(n),
		P50Us:    us(durs[n/2]),
		P90Us:    us(durs[n*9/10]),
		MaxUs:    us(durs[n-1]),
	}
}

// validateJSONL decodes every line of the export file back into an
// event, returning the line count and whether all lines parsed.
func validateJSONL(path string) (int, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines, valid := 0, true
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		lines++
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Type == "" {
			valid = false
		}
	}
	if err := sc.Err(); err != nil {
		return lines, false, err
	}
	return lines, valid, nil
}

// pctDelta is (b-a)/a in percent.
func pctDelta(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a * 100
}
