// Package cachebench benchmarks the serving cache layer. It lives in
// its own package (not internal/bench) because it exercises the public
// spine.Cached decorator, and the root package's own benchmarks import
// internal/bench — importing spine from there would be a cycle.
package cachebench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/spine-index/spine"
	"github.com/spine-index/spine/internal/bench"
)

// Serving-cache comparison: the same Zipf-skewed FindAll workload
// answered by the raw sharded index versus the Cached decorator, plus
// an absent-pattern ladder measuring what the q-gram negative filter
// buys over a full multi-shard descent. Every cached answer is
// differentially cross-checked against the raw index after timing, so
// the speedups never come from wrong answers.

// CacheBenchConfig drives RunCacheBench over an in-process corpus build.
type CacheBenchConfig struct {
	Sequence    string  // corpus sequence name, e.g. "eco"
	Shards      int     // shard count for the sharded build; <= 0 = 64
	PatternLen  int     // hot-pattern length; <= 0 = 12
	HotPatterns int     // Zipf support size; <= 0 = 256
	AbsentLen   int     // absent-pattern length; <= 0 = PatternLen + 8
	AbsentN     int     // absent patterns to measure; <= 0 = 128
	Requests    int     // Zipf requests per mode; <= 0 = 20000
	ZipfS       float64 // Zipf exponent; <= 1 = 1.1
	Seed        int64   // workload seed; 0 = 1
	CacheBytes  int64   // cache byte budget; <= 0 = 32 MiB
}

// CacheModeStats aggregates one mode's timing over the Zipf workload.
type CacheModeStats struct {
	Requests int     `json:"requests"`
	TotalUs  int64   `json:"totalUs"`
	QPS      float64 `json:"qps"`
	P50Ns    int64   `json:"p50Ns"`
	P99Ns    int64   `json:"p99Ns"`
}

// CacheReport is the machine-readable comparison (committed as
// BENCH_cache.json).
type CacheReport struct {
	Sequence    string  `json:"sequence"`
	Chars       int     `json:"chars"`
	Shards      int     `json:"shards"`
	ZipfS       float64 `json:"zipfS"`
	HotPatterns int     `json:"hotPatterns"`
	PatternLen  int     `json:"patternLen"`
	CacheBytes  int64   `json:"cacheBytes"`
	NegFilterQ  int     `json:"negFilterQ"`

	// Zipf-skewed present-pattern throughput, uncached vs cached.
	Uncached       CacheModeStats `json:"uncached"`
	Cached         CacheModeStats `json:"cached"`
	ThroughputGain float64        `json:"throughputGain"`

	// Absent-pattern latency, full descent vs negative-filter rejection.
	AbsentLen        int     `json:"absentLen"`
	AbsentPatterns   int     `json:"absentPatterns"`
	AbsentScanP50Ns  int64   `json:"absentScanP50Ns"`
	AbsentNegP50Ns   int64   `json:"absentNegP50Ns"`
	AbsentNegRejects int64   `json:"absentNegRejects"`
	AbsentGain       float64 `json:"absentGain"`

	// Final decorator counters over the whole run.
	CacheStats spine.CacheStats `json:"cacheStats"`
}

// RunCacheBench builds the sequence as a sharded index, replays a
// deterministic Zipf(s) stream of hot FindAll patterns against the raw
// and cache-fronted queriers, then measures absent-pattern point
// latency with and without the negative filter. Returns the human
// table plus the JSON report.
func RunCacheBench(c *bench.Corpus, cfg CacheBenchConfig) (bench.Table, CacheReport, error) {
	text, err := c.Get(cfg.Sequence)
	if err != nil {
		return bench.Table{}, CacheReport{}, err
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 64
	}
	plen := cfg.PatternLen
	if plen <= 0 {
		plen = 12
	}
	hot := cfg.HotPatterns
	if hot <= 0 {
		hot = 256
	}
	absentLen := cfg.AbsentLen
	if absentLen <= 0 {
		absentLen = plen + 8
	}
	absentN := cfg.AbsentN
	if absentN <= 0 {
		absentN = 128
	}
	requests := cfg.Requests
	if requests <= 0 {
		requests = 20000
	}
	zipfS := cfg.ZipfS
	if zipfS <= 1 {
		zipfS = 1.1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	cacheBytes := cfg.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = 32 << 20
	}

	shardSize := (len(text) + shards - 1) / shards
	if shardSize < 1 {
		shardSize = 1
	}
	raw, err := spine.BuildSharded(text, shardSize, 4*absentLen, 0)
	if err != nil {
		return bench.Table{}, CacheReport{}, err
	}
	cached, err := spine.Cached(raw, spine.CacheConfig{MaxBytes: cacheBytes})
	if err != nil {
		return bench.Table{}, CacheReport{}, err
	}

	patterns := bench.SamplePatterns(text, hot, plen)
	if len(patterns) == 0 {
		return bench.Table{}, CacheReport{}, fmt.Errorf("cache: cannot sample %d-char patterns from %s (%d chars)",
			plen, cfg.Sequence, len(text))
	}
	// The request stream is drawn once and replayed identically against
	// both modes: rank-0 of the Zipf is the hottest pattern.
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(patterns)-1))
	stream := make([]int, requests)
	for i := range stream {
		stream[i] = int(zipf.Uint64())
	}
	absent := absentPatterns(text, absentN, absentLen, rng)

	report := CacheReport{
		Sequence:    cfg.Sequence,
		Chars:       len(text),
		Shards:      raw.Shards(),
		ZipfS:       zipfS,
		HotPatterns: len(patterns),
		PatternLen:  plen,
		CacheBytes:  cacheBytes,
		NegFilterQ:  cached.CacheStats().NegFilterQ,
		AbsentLen:   absentLen,
	}

	ctx := context.Background()
	opts := spine.QueryOptions{Kind: spine.KindFindAll}
	report.Uncached, err = runZipfStream(ctx, raw, patterns, stream, opts)
	if err != nil {
		return bench.Table{}, CacheReport{}, err
	}
	report.Cached, err = runZipfStream(ctx, cached, patterns, stream, opts)
	if err != nil {
		return bench.Table{}, CacheReport{}, err
	}
	if report.Cached.TotalUs > 0 {
		report.ThroughputGain = report.Cached.QPS / report.Uncached.QPS
	}

	// Differential pass (untimed): every hot pattern's cached answer must
	// match the raw index on all semantic fields.
	for _, p := range patterns {
		want, werr := raw.Query(ctx, p, opts)
		got, gerr := cached.Query(ctx, p, opts)
		if werr != nil || gerr != nil {
			return bench.Table{}, CacheReport{}, fmt.Errorf("cache: differential query: %v / %v", gerr, werr)
		}
		if got.Found != want.Found || got.Count != want.Count || got.Position != want.Position ||
			!equalPositions(got.Positions, want.Positions) {
			return bench.Table{}, CacheReport{}, fmt.Errorf("cache: cached answer for %q diverged from the raw index", p)
		}
	}

	// Absent-pattern point latency: the raw path pays a descent per
	// shard; the filtered path answers from q-gram hashes alone. NoCache
	// on the filtered side keeps the result cache out of the measurement.
	report.AbsentPatterns = len(absent)
	if len(absent) > 0 {
		negBefore := cached.CacheStats().NegRejects
		scanP50, err := absentP50(ctx, raw, absent, spine.QueryOptions{Kind: spine.KindContains})
		if err != nil {
			return bench.Table{}, CacheReport{}, err
		}
		negP50, err := absentP50(ctx, cached, absent, spine.QueryOptions{Kind: spine.KindContains})
		if err != nil {
			return bench.Table{}, CacheReport{}, err
		}
		report.AbsentScanP50Ns = scanP50
		report.AbsentNegP50Ns = negP50
		report.AbsentNegRejects = cached.CacheStats().NegRejects - negBefore
		if negP50 > 0 {
			report.AbsentGain = float64(scanP50) / float64(negP50)
		}
	}
	report.CacheStats = cached.CacheStats()

	t := bench.Table{
		ID: "cache",
		Title: fmt.Sprintf("serving cache on %s (%s chars, %d shards): Zipf(s=%.1f) over %d hot %d-mers, %d requests/mode",
			cfg.Sequence, fmtCount(int64(len(text))), report.Shards, zipfS, len(patterns), plen, requests),
		Header: []string{"mode", "requests", "total(µs)", "qps", "p50(ns)", "p99(ns)"},
	}
	for _, row := range []struct {
		name string
		st   CacheModeStats
	}{{"uncached", report.Uncached}, {"cached", report.Cached}} {
		t.Rows = append(t.Rows, []string{
			row.name,
			fmt.Sprintf("%d", row.st.Requests),
			fmt.Sprintf("%d", row.st.TotalUs),
			fmt.Sprintf("%.0f", row.st.QPS),
			fmt.Sprintf("%d", row.st.P50Ns),
			fmt.Sprintf("%d", row.st.P99Ns),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("throughput gain %.1fx; every hot pattern differentially cross-checked cached vs raw", report.ThroughputGain),
		fmt.Sprintf("absent %d-mers (%d verified-absent): descent p50 %dns vs negfilter p50 %dns = %.1fx (q=%d, %d/%d probes rejected scan-free)",
			absentLen, len(absent), report.AbsentScanP50Ns, report.AbsentNegP50Ns, report.AbsentGain,
			report.NegFilterQ, report.AbsentNegRejects, absentPasses*len(absent)),
		fmt.Sprintf("final counters: %d hits / %d misses / %d neg rejects / %d filter false positives",
			report.CacheStats.Hits, report.CacheStats.Misses, report.CacheStats.NegRejects, report.CacheStats.NegFalsePos))
	return t, report, nil
}

// runZipfStream replays the drawn pattern-rank stream against q and
// times every request individually (nanosecond quantiles) as well as
// end to end (throughput).
func runZipfStream(ctx context.Context, q spine.Querier, patterns [][]byte, stream []int, opts spine.QueryOptions) (CacheModeStats, error) {
	lat := make([]int64, len(stream))
	start := time.Now()
	for i, rank := range stream {
		t0 := time.Now()
		if _, err := q.Query(ctx, patterns[rank], opts); err != nil {
			return CacheModeStats{}, err
		}
		lat[i] = time.Since(t0).Nanoseconds()
	}
	total := time.Since(start)
	st := CacheModeStats{
		Requests: len(stream),
		TotalUs:  total.Microseconds(),
	}
	if total > 0 {
		st.QPS = float64(len(stream)) / total.Seconds()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if n := len(lat); n > 0 {
		st.P50Ns = lat[n/2]
		st.P99Ns = lat[n*99/100]
	}
	return st, nil
}

// absentPasses repeats the absent ladder so the median is stable even
// on sub-microsecond paths.
const absentPasses = 5

// absentP50 measures per-query latency over the absent set and returns
// the median in nanoseconds.
func absentP50(ctx context.Context, q spine.Querier, absent [][]byte, opts spine.QueryOptions) (int64, error) {
	lat := make([]int64, 0, len(absent)*absentPasses)
	for pass := 0; pass < absentPasses; pass++ {
		for _, p := range absent {
			t0 := time.Now()
			res, err := q.Query(ctx, p, opts)
			if err != nil {
				return 0, err
			}
			if res.Found {
				return 0, fmt.Errorf("cache: %q reported present but was sampled absent", p)
			}
			lat = append(lat, time.Since(t0).Nanoseconds())
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2], nil
}

// absentPatterns draws random same-alphabet strings and keeps those
// verifiably absent from the text (bytes.Contains is the oracle), so
// the negative-filter measurement never rides on a false absence.
func absentPatterns(text []byte, n, plen int, rng *rand.Rand) [][]byte {
	alpha := distinctBytes(text)
	if len(alpha) == 0 || plen <= 0 {
		return nil
	}
	out := make([][]byte, 0, n)
	for tries := 0; len(out) < n && tries < 50*n; tries++ {
		p := make([]byte, plen)
		for i := range p {
			p[i] = alpha[rng.Intn(len(alpha))]
		}
		if !bytes.Contains(text, p) {
			out = append(out, p)
		}
	}
	return out
}

// distinctBytes returns the text's alphabet in byte order.
func distinctBytes(text []byte) []byte {
	var seen [256]bool
	for _, b := range text {
		seen[b] = true
	}
	var out []byte
	for b := 0; b < 256; b++ {
		if seen[b] {
			out = append(out, byte(b))
		}
	}
	return out
}

// fmtCount renders 350000 as "350.0k" (local twin of the bench
// package's unexported helper).
func fmtCount(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func equalPositions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
