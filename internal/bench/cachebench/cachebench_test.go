package cachebench

import (
	"testing"

	"github.com/spine-index/spine/internal/bench"
)

// TestRunCacheBenchShape runs a tiny cache bench end to end: the
// differential cross-check inside RunCacheBench is the real assertion;
// here we pin the report shape and that the workload actually exercised
// both layers.
func TestRunCacheBenchShape(t *testing.T) {
	c := bench.NewCorpus(400) // eco/400 ≈ 8.7k chars: fast but non-trivial
	table, report, err := RunCacheBench(c, CacheBenchConfig{
		Sequence:    "eco",
		Shards:      8,
		HotPatterns: 32,
		AbsentN:     16,
		Requests:    500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("table rows = %d, want uncached+cached", len(table.Rows))
	}
	if report.Uncached.Requests != 500 || report.Cached.Requests != 500 {
		t.Fatalf("request counts = %d/%d", report.Uncached.Requests, report.Cached.Requests)
	}
	if report.ThroughputGain <= 0 {
		t.Fatalf("throughput gain = %v", report.ThroughputGain)
	}
	if report.CacheStats.Hits == 0 || report.CacheStats.Misses == 0 {
		t.Fatalf("degenerate cache counters: %+v", report.CacheStats)
	}
	if report.AbsentPatterns == 0 || report.AbsentNegRejects == 0 {
		t.Fatalf("absent ladder degenerate: %d patterns, %d rejects",
			report.AbsentPatterns, report.AbsentNegRejects)
	}
	if report.NegFilterQ == 0 {
		t.Fatal("negative filter was not built")
	}
}
