package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/qgram"
	"github.com/spine-index/spine/internal/seq"
)

// FilterComparison is experiment E13: the §7 related-work contrast between
// a complete index (SPINE) and a two-level filter index (MRS-style q-gram
// blocks). The paper: "the performance improvement through complete
// indexes is typically substantially more, albeit at the cost of increased
// resource consumption." Measured here as size vs. query latency for exact
// and 1-substitution search.
func FilterComparison(c *Corpus, name string) (Table, error) {
	t := Table{
		ID:     "filter",
		Title:  "Complete index (SPINE) vs q-gram filter index (MRS-style, §7)",
		Header: []string{"Index", "B/char", "First (µs)", "All (µs)", "k=1 (µs)", "BlocksVerified"},
	}
	text, err := c.Get(name)
	if err != nil {
		return Table{}, err
	}
	// Patterns sampled from the text with occasional planted substitutions.
	rng := rand.New(rand.NewSource(991))
	const numQ = 200
	patterns := make([][]byte, numQ)
	for i := range patterns {
		off := rng.Intn(len(text) - 24)
		p := append([]byte(nil), text[off:off+24]...)
		if i%2 == 1 {
			p[rng.Intn(len(p))] = "acgt"[rng.Intn(4)]
		}
		patterns[i] = p
	}

	// SPINE (compact for the size figure, reference for queries).
	idx := core.Build(text)
	comp, err := core.Freeze(idx, seq.DNA)
	if err != nil {
		return Table{}, err
	}
	start := time.Now()
	for _, p := range patterns {
		idx.Find(p)
	}
	spineFirst := time.Since(start)
	start = time.Now()
	for _, p := range patterns {
		idx.FindAll(p)
	}
	spineExact := time.Since(start)
	start = time.Now()
	for _, p := range patterns {
		idx.FindAllWithin(p, 1, core.Hamming)
	}
	spineApprox := time.Since(start)
	t.Rows = append(t.Rows, []string{
		"SPINE (complete)",
		fmt.Sprintf("%.2f", comp.BytesPerChar()),
		fmt.Sprintf("%.2f", float64(spineFirst.Microseconds())/numQ),
		fmt.Sprintf("%.1f", float64(spineExact.Microseconds())/numQ),
		fmt.Sprintf("%.1f", float64(spineApprox.Microseconds())/numQ),
		"-",
	})

	// q-gram filter, q tuned to the corpus size.
	q := 6
	for n := len(text); n > 50_000 && q < 12; n /= 4 {
		q++
	}
	f, err := qgram.Build(text, seq.DNA, q, 256)
	if err != nil {
		return Table{}, err
	}
	start = time.Now()
	for _, p := range patterns {
		f.FindAll(p) // the filter has no cheaper first-occurrence path
	}
	filtFirst := time.Since(start)
	start = time.Now()
	for _, p := range patterns {
		f.FindAll(p)
	}
	filtExact := time.Since(start)
	start = time.Now()
	for _, p := range patterns {
		f.FindAllWithin(p, 1)
	}
	filtApprox := time.Since(start)
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("q-gram filter (q=%d)", q),
		fmt.Sprintf("%.2f", float64(f.SizeBytes())/float64(len(text))),
		fmt.Sprintf("%.2f", float64(filtFirst.Microseconds())/numQ),
		fmt.Sprintf("%.1f", float64(filtExact.Microseconds())/numQ),
		fmt.Sprintf("%.1f", float64(filtApprox.Microseconds())/numQ),
		fmt.Sprint(f.CandidatesChecked()),
	})
	t.Notes = append(t.Notes,
		"§7 shape: the complete index answers first-occurrence queries in O(pattern); the filter always pays block verification",
		"SPINE's all-occurrence column includes its O(n) backbone scan, which batch workloads amortize into one pass (§4)")
	return t, nil
}
