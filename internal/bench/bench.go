// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§6): workload acquisition,
// parameter sweeps, timing/space/I/O measurement, and row/series printing
// in the papers' own units. See DESIGN.md §2 for the experiment index.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/spine-index/spine/internal/seqgen"
)

// Table is one formatted experiment result.
type Table struct {
	ID     string // experiment id, e.g. "fig6"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table to a string.
func (t Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Corpus generates and caches the synthetic genome suite at a given scale
// divisor (1 = paper scale; benches default to larger divisors).
type Corpus struct {
	divide int
	cache  map[string][]byte
}

// NewCorpus returns a corpus at the given scale divisor (>= 1).
func NewCorpus(divide int) *Corpus {
	if divide < 1 {
		divide = 1
	}
	return &Corpus{divide: divide, cache: make(map[string][]byte)}
}

// Divide returns the corpus scale divisor.
func (c *Corpus) Divide() int { return c.divide }

// Get generates (or returns the cached) sequence for a suite name.
func (c *Corpus) Get(name string) ([]byte, error) {
	if s, ok := c.cache[name]; ok {
		return s, nil
	}
	s, err := seqgen.SuiteSequence(name, c.divide)
	if err != nil {
		return nil, err
	}
	c.cache[name] = s
	return s, nil
}

// MustGet is Get for known-valid suite names; it panics on error.
func (c *Corpus) MustGet(name string) []byte {
	s, err := c.Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

func fmtCount(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}
