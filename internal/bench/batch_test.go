package bench

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeBatchServer answers /batch and /findall with consistent counts
// (len(pattern) occurrences) and tracks how often each was hit.
func fakeBatchServer(t *testing.T, batchHits, findallHits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/batch":
			batchHits.Add(1)
			var req struct {
				Patterns []string `json:"patterns"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				t.Errorf("bad /batch body: %v", err)
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			var items []string
			for _, p := range req.Patterns {
				items = append(items, fmt.Sprintf(`{"status":"ok","count":%d,"positions":[],"truncated":false,"nodesChecked":1}`, len(p)))
			}
			fmt.Fprintf(w, `{"patterns":%d,"unique":%d,"limit":100,"results":[%s]}`,
				len(req.Patterns), len(req.Patterns), strings.Join(items, ","))
		case "/findall":
			findallHits.Add(1)
			fmt.Fprintf(w, `{"count":%d,"positions":[],"truncated":false}`, len(r.URL.Query().Get("q")))
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestRunBatchCompare(t *testing.T) {
	var batchHits, findallHits atomic.Int64
	ts := fakeBatchServer(t, &batchHits, &findallHits)
	table, report, err := RunBatchCompare(BatchCompareConfig{
		BaseURL:   ts.URL,
		Patterns:  [][]byte{[]byte("ac"), []byte("acg"), []byte("a")},
		BatchSize: 8,
		Rounds:    5,
		Limit:     100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if batchHits.Load() != 5 {
		t.Fatalf("/batch hits = %d, want 5 (one per round)", batchHits.Load())
	}
	if findallHits.Load() != 5*8 {
		t.Fatalf("/findall hits = %d, want 40 (batch size per round)", findallHits.Load())
	}
	if report.Batch.Rounds != 5 || report.Sequential.Rounds != 5 ||
		report.Batch.Errors != 0 || report.Sequential.Errors != 0 {
		t.Fatalf("report = %+v", report)
	}
	if report.Batch.MeanUs <= 0 || report.Sequential.MeanUs <= 0 || report.Speedup <= 0 {
		t.Fatalf("degenerate stats: %+v", report)
	}
	out := table.String()
	if !strings.Contains(out, "batch") || !strings.Contains(out, "sequential") || !strings.Contains(out, "speedup") {
		t.Fatalf("rendered table:\n%s", out)
	}
	// The report round-trips as JSON (the BENCH_batch.json contract).
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var back BatchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.BatchSize != 8 || back.Rounds != 5 {
		t.Fatalf("round-trip lost fields: %+v", back)
	}
}

// TestRunBatchCompareCountMismatch: disagreeing counts between the two
// modes fail the run — the bench doubles as a differential check.
func TestRunBatchCompareCountMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/batch":
			fmt.Fprint(w, `{"results":[{"status":"ok","count":3,"positions":[],"truncated":false}]}`)
		case "/findall":
			fmt.Fprint(w, `{"count":4,"positions":[],"truncated":false}`)
		}
	}))
	defer ts.Close()
	_, _, err := RunBatchCompare(BatchCompareConfig{
		BaseURL:   ts.URL,
		Patterns:  [][]byte{[]byte("ac")},
		BatchSize: 1,
		Rounds:    1,
	})
	if err == nil || !strings.Contains(err.Error(), "!=") {
		t.Fatalf("err = %v, want count mismatch", err)
	}
}

func TestRunBatchCompareValidation(t *testing.T) {
	bad := []BatchCompareConfig{
		{Patterns: [][]byte{[]byte("a")}, BatchSize: 1},  // no URL
		{BaseURL: "http://x", BatchSize: 1},              // no patterns
		{BaseURL: "http://x", Patterns: [][]byte{{'a'}}}, // no batch size
	}
	for i, cfg := range bad {
		if _, _, err := RunBatchCompare(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
