package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"github.com/spine-index/spine/internal/telemetry"
)

// Batch-vs-sequential comparison: the same N patterns answered by one
// POST /batch (one descent pool + one backbone scan per index) versus N
// sequential GET /findall round trips. Both sides see identical
// patterns and limits, and the per-pattern occurrence counts are
// cross-checked every round, so the timing difference isolates the
// batching itself — §4's deferral of occurrence resolution amortized
// across a whole query set plus the saved HTTP round trips.

// BatchCompareConfig drives RunBatchCompare against a running
// spineserve instance.
type BatchCompareConfig struct {
	BaseURL   string        // e.g. "http://localhost:8080"
	Patterns  [][]byte      // pattern pool, rotated between rounds
	BatchSize int           // patterns per round (the batch's N)
	Rounds    int           // measured rounds per mode
	Limit     int           // per-item result limit; 0 = server default
	Timeout   time.Duration // per-request client timeout; 0 = 30s
}

// BatchModeStats aggregates one mode's round durations. A "round" is
// one full answer for the N patterns: a single /batch request, or N
// back-to-back /findall requests.
type BatchModeStats struct {
	Rounds  int   `json:"rounds"`
	Errors  int64 `json:"errors"`
	TotalUs int64 `json:"totalUs"`
	MeanUs  int64 `json:"meanUs"`
	P50Us   int64 `json:"p50Us"`
	P90Us   int64 `json:"p90Us"`
	MaxUs   int64 `json:"maxUs"`
}

// BatchReport is the machine-readable comparison (committed as
// BENCH_batch.json).
type BatchReport struct {
	BaseURL    string         `json:"baseURL"`
	BatchSize  int            `json:"batchSize"`
	Rounds     int            `json:"rounds"`
	Limit      int            `json:"limit"`
	Batch      BatchModeStats `json:"batch"`
	Sequential BatchModeStats `json:"sequential"`
	// Speedup is sequential mean round time over batch mean round time.
	Speedup float64 `json:"speedup"`
}

// RunBatchCompare measures rounds of batch-vs-sequential answering and
// returns the human table plus the JSON report. Modes alternate within
// each round (batch first, then sequential over the same patterns) so
// cache warm-up and background noise spread evenly across both.
func RunBatchCompare(cfg BatchCompareConfig) (Table, BatchReport, error) {
	if cfg.BaseURL == "" {
		return Table{}, BatchReport{}, fmt.Errorf("batch: BaseURL is required")
	}
	if len(cfg.Patterns) == 0 {
		return Table{}, BatchReport{}, fmt.Errorf("batch: at least one pattern is required")
	}
	if cfg.BatchSize <= 0 {
		return Table{}, BatchReport{}, fmt.Errorf("batch: BatchSize must be positive")
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 10
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: timeout}

	var batchLat, seqLat telemetry.Histogram
	var batchTotal, seqTotal time.Duration
	var batchErrs, seqErrs int64
	for r := 0; r < rounds; r++ {
		// Rotate the pool so different rounds hit different patterns but
		// both modes within a round see the same slice.
		patterns := make([][]byte, cfg.BatchSize)
		for i := range patterns {
			patterns[i] = cfg.Patterns[(r*cfg.BatchSize+i)%len(cfg.Patterns)]
		}

		t0 := time.Now()
		batchCounts, err := issueBatch(client, cfg.BaseURL, patterns, cfg.Limit)
		d := time.Since(t0)
		batchLat.ObserveDuration(d)
		batchTotal += d
		if err != nil {
			batchErrs++
			continue
		}

		t0 = time.Now()
		seqCounts, err := issueSequential(client, cfg.BaseURL, patterns, cfg.Limit)
		d = time.Since(t0)
		seqLat.ObserveDuration(d)
		seqTotal += d
		if err != nil {
			seqErrs++
			continue
		}

		for i := range patterns {
			if batchCounts[i] != seqCounts[i] {
				return Table{}, BatchReport{}, fmt.Errorf(
					"batch: round %d pattern %q: /batch count %d != /findall count %d",
					r, patterns[i], batchCounts[i], seqCounts[i])
			}
		}
	}

	report := BatchReport{
		BaseURL:    cfg.BaseURL,
		BatchSize:  cfg.BatchSize,
		Rounds:     rounds,
		Limit:      cfg.Limit,
		Batch:      modeStats(rounds, batchErrs, batchTotal, batchLat.Snapshot()),
		Sequential: modeStats(rounds, seqErrs, seqTotal, seqLat.Snapshot()),
	}
	if report.Batch.MeanUs > 0 {
		report.Speedup = float64(report.Sequential.MeanUs) / float64(report.Batch.MeanUs)
	}

	t := Table{
		ID: "batch",
		Title: fmt.Sprintf("batch vs sequential: %d patterns/round, %d rounds vs %s",
			cfg.BatchSize, rounds, cfg.BaseURL),
		Header: []string{"mode", "rounds", "errors", "mean(µs)", "p50(µs)", "p90(µs)", "max(µs)"},
	}
	for _, row := range []struct {
		name string
		s    BatchModeStats
	}{{"batch", report.Batch}, {"sequential", report.Sequential}} {
		t.Rows = append(t.Rows, []string{
			row.name,
			fmt.Sprintf("%d", row.s.Rounds),
			fmt.Sprintf("%d", row.s.Errors),
			fmt.Sprintf("%d", row.s.MeanUs),
			fmt.Sprintf("%d", row.s.P50Us),
			fmt.Sprintf("%d", row.s.P90Us),
			fmt.Sprintf("%d", row.s.MaxUs),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"speedup %.2fx (sequential mean / batch mean); per-pattern counts cross-checked every round", report.Speedup))
	return t, report, nil
}

func modeStats(rounds int, errs int64, total time.Duration, h telemetry.HistogramSnapshot) BatchModeStats {
	s := BatchModeStats{
		Rounds:  rounds,
		Errors:  errs,
		TotalUs: total.Microseconds(),
		P50Us:   h.P50,
		P90Us:   h.P90,
		MaxUs:   h.Max,
	}
	if rounds > 0 {
		s.MeanUs = s.TotalUs / int64(rounds)
	}
	return s
}

// issueBatch answers all patterns with one POST /batch and returns the
// per-pattern occurrence counts in request order.
func issueBatch(client *http.Client, baseURL string, patterns [][]byte, limit int) ([]int, error) {
	req := struct {
		Patterns []string `json:"patterns"`
		Limit    int      `json:"limit,omitempty"`
	}{Patterns: make([]string, len(patterns)), Limit: limit}
	for i, p := range patterns {
		req.Patterns[i] = string(p)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := client.Post(baseURL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("/batch status %d", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			Status string `json:"status"`
			Count  int    `json:"count"`
			Error  string `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(patterns) {
		return nil, fmt.Errorf("/batch returned %d results for %d patterns", len(out.Results), len(patterns))
	}
	counts := make([]int, len(out.Results))
	for i, r := range out.Results {
		if r.Status != "ok" {
			return nil, fmt.Errorf("/batch item %d: %s", i, r.Error)
		}
		counts[i] = r.Count
	}
	return counts, nil
}

// issueSequential answers the patterns with one GET /findall each and
// returns the per-pattern occurrence counts.
func issueSequential(client *http.Client, baseURL string, patterns [][]byte, limit int) ([]int, error) {
	counts := make([]int, len(patterns))
	for i, p := range patterns {
		u := baseURL + "/findall?q=" + url.QueryEscape(string(p))
		if limit > 0 {
			u += fmt.Sprintf("&limit=%d", limit)
		}
		resp, err := client.Get(u)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil, fmt.Errorf("/findall status %d", resp.StatusCode)
		}
		var out struct {
			Count int `json:"count"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		counts[i] = out.Count
	}
	return counts, nil
}
