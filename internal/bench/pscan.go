package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/telemetry"
	"github.com/spine-index/spine/internal/trace"
)

// Intra-query parallel scan comparison: the same low-selectivity FindAll
// and Count queries answered at a ladder of worker counts, the 1-worker
// rung being the sequential oracle. Every multi-worker rung's positions
// (and counts) are cross-checked element-wise against the oracle every
// round, and a traced pass verifies the partitioned scan's accounting
// contract: NodesChecked is parallelism-invariant on untruncated
// queries (the stitch replays the sequential admission decisions), the
// worker counter matches the rung, and cross-partition chains were
// actually stitched. The timing difference between rungs therefore
// isolates the partitioned scan — wall-clock speedup appears only when
// GOMAXPROCS grants real cores, so the report records the host's
// parallelism alongside the numbers.

// PScanBenchConfig drives RunPScanBench over an in-process corpus build.
type PScanBenchConfig struct {
	Sequence   string // corpus sequence name; "" = "cel" (15.5M chars at divide 1)
	PatternLen int    // sampled pattern length; <= 0 = 8 (below median LEL: the dense, scan-bound regime)
	Patterns   int    // patterns per round; <= 0 = 4
	Rounds     int    // measured rounds per rung; <= 0 = 5
	Workers    []int  // worker ladder; nil = {1, 2, 4, 8}; must start at 1 (the oracle)
}

// PScanArmStats aggregates one worker rung's round durations plus its
// traced work counters over one full pattern set.
type PScanArmStats struct {
	Workers int   `json:"workers"`
	Rounds  int   `json:"rounds"`
	TotalUs int64 `json:"totalUs"`
	MeanUs  int64 `json:"meanUs"`
	P50Us   int64 `json:"p50Us"`
	MaxUs   int64 `json:"maxUs"`
	// NodesChecked is the canonical §4.1 work metric summed over the
	// pattern set; identical at every rung by the replay contract.
	NodesChecked int64 `json:"nodesChecked"`
	// WorkersUsed and ChainsStitched come from the traced pass:
	// partitions actually spawned and cross-partition chain roots
	// resolved by the ordered stitch.
	WorkersUsed    int64 `json:"workersUsed"`
	ChainsStitched int64 `json:"chainsStitched"`
	// Speedup is the 1-worker rung's mean round time over this rung's.
	Speedup float64 `json:"speedup,omitempty"`
}

// PScanRow is one layout x query-kind ladder.
type PScanRow struct {
	Layout string `json:"layout"` // "reference" or "compact"
	Kind   string `json:"kind"`   // "findall" or "count"
	// Occurrences is the total hits across the pattern set (identical
	// at every rung by construction; cross-checked every round).
	Occurrences int64           `json:"occurrences"`
	Arms        []PScanArmStats `json:"arms"`
}

// PScanReport is the machine-readable comparison (committed as
// BENCH_pscan.json).
type PScanReport struct {
	Sequence   string `json:"sequence"`
	Chars      int    `json:"chars"`
	MedianLEL  int    `json:"medianLEL"`
	PatternLen int    `json:"patternLen"`
	Patterns   int    `json:"patterns"`
	Rounds     int    `json:"rounds"`
	// MaxProcs and NumCPU record the measuring host's parallelism:
	// worker rungs beyond MaxProcs time-slice one core and cannot beat
	// the oracle on wall clock, so speedups are only meaningful up to
	// this bound.
	MaxProcs int        `json:"maxProcs"`
	NumCPU   int        `json:"numCPU"`
	ISA      string     `json:"isa"`
	Rows     []PScanRow `json:"rows"`
}

// RunPScanBench builds the sequence on both layouts and measures
// FindAll and Count rounds at each worker rung, returning the human
// table plus the JSON report. Rungs alternate within each round so
// cache warm-up and background noise spread evenly.
func RunPScanBench(c *Corpus, cfg PScanBenchConfig) (Table, PScanReport, error) {
	seqName := cfg.Sequence
	if seqName == "" {
		seqName = "cel"
	}
	text, err := c.Get(seqName)
	if err != nil {
		return Table{}, PScanReport{}, err
	}
	plen := cfg.PatternLen
	if plen <= 0 {
		plen = 8
	}
	nPats := cfg.Patterns
	if nPats <= 0 {
		nPats = 4
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 5
	}
	ladder := cfg.Workers
	if len(ladder) == 0 {
		ladder = []int{1, 2, 4, 8}
	}
	if ladder[0] != 1 {
		return Table{}, PScanReport{}, fmt.Errorf("pscan: worker ladder must start at 1 (the sequential oracle), got %v", ladder)
	}
	for _, w := range ladder {
		if w < 1 {
			return Table{}, PScanReport{}, fmt.Errorf("pscan: bad worker count %d", w)
		}
	}

	idx := core.Build(text)
	comp, err := core.Freeze(idx, alphabetFor(seqName))
	if err != nil {
		return Table{}, PScanReport{}, err
	}
	report := PScanReport{
		Sequence:   seqName,
		Chars:      len(text),
		MedianLEL:  medianLEL(idx),
		PatternLen: plen,
		Patterns:   nPats,
		Rounds:     rounds,
		MaxProcs:   runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		ISA:        core.ScanKernelISA(),
	}
	patterns := SamplePatterns(text, nPats, plen)
	if len(patterns) == 0 {
		return Table{}, PScanReport{}, fmt.Errorf("pscan: cannot sample %d-char patterns from %s (%d chars)", plen, seqName, len(text))
	}

	// Measure under the production configuration (skip index + SWAR)
	// with the span threshold floored so every rung engages even on
	// smoke-scale corpora; restore everything on the way out.
	prevSkip := core.SetBlockSkip(true)
	prevKernel := core.ActiveScanKernel()
	core.SetScanKernel(core.KernelSWAR)
	prevPar := core.SetScanParallelism(1)
	prevThresh := core.SetScanParallelThreshold(1)
	defer func() {
		core.SetBlockSkip(prevSkip)
		core.SetScanKernel(prevKernel)
		core.SetScanParallelism(prevPar)
		core.SetScanParallelThreshold(prevThresh)
	}()

	type layout struct {
		name    string
		findAll func(ctx context.Context, p []byte, limit int) (core.ScanResult, error)
		count   func(ctx context.Context, p []byte) (int, error)
	}
	layouts := []layout{
		{"reference", idx.FindAllCtx, idx.CountCtx},
		{"compact", comp.FindAllCtx, comp.CountCtx},
	}
	for _, lay := range layouts {
		for _, kind := range []string{"findall", "count"} {
			row := PScanRow{Layout: lay.name, Kind: kind}
			lats := make([]telemetry.Histogram, len(ladder))
			totals := make([]time.Duration, len(ladder))
			oraclePos := make([][]int, len(patterns))
			oracleCnt := make([]int, len(patterns))
			for r := 0; r < rounds; r++ {
				for a, w := range ladder {
					core.SetScanParallelism(w)
					var occs int64
					t0 := time.Now()
					for i, p := range patterns {
						switch kind {
						case "findall":
							res, err := lay.findAll(context.Background(), p, 0)
							if err != nil {
								return Table{}, PScanReport{}, err
							}
							occs += int64(len(res.Positions))
							if a == 0 {
								oraclePos[i] = res.Positions
							} else if !equalPositions(res.Positions, oraclePos[i]) {
								return Table{}, PScanReport{}, fmt.Errorf(
									"pscan: %s findall round %d pattern %d: %d-worker positions differ from the sequential oracle",
									lay.name, r, i, w)
							}
						case "count":
							cnt, err := lay.count(context.Background(), p)
							if err != nil {
								return Table{}, PScanReport{}, err
							}
							occs += int64(cnt)
							if a == 0 {
								oracleCnt[i] = cnt
							} else if cnt != oracleCnt[i] {
								return Table{}, PScanReport{}, fmt.Errorf(
									"pscan: %s count round %d pattern %d: %d workers counted %d, oracle %d",
									lay.name, r, i, w, cnt, oracleCnt[i])
							}
						}
					}
					d := time.Since(t0)
					lats[a].ObserveDuration(d)
					totals[a] += d
					row.Occurrences = occs
				}
			}
			for a, w := range ladder {
				st := PScanArmStats{Workers: w}
				ms := scanModeStats(rounds, totals[a], lats[a].Snapshot())
				st.Rounds, st.TotalUs, st.MeanUs, st.P50Us, st.MaxUs = ms.Rounds, ms.TotalUs, ms.MeanUs, ms.P50Us, ms.MaxUs
				row.Arms = append(row.Arms, st)
			}
			if err := tracePScanWork(lay, kind, patterns, ladder, &row); err != nil {
				return Table{}, PScanReport{}, err
			}
			base := row.Arms[0].MeanUs
			for a := range row.Arms {
				if row.Arms[a].MeanUs > 0 {
					row.Arms[a].Speedup = float64(base) / float64(row.Arms[a].MeanUs)
				}
			}
			report.Rows = append(report.Rows, row)
		}
	}

	t := Table{
		ID: "pscan",
		Title: fmt.Sprintf("partitioned scan worker ladder on %s (%s chars, |P|=%d, %d patterns/round, %d rounds, GOMAXPROCS %d, isa %s)",
			seqName, fmtCount(int64(len(text))), plen, len(patterns), rounds, report.MaxProcs, report.ISA),
		Header: []string{"layout", "kind", "workers", "mean(µs)", "p50(µs)", "speedup", "nodes", "parts", "chains"},
	}
	for _, row := range report.Rows {
		for _, arm := range row.Arms {
			t.Rows = append(t.Rows, []string{
				row.Layout, row.Kind,
				fmt.Sprintf("%d", arm.Workers),
				fmt.Sprintf("%d", arm.MeanUs),
				fmt.Sprintf("%d", arm.P50Us),
				fmt.Sprintf("%.2fx", arm.Speedup),
				fmt.Sprintf("%d", arm.NodesChecked),
				fmt.Sprintf("%d", arm.WorkersUsed),
				fmt.Sprintf("%d", arm.ChainsStitched),
			})
		}
	}
	t.Notes = append(t.Notes,
		"positions/counts cross-checked against the 1-worker sequential oracle every round",
		"nodes (NodesChecked) is parallelism-invariant by the stitch's admission replay — verified per rung",
		fmt.Sprintf("wall-clock speedup needs real cores: this host runs GOMAXPROCS=%d (numCPU %d)", report.MaxProcs, report.NumCPU))
	return t, report, nil
}

// tracePScanWork runs one traced (untimed) pass per rung over the
// pattern set, fills in the work counters, and verifies the partitioned
// scan's accounting: every rung's NodesChecked must equal the
// sequential oracle's exactly (these queries are untruncated, so the
// replay contract applies in full), the traced worker counter must
// match the rung, and multi-worker rungs must stitch at least one
// cross-partition chain on a dense pattern set.
func tracePScanWork(lay struct {
	name    string
	findAll func(ctx context.Context, p []byte, limit int) (core.ScanResult, error)
	count   func(ctx context.Context, p []byte) (int, error)
}, kind string, patterns [][]byte, ladder []int, row *PScanRow) error {
	for a, w := range ladder {
		core.SetScanParallelism(w)
		st := &row.Arms[a]
		for _, p := range patterns {
			tr := trace.New()
			ctx := trace.NewContext(context.Background(), tr)
			var err error
			if kind == "findall" {
				_, err = lay.findAll(ctx, p, 0)
			} else {
				_, err = lay.count(ctx, p)
			}
			if err != nil {
				return err
			}
			for _, rec := range tr.Records() {
				st.NodesChecked += rec.Nodes
				st.WorkersUsed += rec.WorkersUsed
				st.ChainsStitched += rec.ChainsStitched
			}
		}
	}
	oracle := &row.Arms[0]
	if oracle.WorkersUsed != 0 {
		return fmt.Errorf("pscan: %s %s: sequential oracle reported %d scan workers", lay.name, kind, oracle.WorkersUsed)
	}
	for a := 1; a < len(ladder); a++ {
		st := &row.Arms[a]
		if st.NodesChecked != oracle.NodesChecked {
			return fmt.Errorf("pscan: %s %s: %d-worker NodesChecked %d != sequential %d (replay contract broken)",
				lay.name, kind, st.Workers, st.NodesChecked, oracle.NodesChecked)
		}
		if want := int64(st.Workers * len(patterns)); st.WorkersUsed != want {
			return fmt.Errorf("pscan: %s %s: %d-worker rung reported %d partitions over %d patterns, want %d",
				lay.name, kind, st.Workers, st.WorkersUsed, len(patterns), want)
		}
		if st.ChainsStitched == 0 && row.Occurrences > int64(st.Workers*len(patterns)) {
			return fmt.Errorf("pscan: %s %s: %d-worker rung stitched no cross-partition chains over %d occurrences",
				lay.name, kind, st.Workers, row.Occurrences)
		}
	}
	return nil
}
