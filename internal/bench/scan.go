package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/telemetry"
	"github.com/spine-index/spine/internal/trace"
)

// Occurrence-scan kernel comparison: the same FindAll queries answered
// three ways — the plain node-by-node §4 scan (the oracle: block-skip
// off, scalar kernel), the block-max accelerated scan under the scalar
// kernel, and the block-max scan under the word-parallel SWAR kernel.
// All modes see identical patterns on both index layouts, the returned
// positions are cross-checked element-wise against the oracle every
// round, and a traced pass verifies the work accounting: the
// accelerated modes must visit identical node/block counts under either
// kernel (the SWAR prefilter is exact with respect to admission), word
// compares must appear only under SWAR, and visited nodes plus skipped
// blocks must cover at least the oracle's node count. The timing
// difference therefore isolates first the skip index, then the kernel.

// ScanBenchConfig drives RunScanBench over an in-process corpus build.
type ScanBenchConfig struct {
	Sequence    string // corpus sequence name, e.g. "eco"
	PatternLens []int  // pattern-length ladder; nil = {4, 8, 16, 32, 64}
	Patterns    int    // patterns per length; <= 0 = 64
	Rounds      int    // measured rounds per mode; <= 0 = 5
	// Kernel selects the accelerated modes measured against the scalar
	// oracle: "all" (default) runs block-skip+scalar and block-skip+SWAR,
	// "scalar" only the former, "swar" only the latter.
	Kernel string
}

// ScanModeStats aggregates one mode's round durations plus its traced
// work counters over one full pattern set.
type ScanModeStats struct {
	Rounds        int   `json:"rounds"`
	TotalUs       int64 `json:"totalUs"`
	MeanUs        int64 `json:"meanUs"`
	P50Us         int64 `json:"p50Us"`
	MaxUs         int64 `json:"maxUs"`
	NodesVisited  int64 `json:"nodesVisited"`
	BlocksSkipped int64 `json:"blocksSkipped"`
	BlocksScanned int64 `json:"blocksScanned"`
	WordsCompared int64 `json:"wordsCompared,omitempty"`
}

// ScanRow is one layout x pattern-length comparison.
type ScanRow struct {
	Layout     string `json:"layout"` // "reference" or "compact"
	PatternLen int    `json:"patternLen"`
	Patterns   int    `json:"patterns"`
	// Occurrences is the total hits across the pattern set (identical in
	// all modes by construction; cross-checked every round).
	Occurrences int64 `json:"occurrences"`
	// Selective marks lengths above the text's median LEL — the regime
	// where most backbone nodes fail the lel >= |p| test and whole
	// blocks become skippable.
	Selective bool          `json:"selective"`
	Scalar    ScanModeStats `json:"scalar"`
	BlockSkip ScanModeStats `json:"blockSkip"`
	SWAR      ScanModeStats `json:"swar"`
	// Speedup is oracle mean round time over block-skip (scalar kernel)
	// mean round time; SpeedupSWAR the same against the SWAR kernel.
	Speedup     float64 `json:"speedup,omitempty"`
	SpeedupSWAR float64 `json:"speedupSWAR,omitempty"`
}

// ScanReport is the machine-readable comparison (committed as
// BENCH_scan.json).
type ScanReport struct {
	Sequence  string    `json:"sequence"`
	Chars     int       `json:"chars"`
	MedianLEL int       `json:"medianLEL"`
	BlockSize int       `json:"blockSize"`
	Rounds    int       `json:"rounds"`
	Kernel    string    `json:"kernel"` // mode selection: all|swar|scalar
	ISA       string    `json:"isa"`    // compiled word-load path: amd64|generic
	Rows      []ScanRow `json:"rows"`
}

// scanArm is one measured configuration of the two scan knobs.
type scanArm struct {
	name      string
	blockSkip bool
	kernel    core.ScanKernel
	st        *ScanModeStats
}

// RunScanBench builds the sequence on both layouts and measures FindAll
// rounds in each selected mode, returning the human table plus the JSON
// report. Modes alternate within each round so cache warm-up and
// background noise spread evenly.
func RunScanBench(c *Corpus, cfg ScanBenchConfig) (Table, ScanReport, error) {
	text, err := c.Get(cfg.Sequence)
	if err != nil {
		return Table{}, ScanReport{}, err
	}
	plens := cfg.PatternLens
	if len(plens) == 0 {
		plens = []int{4, 8, 16, 32, 64}
	}
	nPats := cfg.Patterns
	if nPats <= 0 {
		nPats = 64
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 5
	}
	sel := cfg.Kernel
	if sel == "" {
		sel = "all"
	}
	wantSkip := sel == "all" || sel == "scalar"
	wantSWAR := sel == "all" || sel == "swar"
	if !wantSkip && !wantSWAR {
		return Table{}, ScanReport{}, fmt.Errorf("scan: unknown kernel selection %q (want all, swar or scalar)", sel)
	}

	idx := core.Build(text)
	comp, err := core.Freeze(idx, alphabetFor(cfg.Sequence))
	if err != nil {
		return Table{}, ScanReport{}, err
	}
	report := ScanReport{
		Sequence:  cfg.Sequence,
		Chars:     len(text),
		MedianLEL: medianLEL(idx),
		BlockSize: core.BlockSize,
		Rounds:    rounds,
		Kernel:    sel,
		ISA:       core.ScanKernelISA(),
	}

	prevSkip := core.SetBlockSkip(true)
	prevKernel := core.ActiveScanKernel()
	defer func() {
		core.SetBlockSkip(prevSkip)
		core.SetScanKernel(prevKernel)
	}()

	type layout struct {
		name    string
		findAll func(ctx context.Context, p []byte, limit int) (core.ScanResult, error)
	}
	for _, lay := range []layout{
		{"reference", idx.FindAllCtx},
		{"compact", comp.FindAllCtx},
	} {
		for _, plen := range plens {
			patterns := SamplePatterns(text, nPats, plen)
			if len(patterns) == 0 {
				continue
			}
			row := ScanRow{
				Layout:     lay.name,
				PatternLen: plen,
				Patterns:   len(patterns),
				Selective:  plen > report.MedianLEL,
			}
			arms := []scanArm{{"scalar", false, core.KernelScalar, &row.Scalar}}
			if wantSkip {
				arms = append(arms, scanArm{"blockSkip", true, core.KernelScalar, &row.BlockSkip})
			}
			if wantSWAR {
				arms = append(arms, scanArm{"swar", true, core.KernelSWAR, &row.SWAR})
			}

			lats := make([]telemetry.Histogram, len(arms))
			totals := make([]time.Duration, len(arms))
			oraclePos := make([][]int, len(patterns))
			for r := 0; r < rounds; r++ {
				for a, arm := range arms {
					core.SetBlockSkip(arm.blockSkip)
					core.SetScanKernel(arm.kernel)
					var occs int64
					t0 := time.Now()
					for i, p := range patterns {
						res, err := lay.findAll(context.Background(), p, 0)
						if err != nil {
							return Table{}, ScanReport{}, err
						}
						occs += int64(len(res.Positions))
						if a == 0 {
							oraclePos[i] = res.Positions
						} else if !equalPositions(res.Positions, oraclePos[i]) {
							return Table{}, ScanReport{}, fmt.Errorf(
								"scan: %s |P|=%d round %d pattern %d: %s positions differ from the scalar oracle",
								lay.name, plen, r, i, arm.name)
						}
					}
					d := time.Since(t0)
					lats[a].ObserveDuration(d)
					totals[a] += d
					row.Occurrences = occs
				}
			}
			for a, arm := range arms {
				*arm.st = scanModeStats(rounds, totals[a], lats[a].Snapshot())
			}
			if err := traceScanWork(lay.findAll, patterns, arms, &row); err != nil {
				return Table{}, ScanReport{}, err
			}
			if wantSkip && row.BlockSkip.MeanUs > 0 {
				row.Speedup = float64(row.Scalar.MeanUs) / float64(row.BlockSkip.MeanUs)
			}
			if wantSWAR && row.SWAR.MeanUs > 0 {
				row.SpeedupSWAR = float64(row.Scalar.MeanUs) / float64(row.SWAR.MeanUs)
			}
			report.Rows = append(report.Rows, row)
		}
	}

	t := Table{
		ID: "scan",
		Title: fmt.Sprintf("scalar vs block-skip vs SWAR FindAll on %s (%s chars, median LEL %d, %d patterns/row, %d rounds, isa %s)",
			cfg.Sequence, fmtCount(int64(len(text))), report.MedianLEL, nPats, rounds, report.ISA),
		Header: []string{"layout", "|P|", "scalar(µs)", "skip(µs)", "swar(µs)", "spd skip", "spd swar",
			"nodes skip", "blk skipped", "words"},
	}
	dash := func(on bool, s string) string {
		if !on {
			return "-"
		}
		return s
	}
	for _, row := range report.Rows {
		mark := ""
		if row.Selective {
			mark = "*"
		}
		t.Rows = append(t.Rows, []string{
			row.Layout,
			fmt.Sprintf("%d%s", row.PatternLen, mark),
			fmt.Sprintf("%d", row.Scalar.MeanUs),
			dash(wantSkip, fmt.Sprintf("%d", row.BlockSkip.MeanUs)),
			dash(wantSWAR, fmt.Sprintf("%d", row.SWAR.MeanUs)),
			dash(wantSkip, fmt.Sprintf("%.2fx", row.Speedup)),
			dash(wantSWAR, fmt.Sprintf("%.2fx", row.SpeedupSWAR)),
			dash(wantSkip || wantSWAR, fmt.Sprintf("%d", maxInt64(row.BlockSkip.NodesVisited, row.SWAR.NodesVisited))),
			dash(wantSkip || wantSWAR, fmt.Sprintf("%d", maxInt64(row.BlockSkip.BlocksSkipped, row.SWAR.BlocksSkipped))),
			dash(wantSWAR, fmt.Sprintf("%d", row.SWAR.WordsCompared)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("* = |P| above the median LEL (%d): the selective regime the skip index and SWAR prefilter target", report.MedianLEL),
		"positions cross-checked against the scalar oracle every round; node/block/word accounting verified per pattern set")
	return t, report, nil
}

// traceScanWork runs one traced (untimed) pass per arm over the pattern
// set, fills in the work counters, and verifies the accounting: the
// accelerated arms must visit no more occurrence-stage nodes than the
// oracle, their visited nodes plus skipped-block coverage must reach at
// least the oracle count, both accelerated arms must agree exactly on
// nodes/blocks (the kernel-invariance contract), and word compares must
// appear under the SWAR kernel only.
func traceScanWork(findAll func(ctx context.Context, p []byte, limit int) (core.ScanResult, error), patterns [][]byte, arms []scanArm, row *ScanRow) error {
	for _, arm := range arms {
		core.SetBlockSkip(arm.blockSkip)
		core.SetScanKernel(arm.kernel)
		for _, p := range patterns {
			tr := trace.New()
			ctx := trace.NewContext(context.Background(), tr)
			if _, err := findAll(ctx, p, 0); err != nil {
				return err
			}
			for _, rec := range tr.Records() {
				arm.st.WordsCompared += rec.WordsCompared
				if rec.Stage != trace.StageOccurrences {
					continue
				}
				arm.st.NodesVisited += rec.Nodes
				arm.st.BlocksSkipped += rec.BlocksSkipped
				arm.st.BlocksScanned += rec.BlocksScanned
			}
		}
	}
	s := &row.Scalar
	if s.WordsCompared != 0 {
		return fmt.Errorf("scan: %s |P|=%d: scalar oracle recorded %d word compares",
			row.Layout, row.PatternLen, s.WordsCompared)
	}
	for _, arm := range arms[1:] {
		b := arm.st
		if b.NodesVisited > s.NodesVisited {
			return fmt.Errorf("scan: %s |P|=%d: %s visited %d nodes > scalar %d",
				row.Layout, row.PatternLen, arm.name, b.NodesVisited, s.NodesVisited)
		}
		if covered := b.NodesVisited + int64(core.BlockSize)*b.BlocksSkipped; covered < s.NodesVisited {
			return fmt.Errorf("scan: %s |P|=%d: %s covered %d nodes < scalar %d",
				row.Layout, row.PatternLen, arm.name, covered, s.NodesVisited)
		}
		if arm.kernel == core.KernelSWAR && b.WordsCompared == 0 {
			return fmt.Errorf("scan: %s |P|=%d: SWAR arm recorded no word compares",
				row.Layout, row.PatternLen)
		}
		if arm.kernel == core.KernelScalar && b.WordsCompared != 0 {
			return fmt.Errorf("scan: %s |P|=%d: scalar-kernel arm recorded %d word compares",
				row.Layout, row.PatternLen, b.WordsCompared)
		}
	}
	if len(arms) == 3 {
		bs, sw := arms[1].st, arms[2].st
		if bs.NodesVisited != sw.NodesVisited ||
			bs.BlocksSkipped != sw.BlocksSkipped ||
			bs.BlocksScanned != sw.BlocksScanned {
			return fmt.Errorf("scan: %s |P|=%d: kernel invariance broken: blockSkip (%d nodes, %d/%d blocks) vs swar (%d nodes, %d/%d blocks)",
				row.Layout, row.PatternLen,
				bs.NodesVisited, bs.BlocksSkipped, bs.BlocksScanned,
				sw.NodesVisited, sw.BlocksSkipped, sw.BlocksScanned)
		}
	}
	return nil
}

func scanModeStats(rounds int, total time.Duration, h telemetry.HistogramSnapshot) ScanModeStats {
	s := ScanModeStats{
		Rounds:  rounds,
		TotalUs: total.Microseconds(),
		P50Us:   h.P50,
		MaxUs:   h.Max,
	}
	if rounds > 0 {
		s.MeanUs = s.TotalUs / int64(rounds)
	}
	return s
}

// medianLEL is the median longest-early-terminating-suffix length over
// the backbone — the pattern length at which roughly half the nodes
// already fail the lel >= |p| occurrence test.
func medianLEL(idx *core.Index) int {
	n := idx.Len()
	if n == 0 {
		return 0
	}
	lels := make([]int, n)
	for i := 1; i <= n; i++ {
		_, lel := idx.Link(i)
		lels[i-1] = int(lel)
	}
	sort.Ints(lels)
	return lels[n/2]
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func equalPositions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
