package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/telemetry"
	"github.com/spine-index/spine/internal/trace"
)

// Scalar-vs-block-skip comparison: the same FindAll queries answered by
// the plain node-by-node §4 occurrence scan versus the block-max
// accelerated scan, on both index layouts. Both modes see identical
// patterns, the returned positions are cross-checked element-wise every
// round, and a traced pass verifies the work accounting (the
// accelerated scan's visited nodes plus its skipped blocks must cover
// at least the scalar scan's node count, while visiting no more), so
// the timing difference isolates the skip index itself.

// ScanBenchConfig drives RunScanBench over an in-process corpus build.
type ScanBenchConfig struct {
	Sequence    string // corpus sequence name, e.g. "eco"
	PatternLens []int  // pattern-length ladder; nil = {4, 8, 16, 32, 64}
	Patterns    int    // patterns per length; <= 0 = 64
	Rounds      int    // measured rounds per mode; <= 0 = 5
}

// ScanModeStats aggregates one mode's round durations plus its traced
// work counters over one full pattern set.
type ScanModeStats struct {
	Rounds        int   `json:"rounds"`
	TotalUs       int64 `json:"totalUs"`
	MeanUs        int64 `json:"meanUs"`
	P50Us         int64 `json:"p50Us"`
	MaxUs         int64 `json:"maxUs"`
	NodesVisited  int64 `json:"nodesVisited"`
	BlocksSkipped int64 `json:"blocksSkipped"`
	BlocksScanned int64 `json:"blocksScanned"`
}

// ScanRow is one layout x pattern-length comparison.
type ScanRow struct {
	Layout     string `json:"layout"` // "reference" or "compact"
	PatternLen int    `json:"patternLen"`
	Patterns   int    `json:"patterns"`
	// Occurrences is the total hits across the pattern set (identical in
	// both modes by construction; cross-checked every round).
	Occurrences int64 `json:"occurrences"`
	// Selective marks lengths above the text's median LEL — the regime
	// where most backbone nodes fail the lel >= |p| test and whole
	// blocks become skippable.
	Selective bool          `json:"selective"`
	Scalar    ScanModeStats `json:"scalar"`
	BlockSkip ScanModeStats `json:"blockSkip"`
	// Speedup is scalar mean round time over block-skip mean round time.
	Speedup float64 `json:"speedup"`
}

// ScanReport is the machine-readable comparison (committed as
// BENCH_scan.json).
type ScanReport struct {
	Sequence  string    `json:"sequence"`
	Chars     int       `json:"chars"`
	MedianLEL int       `json:"medianLEL"`
	BlockSize int       `json:"blockSize"`
	Rounds    int       `json:"rounds"`
	Rows      []ScanRow `json:"rows"`
}

// RunScanBench builds the sequence on both layouts and measures FindAll
// rounds with the block-skip scan disabled versus enabled, returning
// the human table plus the JSON report. Modes alternate within each
// round so cache warm-up and background noise spread evenly.
func RunScanBench(c *Corpus, cfg ScanBenchConfig) (Table, ScanReport, error) {
	text, err := c.Get(cfg.Sequence)
	if err != nil {
		return Table{}, ScanReport{}, err
	}
	plens := cfg.PatternLens
	if len(plens) == 0 {
		plens = []int{4, 8, 16, 32, 64}
	}
	nPats := cfg.Patterns
	if nPats <= 0 {
		nPats = 64
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 5
	}

	idx := core.Build(text)
	comp, err := core.Freeze(idx, alphabetFor(cfg.Sequence))
	if err != nil {
		return Table{}, ScanReport{}, err
	}
	report := ScanReport{
		Sequence:  cfg.Sequence,
		Chars:     len(text),
		MedianLEL: medianLEL(idx),
		BlockSize: core.BlockSize,
		Rounds:    rounds,
	}

	prev := core.SetBlockSkip(true)
	defer core.SetBlockSkip(prev)

	type layout struct {
		name    string
		findAll func(ctx context.Context, p []byte, limit int) (core.ScanResult, error)
	}
	for _, lay := range []layout{
		{"reference", idx.FindAllCtx},
		{"compact", comp.FindAllCtx},
	} {
		for _, plen := range plens {
			patterns := SamplePatterns(text, nPats, plen)
			if len(patterns) == 0 {
				continue
			}
			row := ScanRow{
				Layout:     lay.name,
				PatternLen: plen,
				Patterns:   len(patterns),
				Selective:  plen > report.MedianLEL,
			}

			var scalarLat, skipLat telemetry.Histogram
			var scalarTotal, skipTotal time.Duration
			scalarPos := make([][]int, len(patterns))
			for r := 0; r < rounds; r++ {
				core.SetBlockSkip(false)
				t0 := time.Now()
				for i, p := range patterns {
					res, err := lay.findAll(context.Background(), p, 0)
					if err != nil {
						return Table{}, ScanReport{}, err
					}
					scalarPos[i] = res.Positions
				}
				d := time.Since(t0)
				scalarLat.ObserveDuration(d)
				scalarTotal += d

				core.SetBlockSkip(true)
				var occs int64
				t0 = time.Now()
				for i, p := range patterns {
					res, err := lay.findAll(context.Background(), p, 0)
					if err != nil {
						return Table{}, ScanReport{}, err
					}
					occs += int64(len(res.Positions))
					if !equalPositions(res.Positions, scalarPos[i]) {
						return Table{}, ScanReport{}, fmt.Errorf(
							"scan: %s |P|=%d round %d pattern %d: block-skip positions differ from scalar",
							lay.name, plen, r, i)
					}
				}
				d = time.Since(t0)
				skipLat.ObserveDuration(d)
				skipTotal += d
				row.Occurrences = occs
			}

			row.Scalar = scanModeStats(rounds, scalarTotal, scalarLat.Snapshot())
			row.BlockSkip = scanModeStats(rounds, skipTotal, skipLat.Snapshot())
			if err := traceScanWork(lay.findAll, patterns, &row); err != nil {
				return Table{}, ScanReport{}, err
			}
			if row.BlockSkip.MeanUs > 0 {
				row.Speedup = float64(row.Scalar.MeanUs) / float64(row.BlockSkip.MeanUs)
			}
			report.Rows = append(report.Rows, row)
		}
	}

	t := Table{
		ID: "scan",
		Title: fmt.Sprintf("scalar vs block-skip FindAll on %s (%s chars, median LEL %d, %d patterns/row, %d rounds)",
			cfg.Sequence, fmtCount(int64(len(text))), report.MedianLEL, nPats, rounds),
		Header: []string{"layout", "|P|", "scalar(µs)", "skip(µs)", "speedup",
			"nodes scalar", "nodes skip", "blk skipped", "blk scanned"},
	}
	for _, row := range report.Rows {
		mark := ""
		if row.Selective {
			mark = "*"
		}
		t.Rows = append(t.Rows, []string{
			row.Layout,
			fmt.Sprintf("%d%s", row.PatternLen, mark),
			fmt.Sprintf("%d", row.Scalar.MeanUs),
			fmt.Sprintf("%d", row.BlockSkip.MeanUs),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%d", row.Scalar.NodesVisited),
			fmt.Sprintf("%d", row.BlockSkip.NodesVisited),
			fmt.Sprintf("%d", row.BlockSkip.BlocksSkipped),
			fmt.Sprintf("%d", row.BlockSkip.BlocksScanned),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("* = |P| above the median LEL (%d): the selective regime the skip index targets", report.MedianLEL),
		"positions cross-checked scalar vs block-skip every round; node/block accounting verified per pattern set")
	return t, report, nil
}

// traceScanWork runs one traced (untimed) pass per mode over the
// pattern set, fills in the work counters, and verifies the accounting:
// the accelerated scan must visit no more occurrence-stage nodes than
// the scalar scan, and its visited nodes plus skipped-block coverage
// must reach at least the scalar count.
func traceScanWork(findAll func(ctx context.Context, p []byte, limit int) (core.ScanResult, error), patterns [][]byte, row *ScanRow) error {
	for _, mode := range []struct {
		skip bool
		st   *ScanModeStats
	}{{false, &row.Scalar}, {true, &row.BlockSkip}} {
		core.SetBlockSkip(mode.skip)
		for _, p := range patterns {
			tr := trace.New()
			ctx := trace.NewContext(context.Background(), tr)
			if _, err := findAll(ctx, p, 0); err != nil {
				return err
			}
			for _, rec := range tr.Records() {
				if rec.Stage != trace.StageOccurrences {
					continue
				}
				mode.st.NodesVisited += rec.Nodes
				mode.st.BlocksSkipped += rec.BlocksSkipped
				mode.st.BlocksScanned += rec.BlocksScanned
			}
		}
	}
	s, b := &row.Scalar, &row.BlockSkip
	if b.NodesVisited > s.NodesVisited {
		return fmt.Errorf("scan: %s |P|=%d: block-skip visited %d nodes > scalar %d",
			row.Layout, row.PatternLen, b.NodesVisited, s.NodesVisited)
	}
	if covered := b.NodesVisited + int64(core.BlockSize)*b.BlocksSkipped; covered < s.NodesVisited {
		return fmt.Errorf("scan: %s |P|=%d: block-skip covered %d nodes < scalar %d",
			row.Layout, row.PatternLen, covered, s.NodesVisited)
	}
	return nil
}

func scanModeStats(rounds int, total time.Duration, h telemetry.HistogramSnapshot) ScanModeStats {
	s := ScanModeStats{
		Rounds:  rounds,
		TotalUs: total.Microseconds(),
		P50Us:   h.P50,
		MaxUs:   h.Max,
	}
	if rounds > 0 {
		s.MeanUs = s.TotalUs / int64(rounds)
	}
	return s
}

// medianLEL is the median longest-early-terminating-suffix length over
// the backbone — the pattern length at which roughly half the nodes
// already fail the lel >= |p| occurrence test.
func medianLEL(idx *core.Index) int {
	n := idx.Len()
	if n == 0 {
		return 0
	}
	lels := make([]int, n)
	for i := 1; i <= n; i++ {
		_, lel := idx.Link(i)
		lels[i-1] = int(lel)
	}
	sort.Ints(lels)
	return lels[n/2]
}

func equalPositions(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
