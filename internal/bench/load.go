package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/spine-index/spine/internal/obs"
	"github.com/spine-index/spine/internal/telemetry"
)

// MixEntry is one weighted endpoint in a load-generator query mix.
type MixEntry struct {
	Endpoint string // contains | find | findall | count
	Weight   int
}

// DefaultMix is a read-heavy production-ish blend: mostly membership
// probes, some enumeration.
var DefaultMix = []MixEntry{
	{"contains", 5},
	{"find", 2},
	{"findall", 2},
	{"count", 1},
}

// LoadConfig drives RunLoad against a running spineserve instance.
type LoadConfig struct {
	BaseURL      string        // e.g. "http://localhost:8080"
	Patterns     [][]byte      // query patterns, cycled deterministically
	Mix          []MixEntry    // weighted endpoints; nil = DefaultMix
	Requests     int           // total requests to issue
	Concurrency  int           // parallel workers; <= 0 means 1
	Timeout      time.Duration // per-request client timeout; 0 = 30s
	FindAllLimit int           // limit parameter for /findall; 0 omits it
}

// LoadResult aggregates one endpoint's outcomes during a load run.
type LoadResult struct {
	Endpoint string
	Requests int64
	Errors   int64 // transport failures + non-2xx responses
	Rejected int64 // 429s, counted separately from Errors
	Latency  telemetry.HistogramSnapshot
}

// RunLoad replays a weighted query mix against a spineserve base URL and
// reports per-endpoint latency histograms. The schedule is deterministic:
// request i uses mix entry schedule[i % len(schedule)] and pattern
// i % len(patterns), so two runs with the same config issue the same
// requests in the same per-worker order.
func RunLoad(cfg LoadConfig) (Table, []LoadResult, error) {
	if cfg.BaseURL == "" {
		return Table{}, nil, fmt.Errorf("load: BaseURL is required")
	}
	if len(cfg.Patterns) == 0 {
		return Table{}, nil, fmt.Errorf("load: at least one pattern is required")
	}
	if cfg.Requests <= 0 {
		return Table{}, nil, fmt.Errorf("load: Requests must be positive")
	}
	mix := cfg.Mix
	if len(mix) == 0 {
		mix = DefaultMix
	}
	schedule, err := expandMix(mix)
	if err != nil {
		return Table{}, nil, err
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 1
	}
	timeout := cfg.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: timeout}

	type epStats struct {
		requests telemetry.Counter
		errors   telemetry.Counter
		rejected telemetry.Counter
		latency  telemetry.Histogram
	}
	stats := make(map[string]*epStats, len(mix))
	for _, m := range mix {
		if _, ok := stats[m.Endpoint]; !ok {
			stats[m.Endpoint] = &epStats{}
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ep := schedule[i%len(schedule)]
				p := cfg.Patterns[i%len(cfg.Patterns)]
				st := stats[ep]
				st.requests.Inc()
				t0 := time.Now()
				status, err := issue(client, cfg, ep, p, i)
				st.latency.ObserveDuration(time.Since(t0))
				switch {
				case err != nil:
					st.errors.Inc()
				case status == http.StatusTooManyRequests:
					st.rejected.Inc()
				case status < 200 || status > 299:
					st.errors.Inc()
				}
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	results := make([]LoadResult, 0, len(names))
	for _, name := range names {
		st := stats[name]
		results = append(results, LoadResult{
			Endpoint: name,
			Requests: st.requests.Value(),
			Errors:   st.errors.Value(),
			Rejected: st.rejected.Value(),
			Latency:  st.latency.Snapshot(),
		})
	}

	t := Table{
		ID:     "load",
		Title:  fmt.Sprintf("query replay vs %s (%d requests, %d workers)", cfg.BaseURL, cfg.Requests, workers),
		Header: []string{"endpoint", "requests", "errors", "429s", "p50(µs)", "p90(µs)", "p99(µs)", "max(µs)"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Endpoint,
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.Errors),
			fmt.Sprintf("%d", r.Rejected),
			fmt.Sprintf("%d", r.Latency.P50),
			fmt.Sprintf("%d", r.Latency.P90),
			fmt.Sprintf("%d", r.Latency.P99),
			fmt.Sprintf("%d", r.Latency.Max),
		})
	}
	rps := float64(cfg.Requests) / elapsed.Seconds()
	t.Notes = append(t.Notes,
		fmt.Sprintf("%.0f req/s over %s; quantiles are log2-bucket upper bounds (exact to 2x)", rps, fmtDuration(elapsed)))
	return t, results, nil
}

// WriteLoadPrometheus renders per-endpoint load results in Prometheus
// text exposition format — the client-side twin of the server's
// /metrics?format=prom, under a spinebench_ prefix so the two scrape
// sets diff cleanly side by side.
func WriteLoadPrometheus(w io.Writer, results []LoadResult) error {
	p := telemetry.NewPromWriter(w)
	p.Family("spinebench_requests_total", "counter", "Requests issued by the load generator, by endpoint.")
	for _, r := range results {
		p.Sample("spinebench_requests_total", []telemetry.Label{{Name: "endpoint", Value: r.Endpoint}}, float64(r.Requests))
	}
	p.Family("spinebench_errors_total", "counter", "Transport failures and non-2xx responses, by endpoint.")
	for _, r := range results {
		p.Sample("spinebench_errors_total", []telemetry.Label{{Name: "endpoint", Value: r.Endpoint}}, float64(r.Errors))
	}
	p.Family("spinebench_rejected_total", "counter", "429 responses (server load shedding), by endpoint.")
	for _, r := range results {
		p.Sample("spinebench_rejected_total", []telemetry.Label{{Name: "endpoint", Value: r.Endpoint}}, float64(r.Rejected))
	}
	p.Family("spinebench_request_duration_seconds", "histogram", "Client-observed request latency by endpoint (log2 buckets).")
	for _, r := range results {
		p.Histogram("spinebench_request_duration_seconds", []telemetry.Label{{Name: "endpoint", Value: r.Endpoint}}, r.Latency, 1e-6)
	}
	return p.Err()
}

// ObsStats is the server-side exporter counter snapshot, re-exported so
// load-generator callers don't import the obs package themselves.
type ObsStats = obs.PipelineStats

// FetchObsStats reads the server's wide-event exporter counters from the
// /metrics JSON snapshot. A server without the obs layer (older build,
// non-spineserve endpoint) reports Enabled=false rather than an error,
// so callers can skip the cross-check gracefully.
func FetchObsStats(baseURL string, timeout time.Duration) (ObsStats, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return ObsStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return ObsStats{}, fmt.Errorf("load: /metrics returned %s", resp.Status)
	}
	var body struct {
		Obs ObsStats `json:"obs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return ObsStats{}, fmt.Errorf("load: decoding /metrics: %w", err)
	}
	return body.Obs, nil
}

// expandMix turns weighted entries into a deterministic round-robin
// schedule: {contains:2, count:1} -> [contains contains count].
func expandMix(mix []MixEntry) ([]string, error) {
	var schedule []string
	for _, m := range mix {
		switch m.Endpoint {
		case "contains", "find", "findall", "count":
		default:
			return nil, fmt.Errorf("load: unknown mix endpoint %q", m.Endpoint)
		}
		if m.Weight <= 0 {
			return nil, fmt.Errorf("load: mix weight for %q must be positive", m.Endpoint)
		}
		for i := 0; i < m.Weight; i++ {
			schedule = append(schedule, m.Endpoint)
		}
	}
	if len(schedule) == 0 {
		return nil, fmt.Errorf("load: empty mix")
	}
	return schedule, nil
}

// issue performs one GET and returns the status code; the body is
// drained so connections are reused. Every request carries a
// deterministic W3C traceparent plus an X-Request-Id derived from its
// schedule index, so the server's wide events, request logs and slowlog
// entries all correlate back to the exact generated request.
func issue(client *http.Client, cfg LoadConfig, endpoint string, pattern []byte, seq int) (int, error) {
	u := cfg.BaseURL + "/" + endpoint + "?q=" + url.QueryEscape(string(pattern))
	if endpoint == "findall" && cfg.FindAllLimit > 0 {
		u += fmt.Sprintf("&limit=%d", cfg.FindAllLimit)
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("X-Request-Id", fmt.Sprintf("spinebench-%d", seq))
	req.Header.Set("traceparent", fmt.Sprintf("00-%032x-%016x-01", seq+1, seq+1))
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// SamplePatterns extracts n deterministic substrings of length plen from
// the text, evenly strided so the samples cover the whole sequence.
// Every sample is a real occurrence, mirroring §6's positive workloads.
func SamplePatterns(text []byte, n, plen int) [][]byte {
	if plen <= 0 || plen > len(text) || n <= 0 {
		return nil
	}
	span := len(text) - plen
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		off := 0
		if n > 1 {
			off = span * i / (n - 1)
		}
		out = append(out, text[off:off+plen])
	}
	return out
}
