// Package pager provides the disk substrate for the paper's §6.2
// experiments: a page file, a pin/unpin buffer manager with pluggable
// replacement policies, optional synchronous writes (the paper constructs
// disk indexes with O_SYNC "to minimize the modulation of the locality
// behavior by other system factors"), and read/write I/O counters.
//
// Two replacement policies are provided: plain LRU, and TopRetention —
// the paper's observation-driven policy "retain as much as possible of the
// top part of the Link Table in memory", which exploits the top-heavy
// link-destination distribution of Figure 8.
package pager

import (
	"fmt"
	"os"
)

// DefaultPageSize is the page granularity used when Options.PageSize is 0.
const DefaultPageSize = 4096

// IOStats counts physical page transfers.
type IOStats struct {
	Reads  int64 // pages read from disk
	Writes int64 // pages written to disk
}

// Options configures a page file.
type Options struct {
	// PageSize in bytes; 0 means DefaultPageSize.
	PageSize int
	// Sync makes every page write synchronous (O_SYNC), per the paper's
	// disk-construction methodology.
	Sync bool
}

// File is a page-granular file. Pages are addressed by dense int32 ids;
// reading a page beyond the current end returns zeroes (the file grows on
// write).
type File struct {
	f        *os.File
	pageSize int
	pages    int32 // pages currently on disk
	stats    IOStats
	fault    func(op string, page int32) error
}

// SetFaultHook installs a hook invoked before every physical read ("read")
// or write ("write"); a non-nil return injects that error as an I/O
// failure. For failure-injection tests; pass nil to clear.
func (pf *File) SetFaultHook(h func(op string, page int32) error) { pf.fault = h }

// Create creates (or truncates) a page file at path.
func Create(path string, opts Options) (*File, error) {
	flags := os.O_RDWR | os.O_CREATE | os.O_TRUNC
	if opts.Sync {
		flags |= os.O_SYNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: create %s: %w", path, err)
	}
	ps := opts.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	return &File{f: f, pageSize: ps}, nil
}

// Open opens an existing page file at path. The file size must be a whole
// number of pages of the given size.
func Open(path string, opts Options) (*File, error) {
	flags := os.O_RDWR
	if opts.Sync {
		flags |= os.O_SYNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	ps := opts.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	if info.Size()%int64(ps) != 0 {
		f.Close()
		return nil, fmt.Errorf("pager: %s size %d not a multiple of page size %d", path, info.Size(), ps)
	}
	return &File{f: f, pageSize: ps, pages: int32(info.Size() / int64(ps))}, nil
}

// PageSize returns the page size in bytes.
func (pf *File) PageSize() int { return pf.pageSize }

// Pages returns the number of pages currently on disk.
func (pf *File) Pages() int32 { return pf.pages }

// Stats returns the physical I/O counters so far.
func (pf *File) Stats() IOStats { return pf.stats }

// ReadPage reads page id into buf (len == PageSize). Pages never written
// read as zeroes.
func (pf *File) ReadPage(id int32, buf []byte) error {
	if len(buf) != pf.pageSize {
		return fmt.Errorf("pager: read buffer %d bytes, want %d", len(buf), pf.pageSize)
	}
	if id < 0 {
		return fmt.Errorf("pager: negative page id %d", id)
	}
	if id >= pf.pages {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	if pf.fault != nil {
		if err := pf.fault("read", id); err != nil {
			return fmt.Errorf("pager: read page %d: %w", id, err)
		}
	}
	pf.stats.Reads++
	_, err := pf.f.ReadAt(buf, int64(id)*int64(pf.pageSize))
	if err != nil {
		return fmt.Errorf("pager: read page %d: %w", id, err)
	}
	return nil
}

// WritePage writes buf (len == PageSize) as page id, growing the file as
// needed.
func (pf *File) WritePage(id int32, buf []byte) error {
	if len(buf) != pf.pageSize {
		return fmt.Errorf("pager: write buffer %d bytes, want %d", len(buf), pf.pageSize)
	}
	if id < 0 {
		return fmt.Errorf("pager: negative page id %d", id)
	}
	if pf.fault != nil {
		if err := pf.fault("write", id); err != nil {
			return fmt.Errorf("pager: write page %d: %w", id, err)
		}
	}
	pf.stats.Writes++
	if _, err := pf.f.WriteAt(buf, int64(id)*int64(pf.pageSize)); err != nil {
		return fmt.Errorf("pager: write page %d: %w", id, err)
	}
	if id >= pf.pages {
		pf.pages = id + 1
	}
	return nil
}

// Close closes the underlying file.
func (pf *File) Close() error { return pf.f.Close() }
