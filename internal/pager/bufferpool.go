package pager

import (
	"container/list"
	"fmt"
)

// Policy selects eviction victims for the buffer pool.
type Policy int

const (
	// LRU evicts the least recently used unpinned page.
	LRU Policy = iota
	// TopRetention protects the top (lowest-numbered) pages — up to half
	// the pool — and runs LRU over the rest. This is the buffering
	// strategy §6.2 derives from the link-destination distribution:
	// "retain as much as possible of the top part of the Link Table in
	// memory", while the actively growing tail still caches normally.
	TopRetention
)

// String names the policy for reports.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case TopRetention:
		return "top-retention"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

type frame struct {
	id     int32
	data   []byte
	dirty  bool
	pins   int
	lruPos *list.Element // LRU bookkeeping, nil while pinned
}

// Pool is a pin/unpin buffer manager over a page File.
type Pool struct {
	file     *File
	capacity int
	policy   Policy
	frames   map[int32]*frame
	lru      *list.List // front = most recently used; unpinned frames only

	hits, misses int64
}

// NewPool wraps file with a buffer pool holding up to capacity pages
// (minimum 1).
func NewPool(file *File, capacity int, policy Policy) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{
		file:     file,
		capacity: capacity,
		policy:   policy,
		frames:   make(map[int32]*frame),
		lru:      list.New(),
	}
}

// Get pins page id and returns its in-memory bytes. The caller must call
// Unpin (optionally marking the page dirty) when done; holding more pins
// than the pool capacity is an error surfaced by the next miss.
func (p *Pool) Get(id int32) ([]byte, error) {
	if fr, ok := p.frames[id]; ok {
		p.hits++
		p.pin(fr)
		return fr.data, nil
	}
	p.misses++
	if len(p.frames) >= p.capacity {
		if err := p.evictOne(); err != nil {
			return nil, err
		}
	}
	fr := &frame{id: id, data: make([]byte, p.file.PageSize()), pins: 0}
	if err := p.file.ReadPage(id, fr.data); err != nil {
		return nil, err
	}
	p.frames[id] = fr
	p.pin(fr)
	return fr.data, nil
}

func (p *Pool) pin(fr *frame) {
	if fr.lruPos != nil {
		p.lru.Remove(fr.lruPos)
		fr.lruPos = nil
	}
	fr.pins++
}

// Unpin releases one pin on page id, marking the page dirty if it was
// modified.
func (p *Pool) Unpin(id int32, dirty bool) {
	fr, ok := p.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("pager: unpin of page %d that is not pinned", id))
	}
	if dirty {
		fr.dirty = true
	}
	fr.pins--
	if fr.pins == 0 {
		fr.lruPos = p.lru.PushFront(fr)
	}
}

func (p *Pool) evictOne() error {
	var victim *frame
	switch p.policy {
	case TopRetention:
		// Pages below the protect threshold hold the top of the node
		// (link) table; evict the least recently used page outside that
		// region, falling back to plain LRU if only head pages remain.
		protect := int32(p.capacity / 2)
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			fr := e.Value.(*frame)
			if fr.id >= protect {
				victim = fr
				break
			}
		}
		if victim == nil {
			if e := p.lru.Back(); e != nil {
				victim = e.Value.(*frame)
			}
		}
	default: // LRU
		if e := p.lru.Back(); e != nil {
			victim = e.Value.(*frame)
		}
	}
	if victim == nil {
		return fmt.Errorf("pager: buffer pool exhausted: all %d pages pinned", p.capacity)
	}
	if victim.dirty {
		if err := p.file.WritePage(victim.id, victim.data); err != nil {
			return err
		}
	}
	p.lru.Remove(victim.lruPos)
	delete(p.frames, victim.id)
	return nil
}

// Flush writes every dirty resident page to disk (pages stay resident).
func (p *Pool) Flush() error {
	for _, fr := range p.frames {
		if fr.dirty {
			if err := p.file.WritePage(fr.id, fr.data); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// HitRate returns the fraction of Get calls served from memory.
func (p *Pool) HitRate() float64 {
	total := p.hits + p.misses
	if total == 0 {
		return 0
	}
	return float64(p.hits) / float64(total)
}

// Resident returns the number of pages currently buffered.
func (p *Pool) Resident() int { return len(p.frames) }
