package pager

import "testing"

func TestRangeCacheProbeMissThenHit(t *testing.T) {
	rc := NewRangeCache(1 << 20)
	if rc.Probe(0, 4096) {
		t.Fatal("first probe hit an empty cache")
	}
	if !rc.Probe(0, 4096) {
		t.Fatal("repeat probe missed")
	}
	if !rc.Probe(1024, 1024) {
		t.Fatal("contained sub-range missed")
	}
	st := rc.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.HeldBytes != 4096 || st.Ranges != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRangeCacheMergesTouchingInserts(t *testing.T) {
	rc := NewRangeCache(1 << 20)
	// A forward sweep in adjacent chunks must coalesce into one range.
	for off := int64(0); off < 10*4096; off += 4096 {
		rc.Probe(off, 4096)
	}
	st := rc.Stats()
	if st.Ranges != 1 || st.HeldBytes != 10*4096 {
		t.Fatalf("sequential sweep did not merge: %+v", st)
	}
	if !rc.Probe(0, 10*4096) {
		t.Fatal("merged extent not covered")
	}
}

func TestRangeCacheZeroLengthIsAlwaysCovered(t *testing.T) {
	rc := NewRangeCache(1 << 20)
	if !rc.Probe(123, 0) || !rc.Probe(123, -5) {
		t.Fatal("degenerate probe not treated as covered")
	}
	if st := rc.Stats(); st.Misses != 0 || st.Ranges != 0 {
		t.Fatalf("degenerate probes mutated the cache: %+v", st)
	}
}

func TestRangeCacheEvictsFIFOToBudget(t *testing.T) {
	rc := NewRangeCache(3 * 1024)
	// Three disjoint 1 KiB ranges fill the budget exactly.
	rc.Probe(0, 1024)
	rc.Probe(10_000, 1024)
	rc.Probe(20_000, 1024)
	if st := rc.Stats(); st.Evicted != 0 || st.Ranges != 3 {
		t.Fatalf("pre-eviction stats = %+v", st)
	}
	// A fourth pushes out the oldest.
	rc.Probe(30_000, 1024)
	st := rc.Stats()
	if st.Evicted != 1 || st.Ranges != 3 || st.HeldBytes != 3*1024 {
		t.Fatalf("post-eviction stats = %+v", st)
	}
	if rc.Probe(0, 1024) {
		t.Fatal("evicted range still covered")
	}
	if !rc.Probe(30_000, 1024) {
		t.Fatal("newest range lost")
	}
}

func TestRangeCacheClipsSingleOverBudgetRange(t *testing.T) {
	rc := NewRangeCache(4 * 1024)
	// One long sequential sweep: the single merged range exceeds the
	// budget and must be clipped at its tail, forgetting the head.
	for off := int64(0); off < 16*1024; off += 1024 {
		rc.Probe(off, 1024)
	}
	st := rc.Stats()
	if st.Ranges != 1 || st.HeldBytes != 4*1024 {
		t.Fatalf("clip failed: %+v", st)
	}
	// Check the tail before the head: a head probe is a miss and
	// inserting it evicts the tail range (FIFO).
	if !rc.Probe(15*1024, 1024) {
		t.Fatal("active tail window lost")
	}
	if rc.Probe(0, 1024) {
		t.Fatal("clipped head still covered")
	}
}

func TestRangeCacheReset(t *testing.T) {
	rc := NewRangeCache(1 << 20)
	rc.Probe(0, 4096)
	rc.Reset()
	st := rc.Stats()
	if st.Ranges != 0 || st.HeldBytes != 0 {
		t.Fatalf("reset left occupancy: %+v", st)
	}
	if st.Misses != 1 {
		t.Fatalf("reset dropped counters: %+v", st)
	}
	if rc.Probe(0, 4096) {
		t.Fatal("reset cache still covers old range")
	}
}

func TestRangeCacheDefaultBudget(t *testing.T) {
	rc := NewRangeCache(0)
	if rc.max != 64<<20 {
		t.Fatalf("default budget = %d", rc.max)
	}
}
