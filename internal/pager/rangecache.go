package pager

import "sync"

// RangeCache remembers which byte ranges of a backing file were
// recently prefetched, under a byte budget. The scan readahead path
// probes it before issuing a prefetch syscall: a covered window is a
// hit (no syscall), an uncovered one is recorded and issued. Budgeted
// FIFO eviction makes the cache honest for larger-than-RAM sweeps —
// once the budget cycles, old ranges are forgotten and re-prefetched
// on the next pass instead of being assumed resident forever.
//
// Ranges are kept in insertion order and adjacent or overlapping
// inserts merge into the newest range, so a sequential scan occupies
// one growing entry instead of thousands.
type RangeCache struct {
	mu      sync.Mutex
	max     int64
	held    int64
	ranges  []cachedRange // FIFO: ranges[0] is oldest
	hits    int64
	misses  int64
	evicted int64
}

type cachedRange struct{ off, end int64 }

// RangeCacheStats is a point-in-time counter snapshot.
type RangeCacheStats struct {
	// Hits and Misses count Probe outcomes; a miss is also an insert.
	Hits   int64
	Misses int64
	// Evicted counts ranges dropped to stay under budget.
	Evicted int64
	// HeldBytes and Ranges describe current occupancy.
	HeldBytes int64
	Ranges    int
}

// NewRangeCache returns a cache holding at most maxBytes of range
// extent; maxBytes <= 0 selects a 64 MiB default.
func NewRangeCache(maxBytes int64) *RangeCache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &RangeCache{max: maxBytes}
}

// Probe reports whether [off, off+length) is already covered by one
// cached range. If not, the range is recorded (merging with the newest
// range when they touch) and old ranges are evicted to budget. The
// caller issues the actual prefetch exactly when Probe returns false.
func (rc *RangeCache) Probe(off, length int64) bool {
	if length <= 0 {
		return true
	}
	end := off + length
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for i := len(rc.ranges) - 1; i >= 0; i-- {
		if r := rc.ranges[i]; off >= r.off && end <= r.end {
			rc.hits++
			return true
		}
	}
	rc.misses++
	if n := len(rc.ranges); n > 0 {
		if last := &rc.ranges[n-1]; off <= last.end && end >= last.off {
			// Touches the newest range: extend it in place.
			if off < last.off {
				rc.held += last.off - off
				last.off = off
			}
			if end > last.end {
				rc.held += end - last.end
				last.end = end
			}
			rc.evictToBudget()
			return false
		}
	}
	rc.ranges = append(rc.ranges, cachedRange{off: off, end: end})
	rc.held += length
	rc.evictToBudget()
	return false
}

func (rc *RangeCache) evictToBudget() {
	i := 0
	for rc.held > rc.max && i < len(rc.ranges)-1 {
		rc.held -= rc.ranges[i].end - rc.ranges[i].off
		rc.evicted++
		i++
	}
	if i > 0 {
		rc.ranges = append(rc.ranges[:0], rc.ranges[i:]...)
	}
	// The single newest range may exceed the budget on its own (one
	// long sequential sweep); clip its tail memory by re-basing so held
	// accounting stays truthful without forgetting the active window.
	if rc.held > rc.max && len(rc.ranges) == 1 {
		r := &rc.ranges[0]
		r.off = r.end - rc.max
		rc.held = rc.max
		rc.evicted++
	}
}

// Stats returns a counter snapshot.
func (rc *RangeCache) Stats() RangeCacheStats {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return RangeCacheStats{
		Hits: rc.hits, Misses: rc.misses, Evicted: rc.evicted,
		HeldBytes: rc.held, Ranges: len(rc.ranges),
	}
}

// Reset drops every cached range but keeps the counters.
func (rc *RangeCache) Reset() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.ranges = rc.ranges[:0]
	rc.held = 0
}
