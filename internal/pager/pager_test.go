package pager

import (
	"os"
	"path/filepath"
	"testing"
)

func newTempFile(t *testing.T, opts Options) *File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pages.db")
	pf, err := Create(path, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { pf.Close() })
	return pf
}

func TestFileReadWriteRoundTrip(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 128})
	out := make([]byte, 128)
	for i := range out {
		out[i] = byte(i)
	}
	if err := pf.WritePage(3, out); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	in := make([]byte, 128)
	if err := pf.ReadPage(3, in); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if string(in) != string(out) {
		t.Fatal("round trip mismatch")
	}
	if pf.Pages() != 4 {
		t.Fatalf("Pages = %d, want 4", pf.Pages())
	}
}

func TestFileReadBeyondEndIsZeroes(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64})
	buf := make([]byte, 64)
	buf[0] = 0xAA
	if err := pf.ReadPage(10, buf); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
	if pf.Stats().Reads != 0 {
		t.Fatal("read beyond end should not count as physical I/O")
	}
}

func TestFileRejectsBadBufferAndID(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64})
	if err := pf.ReadPage(0, make([]byte, 63)); err == nil {
		t.Error("short read buffer accepted")
	}
	if err := pf.WritePage(-1, make([]byte, 64)); err == nil {
		t.Error("negative page id accepted")
	}
}

func TestFileStatsCount(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64})
	buf := make([]byte, 64)
	for i := int32(0); i < 5; i++ {
		if err := pf.WritePage(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(0); i < 3; i++ {
		if err := pf.ReadPage(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := pf.Stats()
	if st.Writes != 5 || st.Reads != 3 {
		t.Fatalf("stats = %+v, want 5 writes, 3 reads", st)
	}
}

func TestPoolCachesPages(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64})
	pool := NewPool(pf, 4, LRU)
	data, err := pool.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 42
	pool.Unpin(0, true)
	// Second access must come from memory.
	data2, err := pool.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if data2[0] != 42 {
		t.Fatal("cached page lost modification")
	}
	pool.Unpin(0, false)
	if pool.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", pool.HitRate())
	}
	if pf.Stats().Reads != 0 {
		t.Fatal("page 0 never existed on disk; no physical read expected")
	}
}

func TestPoolEvictsAndWritesBack(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64})
	pool := NewPool(pf, 2, LRU)
	for i := int32(0); i < 3; i++ {
		data, err := pool.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		data[0] = byte(i + 1)
		pool.Unpin(i, true)
	}
	if pool.Resident() != 2 {
		t.Fatalf("resident = %d, want 2", pool.Resident())
	}
	// Page 0 was LRU victim; it must have been written back and reload
	// with its data intact.
	if pf.Stats().Writes == 0 {
		t.Fatal("dirty eviction did not write")
	}
	data, err := pool.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 1 {
		t.Fatalf("reloaded page 0 byte = %d, want 1", data[0])
	}
	pool.Unpin(0, false)
}

func TestPoolLRUOrder(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64})
	pool := NewPool(pf, 2, LRU)
	get := func(id int32) {
		if _, err := pool.Get(id); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id, false)
	}
	get(0)
	get(1)
	get(0) // 1 is now LRU
	get(2) // evicts 1
	_, ok0 := pool.frames[0]
	_, ok1 := pool.frames[1]
	if !ok0 || ok1 {
		t.Fatalf("LRU eviction wrong: page0 resident=%v page1 resident=%v", ok0, ok1)
	}
}

func TestPoolTopRetentionProtectsHeadPages(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64})
	pool := NewPool(pf, 4, TopRetention)
	get := func(id int32) {
		if _, err := pool.Get(id); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id, false)
	}
	// Protect threshold = capacity/2 = 2: pages 0 and 1 are head pages.
	get(0)
	get(1)
	get(9)
	get(5)
	get(7) // pool full: must evict 9 (oldest non-head), never 0 or 1
	_, ok0 := pool.frames[0]
	_, ok1 := pool.frames[1]
	_, ok9 := pool.frames[9]
	if !ok0 || !ok1 || ok9 {
		t.Fatalf("top-retention eviction wrong: page0=%v page1=%v page9=%v", ok0, ok1, ok9)
	}
}

func TestPoolTopRetentionFallsBackToLRU(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64})
	pool := NewPool(pf, 4, TopRetention)
	get := func(id int32) {
		if _, err := pool.Get(id); err != nil {
			t.Fatal(err)
		}
		pool.Unpin(id, false)
	}
	// Only head pages resident (< protect threshold 2 is impossible for 4
	// distinct ids, so use ids 0,1 twice over and force eviction among
	// them with another head id).
	get(0)
	get(1)
	if err := pool.evictOne(); err != nil {
		t.Fatalf("fallback eviction failed: %v", err)
	}
	if pool.Resident() != 1 {
		t.Fatalf("resident = %d, want 1", pool.Resident())
	}
	// LRU fallback: page 0 (older) went first.
	if _, ok := pool.frames[0]; ok {
		t.Fatal("LRU fallback should have evicted page 0")
	}
}

func TestPoolAllPinnedFails(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64})
	pool := NewPool(pf, 1, LRU)
	if _, err := pool.Get(0); err != nil {
		t.Fatal(err)
	}
	// 0 still pinned: next miss cannot evict.
	if _, err := pool.Get(1); err == nil {
		t.Fatal("expected pool-exhausted error")
	}
	pool.Unpin(0, false)
}

func TestPoolUnpinUnknownPanics(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64})
	pool := NewPool(pf, 1, LRU)
	defer func() {
		if recover() == nil {
			t.Fatal("Unpin of unpinned page did not panic")
		}
	}()
	pool.Unpin(7, false)
}

func TestPoolFlushPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	pf, err := Create(path, Options{PageSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(pf, 4, LRU)
	data, err := pool.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "hello")
	pool.Unpin(2, true)
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 3*64 || string(raw[2*64:2*64+5]) != "hello" {
		t.Fatal("flushed page not on disk")
	}
}

func TestSyncOptionWrites(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64, Sync: true})
	if err := pf.WritePage(0, make([]byte, 64)); err != nil {
		t.Fatalf("sync write failed: %v", err)
	}
}

func TestFaultHookInjectsErrors(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64})
	if err := pf.WritePage(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	injected := errFault("injected fault")
	pf.SetFaultHook(func(op string, page int32) error {
		if op == "read" && page == 0 {
			return injected
		}
		return nil
	})
	err := pf.ReadPage(0, make([]byte, 64))
	if err == nil {
		t.Fatal("injected read fault not surfaced")
	}
	pf.SetFaultHook(nil)
	if err := pf.ReadPage(0, make([]byte, 64)); err != nil {
		t.Fatalf("fault persisted after clearing hook: %v", err)
	}
}

func TestPoolSurfacesEvictionWriteFault(t *testing.T) {
	pf := newTempFile(t, Options{PageSize: 64})
	pool := NewPool(pf, 1, LRU)
	data, err := pool.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 1
	pool.Unpin(0, true)
	pf.SetFaultHook(func(op string, page int32) error { return errFault("disk full") })
	// Miss on page 1 must evict dirty page 0; the write fault surfaces.
	if _, err := pool.Get(1); err == nil {
		t.Fatal("eviction write fault not surfaced")
	}
	// After clearing the fault the pool still works.
	pf.SetFaultHook(nil)
	if _, err := pool.Get(1); err != nil {
		t.Fatalf("pool unusable after fault: %v", err)
	}
	pool.Unpin(1, false)
}

type errFault string

func (e errFault) Error() string { return string(e) }
