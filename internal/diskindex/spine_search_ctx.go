package diskindex

import "context"

// ctxStride is how many backbone nodes (or pattern characters) the
// ctx-aware search paths process between cancellation checks. Disk
// probes are orders of magnitude slower than the in-memory engine's, so
// the stride is smaller than core's: a cancelled context stops a
// cold-buffer scan within a few thousand page-pool probes.
const ctxStride = 1 << 12

// ScanResult is the outcome of a ctx-aware occurrence enumeration:
// every end node of the pattern in increasing order, whether the scan
// stopped at its limit, and how many backbone nodes it examined.
type ScanResult struct {
	Ends      []int32
	Truncated bool
	Scanned   int64
}

// BatchScan mirrors core.BatchScan for the disk index: the occurrence
// end sets of many matches resolved by one backbone pass.
type BatchScan struct {
	Ends      [][]int32
	Truncated []bool
	Scanned   int64
}

// EndNodeCtx is EndNode with cancellation: the descent checks ctx every
// ctxStride characters and aborts with ctx.Err() once it ends.
func (s *Spine) EndNodeCtx(ctx context.Context, p []byte) (end int32, found bool, err error) {
	v := int32(0)
	for i, c := range p {
		if i%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return 0, false, err
			}
		}
		v, found, err = s.step(v, int32(i), c)
		if err != nil || !found {
			return 0, false, err
		}
	}
	return v, true, nil
}

// FindAllLimitCtx enumerates occurrence end nodes with cancellation and
// an optional cap (limit <= 0 means unlimited, the first occurrence
// counts toward it). Truncation mirrors the in-memory FindAllCtx
// semantics exactly: limit 1 truncates without scanning, and a scan
// that reaches its cap reports Truncated only when backbone remains.
func (s *Spine) FindAllLimitCtx(ctx context.Context, p []byte, limit int) (ScanResult, error) {
	var res ScanResult
	first, ok, err := s.EndNodeCtx(ctx, p)
	if err != nil || !ok {
		return res, err
	}
	if limit == 1 {
		res.Ends = []int32{first}
		res.Truncated = true
		return res, nil
	}
	buf := []int32{first}
	m := int32(len(p))
	for j := first + 1; j <= s.n; j++ {
		res.Scanned++
		if res.Scanned%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return ScanResult{Scanned: res.Scanned}, err
			}
		}
		link, lel, _, err := s.readNode(j)
		if err != nil {
			return ScanResult{Scanned: res.Scanned}, err
		}
		if lel >= m && containsSorted(buf, link) {
			buf = append(buf, j)
			if limit > 0 && len(buf) >= limit {
				res.Ends = buf
				res.Truncated = j < s.n
				return res, nil
			}
		}
	}
	res.Ends = buf
	return res, nil
}

// CountCtx counts occurrences with cancellation. The count needs the
// same target-buffer membership walk as enumeration, so it costs one
// backbone pass; only the materialized positions are saved.
func (s *Spine) CountCtx(ctx context.Context, p []byte) (count int, scanned int64, err error) {
	if len(p) == 0 {
		return int(s.n) + 1, 0, ctx.Err()
	}
	res, err := s.FindAllLimitCtx(ctx, p, 0)
	if err != nil {
		return 0, res.Scanned, err
	}
	return len(res.Ends), res.Scanned, nil
}

// ScanManyLimitCtx resolves many matches' occurrence sets in one
// cancellable backbone pass with per-match caps — the disk analogue of
// core.ScanManyLimitCtx, sharing its semantics so batched disk queries
// agree item-for-item with the in-memory engines. firsts[i] is match
// i's first-occurrence end node, lens[i] its length, limits[i] its
// total occurrence cap (<= 0 unlimited). The scan ends early once every
// match has reached its cap.
func (s *Spine) ScanManyLimitCtx(ctx context.Context, firsts, lens []int32, limits []int) (BatchScan, error) {
	res := BatchScan{
		Ends:      make([][]int32, len(firsts)),
		Truncated: make([]bool, len(firsts)),
	}
	if err := ctx.Err(); err != nil {
		return BatchScan{}, err
	}
	if len(firsts) == 0 {
		return res, nil
	}
	// owners[node] lists the matches whose target buffer contains node;
	// done matches stay listed but are skipped, so a capped match stops
	// accumulating without disturbing the others.
	owners := make(map[int32][]int32)
	done := make([]bool, len(firsts))
	active := 0
	minFirst := int32(-1)
	for i := range firsts {
		res.Ends[i] = []int32{firsts[i]}
		if limits[i] == 1 {
			// Mirror the single-query path: limit 1 truncates without
			// scanning, so batch results stay identical to Query's.
			done[i], res.Truncated[i] = true, true
			continue
		}
		owners[firsts[i]] = append(owners[firsts[i]], int32(i))
		if minFirst < 0 || firsts[i] < minFirst {
			minFirst = firsts[i]
		}
		active++
	}
	if active == 0 {
		return res, nil
	}
	for j := minFirst + 1; j <= s.n; j++ {
		res.Scanned++
		if res.Scanned%ctxStride == 0 {
			if err := ctx.Err(); err != nil {
				return BatchScan{Scanned: res.Scanned}, err
			}
		}
		link, lel, _, err := s.readNode(j)
		if err != nil {
			return BatchScan{Scanned: res.Scanned}, err
		}
		ms, ok := owners[link]
		if !ok {
			continue
		}
		for _, m := range ms {
			if done[m] || lel < lens[m] || j <= firsts[m] {
				continue
			}
			res.Ends[m] = append(res.Ends[m], j)
			owners[j] = append(owners[j], m)
			if limits[m] > 0 && len(res.Ends[m]) >= limits[m] {
				done[m], res.Truncated[m] = true, j < s.n
				active--
			}
		}
		if active == 0 {
			return res, nil
		}
	}
	return res, nil
}
