package diskindex

// TreeCursor is the disk analogue of the in-memory suffix-tree matching
// cursor: per-suffix shortening via suffix links with skip/count descent,
// every probe through the buffer pool.
type TreeCursor struct {
	t                  *Tree
	parent, child, off int32
	buf                []byte
	// Checked counts nodes examined.
	Checked int64
}

// NewCursor returns a matching cursor over the finished disk tree.
func (t *Tree) NewCursor() *TreeCursor { return &TreeCursor{t: t, parent: treeRoot} }

// Len returns the current matched length.
func (c *TreeCursor) Len() int { return len(c.buf) }

// Reset clears the match, keeping Checked.
func (c *TreeCursor) Reset() {
	c.parent, c.child, c.off = treeRoot, 0, 0
	c.buf = c.buf[:0]
}

// Advance consumes one query character.
func (c *TreeCursor) Advance(ch byte) error {
	if ch == c.t.term {
		c.Checked++
		c.Reset()
		return nil
	}
	for {
		c.Checked++
		ok, err := c.tryExtend(ch)
		if err != nil {
			return err
		}
		if ok {
			c.buf = append(c.buf, ch)
			return nil
		}
		if len(c.buf) == 0 {
			return nil
		}
		if err := c.shortenByOne(); err != nil {
			return err
		}
	}
}

func (c *TreeCursor) tryExtend(ch byte) (bool, error) {
	t := c.t
	if c.child == 0 {
		next, ok, err := t.child(c.parent, ch)
		if err != nil || !ok {
			return false, err
		}
		c.child, c.off = next, 1
		return true, c.normalize()
	}
	start, _, err := t.nodeStartEnd(c.child)
	if err != nil {
		return false, err
	}
	cc, err := t.textAt(start + c.off)
	if err != nil {
		return false, err
	}
	if cc != ch {
		return false, nil
	}
	c.off++
	return true, c.normalize()
}

func (c *TreeCursor) normalize() error {
	if c.child == 0 {
		return nil
	}
	el, err := c.t.edgeLen(c.child)
	if err != nil {
		return err
	}
	if c.off == el {
		c.parent, c.child, c.off = c.child, 0, 0
	}
	return nil
}

func (c *TreeCursor) shortenByOne() error {
	t := c.t
	c.buf = c.buf[1:]
	if c.child == 0 {
		c.Checked++
		sl, err := t.slinkOf(c.parent)
		if err != nil {
			return err
		}
		c.parent = sl
		return nil
	}
	fragStart, _, err := t.nodeStartEnd(c.child)
	if err != nil {
		return err
	}
	fragLen := c.off
	if c.parent == treeRoot {
		fragStart++
		fragLen--
	} else {
		c.Checked++
	}
	n, err := t.slinkOf(c.parent)
	if err != nil {
		return err
	}
	c.parent, c.child, c.off = n, 0, 0
	for fragLen > 0 {
		c.Checked++
		fc, err := t.textAt(fragStart)
		if err != nil {
			return err
		}
		next, ok, err := t.child(n, fc)
		if err != nil {
			return err
		}
		if !ok {
			return errLostPath
		}
		el, err := t.edgeLen(next)
		if err != nil {
			return err
		}
		if fragLen >= el {
			n = next
			fragStart += el
			fragLen -= el
			c.parent = n
			continue
		}
		c.child, c.off = next, fragLen
		return nil
	}
	return nil
}

// errLostPath indicates tree corruption: a skip/count descent found no
// edge where one must exist.
var errLostPath = errorString("diskindex: skip/count descent lost its path")

type errorString string

func (e errorString) Error() string { return string(e) }

// Position snapshots the cursor's tree position for a later EndsAt call.
func (c *TreeCursor) Position() (parent, child, off int32) { return c.parent, c.child, c.off }

// MatchEnds returns every end position of the current match in the data
// string, increasing.
func (c *TreeCursor) MatchEnds() ([]int32, error) {
	return c.t.EndsAt(c.parent, c.child, c.off, len(c.buf))
}

// EndsAt returns every end position of the length-matchLen match at tree
// position (parent, child, off), as snapshotted by TreeCursor.Position.
func (t *Tree) EndsAt(parent, child, off int32, matchLen int) ([]int32, error) {
	if matchLen == 0 {
		return nil, nil
	}
	var occ []int
	var err error
	if child != 0 {
		el, e := t.edgeLen(child)
		if e != nil {
			return nil, e
		}
		err = t.collectLeaves(child, int32(matchLen)+(el-off), &occ)
	} else {
		err = t.collectLeaves(parent, int32(matchLen), &occ)
	}
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(occ))
	for i, start := range occ {
		out[i] = int32(start + matchLen)
	}
	sortI32(out)
	return out, nil
}

func sortI32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i
		for j > 0 && a[j-1] > v {
			a[j] = a[j-1]
			j--
		}
		a[j] = v
	}
}
