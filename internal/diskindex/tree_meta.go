package diskindex

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/spine-index/spine/internal/pager"
)

// Meta file for a disk suffix tree, mirroring the SPINE meta:
//
//	magic "SPDT" | version u16 | pageSize u32 | term u8 | finished u8 |
//	n u32 | nodeN u32 | ovfN u32 | distinct: len u8 + bytes | crc32
const (
	treeMetaMagic   = "SPDT"
	treeMetaVersion = uint16(1)
	treeMetaFile    = "meta.st"
)

func (t *Tree) writeMeta() error {
	fixed := 4 + 2 + 4 + 1 + 1 + 4 + 4 + 4 + 1
	buf := make([]byte, fixed+len(t.distinct)+4)
	copy(buf, treeMetaMagic)
	binary.LittleEndian.PutUint16(buf[4:], treeMetaVersion)
	binary.LittleEndian.PutUint32(buf[6:], uint32(t.nodes.PageSize()))
	buf[10] = t.term
	if t.finished {
		buf[11] = 1
	}
	binary.LittleEndian.PutUint32(buf[12:], uint32(t.n))
	binary.LittleEndian.PutUint32(buf[16:], uint32(t.nodeN))
	binary.LittleEndian.PutUint32(buf[20:], uint32(t.ovfN))
	buf[24] = byte(len(t.distinct))
	copy(buf[25:], t.distinct)
	sumAt := fixed + len(t.distinct)
	binary.LittleEndian.PutUint32(buf[sumAt:], crc32.ChecksumIEEE(buf[:sumAt]))
	tmp := filepath.Join(t.dir, treeMetaFile+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("diskindex: writing tree meta: %w", err)
	}
	return os.Rename(tmp, filepath.Join(t.dir, treeMetaFile))
}

// OpenTree opens a finished disk suffix tree previously built in dir.
// Only finished (Finish-ed) trees can be reopened: Ukkonen's active point
// is not persisted.
func OpenTree(dir string, opts Options) (*Tree, error) {
	buf, err := os.ReadFile(filepath.Join(dir, treeMetaFile))
	if err != nil {
		return nil, fmt.Errorf("diskindex: reading tree meta: %w", err)
	}
	if len(buf) < 29 || string(buf[:4]) != treeMetaMagic {
		return nil, fmt.Errorf("diskindex: %s is not a suffix-tree meta file", treeMetaFile)
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != treeMetaVersion {
		return nil, fmt.Errorf("diskindex: unsupported tree meta version %d", v)
	}
	distinctLen := int(buf[24])
	fixed := 25
	if len(buf) != fixed+distinctLen+4 {
		return nil, fmt.Errorf("diskindex: tree meta truncated")
	}
	sumAt := fixed + distinctLen
	if got, want := crc32.ChecksumIEEE(buf[:sumAt]), binary.LittleEndian.Uint32(buf[sumAt:]); got != want {
		return nil, fmt.Errorf("diskindex: tree meta checksum mismatch")
	}
	if buf[11] != 1 {
		return nil, fmt.Errorf("diskindex: tree was not finished before closing")
	}
	pageSize := int(binary.LittleEndian.Uint32(buf[6:]))
	popts := pager.Options{PageSize: pageSize, Sync: opts.Sync}
	nf, err := pager.Open(filepath.Join(dir, "nodes.st"), popts)
	if err != nil {
		return nil, err
	}
	tf, err := pager.Open(filepath.Join(dir, "text.st"), popts)
	if err != nil {
		nf.Close()
		return nil, err
	}
	of, err := pager.Open(filepath.Join(dir, "ovf.st"), popts)
	if err != nil {
		nf.Close()
		tf.Close()
		return nil, err
	}
	nodePages := opts.bufferPages() * 3 / 4
	if nodePages < 4 {
		nodePages = 4
	}
	side := opts.bufferPages() / 8
	if side < 4 {
		side = 4
	}
	t := &Tree{
		dir:      dir,
		nodes:    nf,
		text:     tf,
		ovf:      of,
		pool:     pager.NewPool(nf, nodePages, opts.Policy),
		textPool: pager.NewPool(tf, side, opts.Policy),
		ovfPool:  pager.NewPool(of, side, opts.Policy),
		term:     buf[10],
		n:        int32(binary.LittleEndian.Uint32(buf[12:])),
		nodeN:    int32(binary.LittleEndian.Uint32(buf[16:])),
		ovfN:     int32(binary.LittleEndian.Uint32(buf[20:])),
		recsPP:   int32(pageSize / treeRecSize),
		ovfPP:    int32(pageSize / ovfRecSize),
		distinct: append([]byte(nil), buf[25:25+distinctLen]...),
		finished: true,
	}
	if t.recsPP == 0 {
		t.closeFiles()
		return nil, fmt.Errorf("diskindex: page size %d smaller than tree record size %d", pageSize, treeRecSize)
	}
	return t, nil
}
