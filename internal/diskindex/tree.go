package diskindex

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/spine-index/spine/internal/pager"
)

// Suffix-tree disk record layout (little-endian, 48 bytes):
//
//	 0 start  int32 (edge label start into the text file)
//	 4 end    int32 (exclusive; -1 = open leaf end)
//	 8 slink  int32
//	12 childN byte
//	13 childs 5 x { char byte, ptr int32 } = 25
//	38 ovf    int32 (child overflow chain head, id+1; 0 = none)
const (
	treeRecSize   = 48
	tOffStart     = 0
	tOffEnd       = 4
	tOffSlink     = 8
	tOffChildN    = 12
	tOffChilds    = 13
	childSlotSize = 5
	maxChilds     = 5 // DNA alphabet + terminal fits inline
	tOffOvf       = 38
	leafEndMark   = int32(-1)
	treeRoot      = int32(1)
)

// Tree is a disk-resident suffix tree (online Ukkonen through the buffer
// pool), the ST side of the Figure 7 / Table 7 experiments.
type Tree struct {
	dir      string
	nodes    *pager.File
	text     *pager.File
	ovf      *pager.File
	pool     *pager.Pool
	textPool *pager.Pool
	ovfPool  *pager.Pool

	term     byte
	n        int32 // text length including terminal, after Finish
	nodeN    int32 // allocated node records (ids 1..nodeN)
	ovfN     int32
	recsPP   int32
	ovfPP    int32
	distinct []byte

	// Ukkonen active point.
	activeNode, activeEdge, activeLen, remainder int32
	finished                                     bool
}

// CreateTree creates an empty disk suffix tree in dir.
func CreateTree(dir string, terminal byte, opts Options) (*Tree, error) {
	nf, err := pager.Create(filepath.Join(dir, "nodes.st"), pager.Options{PageSize: opts.PageSize, Sync: opts.Sync})
	if err != nil {
		return nil, err
	}
	tf, err := pager.Create(filepath.Join(dir, "text.st"), pager.Options{PageSize: opts.PageSize, Sync: opts.Sync})
	if err != nil {
		nf.Close()
		return nil, err
	}
	of, err := pager.Create(filepath.Join(dir, "ovf.st"), pager.Options{PageSize: opts.PageSize, Sync: opts.Sync})
	if err != nil {
		nf.Close()
		tf.Close()
		return nil, err
	}
	// Split the budget: the node file dominates accesses; text is
	// sequential during build.
	nodePages := opts.bufferPages() * 3 / 4
	if nodePages < 4 {
		nodePages = 4
	}
	side := opts.bufferPages() / 8
	if side < 4 {
		side = 4
	}
	t := &Tree{
		dir:      dir,
		nodes:    nf,
		text:     tf,
		ovf:      of,
		pool:     pager.NewPool(nf, nodePages, opts.Policy),
		textPool: pager.NewPool(tf, side, opts.Policy),
		ovfPool:  pager.NewPool(of, side, opts.Policy),
		term:     terminal,
		recsPP:   int32(nf.PageSize() / treeRecSize),
		ovfPP:    int32(nf.PageSize() / ovfRecSize),
	}
	if t.recsPP == 0 {
		t.closeFiles()
		return nil, fmt.Errorf("diskindex: page size %d smaller than tree record size %d", nf.PageSize(), treeRecSize)
	}
	t.nodeN = 1 // root
	t.activeNode = treeRoot
	return t, nil
}

func (t *Tree) closeFiles() {
	t.nodes.Close()
	t.text.Close()
	t.ovf.Close()
}

// Len returns the number of data characters (terminal excluded).
func (t *Tree) Len() int {
	if t.finished {
		return int(t.n) - 1
	}
	return int(t.n)
}

// NodeCount returns the number of allocated tree nodes.
func (t *Tree) NodeCount() int { return int(t.nodeN) }

// IOStats aggregates physical I/O across the three files.
func (t *Tree) IOStats() pager.IOStats {
	a, b, c := t.nodes.Stats(), t.text.Stats(), t.ovf.Stats()
	return pager.IOStats{Reads: a.Reads + b.Reads + c.Reads, Writes: a.Writes + b.Writes + c.Writes}
}

// Flush writes all dirty pages and the meta record; a finished, flushed
// tree can be reopened with OpenTree.
func (t *Tree) Flush() error {
	if err := t.pool.Flush(); err != nil {
		return err
	}
	if err := t.textPool.Flush(); err != nil {
		return err
	}
	if err := t.ovfPool.Flush(); err != nil {
		return err
	}
	return t.writeMeta()
}

// Close flushes and closes the files.
func (t *Tree) Close() error {
	err := t.Flush()
	t.closeFiles()
	return err
}

// RemoveFiles deletes the index files (after Close).
func (t *Tree) RemoveFiles() error {
	for _, f := range []string{"nodes.st", "text.st", "ovf.st"} {
		if err := os.Remove(filepath.Join(t.dir, f)); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) withNode(i int32, write bool, fn func(rec []byte) error) error {
	page := i / t.recsPP
	off := int(i%t.recsPP) * treeRecSize
	data, err := t.pool.Get(page)
	if err != nil {
		return err
	}
	err = fn(data[off : off+treeRecSize])
	t.pool.Unpin(page, write && err == nil)
	return err
}

func (t *Tree) textAt(i int32) (byte, error) {
	ps := int32(t.text.PageSize())
	data, err := t.textPool.Get(i / ps)
	if err != nil {
		return 0, err
	}
	c := data[i%ps]
	t.textPool.Unpin(i/ps, false)
	return c, nil
}

func (t *Tree) writeText(i int32, c byte) error {
	ps := int32(t.text.PageSize())
	data, err := t.textPool.Get(i / ps)
	if err != nil {
		return err
	}
	data[i%ps] = c
	t.textPool.Unpin(i/ps, true)
	return nil
}

func (t *Tree) newNode(start, end int32) (int32, error) {
	t.nodeN++
	id := t.nodeN
	err := t.withNode(id, true, func(rec []byte) error {
		putLE32(rec[tOffStart:], start)
		putLE32(rec[tOffEnd:], end)
		putLE32(rec[tOffSlink:], 0)
		rec[tOffChildN] = 0
		putLE32(rec[tOffOvf:], 0)
		return nil
	})
	return id, err
}

func (t *Tree) nodeStartEnd(i int32) (start, end int32, err error) {
	err = t.withNode(i, false, func(rec []byte) error {
		start, end = le32(rec[tOffStart:]), le32(rec[tOffEnd:])
		return nil
	})
	if end == leafEndMark {
		end = t.n
	}
	return
}

func (t *Tree) setStart(i, start int32) error {
	return t.withNode(i, true, func(rec []byte) error {
		putLE32(rec[tOffStart:], start)
		return nil
	})
}

func (t *Tree) slinkOf(i int32) (int32, error) {
	var s int32
	err := t.withNode(i, false, func(rec []byte) error {
		s = le32(rec[tOffSlink:])
		return nil
	})
	if s == 0 {
		s = treeRoot
	}
	return s, err
}

func (t *Tree) setSlink(i, dest int32) error {
	return t.withNode(i, true, func(rec []byte) error {
		putLE32(rec[tOffSlink:], dest)
		return nil
	})
}

func (t *Tree) child(node int32, c byte) (int32, bool, error) {
	var ptr int32
	var ovfHead int32
	err := t.withNode(node, false, func(rec []byte) error {
		n := int(rec[tOffChildN])
		inline := n
		if inline > maxChilds {
			inline = maxChilds
		}
		for j := 0; j < inline; j++ {
			slot := rec[tOffChilds+j*childSlotSize:]
			if slot[0] == c {
				ptr = le32(slot[1:])
				return nil
			}
		}
		ovfHead = le32(rec[tOffOvf:])
		return nil
	})
	if err != nil || ptr != 0 {
		return ptr, ptr != 0, err
	}
	for id := ovfHead; id != 0; {
		var next int32
		err := t.withOvf(id-1, false, func(rec []byte) error {
			if rec[0] == c {
				ptr = le32(rec[4:])
			}
			next = le32(rec[12:])
			return nil
		})
		if err != nil {
			return 0, false, err
		}
		if ptr != 0 {
			return ptr, true, nil
		}
		id = next
	}
	return 0, false, nil
}

func (t *Tree) withOvf(id int32, write bool, fn func(rec []byte) error) error {
	page := id / t.ovfPP
	off := int(id%t.ovfPP) * ovfRecSize
	data, err := t.ovfPool.Get(page)
	if err != nil {
		return err
	}
	err = fn(data[off : off+ovfRecSize])
	t.ovfPool.Unpin(page, write && err == nil)
	return err
}

// setChild inserts or replaces the child of node for character c.
func (t *Tree) setChild(node int32, c byte, child int32) error {
	replaced := false
	full := false
	var ovfHead int32
	err := t.withNode(node, true, func(rec []byte) error {
		n := int(rec[tOffChildN])
		inline := n
		if inline > maxChilds {
			inline = maxChilds
		}
		for j := 0; j < inline; j++ {
			slot := rec[tOffChilds+j*childSlotSize:]
			if slot[0] == c {
				putLE32(slot[1:], child)
				replaced = true
				return nil
			}
		}
		if n < maxChilds {
			slot := rec[tOffChilds+n*childSlotSize:]
			slot[0] = c
			putLE32(slot[1:], child)
			rec[tOffChildN] = byte(n + 1)
			replaced = true
			return nil
		}
		full = true
		ovfHead = le32(rec[tOffOvf:])
		return nil
	})
	if err != nil || replaced {
		return err
	}
	if full {
		// Replace in the overflow chain if present.
		for id := ovfHead; id != 0; {
			var next int32
			done := false
			err := t.withOvf(id-1, true, func(rec []byte) error {
				if rec[0] == c {
					putLE32(rec[4:], child)
					done = true
				}
				next = le32(rec[12:])
				return nil
			})
			if err != nil {
				return err
			}
			if done {
				return nil
			}
			id = next
		}
		// Allocate a new overflow record at the chain head.
		id := t.ovfN
		t.ovfN++
		if err := t.withOvf(id, true, func(rec []byte) error {
			rec[0] = c
			putLE32(rec[4:], child)
			putLE32(rec[12:], ovfHead)
			return nil
		}); err != nil {
			return err
		}
		return t.withNode(node, true, func(rec []byte) error {
			putLE32(rec[tOffOvf:], id+1)
			rec[tOffChildN]++
			return nil
		})
	}
	return nil
}

func (t *Tree) edgeLen(node int32) (int32, error) {
	start, end, err := t.nodeStartEnd(node)
	return end - start, err
}

// Append extends the tree by one data character.
func (t *Tree) Append(c byte) error {
	if t.finished {
		return fmt.Errorf("diskindex: Append after Finish")
	}
	if c == t.term {
		return fmt.Errorf("diskindex: input contains the terminal character %q", c)
	}
	return t.extend(c)
}

// AppendAll appends every byte of data.
func (t *Tree) AppendAll(data []byte) error {
	for _, c := range data {
		if err := t.Append(c); err != nil {
			return err
		}
	}
	return nil
}

// Finish appends the terminal and freezes the tree for queries.
func (t *Tree) Finish() error {
	if t.finished {
		return nil
	}
	if err := t.extend(t.term); err != nil {
		return err
	}
	t.finished = true
	seen := [256]bool{}
	for i := int32(0); i < t.n; i++ {
		c, err := t.textAt(i)
		if err != nil {
			return err
		}
		if !seen[c] {
			seen[c] = true
			t.distinct = append(t.distinct, c)
		}
	}
	return nil
}

func (t *Tree) extend(c byte) error {
	i := t.n
	if err := t.writeText(i, c); err != nil {
		return err
	}
	t.n++
	t.remainder++
	lastCreated := int32(0)
	for t.remainder > 0 {
		if t.activeLen == 0 {
			t.activeEdge = i
		}
		edgeChar, err := t.textAt(t.activeEdge)
		if err != nil {
			return err
		}
		next, ok, err := t.child(t.activeNode, edgeChar)
		if err != nil {
			return err
		}
		if !ok {
			leaf, err := t.newNode(i, leafEndMark)
			if err != nil {
				return err
			}
			if err := t.setChild(t.activeNode, edgeChar, leaf); err != nil {
				return err
			}
			if lastCreated != 0 {
				if err := t.setSlink(lastCreated, t.activeNode); err != nil {
					return err
				}
				lastCreated = 0
			}
		} else {
			el, err := t.edgeLen(next)
			if err != nil {
				return err
			}
			if t.activeLen >= el {
				t.activeNode = next
				t.activeEdge += el
				t.activeLen -= el
				continue
			}
			nextStart, _, err := t.nodeStartEnd(next)
			if err != nil {
				return err
			}
			edgeCh, err := t.textAt(nextStart + t.activeLen)
			if err != nil {
				return err
			}
			if edgeCh == c {
				if lastCreated != 0 && t.activeNode != treeRoot {
					if err := t.setSlink(lastCreated, t.activeNode); err != nil {
						return err
					}
				}
				t.activeLen++
				break
			}
			split, err := t.newNode(nextStart, nextStart+t.activeLen)
			if err != nil {
				return err
			}
			if err := t.setChild(t.activeNode, edgeChar, split); err != nil {
				return err
			}
			leaf, err := t.newNode(i, leafEndMark)
			if err != nil {
				return err
			}
			if err := t.setChild(split, c, leaf); err != nil {
				return err
			}
			if err := t.setStart(next, nextStart+t.activeLen); err != nil {
				return err
			}
			splitCh, err := t.textAt(nextStart + t.activeLen)
			if err != nil {
				return err
			}
			if err := t.setChild(split, splitCh, next); err != nil {
				return err
			}
			if lastCreated != 0 {
				if err := t.setSlink(lastCreated, split); err != nil {
					return err
				}
			}
			lastCreated = split
		}
		t.remainder--
		if t.activeNode == treeRoot && t.activeLen > 0 {
			t.activeLen--
			t.activeEdge = i - t.remainder + 1
		} else if t.activeNode != treeRoot {
			sl, err := t.slinkOf(t.activeNode)
			if err != nil {
				return err
			}
			t.activeNode = sl
		}
	}
	return nil
}

// Contains reports whether p occurs in the data string.
func (t *Tree) Contains(p []byte) (bool, error) {
	for _, c := range p {
		if c == t.term {
			return false, nil
		}
	}
	_, _, _, ok, err := t.walk(p)
	return ok, err
}

// walk descends from the root along p.
func (t *Tree) walk(p []byte) (node, off, depth int32, ok bool, err error) {
	node = treeRoot
	for i := 0; i < len(p); {
		el, err := t.edgeLen(node)
		if err != nil {
			return 0, 0, 0, false, err
		}
		if node == treeRoot || off == el {
			next, found, err := t.child(node, p[i])
			if err != nil {
				return 0, 0, 0, false, err
			}
			if !found {
				return node, off, depth, false, nil
			}
			node, off = next, 0
		}
		start, end, err := t.nodeStartEnd(node)
		if err != nil {
			return 0, 0, 0, false, err
		}
		for start+off < end && i < len(p) {
			c, err := t.textAt(start + off)
			if err != nil {
				return 0, 0, 0, false, err
			}
			if c != p[i] {
				return node, off, depth, false, nil
			}
			off++
			depth++
			i++
		}
	}
	return node, off, depth, true, nil
}

// FindAll returns every occurrence start of p in increasing order.
func (t *Tree) FindAll(p []byte) ([]int, error) {
	for _, c := range p {
		if c == t.term {
			return nil, nil
		}
	}
	if len(p) == 0 {
		out := make([]int, t.Len()+1)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	node, off, depth, ok, err := t.walk(p)
	if err != nil || !ok {
		return nil, err
	}
	el, err := t.edgeLen(node)
	if err != nil {
		return nil, err
	}
	var occ []int
	if err := t.collectLeaves(node, depth+(el-off), &occ); err != nil {
		return nil, err
	}
	sort.Ints(occ)
	return occ, nil
}

func (t *Tree) collectLeaves(node, depth int32, occ *[]int) error {
	var end int32
	if err := t.withNode(node, false, func(rec []byte) error {
		end = le32(rec[tOffEnd:])
		return nil
	}); err != nil {
		return err
	}
	if end == leafEndMark {
		*occ = append(*occ, int(t.n-depth))
		return nil
	}
	for _, c := range t.distinct {
		ch, ok, err := t.child(node, c)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		el, err := t.edgeLen(ch)
		if err != nil {
			return err
		}
		if err := t.collectLeaves(ch, depth+el, occ); err != nil {
			return err
		}
	}
	return nil
}
